#!/usr/bin/env python3
"""DT-SNN project-invariant linter.

Enforces repo-specific rules that no generic static analyzer knows about,
with file:line diagnostics and a nonzero exit code on any finding:

  wall-clock          The determinism contract: bitwise-identity gates
                      (batched vs batch-1 oracle, sharded vs in-memory reads,
                      cross-backend GEMM equality) require every random
                      stream and every workload trace to be seeded and
                      reproducible. rand()/srand(), std::random_device,
                      time(nullptr)-style seeding, system_clock /
                      high_resolution_clock and gettimeofday are banned;
                      timing uses steady_clock, randomness uses util::Rng
                      with an explicit seed.

  naked-mutex         All locking goes through the annotated util::Mutex /
                      util::MutexLock / util::CondVar wrappers (util/sync.h)
                      so clang -Wthread-safety can check the locking
                      discipline. Naming std::mutex & friends (or including
                      <mutex>/<condition_variable>) anywhere else bypasses
                      the analysis.

  omp-simd-reduction  `#pragma omp simd reduction` reassociates the reduced
                      accumulator across lanes. On float accumulation that
                      changes results bit-for-bit and broke the GEMM
                      cross-backend identity contract once already (PR 3's
                      gemm_bt lesson); banned everywhere, waivable only with
                      a justification for provably associative (integer)
                      reductions.

  raw-thread-mmap     Threads are spawned only through util::Thread
                      (util/thread.h, join-on-destruction — a forgotten raw
                      std::thread std::terminate's the process), and memory
                      mapping goes only through util::MappedFile
                      (util/mapped_file.h, RAII munmap + portable buffered
                      fallback). Naming std::thread or calling mmap/munmap
                      (or including <sys/mman.h>) outside src/util/ bypasses
                      both. <thread> itself stays legal: std::this_thread
                      sleep/yield are fine anywhere.

  bench-report        Every benchmark must emit a machine-readable
                      BENCH_*.json via bench::BenchReport; a bench/*.cpp
                      that never names BenchReport silently drops out of the
                      measurement record.

  avx512-isolation    AVX-512 intrinsics live only in src/util/gemm_avx512.cpp,
                      the one TU compiled with -mavx512f (and -ffp-contract=off:
                      AVX-512F implies FMA on GCC, and contraction breaks the
                      bitwise identity contract). An _mm512_* / __m512 / __mmask
                      token anywhere else either fails to compile or — worse —
                      silently turns a portable TU into one that needs the flag,
                      crashing on non-AVX-512 hosts that never dispatch it.

  quant-bitwise-oracle  The quantized GEMM tier (int8_spike / int4_spike) is
                      tolerance-gated, not bitwise (util/gemm.h): comparing
                      its floats bitwise against the scalar_ref oracle with
                      EXPECT_EQ / EXPECT_FLOAT_EQ encodes an identity the
                      contract deliberately does not promise, and such a
                      test rots into flakiness with any legal kernel change.
                      Quantized-tier tests (tests/*quant*) route decision
                      comparisons through core::compare_decisions or use an
                      explicit EXPECT_NEAR bound.

Comment and string-literal text is scrubbed before matching, so prose about
a banned construct never trips a rule. A genuine exception is waived inline
with a justification comment on the flagged line or one of the three lines
above it:

    // lint:allow(omp-simd-reduction): integer count, no float accumulation.

Usage:
  check_invariants.py [--root DIR] [--list-rules] [paths...]

With no paths, scans src/, bench/, tests/, examples/ under --root (default:
the repository root containing this script). Exit codes: 0 clean, 1 findings,
2 usage/IO error. Dependency-free (Python 3 stdlib only).
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

CXX_SUFFIXES = {".h", ".hpp", ".cpp", ".cc", ".cxx"}
DEFAULT_SCAN_DIRS = ("src", "bench", "tests", "examples")
WAIVER_LOOKBACK = 3  # lines above a finding searched for lint:allow(...)

# ---------------------------------------------------------------- rules


class Pattern:
    def __init__(self, regex: str, message: str):
        self.regex = re.compile(regex)
        self.message = message


# rule id -> description (for --list-rules) and patterns matched against
# scrubbed (comment/string-free) source lines.
RULE_DESCRIPTIONS = {
    "wall-clock": "no wall-clock or unseeded randomness (determinism contract)",
    "naked-mutex": "std synchronization primitives only inside src/util/sync.h",
    "raw-thread-mmap": "std::thread and mmap/munmap only inside src/util/",
    "omp-simd-reduction": "no '#pragma omp simd reduction' (float reassociation)",
    "bench-report": "every bench/*.cpp must emit through bench::BenchReport",
    "avx512-isolation": "AVX-512 intrinsics only inside src/util/gemm_avx512.cpp "
                        "(the one TU built with -mavx512f -ffp-contract=off)",
    "quant-bitwise-oracle": "quantized-tier tests must not EXPECT_EQ floats "
                            "against the scalar_ref oracle (tolerance gate "
                            "via core::compare_decisions / EXPECT_NEAR)",
}

WALL_CLOCK_PATTERNS = [
    Pattern(r"(?<!s)\brand\s*\(",
            "rand() is unseeded wall-entropy randomness; use util::Rng with an "
            "explicit seed"),
    Pattern(r"\bsrand\s*\(",
            "srand() seeds global state non-reproducibly; use util::Rng with an "
            "explicit seed"),
    Pattern(r"\brandom_device\b",
            "std::random_device draws hardware entropy; every stream must be "
            "seeded deterministically"),
    Pattern(r"\btime\s*\(\s*(nullptr|NULL|0)\s*\)",
            "time(nullptr) is wall-clock seeding; results must not depend on "
            "when they run"),
    Pattern(r"\bsystem_clock\b",
            "system_clock is wall time (jumps with NTP/timezone); use "
            "steady_clock for timing, never clocks for seeds"),
    Pattern(r"\bhigh_resolution_clock\b",
            "high_resolution_clock may alias system_clock; use steady_clock"),
    Pattern(r"\bgettimeofday\s*\(",
            "gettimeofday is wall time; use steady_clock for timing, never "
            "clocks for seeds"),
]

NAKED_MUTEX_PATTERNS = [
    Pattern(r"std\s*::\s*(recursive_|timed_|shared_)?mutex\b",
            "raw std mutex bypasses the annotated util::Mutex (util/sync.h) and "
            "with it clang -Wthread-safety"),
    Pattern(r"std\s*::\s*(lock_guard|unique_lock|scoped_lock|shared_lock)\b",
            "raw std lock bypasses util::MutexLock (util/sync.h) and with it "
            "clang -Wthread-safety"),
    Pattern(r"std\s*::\s*condition_variable(_any)?\b",
            "raw std::condition_variable bypasses util::CondVar (util/sync.h); "
            "predicate loops over guarded state cannot be analyzed"),
    Pattern(r"#\s*include\s*<(mutex|condition_variable|shared_mutex)>",
            "include the annotated wrappers (util/sync.h) instead of the raw "
            "primitive headers"),
]
NAKED_MUTEX_ALLOWED = {Path("src/util/sync.h")}

RAW_THREAD_MMAP_PATTERNS = [
    Pattern(r"std\s*::\s*thread\b",
            "raw std::thread bypasses util::Thread (util/thread.h); a handle "
            "that leaves scope joinable std::terminate's the process"),
    Pattern(r"\bmmap\s*\(",
            "raw mmap() bypasses util::MappedFile (util/mapped_file.h) and "
            "its RAII munmap + portable buffered fallback"),
    Pattern(r"\bmunmap\s*\(",
            "raw munmap() bypasses util::MappedFile (util/mapped_file.h); "
            "mapping lifetime is owned by that handle"),
    Pattern(r"#\s*include\s*<sys/mman\.h>",
            "include util/mapped_file.h instead of the raw mapping syscalls"),
]
# The wrappers themselves live under src/util/ (thread.h, mapped_file.cpp).
RAW_THREAD_MMAP_ALLOWED_PREFIX = ("src", "util")

OMP_SIMD_REDUCTION = Pattern(
    r"#\s*pragma\s+omp\b.*\bsimd\b.*\breduction\s*\(",
    "simd reduction reassociates the accumulator across lanes; on float math "
    "this breaks the bitwise cross-backend identity contract (PR 3 gemm_bt "
    "lesson). Waive only for provably associative integer reductions.")

AVX512_ISOLATION_PATTERNS = [
    Pattern(r"\b_mm512_\w+",
            "_mm512_* intrinsic outside the dedicated AVX-512 TU: only "
            "src/util/gemm_avx512.cpp is compiled with -mavx512f "
            "-ffp-contract=off; anywhere else this either breaks the build or "
            "poisons a portable TU with illegal instructions"),
    Pattern(r"\b__m512[id]?\b",
            "__m512 vector type outside src/util/gemm_avx512.cpp; AVX-512 "
            "lane layout (and the FMA-off contract) is confined to that TU"),
    Pattern(r"\b__mmask(8|16|32|64)\b",
            "AVX-512 mask type outside src/util/gemm_avx512.cpp; keep "
            "opmask-register code in the dedicated TU"),
]
AVX512_ISOLATION_ALLOWED = {Path("src/util/gemm_avx512.cpp")}

QUANT_BITWISE_ORACLE = Pattern(
    r"(EXPECT|ASSERT)_(EQ|FLOAT_EQ|DOUBLE_EQ)\s*\(.*\b(oracle|scalar_ref)",
    "bitwise comparison against the float oracle in a quantized-tier test: "
    "the quantized backends are tolerance-gated, not bitwise (util/gemm.h). "
    "Gate decisions through core::compare_decisions or bound values with "
    "EXPECT_NEAR.")
# Applies to test files whose name marks them as quantized-tier coverage.
QUANT_TEST_DIR = "tests"
QUANT_NAME_MARKER = "quant"

WAIVER_RE = re.compile(r"lint:allow\(([a-z0-9-]+)\)")


# ------------------------------------------------------ comment scrubbing


def scrub_lines(text: str) -> list[str]:
    """Blank comment text and string/char-literal contents, preserving line
    structure and the tokens outside them, so regexes match only real code.
    Handles //, /* */, "..." and '...' with escapes (raw strings are not used
    in this codebase and are treated as plain strings)."""
    out: list[str] = []
    state = "code"  # code | line_comment | block_comment | dquote | squote
    line: list[str] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "\n":
            out.append("".join(line))
            line = []
            if state == "line_comment":
                state = "code"
            i += 1
            continue
        if state == "code":
            if ch == "/" and nxt == "/":
                state = "line_comment"
                line.append("  ")
                i += 2
                continue
            if ch == "/" and nxt == "*":
                state = "block_comment"
                line.append("  ")
                i += 2
                continue
            if ch == '"':
                state = "dquote"
                line.append('"')
                i += 1
                continue
            if ch == "'":
                state = "squote"
                line.append("'")
                i += 1
                continue
            line.append(ch)
            i += 1
            continue
        if state in ("line_comment", "block_comment"):
            if state == "block_comment" and ch == "*" and nxt == "/":
                state = "code"
                line.append("  ")
                i += 2
                continue
            line.append(" ")
            i += 1
            continue
        # Inside a string or char literal: blank contents, honor escapes.
        if ch == "\\":
            line.append("  ")
            i += 2
            continue
        if (state == "dquote" and ch == '"') or (state == "squote" and ch == "'"):
            line.append(ch)
            state = "code"
            i += 1
            continue
        line.append(" ")
        i += 1
    if line:
        out.append("".join(line))
    return out


# ------------------------------------------------------------- scanning


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: error: [{self.rule}] {self.message}"


def waived(rule: str, raw_lines: list[str], index: int) -> bool:
    lo = max(0, index - WAIVER_LOOKBACK)
    for raw in raw_lines[lo:index + 1]:
        for match in WAIVER_RE.finditer(raw):
            if match.group(1) == rule:
                return True
    return False


def scan_file(path: Path, rel: Path) -> list[Finding]:
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as err:
        print(f"{path}: cannot read: {err}", file=sys.stderr)
        sys.exit(2)
    raw_lines = text.splitlines()
    scrubbed = scrub_lines(text)
    findings: list[Finding] = []

    line_rules: list[tuple[str, list[Pattern]]] = [
        ("wall-clock", WALL_CLOCK_PATTERNS),
        ("omp-simd-reduction", [OMP_SIMD_REDUCTION]),
    ]
    if rel not in NAKED_MUTEX_ALLOWED:
        line_rules.append(("naked-mutex", NAKED_MUTEX_PATTERNS))
    if rel not in AVX512_ISOLATION_ALLOWED:
        line_rules.append(("avx512-isolation", AVX512_ISOLATION_PATTERNS))
    if rel.parts[:2] != RAW_THREAD_MMAP_ALLOWED_PREFIX:
        line_rules.append(("raw-thread-mmap", RAW_THREAD_MMAP_PATTERNS))
    if (rel.parts and rel.parts[0] == QUANT_TEST_DIR
            and QUANT_NAME_MARKER in rel.name.lower()):
        line_rules.append(("quant-bitwise-oracle", [QUANT_BITWISE_ORACLE]))

    for idx, code in enumerate(scrubbed):
        for rule, patterns in line_rules:
            for pattern in patterns:
                if pattern.regex.search(code) and not waived(rule, raw_lines, idx):
                    findings.append(Finding(rel, idx + 1, rule, pattern.message))

    # bench-report is a whole-file property, so its waiver may sit anywhere
    # in the file (conventionally next to the includes). bench_common.cpp
    # passes naturally: it implements BenchReport.
    if (rel.parts and rel.parts[0] == "bench" and rel.suffix == ".cpp"
            and not any("BenchReport" in code for code in scrubbed)
            and not any(m.group(1) == "bench-report"
                        for raw in raw_lines for m in WAIVER_RE.finditer(raw))):
        findings.append(Finding(
            rel, 1, "bench-report",
            "bench never names bench::BenchReport: its measurements would not "
            "land in a machine-readable BENCH_*.json"))
    return findings


def collect_files(root: Path, paths: list[str]) -> list[tuple[Path, Path]]:
    files: list[tuple[Path, Path]] = []
    if paths:
        bases = [Path(p) for p in paths]
    else:
        bases = [root / d for d in DEFAULT_SCAN_DIRS]
    for base in bases:
        if base.is_file():
            candidates = [base]
        elif base.is_dir():
            candidates = sorted(p for p in base.rglob("*") if p.is_file())
        else:
            continue
        for p in candidates:
            if p.suffix in CXX_SUFFIXES:
                try:
                    rel = p.resolve().relative_to(root.resolve())
                except ValueError:
                    rel = p
                files.append((p, rel))
    return files


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=str(Path(__file__).resolve().parent.parent),
                        help="repository root (rule path scoping is relative to it)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print rule ids and descriptions, then exit")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to scan (default: "
                             f"{', '.join(DEFAULT_SCAN_DIRS)} under --root)")
    args = parser.parse_args()

    if args.list_rules:
        for rule, description in RULE_DESCRIPTIONS.items():
            print(f"{rule}: {description}")
        return 0

    root = Path(args.root)
    if not root.is_dir():
        print(f"--root {root} is not a directory", file=sys.stderr)
        return 2

    files = collect_files(root, args.paths)
    if not files:
        print("no C++ sources found to scan", file=sys.stderr)
        return 2

    findings: list[Finding] = []
    for path, rel in files:
        findings.extend(scan_file(path, rel))
    for finding in findings:
        print(finding)
    if findings:
        print(f"check_invariants: {len(findings)} finding(s) in "
              f"{len({f.path for f in findings})} file(s) "
              f"(scanned {len(files)})", file=sys.stderr)
        return 1
    print(f"check_invariants: OK ({len(files)} files clean)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
