// Fixture: the one path where AVX-512 intrinsics are legal (mirrors the real
// src/util/gemm_avx512.cpp, the TU built with -mavx512f -ffp-contract=off).
// Also proves the tokens stay silent inside comments and string literals
// elsewhere in this file's prose: _mm512_add_ps, __m512, __mmask16.
#include <cstddef>

const char* kDoc = "uses _mm512_loadu_ps and __m512 tiles";  // string: silent

void avx512_tile(float* out, std::size_t n) {
  __m512 acc = _mm512_setzero_ps();
  __mmask16 tail = static_cast<__mmask16>((1u << (n % 16)) - 1u);
  (void)acc;
  (void)tail;
  (void)out;
}
