// Fixture: the naked-mutex allowlist. This path (src/util/sync.h relative
// to the fixture root) is the one place std primitives may appear.
#pragma once
#include <mutex>
#include <condition_variable>

namespace fixture {
class Mutex {
 public:
  void lock() { mu_.lock(); }
  void unlock() { mu_.unlock(); }

 private:
  std::mutex mu_;
};
}  // namespace fixture
