// Fixture: the raw-thread-mmap allowlist. Anything under src/util/ (relative
// to the fixture root) may name std::thread and call mmap/munmap — this is
// where util::Thread and util::MappedFile live.
#include <sys/mman.h>
#include <thread>

namespace fixture {

class Thread {
 public:
  template <typename Fn>
  explicit Thread(Fn&& fn) : thread_(static_cast<Fn&&>(fn)) {}
  ~Thread() {
    if (thread_.joinable()) thread_.join();
  }

 private:
  std::thread thread_;
};

void* map_file(int fd, long length) { return mmap(nullptr, length, 1, 1, fd, 0); }
void unmap(void* addr, long length) { munmap(addr, length); }

}  // namespace fixture
