// Fixture: banned tokens in comments and string literals must NOT trip the
// linter — only real code does. Mentioning rand(), srand(), std::mutex,
// std::random_device, time(nullptr), system_clock or
// "#pragma omp simd reduction" here is fine.
#include <string>

/* Block comments too: std::lock_guard<std::mutex>, gettimeofday(&tv, 0),
   high_resolution_clock::now() — all prose. */

std::string describe() {
  return "uses rand() and std::mutex and time(nullptr) and system_clock";
}

std::string escaped() {
  return "embedded quote \" then std::condition_variable still in-string";
}

char quote_char() { return '"'; }  // code after a char literal is still code

int operand() {
  int rando = 3;  // identifier containing 'rand' must not match \brand\b
  return rando;
}

// std::this_thread (sleep/yield pacing) and <thread> itself are legal
// anywhere; only naming std::thread is confined to src/util/.
#include <thread>
void pace() { std::this_thread::yield(); }
