// Fixture: a bench wired to bench::BenchReport — no bench-report finding.
struct BenchReport {};

int main() {
  BenchReport report;
  (void)report;
  return 0;
}
