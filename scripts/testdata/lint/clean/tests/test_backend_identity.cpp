// Fixture: a NON-quantized test file (no "quant" in the filename) comparing
// bitwise against the oracle. The bitwise-tier identity contract promises
// exactly this, so quant-bitwise-oracle must not fire here.

void test_backend_identity() {
  float oracle_logits[4] = {0, 0, 0, 0};
  float backend_logits[4] = {0, 0, 0, 0};
  EXPECT_EQ(oracle_logits[0], backend_logits[0]);
  EXPECT_FLOAT_EQ(oracle_logits[1], backend_logits[1]);
}
