// Fixture: quantized-tier test idioms that must stay silent under
// quant-bitwise-oracle.
//
// Prose may discuss EXPECT_EQ(oracle, quant) freely: comments are scrubbed
// before matching.

void test_quant_tolerance() {
  float oracle_logits[4] = {0, 0, 0, 0};
  float quant_logits[4] = {0, 0, 0, 0};
  // The sanctioned comparisons: an explicit bound, or the shared gate helper.
  EXPECT_NEAR(oracle_logits[1], quant_logits[1], 1e-4f);
  compare_decisions(oracle_logits, quant_logits);
  // Strings naming the oracle are scrubbed too.
  EXPECT_EQ(lookup("scalar_ref"), lookup("scalar_ref"));
  // Integer decision fields compared between two *quantized* runs are fine —
  // the rule keys on oracle identifiers, not on EXPECT_EQ itself.
  EXPECT_EQ(quant_logits[2], quant_logits[3]);
  // A justified waiver silences the rule like everywhere else.
  // lint:allow(quant-bitwise-oracle): exact-zero weights quantize losslessly.
  EXPECT_EQ(oracle_logits[0], quant_logits[0]);
}
