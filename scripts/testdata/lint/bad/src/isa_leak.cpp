// Fixture: AVX-512 tokens outside src/util/gemm_avx512.cpp. Each banned
// token class appears exactly once, on the pinned line the selftest asserts.
#include <cstddef>

void leak(float* out, const float* in, std::size_t n) {
  __m512 acc;                       // line 6: __m512 vector type
  acc = _mm512_setzero_ps();        // line 7: _mm512_* intrinsic
  __mmask16 lanes = 0xFFFF;         // line 8: __mmask16 opmask type
  (void)acc;
  (void)lanes;
  (void)out;
  (void)in;
  (void)n;
}
