// Fixture for check_invariants_test.py: the banned float simd reduction
// (one finding, line 7) next to a properly waived integer one (no finding).
#include <cstddef>

float banned_dot(const float* a, const float* b, std::size_t n) {
  float acc = 0.0f;
#pragma omp simd reduction(+ : acc)  // line 7: banned float reduction
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

std::size_t waived_count(const float* a, std::size_t n) {
  std::size_t zeros = 0;
  // lint:allow(omp-simd-reduction): integer count, associativity holds.
#pragma omp simd reduction(+ : zeros)
  for (std::size_t i = 0; i < n; ++i) zeros += a[i] == 0.0f ? 1 : 0;
  return zeros;
}
