// Fixture for check_invariants_test.py: the serving-fleet subsystem lives
// under src/serve/, so the wall-clock, naked-mutex, and raw-thread rules
// must all fire on files in that subtree — a scheduler keyed on wall time,
// a hand-rolled queue mutex, or a worker spawned as a bare std::thread are
// exactly the regressions the fleet's determinism and annotated-locking
// contracts forbid. Line numbers are asserted by the test — append only.

std::mutex queue_mu;  // line 8: std::mutex outside util/sync.h

void worker_pool() {
  std::thread worker([] {});  // line 11: raw std::thread (use util::Thread)
  worker.join();
}

long deadline_now_us() {
  return std::chrono::system_clock::now().time_since_epoch().count();  // line 16
}
