// Fixture for check_invariants_test.py: every wall-clock / randomness
// pattern the linter bans, exactly once each. Line numbers are asserted by
// the test — append new patterns at the end, never insert in the middle.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>
#include <sys/time.h>

int bad_rand() { return rand(); }                                    // line 10: rand()
void bad_srand() { srand(42); }                                      // line 11: srand()
unsigned bad_device() { return std::random_device{}(); }             // line 12: random_device
long bad_time() { return time(nullptr); }                            // line 13: time(nullptr)
auto bad_system() { return std::chrono::system_clock::now(); }       // line 14: system_clock
auto bad_hires() { return std::chrono::high_resolution_clock::now(); }  // line 15: high_resolution_clock
void bad_gtod() { timeval tv; gettimeofday(&tv, nullptr); }          // line 16: gettimeofday
