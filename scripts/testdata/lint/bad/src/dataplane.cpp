// Fixture for check_invariants_test.py: every raw threading / memory-mapping
// construct banned outside src/util/, exactly once each. Line numbers are
// asserted by the test — append only.
#include <sys/mman.h>  // line 4: raw mapping header

void spawn() {
  std::thread worker([] {});  // line 7: raw std::thread
  worker.join();
}

void map_region(int fd, long length) {
  void* addr = mmap(nullptr, length, 1, 1, fd, 0);  // line 12: raw mmap()
  munmap(addr, length);                             // line 13: raw munmap()
}
