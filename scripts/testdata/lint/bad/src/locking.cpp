// Fixture for check_invariants_test.py: every naked std synchronization
// primitive the linter bans outside src/util/sync.h, exactly once each.
// Line numbers are asserted by the test — append only.
#include <mutex>  // line 4: raw primitive include

std::mutex g_mu;               // line 6: std::mutex
std::condition_variable g_cv;  // line 7: std::condition_variable

void locked() {
  std::lock_guard lk(g_mu);  // line 10: std::lock_guard (CTAD: no mutex token)
}
