// Fixture: a quantized-tier test comparing floats bitwise against the
// scalar_ref oracle. The quantized backends are tolerance-gated, so this
// must trip quant-bitwise-oracle (pinned at line 8).

void test_quant_gate() {
  float oracle_logits[4] = {0, 0, 0, 0};
  float quant_logits[4] = {0, 0, 0, 0};
  EXPECT_FLOAT_EQ(oracle_logits[0], quant_logits[0]);
}
