// Fixture for check_invariants_test.py: a bench that never emits through
// bench::BenchReport — exactly one bench-report finding, anchored to line 1.
#include <cstdio>

int main() {
  std::puts("measured something, told no one");
  return 0;
}
