#!/usr/bin/env python3
"""Determinism regression test for check_invariants.py.

Runs the linter over the fixture trees in scripts/testdata/lint/ and asserts:
  * the `bad/` tree produces EXACTLY one diagnostic per banned pattern,
    anchored to the expected file:line (no duplicates, no drift);
  * the `clean/` tree — allowlisted sync.h, banned tokens inside comments
    and string literals, a waived integer simd reduction, a BenchReport'd
    bench — produces zero diagnostics;
  * two runs emit byte-identical output (the linter is deterministic);
  * exit codes are 1 (findings), 0 (clean), 0 (--list-rules).

Dependency-free; exercised by CTest (invariant_lint_selftest) and the
static-analysis CI job.
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

SCRIPTS = Path(__file__).resolve().parent
LINTER = SCRIPTS / "check_invariants.py"
FIXTURES = SCRIPTS / "testdata" / "lint"

# Every banned pattern once: (file, line, rule). The fixtures pin these
# line numbers in comments; a second finding for any (file, rule-pattern)
# or a moved anchor is a regression.
EXPECTED_BAD = [
    ("src/determinism.cpp", 10, "wall-clock"),   # rand()
    ("src/determinism.cpp", 11, "wall-clock"),   # srand()
    ("src/determinism.cpp", 12, "wall-clock"),   # std::random_device
    ("src/determinism.cpp", 13, "wall-clock"),   # time(nullptr)
    ("src/determinism.cpp", 14, "wall-clock"),   # system_clock
    ("src/determinism.cpp", 15, "wall-clock"),   # high_resolution_clock
    ("src/determinism.cpp", 16, "wall-clock"),   # gettimeofday
    ("src/locking.cpp", 4, "naked-mutex"),       # #include <mutex>
    ("src/locking.cpp", 6, "naked-mutex"),       # std::mutex
    ("src/locking.cpp", 7, "naked-mutex"),       # std::condition_variable
    ("src/locking.cpp", 10, "naked-mutex"),      # std::lock_guard
    ("src/dataplane.cpp", 4, "raw-thread-mmap"),   # #include <sys/mman.h>
    ("src/dataplane.cpp", 7, "raw-thread-mmap"),   # std::thread
    ("src/dataplane.cpp", 12, "raw-thread-mmap"),  # mmap(
    ("src/dataplane.cpp", 13, "raw-thread-mmap"),  # munmap(
    ("src/kernels.cpp", 7, "omp-simd-reduction"),
    ("src/isa_leak.cpp", 6, "avx512-isolation"),   # __m512
    ("src/isa_leak.cpp", 7, "avx512-isolation"),   # _mm512_*
    ("src/isa_leak.cpp", 8, "avx512-isolation"),   # __mmask16
    # src/serve/ subtree: the fleet subsystem must not escape the
    # determinism / annotated-locking / managed-thread rules.
    ("src/serve/fleet_scheduler.cpp", 8, "naked-mutex"),
    ("src/serve/fleet_scheduler.cpp", 11, "raw-thread-mmap"),
    ("src/serve/fleet_scheduler.cpp", 16, "wall-clock"),
    ("bench/silent_bench.cpp", 1, "bench-report"),
    ("tests/test_quant_gate.cpp", 8, "quant-bitwise-oracle"),
]

DIAG_RE = re.compile(r"^(?P<path>[^:]+):(?P<line>\d+): error: \[(?P<rule>[a-z0-9-]+)\] ")

failures: list[str] = []


def check(condition: bool, message: str) -> None:
    if not condition:
        failures.append(message)


def run_linter(*argv: str) -> subprocess.CompletedProcess:
    return subprocess.run([sys.executable, str(LINTER), *argv],
                          capture_output=True, text=True, check=False)


def parse(stdout: str) -> list[tuple[str, int, str]]:
    diags = []
    for line in stdout.splitlines():
        match = DIAG_RE.match(line)
        check(match is not None, f"unparseable diagnostic line: {line!r}")
        if match:
            diags.append((match.group("path"), int(match.group("line")),
                          match.group("rule")))
    return diags


def main() -> int:
    # --- bad tree: exactly one diagnostic per banned pattern -------------
    bad = run_linter("--root", str(FIXTURES / "bad"))
    check(bad.returncode == 1,
          f"bad tree: expected exit 1, got {bad.returncode}\n{bad.stderr}")
    got = parse(bad.stdout)
    for expected in EXPECTED_BAD:
        count = got.count(expected)
        check(count == 1,
              f"bad tree: expected exactly one diagnostic {expected}, got {count}")
    for diag in got:
        check(diag in EXPECTED_BAD, f"bad tree: unexpected diagnostic {diag}")
    check(len(got) == len(EXPECTED_BAD),
          f"bad tree: {len(got)} diagnostics, expected {len(EXPECTED_BAD)}")

    # --- determinism: two runs, byte-identical stdout --------------------
    again = run_linter("--root", str(FIXTURES / "bad"))
    check(again.stdout == bad.stdout, "bad tree: output differs between runs")

    # --- clean tree: comments/strings/waivers/allowlist are silent -------
    clean = run_linter("--root", str(FIXTURES / "clean"))
    check(clean.returncode == 0,
          f"clean tree: expected exit 0, got {clean.returncode}\n"
          f"{clean.stdout}{clean.stderr}")
    check(clean.stdout == "", f"clean tree: unexpected output: {clean.stdout!r}")

    # --- scoped invocation: explicit paths behave like the full scan -----
    scoped = run_linter("--root", str(FIXTURES / "bad"),
                        str(FIXTURES / "bad" / "src" / "locking.cpp"))
    check(scoped.returncode == 1, "scoped run: expected exit 1")
    check(len(parse(scoped.stdout)) == 4,
          f"scoped run: expected the 4 locking diagnostics, got:\n{scoped.stdout}")

    # --- --list-rules covers every rule seen above -----------------------
    rules = run_linter("--list-rules")
    check(rules.returncode == 0, "--list-rules: nonzero exit")
    listed = {line.split(":", 1)[0] for line in rules.stdout.splitlines() if line}
    for rule in {rule for (_, _, rule) in EXPECTED_BAD}:
        check(rule in listed, f"--list-rules missing rule {rule}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(f"check_invariants_test: OK "
          f"({len(EXPECTED_BAD)} pinned diagnostics, clean tree silent)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
