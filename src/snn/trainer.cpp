#include "snn/trainer.h"

#include "util/logging.h"

namespace dtsnn::snn {

TrainStats train(SpikingNetwork& net, const Loss& loss, BatchSource& source,
                 const TrainOptions& options) {
  Sgd optimizer(net.params(), options.sgd);
  const CosineSchedule schedule(options.sgd.lr, options.epochs);
  TrainStats stats;

  if (options.gemm_context != nullptr) net.set_gemm_context(options.gemm_context);
  util::GemmContext& gemm = net.gemm_context();
  stats.gemm_backend = std::string(gemm.backend().name());
  const util::GemmStats gemm_start = gemm.stats();
  DTSNN_LOG_DEBUG("training with GEMM backend '%s'", stats.gemm_backend.c_str());

  for (std::size_t epoch = 0; epoch < options.epochs; ++epoch) {
    if (options.cosine_schedule) optimizer.set_lr(schedule.lr_at(epoch));
    source.reshuffle(epoch);

    double epoch_loss = 0.0;
    std::size_t correct = 0;
    std::size_t seen = 0;
    const std::size_t nb = source.num_batches();
    for (std::size_t bi = 0; bi < nb; ++bi) {
      EncodedBatch batch = source.batch(bi, options.timesteps);
      const std::size_t bsz = batch.labels.size();

      Tensor logits = net.forward(batch.x, options.timesteps, /*train=*/true);
      LossResult lr = loss.compute(logits, batch.labels, options.timesteps);
      net.backward(lr.grad);
      optimizer.step();

      epoch_loss += lr.loss * static_cast<double>(bsz);
      correct += lr.correct;
      seen += bsz;
    }
    const double mean_loss = seen ? epoch_loss / static_cast<double>(seen) : 0.0;
    const double accuracy = seen ? static_cast<double>(correct) / static_cast<double>(seen)
                                 : 0.0;
    stats.epoch_loss.push_back(mean_loss);
    stats.epoch_accuracy.push_back(accuracy);
    DTSNN_LOG_DEBUG("epoch %zu: loss=%.4f acc=%.2f%% lr=%.4f", epoch, mean_loss,
                    100.0 * accuracy, optimizer.lr());
    if (options.on_epoch) options.on_epoch(epoch, mean_loss, accuracy);
  }

  const util::GemmStats gemm_end = gemm.stats();
  stats.gemm_gflops = (gemm_end.flops() - gemm_start.flops()) / 1e9;
  // Densities are element-weighted; subtract the pre-run tallies so the
  // reported density covers this run only.
  const double elements = gemm_end.elements() - gemm_start.elements();
  const double nonzeros = gemm_end.nonzeros() - gemm_start.nonzeros();
  stats.gemm_input_density = elements > 0.0 ? nonzeros / elements : 0.0;
  DTSNN_LOG_DEBUG("training GEMM totals: %.2f GFLOP, input density %.3f, backend %s",
                  stats.gemm_gflops, stats.gemm_input_density,
                  stats.gemm_backend.c_str());
  return stats;
}

}  // namespace dtsnn::snn
