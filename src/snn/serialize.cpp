#include "snn/serialize.h"

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "snn/norm.h"
#include "snn/quantize.h"
#include "util/quant.h"

namespace dtsnn::snn {

namespace {

constexpr char kMagic[4] = {'D', 'T', 'S', 'N'};
// Version 2 appends the quantized-weight section (see save_checkpoint).
// Version-1 files still load; they simply carry no quantized weights.
constexpr std::uint32_t kVersion = 2;

/// Weight-bearing layers in stable visit order; index into this vector is
/// the holder id stored in the quantized checkpoint section.
std::vector<QuantizedWeightHolder*> quantized_holders(SpikingNetwork& net) {
  std::vector<QuantizedWeightHolder*> holders;
  net.visit([&holders](Layer& l) {
    if (auto* holder = dynamic_cast<QuantizedWeightHolder*>(&l)) {
      holders.push_back(holder);
    }
  });
  return holders;
}

/// Named tensors to (de)serialize: params then BN buffers, in stable order.
std::vector<std::pair<std::string, Tensor*>> checkpoint_entries(SpikingNetwork& net) {
  std::vector<std::pair<std::string, Tensor*>> entries;
  std::size_t pi = 0;
  for (Param* p : net.params()) {
    entries.emplace_back(p->name + "#" + std::to_string(pi++), &p->value);
  }
  std::size_t bi = 0;
  net.visit([&entries, &bi](Layer& l) {
    if (auto* bn = dynamic_cast<BatchNorm2d*>(&l)) {
      entries.emplace_back("bn.running_mean#" + std::to_string(bi), &bn->running_mean());
      entries.emplace_back("bn.running_var#" + std::to_string(bi), &bn->running_var());
      ++bi;
    }
  });
  return entries;
}

template <typename T>
void write_pod(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
void read_pod(std::ifstream& in, T& v) {
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
}

}  // namespace

void save_checkpoint(SpikingNetwork& net, const std::string& path) {
  // Write to a temp file and rename so concurrent readers (e.g. parallel
  // test processes sharing a checkpoint cache) never observe a torn file.
  const std::string tmp_path = path + ".tmp." + std::to_string(::getpid());
  std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("save_checkpoint: cannot open " + tmp_path);

  auto entries = checkpoint_entries(net);
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kVersion);
  write_pod(out, static_cast<std::uint64_t>(entries.size()));
  for (auto& [name, tensor] : entries) {
    write_pod(out, static_cast<std::uint32_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
    write_pod(out, static_cast<std::uint32_t>(tensor->rank()));
    for (const std::size_t d : tensor->shape()) {
      write_pod(out, static_cast<std::uint64_t>(d));
    }
    out.write(reinterpret_cast<const char*>(tensor->data()),
              static_cast<std::streamsize>(tensor->numel() * sizeof(float)));
  }

  // Quantized-weight section (version 2): calibrated QuantizedMatrix state
  // per weight-bearing layer, keyed by holder visit order. Layout:
  //   u64 quant_count | per matrix: u64 holder_index | u32 bits |
  //   u64 group_size | u64 out | u64 in | u64 packed_bytes | packed bytes |
  //   u64 scale_count | f32 scales[]
  auto holders = quantized_holders(net);
  std::uint64_t quant_count = 0;
  for (const QuantizedWeightHolder* holder : holders) {
    quant_count += holder->quantized_weights().empty() ? 0 : 1;
  }
  write_pod(out, quant_count);
  for (std::size_t hi = 0; hi < holders.size(); ++hi) {
    const util::QuantizedMatrix& q = holders[hi]->quantized_weights();
    if (q.empty()) continue;
    write_pod(out, static_cast<std::uint64_t>(hi));
    write_pod(out, static_cast<std::uint32_t>(q.bits()));
    write_pod(out, static_cast<std::uint64_t>(q.group_size()));
    write_pod(out, static_cast<std::uint64_t>(q.out()));
    write_pod(out, static_cast<std::uint64_t>(q.in()));
    write_pod(out, static_cast<std::uint64_t>(q.packed_bytes()));
    out.write(reinterpret_cast<const char*>(q.packed().data()),
              static_cast<std::streamsize>(q.packed_bytes()));
    write_pod(out, static_cast<std::uint64_t>(q.scales().size()));
    out.write(reinterpret_cast<const char*>(q.scales().data()),
              static_cast<std::streamsize>(q.scale_bytes()));
  }
  if (!out) throw std::runtime_error("save_checkpoint: write failed for " + tmp_path);
  out.close();
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("save_checkpoint: rename to " + path + " failed");
  }
}

void load_checkpoint(SpikingNetwork& net, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_checkpoint: cannot open " + path);

  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("load_checkpoint: bad magic in " + path);
  }
  std::uint32_t version = 0;
  read_pod(in, version);
  if (version != 1 && version != kVersion) {
    throw std::runtime_error("load_checkpoint: unsupported version " +
                             std::to_string(version));
  }
  std::uint64_t count = 0;
  read_pod(in, count);

  auto entries = checkpoint_entries(net);
  if (count != entries.size()) {
    throw std::runtime_error("load_checkpoint: entry count mismatch (file " +
                             std::to_string(count) + ", model " +
                             std::to_string(entries.size()) + ")");
  }

  for (auto& [name, tensor] : entries) {
    std::uint32_t name_len = 0;
    read_pod(in, name_len);
    std::string file_name(name_len, '\0');
    in.read(file_name.data(), name_len);
    if (file_name != name) {
      throw std::runtime_error("load_checkpoint: entry name mismatch: file '" + file_name +
                               "' vs model '" + name + "'");
    }
    std::uint32_t rank = 0;
    read_pod(in, rank);
    Shape shape(rank);
    for (auto& d : shape) {
      std::uint64_t dim = 0;
      read_pod(in, dim);
      d = static_cast<std::size_t>(dim);
    }
    if (shape != tensor->shape()) {
      throw std::runtime_error("load_checkpoint: shape mismatch for '" + name + "': file " +
                               shape_to_string(shape) + " vs model " +
                               shape_to_string(tensor->shape()));
    }
    in.read(reinterpret_cast<char*>(tensor->data()),
            static_cast<std::streamsize>(tensor->numel() * sizeof(float)));
    if (!in) throw std::runtime_error("load_checkpoint: truncated file " + path);
  }

  // Quantized-weight section: absent in version-1 files (calibration state
  // simply clears); version 2 restores every stored matrix deterministically.
  auto holders = quantized_holders(net);
  for (QuantizedWeightHolder* holder : holders) holder->clear_quantized_weights();
  if (version < 2) return;
  std::uint64_t quant_count = 0;
  read_pod(in, quant_count);
  if (!in) throw std::runtime_error("load_checkpoint: truncated file " + path);
  for (std::uint64_t qi = 0; qi < quant_count; ++qi) {
    std::uint64_t holder_index = 0;
    std::uint32_t bits = 0;
    std::uint64_t group_size = 0, out_dim = 0, in_dim = 0, packed_bytes = 0;
    read_pod(in, holder_index);
    read_pod(in, bits);
    read_pod(in, group_size);
    read_pod(in, out_dim);
    read_pod(in, in_dim);
    read_pod(in, packed_bytes);
    if (!in) throw std::runtime_error("load_checkpoint: truncated file " + path);
    if (holder_index >= holders.size()) {
      throw util::QuantizationError(
          util::QuantizationError::Kind::kBadCheckpoint,
          "load_checkpoint: quantized entry for holder " +
              std::to_string(holder_index) + " but model has " +
              std::to_string(holders.size()) + " weight-bearing layers");
    }
    std::vector<std::uint8_t> packed(static_cast<std::size_t>(packed_bytes));
    in.read(reinterpret_cast<char*>(packed.data()),
            static_cast<std::streamsize>(packed.size()));
    std::uint64_t scale_count = 0;
    read_pod(in, scale_count);
    std::vector<float> scales(static_cast<std::size_t>(scale_count));
    in.read(reinterpret_cast<char*>(scales.data()),
            static_cast<std::streamsize>(scales.size() * sizeof(float)));
    if (!in) throw std::runtime_error("load_checkpoint: truncated file " + path);
    // from_raw validates sizes against dims; set_quantized_weights validates
    // dims against the layer's float weights.
    holders[holder_index]->set_quantized_weights(util::QuantizedMatrix::from_raw(
        static_cast<std::size_t>(out_dim), static_cast<std::size_t>(in_dim),
        static_cast<int>(bits), static_cast<std::size_t>(group_size),
        std::move(packed), std::move(scales)));
  }
}

void copy_network_state(SpikingNetwork& src, SpikingNetwork& dst) {
  auto src_entries = checkpoint_entries(src);
  auto dst_entries = checkpoint_entries(dst);
  if (src_entries.size() != dst_entries.size()) {
    throw std::runtime_error("copy_network_state: entry count mismatch (src " +
                             std::to_string(src_entries.size()) + ", dst " +
                             std::to_string(dst_entries.size()) + ")");
  }
  for (std::size_t i = 0; i < src_entries.size(); ++i) {
    auto& [src_name, src_tensor] = src_entries[i];
    auto& [dst_name, dst_tensor] = dst_entries[i];
    if (src_name != dst_name || src_tensor->shape() != dst_tensor->shape()) {
      throw std::runtime_error("copy_network_state: entry mismatch at '" + src_name +
                               "' vs '" + dst_name + "'");
    }
    std::copy(src_tensor->data(), src_tensor->data() + src_tensor->numel(),
              dst_tensor->data());
  }
  // Mirror calibrated quantized weights so replicas (parallel evaluation,
  // serving pools) can run the quantized tier without re-calibration.
  auto src_holders = quantized_holders(src);
  auto dst_holders = quantized_holders(dst);
  if (src_holders.size() != dst_holders.size()) {
    throw std::runtime_error("copy_network_state: weight-layer count mismatch (src " +
                             std::to_string(src_holders.size()) + ", dst " +
                             std::to_string(dst_holders.size()) + ")");
  }
  for (std::size_t i = 0; i < src_holders.size(); ++i) {
    const util::QuantizedMatrix& q = src_holders[i]->quantized_weights();
    if (q.empty()) {
      dst_holders[i]->clear_quantized_weights();
    } else {
      dst_holders[i]->set_quantized_weights(q);
    }
  }
}

}  // namespace dtsnn::snn
