#include "snn/im2col.h"

#include <cassert>
#include <cstring>

namespace dtsnn::snn {

void im2col(const Tensor& x, const ConvGeometry& g, Tensor& col) {
  assert(g.valid());
  assert(x.rank() == 4 && x.dim(1) == g.in_channels && x.dim(2) == g.in_h && x.dim(3) == g.in_w);
  const std::size_t n = x.dim(0);
  const std::size_t oh = g.out_h();
  const std::size_t ow = g.out_w();
  const std::size_t patch = g.patch_size();
  col = Tensor({n * oh * ow, patch});

  const auto ih = static_cast<std::ptrdiff_t>(g.in_h);
  const auto iw = static_cast<std::ptrdiff_t>(g.in_w);
  const auto pad = static_cast<std::ptrdiff_t>(g.padding);

#pragma omp parallel for schedule(static)
  for (std::size_t img = 0; img < n; ++img) {
    const float* xp = x.data() + img * g.in_channels * g.in_h * g.in_w;
    float* colp = col.data() + img * oh * ow * patch;
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        float* dst = colp + (oy * ow + ox) * patch;
        for (std::size_t c = 0; c < g.in_channels; ++c) {
          const float* chan = xp + c * g.in_h * g.in_w;
          for (std::size_t ky = 0; ky < g.kernel; ++ky) {
            const std::ptrdiff_t y =
                static_cast<std::ptrdiff_t>(oy * g.stride + ky) - pad;
            for (std::size_t kx = 0; kx < g.kernel; ++kx) {
              const std::ptrdiff_t xcoord =
                  static_cast<std::ptrdiff_t>(ox * g.stride + kx) - pad;
              const bool inside = y >= 0 && y < ih && xcoord >= 0 && xcoord < iw;
              *dst++ = inside ? chan[y * iw + xcoord] : 0.0f;
            }
          }
        }
      }
    }
  }
}

void col2im(const Tensor& dcol, const ConvGeometry& g, Tensor& dx) {
  assert(g.valid());
  const std::size_t oh = g.out_h();
  const std::size_t ow = g.out_w();
  const std::size_t patch = g.patch_size();
  assert(dcol.rank() == 2 && dcol.dim(1) == patch);
  const std::size_t n = dcol.dim(0) / (oh * ow);
  dx = Tensor({n, g.in_channels, g.in_h, g.in_w});

  const auto ih = static_cast<std::ptrdiff_t>(g.in_h);
  const auto iw = static_cast<std::ptrdiff_t>(g.in_w);
  const auto pad = static_cast<std::ptrdiff_t>(g.padding);

#pragma omp parallel for schedule(static)
  for (std::size_t img = 0; img < n; ++img) {
    float* xp = dx.data() + img * g.in_channels * g.in_h * g.in_w;
    const float* colp = dcol.data() + img * oh * ow * patch;
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        const float* src = colp + (oy * ow + ox) * patch;
        for (std::size_t c = 0; c < g.in_channels; ++c) {
          float* chan = xp + c * g.in_h * g.in_w;
          for (std::size_t ky = 0; ky < g.kernel; ++ky) {
            const std::ptrdiff_t y =
                static_cast<std::ptrdiff_t>(oy * g.stride + ky) - pad;
            for (std::size_t kx = 0; kx < g.kernel; ++kx) {
              const std::ptrdiff_t xcoord =
                  static_cast<std::ptrdiff_t>(ox * g.stride + kx) - pad;
              const float v = *src++;
              if (y >= 0 && y < ih && xcoord >= 0 && xcoord < iw) {
                chan[y * iw + xcoord] += v;
              }
            }
          }
        }
      }
    }
  }
}

}  // namespace dtsnn::snn
