// Leaky integrate-and-fire neuron layer (Eq. 2-3 of the paper) with
// surrogate-gradient backpropagation-through-time.
//
// Dynamics per timestep t (element-wise over the feature map):
//     u_pre[t]  = tau * u_post[t-1] + I[t]         (charge + leak)
//     s[t]      = H(u_pre[t] - Vth)                (fire)
//     u_post[t] = u_pre[t] * (1 - s[t])            (hard reset, paper default)
//                 or u_pre[t] - Vth * s[t]         (soft/subtractive reset)
//
// Multi-step mode consumes [T*B, ...] inputs and caches the membrane
// trajectory for the reverse-time backward pass. Single-step mode keeps the
// membrane as persistent state across step() calls for the sequential
// early-exit engine.

#pragma once

#include "snn/layer.h"
#include "snn/surrogate.h"

namespace dtsnn::snn {

struct LifConfig {
  float vth = 1.0f;          ///< firing threshold V_th
  float tau = 0.5f;          ///< leak factor in (0, 1]
  bool hard_reset = true;    ///< reset-to-zero (paper) vs subtractive reset
  bool detach_reset = true;  ///< stop gradient through the reset path
  SurrogateSpec surrogate{};
};

class Lif final : public Layer {
 public:
  explicit Lif(LifConfig config = {}) : config_(config) {}

  void set_time(std::size_t timesteps, std::size_t batch) override;
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;

  void begin_steps(std::size_t batch) override;
  Tensor step(const Tensor& x) override;
  void compact_state(std::span<const std::size_t> keep) override;

  [[nodiscard]] std::string name() const override { return "Lif"; }
  [[nodiscard]] Shape infer_shape(const Shape& sample_shape) const override {
    return sample_shape;
  }

  [[nodiscard]] const LifConfig& config() const { return config_; }
  /// Mean firing rate of the most recent multi-step forward (spikes per
  /// neuron per timestep); feeds the IMC activity model.
  [[nodiscard]] double last_spike_rate() const { return last_spike_rate_; }

 private:
  LifConfig config_;

  // Multi-step training caches.
  Tensor u_pre_cache_;  // [T*B, ...] membrane before reset at each t
  Tensor spike_cache_;  // [T*B, ...] emitted spikes
  bool have_cache_ = false;

  // Single-step persistent state.
  Tensor membrane_;  // [B, ...] post-reset membrane
  bool stepping_ = false;

  double last_spike_rate_ = 0.0;
};

}  // namespace dtsnn::snn
