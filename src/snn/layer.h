// Layer interface for the spiking network library.
//
// Time-major convention: during multi-step processing, activations carry all
// T timesteps stacked on the leading axis, shape [T*B, C, H, W] (or [T*B, F]
// after flattening), with timestep t occupying rows [t*B, (t+1)*B). Stateless
// layers (conv, linear, pooling, norm) simply see a batch of T*B samples;
// temporal layers (LIF) slice time internally. set_time(T, B) announces the
// temporal structure before each forward pass.
//
// Each layer also supports a *stateful single-step* path (`begin_steps` /
// `step`) used by the sequential DT-SNN engine for true early termination:
// `step` processes a batch of one timestep, with temporal layers keeping
// their membrane state across calls.

#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "snn/tensor.h"
#include "util/gemm.h"

namespace dtsnn::snn {

/// Below this input spike density the A-stationary zero-skip forms win over
/// the dense dot-product forms: Conv2d's direct scatter / NN-form im2col
/// GEMM and Linear's NN-form product against the cached W^T. Layer-level
/// kernel choices keyed on it are speed-only — both forms are bitwise
/// identical for finite weights (see Conv2d::forward). The adaptive GEMM
/// backend's enter threshold matches this value.
inline constexpr double kSparseDensityThreshold = 0.35;

/// A learnable parameter with its gradient accumulator.
struct Param {
  std::string name;
  Tensor value;
  Tensor grad;
  /// Excluded from L2 weight decay (biases, norm affine parameters).
  bool no_decay = false;

  Param(std::string n, Tensor v, bool nd = false)
      : name(std::move(n)), value(std::move(v)), grad(value.shape()), no_decay(nd) {}
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Announce temporal structure of the upcoming forward: T timesteps of
  /// batch B (leading axis = T*B). Stateless layers may ignore it.
  virtual void set_time(std::size_t timesteps, std::size_t batch) {
    timesteps_ = timesteps;
    batch_ = batch;
  }

  /// Multi-step forward over [T*B, ...]. `train` enables stat updates and
  /// caching for backward.
  virtual Tensor forward(const Tensor& x, bool train) = 0;

  /// Backward for the most recent training forward; returns grad wrt input.
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Reset any temporal state and prepare for a sequence of single steps.
  virtual void begin_steps(std::size_t batch) { batch_ = batch; }

  /// Single-timestep inference step (eval semantics). Default: stateless
  /// layers reuse forward(x, /*train=*/false) with T=1.
  virtual Tensor step(const Tensor& x) {
    const std::size_t saved_t = timesteps_;
    timesteps_ = 1;
    Tensor out = forward(x, /*train=*/false);
    timesteps_ = saved_t;
    return out;
  }

  /// Entry in a compact_state() gather meaning "fresh sample": the row is
  /// reset to the begin_steps() state (zero membrane) instead of copied
  /// from an existing row. Lets the batched engine admit new samples into
  /// slots freed by exits (continuous batching).
  static constexpr std::size_t kFreshRow = static_cast<std::size_t>(-1);

  /// Re-shape the single-step batch to rows `keep[j]` of the current batch,
  /// in the given order (a general gather; entries may repeat, and
  /// kFreshRow entries become fresh zero-state rows). The batched
  /// early-exit engine calls this between step()s to drop samples that
  /// exited and admit waiting ones, so compute follows the live batch.
  /// Stateless layers only adjust their announced batch; temporal layers
  /// (LIF) gather their persistent state rows. Only meaningful between
  /// begin_steps() and the next step().
  virtual void compact_state(std::span<const std::size_t> keep) {
    batch_ = keep.size();
  }

  /// Point this layer's GEMM calls at an explicit dispatch context (backend
  /// selection + per-op stats); nullptr reverts to the process-wide
  /// util::GemmContext::global(). SpikingNetwork::set_gemm_context fans this
  /// out over all leaf layers.
  void set_gemm_context(util::GemmContext* context) { gemm_context_ = context; }

  /// The context this layer's GEMMs run through.
  [[nodiscard]] util::GemmContext& gemm_context() const {
    return gemm_context_ != nullptr ? *gemm_context_ : util::GemmContext::global();
  }

  /// Learnable parameters (empty for parameter-free layers).
  virtual std::vector<Param*> params() { return {}; }

  [[nodiscard]] virtual std::string name() const = 0;

  /// Output shape for a single sample given the input sample shape; used by
  /// model builders for shape inference and by the IMC mapper.
  [[nodiscard]] virtual Shape infer_shape(const Shape& sample_shape) const = 0;

 protected:
  std::size_t timesteps_ = 1;
  std::size_t batch_ = 1;
  util::GemmContext* gemm_context_ = nullptr;  ///< nullptr = global context
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace dtsnn::snn
