// Batch normalization for spiking networks.
//
// In the time-major layout (leading axis T*B), normalizing per channel over
// the leading and spatial axes computes statistics jointly over timesteps
// and batch — exactly the "threshold-dependent batch normalization" (tdBN)
// of Zheng et al. 2021 when the normalized activation is additionally scaled
// to the firing threshold alpha*Vth. `BatchNorm2d` implements both: with
// `vth_scale = 1` it is plain BN; model builders pass `vth_scale = Vth` for
// tdBN-style initialization (the scale folds into gamma's initial value).

#pragma once

#include "snn/layer.h"

namespace dtsnn::snn {

class BatchNorm2d final : public Layer {
 public:
  explicit BatchNorm2d(std::size_t channels, float vth_scale = 1.0f, float momentum = 0.1f,
                       float eps = 1e-5f);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override;
  [[nodiscard]] std::string name() const override { return "BatchNorm2d"; }
  [[nodiscard]] Shape infer_shape(const Shape& sample_shape) const override {
    return sample_shape;
  }

  [[nodiscard]] std::size_t channels() const { return channels_; }
  Param& gamma() { return gamma_; }
  Param& beta() { return beta_; }
  Tensor& running_mean() { return running_mean_; }
  Tensor& running_var() { return running_var_; }

 private:
  std::size_t channels_;
  float momentum_;
  float eps_;
  Param gamma_;
  Param beta_;
  Tensor running_mean_;
  Tensor running_var_;

  // Training caches.
  Tensor xhat_cache_;        // normalized input
  std::vector<float> inv_std_cache_;
  bool have_cache_ = false;
};

}  // namespace dtsnn::snn
