#include "snn/network.h"

#include <stdexcept>

namespace dtsnn::snn {

// ---------------------------------------------------------------- Sequential

void Sequential::set_time(std::size_t timesteps, std::size_t batch) {
  Layer::set_time(timesteps, batch);
  for (auto& l : layers_) l->set_time(timesteps, batch);
}

Tensor Sequential::forward(const Tensor& x, bool train) {
  Tensor a = x;
  for (auto& l : layers_) a = l->forward(a, train);
  return a;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) g = (*it)->backward(g);
  return g;
}

void Sequential::begin_steps(std::size_t batch) {
  Layer::begin_steps(batch);
  for (auto& l : layers_) l->begin_steps(batch);
}

Tensor Sequential::step(const Tensor& x) {
  Tensor a = x;
  for (auto& l : layers_) a = l->step(a);
  return a;
}

void Sequential::compact_state(std::span<const std::size_t> keep) {
  Layer::compact_state(keep);
  for (auto& l : layers_) l->compact_state(keep);
}

std::vector<Param*> Sequential::params() {
  std::vector<Param*> ps;
  for (auto& l : layers_) {
    for (Param* p : l->params()) ps.push_back(p);
  }
  return ps;
}

Shape Sequential::infer_shape(const Shape& sample_shape) const {
  Shape s = sample_shape;
  for (const auto& l : layers_) s = l->infer_shape(s);
  return s;
}

void Sequential::visit(const std::function<void(Layer&)>& fn) {
  for (auto& l : layers_) {
    if (auto* seq = dynamic_cast<Sequential*>(l.get())) {
      seq->visit(fn);
    } else if (auto* res = dynamic_cast<ResidualBlock*>(l.get())) {
      res->visit(fn);
    } else {
      fn(*l);
    }
  }
}

// ------------------------------------------------------------ ResidualBlock

ResidualBlock::ResidualBlock(Sequential main_path, Sequential shortcut, LifConfig out_lif)
    : main_(std::move(main_path)), shortcut_(std::move(shortcut)), out_lif_(out_lif) {}

void ResidualBlock::set_time(std::size_t timesteps, std::size_t batch) {
  Layer::set_time(timesteps, batch);
  main_.set_time(timesteps, batch);
  shortcut_.set_time(timesteps, batch);
  out_lif_.set_time(timesteps, batch);
}

Tensor ResidualBlock::forward(const Tensor& x, bool train) {
  Tensor m = main_.forward(x, train);
  Tensor s = has_projection() ? shortcut_.forward(x, train) : x;
  if (m.shape() != s.shape()) {
    throw std::invalid_argument("ResidualBlock: main/shortcut shape mismatch " +
                                shape_to_string(m.shape()) + " vs " +
                                shape_to_string(s.shape()));
  }
  m.add_(s);
  return out_lif_.forward(m, train);
}

Tensor ResidualBlock::backward(const Tensor& grad_out) {
  Tensor g = out_lif_.backward(grad_out);
  // g flows to both branches.
  Tensor gx = main_.backward(g);
  if (has_projection()) {
    gx.add_(shortcut_.backward(g));
  } else {
    gx.add_(g);
  }
  return gx;
}

void ResidualBlock::begin_steps(std::size_t batch) {
  Layer::begin_steps(batch);
  main_.begin_steps(batch);
  shortcut_.begin_steps(batch);
  out_lif_.begin_steps(batch);
}

Tensor ResidualBlock::step(const Tensor& x) {
  Tensor m = main_.step(x);
  Tensor s = has_projection() ? shortcut_.step(x) : x;
  m.add_(s);
  return out_lif_.step(m);
}

void ResidualBlock::compact_state(std::span<const std::size_t> keep) {
  Layer::compact_state(keep);
  main_.compact_state(keep);
  shortcut_.compact_state(keep);
  out_lif_.compact_state(keep);
}

std::vector<Param*> ResidualBlock::params() {
  std::vector<Param*> ps = main_.params();
  for (Param* p : shortcut_.params()) ps.push_back(p);
  return ps;
}

Shape ResidualBlock::infer_shape(const Shape& sample_shape) const {
  return main_.infer_shape(sample_shape);
}

void ResidualBlock::visit(const std::function<void(Layer&)>& fn) {
  main_.visit(fn);
  shortcut_.visit(fn);
  fn(out_lif_);
}

// ----------------------------------------------------------- SpikingNetwork

Tensor SpikingNetwork::forward(const Tensor& x, std::size_t timesteps, bool train) {
  if (x.dim(0) % timesteps != 0) {
    throw std::invalid_argument("SpikingNetwork::forward: leading dim not divisible by T");
  }
  body_.set_time(timesteps, x.dim(0) / timesteps);
  Tensor logits = body_.forward(x, train);
  if (logits.rank() != 2 || logits.dim(1) != num_classes_) {
    throw std::logic_error("SpikingNetwork: body output shape " +
                           shape_to_string(logits.shape()) + " is not [T*B, K]");
  }
  return logits;
}

void SpikingNetwork::backward(const Tensor& grad_logits) { body_.backward(grad_logits); }

void SpikingNetwork::begin_inference(std::size_t batch) { body_.begin_steps(batch); }

Tensor SpikingNetwork::step(const Tensor& x_t) { return body_.step(x_t); }

void SpikingNetwork::compact_inference_state(std::span<const std::size_t> keep) {
  body_.compact_state(keep);
}

std::vector<Param*> SpikingNetwork::params() { return body_.params(); }

void SpikingNetwork::set_gemm_context(util::GemmContext* context) {
  gemm_context_ = context;
  body_.visit([context](Layer& layer) { layer.set_gemm_context(context); });
}

std::vector<double> SpikingNetwork::lif_spike_rates() {
  std::vector<double> rates;
  body_.visit([&rates](Layer& l) {
    if (auto* lif = dynamic_cast<Lif*>(&l)) rates.push_back(lif->last_spike_rate());
  });
  return rates;
}

std::size_t SpikingNetwork::parameter_count() {
  std::size_t n = 0;
  for (const Param* p : params()) n += p->value.numel();
  return n;
}

}  // namespace dtsnn::snn
