// Network containers: Sequential composition, spiking residual blocks, and
// the top-level SpikingNetwork that manages the time dimension.
//
// SpikingNetwork::forward consumes a time-major input [T*B, C, H, W] (for
// static images every timestep carries the same frame — direct encoding,
// Eq. 1; for event data each timestep carries its own frame) and returns
// per-timestep classifier outputs [T*B, K]. The first Conv+LIF block acts as
// the learned spike encoder g_1(x), as in the paper.

#pragma once

#include <functional>

#include "snn/layer.h"
#include "snn/lif.h"

namespace dtsnn::snn {

/// Ordered composition of layers; also usable as a sub-module.
class Sequential : public Layer {
 public:
  Sequential() = default;

  void append(LayerPtr layer) { layers_.push_back(std::move(layer)); }
  [[nodiscard]] std::size_t size() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }
  [[nodiscard]] const Layer& layer(std::size_t i) const { return *layers_.at(i); }

  void set_time(std::size_t timesteps, std::size_t batch) override;
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void begin_steps(std::size_t batch) override;
  Tensor step(const Tensor& x) override;
  void compact_state(std::span<const std::size_t> keep) override;
  std::vector<Param*> params() override;
  [[nodiscard]] std::string name() const override { return "Sequential"; }
  [[nodiscard]] Shape infer_shape(const Shape& sample_shape) const override;

  /// Depth-first visit of every non-container layer (this one included if
  /// it has no children).
  void visit(const std::function<void(Layer&)>& fn);

 private:
  std::vector<LayerPtr> layers_;
};

/// Spiking residual block: out = LIF(main(x) + shortcut(x)).
/// The main path is conv-bn-lif-conv-bn; the shortcut is identity or a
/// projection conv-bn when shape changes (ResNet-19 style, tdBN variant where
/// the residual sum happens on membrane inputs before the output LIF).
class ResidualBlock final : public Layer {
 public:
  ResidualBlock(Sequential main_path, Sequential shortcut, LifConfig out_lif);

  void set_time(std::size_t timesteps, std::size_t batch) override;
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void begin_steps(std::size_t batch) override;
  Tensor step(const Tensor& x) override;
  void compact_state(std::span<const std::size_t> keep) override;
  std::vector<Param*> params() override;
  [[nodiscard]] std::string name() const override { return "ResidualBlock"; }
  [[nodiscard]] Shape infer_shape(const Shape& sample_shape) const override;

  Sequential& main_path() { return main_; }
  Sequential& shortcut() { return shortcut_; }
  Lif& output_lif() { return out_lif_; }
  [[nodiscard]] bool has_projection() const { return shortcut_.size() > 0; }

  void visit(const std::function<void(Layer&)>& fn);

 private:
  Sequential main_;
  Sequential shortcut_;
  Lif out_lif_;
};

/// Top-level spiking classifier.
class SpikingNetwork {
 public:
  SpikingNetwork(Sequential body, std::size_t num_classes, Shape sample_shape)
      : body_(std::move(body)),
        num_classes_(num_classes),
        sample_shape_(std::move(sample_shape)) {}

  /// Multi-step forward: x is [T*B, C, H, W]; returns logits [T*B, K].
  Tensor forward(const Tensor& x, std::size_t timesteps, bool train);
  /// Backward for the last training forward; grad is [T*B, K].
  void backward(const Tensor& grad_logits);

  /// Sequential inference: reset temporal state for a batch, then feed one
  /// timestep at a time. Returns this timestep's raw classifier output y_t.
  void begin_inference(std::size_t batch);
  Tensor step(const Tensor& x_t);

  /// Shrink the sequential-inference batch to rows `keep[j]` of the current
  /// batch (a general gather, in the given order): every layer's temporal
  /// state (LIF membranes) is gathered accordingly. The batched early-exit
  /// engine calls this as samples exit so the remaining step()s run on the
  /// live samples only.
  void compact_inference_state(std::span<const std::size_t> keep);

  std::vector<Param*> params();
  Sequential& body() { return body_; }
  [[nodiscard]] std::size_t num_classes() const { return num_classes_; }
  [[nodiscard]] const Shape& sample_shape() const { return sample_shape_; }

  /// Depth-first visit of all leaf layers (convs, norms, LIFs, ...).
  void visit(const std::function<void(Layer&)>& fn) { body_.visit(fn); }

  /// Route every conv/linear GEMM of this network through `context`
  /// (backend selection + per-op stats); nullptr reverts to the process-wide
  /// util::GemmContext::global(). Backends are bitwise identical, so this
  /// never changes logits or exit decisions — only how fast they happen and
  /// where the FLOPs are accounted.
  void set_gemm_context(util::GemmContext* context);

  /// The context this network's GEMMs run through.
  [[nodiscard]] util::GemmContext& gemm_context() const {
    return gemm_context_ != nullptr ? *gemm_context_ : util::GemmContext::global();
  }

  /// Mean spike rate per LIF layer from the most recent multi-step forward.
  [[nodiscard]] std::vector<double> lif_spike_rates();

  /// Total learnable parameter count.
  [[nodiscard]] std::size_t parameter_count();

 private:
  Sequential body_;
  std::size_t num_classes_;
  Shape sample_shape_;
  util::GemmContext* gemm_context_ = nullptr;  ///< nullptr = global context
};

}  // namespace dtsnn::snn
