#include "snn/surrogate.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace dtsnn::snn {

SurrogateKind surrogate_from_string(const std::string& name) {
  if (name == "triangle") return SurrogateKind::kTriangle;
  if (name == "dspike") return SurrogateKind::kDspike;
  if (name == "rectangle") return SurrogateKind::kRectangle;
  if (name == "atan") return SurrogateKind::kAtan;
  throw std::invalid_argument("unknown surrogate: " + name);
}

std::string to_string(SurrogateKind kind) {
  switch (kind) {
    case SurrogateKind::kTriangle: return "triangle";
    case SurrogateKind::kDspike: return "dspike";
    case SurrogateKind::kRectangle: return "rectangle";
    case SurrogateKind::kAtan: return "atan";
  }
  return "?";
}

float surrogate_grad(const SurrogateSpec& spec, float u, float vth) {
  const float d = u - vth;
  switch (spec.kind) {
    case SurrogateKind::kTriangle: {
      // Eq. (4): max(0, Vth - |u - Vth|).
      const float v = vth - std::abs(d);
      return v > 0.0f ? v : 0.0f;
    }
    case SurrogateKind::kDspike: {
      // Derivative of the Dspike soft-spike family: a scaled, normalized
      // tanh. b controls the temperature; integral over u is 1.
      const float b = spec.alpha;
      const float t = std::tanh(b * d);
      // Normalizer keeps peak value = b / (2 * tanh(b/2)) as in the paper's
      // finite-support construction evaluated on [Vth-1, Vth+1].
      const float denom = 2.0f * std::tanh(b * 0.5f);
      if (std::abs(d) > 1.0f) return 0.0f;
      return b * (1.0f - t * t) / denom;
    }
    case SurrogateKind::kRectangle: {
      const float a = spec.alpha;  // half-width
      return std::abs(d) < a ? 1.0f / (2.0f * a) : 0.0f;
    }
    case SurrogateKind::kAtan: {
      // d/du [ (1/pi) * atan(pi/2 * alpha * d) + 1/2 ].
      const float a = spec.alpha;
      const float z = std::numbers::pi_v<float> * 0.5f * a * d;
      return a / (2.0f * (1.0f + z * z));
    }
  }
  return 0.0f;
}

}  // namespace dtsnn::snn
