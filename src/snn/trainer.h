// Training loop: SGD + cosine schedule over an abstract batch source.
//
// The batch source yields time-major encoded inputs [T*B, C, H, W] plus
// labels; the dataset module implements it for static images (direct
// encoding — every timestep repeats the frame) and for event streams
// (distinct frames per timestep).

#pragma once

#include <functional>
#include <vector>

#include "snn/loss.h"
#include "snn/network.h"
#include "snn/optimizer.h"

namespace dtsnn::snn {

struct EncodedBatch {
  Tensor x;                 ///< [T*B, C, H, W]
  std::vector<int> labels;  ///< B entries
};

/// Abstract provider of training batches for one epoch. Implementations own
/// shuffling (reshuffle(epoch) is called before each epoch).
class BatchSource {
 public:
  virtual ~BatchSource() = default;
  virtual std::size_t num_batches() const = 0;
  virtual EncodedBatch batch(std::size_t index, std::size_t timesteps) const = 0;
  virtual void reshuffle(std::size_t epoch) = 0;
};

struct TrainOptions {
  std::size_t epochs = 10;
  std::size_t timesteps = 4;
  SgdConfig sgd{};
  bool cosine_schedule = true;
  /// Route the network's GEMMs through this dispatch context for the whole
  /// run (backend choice + FLOP/density accounting). nullptr keeps whatever
  /// context the network already uses (the global one by default). Backends
  /// are bitwise identical, so the trained weights do not depend on this.
  util::GemmContext* gemm_context = nullptr;
  /// Called after each epoch with (epoch, train_loss, train_acc).
  std::function<void(std::size_t, double, double)> on_epoch;
};

struct TrainStats {
  std::vector<double> epoch_loss;
  std::vector<double> epoch_accuracy;
  /// GEMM accounting over the whole run, from the network's GemmContext.
  std::string gemm_backend;
  double gemm_gflops = 0.0;        ///< dense GFLOPs pushed through the GEMMs
  double gemm_input_density = 0.0; ///< element-weighted nonzero density of A operands
  [[nodiscard]] double final_loss() const {
    return epoch_loss.empty() ? 0.0 : epoch_loss.back();
  }
  [[nodiscard]] double final_accuracy() const {
    return epoch_accuracy.empty() ? 0.0 : epoch_accuracy.back();
  }
};

/// Runs the full training loop; returns per-epoch statistics.
TrainStats train(SpikingNetwork& net, const Loss& loss, BatchSource& source,
                 const TrainOptions& options);

}  // namespace dtsnn::snn
