// Model zoo: spiking VGG and spiking ResNet builders.
//
// The paper evaluates VGG-16 and ResNet-19. Training those at full scale is
// a GPU-days workload; the library provides (a) faithful *mini* variants used
// for every trained experiment on the synthetic datasets, and (b) the full
// VGG-16/ResNet-19 layer geometry in imc/network_spec.h for the hardware
// mapping experiments, which need layer shapes and activity factors only.
//
// Every conv is 3x3/pad-1 bias-free followed by tdBN-style BatchNorm and a
// LIF neuron; downsampling uses stride-2 convs (ResNet) or 2x2 average
// pooling (VGG), mirroring the reference architectures.

#pragma once

#include <string>
#include <vector>

#include "snn/network.h"

namespace dtsnn::snn {

struct ModelConfig {
  std::size_t num_classes = 10;
  Shape input_shape{3, 16, 16};  ///< [C, H, W] of one frame
  LifConfig lif{};
  /// tdBN scale: BN gamma initialized to alpha * Vth (1.0 disables).
  float bn_vth_scale = 1.0f;
  std::uint64_t seed = 1;
};

/// Spiking VGG from a channel plan; entries > 0 are conv widths, -1 is a 2x2
/// average pool. Features are followed by Flatten + Linear classifier.
SpikingNetwork make_spiking_vgg(const std::vector<int>& plan, const ModelConfig& config);

/// Spiking ResNet: stem conv + `stage_channels.size()` stages of one residual
/// block each (stride 2 from the second stage on), global average pool,
/// linear classifier.
SpikingNetwork make_spiking_resnet(const std::vector<std::size_t>& stage_channels,
                                   const ModelConfig& config);

/// Named presets used across tests/benches:
///  "vgg_mini"    — 5-conv VGG (32,32,M,64,64,M,128,M)
///  "vgg_micro"   — 3-conv VGG (16,M,32,M) for fast tests
///  "resnet_mini" — stem 16 + stages {16, 32, 64}
///  "resnet_micro"— stem 8 + stages {8, 16}
SpikingNetwork make_model(const std::string& preset, const ModelConfig& config);

/// All preset names accepted by make_model.
std::vector<std::string> model_presets();

}  // namespace dtsnn::snn
