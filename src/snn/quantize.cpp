#include "snn/quantize.h"

#include "snn/network.h"
#include "util/logging.h"

namespace dtsnn::snn {

namespace {

template <typename Fn>
void visit_holders(SpikingNetwork& net, Fn&& fn) {
  net.visit([&](Layer& layer) {
    if (auto* holder = dynamic_cast<QuantizedWeightHolder*>(&layer)) fn(*holder);
  });
}

}  // namespace

std::size_t quantize_network_weights(SpikingNetwork& net, const util::QuantSpec& spec) {
  spec.validate();
  std::size_t count = 0;
  visit_holders(net, [&](QuantizedWeightHolder& holder) {
    const Tensor& w = holder.quantizable_weight();
    holder.set_quantized_weights(
        util::QuantizedMatrix::quantize(w.data(), w.dim(0), w.dim(1), spec));
    ++count;
  });
  return count;
}

void clear_network_quantized_weights(SpikingNetwork& net) {
  visit_holders(net, [](QuantizedWeightHolder& holder) {
    holder.clear_quantized_weights();
  });
}

int network_quantized_bits(SpikingNetwork& net) {
  int bits = 0;
  bool mixed = false;
  bool first = true;
  visit_holders(net, [&](QuantizedWeightHolder& holder) {
    const util::QuantizedMatrix& q = holder.quantized_weights();
    const int layer_bits = q.empty() ? 0 : q.bits();
    if (first) {
      bits = layer_bits;
      first = false;
    } else if (layer_bits != bits) {
      mixed = true;
    }
  });
  if (first) return 0;  // no weight-bearing layers
  return mixed ? -1 : bits;
}

QuantFootprint network_quant_footprint(SpikingNetwork& net) {
  QuantFootprint fp;
  visit_holders(net, [&](QuantizedWeightHolder& holder) {
    ++fp.layers;
    const Tensor& w = holder.quantizable_weight();
    fp.float_bytes += w.numel() * sizeof(float);
    const util::QuantizedMatrix& q = holder.quantized_weights();
    if (!q.empty()) {
      ++fp.quantized_layers;
      fp.packed_bytes += q.packed_bytes();
      fp.scale_bytes += q.scale_bytes();
    }
  });
  return fp;
}

void require_quantized_weights(const util::QuantizedGemmBackend& backend,
                               const util::QuantizedMatrix& q, const char* layer_name) {
  if (q.empty()) {
    throw util::QuantizationError(
        util::QuantizationError::Kind::kUncalibrated,
        util::format(
            "GEMM backend '%.*s' selected but %s has no calibrated quantized "
            "weights; run snn::quantize_network_weights / "
            "core::calibrate_quantized before inference (is DTSNN_GEMM_BACKEND "
            "forcing a quantized backend on an uncalibrated network?)",
            static_cast<int>(backend.name().size()), backend.name().data(),
            layer_name));
  }
  if (q.bits() != backend.weight_bits()) {
    throw util::QuantizationError(
        util::QuantizationError::Kind::kBitsMismatch,
        util::format("GEMM backend '%.*s' consumes %d-bit weights but %s is "
                     "calibrated at %d bits; re-run calibration for this tier",
                     static_cast<int>(backend.name().size()), backend.name().data(),
                     backend.weight_bits(), layer_name, q.bits()));
  }
}

}  // namespace dtsnn::snn
