// Binary checkpoint serialization for SpikingNetwork.
//
// Format (little-endian):
//   magic "DTSN" | u32 version | u64 entry_count |
//   per entry: u32 name_len | name bytes | u32 rank | u64 dims[rank] | f32 data[]
// Entries are the network's learnable parameters in params() order followed
// by batch-norm running statistics in visit order. Loading requires an
// architecturally identical network (names and shapes are checked).
//
// Version 2 appends a quantized-weight section (calibrated
// util::QuantizedMatrix state per weight-bearing layer, keyed by visit
// order; layout documented in serialize.cpp) so post-training quantization
// checkpoints and restores deterministically. Version-1 files still load and
// leave the network uncalibrated.

#pragma once

#include <string>

#include "snn/network.h"

namespace dtsnn::snn {

/// Writes all parameters and normalization buffers. Throws on I/O failure.
void save_checkpoint(SpikingNetwork& net, const std::string& path);

/// Restores a checkpoint written by save_checkpoint into an identically
/// structured network. Throws on mismatch or I/O failure.
void load_checkpoint(SpikingNetwork& net, const std::string& path);

/// Copies all parameters and normalization buffers from `src` into the
/// architecturally identical `dst` (names and shapes are checked). Used to
/// stamp out per-thread worker replicas for parallel evaluation.
void copy_network_state(SpikingNetwork& src, SpikingNetwork& dst);

}  // namespace dtsnn::snn
