// Network-level post-training weight quantization.
//
// Weight-bearing layers (Conv2d, Linear) additionally implement
// QuantizedWeightHolder: alongside their float weights they can carry a
// calibrated util::QuantizedMatrix, which the eval-time forward consumes
// when the layer's GemmContext selects a quantized backend (int8_spike /
// int4_spike). The float weights always remain authoritative — training,
// serialization of float params, and the bitwise-tier backends never look at
// the quantized copy.
//
// quantize_network_weights() installs quantized weights on every holder;
// core::calibrate_quantized() wraps it with a streaming measurement pass
// that reports decision-flip-rate and accuracy delta versus the scalar_ref
// oracle (the tolerance-gated identity contract, see util/gemm.h).

#pragma once

#include <cstddef>

#include "snn/tensor.h"
#include "util/gemm.h"
#include "util/quant.h"

namespace dtsnn::snn {

class SpikingNetwork;

/// Implemented by layers whose weights can be quantized. The quantized copy
/// is shape-checked against the float weight on installation
/// (QuantizationError(kShapeMismatch)).
class QuantizedWeightHolder {
 public:
  virtual ~QuantizedWeightHolder() = default;

  /// The float weight matrix the quantized copy mirrors, [out, in] row-major.
  [[nodiscard]] virtual const Tensor& quantizable_weight() const = 0;

  /// Calibrated quantized weights; empty() when not calibrated.
  [[nodiscard]] virtual const util::QuantizedMatrix& quantized_weights() const = 0;
  virtual void set_quantized_weights(util::QuantizedMatrix q) = 0;
  virtual void clear_quantized_weights() = 0;
};

/// Quantize every holder's float weights under `spec`. Returns the number of
/// layers quantized (0 for a network without weight-bearing layers).
std::size_t quantize_network_weights(SpikingNetwork& net, const util::QuantSpec& spec);

/// Drop all calibrated quantized weights (quantized backends then refuse to
/// run this network again until re-calibrated).
void clear_network_quantized_weights(SpikingNetwork& net);

/// Uniform quantized bit-width of the network's holders: 0 when none are
/// calibrated, 8 or 4 when all are calibrated at that width, -1 when the
/// state is partial or mixed (invalid for inference).
int network_quantized_bits(SpikingNetwork& net);

/// Resident weight-footprint accounting across all holders.
struct QuantFootprint {
  std::size_t float_bytes = 0;   ///< all holders' float weights
  std::size_t packed_bytes = 0;  ///< quantized integer codes
  std::size_t scale_bytes = 0;   ///< group scales
  std::size_t layers = 0;            ///< weight-bearing layers
  std::size_t quantized_layers = 0;  ///< of which calibrated
};
QuantFootprint network_quant_footprint(SpikingNetwork& net);

/// Dispatch-time guard used by the layers: throws
/// QuantizationError(kUncalibrated) when `q` is empty and (kBitsMismatch)
/// when its width disagrees with the backend's — the loud typed failure for
/// DTSNN_GEMM_BACKEND naming a quantized backend on an uncalibrated network.
void require_quantized_weights(const util::QuantizedGemmBackend& backend,
                               const util::QuantizedMatrix& q, const char* layer_name);

}  // namespace dtsnn::snn
