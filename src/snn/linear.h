// Fully connected layer and the Flatten adapter that precedes it.

#pragma once

#include "snn/layer.h"
#include "snn/quantize.h"
#include "util/rng.h"

namespace dtsnn::snn {

class Linear final : public Layer, public QuantizedWeightHolder {
 public:
  Linear(std::size_t in_features, std::size_t out_features, bool bias, util::Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void set_time(std::size_t timesteps, std::size_t batch) override;
  void begin_steps(std::size_t batch) override;
  std::vector<Param*> params() override;
  [[nodiscard]] std::string name() const override { return "Linear"; }
  [[nodiscard]] Shape infer_shape(const Shape& sample_shape) const override;

  [[nodiscard]] std::size_t in_features() const { return in_features_; }
  [[nodiscard]] std::size_t out_features() const { return out_features_; }
  /// Weight tensor, shape [out_features, in_features].
  Param& weight() { return weight_; }
  Param& bias() { return bias_; }
  [[nodiscard]] bool has_bias() const { return has_bias_; }

  // QuantizedWeightHolder: optional post-training quantized weight copy,
  // consumed by eval forwards when a quantized backend is selected.
  [[nodiscard]] const Tensor& quantizable_weight() const override {
    return weight_.value;
  }
  [[nodiscard]] const util::QuantizedMatrix& quantized_weights() const override {
    return qweight_;
  }
  void set_quantized_weights(util::QuantizedMatrix q) override;
  void clear_quantized_weights() override { qweight_ = util::QuantizedMatrix(); }

 private:
  /// W^T [in, out], materialized lazily for the sparse eval form and cached
  /// across the steps of one sequence (set_time / begin_steps mark it dirty;
  /// weights only change between sequences). Mirrors Conv2d.
  const float* ensure_weight_transpose();

  std::size_t in_features_, out_features_;
  bool has_bias_;
  Param weight_;
  Param bias_;
  util::QuantizedMatrix qweight_;
  Tensor input_cache_;
  bool have_cache_ = false;
  Tensor wt_scratch_;
  bool wt_dirty_ = true;
};

/// Collapses [N, C, H, W] to [N, C*H*W]; identity on already-flat input.
class Flatten final : public Layer {
 public:
  Tensor forward(const Tensor& x, bool /*train*/) override {
    in_shape_ = x.shape();
    return x.reshaped({x.dim(0), x.row_size()});
  }
  Tensor backward(const Tensor& grad_out) override { return grad_out.reshaped(in_shape_); }
  [[nodiscard]] std::string name() const override { return "Flatten"; }
  [[nodiscard]] Shape infer_shape(const Shape& sample_shape) const override {
    return {shape_numel(sample_shape)};
  }

 private:
  Shape in_shape_;
};

}  // namespace dtsnn::snn
