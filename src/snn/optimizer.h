// SGD with momentum, decoupled-from-gradient L2 regularization, and the
// cosine learning-rate schedule used by the paper's training recipe
// (lr 0.1, momentum 0.9, L2 5e-4, cosine decay).

#pragma once

#include <cstddef>
#include <vector>

#include "snn/layer.h"

namespace dtsnn::snn {

struct SgdConfig {
  float lr = 0.1f;
  float momentum = 0.9f;
  float weight_decay = 5e-4f;
};

class Sgd {
 public:
  Sgd(std::vector<Param*> params, SgdConfig config);

  /// Apply one update from the accumulated gradients, then clear them.
  void step();
  /// Clear accumulated gradients without updating.
  void zero_grad();

  void set_lr(float lr) { config_.lr = lr; }
  [[nodiscard]] float lr() const { return config_.lr; }
  [[nodiscard]] const SgdConfig& config() const { return config_; }

 private:
  std::vector<Param*> params_;
  std::vector<Tensor> velocity_;
  SgdConfig config_;
};

/// Cosine annealing: lr(e) = lr0 * 0.5 * (1 + cos(pi * e / total)).
class CosineSchedule {
 public:
  CosineSchedule(float base_lr, std::size_t total_epochs)
      : base_lr_(base_lr), total_epochs_(total_epochs) {}
  [[nodiscard]] float lr_at(std::size_t epoch) const;

 private:
  float base_lr_;
  std::size_t total_epochs_;
};

}  // namespace dtsnn::snn
