#include "snn/linear.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "util/gemm.h"
#include "util/logging.h"
#include "util/quant.h"

namespace dtsnn::snn {

Linear::Linear(std::size_t in_features, std::size_t out_features, bool bias, util::Rng& rng)
    : in_features_(in_features),
      out_features_(out_features),
      has_bias_(bias),
      weight_("linear.weight", Tensor({out_features, in_features})),
      bias_("linear.bias", Tensor({out_features}), /*no_decay=*/true) {
  const float bound = std::sqrt(6.0f / static_cast<float>(in_features));
  for (auto& w : weight_.value.span()) w = static_cast<float>(rng.uniform(-bound, bound));
  if (has_bias_) {
    const float bbound = 1.0f / std::sqrt(static_cast<float>(in_features));
    for (auto& b : bias_.value.span()) b = static_cast<float>(rng.uniform(-bbound, bbound));
  }
}

void Linear::set_time(std::size_t timesteps, std::size_t batch) {
  Layer::set_time(timesteps, batch);
  wt_dirty_ = true;
}

void Linear::begin_steps(std::size_t batch) {
  Layer::begin_steps(batch);
  wt_dirty_ = true;
}

const float* Linear::ensure_weight_transpose() {
  if (wt_dirty_ || wt_scratch_.numel() != in_features_ * out_features_) {
    if (wt_scratch_.numel() != in_features_ * out_features_) {
      wt_scratch_ = Tensor({in_features_, out_features_});
    }
    for (std::size_t c = 0; c < out_features_; ++c) {
      const float* src = weight_.value.data() + c * in_features_;
      for (std::size_t p = 0; p < in_features_; ++p) {
        wt_scratch_[p * out_features_ + c] = src[p];
      }
    }
    wt_dirty_ = false;
  }
  return wt_scratch_.data();
}

Tensor Linear::forward(const Tensor& x, bool train) {
  if (x.rank() != 2 || x.dim(1) != in_features_) {
    throw std::invalid_argument("Linear: bad input shape " + shape_to_string(x.shape()));
  }
  const std::size_t n = x.dim(0);
  Tensor out({n, out_features_});
  util::GemmContext& gemm = gemm_context();
  const util::QuantizedGemmBackend* qb =
      train ? nullptr : util::as_quantized_backend(&gemm.backend());
  if (qb != nullptr) {
    // Quantized inference tier: spikes select quantized weight rows
    // (multiply-free integer accumulate, dequantized per scale group).
    // Requires calibrated weights at this backend's bit-width — fails loudly
    // otherwise. Training forwards never take this path.
    require_quantized_weights(*qb, qweight_, "Linear");
    // LUT backends run fastest off a cached spike-mask table; build it once
    // per quantized weight matrix (derived data, single-threaded dispatch).
    if (qb->prefers_lut()) qweight_.ensure_lut();
    gemm.qgemm(x.data(), qweight_, out.data(), n, in_features_, out_features_);
  } else if (!train && x.density() < kSparseDensityThreshold) {
    // out = x * W^T in the A-stationary zero-skip NN form against the cached
    // W^T: bitwise identical to the dense dot-product form below for finite
    // weights (same ascending-k accumulation from a zero start; skipped
    // zero-spike terms only ever contribute ±0, and the final add into the
    // zeroed output restores +0 in both forms), so — exactly as in
    // Conv2d::forward — this is purely a speed decision, and it hands the
    // sparse NN op to the backends (sparse_spike, adaptive routing) that
    // exploit it.
    gemm.gemm(x.data(), ensure_weight_transpose(), out.data(), n, in_features_,
              out_features_);
  } else {
    // out = x * W^T
    gemm.gemm_bt(x.data(), weight_.value.data(), out.data(), n, in_features_,
                 out_features_);
  }
  if (has_bias_) {
    const float* b = bias_.value.data();
#pragma omp parallel for schedule(static)
    for (std::size_t r = 0; r < n; ++r) {
      float* row = out.data() + r * out_features_;
      for (std::size_t c = 0; c < out_features_; ++c) row[c] += b[c];
    }
  }
  if (train) {
    input_cache_ = x;
    have_cache_ = true;
  } else {
    input_cache_ = Tensor();
    have_cache_ = false;
  }
  return out;
}

Tensor Linear::backward(const Tensor& grad_out) {
  assert(have_cache_ && "Linear::backward requires a prior training forward");
  const std::size_t n = grad_out.dim(0);
  assert(grad_out.dim(1) == out_features_);

  // dW[out, in] += g^T[out, n] * x[n, in]
  gemm_context().gemm_at(grad_out.data(), input_cache_.data(), weight_.grad.data(),
                         out_features_, n, in_features_, /*accumulate=*/true);
  if (has_bias_) {
    float* db = bias_.grad.data();
    for (std::size_t r = 0; r < n; ++r) {
      const float* row = grad_out.data() + r * out_features_;
      for (std::size_t c = 0; c < out_features_; ++c) db[c] += row[c];
    }
  }
  // dx[n, in] = g[n, out] * W[out, in]
  Tensor dx({n, in_features_});
  gemm_context().gemm(grad_out.data(), weight_.value.data(), dx.data(), n, out_features_,
                      in_features_);
  return dx;
}

void Linear::set_quantized_weights(util::QuantizedMatrix q) {
  if (q.out() != out_features_ || q.in() != in_features_) {
    throw util::QuantizationError(
        util::QuantizationError::Kind::kShapeMismatch,
        util::format("Linear: quantized weights [%zu x %zu] do not match float "
                     "weights [%zu x %zu]",
                     q.out(), q.in(), out_features_, in_features_));
  }
  qweight_ = std::move(q);
}

std::vector<Param*> Linear::params() {
  std::vector<Param*> ps{&weight_};
  if (has_bias_) ps.push_back(&bias_);
  return ps;
}

Shape Linear::infer_shape(const Shape& sample_shape) const {
  if (shape_numel(sample_shape) != in_features_) {
    throw std::invalid_argument("Linear::infer_shape: expected " +
                                std::to_string(in_features_) + " features, got " +
                                shape_to_string(sample_shape));
  }
  return {out_features_};
}

}  // namespace dtsnn::snn
