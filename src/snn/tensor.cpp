#include "snn/tensor.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace dtsnn::snn {

std::size_t shape_numel(const Shape& shape) {
  std::size_t n = 1;
  for (const std::size_t d : shape) n *= d;
  return n;
}

std::string shape_to_string(const Shape& shape) {
  std::string s = "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) s += ", ";
    s += std::to_string(shape[i]);
  }
  s += "]";
  return s;
}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  if (data_.size() != shape_numel(shape_)) {
    throw std::invalid_argument("Tensor: data size " + std::to_string(data_.size()) +
                                " does not match shape " + shape_to_string(shape_));
  }
}

Tensor Tensor::randn(Shape shape, util::Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.gaussian(mean, stddev));
  return t;
}

Tensor Tensor::rand_uniform(Shape shape, util::Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

Tensor Tensor::reshaped(Shape new_shape) const {
  Tensor t = *this;
  t.reshape(std::move(new_shape));
  return t;
}

void Tensor::reshape(Shape new_shape) {
  if (shape_numel(new_shape) != data_.size()) {
    throw std::invalid_argument("Tensor::reshape: numel mismatch " + shape_to_string(shape_) +
                                " -> " + shape_to_string(new_shape));
  }
  shape_ = std::move(new_shape);
}

std::span<float> Tensor::row(std::size_t i) {
  const std::size_t rs = row_size();
  assert(i < dim(0));
  return {data_.data() + i * rs, rs};
}

std::span<const float> Tensor::row(std::size_t i) const {
  const std::size_t rs = row_size();
  assert(i < dim(0));
  return {data_.data() + i * rs, rs};
}

std::size_t Tensor::row_size() const {
  assert(rank() >= 1 && dim(0) > 0);
  return numel() / dim(0);
}

void Tensor::fill(float v) {
  for (auto& x : data_) x = v;
}

Tensor& Tensor::add_(const Tensor& other) {
  assert(numel() == other.numel());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::add_scaled_(const Tensor& other, float s) {
  assert(numel() == other.numel());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += s * other.data_[i];
  return *this;
}

Tensor& Tensor::sub_(const Tensor& other) {
  assert(numel() == other.numel());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::mul_(const Tensor& other) {
  assert(numel() == other.numel());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
  return *this;
}

Tensor& Tensor::scale_(float s) {
  for (auto& x : data_) x *= s;
  return *this;
}

Tensor& Tensor::clamp_(float lo, float hi) {
  for (auto& x : data_) x = x < lo ? lo : (x > hi ? hi : x);
  return *this;
}

float Tensor::sum() const {
  double acc = 0.0;
  for (const float v : data_) acc += v;
  return static_cast<float>(acc);
}

float Tensor::mean() const { return empty() ? 0.0f : sum() / static_cast<float>(numel()); }

float Tensor::abs_max() const {
  float m = 0.0f;
  for (const float v : data_) m = std::max(m, std::abs(v));
  return m;
}

double Tensor::density() const {
  if (empty()) return 0.0;
  std::size_t nz = 0;
  for (const float v : data_) nz += (v != 0.0f);
  return static_cast<double>(nz) / static_cast<double>(numel());
}

bool Tensor::allclose(const Tensor& other, float rtol, float atol) const {
  if (shape_ != other.shape_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    const float diff = std::abs(data_[i] - other.data_[i]);
    if (diff > atol + rtol * std::abs(other.data_[i])) return false;
  }
  return true;
}

std::size_t Tensor::flat_index(std::initializer_list<std::size_t> idx) const {
  assert(idx.size() == shape_.size());
  std::size_t flat = 0;
  std::size_t axis = 0;
  for (const std::size_t i : idx) {
    assert(i < shape_[axis]);
    flat = flat * shape_[axis] + i;
    ++axis;
  }
  return flat;
}

}  // namespace dtsnn::snn
