// im2col / col2im transforms turning 2-D convolutions into GEMMs.
//
// Layout convention: the column matrix for a batch of N images is
// [N * OH * OW, C * KH * KW] row-major, i.e. one row per output pixel with
// the receptive field flattened channel-major. This pairs with weights
// stored as [Cout, C * KH * KW] so that the convolution output (before the
// NCHW transpose) is `col * W^T`.

#pragma once

#include <cstddef>

#include "snn/tensor.h"

namespace dtsnn::snn {

struct ConvGeometry {
  std::size_t in_channels = 0;
  std::size_t in_h = 0;
  std::size_t in_w = 0;
  std::size_t kernel = 1;
  std::size_t stride = 1;
  std::size_t padding = 0;

  [[nodiscard]] std::size_t out_h() const { return (in_h + 2 * padding - kernel) / stride + 1; }
  [[nodiscard]] std::size_t out_w() const { return (in_w + 2 * padding - kernel) / stride + 1; }
  [[nodiscard]] std::size_t patch_size() const { return in_channels * kernel * kernel; }
  /// True if the geometry is self-consistent (kernel fits the padded input).
  [[nodiscard]] bool valid() const {
    return in_channels > 0 && kernel > 0 && stride > 0 && in_h + 2 * padding >= kernel &&
           in_w + 2 * padding >= kernel;
  }
};

/// x: [N, C, H, W]  ->  col: [N * OH * OW, C * KH * KW]. Zero padding.
void im2col(const Tensor& x, const ConvGeometry& g, Tensor& col);

/// Adjoint of im2col: scatters dcol [N*OH*OW, C*K*K] back into dx [N, C, H, W].
/// dx is overwritten (not accumulated).
void col2im(const Tensor& dcol, const ConvGeometry& g, Tensor& dx);

}  // namespace dtsnn::snn
