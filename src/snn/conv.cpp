#include "snn/conv.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "util/logging.h"

namespace dtsnn::snn {

namespace {

// The sparse/dense kernel decisions below key on snn::kSparseDensityThreshold
// (snn/layer.h), shared with Linear and matched by the adaptive GEMM
// backend's hysteresis enter threshold.

/// [N*OHW, Cout] row-per-pixel layout -> NCHW [N, Cout, OH, OW].
void pixels_to_nchw(const Tensor& pix, std::size_t n, std::size_t c, std::size_t oh,
                    std::size_t ow, Tensor& out) {
  out = Tensor({n, c, oh, ow});
  const std::size_t hw = oh * ow;
#pragma omp parallel for schedule(static)
  for (std::size_t img = 0; img < n; ++img) {
    const float* src = pix.data() + img * hw * c;
    float* dst = out.data() + img * c * hw;
    for (std::size_t p = 0; p < hw; ++p) {
      for (std::size_t ch = 0; ch < c; ++ch) dst[ch * hw + p] = src[p * c + ch];
    }
  }
}

/// Direct sparse convolution into the [N*OHW, Cout] row-per-pixel layout:
/// iterate nonzero input pixels (c, y, x ascending) and scatter-accumulate
/// the matching weight columns into the touched output pixels. For every
/// output element this applies contributions in ascending (c, ky, kx) order
/// with zero inputs skipped — exactly the order and skip rule of the
/// A-stationary im2col GEMM — so the result is bitwise identical to
/// util::gemm on the im2col matrix, while the im2col materialization (the
/// dominant memory traffic at spike-level sparsity) is skipped entirely.
/// `wt` is W^T, [Cin*K*K, Cout]. Templated on the compile-time stride
/// (0 = generic runtime stride) so the hot loops carry no divisibility
/// checks for stride-1 convs and strength-reduced ones for stride-2.
template <std::size_t kStride>
void sparse_conv_scatter_impl(const Tensor& x, const float* wt, const ConvGeometry& g,
                              std::size_t cout, Tensor& pix) {
  const std::size_t n = x.dim(0);
  const std::size_t oh = g.out_h();
  const std::size_t ow = g.out_w();
  const auto stride =
      static_cast<std::ptrdiff_t>(kStride ? kStride : g.stride);
  const auto pad = static_cast<std::ptrdiff_t>(g.padding);
  const auto kk = static_cast<std::ptrdiff_t>(g.kernel);
  // The (ky, kx) loops only enumerate which outputs an input touches; the
  // per-output accumulation order is fixed by the (c, y, x) input visit
  // order alone, so the stride-specialized bounds below don't affect the
  // bitwise result.
#pragma omp parallel for schedule(static)
  for (std::size_t img = 0; img < n; ++img) {
    const float* xp = x.data() + img * g.in_channels * g.in_h * g.in_w;
    float* pp = pix.data() + img * oh * ow * cout;
    for (std::size_t c = 0; c < g.in_channels; ++c) {
      const float* wc = wt + c * static_cast<std::size_t>(kk * kk) * cout;
      for (std::size_t y = 0; y < g.in_h; ++y) {
        const auto ypad = static_cast<std::ptrdiff_t>(y) + pad;
        // oy = (y + pad - ky) / stride with exact division and 0 <= oy < oh.
        const std::ptrdiff_t ky_lo =
            std::max<std::ptrdiff_t>(0, ypad - stride * (static_cast<std::ptrdiff_t>(oh) - 1));
        const std::ptrdiff_t ky_hi = std::min<std::ptrdiff_t>(kk - 1, ypad);
        for (std::size_t xx = 0; xx < g.in_w; ++xx) {
          const float v = xp[(c * g.in_h + y) * g.in_w + xx];
          if (v == 0.0f) continue;
          const auto xpad = static_cast<std::ptrdiff_t>(xx) + pad;
          const std::ptrdiff_t kx_lo = std::max<std::ptrdiff_t>(
              0, xpad - stride * (static_cast<std::ptrdiff_t>(ow) - 1));
          const std::ptrdiff_t kx_hi = std::min<std::ptrdiff_t>(kk - 1, xpad);
          for (std::ptrdiff_t ky = ky_lo; ky <= ky_hi; ++ky) {
            if (kStride != 1 && (ypad - ky) % stride != 0) continue;
            const auto oy = static_cast<std::size_t>((ypad - ky) / stride);
            float* prow = pp + oy * ow * cout;
            const float* wky = wc + static_cast<std::size_t>(ky * kk) * cout;
            for (std::ptrdiff_t kx = kx_lo; kx <= kx_hi; ++kx) {
              if (kStride != 1 && (xpad - kx) % stride != 0) continue;
              const auto ox = static_cast<std::size_t>((xpad - kx) / stride);
              float* dst = prow + ox * cout;
              const float* wrow = wky + static_cast<std::size_t>(kx) * cout;
#pragma omp simd
              for (std::size_t j = 0; j < cout; ++j) dst[j] += v * wrow[j];
            }
          }
        }
      }
    }
  }
}

void sparse_conv_scatter(const Tensor& x, const float* wt, const ConvGeometry& g,
                         std::size_t cout, Tensor& pix) {
  switch (g.stride) {
    case 1: sparse_conv_scatter_impl<1>(x, wt, g, cout, pix); break;
    case 2: sparse_conv_scatter_impl<2>(x, wt, g, cout, pix); break;
    default: sparse_conv_scatter_impl<0>(x, wt, g, cout, pix); break;
  }
}

/// NCHW [N, C, OH, OW] -> [N*OHW, C] row-per-pixel layout.
void nchw_to_pixels(const Tensor& x, Tensor& pix) {
  const std::size_t n = x.dim(0), c = x.dim(1), hw = x.dim(2) * x.dim(3);
  pix = Tensor({n * hw, c});
#pragma omp parallel for schedule(static)
  for (std::size_t img = 0; img < n; ++img) {
    const float* src = x.data() + img * c * hw;
    float* dst = pix.data() + img * hw * c;
    for (std::size_t ch = 0; ch < c; ++ch) {
      for (std::size_t p = 0; p < hw; ++p) dst[p * c + ch] = src[ch * hw + p];
    }
  }
}

}  // namespace

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
               std::size_t stride, std::size_t padding, bool bias, util::Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      has_bias_(bias),
      weight_("conv.weight", Tensor({out_channels, in_channels * kernel * kernel})),
      bias_("conv.bias", Tensor({out_channels}), /*no_decay=*/true) {
  // Kaiming-uniform for ReLU-like nonlinearities; LIF firing behaves similarly.
  const std::size_t fan_in = in_channels * kernel * kernel;
  const float bound = std::sqrt(6.0f / static_cast<float>(fan_in));
  for (auto& w : weight_.value.span()) w = static_cast<float>(rng.uniform(-bound, bound));
  if (has_bias_) {
    const float bbound = 1.0f / std::sqrt(static_cast<float>(fan_in));
    for (auto& b : bias_.value.span()) b = static_cast<float>(rng.uniform(-bbound, bbound));
  }
}

void Conv2d::set_time(std::size_t timesteps, std::size_t batch) {
  Layer::set_time(timesteps, batch);
  wt_dirty_ = true;
}

void Conv2d::begin_steps(std::size_t batch) {
  Layer::begin_steps(batch);
  wt_dirty_ = true;
}

const float* Conv2d::ensure_weight_transpose() {
  const std::size_t patch = in_channels_ * kernel_ * kernel_;
  if (wt_dirty_ || wt_scratch_.numel() != patch * out_channels_) {
    if (wt_scratch_.numel() != patch * out_channels_) {
      wt_scratch_ = Tensor({patch, out_channels_});
    }
    for (std::size_t c = 0; c < out_channels_; ++c) {
      const float* src = weight_.value.data() + c * patch;
      for (std::size_t p = 0; p < patch; ++p) {
        wt_scratch_[p * out_channels_ + c] = src[p];
      }
    }
    wt_dirty_ = false;
  }
  return wt_scratch_.data();
}

Tensor Conv2d::forward(const Tensor& x, bool train) {
  if (x.rank() != 4 || x.dim(1) != in_channels_) {
    throw std::invalid_argument("Conv2d: bad input shape " + shape_to_string(x.shape()));
  }
  geom_ = ConvGeometry{in_channels_, x.dim(2), x.dim(3), kernel_, stride_, padding_};
  const std::size_t n = x.dim(0);
  const std::size_t oh = geom_.out_h();
  const std::size_t ow = geom_.out_w();

  // pix[N*OHW, Cout] = col[N*OHW, CKK] * W^T[CKK, Cout]
  Tensor pix({n * oh * ow, out_channels_});
  const std::size_t patch = geom_.patch_size();
  util::GemmContext& gemm = gemm_context();
  Tensor col;
  if (train) {
    // Training path: the im2col matrix is needed for backward either way.
    // Hidden-layer inputs are LIF spikes, so for sparse inputs the product
    // runs in the A-stationary form (zero-skip NN GEMM against W^T) instead
    // of the dense dot-product form — for the same accumulation order and
    // finite weights the two are bitwise identical (both sum each output's
    // contributions in ascending patch order from a zero start), so this is
    // purely a speed decision, like the eval-time kernel choice below.
    im2col(x, geom_, col);
    if (x.density() < kSparseDensityThreshold) {
      gemm.gemm(col.data(), ensure_weight_transpose(), pix.data(), n * oh * ow, patch,
                out_channels_);
    } else {
      gemm.gemm_bt(col.data(), weight_.value.data(), pix.data(), n * oh * ow, patch,
                   out_channels_);
    }
  } else if (const util::QuantizedGemmBackend* qb =
                 util::as_quantized_backend(&gemm.backend())) {
    // Quantized inference tier: im2col + qgemm. The quantized kernel already
    // streams only the spike-selected quantized weight rows, so the direct
    // scatter path is not used; results are deterministic and
    // batch-composition invariant, but tolerance-gated (not bitwise) versus
    // the float tier. Requires calibrated weights at this backend's
    // bit-width — fails loudly otherwise.
    require_quantized_weights(*qb, qweight_, "Conv2d");
    // LUT backends run fastest off a cached spike-mask table; build it once
    // per quantized weight matrix (derived data, same single-threaded
    // dispatch discipline as the cached W^T below).
    if (qb->prefers_lut()) qweight_.ensure_lut();
    im2col(x, geom_, col);
    gemm.qgemm(col.data(), qweight_, pix.data(), n * oh * ow, patch, out_channels_);
  } else {
    // Inference path: LIF spike activations are mostly zeros, so the cost
    // scales with spike density instead of the dense FLOP count. Both eval
    // kernels skip zero inputs and accumulate every output element in
    // ascending (c, ky, kx) order, so they are bitwise identical to each
    // other and independent of the batch size — batched and batch-1
    // stepping agree bitwise even if they pick different kernels. Needs
    // W^T materialized; cached across the steps of one sequence (set_time
    // and begin_steps mark it dirty, and weights only change between them).
    const float* wt = ensure_weight_transpose();
    if (x.density() < kSparseDensityThreshold) {
      // Sparse enough that skipping the im2col materialization wins.
      sparse_conv_scatter(x, wt, geom_, out_channels_, pix);
    } else {
      im2col(x, geom_, col);
      gemm.gemm(col.data(), wt, pix.data(), n * oh * ow, patch, out_channels_);
    }
  }
  if (has_bias_) {
    const float* b = bias_.value.data();
#pragma omp parallel for schedule(static)
    for (std::size_t r = 0; r < n * oh * ow; ++r) {
      float* row = pix.data() + r * out_channels_;
      for (std::size_t c = 0; c < out_channels_; ++c) row[c] += b[c];
    }
  }

  Tensor out;
  pixels_to_nchw(pix, n, out_channels_, oh, ow, out);

  if (train) {
    col_cache_ = std::move(col);
    have_cache_ = true;
  } else {
    have_cache_ = false;
    col_cache_ = Tensor();
  }
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  assert(have_cache_ && "Conv2d::backward requires a prior training forward");
  const std::size_t n = grad_out.dim(0);
  const std::size_t oh = geom_.out_h();
  const std::size_t ow = geom_.out_w();
  const std::size_t rows = n * oh * ow;
  const std::size_t patch = geom_.patch_size();

  Tensor gpix;  // [N*OHW, Cout]
  nchw_to_pixels(grad_out, gpix);

  // dW[Cout, CKK] += gpix^T[Cout, rows] * col[rows, CKK]
  util::GemmContext& gemm = gemm_context();
  gemm.gemm_at(gpix.data(), col_cache_.data(), weight_.grad.data(), out_channels_, rows,
               patch, /*accumulate=*/true);

  if (has_bias_) {
    float* db = bias_.grad.data();
    for (std::size_t r = 0; r < rows; ++r) {
      const float* row = gpix.data() + r * out_channels_;
      for (std::size_t c = 0; c < out_channels_; ++c) db[c] += row[c];
    }
  }

  // dcol[rows, CKK] = gpix[rows, Cout] * W[Cout, CKK]
  Tensor dcol({rows, patch});
  gemm.gemm(gpix.data(), weight_.value.data(), dcol.data(), rows, out_channels_, patch);

  Tensor dx;
  col2im(dcol, geom_, dx);
  return dx;
}

void Conv2d::set_quantized_weights(util::QuantizedMatrix q) {
  const std::size_t patch = in_channels_ * kernel_ * kernel_;
  if (q.out() != out_channels_ || q.in() != patch) {
    throw util::QuantizationError(
        util::QuantizationError::Kind::kShapeMismatch,
        util::format("Conv2d: quantized weights [%zu x %zu] do not match float "
                     "weights [%zu x %zu]",
                     q.out(), q.in(), out_channels_, patch));
  }
  qweight_ = std::move(q);
}

std::vector<Param*> Conv2d::params() {
  std::vector<Param*> ps{&weight_};
  if (has_bias_) ps.push_back(&bias_);
  return ps;
}

Shape Conv2d::infer_shape(const Shape& sample_shape) const {
  if (sample_shape.size() != 3 || sample_shape[0] != in_channels_) {
    throw std::invalid_argument("Conv2d::infer_shape: bad sample shape " +
                                shape_to_string(sample_shape));
  }
  const ConvGeometry g{in_channels_, sample_shape[1], sample_shape[2], kernel_, stride_,
                       padding_};
  return {out_channels_, g.out_h(), g.out_w()};
}

}  // namespace dtsnn::snn
