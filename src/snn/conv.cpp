#include "snn/conv.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "util/gemm.h"

namespace dtsnn::snn {

namespace {

/// [N*OHW, Cout] row-per-pixel layout -> NCHW [N, Cout, OH, OW].
void pixels_to_nchw(const Tensor& pix, std::size_t n, std::size_t c, std::size_t oh,
                    std::size_t ow, Tensor& out) {
  out = Tensor({n, c, oh, ow});
  const std::size_t hw = oh * ow;
#pragma omp parallel for schedule(static)
  for (std::size_t img = 0; img < n; ++img) {
    const float* src = pix.data() + img * hw * c;
    float* dst = out.data() + img * c * hw;
    for (std::size_t p = 0; p < hw; ++p) {
      for (std::size_t ch = 0; ch < c; ++ch) dst[ch * hw + p] = src[p * c + ch];
    }
  }
}

/// NCHW [N, C, OH, OW] -> [N*OHW, C] row-per-pixel layout.
void nchw_to_pixels(const Tensor& x, Tensor& pix) {
  const std::size_t n = x.dim(0), c = x.dim(1), hw = x.dim(2) * x.dim(3);
  pix = Tensor({n * hw, c});
#pragma omp parallel for schedule(static)
  for (std::size_t img = 0; img < n; ++img) {
    const float* src = x.data() + img * c * hw;
    float* dst = pix.data() + img * hw * c;
    for (std::size_t ch = 0; ch < c; ++ch) {
      for (std::size_t p = 0; p < hw; ++p) dst[p * c + ch] = src[ch * hw + p];
    }
  }
}

}  // namespace

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
               std::size_t stride, std::size_t padding, bool bias, util::Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      has_bias_(bias),
      weight_("conv.weight", Tensor({out_channels, in_channels * kernel * kernel})),
      bias_("conv.bias", Tensor({out_channels}), /*no_decay=*/true) {
  // Kaiming-uniform for ReLU-like nonlinearities; LIF firing behaves similarly.
  const std::size_t fan_in = in_channels * kernel * kernel;
  const float bound = std::sqrt(6.0f / static_cast<float>(fan_in));
  for (auto& w : weight_.value.span()) w = static_cast<float>(rng.uniform(-bound, bound));
  if (has_bias_) {
    const float bbound = 1.0f / std::sqrt(static_cast<float>(fan_in));
    for (auto& b : bias_.value.span()) b = static_cast<float>(rng.uniform(-bbound, bbound));
  }
}

Tensor Conv2d::forward(const Tensor& x, bool train) {
  if (x.rank() != 4 || x.dim(1) != in_channels_) {
    throw std::invalid_argument("Conv2d: bad input shape " + shape_to_string(x.shape()));
  }
  geom_ = ConvGeometry{in_channels_, x.dim(2), x.dim(3), kernel_, stride_, padding_};
  const std::size_t n = x.dim(0);
  const std::size_t oh = geom_.out_h();
  const std::size_t ow = geom_.out_w();

  Tensor col;
  im2col(x, geom_, col);

  // pix[N*OHW, Cout] = col[N*OHW, CKK] * W^T[CKK, Cout]
  Tensor pix({n * oh * ow, out_channels_});
  util::gemm_bt(col.data(), weight_.value.data(), pix.data(), n * oh * ow,
                geom_.patch_size(), out_channels_);
  if (has_bias_) {
    const float* b = bias_.value.data();
#pragma omp parallel for schedule(static)
    for (std::size_t r = 0; r < n * oh * ow; ++r) {
      float* row = pix.data() + r * out_channels_;
      for (std::size_t c = 0; c < out_channels_; ++c) row[c] += b[c];
    }
  }

  Tensor out;
  pixels_to_nchw(pix, n, out_channels_, oh, ow, out);

  if (train) {
    col_cache_ = std::move(col);
    have_cache_ = true;
  } else {
    have_cache_ = false;
    col_cache_ = Tensor();
  }
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  assert(have_cache_ && "Conv2d::backward requires a prior training forward");
  const std::size_t n = grad_out.dim(0);
  const std::size_t oh = geom_.out_h();
  const std::size_t ow = geom_.out_w();
  const std::size_t rows = n * oh * ow;
  const std::size_t patch = geom_.patch_size();

  Tensor gpix;  // [N*OHW, Cout]
  nchw_to_pixels(grad_out, gpix);

  // dW[Cout, CKK] += gpix^T[Cout, rows] * col[rows, CKK]
  util::gemm_at(gpix.data(), col_cache_.data(), weight_.grad.data(), out_channels_, rows,
                patch, /*accumulate=*/true);

  if (has_bias_) {
    float* db = bias_.grad.data();
    for (std::size_t r = 0; r < rows; ++r) {
      const float* row = gpix.data() + r * out_channels_;
      for (std::size_t c = 0; c < out_channels_; ++c) db[c] += row[c];
    }
  }

  // dcol[rows, CKK] = gpix[rows, Cout] * W[Cout, CKK]
  Tensor dcol({rows, patch});
  util::gemm(gpix.data(), weight_.value.data(), dcol.data(), rows, out_channels_, patch);

  Tensor dx;
  col2im(dcol, geom_, dx);
  return dx;
}

std::vector<Param*> Conv2d::params() {
  std::vector<Param*> ps{&weight_};
  if (has_bias_) ps.push_back(&bias_);
  return ps;
}

Shape Conv2d::infer_shape(const Shape& sample_shape) const {
  if (sample_shape.size() != 3 || sample_shape[0] != in_channels_) {
    throw std::invalid_argument("Conv2d::infer_shape: bad sample shape " +
                                shape_to_string(sample_shape));
  }
  const ConvGeometry g{in_channels_, sample_shape[1], sample_shape[2], kernel_, stride_,
                       padding_};
  return {out_channels_, g.out_h(), g.out_w()};
}

}  // namespace dtsnn::snn
