// Surrogate gradients for the non-differentiable spike firing function.
//
// Forward: s = H(u - Vth) (Heaviside). Backward: ds/du is replaced by a
// smooth pseudo-derivative. The paper's default (Eq. 4) is the rectangular
// triangle max(0, Vth - |u - Vth|); the Dspike-style (Li et al. 2021) and
// tdBN-style (Zheng et al. 2021) alternatives are provided for the Fig. 6(A)
// baseline comparison, plus ATan as a commonly used extra.

#pragma once

#include <string>

namespace dtsnn::snn {

enum class SurrogateKind {
  kTriangle,   ///< Eq. 4 of the paper: max(0, Vth - |u - Vth|)
  kDspike,     ///< temperature-controlled tanh-derivative family (Dspike)
  kRectangle,  ///< tdBN-style boxcar: 1/(2a) on |u - Vth| < a
  kAtan,       ///< arctangent pseudo-derivative
};

/// Parse "triangle" / "dspike" / "rectangle" / "atan" (throws on unknown).
SurrogateKind surrogate_from_string(const std::string& name);
std::string to_string(SurrogateKind kind);

struct SurrogateSpec {
  SurrogateKind kind = SurrogateKind::kTriangle;
  /// Sharpness/width parameter; meaning depends on the kind:
  /// triangle — unused (width is Vth per Eq. 4); dspike — temperature b;
  /// rectangle — half-width a; atan — slope alpha.
  float alpha = 1.0f;
};

/// Pseudo-derivative ds/du evaluated at membrane potential `u`.
float surrogate_grad(const SurrogateSpec& spec, float u, float vth);

}  // namespace dtsnn::snn
