#include "snn/loss.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "util/math.h"

namespace dtsnn::snn {

namespace {
void check_inputs(const Tensor& logits, std::span<const int> labels, std::size_t timesteps) {
  if (logits.rank() != 2) throw std::invalid_argument("loss: logits must be rank 2");
  if (timesteps == 0 || logits.dim(0) % timesteps != 0) {
    throw std::invalid_argument("loss: leading dim not divisible by T");
  }
  if (logits.dim(0) / timesteps != labels.size()) {
    throw std::invalid_argument("loss: label count mismatch");
  }
}
}  // namespace

Tensor cumulative_mean_logits(const Tensor& logits, std::size_t timesteps) {
  assert(logits.rank() == 2 && logits.dim(0) % timesteps == 0);
  const std::size_t b = logits.dim(0) / timesteps;
  const std::size_t k = logits.dim(1);
  Tensor out(logits.shape());
  for (std::size_t i = 0; i < b; ++i) {
    std::vector<double> acc(k, 0.0);
    for (std::size_t t = 0; t < timesteps; ++t) {
      const float* src = logits.data() + (t * b + i) * k;
      float* dst = out.data() + (t * b + i) * k;
      cumulative_mean_step(src, acc.data(), dst, k, t);
    }
  }
  return out;
}

LossResult MeanLogitCrossEntropy::compute(const Tensor& logits, std::span<const int> labels,
                                          std::size_t timesteps) const {
  check_inputs(logits, labels, timesteps);
  const std::size_t b = labels.size();
  const std::size_t k = logits.dim(1);

  LossResult result;
  result.grad = Tensor(logits.shape());
  double total_loss = 0.0;
  const float time_scale = 1.0f / static_cast<float>(timesteps);
  const float batch_scale = 1.0f / static_cast<float>(b);

  std::vector<float> mean(k), probs(k);
  for (std::size_t i = 0; i < b; ++i) {
    // f_T = mean over timesteps of y_t.
    for (std::size_t c = 0; c < k; ++c) mean[c] = 0.0f;
    for (std::size_t t = 0; t < timesteps; ++t) {
      const float* src = logits.data() + (t * b + i) * k;
      for (std::size_t c = 0; c < k; ++c) mean[c] += src[c];
    }
    for (std::size_t c = 0; c < k; ++c) mean[c] *= time_scale;

    util::softmax(mean, probs);
    const int label = labels[i];
    assert(label >= 0 && static_cast<std::size_t>(label) < k);
    total_loss += -std::log(std::max(1e-12, static_cast<double>(probs[label])));
    if (util::argmax(mean) == static_cast<std::size_t>(label)) ++result.correct;

    // dL/dy_t = (softmax(f_T) - z) / (T * B) for every t.
    for (std::size_t t = 0; t < timesteps; ++t) {
      float* g = result.grad.data() + (t * b + i) * k;
      for (std::size_t c = 0; c < k; ++c) {
        const float delta = probs[c] - (static_cast<std::size_t>(label) == c ? 1.0f : 0.0f);
        g[c] = delta * time_scale * batch_scale;
      }
    }
  }
  result.loss = total_loss / static_cast<double>(b);
  return result;
}

LossResult PerTimestepCrossEntropy::compute(const Tensor& logits, std::span<const int> labels,
                                            std::size_t timesteps) const {
  check_inputs(logits, labels, timesteps);
  const std::size_t b = labels.size();
  const std::size_t k = logits.dim(1);

  LossResult result;
  result.grad = Tensor(logits.shape());
  double total_loss = 0.0;
  const float batch_scale = 1.0f / static_cast<float>(b);
  const float loss_scale = 1.0f / static_cast<float>(timesteps);

  std::vector<double> acc(k);
  std::vector<float> ft(k), probs(k);
  // delta_t = softmax(f_t) - z for each t; dL/dy_tau = (1/TB) sum_{t>=tau} delta_t / t.
  std::vector<std::vector<float>> deltas(timesteps, std::vector<float>(k));

  for (std::size_t i = 0; i < b; ++i) {
    const int label = labels[i];
    assert(label >= 0 && static_cast<std::size_t>(label) < k);
    std::fill(acc.begin(), acc.end(), 0.0);
    for (std::size_t t = 0; t < timesteps; ++t) {
      const float* src = logits.data() + (t * b + i) * k;
      const double inv = 1.0 / static_cast<double>(t + 1);
      for (std::size_t c = 0; c < k; ++c) {
        acc[c] += src[c];
        ft[c] = static_cast<float>(acc[c] * inv);
      }
      util::softmax(ft, probs);
      total_loss += -std::log(std::max(1e-12, static_cast<double>(probs[label])));
      if (t + 1 == timesteps &&
          util::argmax(ft) == static_cast<std::size_t>(label)) {
        ++result.correct;
      }
      for (std::size_t c = 0; c < k; ++c) {
        deltas[t][c] = probs[c] - (static_cast<std::size_t>(label) == c ? 1.0f : 0.0f);
      }
    }
    // Suffix sums of delta_t / (t+1) give the gradient for each source step.
    std::vector<float> suffix(k, 0.0f);
    for (std::size_t t = timesteps; t-- > 0;) {
      const float inv = 1.0f / static_cast<float>(t + 1);
      for (std::size_t c = 0; c < k; ++c) suffix[c] += deltas[t][c] * inv;
      float* g = result.grad.data() + (t * b + i) * k;
      for (std::size_t c = 0; c < k; ++c) g[c] = suffix[c] * loss_scale * batch_scale;
    }
  }
  result.loss = total_loss * loss_scale / static_cast<double>(b);
  return result;
}

}  // namespace dtsnn::snn
