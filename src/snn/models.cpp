#include "snn/models.h"

#include <memory>
#include <stdexcept>

#include "snn/conv.h"
#include "snn/linear.h"
#include "snn/norm.h"
#include "snn/pool.h"

namespace dtsnn::snn {

namespace {

void append_conv_block(Sequential& seq, std::size_t in_c, std::size_t out_c,
                       std::size_t stride, const ModelConfig& config, util::Rng& rng) {
  seq.append(std::make_unique<Conv2d>(in_c, out_c, /*kernel=*/3, stride, /*padding=*/1,
                                      /*bias=*/false, rng));
  seq.append(std::make_unique<BatchNorm2d>(out_c, config.bn_vth_scale));
  seq.append(std::make_unique<Lif>(config.lif));
}

}  // namespace

SpikingNetwork make_spiking_vgg(const std::vector<int>& plan, const ModelConfig& config) {
  if (config.input_shape.size() != 3) {
    throw std::invalid_argument("make_spiking_vgg: input_shape must be [C, H, W]");
  }
  util::Rng rng(config.seed);
  Sequential body;
  std::size_t channels = config.input_shape[0];
  Shape sample = config.input_shape;
  for (const int entry : plan) {
    if (entry == -1) {
      body.append(std::make_unique<AvgPool2d>(2));
    } else if (entry > 0) {
      append_conv_block(body, channels, static_cast<std::size_t>(entry), /*stride=*/1,
                        config, rng);
      channels = static_cast<std::size_t>(entry);
    } else {
      throw std::invalid_argument("make_spiking_vgg: bad plan entry " + std::to_string(entry));
    }
    sample = body.layer(body.size() - 1).infer_shape(
        body.size() == 1 ? config.input_shape : sample);
  }
  // Recompute final feature shape through the whole body (robust to the
  // incremental tracking above).
  sample = body.infer_shape(config.input_shape);
  body.append(std::make_unique<Flatten>());
  body.append(std::make_unique<Linear>(shape_numel(sample), config.num_classes,
                                       /*bias=*/true, rng));
  return SpikingNetwork(std::move(body), config.num_classes, config.input_shape);
}

SpikingNetwork make_spiking_resnet(const std::vector<std::size_t>& stage_channels,
                                   const ModelConfig& config) {
  if (stage_channels.empty()) {
    throw std::invalid_argument("make_spiking_resnet: need at least one stage");
  }
  util::Rng rng(config.seed);
  Sequential body;
  const std::size_t stem = stage_channels.front();
  append_conv_block(body, config.input_shape[0], stem, /*stride=*/1, config, rng);

  std::size_t in_c = stem;
  for (std::size_t i = 0; i < stage_channels.size(); ++i) {
    const std::size_t out_c = stage_channels[i];
    const std::size_t stride = i == 0 ? 1 : 2;

    Sequential main_path;
    main_path.append(std::make_unique<Conv2d>(in_c, out_c, 3, stride, 1, false, rng));
    main_path.append(std::make_unique<BatchNorm2d>(out_c, config.bn_vth_scale));
    main_path.append(std::make_unique<Lif>(config.lif));
    main_path.append(std::make_unique<Conv2d>(out_c, out_c, 3, 1, 1, false, rng));
    main_path.append(std::make_unique<BatchNorm2d>(out_c, config.bn_vth_scale));

    Sequential shortcut;
    if (in_c != out_c || stride != 1) {
      shortcut.append(std::make_unique<Conv2d>(in_c, out_c, 1, stride, 0, false, rng));
      shortcut.append(std::make_unique<BatchNorm2d>(out_c, config.bn_vth_scale));
    }
    body.append(std::make_unique<ResidualBlock>(std::move(main_path), std::move(shortcut),
                                                config.lif));
    in_c = out_c;
  }

  const Shape feat = body.infer_shape(config.input_shape);
  // Global average pooling over the remaining spatial extent.
  if (feat.size() != 3 || feat[1] != feat[2]) {
    throw std::logic_error("make_spiking_resnet: unexpected feature shape " +
                           shape_to_string(feat));
  }
  if (feat[1] > 1) body.append(std::make_unique<AvgPool2d>(feat[1]));
  body.append(std::make_unique<Flatten>());
  body.append(std::make_unique<Linear>(in_c, config.num_classes, /*bias=*/true, rng));
  return SpikingNetwork(std::move(body), config.num_classes, config.input_shape);
}

SpikingNetwork make_model(const std::string& preset, const ModelConfig& config) {
  if (preset == "vgg_mini") {
    return make_spiking_vgg({32, 32, -1, 64, 64, -1, 128, -1}, config);
  }
  if (preset == "vgg_micro") {
    return make_spiking_vgg({16, -1, 32, -1}, config);
  }
  if (preset == "resnet_mini") {
    return make_spiking_resnet({16, 32, 64}, config);
  }
  if (preset == "resnet_micro") {
    return make_spiking_resnet({8, 16}, config);
  }
  throw std::invalid_argument("make_model: unknown preset '" + preset + "'");
}

std::vector<std::string> model_presets() {
  return {"vgg_mini", "vgg_micro", "resnet_mini", "resnet_micro"};
}

}  // namespace dtsnn::snn
