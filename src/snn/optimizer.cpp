#include "snn/optimizer.h"

#include <cmath>
#include <numbers>

namespace dtsnn::snn {

Sgd::Sgd(std::vector<Param*> params, SgdConfig config)
    : params_(std::move(params)), config_(config) {
  velocity_.reserve(params_.size());
  for (const Param* p : params_) velocity_.emplace_back(p->value.shape());
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    Tensor& v = velocity_[i];
    const float wd = p.no_decay ? 0.0f : config_.weight_decay;
    float* w = p.value.data();
    float* g = p.grad.data();
    float* vel = v.data();
    const std::size_t n = p.value.numel();
    for (std::size_t j = 0; j < n; ++j) {
      const float grad = g[j] + wd * w[j];
      vel[j] = config_.momentum * vel[j] + grad;
      w[j] -= config_.lr * vel[j];
      g[j] = 0.0f;
    }
  }
}

void Sgd::zero_grad() {
  for (Param* p : params_) p->grad.zero();
}

float CosineSchedule::lr_at(std::size_t epoch) const {
  if (total_epochs_ == 0) return base_lr_;
  const double frac = static_cast<double>(epoch) / static_cast<double>(total_epochs_);
  return static_cast<float>(base_lr_ * 0.5 * (1.0 + std::cos(std::numbers::pi * frac)));
}

}  // namespace dtsnn::snn
