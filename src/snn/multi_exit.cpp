#include "snn/multi_exit.h"

#include <memory>
#include <stdexcept>

#include "snn/conv.h"
#include "snn/linear.h"
#include "snn/norm.h"
#include "snn/pool.h"
#include "util/logging.h"

namespace dtsnn::snn {

namespace {

/// Approximate MACs of a Sequential for one sample of the given shape.
/// Tracks the running shape through the layers.
double sequential_macs(const Sequential& seq, Shape& sample) {
  double macs = 0.0;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    const Layer& layer = seq.layer(i);
    if (const auto* conv = dynamic_cast<const Conv2d*>(&layer)) {
      const Shape out = conv->infer_shape(sample);
      macs += static_cast<double>(conv->in_channels() * conv->kernel() * conv->kernel()) *
              static_cast<double>(shape_numel(out));
      sample = out;
    } else if (const auto* lin = dynamic_cast<const Linear*>(&layer)) {
      macs += static_cast<double>(lin->in_features() * lin->out_features());
      sample = layer.infer_shape(sample);
    } else {
      sample = layer.infer_shape(sample);
    }
  }
  return macs;
}

}  // namespace

MultiExitNetwork::MultiExitNetwork(std::vector<Sequential> segments,
                                   std::vector<Sequential> heads,
                                   std::size_t num_classes, Shape sample_shape)
    : segments_(std::move(segments)),
      heads_(std::move(heads)),
      num_classes_(num_classes),
      sample_shape_(std::move(sample_shape)) {
  if (segments_.size() != heads_.size() || segments_.empty()) {
    throw std::invalid_argument("MultiExitNetwork: need one head per segment");
  }
  // Cost model: cumulative MAC fraction up to each exit.
  std::vector<double> cumulative;
  double total = 0.0;
  Shape shape = sample_shape_;
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    total += sequential_macs(segments_[i], shape);
    Shape head_shape = shape;
    total += sequential_macs(heads_[i], head_shape);
    cumulative.push_back(total);
  }
  cost_fractions_.resize(cumulative.size());
  for (std::size_t i = 0; i < cumulative.size(); ++i) {
    cost_fractions_[i] = cumulative[i] / total;
  }
}

std::vector<Tensor> MultiExitNetwork::forward(const Tensor& x, std::size_t timesteps,
                                              bool train) {
  if (x.dim(0) % timesteps != 0) {
    throw std::invalid_argument("MultiExitNetwork::forward: leading dim not divisible");
  }
  const std::size_t batch = x.dim(0) / timesteps;
  std::vector<Tensor> logits;
  logits.reserve(heads_.size());
  Tensor a = x;
  segment_outputs_.clear();
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    segments_[i].set_time(timesteps, batch);
    heads_[i].set_time(timesteps, batch);
    a = segments_[i].forward(a, train);
    logits.push_back(heads_[i].forward(a, train));
    if (logits.back().rank() != 2 || logits.back().dim(1) != num_classes_) {
      throw std::logic_error("MultiExitNetwork: head " + std::to_string(i) +
                             " produced shape " +
                             shape_to_string(logits.back().shape()));
    }
  }
  return logits;
}

void MultiExitNetwork::backward(const std::vector<Tensor>& grad_logits) {
  if (grad_logits.size() != heads_.size()) {
    throw std::invalid_argument("MultiExitNetwork::backward: gradient count mismatch");
  }
  Tensor carry;  // gradient flowing into the output of segment i
  for (std::size_t i = heads_.size(); i-- > 0;) {
    Tensor g_head = heads_[i].backward(grad_logits[i]);
    if (carry.empty()) {
      carry = std::move(g_head);
    } else {
      carry.add_(g_head);
    }
    carry = segments_[i].backward(carry);
  }
}

std::vector<Param*> MultiExitNetwork::params() {
  std::vector<Param*> ps;
  for (auto& s : segments_) {
    for (Param* p : s.params()) ps.push_back(p);
  }
  for (auto& h : heads_) {
    for (Param* p : h.params()) ps.push_back(p);
  }
  return ps;
}

MultiExitNetwork make_multi_exit_vgg(const std::vector<int>& plan,
                                     const ModelConfig& config) {
  util::Rng rng(config.seed);
  std::vector<Sequential> segments;
  std::vector<Sequential> heads;

  Sequential current;
  std::size_t channels = config.input_shape[0];
  Shape shape = config.input_shape;
  auto flush_segment = [&](bool is_last) {
    if (current.size() == 0) return;
    // Head: global average pool to 1x1 + linear classifier.
    Sequential head;
    if (shape.size() == 3 && shape[1] > 1) {
      if (shape[1] != shape[2]) {
        throw std::logic_error("make_multi_exit_vgg: non-square feature map");
      }
      head.append(std::make_unique<AvgPool2d>(shape[1]));
    }
    head.append(std::make_unique<Flatten>());
    head.append(std::make_unique<Linear>(channels, config.num_classes, true, rng));
    segments.push_back(std::move(current));
    heads.push_back(std::move(head));
    current = Sequential();
    (void)is_last;
  };

  for (const int entry : plan) {
    if (entry == -1) {
      current.append(std::make_unique<AvgPool2d>(2));
      shape = Shape{channels, shape[1] / 2, shape[2] / 2};
      flush_segment(false);
    } else if (entry > 0) {
      current.append(std::make_unique<Conv2d>(channels, static_cast<std::size_t>(entry),
                                              3, 1, 1, false, rng));
      current.append(std::make_unique<BatchNorm2d>(static_cast<std::size_t>(entry),
                                                   config.bn_vth_scale));
      current.append(std::make_unique<Lif>(config.lif));
      channels = static_cast<std::size_t>(entry);
      shape = Shape{channels, shape[1], shape[2]};
    } else {
      throw std::invalid_argument("make_multi_exit_vgg: bad plan entry");
    }
  }
  flush_segment(true);  // trailing convs without a final pool
  return MultiExitNetwork(std::move(segments), std::move(heads), config.num_classes,
                          config.input_shape);
}

MultiExitLossResult multi_exit_loss(const std::vector<Tensor>& exit_logits,
                                    std::span<const int> labels,
                                    std::size_t timesteps) {
  if (exit_logits.empty()) {
    throw std::invalid_argument("multi_exit_loss: no exits");
  }
  const PerTimestepCrossEntropy per_timestep;
  MultiExitLossResult result;
  result.grads.reserve(exit_logits.size());

  // Deeper exits weigh more: w_i = (i+1) / sum(1..m).
  const std::size_t m = exit_logits.size();
  const double weight_sum = static_cast<double>(m * (m + 1)) / 2.0;
  for (std::size_t i = 0; i < m; ++i) {
    LossResult r = per_timestep.compute(exit_logits[i], labels, timesteps);
    const double w = static_cast<double>(i + 1) / weight_sum;
    result.loss += w * r.loss;
    r.grad.scale_(static_cast<float>(w));
    result.grads.push_back(std::move(r.grad));
    if (i + 1 == m) result.correct_final = r.correct;
  }
  return result;
}

TrainStats train_multi_exit(MultiExitNetwork& net, BatchSource& source,
                            const TrainOptions& options) {
  Sgd optimizer(net.params(), options.sgd);
  const CosineSchedule schedule(options.sgd.lr, options.epochs);
  TrainStats stats;

  for (std::size_t epoch = 0; epoch < options.epochs; ++epoch) {
    if (options.cosine_schedule) optimizer.set_lr(schedule.lr_at(epoch));
    source.reshuffle(epoch);
    double epoch_loss = 0.0;
    std::size_t correct = 0, seen = 0;
    for (std::size_t bi = 0; bi < source.num_batches(); ++bi) {
      EncodedBatch batch = source.batch(bi, options.timesteps);
      auto logits = net.forward(batch.x, options.timesteps, /*train=*/true);
      MultiExitLossResult lr = multi_exit_loss(logits, batch.labels, options.timesteps);
      net.backward(lr.grads);
      optimizer.step();
      epoch_loss += lr.loss * static_cast<double>(batch.labels.size());
      correct += lr.correct_final;
      seen += batch.labels.size();
    }
    stats.epoch_loss.push_back(seen ? epoch_loss / static_cast<double>(seen) : 0.0);
    stats.epoch_accuracy.push_back(
        seen ? static_cast<double>(correct) / static_cast<double>(seen) : 0.0);
    DTSNN_LOG_DEBUG("multi-exit epoch %zu: loss=%.4f acc=%.2f%%", epoch,
                    stats.epoch_loss.back(), 100.0 * stats.epoch_accuracy.back());
    if (options.on_epoch) {
      options.on_epoch(epoch, stats.epoch_loss.back(), stats.epoch_accuracy.back());
    }
  }
  return stats;
}

}  // namespace dtsnn::snn
