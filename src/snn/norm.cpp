#include "snn/norm.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace dtsnn::snn {

BatchNorm2d::BatchNorm2d(std::size_t channels, float vth_scale, float momentum, float eps)
    : channels_(channels),
      momentum_(momentum),
      eps_(eps),
      gamma_("bn.gamma", Tensor({channels}, vth_scale), /*no_decay=*/true),
      beta_("bn.beta", Tensor({channels})),
      running_mean_({channels}),
      running_var_({channels}, 1.0f) {
  beta_.no_decay = true;
}

Tensor BatchNorm2d::forward(const Tensor& x, bool train) {
  if (x.rank() != 4 || x.dim(1) != channels_) {
    throw std::invalid_argument("BatchNorm2d: bad input shape " + shape_to_string(x.shape()));
  }
  const std::size_t n = x.dim(0), c = channels_, hw = x.dim(2) * x.dim(3);
  const double count = static_cast<double>(n * hw);
  Tensor out(x.shape());

  std::vector<float> mean(c, 0.0f), var(c, 0.0f);
  if (train) {
#pragma omp parallel for schedule(static)
    for (std::size_t ch = 0; ch < c; ++ch) {
      double sum = 0.0, sq = 0.0;
      for (std::size_t img = 0; img < n; ++img) {
        const float* src = x.data() + (img * c + ch) * hw;
        for (std::size_t p = 0; p < hw; ++p) {
          sum += src[p];
          sq += static_cast<double>(src[p]) * src[p];
        }
      }
      const double m = sum / count;
      mean[ch] = static_cast<float>(m);
      var[ch] = static_cast<float>(std::max(0.0, sq / count - m * m));
    }
    for (std::size_t ch = 0; ch < c; ++ch) {
      running_mean_[ch] = (1.0f - momentum_) * running_mean_[ch] + momentum_ * mean[ch];
      running_var_[ch] = (1.0f - momentum_) * running_var_[ch] + momentum_ * var[ch];
    }
  } else {
    for (std::size_t ch = 0; ch < c; ++ch) {
      mean[ch] = running_mean_[ch];
      var[ch] = running_var_[ch];
    }
  }

  std::vector<float> inv_std(c);
  for (std::size_t ch = 0; ch < c; ++ch) {
    inv_std[ch] = 1.0f / std::sqrt(var[ch] + eps_);
  }

  Tensor xhat;
  if (train) xhat = Tensor(x.shape());
#pragma omp parallel for schedule(static)
  for (std::size_t img = 0; img < n; ++img) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* src = x.data() + (img * c + ch) * hw;
      float* dst = out.data() + (img * c + ch) * hw;
      float* xh = train ? xhat.data() + (img * c + ch) * hw : nullptr;
      const float m = mean[ch], is = inv_std[ch];
      const float g = gamma_.value[ch], b = beta_.value[ch];
      for (std::size_t p = 0; p < hw; ++p) {
        const float h = (src[p] - m) * is;
        if (xh) xh[p] = h;
        dst[p] = g * h + b;
      }
    }
  }

  if (train) {
    xhat_cache_ = std::move(xhat);
    inv_std_cache_ = std::move(inv_std);
    have_cache_ = true;
  } else {
    have_cache_ = false;
  }
  return out;
}

Tensor BatchNorm2d::backward(const Tensor& grad_out) {
  assert(have_cache_ && "BatchNorm2d::backward requires a prior training forward");
  const std::size_t n = grad_out.dim(0), c = channels_,
                    hw = grad_out.dim(2) * grad_out.dim(3);
  const double count = static_cast<double>(n * hw);
  Tensor dx(grad_out.shape());

#pragma omp parallel for schedule(static)
  for (std::size_t ch = 0; ch < c; ++ch) {
    // Per-channel reductions: sum(g), sum(g * xhat).
    double sum_g = 0.0, sum_gx = 0.0;
    for (std::size_t img = 0; img < n; ++img) {
      const float* g = grad_out.data() + (img * c + ch) * hw;
      const float* xh = xhat_cache_.data() + (img * c + ch) * hw;
      for (std::size_t p = 0; p < hw; ++p) {
        sum_g += g[p];
        sum_gx += static_cast<double>(g[p]) * xh[p];
      }
    }
    gamma_.grad[ch] += static_cast<float>(sum_gx);
    beta_.grad[ch] += static_cast<float>(sum_g);

    const float gval = gamma_.value[ch];
    const float is = inv_std_cache_[ch];
    const float mean_g = static_cast<float>(sum_g / count);
    const float mean_gx = static_cast<float>(sum_gx / count);
    for (std::size_t img = 0; img < n; ++img) {
      const float* g = grad_out.data() + (img * c + ch) * hw;
      const float* xh = xhat_cache_.data() + (img * c + ch) * hw;
      float* d = dx.data() + (img * c + ch) * hw;
      for (std::size_t p = 0; p < hw; ++p) {
        d[p] = gval * is * (g[p] - mean_g - xh[p] * mean_gx);
      }
    }
  }
  return dx;
}

std::vector<Param*> BatchNorm2d::params() { return {&gamma_, &beta_}; }

}  // namespace dtsnn::snn
