// Dense float32 tensor with contiguous row-major storage.
//
// This is the single data container used throughout the library. It is
// deliberately simple: fixed dtype, contiguous storage, explicit shapes.
// Layers operate on tensors whose leading dimension is the "time-major"
// batch T*B (see snn/network.h).

#pragma once

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "util/rng.h"

namespace dtsnn::snn {

using Shape = std::vector<std::size_t>;

/// Number of elements implied by a shape (1 for rank-0).
std::size_t shape_numel(const Shape& shape);

/// "[2, 3, 4]" rendering for error messages.
std::string shape_to_string(const Shape& shape);

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape) : shape_(std::move(shape)), data_(shape_numel(shape_), 0.0f) {}
  Tensor(Shape shape, float fill)
      : shape_(std::move(shape)), data_(shape_numel(shape_), fill) {}
  Tensor(Shape shape, std::vector<float> data);

  // -- factories ------------------------------------------------------------
  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor ones(Shape shape) { return Tensor(std::move(shape), 1.0f); }
  static Tensor full(Shape shape, float v) { return Tensor(std::move(shape), v); }
  /// I.i.d. N(mean, stddev^2) entries.
  static Tensor randn(Shape shape, util::Rng& rng, float mean = 0.0f, float stddev = 1.0f);
  /// I.i.d. U[lo, hi) entries.
  static Tensor rand_uniform(Shape shape, util::Rng& rng, float lo = 0.0f, float hi = 1.0f);

  // -- shape ----------------------------------------------------------------
  [[nodiscard]] const Shape& shape() const { return shape_; }
  [[nodiscard]] std::size_t rank() const { return shape_.size(); }
  [[nodiscard]] std::size_t dim(std::size_t i) const { return shape_.at(i); }
  [[nodiscard]] std::size_t numel() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  /// Returns a tensor sharing no storage but holding the same data with a
  /// new shape (numel must match).
  [[nodiscard]] Tensor reshaped(Shape new_shape) const;
  /// In-place reshape (numel must match).
  void reshape(Shape new_shape);

  // -- element access -------------------------------------------------------
  float* data() { return data_.data(); }
  [[nodiscard]] const float* data() const { return data_.data(); }
  std::span<float> span() { return {data_.data(), data_.size()}; }
  [[nodiscard]] std::span<const float> span() const { return {data_.data(), data_.size()}; }

  float& operator[](std::size_t flat) { return data_[flat]; }
  float operator[](std::size_t flat) const { return data_[flat]; }

  /// Multi-index access (rank checked in debug builds).
  template <typename... Idx>
  float& at(Idx... idx) {
    return data_[flat_index({static_cast<std::size_t>(idx)...})];
  }
  template <typename... Idx>
  [[nodiscard]] float at(Idx... idx) const {
    return data_[flat_index({static_cast<std::size_t>(idx)...})];
  }

  /// Span over row `i` of a rank>=1 tensor viewed as [dim0, rest].
  std::span<float> row(std::size_t i);
  [[nodiscard]] std::span<const float> row(std::size_t i) const;
  /// Elements per row (= numel / dim0).
  [[nodiscard]] std::size_t row_size() const;

  // -- elementwise ops (in place) --------------------------------------------
  void fill(float v);
  void zero() { fill(0.0f); }
  Tensor& add_(const Tensor& other);                ///< this += other
  Tensor& add_scaled_(const Tensor& other, float s);///< this += s * other
  Tensor& sub_(const Tensor& other);                ///< this -= other
  Tensor& mul_(const Tensor& other);                ///< this *= other (Hadamard)
  Tensor& scale_(float s);                          ///< this *= s
  Tensor& clamp_(float lo, float hi);

  // -- reductions -------------------------------------------------------------
  [[nodiscard]] float sum() const;
  [[nodiscard]] float mean() const;
  [[nodiscard]] float abs_max() const;
  /// Fraction of non-zero entries — the spike density of a binary tensor.
  [[nodiscard]] double density() const;

  /// Deep-equality within tolerance.
  [[nodiscard]] bool allclose(const Tensor& other, float rtol = 1e-5f, float atol = 1e-7f) const;

 private:
  [[nodiscard]] std::size_t flat_index(std::initializer_list<std::size_t> idx) const;

  Shape shape_;
  std::vector<float> data_;
};

}  // namespace dtsnn::snn
