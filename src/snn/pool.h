// Spatial pooling layers. Spiking VGG uses average pooling (spike rates are
// preserved in expectation); max pooling is provided for completeness.

#pragma once

#include "snn/layer.h"

namespace dtsnn::snn {

class AvgPool2d final : public Layer {
 public:
  explicit AvgPool2d(std::size_t kernel) : kernel_(kernel) {}

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] std::string name() const override { return "AvgPool2d"; }
  [[nodiscard]] Shape infer_shape(const Shape& sample_shape) const override;
  [[nodiscard]] std::size_t kernel() const { return kernel_; }

 private:
  std::size_t kernel_;
  Shape in_shape_;
};

class MaxPool2d final : public Layer {
 public:
  explicit MaxPool2d(std::size_t kernel) : kernel_(kernel) {}

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] std::string name() const override { return "MaxPool2d"; }
  [[nodiscard]] Shape infer_shape(const Shape& sample_shape) const override;
  [[nodiscard]] std::size_t kernel() const { return kernel_; }

 private:
  std::size_t kernel_;
  Shape in_shape_;
  std::vector<std::size_t> argmax_;  // flat input index of each pooled max
};

}  // namespace dtsnn::snn
