// 2-D convolution layer (im2col + GEMM), with full backward pass.

#pragma once

#include "snn/im2col.h"
#include "snn/layer.h"
#include "snn/quantize.h"
#include "util/rng.h"

namespace dtsnn::snn {

class Conv2d final : public Layer, public QuantizedWeightHolder {
 public:
  /// Kaiming-uniform initialized convolution. `bias` adds a per-output-channel
  /// offset (disabled when a norm layer follows, matching common practice).
  Conv2d(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
         std::size_t stride, std::size_t padding, bool bias, util::Rng& rng);

  void set_time(std::size_t timesteps, std::size_t batch) override;
  void begin_steps(std::size_t batch) override;
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override;
  [[nodiscard]] std::string name() const override { return "Conv2d"; }
  [[nodiscard]] Shape infer_shape(const Shape& sample_shape) const override;

  [[nodiscard]] std::size_t in_channels() const { return in_channels_; }
  [[nodiscard]] std::size_t out_channels() const { return out_channels_; }
  [[nodiscard]] std::size_t kernel() const { return kernel_; }
  [[nodiscard]] std::size_t stride() const { return stride_; }
  [[nodiscard]] std::size_t padding() const { return padding_; }
  [[nodiscard]] bool has_bias() const { return has_bias_; }

  /// Weight tensor, shape [Cout, Cin*K*K].
  Param& weight() { return weight_; }
  Param& bias() { return bias_; }

  // QuantizedWeightHolder: optional post-training quantized weight copy,
  // consumed by eval forwards when a quantized backend is selected.
  [[nodiscard]] const Tensor& quantizable_weight() const override {
    return weight_.value;
  }
  [[nodiscard]] const util::QuantizedMatrix& quantized_weights() const override {
    return qweight_;
  }
  void set_quantized_weights(util::QuantizedMatrix q) override;
  void clear_quantized_weights() override { qweight_ = util::QuantizedMatrix(); }

 private:
  /// Materialize (or reuse) the W^T [Cin*K*K, Cout] scratch for the
  /// A-stationary spike-sparse GEMM form.
  const float* ensure_weight_transpose();

  std::size_t in_channels_, out_channels_, kernel_, stride_, padding_;
  bool has_bias_;
  Param weight_;
  Param bias_;
  util::QuantizedMatrix qweight_;

  // Training-time caches.
  ConvGeometry geom_;
  Tensor col_cache_;   // [N*OH*OW, Cin*K*K]
  bool have_cache_ = false;

  // W^T [Cin*K*K, Cout] scratch for the spike-sparse A-stationary kernels
  // (eval conv and sparse training forwards). Weights can only change
  // between sequences/forward passes, both of which are preceded by set_time
  // or begin_steps, so those mark it dirty and the transpose is reused
  // across the steps of one inference sequence.
  Tensor wt_scratch_;
  bool wt_dirty_ = true;
};

}  // namespace dtsnn::snn
