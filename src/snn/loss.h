// Training losses for spiking networks.
//
// The network emits per-timestep classifier outputs y_t, stacked time-major
// as logits [T*B, K]. The paper defines the t-timestep prediction as the
// cumulative mean  f_t(x) = (1/t) * sum_{tau<=t} y_tau  (Eq. 1/5).
//
//  * MeanLogitCrossEntropy (Eq. 9): softmax cross-entropy on f_T only —
//    the conventional static-SNN loss.
//  * PerTimestepCrossEntropy (Eq. 10): mean over t of the cross-entropy on
//    every cumulative prediction f_t — the DT-SNN loss that gives explicit
//    supervision to early timesteps.

#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "snn/tensor.h"

namespace dtsnn::snn {

struct LossResult {
  double loss = 0.0;             ///< mean loss over the batch
  Tensor grad;                   ///< dL/dlogits, shape [T*B, K]
  std::size_t correct = 0;       ///< argmax(f_T) == label count
};

class Loss {
 public:
  virtual ~Loss() = default;
  /// logits: [T*B, K] time-major; labels: B entries in [0, K).
  virtual LossResult compute(const Tensor& logits, std::span<const int> labels,
                             std::size_t timesteps) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Eq. (9): CE(softmax(mean_t y_t), z).
class MeanLogitCrossEntropy final : public Loss {
 public:
  LossResult compute(const Tensor& logits, std::span<const int> labels,
                     std::size_t timesteps) const override;
  [[nodiscard]] std::string name() const override { return "mean-logit-ce"; }
};

/// Eq. (10): (1/T) sum_t CE(softmax(f_t), z) with f_t the cumulative mean.
class PerTimestepCrossEntropy final : public Loss {
 public:
  LossResult compute(const Tensor& logits, std::span<const int> labels,
                     std::size_t timesteps) const override;
  [[nodiscard]] std::string name() const override { return "per-timestep-ce"; }
};

/// One timestep of the cumulative-mean recurrence: acc += y_t, then
/// cum = float(acc * (1/(t+1))) (t is 0-based). This is THE definition of
/// f_t(x) — cumulative_mean_logits and every core inference engine call it,
/// so the post-hoc, batch-1, and batched execution paths produce bitwise
/// identical logits by construction (note: reciprocal-multiply, not
/// division — the two round differently for t+1 = 3).
inline void cumulative_mean_step(const float* y, double* acc, float* cum,
                                 std::size_t k, std::size_t t) {
  const double inv = 1.0 / static_cast<double>(t + 1);
  for (std::size_t c = 0; c < k; ++c) {
    acc[c] += y[c];
    cum[c] = static_cast<float>(acc[c] * inv);
  }
}

/// Cumulative-mean logits: out[t] = (1/(t+1)) * sum_{tau<=t} y_tau.
/// Input and output are [T*B, K] time-major. This is the quantity the
/// DT-SNN exit rule thresholds at each timestep.
Tensor cumulative_mean_logits(const Tensor& logits, std::size_t timesteps);

}  // namespace dtsnn::snn
