#include "snn/pool.h"

#include <cassert>
#include <stdexcept>

namespace dtsnn::snn {

namespace {
void check_divisible(const Tensor& x, std::size_t k, const char* who) {
  if (x.rank() != 4 || x.dim(2) % k != 0 || x.dim(3) % k != 0) {
    throw std::invalid_argument(std::string(who) + ": input " + shape_to_string(x.shape()) +
                                " not divisible by kernel " + std::to_string(k));
  }
}
}  // namespace

Tensor AvgPool2d::forward(const Tensor& x, bool /*train*/) {
  check_divisible(x, kernel_, "AvgPool2d");
  in_shape_ = x.shape();
  const std::size_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const std::size_t oh = h / kernel_, ow = w / kernel_;
  Tensor out({n, c, oh, ow});
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
#pragma omp parallel for schedule(static)
  for (std::size_t nc = 0; nc < n * c; ++nc) {
    const float* src = x.data() + nc * h * w;
    float* dst = out.data() + nc * oh * ow;
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        float acc = 0.0f;
        for (std::size_t ky = 0; ky < kernel_; ++ky) {
          const float* row = src + (oy * kernel_ + ky) * w + ox * kernel_;
          for (std::size_t kx = 0; kx < kernel_; ++kx) acc += row[kx];
        }
        dst[oy * ow + ox] = acc * inv;
      }
    }
  }
  return out;
}

Tensor AvgPool2d::backward(const Tensor& grad_out) {
  const std::size_t n = in_shape_[0], c = in_shape_[1], h = in_shape_[2], w = in_shape_[3];
  const std::size_t oh = h / kernel_, ow = w / kernel_;
  assert(grad_out.dim(2) == oh && grad_out.dim(3) == ow);
  Tensor dx(in_shape_);
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
#pragma omp parallel for schedule(static)
  for (std::size_t nc = 0; nc < n * c; ++nc) {
    const float* g = grad_out.data() + nc * oh * ow;
    float* dst = dx.data() + nc * h * w;
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        const float v = g[oy * ow + ox] * inv;
        for (std::size_t ky = 0; ky < kernel_; ++ky) {
          float* row = dst + (oy * kernel_ + ky) * w + ox * kernel_;
          for (std::size_t kx = 0; kx < kernel_; ++kx) row[kx] += v;
        }
      }
    }
  }
  return dx;
}

Shape AvgPool2d::infer_shape(const Shape& s) const {
  if (s.size() != 3 || s[1] % kernel_ != 0 || s[2] % kernel_ != 0) {
    throw std::invalid_argument("AvgPool2d::infer_shape: bad sample shape " +
                                shape_to_string(s));
  }
  return {s[0], s[1] / kernel_, s[2] / kernel_};
}

Tensor MaxPool2d::forward(const Tensor& x, bool train) {
  check_divisible(x, kernel_, "MaxPool2d");
  in_shape_ = x.shape();
  const std::size_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const std::size_t oh = h / kernel_, ow = w / kernel_;
  Tensor out({n, c, oh, ow});
  if (train) argmax_.assign(out.numel(), 0);
#pragma omp parallel for schedule(static)
  for (std::size_t nc = 0; nc < n * c; ++nc) {
    const float* src = x.data() + nc * h * w;
    float* dst = out.data() + nc * oh * ow;
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        float best = src[(oy * kernel_) * w + ox * kernel_];
        std::size_t best_idx = (oy * kernel_) * w + ox * kernel_;
        for (std::size_t ky = 0; ky < kernel_; ++ky) {
          for (std::size_t kx = 0; kx < kernel_; ++kx) {
            const std::size_t idx = (oy * kernel_ + ky) * w + ox * kernel_ + kx;
            if (src[idx] > best) {
              best = src[idx];
              best_idx = idx;
            }
          }
        }
        dst[oy * ow + ox] = best;
        if (train) argmax_[nc * oh * ow + oy * ow + ox] = nc * h * w + best_idx;
      }
    }
  }
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  assert(!argmax_.empty() && "MaxPool2d::backward requires a prior training forward");
  Tensor dx(in_shape_);
  for (std::size_t i = 0; i < grad_out.numel(); ++i) dx[argmax_[i]] += grad_out[i];
  return dx;
}

Shape MaxPool2d::infer_shape(const Shape& s) const {
  if (s.size() != 3 || s[1] % kernel_ != 0 || s[2] % kernel_ != 0) {
    throw std::invalid_argument("MaxPool2d::infer_shape: bad sample shape " +
                                shape_to_string(s));
  }
  return {s[0], s[1] / kernel_, s[2] / kernel_};
}

}  // namespace dtsnn::snn
