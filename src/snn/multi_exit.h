// Multi-exit spiking networks: auxiliary classifier heads at intermediate
// depths, enabling layer-wise early exit *on top of* timestep-wise DT-SNN.
//
// The paper (Section III-A, "Relation to Early Exit in ANN") argues DT-SNN is
// complementary to BranchyNet-style early exit: DT-SNN saves timesteps, early
// exit saves depth within a timestep, and the two compose. This module
// provides the substrate for that composition: a spiking backbone split into
// segments, with a classifier head (global average pool + linear) after each
// segment. The final head is the network's main classifier.

#pragma once

#include "snn/loss.h"
#include "snn/trainer.h"
#include "snn/models.h"
#include "snn/network.h"

namespace dtsnn::snn {

class MultiExitNetwork {
 public:
  MultiExitNetwork(std::vector<Sequential> segments, std::vector<Sequential> heads,
                   std::size_t num_classes, Shape sample_shape);

  /// Multi-step forward: x is [T*B, C, H, W]; returns one [T*B, K] logit
  /// tensor per exit, ordered shallow -> deep.
  std::vector<Tensor> forward(const Tensor& x, std::size_t timesteps, bool train);

  /// Backward from per-exit logit gradients (same order/shapes as forward).
  void backward(const std::vector<Tensor>& grad_logits);

  std::vector<Param*> params();
  [[nodiscard]] std::size_t num_exits() const { return heads_.size(); }
  [[nodiscard]] std::size_t num_classes() const { return num_classes_; }
  [[nodiscard]] const Shape& sample_shape() const { return sample_shape_; }

  /// Fraction of the backbone's per-timestep compute (MACs) spent up to and
  /// including segment i plus its head — the cost model for layer-wise exit.
  [[nodiscard]] const std::vector<double>& cost_fractions() const {
    return cost_fractions_;
  }

 private:
  std::vector<Sequential> segments_;
  std::vector<Sequential> heads_;
  std::size_t num_classes_;
  Shape sample_shape_;
  std::vector<double> cost_fractions_;
  std::vector<Tensor> segment_outputs_;  // training cache (for shape checks)
};

/// Spiking VGG with an auxiliary exit after every pooling stage.
/// `plan` follows make_spiking_vgg (-1 = pool, which also ends a segment).
MultiExitNetwork make_multi_exit_vgg(const std::vector<int>& plan,
                                     const ModelConfig& config);

/// Per-exit, per-timestep training loss: mean over exits of Eq. 10, with
/// deeper exits weighted more (weight = (i+1) / sum).
struct MultiExitLossResult {
  double loss = 0.0;
  std::vector<Tensor> grads;       ///< per exit
  std::size_t correct_final = 0;   ///< accuracy of the deepest exit at full T
};

MultiExitLossResult multi_exit_loss(const std::vector<Tensor>& exit_logits,
                                    std::span<const int> labels,
                                    std::size_t timesteps);

/// Training loop (SGD + cosine), mirroring snn::train for multi-exit nets.
TrainStats train_multi_exit(MultiExitNetwork& net, BatchSource& source,
                            const TrainOptions& options);

}  // namespace dtsnn::snn
