#include "snn/lif.h"

#include <cassert>
#include <stdexcept>

namespace dtsnn::snn {

void Lif::set_time(std::size_t timesteps, std::size_t batch) {
  Layer::set_time(timesteps, batch);
  stepping_ = false;
}

Tensor Lif::forward(const Tensor& x, bool train) {
  const std::size_t tb = x.dim(0);
  if (timesteps_ == 0 || tb % timesteps_ != 0) {
    throw std::invalid_argument("Lif: leading dim " + std::to_string(tb) +
                                " not divisible by T=" + std::to_string(timesteps_));
  }
  const std::size_t b = tb / timesteps_;
  const std::size_t stride = x.row_size() * b;  // elements per timestep slab

  Tensor spikes(x.shape());
  Tensor u_pre;
  if (train) u_pre = Tensor(x.shape());

  std::vector<float> u(stride, 0.0f);  // post-reset membrane, carried over t
  const float vth = config_.vth;
  const float tau = config_.tau;
  std::size_t spike_count = 0;

  for (std::size_t t = 0; t < timesteps_; ++t) {
    const float* in = x.data() + t * stride;
    float* out = spikes.data() + t * stride;
    float* upre_t = train ? u_pre.data() + t * stride : nullptr;
    std::size_t local_spikes = 0;
#pragma omp parallel for schedule(static) reduction(+ : local_spikes)
    for (std::size_t i = 0; i < stride; ++i) {
      const float pre = tau * u[i] + in[i];
      const float s = pre > vth ? 1.0f : 0.0f;
      if (upre_t) upre_t[i] = pre;
      out[i] = s;
      u[i] = config_.hard_reset ? pre * (1.0f - s) : pre - vth * s;
      local_spikes += (s != 0.0f);
    }
    spike_count += local_spikes;
  }

  last_spike_rate_ = static_cast<double>(spike_count) / static_cast<double>(x.numel());

  if (train) {
    u_pre_cache_ = std::move(u_pre);
    spike_cache_ = spikes;  // copy: spikes is also the output
    have_cache_ = true;
  } else {
    have_cache_ = false;
    u_pre_cache_ = Tensor();
    spike_cache_ = Tensor();
  }
  return spikes;
}

Tensor Lif::backward(const Tensor& grad_out) {
  assert(have_cache_ && "Lif::backward requires a prior training forward");
  const std::size_t tb = grad_out.dim(0);
  const std::size_t b = tb / timesteps_;
  const std::size_t stride = grad_out.row_size() * b;

  Tensor dx(grad_out.shape());
  std::vector<float> du_post(stride, 0.0f);  // gradient wrt post-reset membrane,
                                             // carried backwards in time
  const float vth = config_.vth;
  const float tau = config_.tau;

  for (std::size_t t = timesteps_; t-- > 0;) {
    const float* gs = grad_out.data() + t * stride;
    const float* upre = u_pre_cache_.data() + t * stride;
    const float* s = spike_cache_.data() + t * stride;
    float* d = dx.data() + t * stride;
#pragma omp parallel for schedule(static)
    for (std::size_t i = 0; i < stride; ++i) {
      const float fprime = surrogate_grad(config_.surrogate, upre[i], vth);
      float du_pre;
      if (config_.hard_reset) {
        // u_post = u_pre * (1 - s)
        du_pre = du_post[i] * (1.0f - s[i]) + gs[i] * fprime;
        if (!config_.detach_reset) du_pre -= du_post[i] * upre[i] * fprime;
      } else {
        // u_post = u_pre - vth * s
        du_pre = du_post[i] + gs[i] * fprime;
        if (!config_.detach_reset) du_pre -= du_post[i] * vth * fprime;
      }
      d[i] = du_pre;                 // dI[t] = du_pre
      du_post[i] = tau * du_pre;     // carry to t-1 through the leak
    }
  }
  return dx;
}

void Lif::begin_steps(std::size_t batch) {
  Layer::begin_steps(batch);
  membrane_ = Tensor();
  stepping_ = true;
}

void Lif::compact_state(std::span<const std::size_t> keep) {
  if (stepping_ && !membrane_.empty()) {
    const std::size_t rows = membrane_.dim(0);
    const std::size_t row_numel = membrane_.row_size();
    Shape shape = membrane_.shape();
    shape[0] = keep.size();
    Tensor next(shape);  // zero-initialized: kFreshRow rows stay fresh
    for (std::size_t j = 0; j < keep.size(); ++j) {
      if (keep[j] == kFreshRow) continue;
      if (keep[j] >= rows) {
        throw std::out_of_range("Lif::compact_state: keep index out of range");
      }
      std::copy(membrane_.data() + keep[j] * row_numel,
                membrane_.data() + (keep[j] + 1) * row_numel,
                next.data() + j * row_numel);
    }
    membrane_ = std::move(next);
  }
  Layer::compact_state(keep);
}

Tensor Lif::step(const Tensor& x) {
  if (!stepping_) begin_steps(x.dim(0));
  if (membrane_.empty()) membrane_ = Tensor(x.shape());
  if (membrane_.shape() != x.shape()) {
    throw std::invalid_argument("Lif::step: input shape changed mid-sequence");
  }
  Tensor spikes(x.shape());
  const float vth = config_.vth;
  const float tau = config_.tau;
  float* u = membrane_.data();
  const float* in = x.data();
  float* out = spikes.data();
  const std::size_t n = x.numel();
  for (std::size_t i = 0; i < n; ++i) {
    const float pre = tau * u[i] + in[i];
    const float s = pre > vth ? 1.0f : 0.0f;
    out[i] = s;
    u[i] = config_.hard_reset ? pre * (1.0f - s) : pre - vth * s;
  }
  return spikes;
}

}  // namespace dtsnn::snn
