#include "core/quantize.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/engine.h"
#include "snn/quantize.h"
#include "util/gemm.h"
#include "util/logging.h"

namespace dtsnn::core {

namespace {

/// Restores the network's GEMM context even when a measurement pass throws.
class GemmContextScope {
 public:
  GemmContextScope(snn::SpikingNetwork& net, util::GemmContext& context) : net_(net) {
    net_.set_gemm_context(&context);
  }
  ~GemmContextScope() { net_.set_gemm_context(nullptr); }
  GemmContextScope(const GemmContextScope&) = delete;
  GemmContextScope& operator=(const GemmContextScope&) = delete;

 private:
  snn::SpikingNetwork& net_;
};

double accuracy_of(std::span<const InferenceResult> results,
                   const data::Dataset& dataset) {
  if (results.empty()) return 0.0;
  std::size_t correct = 0;
  for (const InferenceResult& r : results) {
    correct += r.predicted_class == static_cast<std::size_t>(dataset.label(r.sample));
  }
  return static_cast<double>(correct) / static_cast<double>(results.size());
}

}  // namespace

DecisionDiff compare_decisions(std::span<const InferenceResult> oracle,
                               std::span<const InferenceResult> candidate) {
  if (oracle.size() != candidate.size()) {
    throw std::invalid_argument(
        util::format("compare_decisions: oracle ran %zu samples, candidate %zu",
                     oracle.size(), candidate.size()));
  }
  DecisionDiff diff;
  diff.samples = oracle.size();
  for (std::size_t i = 0; i < oracle.size(); ++i) {
    if (oracle[i].sample != candidate[i].sample) {
      throw std::invalid_argument(
          util::format("compare_decisions: position %zu compares dataset sample "
                       "%zu against %zu",
                       i, oracle[i].sample, candidate[i].sample));
    }
    diff.prediction_flips += oracle[i].predicted_class != candidate[i].predicted_class;
    diff.exit_flips += oracle[i].exit_timestep != candidate[i].exit_timestep;
  }
  if (diff.samples > 0) {
    diff.prediction_flip_rate =
        static_cast<double>(diff.prediction_flips) / static_cast<double>(diff.samples);
    diff.exit_flip_rate =
        static_cast<double>(diff.exit_flips) / static_cast<double>(diff.samples);
  }
  return diff;
}

QuantCalibrationReport calibrate_quantized(snn::SpikingNetwork& net,
                                           const data::Dataset& dataset,
                                           const ExitPolicy& policy,
                                           std::size_t max_timesteps,
                                           const QuantCalibrationConfig& config) {
  config.spec.validate();

  QuantCalibrationReport report;
  report.bits = config.spec.bits;
  report.group_size = config.spec.resolved_group_size();
  report.layers_quantized = snn::quantize_network_weights(net, config.spec);
  if (report.layers_quantized == 0) {
    throw util::QuantizationError(
        util::QuantizationError::Kind::kBadSpec,
        "calibrate_quantized: network has no quantizable (weight-bearing) layers");
  }

  const snn::QuantFootprint footprint = snn::network_quant_footprint(net);
  report.float_weight_bytes = footprint.float_bytes;
  report.quant_weight_bytes = footprint.packed_bytes;
  report.scale_bytes = footprint.scale_bytes;
  report.footprint_ratio =
      footprint.packed_bytes > 0
          ? static_cast<double>(footprint.float_bytes) /
                static_cast<double>(footprint.packed_bytes)
          : 0.0;

  const std::size_t limit = config.max_samples == 0
                                ? dataset.size()
                                : std::min(config.max_samples, dataset.size());
  report.samples = limit;
  const InferenceRequest request = InferenceRequest::first_n(limit);

  const util::GemmBackend* oracle_backend = util::find_gemm_backend("scalar_ref");
  const util::GemmBackend* quant_backend = util::find_gemm_backend(
      config.spec.bits == 4 ? "int4_spike" : "int8_spike");

  std::vector<InferenceResult> oracle;
  {
    util::GemmContext context(*oracle_backend);
    GemmContextScope scope(net, context);
    BatchedSequentialEngine engine(net, policy, max_timesteps, config.batch_size);
    oracle = engine.run(dataset, request);
  }
  std::vector<InferenceResult> quant;
  {
    util::GemmContext context(*quant_backend);
    GemmContextScope scope(net, context);
    BatchedSequentialEngine engine(net, policy, max_timesteps, config.batch_size);
    quant = engine.run(dataset, request);
  }

  report.diff = compare_decisions(oracle, quant);
  report.accuracy_float = accuracy_of(oracle, dataset);
  report.accuracy_quant = accuracy_of(quant, dataset);
  report.accuracy_delta = report.accuracy_quant - report.accuracy_float;
  report.within_tolerance =
      report.diff.prediction_flip_rate <= config.flip_rate_tolerance &&
      std::abs(report.accuracy_delta) <= config.accuracy_delta_tolerance;
  return report;
}

}  // namespace dtsnn::core
