#include "core/inference.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <tuple>
#include <unordered_set>

#include "core/engine.h"
#include "core/entropy.h"
#include "data/prefetch.h"
#include "snn/loss.h"
#include "util/gemm.h"
#include "util/math.h"

namespace dtsnn::core {

std::string InferenceEngine::gemm_backend() const {
  return std::string(util::GemmContext::global().backend().name());
}

std::size_t validate_request_samples(std::span<const std::size_t> samples,
                                     std::size_t sample_limit, const std::string& who,
                                     bool allow_duplicates) {
  std::unordered_set<std::size_t> seen;
  if (!allow_duplicates) seen.reserve(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (samples[i] >= sample_limit) {
      throw std::out_of_range(who + ": sample index " + std::to_string(samples[i]) +
                              " at request position " + std::to_string(i) +
                              " out of range (sample limit " +
                              std::to_string(sample_limit) + ")");
    }
    if (!allow_duplicates && !seen.insert(samples[i]).second) {
      throw std::invalid_argument(who + ": duplicate sample index " +
                                  std::to_string(samples[i]) + " at request position " +
                                  std::to_string(i));
    }
  }
  return samples.size();
}

InferenceResult make_exit_result(std::span<const float> cum, std::size_t t,
                                 bool record_logits, std::vector<float>& history) {
  InferenceResult r;
  r.exit_timestep = t + 1;
  r.predicted_class = util::argmax(cum);
  r.final_entropy = entropy_of_logits(cum);
  if (record_logits) {
    r.timestep_logits = snn::Tensor({t + 1, cum.size()}, std::move(history));
  }
  history.clear();
  return r;
}

InferenceRequest InferenceRequest::first_n(std::size_t n) {
  InferenceRequest request;
  request.samples.resize(n);
  std::iota(request.samples.begin(), request.samples.end(), 0);
  return request;
}

std::vector<InferenceResult> InferenceEngine::run(const data::Dataset& dataset,
                                                  const InferenceRequest& request) {
  InferenceRequest req = request;
  if (req.samples.empty()) {
    req.samples.resize(std::min(dataset.size(), sample_limit(dataset)));
    std::iota(req.samples.begin(), req.samples.end(), 0);
  }
  std::vector<InferenceResult> results(req.samples.size());
  std::vector<unsigned char> seen(req.samples.size(), 0);
  run_streaming(dataset, req, [&](const InferenceResult& r) {
    results.at(r.request_index) = r;
    seen.at(r.request_index) = 1;
  });
  for (const unsigned char s : seen) {
    if (!s) throw std::logic_error(name() + ": engine dropped a requested sample");
  }
  return results;
}

DtsnnResult evaluate_engine(InferenceEngine& engine, const data::Dataset& dataset,
                            const InferenceRequest& request) {
  const std::size_t budget =
      request.max_timesteps ? request.max_timesteps : engine.max_timesteps();
  const std::vector<InferenceResult> results = engine.run(dataset, request);

  DtsnnResult out;
  out.timestep_histogram = util::Histogram(std::max<std::size_t>(budget, 1));
  out.exit_timestep.resize(results.size());
  out.correct.resize(results.size());
  std::size_t correct = 0;
  double total_t = 0.0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const InferenceResult& r = results[i];
    const bool ok =
        r.predicted_class == static_cast<std::size_t>(dataset.label(r.sample));
    out.exit_timestep[i] = r.exit_timestep;
    out.correct[i] = ok;
    out.timestep_histogram.add(r.exit_timestep - 1);
    correct += ok;
    total_t += static_cast<double>(r.exit_timestep);
  }
  const double n = static_cast<double>(results.size());
  out.accuracy = results.empty() ? 0.0 : static_cast<double>(correct) / n;
  out.avg_timesteps = results.empty() ? 0.0 : total_t / n;
  return out;
}

// ------------------------------------------------------------- PostHocEngine

PostHocEngine::PostHocEngine(const TimestepOutputs& outputs, const ExitPolicy& policy)
    : outputs_(&outputs), policy_(policy), max_timesteps_(outputs.timesteps) {
  if (outputs.timesteps == 0) {
    throw std::invalid_argument("PostHocEngine: recording has no timesteps");
  }
}

PostHocEngine::PostHocEngine(snn::SpikingNetwork& net, const ExitPolicy& policy,
                             std::size_t max_timesteps, std::size_t batch_size)
    : net_(&net), policy_(policy), max_timesteps_(max_timesteps),
      batch_size_(batch_size) {
  if (max_timesteps_ == 0) {
    throw std::invalid_argument("PostHocEngine: max_timesteps == 0");
  }
  if (batch_size_ == 0) throw std::invalid_argument("PostHocEngine: batch_size == 0");
}

std::size_t PostHocEngine::sample_limit(const data::Dataset& dataset) const {
  return outputs_ ? outputs_->samples : dataset.size();
}

namespace {

/// Eq. (8) over one sample's recorded rows: first t in [1, budget) whose
/// policy fires, else the forced exit at `budget`.
template <typename RowAt>
InferenceResult replay_rows(const ExitPolicy& policy, std::size_t budget,
                            std::size_t classes, bool record_logits,
                            const RowAt& row_at) {
  InferenceResult r;
  r.exit_timestep = budget;
  for (std::size_t t = 0; t + 1 < budget; ++t) {
    if (policy.should_exit(row_at(t))) {
      r.exit_timestep = t + 1;
      break;
    }
  }
  const std::span<const float> exit_row = row_at(r.exit_timestep - 1);
  r.predicted_class = util::argmax(exit_row);
  r.final_entropy = entropy_of_logits(exit_row);
  if (record_logits) {
    r.timestep_logits = snn::Tensor({r.exit_timestep, classes});
    for (std::size_t t = 0; t < r.exit_timestep; ++t) {
      const auto row = row_at(t);
      std::copy(row.begin(), row.end(), r.timestep_logits.data() + t * classes);
    }
  }
  return r;
}

}  // namespace

void PostHocEngine::run_streaming(const data::Dataset& dataset,
                                  const InferenceRequest& request,
                                  const ResultSink& sink) {
  const ExitPolicy& policy = request.policy ? *request.policy : policy_;
  const std::size_t budget =
      request.max_timesteps ? request.max_timesteps : max_timesteps_;
  if (budget == 0) throw std::invalid_argument("PostHocEngine: zero timestep budget");

  if (outputs_) {
    // Replay mode: request samples index the recorded rows.
    if (budget > outputs_->timesteps) {
      throw std::invalid_argument("PostHocEngine: budget exceeds recorded timesteps");
    }
    const std::size_t n = validate_request_samples(request.samples, outputs_->samples,
                                                   "PostHocEngine");
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t s = request.samples[i];
      InferenceResult r =
          replay_rows(policy, budget, outputs_->classes, request.record_logits,
                      [&](std::size_t t) { return outputs_->at(t, s); });
      r.request_index = i;
      r.sample = s;
      sink(r);
    }
    return;
  }

  // Record-on-demand mode: forward requested samples for the full budget one
  // streamed chunk at a time, then replay the exit rule on the recorded rows
  // — the whole-dataset encoding never exists in memory.
  std::ignore = validate_request_samples(request.samples, dataset.size(),
                                         "PostHocEngine");
  const std::size_t k = net_->num_classes();
  data::BatchCursor cursor(dataset, request.samples, budget, batch_size_);
  while (cursor.next()) {
    const std::size_t b = cursor.chunk_size();
    const std::span<const std::size_t> chunk = cursor.indices();
    snn::Tensor logits = net_->forward(cursor.batch().x, budget, /*train=*/false);
    snn::Tensor cum = snn::cumulative_mean_logits(logits, budget);
    for (std::size_t i = 0; i < b; ++i) {
      InferenceResult r =
          replay_rows(policy, budget, k, request.record_logits, [&](std::size_t t) {
            return std::span<const float>(cum.data() + (t * b + i) * k, k);
          });
      r.request_index = cursor.start() + i;
      r.sample = chunk[i];
      sink(r);
    }
  }
}

// -------------------------------------------------- BatchedSequentialEngine

BatchedSequentialEngine::BatchedSequentialEngine(snn::SpikingNetwork& net,
                                                 const ExitPolicy& policy,
                                                 std::size_t max_timesteps,
                                                 std::size_t batch_size)
    : net_(net), policy_(policy), max_timesteps_(max_timesteps),
      batch_size_(batch_size) {
  if (max_timesteps_ == 0) {
    throw std::invalid_argument("BatchedSequentialEngine: max_timesteps == 0");
  }
  if (batch_size_ == 0) {
    throw std::invalid_argument("BatchedSequentialEngine: batch_size == 0");
  }
}

void BatchedSequentialEngine::run_streaming(const data::Dataset& dataset,
                                            const InferenceRequest& request,
                                            const ResultSink& sink) {
  const ExitPolicy& policy = request.policy ? *request.policy : policy_;
  const std::size_t budget =
      request.max_timesteps ? request.max_timesteps : max_timesteps_;
  const snn::Shape fs = dataset.frame_shape();
  const std::size_t frame_numel = snn::shape_numel(fs);
  const std::size_t k = net_.num_classes();

  const std::size_t n_samples = validate_request_samples(
      request.samples, dataset.size(), "BatchedSequentialEngine");
  if (n_samples == 0) return;

  // Continuous batching: a live pool of up to batch_size_ samples, each at
  // its own timestep (LIF state is per-row, so mixed-timestep batches are
  // exact). When a sample exits, its slot is immediately refilled with the
  // next waiting sample (Layer::kFreshRow resets the slot's membrane), so
  // every step() runs as full as the remaining work allows instead of
  // draining half-empty chunks. Per-sample trajectories are independent of
  // the batch composition, so decisions, entropies and logits stay bitwise
  // identical to the batch-1 engine.
  struct Live {
    std::size_t request_index = 0;
    std::size_t t = 0;  ///< this sample's current (0-based) timestep
  };
  std::vector<Live> live;
  std::vector<double> acc;  // [live, K] accumulators, SequentialEngine arithmetic
  std::vector<std::vector<float>> history(batch_size_);  // empty unless recording
  std::size_t next = 0;  // next request position awaiting admission

  const std::size_t initial = std::min(batch_size_, request.samples.size());
  for (; next < initial; ++next) live.push_back({next, 0});
  acc.assign(initial * k, 0.0);
  net_.begin_inference(initial);

  // Background lookahead over the *waiting tail*: while the pool steps, the
  // prefetcher warms the shards of the samples that will be admitted into
  // freed slots next, so a refill's first write_frame hits a resident shard
  // instead of stalling the whole pool on a load. Inactive (zero cost) for
  // in-memory datasets or DTSNN_PREFETCH_DEPTH=0.
  data::ShardPrefetcher prefetcher(dataset);
  std::size_t hinted = 0;
  const auto hint_waiting = [&]() {
    if (!prefetcher.active()) return;
    const std::size_t horizon =
        std::min(request.samples.size(), next + batch_size_ * prefetcher.depth());
    if (hinted < next) hinted = next;
    if (hinted >= horizon) return;
    prefetcher.enqueue(
        std::span<const std::size_t>(request.samples).subspan(hinted, horizon - hinted));
    hinted = horizon;
  };
  hint_waiting();

  std::vector<float> cum(k);
  std::vector<std::size_t> keep;
  while (!live.empty()) {
    // Encode each live sample's own next frame.
    snn::Tensor x({live.size(), fs[0], fs[1], fs[2]});
    for (std::size_t j = 0; j < live.size(); ++j) {
      dataset.write_frame(request.samples[live[j].request_index], live[j].t,
                          {x.data() + j * frame_numel, frame_numel});
    }
    snn::Tensor y = net_.step(x);  // [live, K]

    keep.clear();
    for (std::size_t j = 0; j < live.size(); ++j) {
      const std::size_t t = live[j].t;
      snn::cumulative_mean_step(y.data() + j * k, acc.data() + j * k, cum.data(), k, t);
      if (request.record_logits) {
        history[j].insert(history[j].end(), cum.begin(), cum.end());
      }
      if (t + 1 == budget || policy.should_exit(cum)) {
        InferenceResult r = make_exit_result(cum, t, request.record_logits, history[j]);
        r.request_index = live[j].request_index;
        r.sample = request.samples[live[j].request_index];
        sink(r);
      } else {
        live[j].t = t + 1;
        keep.push_back(j);
      }
    }

    // Compact survivors and refill the freed slots with waiting samples.
    // (live.size() < batch_size_ implies the waiting queue is empty — the
    // initial fill and every refill top the pool up — so refilling is only
    // ever possible when someone just exited.)
    const std::size_t survivors = keep.size();
    if (survivors != live.size()) {
      // Gather survivors to the front (keep is ascending, so src >= j and
      // in-place forward copies are safe).
      for (std::size_t j = 0; j < survivors; ++j) {
        const std::size_t src = keep[j];
        live[j] = live[src];
        if (j != src) {
          std::copy(acc.data() + src * k, acc.data() + (src + 1) * k,
                    acc.data() + j * k);
          if (request.record_logits) history[j] = std::move(history[src]);
        }
      }
      live.resize(survivors);
      while (live.size() < batch_size_ && next < request.samples.size()) {
        keep.push_back(snn::Layer::kFreshRow);
        live.push_back({next++, 0});
      }
      hint_waiting();  // the admission point moved — extend the lookahead
      if (live.empty()) break;
      net_.compact_inference_state(keep);
      acc.resize(live.size() * k);
      std::fill(acc.begin() + static_cast<std::ptrdiff_t>(survivors * k), acc.end(), 0.0);
      if (request.record_logits) {
        for (std::size_t j = survivors; j < live.size(); ++j) history[j].clear();
      }
    }
  }
}

}  // namespace dtsnn::core
