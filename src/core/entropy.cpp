#include "core/entropy.h"

#include <cassert>
#include <cmath>

#include "util/math.h"

namespace dtsnn::core {

double normalized_entropy(std::span<const float> probs) {
  // A 0/1-class distribution has no uncertainty; log(k) below would be 0
  // (division by zero) and the assert guarding it compiles out under NDEBUG.
  if (probs.size() < 2) return 0.0;
  double h = 0.0;
  for (const float p : probs) {
    if (p > 0.0f) h -= static_cast<double>(p) * std::log(static_cast<double>(p));
  }
  return h / std::log(static_cast<double>(probs.size()));
}

double entropy_of_logits(std::span<const float> logits) {
  const std::vector<float> probs = util::softmax(logits);
  return normalized_entropy(probs);
}

std::vector<double> entropies_of_logit_rows(std::span<const float> logits, std::size_t k) {
  if (k < 2) return std::vector<double>(k ? logits.size() / k : 0, 0.0);
  assert(logits.size() % k == 0);
  const std::size_t n = logits.size() / k;
  std::vector<double> out(n);
  std::vector<float> probs(k);
  for (std::size_t i = 0; i < n; ++i) {
    util::softmax(logits.subspan(i * k, k), probs);
    out[i] = normalized_entropy(probs);
  }
  return out;
}

}  // namespace dtsnn::core
