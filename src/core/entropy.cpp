#include "core/entropy.h"

#include <cassert>
#include <cmath>

#include "util/math.h"

namespace dtsnn::core {

double normalized_entropy(std::span<const float> probs) {
  assert(probs.size() >= 2);
  double h = 0.0;
  for (const float p : probs) {
    if (p > 0.0f) h -= static_cast<double>(p) * std::log(static_cast<double>(p));
  }
  return h / std::log(static_cast<double>(probs.size()));
}

double entropy_of_logits(std::span<const float> logits) {
  const std::vector<float> probs = util::softmax(logits);
  return normalized_entropy(probs);
}

std::vector<double> entropies_of_logit_rows(std::span<const float> logits, std::size_t k) {
  assert(k >= 2 && logits.size() % k == 0);
  const std::size_t n = logits.size() / k;
  std::vector<double> out(n);
  std::vector<float> probs(k);
  for (std::size_t i = 0; i < n; ++i) {
    util::softmax(logits.subspan(i * k, k), probs);
    out[i] = normalized_entropy(probs);
  }
  return out;
}

}  // namespace dtsnn::core
