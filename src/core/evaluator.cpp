#include "core/evaluator.h"

#include <filesystem>
#include <stdexcept>

#include "snn/serialize.h"
#include "util/logging.h"

namespace dtsnn::core {

data::SyntheticBundle make_bundle(const std::string& preset, double size_scale) {
  if (preset == "syndvs") {
    return data::make_synthetic_dvs(data::dvs_preset(size_scale));
  }
  return data::make_synthetic_vision(data::synthetic_preset(preset, size_scale));
}

std::size_t preset_timesteps(const std::string& dataset_preset) {
  return dataset_preset == "syndvs" ? 10 : 4;
}

std::string ExperimentSpec::cache_key() const {
  // dp2: data-pipeline generation. Bump whenever the training data order
  // changes for a fixed spec (dp2 = pure-function reshuffle + ragged final
  // batch) so stale checkpoints trained under the old pipeline are retrained
  // instead of silently reused.
  return util::format("%s_%s_T%zu_e%zu_b%zu_%s_lr%g_wd%g_s%llu_sur%s_bn%g_ds%g_dp2",
                      model.c_str(), dataset.c_str(), timesteps, epochs, batch_size,
                      loss == LossKind::kPerTimestep ? "eq10" : "eq9",
                      static_cast<double>(sgd.lr), static_cast<double>(sgd.weight_decay),
                      static_cast<unsigned long long>(seed),
                      snn::to_string(surrogate).c_str(),
                      static_cast<double>(bn_vth_scale), data_scale);
}

namespace {

snn::SpikingNetwork build_net(const ExperimentSpec& spec, const data::Dataset& train) {
  snn::ModelConfig mc;
  mc.num_classes = train.num_classes();
  mc.input_shape = train.frame_shape();
  mc.seed = spec.seed;
  mc.lif.surrogate.kind = spec.surrogate;
  mc.bn_vth_scale = spec.bn_vth_scale;
  return snn::make_model(spec.model, mc);
}

std::unique_ptr<snn::Loss> build_loss(LossKind kind) {
  if (kind == LossKind::kPerTimestep) {
    return std::make_unique<snn::PerTimestepCrossEntropy>();
  }
  return std::make_unique<snn::MeanLogitCrossEntropy>();
}

}  // namespace

Experiment run_experiment(const ExperimentSpec& spec) {
  data::SyntheticBundle bundle = make_bundle(spec.dataset, spec.data_scale);
  snn::SpikingNetwork net = build_net(spec, *bundle.train);

  const auto loss = build_loss(spec.loss);
  data::ShuffledBatchSource source(*bundle.train, spec.batch_size, spec.seed ^ 0xbeef);
  snn::TrainOptions options;
  options.epochs = spec.epochs;
  options.timesteps = spec.timesteps;
  options.sgd = spec.sgd;

  DTSNN_LOG_INFO("training %s on %s (T=%zu, %zu epochs, loss=%s)", spec.model.c_str(),
                 spec.dataset.c_str(), spec.timesteps, spec.epochs, loss->name().c_str());
  snn::TrainStats stats = snn::train(net, *loss, source, options);
  DTSNN_LOG_INFO("  final train acc %.2f%%", 100.0 * stats.final_accuracy());

  return Experiment{spec, std::move(bundle), std::move(net), std::move(stats), false};
}

Experiment train_or_load(const ExperimentSpec& spec, const std::string& cache_dir) {
  if (cache_dir.empty()) return run_experiment(spec);

  std::filesystem::create_directories(cache_dir);
  const std::string path = cache_dir + "/" + spec.cache_key() + ".ckpt";
  if (std::filesystem::exists(path)) {
    data::SyntheticBundle bundle = make_bundle(spec.dataset, spec.data_scale);
    snn::SpikingNetwork net = build_net(spec, *bundle.train);
    snn::load_checkpoint(net, path);
    DTSNN_LOG_INFO("loaded cached checkpoint %s", path.c_str());
    return Experiment{spec, std::move(bundle), std::move(net), {}, true};
  }
  Experiment e = run_experiment(spec);
  snn::save_checkpoint(e.net, path);
  return e;
}

NetworkFactory replica_factory(const Experiment& e) {
  return [&e] { return build_net(e.spec, *e.bundle.train); };
}

DtsnnResult evaluate_recorded(const TimestepOutputs& outputs, const ExitPolicy& policy,
                              const data::Dataset& dataset) {
  PostHocEngine engine(outputs, policy);
  return evaluate_engine(engine, dataset);
}

TimestepOutputs test_outputs(Experiment& e, std::size_t timesteps, std::size_t limit,
                             std::size_t num_threads) {
  const std::size_t t = timesteps ? timesteps : e.spec.timesteps;
  return collect_outputs_parallel(e.net, replica_factory(e), *e.bundle.test, t,
                                  /*batch_size=*/256, limit, num_threads);
}

}  // namespace dtsnn::core
