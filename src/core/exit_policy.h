// Early-exit decision policies.
//
// The paper's DT-SNN uses entropy thresholding (Eq. 8). Confidence- and
// margin-based criteria are provided for the exit-criterion ablation bench
// (they are the standard alternatives in the early-exit ANN literature).

#pragma once

#include <memory>
#include <span>
#include <string>

namespace dtsnn::core {

class ExitPolicy {
 public:
  virtual ~ExitPolicy() = default;
  /// True if inference may stop given the current cumulative-mean logits.
  [[nodiscard]] virtual bool should_exit(std::span<const float> cum_logits) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Eq. (8): exit when normalized entropy < theta. theta <= 0 never exits
/// early; theta >= 1 exits at the first timestep (entropy < 1 except for the
/// exactly-uniform distribution).
class EntropyExitPolicy final : public ExitPolicy {
 public:
  explicit EntropyExitPolicy(double theta) : theta_(theta) {}
  [[nodiscard]] bool should_exit(std::span<const float> cum_logits) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double theta() const { return theta_; }

 private:
  double theta_;
};

/// Never exits before the timestep budget — runs the network for the full T,
/// turning any InferenceEngine into a static-SNN evaluator (Table III's
/// fixed-timestep rows and the throughput baselines use this).
class NeverExitPolicy final : public ExitPolicy {
 public:
  [[nodiscard]] bool should_exit(std::span<const float> cum_logits) const override;
  [[nodiscard]] std::string name() const override;
};

/// Exit when max softmax probability > p_min.
class MaxProbExitPolicy final : public ExitPolicy {
 public:
  explicit MaxProbExitPolicy(double p_min) : p_min_(p_min) {}
  [[nodiscard]] bool should_exit(std::span<const float> cum_logits) const override;
  [[nodiscard]] std::string name() const override;

 private:
  double p_min_;
};

/// Exit when (top1 - top2) softmax probability margin > margin.
class MarginExitPolicy final : public ExitPolicy {
 public:
  explicit MarginExitPolicy(double margin) : margin_(margin) {}
  [[nodiscard]] bool should_exit(std::span<const float> cum_logits) const override;
  [[nodiscard]] std::string name() const override;

 private:
  double margin_;
};

}  // namespace dtsnn::core
