// DT-SNN inference engines.
//
// Three execution modes with identical decisions, all behind the
// core::InferenceEngine interface (core/inference.h):
//
//  * PostHocEngine: run the network once for the maximum T over a dataset,
//    record the cumulative-mean logits f_t for every timestep, then replay
//    the exit rule (Eq. 8) for any policy/threshold without re-running the
//    network. This is how threshold sweeps and calibration are done cheaply.
//
//  * SequentialEngine: true early termination — the network is stepped one
//    timestep at a time (batch 1) and computation stops at the exit decision.
//    Kept as the reference oracle for the batched engine and as the model of
//    the on-chip control flow.
//
//  * BatchedSequentialEngine: true early termination at batch granularity —
//    a live pool is stepped together, the exit rule is evaluated per sample
//    each timestep, finished samples are compacted out and their slots
//    refilled with waiting samples (continuous batching, via
//    snn::Layer::compact_state) so compute follows the live batch.
//    Decision-identical to SequentialEngine; used for throughput
//    (Table III) and as the substrate for a serving layer.

#pragma once

#include <functional>

#include "core/exit_policy.h"
#include "core/inference.h"
#include "data/dataset.h"
#include "snn/network.h"
#include "util/stats.h"

namespace dtsnn::core {

/// Recorded per-timestep cumulative-mean logits over a dataset.
struct TimestepOutputs {
  std::size_t timesteps = 0;
  std::size_t samples = 0;
  std::size_t classes = 0;
  /// [T * N, K] time-major cumulative-mean logits f_t(x_i).
  snn::Tensor cum_logits;
  std::vector<int> labels;

  /// Logits of sample i after t+1 timesteps (t in [0, T)).
  [[nodiscard]] std::span<const float> at(std::size_t t, std::size_t i) const;
};

/// Run the network in eval mode over `dataset` (optionally only the first
/// `limit` samples), recording cumulative-mean logits; processes in batches.
/// Throws std::invalid_argument for batch_size == 0 or timesteps == 0.
TimestepOutputs collect_outputs(snn::SpikingNetwork& net, const data::Dataset& dataset,
                                std::size_t timesteps, std::size_t batch_size = 256,
                                std::size_t limit = 0);

/// Factory producing architecturally identical (untrained) replicas of the
/// network under evaluation; trained state is stamped in with
/// snn::copy_network_state. Must be safe to call from the calling thread.
using NetworkFactory = std::function<snn::SpikingNetwork()>;

/// OpenMP-parallel collect_outputs: dataset batches are distributed over
/// worker threads, each owning its own network replica, so recording scales
/// with cores. Batch boundaries match the serial path, so the recorded
/// logits are bitwise identical to collect_outputs. `num_threads` 0 means
/// use all available cores; without OpenMP (or with 1 thread) this runs the
/// serial path on `net` and never invokes the factory.
TimestepOutputs collect_outputs_parallel(snn::SpikingNetwork& net,
                                         const NetworkFactory& make_replica,
                                         const data::Dataset& dataset,
                                         std::size_t timesteps,
                                         std::size_t batch_size = 256,
                                         std::size_t limit = 0,
                                         std::size_t num_threads = 0);

/// Number of evaluation worker threads `num_threads = 0` resolves to
/// (1 without OpenMP).
std::size_t evaluation_threads();

/// Static-SNN evaluation: accuracy using exactly `t` timesteps (1-based).
double static_accuracy(const TimestepOutputs& outputs, std::size_t t);

/// Accuracy at every t = 1..T.
std::vector<double> accuracy_per_timestep(const TimestepOutputs& outputs);

/// Normalized entropy of every recorded (t, sample) cumulative logit row,
/// laid out like cum_logits ([T * N], time-major). Computed in parallel.
/// Replaying an entropy threshold against this table is O(1) per decision,
/// so theta sweeps touch the softmax only once.
std::vector<double> entropy_table(const TimestepOutputs& outputs);

/// Replay the Eq. 8 entropy rule at `theta` against a precomputed table
/// (semantically identical to PostHocEngine with EntropyExitPolicy(theta)).
/// This is the fast path behind theta_sweep / calibrate_theta.
DtsnnResult evaluate_dtsnn_with_table(const TimestepOutputs& outputs,
                                      std::span<const double> entropies, double theta);

/// Post-hoc replay engine: exit decisions are replayed against recorded
/// per-timestep outputs instead of stepping the network. Constructed either
/// from an existing recording (replay mode — request samples index the
/// recorded rows) or from a network + dataset recording budget (the
/// recording happens lazily per request).
class PostHocEngine final : public InferenceEngine {
 public:
  /// Replay mode over an existing recording (borrowed; must outlive this).
  PostHocEngine(const TimestepOutputs& outputs, const ExitPolicy& policy);

  /// Record-on-demand mode: requested samples are forwarded through `net`
  /// for the full budget, then replayed.
  PostHocEngine(snn::SpikingNetwork& net, const ExitPolicy& policy,
                std::size_t max_timesteps, std::size_t batch_size = 256);

  void run_streaming(const data::Dataset& dataset, const InferenceRequest& request,
                     const ResultSink& sink) override;
  [[nodiscard]] std::string name() const override { return "posthoc"; }
  [[nodiscard]] std::string gemm_backend() const override;
  [[nodiscard]] std::size_t max_timesteps() const override { return max_timesteps_; }
  [[nodiscard]] std::size_t sample_limit(const data::Dataset& dataset) const override;

 private:
  const TimestepOutputs* outputs_ = nullptr;  ///< replay mode
  snn::SpikingNetwork* net_ = nullptr;        ///< record-on-demand mode
  const ExitPolicy& policy_;
  std::size_t max_timesteps_;
  std::size_t batch_size_ = 256;
};

/// Sequential early-exit inference of one sample. Returns (prediction,
/// timesteps used). The network must be one the outputs were trained on;
/// frames are fetched from the dataset (direct encoding for static images).
struct SequentialPrediction {
  std::size_t predicted_class = 0;
  std::size_t timesteps_used = 0;
  double final_entropy = 0.0;
};

/// Batch-1 true early termination; the reference oracle the batched engine
/// is tested against.
class SequentialEngine final : public InferenceEngine {
 public:
  /// Throws std::invalid_argument when max_timesteps == 0.
  SequentialEngine(snn::SpikingNetwork& net, const ExitPolicy& policy,
                   std::size_t max_timesteps);

  /// Run one sample with true early termination.
  SequentialPrediction infer(const data::Dataset& dataset, std::size_t sample);

  /// Run one pre-encoded frame sequence [T, C, H, W].
  SequentialPrediction infer_frames(const snn::Tensor& frames);

  void run_streaming(const data::Dataset& dataset, const InferenceRequest& request,
                     const ResultSink& sink) override;
  [[nodiscard]] std::string name() const override { return "sequential"; }
  [[nodiscard]] std::string gemm_backend() const override;
  [[nodiscard]] std::size_t max_timesteps() const override { return max_timesteps_; }

 private:
  InferenceResult infer_one(const data::Dataset& dataset, std::size_t sample,
                            const ExitPolicy& policy, std::size_t budget,
                            bool record_logits);

  snn::SpikingNetwork& net_;
  const ExitPolicy& policy_;
  std::size_t max_timesteps_;
};

/// Batched true early termination with continuous batching: a live pool of
/// up to `batch_size` samples steps together (each at its own timestep —
/// LIF state is per-row, so mixed-timestep batches are exact), the exit
/// rule is evaluated per sample each step, finished samples are emitted to
/// the sink immediately, and their slots are compacted out and refilled
/// with waiting samples (snn::Layer::compact_state with kFreshRow) so every
/// step runs as full as the remaining work allows. Decisions, predictions
/// and entropies are bitwise identical to SequentialEngine.
class BatchedSequentialEngine final : public InferenceEngine {
 public:
  /// Throws std::invalid_argument when max_timesteps == 0 or batch_size == 0.
  BatchedSequentialEngine(snn::SpikingNetwork& net, const ExitPolicy& policy,
                          std::size_t max_timesteps, std::size_t batch_size = 32);

  void run_streaming(const data::Dataset& dataset, const InferenceRequest& request,
                     const ResultSink& sink) override;
  [[nodiscard]] std::string name() const override { return "batched-sequential"; }
  [[nodiscard]] std::string gemm_backend() const override;
  [[nodiscard]] std::size_t max_timesteps() const override { return max_timesteps_; }
  [[nodiscard]] std::size_t batch_size() const { return batch_size_; }

 private:
  snn::SpikingNetwork& net_;
  const ExitPolicy& policy_;
  std::size_t max_timesteps_;
  std::size_t batch_size_;
};

}  // namespace dtsnn::core
