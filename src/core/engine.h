// DT-SNN inference engines.
//
// Two execution modes with identical decisions:
//
//  * Post-hoc mode: run the network once for the maximum T over a dataset,
//    record the cumulative-mean logits f_t for every timestep, then replay
//    the exit rule (Eq. 8) for any policy/threshold without re-running the
//    network. This is how threshold sweeps and calibration are done cheaply.
//
//  * Sequential mode: true early termination — the network is stepped one
//    timestep at a time (batch 1) and computation stops at the exit decision.
//    Used for wall-clock throughput measurement (Table III) and as the model
//    of the on-chip control flow.

#pragma once

#include <functional>

#include "core/exit_policy.h"
#include "data/dataset.h"
#include "snn/network.h"
#include "util/stats.h"

namespace dtsnn::core {

/// Recorded per-timestep cumulative-mean logits over a dataset.
struct TimestepOutputs {
  std::size_t timesteps = 0;
  std::size_t samples = 0;
  std::size_t classes = 0;
  /// [T * N, K] time-major cumulative-mean logits f_t(x_i).
  snn::Tensor cum_logits;
  std::vector<int> labels;

  /// Logits of sample i after t+1 timesteps (t in [0, T)).
  [[nodiscard]] std::span<const float> at(std::size_t t, std::size_t i) const;
};

/// Run the network in eval mode over `dataset` (optionally only the first
/// `limit` samples), recording cumulative-mean logits; processes in batches.
TimestepOutputs collect_outputs(snn::SpikingNetwork& net, const data::Dataset& dataset,
                                std::size_t timesteps, std::size_t batch_size = 256,
                                std::size_t limit = 0);

/// Factory producing architecturally identical (untrained) replicas of the
/// network under evaluation; trained state is stamped in with
/// snn::copy_network_state. Must be safe to call from the calling thread.
using NetworkFactory = std::function<snn::SpikingNetwork()>;

/// OpenMP-parallel collect_outputs: dataset batches are distributed over
/// worker threads, each owning its own network replica, so recording scales
/// with cores. Batch boundaries match the serial path, so the recorded
/// logits are bitwise identical to collect_outputs. `num_threads` 0 means
/// use all available cores; without OpenMP (or with 1 thread) this runs the
/// serial path on `net` and never invokes the factory.
TimestepOutputs collect_outputs_parallel(snn::SpikingNetwork& net,
                                         const NetworkFactory& make_replica,
                                         const data::Dataset& dataset,
                                         std::size_t timesteps,
                                         std::size_t batch_size = 256,
                                         std::size_t limit = 0,
                                         std::size_t num_threads = 0);

/// Number of evaluation worker threads `num_threads = 0` resolves to
/// (1 without OpenMP).
std::size_t evaluation_threads();

/// Static-SNN evaluation: accuracy using exactly `t` timesteps (1-based).
double static_accuracy(const TimestepOutputs& outputs, std::size_t t);

/// Accuracy at every t = 1..T.
std::vector<double> accuracy_per_timestep(const TimestepOutputs& outputs);

struct DtsnnResult {
  double accuracy = 0.0;
  double avg_timesteps = 0.0;
  util::Histogram timestep_histogram{1};  ///< bin t-1 = count of samples exiting at t
  std::vector<std::size_t> exit_timestep; ///< per sample, 1-based
  std::vector<bool> correct;              ///< per sample
};

/// Replay the exit policy over recorded outputs (post-hoc mode). Samples are
/// replayed on OpenMP threads when available (the policy must be stateless,
/// which all shipped policies are).
DtsnnResult evaluate_dtsnn(const TimestepOutputs& outputs, const ExitPolicy& policy);

/// Normalized entropy of every recorded (t, sample) cumulative logit row,
/// laid out like cum_logits ([T * N], time-major). Computed in parallel.
/// Replaying an entropy threshold against this table is O(1) per decision,
/// so theta sweeps touch the softmax only once.
std::vector<double> entropy_table(const TimestepOutputs& outputs);

/// Replay the Eq. 8 entropy rule at `theta` against a precomputed table
/// (semantically identical to evaluate_dtsnn with EntropyExitPolicy(theta)).
DtsnnResult evaluate_dtsnn_with_table(const TimestepOutputs& outputs,
                                      std::span<const double> entropies, double theta);

/// Sequential early-exit inference of one sample. Returns (prediction,
/// timesteps used). The network must be one the outputs were trained on;
/// frames are fetched from the dataset (direct encoding for static images).
struct SequentialPrediction {
  std::size_t predicted_class = 0;
  std::size_t timesteps_used = 0;
  double final_entropy = 0.0;
};

class SequentialEngine {
 public:
  SequentialEngine(snn::SpikingNetwork& net, const ExitPolicy& policy,
                   std::size_t max_timesteps)
      : net_(net), policy_(policy), max_timesteps_(max_timesteps) {}

  /// Run one sample with true early termination.
  SequentialPrediction infer(const data::Dataset& dataset, std::size_t sample);

  /// Run one pre-encoded frame sequence [T, C, H, W].
  SequentialPrediction infer_frames(const snn::Tensor& frames);

 private:
  snn::SpikingNetwork& net_;
  const ExitPolicy& policy_;
  std::size_t max_timesteps_;
};

}  // namespace dtsnn::core
