// Threshold calibration and sweeps.
//
// The paper selects the entropy threshold theta so that DT-SNN matches the
// static full-T accuracy ("under a similar accuracy level", Table II). The
// calibrator replays recorded outputs (post-hoc engine) over a theta grid and
// returns the most aggressive threshold (largest theta => earliest exits)
// whose accuracy stays within `tolerance` of the target.

#pragma once

#include <vector>

#include "core/engine.h"

namespace dtsnn::core {

struct SweepPoint {
  double theta = 0.0;
  DtsnnResult result;
};

/// Evaluate the entropy exit rule at each theta (any order; results align).
std::vector<SweepPoint> theta_sweep(const TimestepOutputs& outputs,
                                    const std::vector<double>& thetas);

/// Default geometric + linear grid covering (0, 1).
std::vector<double> default_theta_grid();

struct CalibrationResult {
  double theta = 0.0;
  DtsnnResult result;
  double target_accuracy = 0.0;
  bool met_target = false;  ///< false => returned the most conservative grid point
};

/// Largest theta whose accuracy >= target_accuracy - tolerance.
CalibrationResult calibrate_theta(const TimestepOutputs& outputs, double target_accuracy,
                                  double tolerance = 0.0,
                                  const std::vector<double>& grid = default_theta_grid());

}  // namespace dtsnn::core
