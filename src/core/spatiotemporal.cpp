#include "core/spatiotemporal.h"

#include <cassert>
#include <stdexcept>

#include "core/entropy.h"
#include "snn/loss.h"
#include "util/math.h"

namespace dtsnn::core {

std::span<const float> MultiExitOutputs::at(std::size_t exit, std::size_t t,
                                            std::size_t i) const {
  assert(exit < exits && t < timesteps && i < samples);
  return {cum_logits[exit].data() + (t * samples + i) * classes, classes};
}

MultiExitOutputs collect_multi_exit_outputs(snn::MultiExitNetwork& net,
                                            const data::Dataset& dataset,
                                            std::size_t timesteps,
                                            std::size_t batch_size, std::size_t limit) {
  const std::size_t n = limit ? std::min(limit, dataset.size()) : dataset.size();
  const std::size_t k = net.num_classes();

  MultiExitOutputs out;
  out.exits = net.num_exits();
  out.timesteps = timesteps;
  out.samples = n;
  out.classes = k;
  out.cost_fractions = net.cost_fractions();
  out.labels.resize(n);
  out.cum_logits.reserve(out.exits);
  for (std::size_t e = 0; e < out.exits; ++e) {
    out.cum_logits.emplace_back(snn::Shape{timesteps * n, k});
  }

  // Stream the split chunk by chunk: one encoded batch is live at a time, so
  // multi-exit recording never materializes the whole dataset.
  data::BatchCursor cursor(dataset, n, timesteps, batch_size);
  while (cursor.next()) {
    const std::size_t start = cursor.start();
    const std::size_t b = cursor.chunk_size();
    const snn::EncodedBatch& batch = cursor.batch();
    auto logits = net.forward(batch.x, timesteps, /*train=*/false);
    for (std::size_t e = 0; e < out.exits; ++e) {
      snn::Tensor cum = snn::cumulative_mean_logits(logits[e], timesteps);
      for (std::size_t t = 0; t < timesteps; ++t) {
        for (std::size_t i = 0; i < b; ++i) {
          const float* src = cum.data() + (t * b + i) * k;
          float* dst = out.cum_logits[e].data() + (t * n + start + i) * k;
          std::copy(src, src + k, dst);
        }
      }
    }
    for (std::size_t i = 0; i < b; ++i) out.labels[start + i] = batch.labels[i];
  }
  return out;
}

SpatioTemporalResult evaluate_spatiotemporal(const MultiExitOutputs& outputs,
                                             const SpatioTemporalPolicy& policy) {
  if (outputs.exits == 0 || outputs.samples == 0) {
    throw std::invalid_argument("evaluate_spatiotemporal: empty outputs");
  }
  SpatioTemporalResult result;
  result.time_histogram = util::Histogram(outputs.timesteps);
  result.depth_histogram = util::Histogram(outputs.exits);

  const std::size_t deepest = outputs.exits - 1;
  std::size_t correct = 0;
  double total_cost = 0.0, total_time = 0.0, total_depth = 0.0;

  for (std::size_t i = 0; i < outputs.samples; ++i) {
    std::size_t chosen_t = outputs.timesteps - 1;
    std::size_t chosen_e = deepest;
    bool exited = false;
    for (std::size_t t = 0; t < outputs.timesteps && !exited; ++t) {
      const bool last_t = t + 1 == outputs.timesteps;
      if (!policy.use_time && !last_t) continue;  // static time: only t = T
      for (std::size_t e = 0; e < outputs.exits && !exited; ++e) {
        const bool is_deepest = e == deepest;
        if (!policy.use_depth && !is_deepest) continue;
        if (last_t && is_deepest) break;  // fallback handles the final point
        if (entropy_of_logits(outputs.at(e, t, i)) < policy.theta) {
          chosen_t = t;
          chosen_e = e;
          exited = true;
        }
      }
    }
    const auto logits = outputs.at(chosen_e, chosen_t, i);
    correct += util::argmax(logits) == static_cast<std::size_t>(outputs.labels[i]);
    // Cost: full timesteps before the exit one, plus the exited timestep's
    // depth fraction. The deepest head costs a full timestep (fraction 1).
    total_cost += static_cast<double>(chosen_t) + outputs.cost_fractions[chosen_e];
    total_time += static_cast<double>(chosen_t + 1);
    total_depth += static_cast<double>(chosen_e);
    result.time_histogram.add(chosen_t);
    result.depth_histogram.add(chosen_e);
  }
  const auto n = static_cast<double>(outputs.samples);
  result.accuracy = static_cast<double>(correct) / n;
  result.avg_cost = total_cost / n;
  result.avg_exit_time = total_time / n;
  result.avg_exit_depth = total_depth / n;
  return result;
}

}  // namespace dtsnn::core
