// Normalized prediction entropy (Eq. 6-7 of the paper).
//
// Given classifier logits f(x), the prediction distribution is
// pi = softmax(f(x)) and the confidence measure is
//     E = -(1/log K) * sum_i pi_i log pi_i            in [0, 1],
// where the 1/log K factor normalizes the maximum (uniform) entropy to 1.
// DT-SNN exits at the first timestep whose E drops below threshold theta.

#pragma once

#include <span>
#include <vector>

namespace dtsnn::core {

/// Entropy of a probability vector, normalized by log(K). Input must be a
/// valid distribution (non-negative, summing to ~1); zero entries contribute
/// zero (lim p->0 of p log p).
double normalized_entropy(std::span<const float> probs);

/// softmax followed by normalized_entropy.
double entropy_of_logits(std::span<const float> logits);

/// Per-row entropies of a [N, K] logit matrix (flat storage).
std::vector<double> entropies_of_logit_rows(std::span<const float> logits, std::size_t k);

}  // namespace dtsnn::core
