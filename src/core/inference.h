// Unified inference API.
//
// Every way of running DT-SNN inference — post-hoc replay of recorded
// outputs, true batch-1 early termination, and batched early termination
// with live-batch compaction — sits behind one interface:
//
//   InferenceRequest  what to run: dataset sample indices, an optional
//                     per-request exit-policy / timestep-budget override,
//                     and whether to keep per-timestep logits.
//   InferenceResult   one finished sample: prediction, exit timestep
//                     (1-based), the entropy at the exit decision, and the
//                     cumulative-mean logit trajectory on demand.
//   InferenceEngine   runs a request against a dataset, streaming results
//                     to a sink as samples finish (samples exit at
//                     different timesteps, so completion order is not
//                     request order); run() collects and re-orders.
//
// The three engines (core/engine.h) are decision-identical: for the same
// network, policy, and budget they produce the same predictions and exit
// timesteps on every sample. evaluate_engine() aggregates any engine's
// results into the DtsnnResult used by the benches and calibration.

#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/exit_policy.h"
#include "data/dataset.h"
#include "snn/tensor.h"
#include "util/stats.h"

namespace dtsnn::core {

/// One batch of inference work against a dataset.
struct InferenceRequest {
  /// Dataset sample indices to run. Empty means "every sample the engine
  /// can address" (the whole dataset, or every recorded row for a replay
  /// engine) — evaluate_engine and run() expand it.
  std::vector<std::size_t> samples;
  /// Per-request exit-policy override; nullptr uses the engine's policy.
  const ExitPolicy* policy = nullptr;
  /// Per-request timestep budget; 0 uses the engine's budget.
  std::size_t max_timesteps = 0;
  /// Keep the cumulative-mean logits of every executed timestep in
  /// InferenceResult::timestep_logits.
  bool record_logits = false;

  /// Request for dataset samples 0..n-1 (the common bench/test shape).
  static InferenceRequest first_n(std::size_t n);
};

/// Validate request sample indices against an engine's addressable sample
/// count *before* any network work happens: an out-of-range index throws
/// std::out_of_range, and — when `allow_duplicates` is false, as at serving
/// admission where a duplicate index is almost always a client bug — a
/// repeated index throws std::invalid_argument. Both messages name the
/// offending position and value, instead of failing deep inside
/// data::materialize_batch / dataset accessors. Engines call this at the top
/// of run_streaming; the serving layer calls it at submit(). Returns the
/// number of validated samples ([[nodiscard]]: downstream sizing — result
/// buffers, remaining-sample counters — must come from the validated count,
/// not from a separate re-read of the request).
[[nodiscard]] std::size_t validate_request_samples(
    std::span<const std::size_t> samples, std::size_t sample_limit,
    const std::string& who, bool allow_duplicates = true);

/// One finished sample.
struct InferenceResult {
  std::size_t request_index = 0;   ///< position within InferenceRequest::samples
  std::size_t sample = 0;          ///< dataset sample index
  std::size_t predicted_class = 0;
  std::size_t exit_timestep = 0;   ///< 1-based; == budget on a forced exit
  double final_entropy = 0.0;      ///< entropy of the cum logits at the exit
  /// [exit_timestep, K] cumulative-mean logits when requested, else empty.
  snn::Tensor timestep_logits;
};

/// Receives each result as its sample finishes. Called serially.
using ResultSink = std::function<void(const InferenceResult&)>;

/// The quantities every engine reports at an exit decision, built from the
/// cumulative-mean logits at the exiting timestep `t` (0-based): prediction
/// (argmax), exit entropy, 1-based exit timestep, and — when recording —
/// the [t+1, K] trajectory consumed from `history`. One definition shared
/// by the stepping engines and the serving layer, so the bitwise identity
/// contract between them is encoded once (request_index / sample are the
/// caller's). `history` is left empty either way.
InferenceResult make_exit_result(std::span<const float> cum, std::size_t t,
                                 bool record_logits, std::vector<float>& history);

class InferenceEngine {
 public:
  virtual ~InferenceEngine() = default;

  /// Run the request, emitting each sample's result as it finishes. Engines
  /// with batched early exit emit in (exit time, batch position) order, not
  /// request order.
  virtual void run_streaming(const data::Dataset& dataset, const InferenceRequest& request,
                             const ResultSink& sink) = 0;

  /// Convenience: run and return results ordered by request position.
  std::vector<InferenceResult> run(const data::Dataset& dataset,
                                   const InferenceRequest& request);

  [[nodiscard]] virtual std::string name() const = 0;

  /// Name of the GEMM backend this engine's network math runs through
  /// (util::GemmContext dispatch) — surfaced in bench reports so measured
  /// throughput is attributable. Engines that replay recordings instead of
  /// stepping a network report "none (replay)".
  [[nodiscard]] virtual std::string gemm_backend() const;

  /// Default timestep budget (a request's max_timesteps of 0 resolves here).
  [[nodiscard]] virtual std::size_t max_timesteps() const = 0;

  /// Largest addressable sample count; replay engines are bounded by their
  /// recording, live engines by the dataset. Used to expand empty
  /// InferenceRequest::samples.
  [[nodiscard]] virtual std::size_t sample_limit(const data::Dataset& dataset) const {
    return dataset.size();
  }
};

struct DtsnnResult {
  double accuracy = 0.0;
  double avg_timesteps = 0.0;
  util::Histogram timestep_histogram{1};  ///< bin t-1 = count of samples exiting at t
  std::vector<std::size_t> exit_timestep; ///< per sample, 1-based
  std::vector<bool> correct;              ///< per sample
};

/// Run `request` through `engine` and aggregate accuracy / average exit
/// timestep / exit histogram against the dataset labels. Per-sample vectors
/// are ordered by request position. An empty request runs every sample the
/// engine can address.
DtsnnResult evaluate_engine(InferenceEngine& engine, const data::Dataset& dataset,
                            const InferenceRequest& request = {});

}  // namespace dtsnn::core
