#include "core/engine.h"

#include <cassert>
#include <stdexcept>

#include "core/entropy.h"
#include "snn/loss.h"
#include "util/math.h"

namespace dtsnn::core {

std::span<const float> TimestepOutputs::at(std::size_t t, std::size_t i) const {
  assert(t < timesteps && i < samples);
  return {cum_logits.data() + (t * samples + i) * classes, classes};
}

TimestepOutputs collect_outputs(snn::SpikingNetwork& net, const data::Dataset& dataset,
                                std::size_t timesteps, std::size_t batch_size,
                                std::size_t limit) {
  const std::size_t n = limit ? std::min(limit, dataset.size()) : dataset.size();
  const std::size_t k = net.num_classes();
  TimestepOutputs out;
  out.timesteps = timesteps;
  out.samples = n;
  out.classes = k;
  out.cum_logits = snn::Tensor({timesteps * n, k});
  out.labels.resize(n);

  for (std::size_t start = 0; start < n; start += batch_size) {
    const std::size_t b = std::min(batch_size, n - start);
    std::vector<std::size_t> indices(b);
    for (std::size_t i = 0; i < b; ++i) indices[i] = start + i;
    snn::EncodedBatch batch = data::materialize_batch(dataset, indices, timesteps);

    snn::Tensor logits = net.forward(batch.x, timesteps, /*train=*/false);
    snn::Tensor cum = snn::cumulative_mean_logits(logits, timesteps);
    for (std::size_t t = 0; t < timesteps; ++t) {
      for (std::size_t i = 0; i < b; ++i) {
        const float* src = cum.data() + (t * b + i) * k;
        float* dst = out.cum_logits.data() + (t * n + start + i) * k;
        std::copy(src, src + k, dst);
      }
    }
    for (std::size_t i = 0; i < b; ++i) out.labels[start + i] = batch.labels[i];
  }
  return out;
}

double static_accuracy(const TimestepOutputs& outputs, std::size_t t) {
  if (t == 0 || t > outputs.timesteps) {
    throw std::invalid_argument("static_accuracy: t out of range");
  }
  std::size_t correct = 0;
  for (std::size_t i = 0; i < outputs.samples; ++i) {
    const auto logits = outputs.at(t - 1, i);
    if (util::argmax(logits) == static_cast<std::size_t>(outputs.labels[i])) ++correct;
  }
  return outputs.samples
             ? static_cast<double>(correct) / static_cast<double>(outputs.samples)
             : 0.0;
}

std::vector<double> accuracy_per_timestep(const TimestepOutputs& outputs) {
  std::vector<double> acc(outputs.timesteps);
  for (std::size_t t = 1; t <= outputs.timesteps; ++t) {
    acc[t - 1] = static_accuracy(outputs, t);
  }
  return acc;
}

DtsnnResult evaluate_dtsnn(const TimestepOutputs& outputs, const ExitPolicy& policy) {
  DtsnnResult result;
  result.timestep_histogram = util::Histogram(outputs.timesteps);
  result.exit_timestep.resize(outputs.samples);
  result.correct.resize(outputs.samples);

  std::size_t correct = 0;
  double total_t = 0.0;
  for (std::size_t i = 0; i < outputs.samples; ++i) {
    // Eq. (8): first t whose policy fires; fall back to T.
    std::size_t chosen = outputs.timesteps;
    for (std::size_t t = 0; t + 1 < outputs.timesteps; ++t) {
      if (policy.should_exit(outputs.at(t, i))) {
        chosen = t + 1;
        break;
      }
    }
    const auto logits = outputs.at(chosen - 1, i);
    const bool ok = util::argmax(logits) == static_cast<std::size_t>(outputs.labels[i]);
    result.exit_timestep[i] = chosen;
    result.correct[i] = ok;
    result.timestep_histogram.add(chosen - 1);
    correct += ok;
    total_t += static_cast<double>(chosen);
  }
  const double n = static_cast<double>(outputs.samples);
  result.accuracy = outputs.samples ? static_cast<double>(correct) / n : 0.0;
  result.avg_timesteps = outputs.samples ? total_t / n : 0.0;
  return result;
}

SequentialPrediction SequentialEngine::infer(const data::Dataset& dataset,
                                             std::size_t sample) {
  const snn::Shape fs = dataset.frame_shape();
  const std::size_t frame_numel = snn::shape_numel(fs);
  snn::Tensor frames({max_timesteps_, fs[0], fs[1], fs[2]});
  for (std::size_t t = 0; t < max_timesteps_; ++t) {
    dataset.write_frame(sample, t, {frames.data() + t * frame_numel, frame_numel});
  }
  return infer_frames(frames);
}

SequentialPrediction SequentialEngine::infer_frames(const snn::Tensor& frames) {
  if (frames.rank() != 4 || frames.dim(0) < 1) {
    throw std::invalid_argument("SequentialEngine: frames must be [T, C, H, W]");
  }
  const std::size_t timesteps = std::min<std::size_t>(frames.dim(0), max_timesteps_);
  const std::size_t k = net_.num_classes();
  const std::size_t frame_numel = frames.row_size();

  net_.begin_inference(/*batch=*/1);
  std::vector<double> acc(k, 0.0);
  std::vector<float> cum(k);
  SequentialPrediction pred;
  for (std::size_t t = 0; t < timesteps; ++t) {
    snn::Tensor frame({1, frames.dim(1), frames.dim(2), frames.dim(3)});
    std::copy(frames.data() + t * frame_numel, frames.data() + (t + 1) * frame_numel,
              frame.data());
    snn::Tensor y = net_.step(frame);
    assert(y.numel() == k);
    for (std::size_t c = 0; c < k; ++c) {
      acc[c] += y[c];
      cum[c] = static_cast<float>(acc[c] / static_cast<double>(t + 1));
    }
    pred.timesteps_used = t + 1;
    // Last timestep exits unconditionally (Eq. 8 fallback to T).
    if (t + 1 == timesteps || policy_.should_exit(cum)) break;
  }
  pred.predicted_class = util::argmax(cum);
  pred.final_entropy = entropy_of_logits(cum);
  return pred;
}

}  // namespace dtsnn::core
