#include "core/engine.h"

#include <cassert>
#include <memory>
#include <numeric>
#include <stdexcept>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "core/entropy.h"
#include "snn/loss.h"
#include "snn/serialize.h"
#include "util/math.h"

namespace dtsnn::core {

std::span<const float> TimestepOutputs::at(std::size_t t, std::size_t i) const {
  assert(t < timesteps && i < samples);
  return {cum_logits.data() + (t * samples + i) * classes, classes};
}

std::size_t evaluation_threads() {
#ifdef _OPENMP
  return static_cast<std::size_t>(std::max(1, omp_get_max_threads()));
#else
  return 1;
#endif
}

namespace {

/// Runs one encoded chunk through `net` and scatters cumulative-mean logits
/// and labels into `out` at row offset `start`. Writes only rows of this
/// chunk, so disjoint chunks can be processed concurrently on separate
/// networks.
void record_batch(snn::SpikingNetwork& net, const snn::EncodedBatch& batch,
                  TimestepOutputs& out, std::size_t start) {
  const std::size_t k = out.classes;
  const std::size_t n = out.samples;
  const std::size_t b = batch.labels.size();

  snn::Tensor logits = net.forward(batch.x, out.timesteps, /*train=*/false);
  snn::Tensor cum = snn::cumulative_mean_logits(logits, out.timesteps);
  for (std::size_t t = 0; t < out.timesteps; ++t) {
    for (std::size_t i = 0; i < b; ++i) {
      const float* src = cum.data() + (t * b + i) * k;
      float* dst = out.cum_logits.data() + (t * n + start + i) * k;
      std::copy(src, src + k, dst);
    }
  }
  for (std::size_t i = 0; i < b; ++i) out.labels[start + i] = batch.labels[i];
}

TimestepOutputs make_outputs(std::size_t timesteps, std::size_t n, std::size_t k) {
  TimestepOutputs out;
  out.timesteps = timesteps;
  out.samples = n;
  out.classes = k;
  out.cum_logits = snn::Tensor({timesteps * n, k});
  out.labels.resize(n);
  return out;
}

}  // namespace

TimestepOutputs collect_outputs(snn::SpikingNetwork& net, const data::Dataset& dataset,
                                std::size_t timesteps, std::size_t batch_size,
                                std::size_t limit) {
  if (batch_size == 0) throw std::invalid_argument("collect_outputs: batch_size == 0");
  if (timesteps == 0) throw std::invalid_argument("collect_outputs: timesteps == 0");
  const std::size_t n = limit ? std::min(limit, dataset.size()) : dataset.size();
  TimestepOutputs out = make_outputs(timesteps, n, net.num_classes());
  // Streaming iteration: only one chunk of encoded frames is live at a time,
  // so recording works against datasets larger than RAM.
  data::BatchCursor cursor(dataset, n, timesteps, batch_size);
  while (cursor.next()) record_batch(net, cursor.batch(), out, cursor.start());
  return out;
}

TimestepOutputs collect_outputs_parallel(snn::SpikingNetwork& net,
                                         const NetworkFactory& make_replica,
                                         const data::Dataset& dataset,
                                         std::size_t timesteps, std::size_t batch_size,
                                         std::size_t limit, std::size_t num_threads) {
  if (batch_size == 0) {
    throw std::invalid_argument("collect_outputs_parallel: batch_size == 0");
  }
  if (timesteps == 0) {
    throw std::invalid_argument("collect_outputs_parallel: timesteps == 0");
  }
  const std::size_t n = limit ? std::min(limit, dataset.size()) : dataset.size();
  const std::size_t num_batches = (n + batch_size - 1) / batch_size;
  std::size_t threads = num_threads ? num_threads : evaluation_threads();
  threads = std::min(threads, std::max<std::size_t>(num_batches, 1));
#ifndef _OPENMP
  threads = 1;
#endif
  if (threads <= 1) return collect_outputs(net, dataset, timesteps, batch_size, limit);

  TimestepOutputs out = make_outputs(timesteps, n, net.num_classes());

  // Worker replicas are stamped out serially (the factory and the source
  // network need not be thread-safe); thread 0 reuses the caller's network.
  std::vector<std::unique_ptr<snn::SpikingNetwork>> replicas;
  for (std::size_t i = 1; i < threads; ++i) {
    auto replica = std::make_unique<snn::SpikingNetwork>(make_replica());
    snn::copy_network_state(net, *replica);
    replicas.push_back(std::move(replica));
  }

#ifdef _OPENMP
#pragma omp parallel num_threads(static_cast<int>(threads))
  {
    const std::size_t tid = static_cast<std::size_t>(omp_get_thread_num());
    snn::SpikingNetwork& worker = tid == 0 ? net : *replicas[tid - 1];
#pragma omp for schedule(dynamic)
    for (std::size_t batch = 0; batch < num_batches; ++batch) {
      const std::size_t start = batch * batch_size;
      const std::size_t b = std::min(batch_size, n - start);
      std::vector<std::size_t> indices(b);
      std::iota(indices.begin(), indices.end(), start);
      record_batch(worker, data::materialize_batch(dataset, indices, timesteps), out,
                   start);
    }
  }
#endif
  return out;
}

double static_accuracy(const TimestepOutputs& outputs, std::size_t t) {
  if (t == 0 || t > outputs.timesteps) {
    throw std::invalid_argument("static_accuracy: t out of range");
  }
  std::size_t correct = 0;
  for (std::size_t i = 0; i < outputs.samples; ++i) {
    const auto logits = outputs.at(t - 1, i);
    if (util::argmax(logits) == static_cast<std::size_t>(outputs.labels[i])) ++correct;
  }
  return outputs.samples
             ? static_cast<double>(correct) / static_cast<double>(outputs.samples)
             : 0.0;
}

std::vector<double> accuracy_per_timestep(const TimestepOutputs& outputs) {
  std::vector<double> acc(outputs.timesteps);
  for (std::size_t t = 1; t <= outputs.timesteps; ++t) {
    acc[t - 1] = static_accuracy(outputs, t);
  }
  return acc;
}

namespace {

/// Shared tail of the post-hoc evaluators: per-sample exit decisions are
/// made by `choose_exit(i)` (called concurrently when OpenMP is available);
/// accuracy, histogram and averages are accumulated serially afterwards.
template <typename ChooseExit>
DtsnnResult replay_exits(const TimestepOutputs& outputs, ChooseExit&& choose_exit) {
  DtsnnResult result;
  result.timestep_histogram = util::Histogram(outputs.timesteps);
  result.exit_timestep.resize(outputs.samples);
  result.correct.resize(outputs.samples);

  // Per-sample scratch: exit_timestep rows are disjoint, but vector<bool> is
  // bit-packed, so correctness flags go through a byte buffer.
  std::vector<unsigned char> ok(outputs.samples, 0);
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (std::size_t i = 0; i < outputs.samples; ++i) {
    const std::size_t chosen = choose_exit(i);
    const auto logits = outputs.at(chosen - 1, i);
    result.exit_timestep[i] = chosen;
    ok[i] = util::argmax(logits) == static_cast<std::size_t>(outputs.labels[i]) ? 1 : 0;
  }

  std::size_t correct = 0;
  double total_t = 0.0;
  for (std::size_t i = 0; i < outputs.samples; ++i) {
    result.correct[i] = ok[i] != 0;
    result.timestep_histogram.add(result.exit_timestep[i] - 1);
    correct += ok[i];
    total_t += static_cast<double>(result.exit_timestep[i]);
  }
  const double n = static_cast<double>(outputs.samples);
  result.accuracy = outputs.samples ? static_cast<double>(correct) / n : 0.0;
  result.avg_timesteps = outputs.samples ? total_t / n : 0.0;
  return result;
}

}  // namespace

std::vector<double> entropy_table(const TimestepOutputs& outputs) {
  const std::size_t rows = outputs.timesteps * outputs.samples;
  std::vector<double> table(rows);
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (std::size_t r = 0; r < rows; ++r) {
    table[r] = entropy_of_logits(
        {outputs.cum_logits.data() + r * outputs.classes, outputs.classes});
  }
  return table;
}

DtsnnResult evaluate_dtsnn_with_table(const TimestepOutputs& outputs,
                                      std::span<const double> entropies, double theta) {
  if (entropies.size() != outputs.timesteps * outputs.samples) {
    throw std::invalid_argument("evaluate_dtsnn_with_table: entropy table size mismatch");
  }
  return replay_exits(outputs, [&](std::size_t i) {
    for (std::size_t t = 0; t + 1 < outputs.timesteps; ++t) {
      if (entropies[t * outputs.samples + i] < theta) return t + 1;
    }
    return outputs.timesteps;
  });
}

// ------------------------------------------------------------ backend names

std::string PostHocEngine::gemm_backend() const {
  return net_ != nullptr ? std::string(net_->gemm_context().backend().name())
                         : std::string("none (replay)");
}

std::string SequentialEngine::gemm_backend() const {
  return std::string(net_.gemm_context().backend().name());
}

std::string BatchedSequentialEngine::gemm_backend() const {
  return std::string(net_.gemm_context().backend().name());
}

// ---------------------------------------------------------- SequentialEngine

SequentialEngine::SequentialEngine(snn::SpikingNetwork& net, const ExitPolicy& policy,
                                   std::size_t max_timesteps)
    : net_(net), policy_(policy), max_timesteps_(max_timesteps) {
  if (max_timesteps_ == 0) {
    throw std::invalid_argument("SequentialEngine: max_timesteps == 0");
  }
}

SequentialPrediction SequentialEngine::infer(const data::Dataset& dataset,
                                             std::size_t sample) {
  const snn::Shape fs = dataset.frame_shape();
  const std::size_t frame_numel = snn::shape_numel(fs);
  snn::Tensor frames({max_timesteps_, fs[0], fs[1], fs[2]});
  for (std::size_t t = 0; t < max_timesteps_; ++t) {
    dataset.write_frame(sample, t, {frames.data() + t * frame_numel, frame_numel});
  }
  return infer_frames(frames);
}

SequentialPrediction SequentialEngine::infer_frames(const snn::Tensor& frames) {
  if (frames.rank() != 4 || frames.dim(0) < 1) {
    throw std::invalid_argument("SequentialEngine: frames must be [T, C, H, W]");
  }
  const std::size_t timesteps = std::min<std::size_t>(frames.dim(0), max_timesteps_);
  const std::size_t k = net_.num_classes();
  const std::size_t frame_numel = frames.row_size();

  net_.begin_inference(/*batch=*/1);
  std::vector<double> acc(k, 0.0);
  std::vector<float> cum(k);
  SequentialPrediction pred;
  for (std::size_t t = 0; t < timesteps; ++t) {
    snn::Tensor frame({1, frames.dim(1), frames.dim(2), frames.dim(3)});
    std::copy(frames.data() + t * frame_numel, frames.data() + (t + 1) * frame_numel,
              frame.data());
    snn::Tensor y = net_.step(frame);
    assert(y.numel() == k);
    snn::cumulative_mean_step(y.data(), acc.data(), cum.data(), k, t);
    // Last timestep exits unconditionally (Eq. 8 fallback to T); the forced
    // exit reports the same quantities an early exit would — prediction and
    // entropy of the cumulative-mean logits at *this* timestep.
    if (t + 1 == timesteps || policy_.should_exit(cum)) {
      pred.timesteps_used = t + 1;
      pred.predicted_class = util::argmax(cum);
      pred.final_entropy = entropy_of_logits(cum);
      break;
    }
  }
  return pred;
}

InferenceResult SequentialEngine::infer_one(const data::Dataset& dataset,
                                            std::size_t sample, const ExitPolicy& policy,
                                            std::size_t budget, bool record_logits) {
  const snn::Shape fs = dataset.frame_shape();
  const std::size_t frame_numel = snn::shape_numel(fs);
  const std::size_t k = net_.num_classes();

  net_.begin_inference(/*batch=*/1);
  std::vector<double> acc(k, 0.0);
  std::vector<float> cum(k);
  std::vector<float> history;
  InferenceResult result;
  result.sample = sample;
  // Frames are encoded lazily, one timestep at a time, so an early exit
  // skips the encoding of the remaining timesteps as well.
  snn::Tensor frame({1, fs[0], fs[1], fs[2]});
  for (std::size_t t = 0; t < budget; ++t) {
    dataset.write_frame(sample, t, {frame.data(), frame_numel});
    snn::Tensor y = net_.step(frame);
    snn::cumulative_mean_step(y.data(), acc.data(), cum.data(), k, t);
    if (record_logits) history.insert(history.end(), cum.begin(), cum.end());
    if (t + 1 == budget || policy.should_exit(cum)) {
      result = make_exit_result(cum, t, record_logits, history);
      result.sample = sample;
      break;
    }
  }
  return result;
}

void SequentialEngine::run_streaming(const data::Dataset& dataset,
                                     const InferenceRequest& request,
                                     const ResultSink& sink) {
  const ExitPolicy& policy = request.policy ? *request.policy : policy_;
  const std::size_t budget = request.max_timesteps ? request.max_timesteps : max_timesteps_;
  const std::size_t n =
      validate_request_samples(request.samples, dataset.size(), "SequentialEngine");
  for (std::size_t i = 0; i < n; ++i) {
    InferenceResult r =
        infer_one(dataset, request.samples[i], policy, budget, request.record_logits);
    r.request_index = i;
    sink(r);
  }
}

}  // namespace dtsnn::core
