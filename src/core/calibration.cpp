#include "core/calibration.h"

#include <algorithm>

namespace dtsnn::core {

std::vector<SweepPoint> theta_sweep(const TimestepOutputs& outputs,
                                    const std::vector<double>& thetas) {
  // Softmax+entropy of every (t, sample) row is computed once; each theta
  // then replays against the table in O(N*T) comparisons.
  const std::vector<double> entropies = entropy_table(outputs);
  std::vector<SweepPoint> points;
  points.reserve(thetas.size());
  for (const double theta : thetas) {
    points.push_back({theta, evaluate_dtsnn_with_table(outputs, entropies, theta)});
  }
  return points;
}

std::vector<double> default_theta_grid() {
  std::vector<double> grid;
  // Fine geometric coverage of the confident region plus a linear tail up to
  // (and including) 1.0.
  for (double t = 0.001; t < 0.1; t *= 1.35) grid.push_back(t);
  for (int i = 2; i <= 20; ++i) grid.push_back(static_cast<double>(i) * 0.05);
  std::sort(grid.begin(), grid.end());
  return grid;
}

CalibrationResult calibrate_theta(const TimestepOutputs& outputs, double target_accuracy,
                                  double tolerance, const std::vector<double>& grid) {
  std::vector<double> sorted = grid;
  std::sort(sorted.begin(), sorted.end());
  const std::vector<double> entropies = entropy_table(outputs);

  CalibrationResult best;
  best.target_accuracy = target_accuracy;
  bool found = false;
  for (const double theta : sorted) {
    DtsnnResult r = evaluate_dtsnn_with_table(outputs, entropies, theta);
    if (r.accuracy + 1e-12 >= target_accuracy - tolerance) {
      // Larger theta exits earlier; keep the largest admissible one.
      best.theta = theta;
      best.result = std::move(r);
      best.met_target = true;
      found = true;
    }
  }
  if (!found) {
    // Nothing met the target: fall back to the most conservative threshold.
    const double theta = sorted.front();
    best.theta = theta;
    best.result = evaluate_dtsnn_with_table(outputs, entropies, theta);
    best.met_target = false;
  }
  return best;
}

}  // namespace dtsnn::core
