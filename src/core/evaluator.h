// High-level experiment harness shared by tests, examples and benches.
//
// Bundles the full pipeline: build dataset preset -> build model preset ->
// train with the chosen loss -> record per-timestep outputs on the test set
// -> static/dynamic evaluation. A checkpoint cache keyed by the experiment
// configuration makes repeated bench invocations cheap.

#pragma once

#include <optional>
#include <string>

#include "core/calibration.h"
#include "core/engine.h"
#include "data/dvs.h"
#include "data/synthetic.h"
#include "snn/models.h"
#include "snn/trainer.h"

namespace dtsnn::core {

/// Dataset presets: "sync10", "sync100", "syntin" (static) and "syndvs"
/// (event stream, native T=10).
data::SyntheticBundle make_bundle(const std::string& preset, double size_scale = 1.0);

/// Paper timestep budget for a dataset preset (4 for static, 10 for DVS).
std::size_t preset_timesteps(const std::string& dataset_preset);

enum class LossKind { kMeanLogit /*Eq. 9*/, kPerTimestep /*Eq. 10*/ };

struct ExperimentSpec {
  std::string model = "vgg_mini";
  std::string dataset = "sync10";
  std::size_t timesteps = 4;
  std::size_t epochs = 12;
  std::size_t batch_size = 64;
  LossKind loss = LossKind::kPerTimestep;
  snn::SgdConfig sgd{};
  double data_scale = 1.0;  ///< scales dataset sample counts
  std::uint64_t seed = 1;
  snn::SurrogateKind surrogate = snn::SurrogateKind::kTriangle;
  float bn_vth_scale = 1.0f;

  /// Stable identifier used as the checkpoint cache key.
  [[nodiscard]] std::string cache_key() const;
};

struct Experiment {
  ExperimentSpec spec;
  data::SyntheticBundle bundle;
  snn::SpikingNetwork net;
  snn::TrainStats train_stats;
  bool loaded_from_cache = false;
};

/// Train from scratch (always).
Experiment run_experiment(const ExperimentSpec& spec);

/// Train unless a cached checkpoint for this spec exists in `cache_dir`
/// (empty disables caching). The dataset is rebuilt either way (generation
/// is deterministic and fast).
Experiment train_or_load(const ExperimentSpec& spec, const std::string& cache_dir);

/// Post-hoc dynamic evaluation of recorded outputs through the unified
/// inference API: replays `policy` with a PostHocEngine and aggregates with
/// evaluate_engine. Replaces the removed evaluate_dtsnn free function
/// (`dataset` supplies the labels, so it must be the dataset the outputs
/// were recorded from).
DtsnnResult evaluate_recorded(const TimestepOutputs& outputs, const ExitPolicy& policy,
                              const data::Dataset& dataset);

/// Convenience: record test-set outputs of an experiment's network. Dataset
/// batches run on OpenMP worker threads (each with its own network replica)
/// when available; `num_threads` 0 uses all cores, 1 forces the serial path.
TimestepOutputs test_outputs(Experiment& e, std::size_t timesteps = 0,
                             std::size_t limit = 0, std::size_t num_threads = 0);

/// Factory producing untrained, architecturally identical replicas of the
/// experiment's network (for collect_outputs_parallel worker threads). The
/// returned callable borrows `e`; it must not outlive the experiment.
NetworkFactory replica_factory(const Experiment& e);

}  // namespace dtsnn::core
