// Post-training quantization calibration and the shared tolerance gate.
//
// The quantized GEMM tier (util/gemm.h, int8_spike / int4_spike) trades the
// bitwise identity contract for a measured one: decisions may flip versus
// the float oracle, but the flip rate and accuracy delta must stay inside
// configured bounds per dataset preset. calibrate_quantized() is the
// one-stop entry: it quantizes the network's weights
// (snn::quantize_network_weights) and then streams a bounded sample of the
// dataset through the batched engine twice — once under scalar_ref, once
// under the quantized backend — comparing exit decisions sample by sample.
// The measurement pass rides the engine's BatchCursor-backed batching, so
// calibration never materializes the dataset.
//
// compare_decisions() is the shared gate helper: every quantized-tier test
// and bench goes through it (or an explicit EXPECT_NEAR bound) instead of
// comparing floats bitwise against the oracle — enforced by the
// quant-bitwise-oracle rule in scripts/check_invariants.py.

#pragma once

#include <cstddef>
#include <span>

#include "core/exit_policy.h"
#include "core/inference.h"
#include "data/dataset.h"
#include "snn/network.h"
#include "util/quant.h"

namespace dtsnn::core {

/// How a quantized run's decisions differ from the float oracle's, sample by
/// sample (same request order on both sides).
struct DecisionDiff {
  std::size_t samples = 0;
  std::size_t prediction_flips = 0;  ///< predicted_class differs
  std::size_t exit_flips = 0;        ///< exit_timestep differs
  double prediction_flip_rate = 0.0;
  double exit_flip_rate = 0.0;
};

/// The shared tolerance-gate helper: pair up oracle and candidate results by
/// request position and count decision flips. Throws std::invalid_argument
/// when the two runs cover different samples.
DecisionDiff compare_decisions(std::span<const InferenceResult> oracle,
                               std::span<const InferenceResult> candidate);

struct QuantCalibrationConfig {
  util::QuantSpec spec;
  /// Samples streamed through the measurement pass; 0 = the whole dataset.
  std::size_t max_samples = 256;
  /// Live-pool size of the batched measurement engine.
  std::size_t batch_size = 32;
  /// Gates evaluated into QuantCalibrationReport::within_tolerance.
  double flip_rate_tolerance = 0.01;
  double accuracy_delta_tolerance = 0.02;
};

struct QuantCalibrationReport {
  int bits = 0;
  std::size_t group_size = 0;
  std::size_t layers_quantized = 0;
  std::size_t samples = 0;
  DecisionDiff diff;
  double accuracy_float = 0.0;
  double accuracy_quant = 0.0;
  double accuracy_delta = 0.0;  ///< quant - float (signed)
  std::size_t float_weight_bytes = 0;
  std::size_t quant_weight_bytes = 0;  ///< packed integer codes
  std::size_t scale_bytes = 0;
  /// float_weight_bytes / quant_weight_bytes: the per-spike weight-traffic
  /// reduction (scales are touched once per group per output and reported
  /// separately).
  double footprint_ratio = 0.0;
  bool within_tolerance = false;
};

/// Quantize `net`'s weights under config.spec and measure the tolerance gate
/// versus the scalar_ref oracle. On return the network carries calibrated
/// quantized weights (they checkpoint via snn::serialize) and its GEMM
/// context is left untouched. Throws QuantizationError(kBadSpec) when the
/// network has no quantizable layers.
QuantCalibrationReport calibrate_quantized(snn::SpikingNetwork& net,
                                           const data::Dataset& dataset,
                                           const ExitPolicy& policy,
                                           std::size_t max_timesteps,
                                           const QuantCalibrationConfig& config);

}  // namespace dtsnn::core
