// Joint spatio-temporal early exit: DT-SNN's timestep dimension composed
// with layer-wise (BranchyNet-style) auxiliary exits.
//
// The scan order mirrors the hardware's natural schedule: within timestep t
// the activations flow depth-wise past each auxiliary head; inference stops
// at the first (depth, time) point whose cumulative-prediction entropy drops
// below theta. If no point fires, the deepest head at the final timestep
// decides. Cost is reported in full-timestep equivalents:
//     cost(exit i at timestep t) = (t - 1) + cost_fraction(i),
// where cost_fraction is the MAC share of the backbone up to head i.

#pragma once

#include "core/exit_policy.h"
#include "data/dataset.h"
#include "snn/multi_exit.h"
#include "util/stats.h"

namespace dtsnn::core {

struct MultiExitOutputs {
  std::size_t exits = 0;
  std::size_t timesteps = 0;
  std::size_t samples = 0;
  std::size_t classes = 0;
  /// Per exit: [T*N, K] cumulative-mean logits.
  std::vector<snn::Tensor> cum_logits;
  std::vector<int> labels;
  std::vector<double> cost_fractions;  ///< per exit, ascending to 1.0

  [[nodiscard]] std::span<const float> at(std::size_t exit, std::size_t t,
                                          std::size_t i) const;
};

/// Run the network over the dataset recording every head at every timestep.
MultiExitOutputs collect_multi_exit_outputs(snn::MultiExitNetwork& net,
                                            const data::Dataset& dataset,
                                            std::size_t timesteps,
                                            std::size_t batch_size = 256,
                                            std::size_t limit = 0);

struct SpatioTemporalPolicy {
  double theta = 0.2;
  bool use_time = true;   ///< allow exits at t < T (DT-SNN dimension)
  bool use_depth = true;  ///< allow exits at auxiliary heads (EE dimension)
};

struct SpatioTemporalResult {
  double accuracy = 0.0;
  /// Mean inference cost in full-timestep equivalents.
  double avg_cost = 0.0;
  double avg_exit_time = 0.0;   ///< 1-based mean exit timestep
  double avg_exit_depth = 0.0;  ///< 0-based mean exit head index
  util::Histogram time_histogram{1};
  util::Histogram depth_histogram{1};
};

SpatioTemporalResult evaluate_spatiotemporal(const MultiExitOutputs& outputs,
                                             const SpatioTemporalPolicy& policy);

}  // namespace dtsnn::core
