#include "core/exit_policy.h"

#include <algorithm>
#include <vector>

#include "core/entropy.h"
#include "util/logging.h"
#include "util/math.h"

namespace dtsnn::core {

bool EntropyExitPolicy::should_exit(std::span<const float> cum_logits) const {
  return entropy_of_logits(cum_logits) < theta_;
}

std::string EntropyExitPolicy::name() const {
  return util::format("entropy(theta=%.4f)", theta_);
}

bool NeverExitPolicy::should_exit(std::span<const float>) const { return false; }

std::string NeverExitPolicy::name() const { return "never"; }

bool MaxProbExitPolicy::should_exit(std::span<const float> cum_logits) const {
  const std::vector<float> probs = util::softmax(cum_logits);
  return *std::max_element(probs.begin(), probs.end()) > p_min_;
}

std::string MaxProbExitPolicy::name() const {
  return util::format("maxprob(p=%.4f)", p_min_);
}

bool MarginExitPolicy::should_exit(std::span<const float> cum_logits) const {
  std::vector<float> probs = util::softmax(cum_logits);
  if (probs.size() < 2) return true;
  std::nth_element(probs.begin(), probs.begin() + 1, probs.end(), std::greater<>());
  return static_cast<double>(probs[0] - probs[1]) > margin_;
}

std::string MarginExitPolicy::name() const {
  return util::format("margin(m=%.4f)", margin_);
}

}  // namespace dtsnn::core
