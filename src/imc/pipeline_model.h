// Sequential vs pipelined timestep processing (paper Section III-B.2).
//
// The paper's architecture processes timesteps *sequentially, without
// pipelining*: the next timestep only enters the first layer after the
// current one has fully drained and the sigma-E module has decided whether
// to exit. The alternative — streaming timesteps through the layer pipeline —
// improves static-SNN latency (the bottleneck stage, not the layer sum,
// paces throughput) but hurts DT-SNN twice:
//   * speculative work: by the time timestep t's exit decision is known,
//     later timesteps already occupy the pipeline and their (now useless)
//     energy is spent;
//   * drain overhead: the pipeline must be flushed on exit, adding latency.
// This model quantifies both regimes so the design choice can be reproduced
// as an ablation rather than taken on faith.

#pragma once

#include <span>

#include "imc/energy_model.h"

namespace dtsnn::imc {

struct PipelineAnalysis {
  // Static SNN at full T.
  double sequential_latency_ns = 0.0;
  double pipelined_latency_ns = 0.0;
  double sequential_energy_pj = 0.0;
  double pipelined_energy_pj = 0.0;  ///< equal work for static inference

  // DT-SNN averaged over a per-sample exit-timestep distribution.
  double dt_sequential_latency_ns = 0.0;
  double dt_pipelined_latency_ns = 0.0;
  double dt_sequential_energy_pj = 0.0;
  double dt_pipelined_energy_pj = 0.0;  ///< includes speculative waste

  [[nodiscard]] double dt_sequential_edp() const {
    return dt_sequential_energy_pj * dt_sequential_latency_ns;
  }
  [[nodiscard]] double dt_pipelined_edp() const {
    return dt_pipelined_energy_pj * dt_pipelined_latency_ns;
  }
};

/// Analyze both execution disciplines for a mapped network.
/// `max_timesteps` is the static budget T; `exit_timesteps` is the DT-SNN
/// per-sample exit distribution (from core::DtsnnResult).
PipelineAnalysis analyze_pipeline(const EnergyModel& model, std::size_t max_timesteps,
                                  std::span<const std::size_t> exit_timesteps);

}  // namespace dtsnn::imc
