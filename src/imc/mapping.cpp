#include "imc/mapping.h"

#include <stdexcept>

#include "util/math.h"

namespace dtsnn::imc {

std::size_t NetworkMapping::total_crossbars() const {
  std::size_t n = 0;
  for (const auto& l : layers) n += l.crossbars;
  return n;
}

std::size_t NetworkMapping::total_tiles() const {
  std::size_t n = 0;
  for (const auto& l : layers) n += l.tiles;
  return n;
}

double NetworkMapping::total_latency_ns() const {
  double t = 0.0;
  for (const auto& l : layers) t += l.latency_ns;
  return t;
}

NetworkMapping map_network(const NetworkSpec& spec, const ImcConfig& config) {
  if (!config.valid()) throw std::invalid_argument("map_network: invalid ImcConfig");

  NetworkMapping mapping;
  mapping.network = spec;
  mapping.config = config;
  mapping.layers.reserve(spec.layers.size());

  const std::size_t xb = config.crossbar_size;
  const std::size_t psum_bytes = (config.adc_bits + 7) / 8 + 1;  // post shift&add width

  for (const auto& layer : spec.layers) {
    LayerMapping m;
    m.spec = layer;
    m.device_columns = layer.out_channels * config.columns_per_weight();
    m.xbar_rows = util::ceil_div(layer.rows_needed(), xb);
    m.xbar_cols = util::ceil_div(m.device_columns, xb);
    m.crossbars = m.xbar_rows * m.xbar_cols;
    m.tiles = util::ceil_div(m.crossbars, config.crossbars_per_tile);

    const std::size_t vectors = layer.vectors_per_timestep();
    // Every crossbar holding part of the layer sees every input vector.
    m.mvm_reads = vectors * m.crossbars;
    // Rows actually driven = spike activity * mapped rows (last row-group may
    // be partially filled; use exact row count spread over groups).
    const double rows_total = static_cast<double>(layer.rows_needed()) *
                              static_cast<double>(m.xbar_cols);
    m.active_row_reads = layer.input_activity * rows_total * static_cast<double>(vectors);
    // One conversion per device column per vector (ADCs shared via mux —
    // affects latency, not conversion count).
    m.adc_conversions = vectors * m.device_columns * m.xbar_rows;
    // Shift&add merges slices and differential pairs into one digital value
    // per logical output per row-group.
    m.shift_add_ops = vectors * layer.out_channels * m.xbar_rows;
    // Accumulations across row-groups plus PE/tile/global hierarchy passes.
    m.accumulate_ops = vectors * layer.out_channels * (m.xbar_rows + 2);
    // Partial sums written+read once at PE and once at tile level.
    m.buffer_bytes = 2 * vectors * layer.out_channels * m.xbar_rows * psum_bytes;
    m.htree_bytes = vectors * layer.out_channels * m.xbar_rows * psum_bytes;
    // Output spikes cross the NoC to the next layer's tiles (1 bit/neuron),
    // plus MAC outputs travel to the LIF module at psum width.
    m.noc_bytes = layer.output_neurons() * psum_bytes / 2 + layer.output_neurons() / 8 + 1;
    m.lif_updates = layer.output_neurons();

    // Latency: vectors are processed sequentially on a layer's crossbars;
    // column mux serializes ADC conversions by the mux ratio.
    const double reads_serialized =
        static_cast<double>(vectors) * static_cast<double>(config.adc_mux_ratio);
    m.latency_ns = reads_serialized * config.t_xbar_read_ns + config.t_layer_overhead_ns;

    mapping.layers.push_back(m);
  }
  return mapping;
}

}  // namespace dtsnn::imc
