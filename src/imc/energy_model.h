// Chip-level energy / latency / EDP model.
//
// Converts the per-timestep event counts of a NetworkMapping into the five
// component energies of Fig. 1(A) plus a fixed per-inference term, and
// derives the quantities every hardware experiment needs:
//
//   energy(T)  = E_fixed + T * (E_step + E_sigmaE)        (affine, Fig. 1B)
//   latency(T) = T * L_step                               (linear, Fig. 1B)
//   EDP(T)     = energy(T) * latency(T)
//
// For DT-SNN the per-sample exit timestep T̂(x) varies; mean energy/EDP are
// averaged over the per-sample values (matching the paper's Table II note).

#pragma once

#include <span>

#include "imc/mapping.h"

namespace dtsnn::imc {

/// Per-timestep energy split by architectural component (picojoules).
struct ComponentEnergy {
  double crossbar_adc = 0.0;      ///< crossbar reads + ADC ("Crossbar+DIFF")
  double digital_peripherals = 0.0;///< switch matrix, mux, shift&add, accs, buffers
  double htree = 0.0;
  double noc = 0.0;
  double lif = 0.0;

  [[nodiscard]] double total() const {
    return crossbar_adc + digital_peripherals + htree + noc + lif;
  }
};

struct EnergyBreakdown {
  ComponentEnergy per_timestep;
  double fixed_per_inference_pj = 0.0;
  double sigma_e_per_timestep_pj = 0.0;
  double latency_per_timestep_ns = 0.0;
};

class EnergyModel {
 public:
  explicit EnergyModel(NetworkMapping mapping);

  [[nodiscard]] const NetworkMapping& mapping() const { return mapping_; }
  [[nodiscard]] const EnergyBreakdown& breakdown() const { return breakdown_; }

  /// Total inference energy (pJ) for (average) timestep count `timesteps`.
  /// `dynamic` adds the sigma-E module cost at every evaluated timestep.
  [[nodiscard]] double energy_pj(double timesteps, bool dynamic = false) const;
  [[nodiscard]] double latency_ns(double timesteps) const;
  [[nodiscard]] double edp(double timesteps, bool dynamic = false) const;

  /// Mean per-sample energy over a distribution of exit timesteps.
  [[nodiscard]] double mean_energy_pj(std::span<const std::size_t> exit_timesteps,
                                      bool dynamic = true) const;
  /// Mean per-sample EDP over a distribution of exit timesteps.
  [[nodiscard]] double mean_edp(std::span<const std::size_t> exit_timesteps,
                                bool dynamic = true) const;

  /// Component shares at a given T (fractions summing to 1; fixed energy is
  /// folded into digital peripherals — buffers own the off-chip staging).
  struct Share {
    double crossbar_adc, digital_peripherals, htree, noc, lif;
  };
  [[nodiscard]] Share component_shares(double timesteps) const;

 private:
  NetworkMapping mapping_;
  EnergyBreakdown breakdown_;
};

}  // namespace dtsnn::imc
