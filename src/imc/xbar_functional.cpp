#include "imc/xbar_functional.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "snn/conv.h"
#include "snn/linear.h"

namespace dtsnn::imc {

QuantizedTensor quantize_symmetric(std::span<const float> weights, std::size_t bits) {
  if (bits < 2 || bits > 16) throw std::invalid_argument("quantize_symmetric: bad bits");
  QuantizedTensor qt;
  qt.bits = bits;
  qt.q.resize(weights.size());
  float absmax = 0.0f;
  for (const float w : weights) absmax = std::max(absmax, std::abs(w));
  const int qmax = (1 << (bits - 1)) - 1;
  qt.scale = absmax > 0.0f ? absmax / static_cast<float>(qmax) : 1.0f;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const auto v = static_cast<int>(std::lround(weights[i] / qt.scale));
    qt.q[i] = std::clamp(v, -qmax, qmax);
  }
  return qt;
}

std::vector<float> dequantize(const QuantizedTensor& qt) {
  std::vector<float> out(qt.q.size());
  for (std::size_t i = 0; i < qt.q.size(); ++i) {
    out[i] = static_cast<float>(qt.q[i]) * qt.scale;
  }
  return out;
}

namespace {

/// Conductance of a cell programmed to `level` (0..levels-1).
double cell_conductance(std::size_t level, const ImcConfig& config) {
  const double step = (config.g_on() - config.g_off()) /
                      static_cast<double>(config.conductance_levels() - 1);
  return config.g_off() + static_cast<double>(level) * step;
}

double perturb(double g, const ImcConfig& config, util::Rng& rng) {
  return g * (1.0 + config.device_sigma_over_mu * rng.gaussian());
}

}  // namespace

float program_and_read_weight(int q, float scale, const ImcConfig& config,
                              util::Rng& rng) {
  const std::size_t slices = config.weight_slices();
  const std::size_t slice_levels = config.conductance_levels();
  const double g_step = (config.g_on() - config.g_off()) /
                        static_cast<double>(slice_levels - 1);

  const std::size_t magnitude = static_cast<std::size_t>(q < 0 ? -q : q);
  double readback = 0.0;
  for (std::size_t s = 0; s < slices; ++s) {
    // Slice s holds bits [s*device_bits, (s+1)*device_bits) of |q|.
    const std::size_t level =
        (magnitude >> (s * config.device_bits)) & (slice_levels - 1);
    const std::size_t pos_level = q >= 0 ? level : 0;
    const std::size_t neg_level = q >= 0 ? 0 : level;
    const double gp = perturb(cell_conductance(pos_level, config), config, rng);
    double gn = cell_conductance(neg_level, config);
    if (config.differential_columns) {
      gn = perturb(gn, config, rng);
    } else {
      gn = cell_conductance(0, config);  // single-ended: subtract ideal offset
    }
    // Differential read recovers (levels) * g_step, with G_off cancelling in
    // expectation but not per-instance once noise is applied.
    const double slice_value = (gp - gn) / g_step;
    readback += slice_value * static_cast<double>(std::size_t{1} << (s * config.device_bits));
  }
  return static_cast<float>(readback * static_cast<double>(scale));
}

std::size_t apply_device_variation(snn::SpikingNetwork& net, const ImcConfig& config,
                                   std::uint64_t seed) {
  util::Rng rng(seed);
  std::size_t perturbed = 0;
  for (snn::Param* p : net.params()) {
    // Only matrix weights live on crossbars; biases and norm parameters are
    // digital and unaffected.
    if (p->name.find("weight") == std::string::npos) continue;
    QuantizedTensor qt = quantize_symmetric(p->value.span(), config.weight_bits);
    for (std::size_t i = 0; i < qt.q.size(); ++i) {
      p->value[i] = program_and_read_weight(qt.q[i], qt.scale, config, rng);
    }
    perturbed += qt.q.size();
  }
  return perturbed;
}

FunctionalCrossbar::FunctionalCrossbar(const ImcConfig& config, std::size_t rows,
                                       std::size_t cols, std::uint64_t seed)
    : config_(config), rows_(rows), cols_(cols), rng_(seed) {
  if (rows_ == 0 || cols_ == 0 || rows_ > config_.crossbar_size ||
      cols_ * config_.columns_per_weight() > config_.crossbar_size) {
    throw std::invalid_argument("FunctionalCrossbar: does not fit the array");
  }
}

void FunctionalCrossbar::program(std::span<const float> weights) {
  if (weights.size() != rows_ * cols_) {
    throw std::invalid_argument("FunctionalCrossbar::program: size mismatch");
  }
  QuantizedTensor qt = quantize_symmetric(weights, config_.weight_bits);
  q_ = qt.q;
  scale_ = qt.scale;

  const std::size_t slices = config_.weight_slices();
  const std::size_t levels = config_.conductance_levels();
  conductance_.assign(rows_ * cols_ * slices * 2, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      const int q = q_[r * cols_ + c];
      const std::size_t magnitude = static_cast<std::size_t>(q < 0 ? -q : q);
      for (std::size_t s = 0; s < slices; ++s) {
        const std::size_t level = (magnitude >> (s * config_.device_bits)) & (levels - 1);
        const std::size_t pos_level = q >= 0 ? level : 0;
        const std::size_t neg_level = q >= 0 ? 0 : level;
        double* cell = conductance_.data() + ((r * cols_ + c) * slices + s) * 2;
        cell[0] = perturb(cell_conductance(pos_level, config_), config_, rng_);
        cell[1] = perturb(cell_conductance(neg_level, config_), config_, rng_);
      }
    }
  }
}

std::vector<float> FunctionalCrossbar::mvm_ideal(std::span<const float> spikes) const {
  assert(spikes.size() == rows_);
  std::vector<float> out(cols_, 0.0f);
  for (std::size_t r = 0; r < rows_; ++r) {
    if (spikes[r] == 0.0f) continue;
    for (std::size_t c = 0; c < cols_; ++c) {
      out[c] += static_cast<float>(q_[r * cols_ + c]) * scale_ * spikes[r];
    }
  }
  return out;
}

std::vector<float> FunctionalCrossbar::mvm_analog(std::span<const float> spikes) const {
  assert(spikes.size() == rows_);
  const std::size_t slices = config_.weight_slices();
  const double g_step = (config_.g_on() - config_.g_off()) /
                        static_cast<double>(config_.conductance_levels() - 1);

  // Column current accumulation (per slice, per polarity).
  std::vector<double> pos(cols_ * slices, 0.0), neg(cols_ * slices, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    if (spikes[r] == 0.0f) continue;  // no wordline activation
    for (std::size_t c = 0; c < cols_; ++c) {
      const double* cell = conductance_.data() + ((r * cols_ + c) * slices) * 2;
      for (std::size_t s = 0; s < slices; ++s) {
        pos[c * slices + s] += cell[s * 2 + 0];
        neg[c * slices + s] += cell[s * 2 + 1];
      }
    }
  }

  // ADC: quantize each column's current over the full-scale range
  // [rows * g_off, rows * g_on] with adc_bits resolution, then subtract the
  // digital zero offset and recombine slices via shift&add.
  const double fs_lo = 0.0;
  const double fs_hi = static_cast<double>(rows_) * config_.g_on();
  const double adc_levels = static_cast<double>((std::size_t{1} << config_.adc_bits) - 1);
  const double adc_step = (fs_hi - fs_lo) / adc_levels;
  auto adc = [&](double current) {
    const double clamped = std::clamp(current, fs_lo, fs_hi);
    return std::round((clamped - fs_lo) / adc_step);
  };

  std::vector<float> out(cols_, 0.0f);
  for (std::size_t c = 0; c < cols_; ++c) {
    double value = 0.0;
    for (std::size_t s = 0; s < slices; ++s) {
      const double digital = adc(pos[c * slices + s]) - adc(neg[c * slices + s]);
      // Convert ADC codes back to level units: one level = g_step / adc_step codes.
      const double level_units = digital * adc_step / g_step;
      value += level_units * static_cast<double>(std::size_t{1} << (s * config_.device_bits));
    }
    out[c] = static_cast<float>(value * static_cast<double>(scale_));
  }
  return out;
}

XbarMatrix::XbarMatrix(const ImcConfig& config, std::size_t rows, std::size_t cols,
                       std::span<const float> weights, std::uint64_t seed)
    : config_(config), rows_(rows), cols_(cols) {
  if (weights.size() != rows * cols) {
    throw std::invalid_argument("XbarMatrix: weight size mismatch");
  }
  rows_per_xbar_ = config_.crossbar_size;
  cols_per_xbar_ = config_.crossbar_size / config_.columns_per_weight();
  if (cols_per_xbar_ == 0) {
    throw std::invalid_argument("XbarMatrix: weight wider than a crossbar row");
  }
  row_groups_ = (rows_ + rows_per_xbar_ - 1) / rows_per_xbar_;
  col_groups_ = (cols_ + cols_per_xbar_ - 1) / cols_per_xbar_;

  util::Rng seeder(seed);
  grid_.reserve(row_groups_ * col_groups_);
  for (std::size_t rg = 0; rg < row_groups_; ++rg) {
    const std::size_t r0 = rg * rows_per_xbar_;
    const std::size_t r1 = std::min(r0 + rows_per_xbar_, rows_);
    for (std::size_t cg = 0; cg < col_groups_; ++cg) {
      const std::size_t c0 = cg * cols_per_xbar_;
      const std::size_t c1 = std::min(c0 + cols_per_xbar_, cols_);
      FunctionalCrossbar xbar(config_, r1 - r0, c1 - c0, seeder.next_u64());
      std::vector<float> slice((r1 - r0) * (c1 - c0));
      for (std::size_t r = r0; r < r1; ++r) {
        for (std::size_t c = c0; c < c1; ++c) {
          slice[(r - r0) * (c1 - c0) + (c - c0)] = weights[r * cols_ + c];
        }
      }
      xbar.program(slice);
      grid_.push_back(std::move(xbar));
    }
  }
}

namespace {

template <typename MvmFn>
std::vector<float> tiled_mvm(std::span<const float> spikes, std::size_t rows,
                             std::size_t cols, std::size_t rows_per_xbar,
                             std::size_t cols_per_xbar, std::size_t row_groups,
                             std::size_t col_groups,
                             const std::vector<FunctionalCrossbar>& grid, MvmFn mvm) {
  if (spikes.size() != rows) {
    throw std::invalid_argument("XbarMatrix::mvm: input size mismatch");
  }
  std::vector<float> out(cols, 0.0f);
  for (std::size_t rg = 0; rg < row_groups; ++rg) {
    const std::size_t r0 = rg * rows_per_xbar;
    const std::size_t r1 = std::min(r0 + rows_per_xbar, rows);
    const auto sub_input = spikes.subspan(r0, r1 - r0);
    for (std::size_t cg = 0; cg < col_groups; ++cg) {
      const std::size_t c0 = cg * cols_per_xbar;
      const auto& xbar = grid[rg * col_groups + cg];
      const std::vector<float> psum = mvm(xbar, sub_input);
      for (std::size_t c = 0; c < psum.size(); ++c) out[c0 + c] += psum[c];
    }
  }
  return out;
}

}  // namespace

std::vector<float> XbarMatrix::mvm_analog(std::span<const float> spikes) const {
  return tiled_mvm(spikes, rows_, cols_, rows_per_xbar_, cols_per_xbar_, row_groups_,
                   col_groups_, grid_,
                   [](const FunctionalCrossbar& xbar, std::span<const float> in) {
                     return xbar.mvm_analog(in);
                   });
}

std::vector<float> XbarMatrix::mvm_ideal(std::span<const float> spikes) const {
  return tiled_mvm(spikes, rows_, cols_, rows_per_xbar_, cols_per_xbar_, row_groups_,
                   col_groups_, grid_,
                   [](const FunctionalCrossbar& xbar, std::span<const float> in) {
                     return xbar.mvm_ideal(in);
                   });
}

}  // namespace dtsnn::imc
