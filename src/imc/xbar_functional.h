// Functional crossbar simulation: weight quantization, bit slicing onto
// multi-level RRAM cells, conductance variation, and ADC quantization.
//
// Two uses:
//  * FunctionalCrossbar — a bit-accurate model of one (tiled) analog MVM for
//    datapath unit tests (binary spike inputs, differential column pairs,
//    per-column ADC).
//  * apply_device_variation — projects a trained network's weights through
//    the quantize -> program -> perturb -> read-back pipeline, producing the
//    "non-ideal" network of Fig. 6(B) (the paper injects sigma/mu = 20%
//    conductance noise post-training).

#pragma once

#include <cstdint>
#include <vector>

#include "imc/config.h"
#include "snn/network.h"
#include "util/rng.h"

namespace dtsnn::imc {

/// Per-tensor symmetric quantization to `bits` signed levels.
struct QuantizedTensor {
  std::vector<int> q;  ///< in [-(2^(bits-1)-1), +(2^(bits-1)-1)]
  float scale = 1.0f;  ///< w ~= q * scale
  std::size_t bits = 8;
};

QuantizedTensor quantize_symmetric(std::span<const float> weights, std::size_t bits);

/// Reconstruct floats from a quantized tensor (no device effects).
std::vector<float> dequantize(const QuantizedTensor& qt);

/// Map one weight through cell programming with conductance noise and read
/// it back: each |q| is split into device_bits-wide slices, each slice level
/// is programmed on a differential conductance pair, each cell is perturbed
/// by N(0, sigma/mu), and the effective weight is re-composed.
float program_and_read_weight(int q, float scale, const ImcConfig& config,
                              util::Rng& rng);

/// Apply the full pipeline to every conv/linear weight of a network in
/// place. Deterministic given `seed`. Returns the number of perturbed
/// weights.
std::size_t apply_device_variation(snn::SpikingNetwork& net, const ImcConfig& config,
                                   std::uint64_t seed);

/// Bit-accurate single-crossbar MVM model.
class FunctionalCrossbar {
 public:
  /// rows/cols are logical (cols = logical output columns; each consumes
  /// columns_per_weight() device columns). Throws if it exceeds the array.
  FunctionalCrossbar(const ImcConfig& config, std::size_t rows, std::size_t cols,
                     std::uint64_t seed);

  /// Program a row-major [rows, cols] weight matrix (floats quantized
  /// internally; per-crossbar scale).
  void program(std::span<const float> weights);

  /// Ideal digital reference: q-weight dot product * scale.
  [[nodiscard]] std::vector<float> mvm_ideal(std::span<const float> spikes) const;

  /// Analog path: conductance sums with variation, per-column ADC
  /// quantization, shift&add recombination of slices and differential pairs.
  [[nodiscard]] std::vector<float> mvm_analog(std::span<const float> spikes) const;

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] float scale() const { return scale_; }

 private:
  ImcConfig config_;
  std::size_t rows_, cols_;
  util::Rng rng_;
  float scale_ = 1.0f;
  std::vector<int> q_;  ///< [rows, cols] quantized weights
  /// Programmed cell conductances [rows, cols, slices, 2(pos/neg)].
  std::vector<double> conductance_;
};

/// Tiled full-datapath matrix-vector engine: a weight matrix of arbitrary
/// size is split across a grid of FunctionalCrossbars (row groups x column
/// groups, exactly as the mapper places layers), each slice runs the analog
/// MVM with device variation and ADC quantization, and the digital partial
/// sums accumulate across row groups — the same hierarchy the PE/tile
/// accumulators implement on chip.
class XbarMatrix {
 public:
  /// rows x cols logical weight matrix (row-major), programmed immediately.
  XbarMatrix(const ImcConfig& config, std::size_t rows, std::size_t cols,
             std::span<const float> weights, std::uint64_t seed);

  /// Full-datapath MVM of a binary spike vector (size = rows).
  [[nodiscard]] std::vector<float> mvm_analog(std::span<const float> spikes) const;
  /// Quantized-digital reference (no device/ADC effects).
  [[nodiscard]] std::vector<float> mvm_ideal(std::span<const float> spikes) const;

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t crossbars() const { return grid_.size(); }

 private:
  ImcConfig config_;
  std::size_t rows_, cols_;
  std::size_t rows_per_xbar_, cols_per_xbar_;
  std::size_t row_groups_, col_groups_;
  std::vector<FunctionalCrossbar> grid_;  ///< row-major [row_groups, col_groups]
};

}  // namespace dtsnn::imc
