#include "imc/area_model.h"

namespace dtsnn::imc {

AreaBreakdown estimate_area(const NetworkMapping& mapping, const AreaConfig& area) {
  const ImcConfig& cfg = mapping.config;
  AreaBreakdown out;

  const double um2_to_mm2 = 1e-6;
  const auto crossbars = static_cast<double>(mapping.total_crossbars());
  const auto tiles = static_cast<double>(mapping.total_tiles());
  const double cells_per_xbar =
      static_cast<double>(cfg.crossbar_size) * static_cast<double>(cfg.crossbar_size);

  out.crossbars_mm2 = crossbars * cells_per_xbar * area.cell_um2 * um2_to_mm2;
  // ADCs shared across columns by the mux ratio.
  const double adcs_per_xbar =
      static_cast<double>(cfg.crossbar_size) / static_cast<double>(cfg.adc_mux_ratio);
  out.adcs_mm2 = crossbars * adcs_per_xbar * area.adc_um2 * um2_to_mm2;
  // Per-crossbar digital periphery + per-tile accumulator hierarchy
  // (PE accumulators + tile accumulator + share of the global accumulator).
  const double accumulators =
      tiles * (static_cast<double>(cfg.pes_per_tile) + 2.0);
  out.digital_periphery_mm2 =
      (crossbars * (area.switch_matrix_um2 + area.mux_um2 + area.shift_add_um2) +
       accumulators * area.accumulator_um2) *
      um2_to_mm2;
  // Buffers: per-tile tile buffer, per-PE PE buffer, one global buffer.
  const double buffer_kb =
      tiles * (static_cast<double>(cfg.tile_buffer_kb) +
               static_cast<double>(cfg.pes_per_tile) *
                   static_cast<double>(cfg.pe_buffer_kb)) +
      static_cast<double>(cfg.global_buffer_kb);
  out.buffers_mm2 = buffer_kb * area.sram_um2_per_kb * um2_to_mm2;
  out.interconnect_mm2 = tiles * (area.htree_um2 + area.noc_router_um2) * um2_to_mm2;
  out.lif_mm2 = tiles * area.lif_module_um2 * um2_to_mm2;
  out.sigma_e_mm2 = area.sigma_e_um2 * um2_to_mm2;
  return out;
}

}  // namespace dtsnn::imc
