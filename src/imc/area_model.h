// Chip area model (NeuroSim-style macro estimates at 32nm).
//
// Complements the energy model: converts a NetworkMapping into silicon area
// per architectural component. Used by the hardware-sweep ablation to show
// the area side of the crossbar-size / ADC-sharing trade-offs, and by the
// sigma-E analysis to bound the DT-SNN control overhead (<0.1% of the chip).

#pragma once

#include "imc/mapping.h"

namespace dtsnn::imc {

/// Per-component area atoms in square micrometers (32nm-class defaults).
struct AreaConfig {
  /// One RRAM cell (4F^2 at F = 32nm, with access transistor overhead).
  double cell_um2 = 0.018;
  /// One SAR ADC instance.
  double adc_um2 = 1500.0;
  /// Switch matrix + drivers per crossbar.
  double switch_matrix_um2 = 480.0;
  /// Column mux per crossbar.
  double mux_um2 = 120.0;
  /// Shift & add per crossbar.
  double shift_add_um2 = 250.0;
  /// Accumulator block per PE / tile / global instance.
  double accumulator_um2 = 900.0;
  /// SRAM buffer per KB.
  double sram_um2_per_kb = 2200.0;
  /// LIF neuron module per tile.
  double lif_module_um2 = 3200.0;
  /// H-tree wiring per tile.
  double htree_um2 = 2600.0;
  /// NoC router per tile.
  double noc_router_um2 = 6200.0;
  /// sigma-E module: two 3KB LUTs + FIFOs + MAC (one instance per chip).
  double sigma_e_um2 = 16000.0;
};

struct AreaBreakdown {
  double crossbars_mm2 = 0.0;
  double adcs_mm2 = 0.0;
  double digital_periphery_mm2 = 0.0;  ///< switch/mux/shift-add/accumulators
  double buffers_mm2 = 0.0;
  double interconnect_mm2 = 0.0;       ///< H-tree + NoC routers
  double lif_mm2 = 0.0;
  double sigma_e_mm2 = 0.0;

  [[nodiscard]] double total_mm2() const {
    return crossbars_mm2 + adcs_mm2 + digital_periphery_mm2 + buffers_mm2 +
           interconnect_mm2 + lif_mm2 + sigma_e_mm2;
  }
  /// sigma-E share of the chip (paper claims negligible).
  [[nodiscard]] double sigma_e_fraction() const {
    const double t = total_mm2();
    return t > 0.0 ? sigma_e_mm2 / t : 0.0;
  }
};

/// Estimate the chip area for a mapped network.
AreaBreakdown estimate_area(const NetworkMapping& mapping, const AreaConfig& area = {});

}  // namespace dtsnn::imc
