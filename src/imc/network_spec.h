// Layer-geometry descriptions of networks for the IMC mapper.
//
// The energy/latency model needs only layer shapes and activity factors, not
// trained weights, so full-scale VGG-16 and ResNet-19 (the paper's hardware
// evaluation networks) are described here even though training at that scale
// is out of CPU reach. Specs can also be extracted from a live
// SpikingNetwork so the mini models used in accuracy experiments get
// consistent hardware numbers.

#pragma once

#include <string>
#include <vector>

#include "snn/network.h"

namespace dtsnn::imc {

/// One weight layer (convolution or fully connected) as seen by the mapper.
struct LayerSpec {
  std::string label;
  std::size_t in_channels = 0;
  std::size_t out_channels = 0;
  std::size_t kernel = 1;       ///< 1 for fully connected
  std::size_t out_h = 1;        ///< spatial positions evaluated per timestep
  std::size_t out_w = 1;
  bool fully_connected = false;
  /// Mean input spike density for this layer (fraction of active rows).
  double input_activity = 0.15;

  [[nodiscard]] std::size_t rows_needed() const { return in_channels * kernel * kernel; }
  [[nodiscard]] std::size_t vectors_per_timestep() const { return out_h * out_w; }
  [[nodiscard]] std::size_t output_neurons() const { return out_channels * out_h * out_w; }
  [[nodiscard]] std::size_t macs_per_timestep() const {
    return rows_needed() * output_neurons();
  }
};

struct NetworkSpec {
  std::string name;
  std::size_t input_channels = 3;
  std::size_t input_h = 32;
  std::size_t input_w = 32;
  std::size_t num_classes = 10;
  std::vector<LayerSpec> layers;

  [[nodiscard]] std::size_t total_macs_per_timestep() const;
  [[nodiscard]] std::size_t total_output_neurons() const;
  /// Bytes of one input frame at 8-bit pixels (off-chip fetch size).
  [[nodiscard]] std::size_t input_bytes() const {
    return input_channels * input_h * input_w;
  }
};

/// VGG-16 for 32x32 inputs (13 convs + 3 FC), the paper's Fig. 1 network.
NetworkSpec vgg16_spec(std::size_t num_classes = 10);

/// ResNet-19 (tdBN variant: stem 128 + stages 3x128 / 3x256 / 2x512 + FC).
NetworkSpec resnet19_spec(std::size_t num_classes = 10);

/// Extract the spec of a live network (convs and linears, in order) given
/// its per-frame input shape. `activities` optionally overrides per-layer
/// input spike densities (size must match the number of weight layers).
NetworkSpec spec_from_network(snn::SpikingNetwork& net, const std::string& name,
                              const std::vector<double>& activities = {});

/// Set every layer's input_activity (first layer often differs: analog input).
void set_uniform_activity(NetworkSpec& spec, double activity,
                          double first_layer_activity = 1.0);

}  // namespace dtsnn::imc
