#include "imc/network_spec.h"

#include <stdexcept>

#include "snn/conv.h"
#include "snn/linear.h"
#include "snn/pool.h"
#include "util/logging.h"

namespace dtsnn::imc {

std::size_t NetworkSpec::total_macs_per_timestep() const {
  std::size_t macs = 0;
  for (const auto& l : layers) macs += l.macs_per_timestep();
  return macs;
}

std::size_t NetworkSpec::total_output_neurons() const {
  std::size_t n = 0;
  for (const auto& l : layers) n += l.output_neurons();
  return n;
}

namespace {

LayerSpec conv_spec(const std::string& label, std::size_t cin, std::size_t cout,
                    std::size_t out_hw) {
  LayerSpec l;
  l.label = label;
  l.in_channels = cin;
  l.out_channels = cout;
  l.kernel = 3;
  l.out_h = out_hw;
  l.out_w = out_hw;
  return l;
}

LayerSpec fc_spec(const std::string& label, std::size_t in_f, std::size_t out_f) {
  LayerSpec l;
  l.label = label;
  l.in_channels = in_f;
  l.out_channels = out_f;
  l.kernel = 1;
  l.fully_connected = true;
  return l;
}

}  // namespace

NetworkSpec vgg16_spec(std::size_t num_classes) {
  NetworkSpec spec;
  spec.name = "VGG-16";
  spec.num_classes = num_classes;
  // 32x32 input; pooling after blocks 2, 4, 7, 10, 13.
  const struct {
    std::size_t cin, cout, hw;
  } convs[] = {
      {3, 64, 32},   {64, 64, 32},                       // block 1
      {64, 128, 16}, {128, 128, 16},                     // block 2
      {128, 256, 8}, {256, 256, 8},  {256, 256, 8},      // block 3
      {256, 512, 4}, {512, 512, 4},  {512, 512, 4},      // block 4
      {512, 512, 2}, {512, 512, 2},  {512, 512, 2},      // block 5
  };
  std::size_t idx = 1;
  for (const auto& c : convs) {
    spec.layers.push_back(
        conv_spec(util::format("conv%zu", idx++), c.cin, c.cout, c.hw));
  }
  // Classifier: 512 (1x1 after final pool) -> 512 -> 512 -> classes.
  spec.layers.push_back(fc_spec("fc1", 512, 512));
  spec.layers.push_back(fc_spec("fc2", 512, 512));
  spec.layers.push_back(fc_spec("fc3", 512, num_classes));
  set_uniform_activity(spec, 0.15);
  return spec;
}

NetworkSpec resnet19_spec(std::size_t num_classes) {
  NetworkSpec spec;
  spec.name = "ResNet-19";
  spec.num_classes = num_classes;
  spec.layers.push_back(conv_spec("stem", 3, 128, 32));
  // Stage 1: 3 blocks @128, 32x32.
  for (std::size_t b = 0; b < 3; ++b) {
    spec.layers.push_back(conv_spec(util::format("s1b%zu.conv1", b), 128, 128, 32));
    spec.layers.push_back(conv_spec(util::format("s1b%zu.conv2", b), 128, 128, 32));
  }
  // Stage 2: 3 blocks @256, stride 2 -> 16x16 (projection on the first).
  spec.layers.push_back(conv_spec("s2b0.conv1", 128, 256, 16));
  spec.layers.push_back(conv_spec("s2b0.conv2", 256, 256, 16));
  {
    LayerSpec proj = conv_spec("s2b0.proj", 128, 256, 16);
    proj.kernel = 1;
    spec.layers.push_back(proj);
  }
  for (std::size_t b = 1; b < 3; ++b) {
    spec.layers.push_back(conv_spec(util::format("s2b%zu.conv1", b), 256, 256, 16));
    spec.layers.push_back(conv_spec(util::format("s2b%zu.conv2", b), 256, 256, 16));
  }
  // Stage 3: 2 blocks @512, stride 2 -> 8x8.
  spec.layers.push_back(conv_spec("s3b0.conv1", 256, 512, 8));
  spec.layers.push_back(conv_spec("s3b0.conv2", 512, 512, 8));
  {
    LayerSpec proj = conv_spec("s3b0.proj", 256, 512, 8);
    proj.kernel = 1;
    spec.layers.push_back(proj);
  }
  spec.layers.push_back(conv_spec("s3b1.conv1", 512, 512, 8));
  spec.layers.push_back(conv_spec("s3b1.conv2", 512, 512, 8));
  spec.layers.push_back(fc_spec("fc", 512, num_classes));
  set_uniform_activity(spec, 0.15);
  return spec;
}

NetworkSpec spec_from_network(snn::SpikingNetwork& net, const std::string& name,
                              const std::vector<double>& activities) {
  NetworkSpec spec;
  spec.name = name;
  const snn::Shape in = net.sample_shape();
  spec.input_channels = in[0];
  spec.input_h = in[1];
  spec.input_w = in[2];
  spec.num_classes = net.num_classes();

  snn::Shape sample = in;
  std::size_t idx = 0;
  net.visit([&spec, &sample, &idx](snn::Layer& l) {
    if (auto* conv = dynamic_cast<snn::Conv2d*>(&l)) {
      // Residual shortcut projections see the block input, not `sample`;
      // for mapping purposes the dominant path dimensions are sufficient —
      // projections are 1x1 and small. We track the main chain.
      snn::Shape out;
      try {
        out = conv->infer_shape(sample);
      } catch (const std::exception&) {
        return;  // shortcut conv whose input differs from the running shape
      }
      LayerSpec spec_l;
      spec_l.label = util::format("conv%zu", idx++);
      spec_l.in_channels = conv->in_channels();
      spec_l.out_channels = conv->out_channels();
      spec_l.kernel = conv->kernel();
      spec_l.out_h = out[1];
      spec_l.out_w = out[2];
      spec.layers.push_back(spec_l);
      sample = out;
    } else if (auto* pool = dynamic_cast<snn::AvgPool2d*>(&l)) {
      sample = pool->infer_shape(sample);
    } else if (auto* mpool = dynamic_cast<snn::MaxPool2d*>(&l)) {
      sample = mpool->infer_shape(sample);
    } else if (auto* lin = dynamic_cast<snn::Linear*>(&l)) {
      spec.layers.push_back(
          fc_spec(util::format("fc%zu", idx++), lin->in_features(), lin->out_features()));
      sample = {lin->out_features()};
    }
  });

  set_uniform_activity(spec, 0.15);
  if (!activities.empty()) {
    if (activities.size() != spec.layers.size()) {
      throw std::invalid_argument("spec_from_network: activity count mismatch (" +
                                  std::to_string(activities.size()) + " vs " +
                                  std::to_string(spec.layers.size()) + " layers)");
    }
    for (std::size_t i = 0; i < activities.size(); ++i) {
      spec.layers[i].input_activity = activities[i];
    }
  }
  return spec;
}

void set_uniform_activity(NetworkSpec& spec, double activity,
                          double first_layer_activity) {
  for (std::size_t i = 0; i < spec.layers.size(); ++i) {
    spec.layers[i].input_activity = i == 0 ? first_layer_activity : activity;
  }
}

}  // namespace dtsnn::imc
