// ImcConfig is a plain aggregate; this translation unit exists to anchor the
// module and host any future non-inline helpers.

#include "imc/config.h"

namespace dtsnn::imc {}  // namespace dtsnn::imc
