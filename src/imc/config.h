// IMC architecture configuration.
//
// Table I parameters of the paper (32nm CMOS, 64x64 4-bit RRAM crossbars,
// 64 crossbars/tile, 8-bit weights, Roff/Ron = 10 at Ron = 20k, 0.9V VDD,
// 0.1V read voltage, 20/10/5 KB global/tile/PE buffers, 3KB sigma & E LUTs)
// plus the per-operation energy/latency atoms of the analytic macro-model.
//
// The energy atoms are calibrated (see DESIGN.md §4.4) so that the VGG-16 /
// CIFAR-10 mapping reproduces the paper's Fig. 1(A) component shares
// (digital peripherals 45%, crossbar+ADC 25%, H-Tree 17%, NoC 9%, LIF 1%)
// and the Fig. 1(B) affine energy-vs-timesteps scaling (E(T) ~ 0.44+0.56*T
// normalized to T=1). All constants live here so alternative technologies
// can be modeled by swapping one struct.

#pragma once

#include <cstddef>

namespace dtsnn::imc {

struct ImcConfig {
  // ---- Table I ------------------------------------------------------------
  std::size_t crossbar_size = 64;      ///< rows = cols = 64
  std::size_t crossbars_per_tile = 64;
  std::size_t pes_per_tile = 4;        ///< 16 crossbars per PE
  std::size_t device_bits = 4;         ///< RRAM cell precision
  std::size_t weight_bits = 8;         ///< two 4-bit slices per weight
  bool differential_columns = true;    ///< positive/negative column pairs
  double device_sigma_over_mu = 0.20;  ///< conductance variation sigma/mu
  double r_on_ohm = 20e3;
  double roff_over_ron = 10.0;
  double vdd = 0.9;
  double vread = 0.1;
  std::size_t global_buffer_kb = 20;
  std::size_t tile_buffer_kb = 10;
  std::size_t pe_buffer_kb = 5;
  std::size_t adc_bits = 6;
  std::size_t adc_mux_ratio = 8;       ///< crossbar columns sharing one ADC
  std::size_t sigma_lut_kb = 3;
  std::size_t entropy_lut_kb = 3;

  // ---- Energy atoms (picojoules per event) ---------------------------------
  // Calibrated against the paper's Fig. 1 on the VGG-16/CIFAR-10 mapping:
  // component shares 45/25/17/9/1 (digital periph / crossbar+ADC / H-Tree /
  // NoC / LIF) and affine energy scaling E(T) ~ 0.44 + 0.56 T.
  // Crossbar + ADC ("Crossbar+DIFF" in Fig. 1A).
  double e_xbar_row_read_pj = 0.14;    ///< one active row during one MVM read
  double e_adc_conv_pj = 1.6;          ///< one ADC conversion (one column)
  // Digital peripherals: input switch matrix, column mux, shift&add,
  // PE/tile/global accumulators, buffer traffic.
  double e_switch_matrix_pj = 1.33;    ///< per crossbar input-vector setup
  double e_mux_pj = 0.044;             ///< per column select
  double e_shift_add_pj = 0.37;        ///< per partial-sum merge op
  double e_accumulate_pj = 0.37;       ///< per accumulator op (PE/tile/GA)
  double e_buffer_rw_pj_per_byte = 1.62;///< SRAM buffer read+write, per byte
  // Interconnect.
  double e_htree_pj_per_byte = 2.2;    ///< intra-tile H-tree transport
  double e_noc_pj_per_byte = 37.0;     ///< inter-tile NoC transport (multi-hop)
  // Neuron module (membrane SRAM access + leak/compare/reset datapath).
  double e_lif_update_pj = 4.5;        ///< one LIF membrane update
  // Fixed per-inference overhead: off-chip image fetch into the global
  // buffer plus per-inference control/configuration (tile setup, bias
  // broadcast). This timestep-independent term is what makes E(T) affine
  // rather than purely linear (Fig. 1B: E(1)=1.0 -> E(8)=4.9, not 8.0).
  double e_offchip_pj_per_byte = 120.0;
  double e_inference_setup_pj = 8.12e7;
  // sigma-E module energy per evaluated timestep, expressed as a fraction of
  // the one-timestep chip energy (paper: ~2e-5).
  double sigma_e_energy_fraction = 2e-5;

  // ---- Latency atoms (nanoseconds) -----------------------------------------
  double t_xbar_read_ns = 12.0;  ///< analog MVM + ADC via mux, one vector
  double t_layer_overhead_ns = 40.0;  ///< LIF + interconnect per layer drain

  // ---- Derived --------------------------------------------------------------
  [[nodiscard]] std::size_t weight_slices() const { return weight_bits / device_bits; }
  /// Device columns consumed by one logical weight.
  [[nodiscard]] std::size_t columns_per_weight() const {
    return weight_slices() * (differential_columns ? 2 : 1);
  }
  [[nodiscard]] std::size_t conductance_levels() const {
    return static_cast<std::size_t>(1) << device_bits;
  }
  [[nodiscard]] double g_on() const { return 1.0 / r_on_ohm; }
  [[nodiscard]] double g_off() const { return 1.0 / (r_on_ohm * roff_over_ron); }
  [[nodiscard]] bool valid() const {
    return crossbar_size > 0 && crossbars_per_tile > 0 && device_bits > 0 &&
           weight_bits % device_bits == 0 && roff_over_ron > 1.0 && adc_mux_ratio > 0;
  }
};

}  // namespace dtsnn::imc
