#include "imc/energy_model.h"

#include <cassert>

namespace dtsnn::imc {

EnergyModel::EnergyModel(NetworkMapping mapping) : mapping_(std::move(mapping)) {
  const ImcConfig& c = mapping_.config;
  ComponentEnergy e;
  for (const auto& l : mapping_.layers) {
    e.crossbar_adc += l.active_row_reads * c.e_xbar_row_read_pj +
                      static_cast<double>(l.adc_conversions) * c.e_adc_conv_pj;
    e.digital_peripherals +=
        static_cast<double>(l.mvm_reads) * c.e_switch_matrix_pj +
        static_cast<double>(l.adc_conversions) * c.e_mux_pj +
        static_cast<double>(l.shift_add_ops) * c.e_shift_add_pj +
        static_cast<double>(l.accumulate_ops) * c.e_accumulate_pj +
        static_cast<double>(l.buffer_bytes) * c.e_buffer_rw_pj_per_byte;
    e.htree += static_cast<double>(l.htree_bytes) * c.e_htree_pj_per_byte;
    e.noc += static_cast<double>(l.noc_bytes) * c.e_noc_pj_per_byte;
    e.lif += static_cast<double>(l.lif_updates) * c.e_lif_update_pj;
  }
  breakdown_.per_timestep = e;
  breakdown_.fixed_per_inference_pj =
      static_cast<double>(mapping_.network.input_bytes()) * c.e_offchip_pj_per_byte +
      c.e_inference_setup_pj;
  breakdown_.sigma_e_per_timestep_pj = c.sigma_e_energy_fraction * e.total();
  breakdown_.latency_per_timestep_ns = mapping_.total_latency_ns();
}

double EnergyModel::energy_pj(double timesteps, bool dynamic) const {
  assert(timesteps >= 0.0);
  double step = breakdown_.per_timestep.total();
  if (dynamic) step += breakdown_.sigma_e_per_timestep_pj;
  return breakdown_.fixed_per_inference_pj + timesteps * step;
}

double EnergyModel::latency_ns(double timesteps) const {
  return timesteps * breakdown_.latency_per_timestep_ns;
}

double EnergyModel::edp(double timesteps, bool dynamic) const {
  return energy_pj(timesteps, dynamic) * latency_ns(timesteps);
}

double EnergyModel::mean_energy_pj(std::span<const std::size_t> exit_timesteps,
                                   bool dynamic) const {
  if (exit_timesteps.empty()) return 0.0;
  double acc = 0.0;
  for (const std::size_t t : exit_timesteps) {
    acc += energy_pj(static_cast<double>(t), dynamic);
  }
  return acc / static_cast<double>(exit_timesteps.size());
}

double EnergyModel::mean_edp(std::span<const std::size_t> exit_timesteps,
                             bool dynamic) const {
  if (exit_timesteps.empty()) return 0.0;
  double acc = 0.0;
  for (const std::size_t t : exit_timesteps) {
    acc += edp(static_cast<double>(t), dynamic);
  }
  return acc / static_cast<double>(exit_timesteps.size());
}

EnergyModel::Share EnergyModel::component_shares(double timesteps) const {
  const ComponentEnergy& e = breakdown_.per_timestep;
  // The fixed per-inference energy is buffer/off-chip staging work; report it
  // inside digital peripherals as the paper's pie does.
  const double periph = e.digital_peripherals * timesteps + breakdown_.fixed_per_inference_pj;
  const double xbar = e.crossbar_adc * timesteps;
  const double htree = e.htree * timesteps;
  const double noc = e.noc * timesteps;
  const double lif = e.lif * timesteps;
  const double total = periph + xbar + htree + noc + lif;
  if (total <= 0.0) return {0, 0, 0, 0, 0};
  return {xbar / total, periph / total, htree / total, noc / total, lif / total};
}

}  // namespace dtsnn::imc
