#include "imc/sigma_e.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace dtsnn::imc {

SigmaEModule::SigmaEModule(SigmaEConfig config) : config_(config) {
  if (config_.exp_lut_entries < 2 || config_.log_lut_entries < 2 ||
      config_.fraction_bits < 4 || config_.fraction_bits > 24 ||
      config_.input_range <= 0.0) {
    throw std::invalid_argument("SigmaEModule: invalid configuration");
  }
  const double scale = static_cast<double>(std::size_t{1} << config_.fraction_bits);
  // sigma LUT: exp(d) for d = -range * a / (entries - 1), a = 0..entries-1.
  exp_lut_.resize(config_.exp_lut_entries);
  for (std::size_t a = 0; a < config_.exp_lut_entries; ++a) {
    const double d = -config_.input_range * static_cast<double>(a) /
                     static_cast<double>(config_.exp_lut_entries - 1);
    exp_lut_[a] = static_cast<std::uint32_t>(std::lround(std::exp(d) * scale));
  }
  // log LUT: ln(m) for mantissa m in [1, 2).
  log_lut_.resize(config_.log_lut_entries);
  for (std::size_t a = 0; a < config_.log_lut_entries; ++a) {
    const double m = 1.0 + static_cast<double>(a) / static_cast<double>(config_.log_lut_entries);
    log_lut_[a] = static_cast<std::uint32_t>(std::lround(std::log(m) * scale));
  }
}

std::uint64_t SigmaEModule::exp_fixed(double d) {
  ++stats_.exp_lut_lookups;
  d = std::clamp(d, -config_.input_range, 0.0);
  const double pos = -d / config_.input_range;  // in [0, 1]
  const auto addr = static_cast<std::size_t>(std::lround(
      pos * static_cast<double>(config_.exp_lut_entries - 1)));
  return exp_lut_[addr];
}

double SigmaEModule::log_fixed(std::uint64_t s) {
  ++stats_.log_lut_lookups;
  assert(s > 0);
  // Leading-one normalizer: s = m * 2^b with m in [1, 2).
  const int b = 63 - std::countl_zero(s);
  std::size_t mantissa_addr;
  if (b >= static_cast<int>(config_.fraction_bits)) {
    // Extract the bits after the leading one as the LUT address.
    const int shift = b - static_cast<int>(std::bit_width(config_.log_lut_entries - 1));
    mantissa_addr = static_cast<std::size_t>((s >> std::max(0, shift)) &
                                             (config_.log_lut_entries - 1));
  } else {
    mantissa_addr = 0;
  }
  const double scale = static_cast<double>(std::size_t{1} << config_.fraction_bits);
  return static_cast<double>(b) * std::numbers::ln2 +
         static_cast<double>(log_lut_[mantissa_addr]) / scale;
}

double SigmaEModule::compute_entropy(std::span<const float> logits) {
  if (logits.size() < 2) throw std::invalid_argument("SigmaEModule: need >= 2 logits");
  if (logits.size() > config_.fifo_depth) {
    throw std::invalid_argument("SigmaEModule: logits exceed y-FIFO depth");
  }
  stats_.fifo_pushes += logits.size();

  const float maxv = *std::max_element(logits.begin(), logits.end());
  // Quantize d_i = y_i - max to the exp-LUT address grid, exactly as the
  // datapath would (the address *is* the quantization).
  const double grid = config_.input_range / static_cast<double>(config_.exp_lut_entries - 1);

  std::uint64_t s = 0;          // sum of E_i, Q0.frac
  std::int64_t weighted = 0;    // sum of E_i * (d_i / grid), integer grid units
  for (const float y : logits) {
    const double d = std::clamp(static_cast<double>(y) - static_cast<double>(maxv),
                                -config_.input_range, 0.0);
    const auto grid_units = static_cast<std::int64_t>(std::lround(-d / grid));
    const std::uint64_t e = exp_fixed(d);
    s += e;
    weighted -= static_cast<std::int64_t>(e) * grid_units;  // E_i * d_i (grid units)
    ++stats_.mac_ops;
  }
  if (s == 0) return 1.0;

  const double frac_scale = static_cast<double>(std::size_t{1} << config_.fraction_bits);
  // ln(S / 2^frac) = log_fixed(S) - frac * ln2.
  const double ln_s = log_fixed(s) -
                      static_cast<double>(config_.fraction_bits) * std::numbers::ln2;
  const double mean_d = static_cast<double>(weighted) * grid / static_cast<double>(s);
  ++stats_.mac_ops;  // the final multiply-accumulate against 1/S

  double h = ln_s - mean_d;
  h /= std::log(static_cast<double>(logits.size()));  // normalize by log K
  // Hardware register clamps to the representable [0, 1] range. Entropy can
  // exceed 1 transiently only through LUT rounding.
  (void)frac_scale;
  return std::clamp(h, 0.0, 1.0 + 1.0 / frac_scale);
}

bool SigmaEModule::should_exit(std::span<const float> logits, double theta) {
  // Theta is held in a register with the same fraction width.
  const double scale = static_cast<double>(std::size_t{1} << config_.fraction_bits);
  const double theta_q = std::round(theta * scale) / scale;
  return compute_entropy(logits) < theta_q;
}

}  // namespace dtsnn::imc
