// Layer -> crossbar/PE/tile mapping.
//
// Weights are laid out as in the paper's monolithic-tiled architecture:
// a layer's [Cin*K*K, Cout] weight matrix is tiled over 64x64 crossbars,
// each 8-bit weight occupying weight_bits/device_bits column slices (x2 for
// differential pairs). Crossbars are grouped 16-per-PE, 4 PEs per tile
// (64 crossbars/tile); partial sums accumulate PE -> tile -> global.

#pragma once

#include "imc/config.h"
#include "imc/network_spec.h"

namespace dtsnn::imc {

/// Placement of one weight layer.
struct LayerMapping {
  LayerSpec spec;
  std::size_t xbar_rows = 0;      ///< crossbar row-groups: ceil(rows / 64)
  std::size_t xbar_cols = 0;      ///< crossbar col-groups: ceil(cols_dev / 64)
  std::size_t crossbars = 0;      ///< xbar_rows * xbar_cols
  std::size_t device_columns = 0; ///< Cout * columns_per_weight
  std::size_t tiles = 0;          ///< ceil(crossbars / crossbars_per_tile)

  // Per-timestep event counts (input to the energy model).
  std::size_t mvm_reads = 0;         ///< crossbar read operations
  double active_row_reads = 0.0;     ///< spike-weighted row activations
  std::size_t adc_conversions = 0;
  std::size_t shift_add_ops = 0;
  std::size_t accumulate_ops = 0;
  std::size_t buffer_bytes = 0;      ///< PE/tile/global buffer traffic
  std::size_t htree_bytes = 0;       ///< intra-tile partial-sum movement
  std::size_t noc_bytes = 0;         ///< inter-tile activation movement
  std::size_t lif_updates = 0;
  double latency_ns = 0.0;           ///< sequential layer latency per timestep
};

struct NetworkMapping {
  NetworkSpec network;
  ImcConfig config;
  std::vector<LayerMapping> layers;

  [[nodiscard]] std::size_t total_crossbars() const;
  [[nodiscard]] std::size_t total_tiles() const;
  [[nodiscard]] double total_latency_ns() const;  ///< one timestep
};

/// Map a network spec onto the architecture; throws if config is invalid.
NetworkMapping map_network(const NetworkSpec& spec, const ImcConfig& config);

}  // namespace dtsnn::imc
