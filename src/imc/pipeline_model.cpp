#include "imc/pipeline_model.h"

#include <algorithm>
#include <cassert>

namespace dtsnn::imc {

namespace {

/// Bottleneck (slowest layer) latency of one timestep.
double bottleneck_ns(const NetworkMapping& mapping) {
  double worst = 0.0;
  for (const auto& l : mapping.layers) worst = std::max(worst, l.latency_ns);
  return worst;
}

}  // namespace

PipelineAnalysis analyze_pipeline(const EnergyModel& model, std::size_t max_timesteps,
                                  std::span<const std::size_t> exit_timesteps) {
  assert(max_timesteps >= 1);
  const NetworkMapping& mapping = model.mapping();
  const double layer_sum = mapping.total_latency_ns();   // pipeline fill time
  const double stage = bottleneck_ns(mapping);           // pipeline beat
  const double step_energy = model.breakdown().per_timestep.total() +
                             model.breakdown().sigma_e_per_timestep_pj;
  const double fixed_energy = model.breakdown().fixed_per_inference_pj;
  const auto t_max = static_cast<double>(max_timesteps);

  // The number of later timesteps already admitted into the pipeline when a
  // timestep's exit decision becomes available: the decision needs the full
  // drain (layer_sum) while a new timestep enters every `stage`.
  const double in_flight = layer_sum / stage - 1.0;

  PipelineAnalysis out;
  out.sequential_latency_ns = t_max * layer_sum;
  out.pipelined_latency_ns = layer_sum + (t_max - 1.0) * stage;
  out.sequential_energy_pj = fixed_energy + t_max * step_energy;
  out.pipelined_energy_pj = out.sequential_energy_pj;  // same useful work

  if (exit_timesteps.empty()) {
    out.dt_sequential_latency_ns = out.sequential_latency_ns;
    out.dt_pipelined_latency_ns = out.pipelined_latency_ns;
    out.dt_sequential_energy_pj = out.sequential_energy_pj;
    out.dt_pipelined_energy_pj = out.pipelined_energy_pj;
    return out;
  }

  double seq_lat = 0.0, pipe_lat = 0.0, seq_e = 0.0, pipe_e = 0.0;
  for (const std::size_t exit_t : exit_timesteps) {
    const auto t_hat = static_cast<double>(exit_t);
    // Sequential: exactly t_hat timesteps computed, decision gates the next.
    seq_lat += t_hat * layer_sum;
    seq_e += fixed_energy + t_hat * step_energy;
    // Pipelined: timesteps stream in every `stage`; when t_hat's decision
    // lands, speculative timesteps are in flight (capped by the budget) and
    // must be flushed. Their energy is wasted; the flush costs drain time.
    const double speculative =
        exit_t < max_timesteps
            ? std::min(static_cast<double>(max_timesteps - exit_t), in_flight)
            : 0.0;
    pipe_lat += layer_sum + (t_hat - 1.0) * stage;  // decision-ready time
    // Wasted energy: speculative timesteps progressed roughly halfway on
    // average before the flush.
    pipe_e += fixed_energy + t_hat * step_energy + 0.5 * speculative * step_energy;
  }
  const auto n = static_cast<double>(exit_timesteps.size());
  out.dt_sequential_latency_ns = seq_lat / n;
  out.dt_pipelined_latency_ns = pipe_lat / n;
  out.dt_sequential_energy_pj = seq_e / n;
  out.dt_pipelined_energy_pj = pipe_e / n;
  return out;
}

}  // namespace dtsnn::imc
