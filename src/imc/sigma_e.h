// The sigma-E module: on-chip softmax-entropy computation (Fig. 3b).
//
// Digital fixed-point pipeline fed by the global accumulator's MAC outputs:
//   y-FIFO -> sigma LUT (exponential) -> sigma-FIFO -> entropy module
//   (log LUT + multiplier + adder/register) -> threshold comparator.
//
// The implementation below mirrors that datapath with integer arithmetic and
// two small LUTs (exp and log), sized to the paper's 3KB budgets. It computes
// the normalized entropy of softmax(logits) as
//     H = ln(S) - (sum_i E_i * d_i) / S,   E_i = exp(d_i), d_i = y_i - max(y)
// entirely from LUT lookups, integer MACs and one normalization, then
// compares against the (quantized) threshold theta to issue the exit signal.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace dtsnn::imc {

struct SigmaEConfig {
  std::size_t exp_lut_entries = 256;  ///< sigma LUT (3KB at 16-bit entries + tags)
  std::size_t log_lut_entries = 256;  ///< log LUT
  std::size_t fraction_bits = 14;     ///< Q-format fraction width
  double input_range = 16.0;          ///< clamp of y_i - max(y) to [-range, 0]
  std::size_t fifo_depth = 16;        ///< y-FIFO depth (>= #classes; CIFAR10: 10)
};

/// Per-invocation datapath activity (for energy accounting / verification).
struct SigmaEStats {
  std::size_t exp_lut_lookups = 0;
  std::size_t log_lut_lookups = 0;
  std::size_t mac_ops = 0;
  std::size_t fifo_pushes = 0;
};

class SigmaEModule {
 public:
  explicit SigmaEModule(SigmaEConfig config = {});

  /// Normalized entropy of softmax(logits) via the fixed-point pipeline.
  /// logits.size() must be >= 2 and <= fifo_depth.
  [[nodiscard]] double compute_entropy(std::span<const float> logits);

  /// Exit decision: entropy < theta. Theta is compared after the same
  /// fixed-point rounding the hardware comparator would see.
  [[nodiscard]] bool should_exit(std::span<const float> logits, double theta);

  [[nodiscard]] const SigmaEStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }
  [[nodiscard]] const SigmaEConfig& config() const { return config_; }

 private:
  [[nodiscard]] std::uint64_t exp_fixed(double d);   ///< LUT exp(d), d in [-range, 0]
  [[nodiscard]] double log_fixed(std::uint64_t s);   ///< LUT-based natural log

  SigmaEConfig config_;
  std::vector<std::uint32_t> exp_lut_;  ///< Q0.frac values of exp on [-range, 0]
  std::vector<std::uint32_t> log_lut_;  ///< Q2.frac values of ln(m), m in [1, 2)
  SigmaEStats stats_;
};

}  // namespace dtsnn::imc
