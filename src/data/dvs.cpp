#include "data/dvs.h"

#include <cmath>
#include <stdexcept>

namespace dtsnn::data {

namespace {

/// Smooth scalar field in [-1, 1] used as the moving stimulus.
std::vector<float> make_field(const DvsSpec& spec, util::Rng& rng) {
  SyntheticSpec proto_spec;
  proto_spec.channels = 1;
  proto_spec.height = spec.height;
  proto_spec.width = spec.width;
  proto_spec.prototype_cells = spec.prototype_cells;
  // Reuse the synthetic-vision prototype generator through its public
  // surface: build a tiny one-class dataset? Simpler: replicate the bilinear
  // construction locally with the same statistical structure.
  const std::size_t cells = spec.prototype_cells;
  std::vector<float> coarse(cells * cells);
  for (auto& v : coarse) v = static_cast<float>(rng.gaussian());
  std::vector<float> field(spec.height * spec.width);
  for (std::size_t y = 0; y < spec.height; ++y) {
    const double gy = (static_cast<double>(y) + 0.5) / static_cast<double>(spec.height) *
                          static_cast<double>(cells) -
                      0.5;
    const auto y0 = static_cast<std::ptrdiff_t>(std::floor(gy));
    const double fy = gy - static_cast<double>(y0);
    for (std::size_t x = 0; x < spec.width; ++x) {
      const double gx = (static_cast<double>(x) + 0.5) / static_cast<double>(spec.width) *
                            static_cast<double>(cells) -
                        0.5;
      const auto x0 = static_cast<std::ptrdiff_t>(std::floor(gx));
      const double fx = gx - static_cast<double>(x0);
      auto at = [&](std::ptrdiff_t yy, std::ptrdiff_t xx) -> double {
        yy = std::clamp<std::ptrdiff_t>(yy, 0, static_cast<std::ptrdiff_t>(cells) - 1);
        xx = std::clamp<std::ptrdiff_t>(xx, 0, static_cast<std::ptrdiff_t>(cells) - 1);
        return coarse[yy * static_cast<std::ptrdiff_t>(cells) + xx];
      };
      const double v =
          (1 - fy) * ((1 - fx) * at(y0, x0) + fx * at(y0, x0 + 1)) +
          fy * ((1 - fx) * at(y0 + 1, x0) + fx * at(y0 + 1, x0 + 1));
      field[y * spec.width + x] = static_cast<float>(std::tanh(v));
    }
  }
  return field;
}

void fill_split(ArrayDataset& dataset, const DvsSpec& spec,
                const std::vector<std::vector<float>>& fields, util::Rng& rng,
                std::size_t count) {
  const std::size_t hw = spec.height * spec.width;
  const std::size_t frame_numel = 2 * hw;  // ON / OFF channels
  std::vector<float> frames(spec.timesteps * frame_numel);

  for (std::size_t i = 0; i < count; ++i) {
    const auto label = static_cast<int>(rng.uniform_int(spec.classes));
    const double difficulty = std::pow(rng.uniform(), spec.difficulty_skew);
    const double signal = spec.signal_rate * (1.0 - spec.signal_drop * difficulty);
    const double noise = spec.noise_rate * difficulty;
    const auto& field = fields[static_cast<std::size_t>(label)];
    // Per-sample drift direction: the stimulus translates across frames.
    const int dy = rng.bernoulli(0.5) ? 1 : -1;
    const int dx = rng.bernoulli(0.5) ? 1 : -1;

    std::fill(frames.begin(), frames.end(), 0.0f);
    for (std::size_t t = 0; t < spec.timesteps; ++t) {
      float* on = frames.data() + t * frame_numel;
      float* off = on + hw;
      const auto shift_y = static_cast<std::ptrdiff_t>(t) * dy;
      const auto shift_x = static_cast<std::ptrdiff_t>(t) * dx;
      for (std::size_t y = 0; y < spec.height; ++y) {
        for (std::size_t x = 0; x < spec.width; ++x) {
          // Toroidal shift keeps the stimulus in frame.
          const std::size_t sy = static_cast<std::size_t>(
              ((static_cast<std::ptrdiff_t>(y) + shift_y) %
                   static_cast<std::ptrdiff_t>(spec.height) +
               static_cast<std::ptrdiff_t>(spec.height)) %
              static_cast<std::ptrdiff_t>(spec.height));
          const std::size_t sx = static_cast<std::size_t>(
              ((static_cast<std::ptrdiff_t>(x) + shift_x) %
                   static_cast<std::ptrdiff_t>(spec.width) +
               static_cast<std::ptrdiff_t>(spec.width)) %
              static_cast<std::ptrdiff_t>(spec.width));
          const float v = field[sy * spec.width + sx];
          const double p_on = signal * std::max(0.0f, v) + noise;
          const double p_off = signal * std::max(0.0f, -v) + noise;
          if (rng.bernoulli(std::min(1.0, p_on))) on[y * spec.width + x] = 1.0f;
          if (rng.bernoulli(std::min(1.0, p_off))) off[y * spec.width + x] = 1.0f;
        }
      }
    }
    dataset.add_sample(frames, label, difficulty);
  }
}

}  // namespace

SyntheticBundle make_synthetic_dvs(const DvsSpec& spec) {
  if (spec.classes < 2) throw std::invalid_argument("make_synthetic_dvs: need >= 2 classes");
  if (spec.timesteps == 0) throw std::invalid_argument("make_synthetic_dvs: timesteps 0");
  util::Rng rng(spec.seed);
  std::vector<std::vector<float>> fields;
  fields.reserve(spec.classes);
  for (std::size_t k = 0; k < spec.classes; ++k) fields.push_back(make_field(spec, rng));

  SyntheticBundle bundle;
  bundle.name = spec.name;
  const snn::Shape frame{2, spec.height, spec.width};
  bundle.train = std::make_unique<ArrayDataset>(frame, spec.timesteps, spec.classes);
  bundle.test = std::make_unique<ArrayDataset>(frame, spec.timesteps, spec.classes);

  util::Rng train_rng = rng.fork(1);
  util::Rng test_rng = rng.fork(2);
  fill_split(*bundle.train, spec, fields, train_rng, spec.train_samples);
  fill_split(*bundle.test, spec, fields, test_rng, spec.test_samples);
  return bundle;
}

DvsSpec dvs_preset(double size_scale) {
  DvsSpec spec;
  spec.train_samples = static_cast<std::size_t>(
      std::max(64.0, static_cast<double>(spec.train_samples) * size_scale));
  spec.test_samples = static_cast<std::size_t>(
      std::max(64.0, static_cast<double>(spec.test_samples) * size_scale));
  return spec;
}

}  // namespace dtsnn::data
