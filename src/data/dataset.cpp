#include "data/dataset.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>

namespace dtsnn::data {

ArrayDataset::ArrayDataset(snn::Shape frame_shape, std::size_t frames_per_sample,
                           std::size_t num_classes)
    : frame_shape_(std::move(frame_shape)),
      frame_numel_(snn::shape_numel(frame_shape_)),
      frames_per_sample_(frames_per_sample),
      num_classes_(num_classes) {
  if (frames_per_sample_ == 0 || num_classes_ == 0 || frame_numel_ == 0) {
    throw std::invalid_argument("ArrayDataset: degenerate configuration");
  }
}

std::size_t ArrayDataset::add_sample(std::vector<float> frames, int label,
                                     double difficulty, double temporal_noise) {
  if (frames.size() != frame_numel_ * frames_per_sample_) {
    throw std::invalid_argument("ArrayDataset::add_sample: bad frame data size");
  }
  if (label < 0 || static_cast<std::size_t>(label) >= num_classes_) {
    throw std::invalid_argument("ArrayDataset::add_sample: label out of range");
  }
  data_.insert(data_.end(), frames.begin(), frames.end());
  labels_.push_back(label);
  difficulty_.push_back(difficulty);
  temporal_noise_.push_back(static_cast<float>(temporal_noise));
  return labels_.size() - 1;
}

void ArrayDataset::write_frame(std::size_t sample, std::size_t t,
                               std::span<float> dst) const {
  assert(dst.size() == frame_numel_);
  const std::size_t frame = std::min(t, frames_per_sample_ - 1);
  const float* src = data_.data() + (sample * frames_per_sample_ + frame) * frame_numel_;
  std::memcpy(dst.data(), src, frame_numel_ * sizeof(float));

  const float sigma = temporal_noise_[sample];
  if (sigma > 0.0f) {
    // Deterministic per-(sample, timestep) stream: any engine reading the
    // same (sample, t) sees identical noise.
    util::Rng rng(noise_seed_ ^ (sample * 0x9e3779b97f4a7c15ull) ^
                  (t * 0xc2b2ae3d27d4eb4full));
    for (auto& v : dst) v += sigma * static_cast<float>(rng.gaussian());
  }
}

std::span<const float> ArrayDataset::frame_data(std::size_t sample, std::size_t t) const {
  const std::size_t frame = std::min(t, frames_per_sample_ - 1);
  return {data_.data() + (sample * frames_per_sample_ + frame) * frame_numel_,
          frame_numel_};
}

snn::EncodedBatch materialize_batch(const Dataset& dataset,
                                    std::span<const std::size_t> indices,
                                    std::size_t timesteps) {
  if (indices.empty()) {
    throw std::invalid_argument("materialize_batch: empty indices");
  }
  if (timesteps == 0) {
    throw std::invalid_argument("materialize_batch: timesteps == 0");
  }
  const snn::Shape fs = dataset.frame_shape();
  const std::size_t b = indices.size();
  const std::size_t frame_numel = snn::shape_numel(fs);

  snn::EncodedBatch batch;
  batch.x = snn::Tensor({timesteps * b, fs[0], fs[1], fs[2]});
  batch.labels.resize(b);
  for (std::size_t t = 0; t < timesteps; ++t) {
    for (std::size_t i = 0; i < b; ++i) {
      float* dst = batch.x.data() + (t * b + i) * frame_numel;
      dataset.write_frame(indices[i], t, {dst, frame_numel});
    }
  }
  for (std::size_t i = 0; i < b; ++i) batch.labels[i] = dataset.label(indices[i]);
  return batch;
}

snn::EncodedBatch materialize_all(const Dataset& dataset, std::size_t timesteps,
                                  std::size_t limit) {
  const std::size_t n = limit ? std::min(limit, dataset.size()) : dataset.size();
  std::vector<std::size_t> indices(n);
  for (std::size_t i = 0; i < n; ++i) indices[i] = i;
  return materialize_batch(dataset, indices, timesteps);
}

ShuffledBatchSource::ShuffledBatchSource(const Dataset& dataset, std::size_t batch_size,
                                         std::uint64_t seed)
    : dataset_(dataset), batch_size_(batch_size), seed_(seed), order_(dataset.size()) {
  if (batch_size_ == 0) throw std::invalid_argument("ShuffledBatchSource: batch_size 0");
  for (std::size_t i = 0; i < order_.size(); ++i) order_[i] = i;
}

std::size_t ShuffledBatchSource::num_batches() const {
  return order_.size() / batch_size_;  // drop ragged tail, as common in training
}

snn::EncodedBatch ShuffledBatchSource::batch(std::size_t index,
                                             std::size_t timesteps) const {
  if (index >= num_batches()) {
    throw std::out_of_range("ShuffledBatchSource::batch index out of range");
  }
  const std::span<const std::size_t> slice(order_.data() + index * batch_size_, batch_size_);
  return materialize_batch(dataset_, slice, timesteps);
}

void ShuffledBatchSource::reshuffle(std::size_t epoch) {
  util::Rng rng(seed_ ^ (0x9e3779b97f4a7c15ull * (epoch + 1)));
  rng.shuffle(order_);
}

}  // namespace dtsnn::data
