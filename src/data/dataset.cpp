#include "data/dataset.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <numeric>
#include <stdexcept>

#include "data/prefetch.h"

namespace dtsnn::data {

DatasetStorageStats Dataset::storage_stats() const {
  DatasetStorageStats stats;
  // Frames plus per-sample metadata (label, difficulty, noise stddev) — the
  // same accounting ShardedDataset uses, so both backends report identical
  // logical bytes for identical data.
  stats.logical_bytes =
      size() * (native_frames() * snn::shape_numel(frame_shape()) * sizeof(float) +
                sizeof(int) + sizeof(double) + sizeof(float));
  stats.resident_bytes = stats.logical_bytes;
  stats.peak_resident_bytes = stats.logical_bytes;
  return stats;
}

ArrayDataset::ArrayDataset(snn::Shape frame_shape, std::size_t frames_per_sample,
                           std::size_t num_classes)
    : frame_shape_(std::move(frame_shape)),
      frame_numel_(snn::shape_numel(frame_shape_)),
      frames_per_sample_(frames_per_sample),
      num_classes_(num_classes) {
  if (frames_per_sample_ == 0 || num_classes_ == 0 || frame_numel_ == 0) {
    throw std::invalid_argument("ArrayDataset: degenerate configuration");
  }
}

std::size_t ArrayDataset::add_sample(std::vector<float> frames, int label,
                                     double difficulty, double temporal_noise) {
  if (frames.size() != frame_numel_ * frames_per_sample_) {
    throw std::invalid_argument(
        "ArrayDataset::add_sample: frame data has " + std::to_string(frames.size()) +
        " floats, expected " + std::to_string(frame_numel_ * frames_per_sample_) +
        " (frame_numel * frames_per_sample)");
  }
  if (label < 0 || static_cast<std::size_t>(label) >= num_classes_) {
    throw std::invalid_argument("ArrayDataset::add_sample: label out of range");
  }
  data_.insert(data_.end(), frames.begin(), frames.end());
  labels_.push_back(label);
  difficulty_.push_back(difficulty);
  temporal_noise_.push_back(static_cast<float>(temporal_noise));
  return labels_.size() - 1;
}

void ArrayDataset::write_frame(std::size_t sample, std::size_t t,
                               std::span<float> dst) const {
  assert(dst.size() == frame_numel_);
  const std::size_t frame = std::min(t, frames_per_sample_ - 1);
  const float* src = data_.data() + (sample * frames_per_sample_ + frame) * frame_numel_;
  std::memcpy(dst.data(), src, frame_numel_ * sizeof(float));
  detail::apply_temporal_noise(dst, temporal_noise_[sample], noise_seed_, sample, t);
}

std::span<const float> ArrayDataset::frame_data(std::size_t sample, std::size_t t) const {
  const std::size_t frame = std::min(t, frames_per_sample_ - 1);
  return {data_.data() + (sample * frames_per_sample_ + frame) * frame_numel_,
          frame_numel_};
}

snn::EncodedBatch materialize_batch(const Dataset& dataset,
                                    std::span<const std::size_t> indices,
                                    std::size_t timesteps) {
  if (indices.empty()) {
    throw std::invalid_argument("materialize_batch: empty indices");
  }
  if (timesteps == 0) {
    throw std::invalid_argument("materialize_batch: timesteps == 0");
  }
  dataset.prefetch(indices);
  const snn::Shape fs = dataset.frame_shape();
  const std::size_t b = indices.size();
  const std::size_t frame_numel = snn::shape_numel(fs);

  snn::EncodedBatch batch;
  batch.x = snn::Tensor({timesteps * b, fs[0], fs[1], fs[2]});
  batch.labels.resize(b);
  // Sample-major fill: all of a sample's timesteps are read consecutively,
  // so a storage-backed dataset pages each shard at most once per chunk even
  // when the chunk spans more shards than the cache holds (t-major order
  // would re-page every shard `timesteps` times). The writes are
  // independent, so the encoded tensor is identical either way.
  for (std::size_t i = 0; i < b; ++i) {
    for (std::size_t t = 0; t < timesteps; ++t) {
      float* dst = batch.x.data() + (t * b + i) * frame_numel;
      dataset.write_frame(indices[i], t, {dst, frame_numel});
    }
  }
  for (std::size_t i = 0; i < b; ++i) batch.labels[i] = dataset.label(indices[i]);
  return batch;
}

// -------------------------------------------------------------- BatchCursor

BatchCursor::BatchCursor(const Dataset& dataset, std::span<const std::size_t> indices,
                         std::size_t timesteps, std::size_t chunk_samples,
                         std::optional<std::size_t> prefetch_depth)
    : dataset_(dataset),
      index_list_(indices),
      use_range_(false),
      total_(indices.size()),
      timesteps_(timesteps),
      chunk_samples_(chunk_samples),
      prefetcher_(std::make_unique<ShardPrefetcher>(dataset, prefetch_depth)) {
  if (timesteps_ == 0) throw std::invalid_argument("BatchCursor: timesteps == 0");
  if (chunk_samples_ == 0) throw std::invalid_argument("BatchCursor: chunk_samples == 0");
}

BatchCursor::BatchCursor(const Dataset& dataset, std::size_t count,
                         std::size_t timesteps, std::size_t chunk_samples,
                         std::optional<std::size_t> prefetch_depth)
    : dataset_(dataset),
      use_range_(true),
      total_(count),
      timesteps_(timesteps),
      chunk_samples_(chunk_samples),
      prefetcher_(std::make_unique<ShardPrefetcher>(dataset, prefetch_depth)) {
  if (timesteps_ == 0) throw std::invalid_argument("BatchCursor: timesteps == 0");
  if (chunk_samples_ == 0) throw std::invalid_argument("BatchCursor: chunk_samples == 0");
}

BatchCursor::~BatchCursor() = default;

void BatchCursor::schedule_lookahead() {
  if (!prefetcher_->active()) return;
  // Hint the next `depth` chunks past the one about to be encoded. The
  // current chunk is never hinted — materialize_batch warms it synchronously
  // anyway, and the background worker would only race that warm.
  if (prefetch_next_ < next_start_) prefetch_next_ = next_start_;
  const std::size_t horizon =
      std::min(total_, next_start_ + prefetcher_->depth() * chunk_samples_);
  while (prefetch_next_ < horizon) {
    const std::size_t n = std::min(chunk_samples_, horizon - prefetch_next_);
    if (use_range_) {
      std::vector<std::size_t> hint(n);
      std::iota(hint.begin(), hint.end(), prefetch_next_);
      prefetcher_->enqueue(hint);
    } else {
      prefetcher_->enqueue(index_list_.subspan(prefetch_next_, n));
    }
    prefetch_next_ += n;
  }
}

bool BatchCursor::next() {
  if (next_start_ >= total_) return false;
  chunk_start_ = next_start_;
  chunk_size_ = std::min(chunk_samples_, total_ - chunk_start_);
  next_start_ = chunk_start_ + chunk_size_;
  if (use_range_) {
    range_indices_.resize(chunk_size_);
    std::iota(range_indices_.begin(), range_indices_.end(), chunk_start_);
  }
  // Queue lookahead before encoding, so the worker loads shards for the
  // *next* chunks while this chunk encodes and runs inference.
  schedule_lookahead();
  batch_ = materialize_batch(dataset_, indices(), timesteps_);
  return true;
}

std::span<const std::size_t> BatchCursor::indices() const {
  if (use_range_) return range_indices_;
  return index_list_.subspan(chunk_start_, chunk_size_);
}

// ------------------------------------------------------ ShuffledBatchSource

ShuffledBatchSource::ShuffledBatchSource(const Dataset& dataset, std::size_t batch_size,
                                         std::uint64_t seed)
    : dataset_(dataset), batch_size_(batch_size), seed_(seed), order_(dataset.size()) {
  if (batch_size_ == 0) throw std::invalid_argument("ShuffledBatchSource: batch_size 0");
  for (std::size_t i = 0; i < order_.size(); ++i) order_[i] = i;
}

std::size_t ShuffledBatchSource::num_batches() const {
  return (order_.size() + batch_size_ - 1) / batch_size_;  // final batch may be ragged
}

snn::EncodedBatch ShuffledBatchSource::batch(std::size_t index,
                                             std::size_t timesteps) const {
  if (index >= num_batches()) {
    throw std::out_of_range("ShuffledBatchSource::batch index out of range");
  }
  const std::size_t begin = index * batch_size_;
  const std::size_t b = std::min(batch_size_, order_.size() - begin);
  const std::span<const std::size_t> slice(order_.data() + begin, b);
  return materialize_batch(dataset_, slice, timesteps);
}

void ShuffledBatchSource::reshuffle(std::size_t epoch) {
  // A pure function of (seed, epoch): the order never depends on how many
  // epochs were drawn before, so replicas and resumed runs agree.
  std::vector<std::size_t> order(order_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  util::Rng rng(seed_ ^ (0x9e3779b97f4a7c15ull * (epoch + 1)));
  rng.shuffle(order);
  order_ = std::move(order);
}

}  // namespace dtsnn::data
