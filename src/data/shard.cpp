#include "data/shard.h"

#include <array>
#include <cstring>
#include <fstream>

#include "data/dataset.h"
#include "util/logging.h"

namespace dtsnn::data {

namespace {

constexpr std::array<char, 8> kMagic = {'D', 'T', 'S', 'N', 'S', 'H', 'R', 'D'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kFixedHeaderBytes = 56;

// Byte offsets of the fixed header fields (format v1) — every diagnostic
// names the field and its offset so a corrupt shard can be inspected with a
// hex dump without consulting this file.
constexpr std::size_t kOffVersion = 8;
constexpr std::size_t kOffShapeC = 12;
constexpr std::size_t kOffShapeH = 16;
constexpr std::size_t kOffShapeW = 20;
constexpr std::size_t kOffFramesPerSample = 24;
constexpr std::size_t kOffNumClasses = 28;
constexpr std::size_t kOffNoiseSeed = 32;
constexpr std::size_t kOffNumSamples = 40;
constexpr std::size_t kOffShardIndex = 48;
constexpr std::size_t kOffShardCount = 52;

std::string field_at(const char* field, std::size_t offset) {
  return std::string("field '") + field + "' at byte offset " + std::to_string(offset);
}

template <typename T>
void put(std::ofstream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T get(std::ifstream& in, const std::filesystem::path& path, const char* field,
      std::size_t offset) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) {
    throw ShardError(ShardError::Kind::kTruncated,
                     "shard " + path.string() + ": header ends prematurely reading " +
                         field_at(field, offset) + " (need " + std::to_string(sizeof(T)) +
                         " bytes)");
  }
  return value;
}

void require_header(bool ok, const std::filesystem::path& path, const char* field,
                    std::size_t offset, const std::string& why) {
  if (!ok) {
    throw ShardError(ShardError::Kind::kCorruptHeader,
                     "shard " + path.string() + ": degenerate header geometry: " +
                         field_at(field, offset) + " " + why);
  }
}

template <typename T>
void write_column(std::ofstream& out, const std::vector<T>& column) {
  out.write(reinterpret_cast<const char*>(column.data()),
            static_cast<std::streamsize>(column.size() * sizeof(T)));
}

template <typename T>
void read_column(std::ifstream& in, std::vector<T>& column, std::size_t count,
                 const std::filesystem::path& path, const char* what,
                 std::size_t offset) {
  column.resize(count);
  in.read(reinterpret_cast<char*>(column.data()),
          static_cast<std::streamsize>(count * sizeof(T)));
  if (!in) {
    throw ShardError(ShardError::Kind::kTruncated,
                     "shard " + path.string() + ": " + what +
                         " column truncated at byte offset " + std::to_string(offset) +
                         " (need " + std::to_string(count * sizeof(T)) + " bytes)");
  }
}

}  // namespace

std::size_t ShardHeader::payload_bytes() const {
  return frames_floats() * sizeof(float) + num_samples * sizeof(std::int32_t) +
         num_samples * sizeof(double) + num_samples * sizeof(float);
}

// ------------------------------------------------------------- ShardWriter

ShardWriter::ShardWriter(std::filesystem::path path, ShardHeader header)
    : path_(std::move(path)), header_(std::move(header)) {
  header_.num_samples = 0;
  if (header_.frame_shape.size() != 3 || header_.frame_numel() == 0 ||
      header_.frames_per_sample == 0 || header_.num_classes == 0) {
    throw ShardError(ShardError::Kind::kCorruptHeader,
                     "shard " + path_.string() + ": degenerate header geometry");
  }
}

ShardWriter::~ShardWriter() {
  // Deliberately no implicit finish(): if an exception unwinds past a
  // partially-filled writer, a truncated-but-valid-looking shard must not
  // reach disk (it would read back as a silently shortened split).
  if (!finished_) {
    DTSNN_LOG_WARN("ShardWriter: %s abandoned without finish(), nothing written",
                   path_.string().c_str());
  }
}

void ShardWriter::add_sample(std::span<const float> frames, int label, double difficulty,
                             float temporal_noise) {
  if (finished_) {
    throw std::logic_error("ShardWriter::add_sample after finish()");
  }
  if (frames.size() != header_.frames_per_sample * header_.frame_numel()) {
    throw std::invalid_argument("ShardWriter::add_sample: frame data has " +
                                std::to_string(frames.size()) + " floats, expected " +
                                std::to_string(header_.frames_per_sample *
                                               header_.frame_numel()));
  }
  if (label < 0 || static_cast<std::size_t>(label) >= header_.num_classes) {
    throw std::invalid_argument("ShardWriter::add_sample: label out of range");
  }
  frames_.insert(frames_.end(), frames.begin(), frames.end());
  labels_.push_back(label);
  difficulty_.push_back(difficulty);
  temporal_noise_.push_back(temporal_noise);
}

void ShardWriter::finish() {
  if (finished_) return;
  header_.num_samples = labels_.size();
  if (header_.num_samples == 0) {
    // A zero-sample shard is unreadable by contract (the reader rejects it
    // as a corrupt header), so refuse to write one.
    throw ShardError(ShardError::Kind::kCorruptHeader,
                     "shard " + path_.string() + ": no samples added");
  }

  // Crash safety: write the complete file to a `.tmp` sibling, then rename
  // onto the final path. rename() within one directory is atomic, so the
  // final path never exposes a partially-written shard — an interrupted
  // export leaves only a `.tmp` leftover, which no reader or directory scan
  // ever picks up.
  const std::filesystem::path tmp(path_.string() + ".tmp");
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw ShardError(ShardError::Kind::kIo, "shard " + path_.string() +
                                                  ": cannot open temporary file " +
                                                  tmp.string() + " for writing");
    }
    out.write(kMagic.data(), kMagic.size());
    put<std::uint32_t>(out, kVersion);
    for (const std::size_t dim : header_.frame_shape) {
      put<std::uint32_t>(out, static_cast<std::uint32_t>(dim));
    }
    put<std::uint32_t>(out, static_cast<std::uint32_t>(header_.frames_per_sample));
    put<std::uint32_t>(out, static_cast<std::uint32_t>(header_.num_classes));
    put<std::uint64_t>(out, header_.noise_seed);
    put<std::uint64_t>(out, static_cast<std::uint64_t>(header_.num_samples));
    put<std::uint32_t>(out, static_cast<std::uint32_t>(header_.shard_index));
    put<std::uint32_t>(out, static_cast<std::uint32_t>(header_.shard_count));
    write_column(out, frames_);
    std::vector<std::int32_t> labels32(labels_.begin(), labels_.end());
    write_column(out, labels32);
    write_column(out, difficulty_);
    write_column(out, temporal_noise_);
    out.close();
    if (!out) {
      std::error_code ignored;
      std::filesystem::remove(tmp, ignored);
      throw ShardError(ShardError::Kind::kIo, "shard " + path_.string() +
                                                  ": write to temporary file " +
                                                  tmp.string() + " failed");
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path_, ec);
  if (ec) {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    throw ShardError(ShardError::Kind::kIo, "shard " + path_.string() +
                                                ": atomic rename from " + tmp.string() +
                                                " failed: " + ec.message());
  }
  // Marked written only on success, so a failed finish() (full disk, ...)
  // can be retried instead of silently no-opping.
  finished_ = true;
}

// ------------------------------------------------------------- ShardReader

ShardReader::ShardReader(std::filesystem::path path) : path_(std::move(path)) {
  std::ifstream in(path_, std::ios::binary);
  if (!in) {
    throw ShardError(ShardError::Kind::kIo, "shard " + path_.string() + ": cannot open");
  }
  std::array<char, 8> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) {
    throw ShardError(ShardError::Kind::kBadMagic,
                     "shard " + path_.string() + ": bad magic (not a DT-SNN shard file)");
  }
  const auto version = get<std::uint32_t>(in, path_, "version", kOffVersion);
  if (version != kVersion) {
    throw ShardError(ShardError::Kind::kBadVersion,
                     "shard " + path_.string() + ": unsupported format version " +
                         std::to_string(version) + " (expected " +
                         std::to_string(kVersion) + ", " +
                         field_at("version", kOffVersion) + ")");
  }
  header_.frame_shape.resize(3);
  header_.frame_shape[0] = get<std::uint32_t>(in, path_, "frame shape C", kOffShapeC);
  header_.frame_shape[1] = get<std::uint32_t>(in, path_, "frame shape H", kOffShapeH);
  header_.frame_shape[2] = get<std::uint32_t>(in, path_, "frame shape W", kOffShapeW);
  header_.frames_per_sample =
      get<std::uint32_t>(in, path_, "frames_per_sample", kOffFramesPerSample);
  header_.num_classes = get<std::uint32_t>(in, path_, "num_classes", kOffNumClasses);
  header_.noise_seed = get<std::uint64_t>(in, path_, "noise_seed", kOffNoiseSeed);
  header_.num_samples = static_cast<std::size_t>(
      get<std::uint64_t>(in, path_, "num_samples", kOffNumSamples));
  header_.shard_index = get<std::uint32_t>(in, path_, "shard_index", kOffShardIndex);
  header_.shard_count = get<std::uint32_t>(in, path_, "shard_count", kOffShardCount);

  require_header(header_.frame_numel() != 0, path_, "frame shape C*H*W", kOffShapeC,
                 "must be nonzero in every dimension");
  require_header(header_.frames_per_sample != 0, path_, "frames_per_sample",
                 kOffFramesPerSample, "must be nonzero");
  require_header(header_.num_classes != 0, path_, "num_classes", kOffNumClasses,
                 "must be nonzero");
  require_header(header_.num_samples != 0, path_, "num_samples", kOffNumSamples,
                 "must be nonzero");
  require_header(header_.shard_count != 0, path_, "shard_count", kOffShardCount,
                 "must be nonzero");
  require_header(header_.shard_index < header_.shard_count, path_, "shard_index",
                 kOffShardIndex,
                 "is " + std::to_string(header_.shard_index) +
                     " but shard_count (byte offset " + std::to_string(kOffShardCount) +
                     ") is " + std::to_string(header_.shard_count));

  const std::uintmax_t actual = std::filesystem::file_size(path_);
  const std::uintmax_t expected = kFixedHeaderBytes + header_.payload_bytes();
  if (actual != expected) {
    throw ShardError(ShardError::Kind::kTruncated,
                     "shard " + path_.string() + ": file is " + std::to_string(actual) +
                         " bytes but the header promises " + std::to_string(expected) +
                         (actual < expected ? " (truncated payload)" : " (trailing bytes)"));
  }
}

void ShardReader::read_metadata(std::vector<int>& labels, std::vector<double>& difficulty,
                                std::vector<float>& temporal_noise) const {
  std::ifstream in(path_, std::ios::binary);
  if (!in) {
    throw ShardError(ShardError::Kind::kIo, "shard " + path_.string() + ": cannot open");
  }
  const std::size_t labels_off =
      kFixedHeaderBytes + header_.frames_floats() * sizeof(float);
  const std::size_t difficulty_off =
      labels_off + header_.num_samples * sizeof(std::int32_t);
  const std::size_t noise_off = difficulty_off + header_.num_samples * sizeof(double);
  in.seekg(static_cast<std::streamoff>(labels_off));
  std::vector<std::int32_t> labels32;
  read_column(in, labels32, header_.num_samples, path_, "label", labels_off);
  labels.assign(labels32.begin(), labels32.end());
  read_column(in, difficulty, header_.num_samples, path_, "difficulty", difficulty_off);
  read_column(in, temporal_noise, header_.num_samples, path_, "temporal_noise", noise_off);
}

std::vector<float> ShardReader::read_frames() const {
  std::ifstream in(path_, std::ios::binary);
  if (!in) {
    throw ShardError(ShardError::Kind::kIo, "shard " + path_.string() + ": cannot open");
  }
  in.seekg(static_cast<std::streamoff>(kFixedHeaderBytes));
  std::vector<float> frames;
  read_column(in, frames, header_.frames_floats(), path_, "frame", kFixedHeaderBytes);
  return frames;
}

ShardFrames ShardReader::map_frames(ShardIo io) const {
  ShardFrames block;
  const bool map_it =
      io == ShardIo::kMapped || (io == ShardIo::kAuto && util::MappedFile::mmap_supported());
  if (!map_it) {
    block.buffer_ = read_frames();
    block.frames_ = std::span<const float>(block.buffer_.data(), block.buffer_.size());
    return block;
  }

  try {
    block.file_ = util::MappedFile(path_, util::MappedFile::Mode::kMapped);
  } catch (const std::runtime_error& e) {
    throw ShardError(ShardError::Kind::kIo, e.what());
  }
  // The size was validated at ShardReader construction, but the mapping sees
  // the file as it is *now* — re-check so a shard replaced/truncated in
  // between cannot hand out a span past the end of the mapping.
  const std::size_t expected = kFixedHeaderBytes + header_.payload_bytes();
  if (block.file_.size() != expected) {
    throw ShardError(ShardError::Kind::kTruncated,
                     "shard " + path_.string() + ": file is " +
                         std::to_string(block.file_.size()) +
                         " bytes at map time but the header promised " +
                         std::to_string(expected) + " (changed since open)");
  }
  // Byte 56 is a multiple of alignof(float), so the frame block is aligned.
  block.frames_ = std::span<const float>(
      reinterpret_cast<const float*>(block.file_.data() + kFixedHeaderBytes),
      header_.frames_floats());
  // Kick off asynchronous readahead: without this, the lazily-faulting
  // mapping would defer all disk I/O to the consumer's first touch and the
  // prefetcher would overlap nothing.
  block.file_.advise_willneed();
  return block;
}

// ------------------------------------------------------------ export_shards

std::size_t export_shards(const ArrayDataset& dataset, const std::filesystem::path& dir,
                          std::size_t samples_per_shard) {
  if (samples_per_shard == 0) {
    throw std::invalid_argument("export_shards: samples_per_shard == 0");
  }
  if (dataset.size() == 0) {
    throw std::invalid_argument("export_shards: empty dataset");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    throw ShardError(ShardError::Kind::kIo,
                     "export_shards: cannot create " + dir.string() + ": " + ec.message());
  }
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::filesystem::path& p = entry.path();
    const bool stale_tmp =
        p.extension() == ".tmp" && p.stem().extension() == kShardExtension;
    if (p.extension() == kShardExtension || stale_tmp) {
      std::filesystem::remove(p);
    }
  }

  ShardHeader header;
  header.frame_shape = dataset.frame_shape();
  header.frames_per_sample = dataset.native_frames();
  header.num_classes = dataset.num_classes();
  header.noise_seed = dataset.noise_seed();

  const std::size_t frame_numel = snn::shape_numel(header.frame_shape);
  std::vector<float> frames(header.frames_per_sample * frame_numel);
  const std::size_t shards =
      (dataset.size() + samples_per_shard - 1) / samples_per_shard;
  header.shard_count = shards;
  for (std::size_t shard = 0; shard < shards; ++shard) {
    char name[64];
    std::snprintf(name, sizeof(name), "shard_%05zu%s", shard, kShardExtension);
    header.shard_index = shard;
    ShardWriter writer(dir / name, header);
    const std::size_t first = shard * samples_per_shard;
    const std::size_t count = std::min(samples_per_shard, dataset.size() - first);
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t sample = first + i;
      for (std::size_t f = 0; f < header.frames_per_sample; ++f) {
        const auto src = dataset.frame_data(sample, f);
        std::copy(src.begin(), src.end(), frames.begin() + static_cast<std::ptrdiff_t>(f * frame_numel));
      }
      writer.add_sample(frames, dataset.label(sample), dataset.difficulty(sample),
                        dataset.temporal_noise(sample));
    }
    writer.finish();
  }
  return shards;
}

}  // namespace dtsnn::data
