// Dataset abstractions.
//
// A Dataset yields per-sample frames. Static image datasets expose a single
// frame which the encoder repeats at every timestep (the paper's direct
// encoding, where the first conv+LIF block g_1 learns the spike code); event
// (DVS-like) datasets expose a distinct frame per timestep.
//
// Storage is decoupled from the logical sample space: ArrayDataset holds
// everything in one contiguous array, ShardedDataset (data/sharded_dataset.h)
// pages frame blocks through a bounded cache. Consumers stream chunks via
// BatchCursor / materialize_batch and never need the whole split encoded at
// once, so datasets larger than RAM evaluate and serve out of the box.
//
// Every synthetic sample also carries a scalar difficulty in [0,1] used by
// the Fig. 8 visualization and by dataset-quality tests — it is *not*
// visible to the models.

#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "snn/tensor.h"
#include "snn/trainer.h"
#include "util/rng.h"

namespace dtsnn::data {

namespace detail {

/// The one definition of the deterministic per-(sample, timestep) sensor
/// noise stream: keyed by (seed, *global* sample index, timestep), so any
/// storage backend serving the same sample produces bitwise-identical
/// frames. This models per-timestep analog encoding noise: temporal
/// integration over more timesteps averages it away, which is what makes
/// extra timesteps informative for direct-encoded images.
inline void apply_temporal_noise(std::span<float> frame, float sigma,
                                 std::uint64_t seed, std::size_t sample,
                                 std::size_t t) {
  if (sigma <= 0.0f) return;
  util::Rng rng(seed ^ (sample * 0x9e3779b97f4a7c15ull) ^
                (t * 0xc2b2ae3d27d4eb4full));
  for (auto& v : frame) v += sigma * static_cast<float>(rng.gaussian());
}

}  // namespace detail

/// Storage footprint and cache behavior of a dataset (storage_stats()).
/// Fully-resident datasets report logical == resident and zero cache
/// counters; storage-backed datasets report their live cache state.
struct DatasetStorageStats {
  std::size_t logical_bytes = 0;        ///< full payload (all frames + metadata)
  std::size_t resident_bytes = 0;       ///< currently held in memory
  std::size_t peak_resident_bytes = 0;  ///< high-water mark of resident_bytes
  std::size_t shard_count = 0;          ///< 0 for unsharded storage
  std::size_t cache_slots = 0;          ///< 0 when storage is fully resident
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::size_t cache_evictions = 0;

  [[nodiscard]] double hit_rate() const {
    const std::size_t touches = cache_hits + cache_misses;
    return touches ? static_cast<double>(cache_hits) / static_cast<double>(touches)
                   : 0.0;
  }
};

class Dataset {
 public:
  virtual ~Dataset() = default;

  [[nodiscard]] virtual std::size_t size() const = 0;
  [[nodiscard]] virtual std::size_t num_classes() const = 0;
  /// Per-frame shape [C, H, W].
  [[nodiscard]] virtual snn::Shape frame_shape() const = 0;
  [[nodiscard]] virtual int label(std::size_t sample) const = 0;
  [[nodiscard]] virtual double difficulty(std::size_t sample) const = 0;
  /// Number of native frames (1 for static images, T for event streams).
  [[nodiscard]] virtual std::size_t native_frames() const = 0;

  /// Write frame `t` of `sample` into `dst` (size = numel of frame_shape).
  /// Static datasets ignore `t`; event datasets clamp t to native_frames-1.
  /// Const access is thread-safe on every implementation (the evaluation
  /// workers and the serving worker share one dataset).
  virtual void write_frame(std::size_t sample, std::size_t t,
                           std::span<float> dst) const = 0;

  /// Hint that `samples` are about to be read: storage-backed datasets warm
  /// their caches so the subsequent write_frame calls hit. Default no-op.
  virtual void prefetch(std::span<const std::size_t> samples) const {
    (void)samples;
  }

  /// Footprint + cache counters; the default assumes fully-resident storage.
  [[nodiscard]] virtual DatasetStorageStats storage_stats() const;
};

/// Concrete in-memory dataset; produced by the synthetic generators.
class ArrayDataset final : public Dataset {
 public:
  ArrayDataset(snn::Shape frame_shape, std::size_t frames_per_sample,
               std::size_t num_classes);

  /// Append one sample (frames laid out frame-major). Returns its index.
  /// The frame vector must hold exactly frames_per_sample * frame_numel
  /// floats (anything else throws — a short vector would silently corrupt
  /// every later sample's reads). `temporal_noise` adds i.i.d. Gaussian
  /// sensor noise of that stddev to every (timestep, pixel) when frames are
  /// read back — deterministic per (sample, timestep), see
  /// detail::apply_temporal_noise.
  std::size_t add_sample(std::vector<float> frames, int label, double difficulty,
                         double temporal_noise = 0.0);

  /// Seed of the deterministic per-timestep noise stream.
  void set_noise_seed(std::uint64_t seed) { noise_seed_ = seed; }
  [[nodiscard]] std::uint64_t noise_seed() const { return noise_seed_; }
  /// Per-sample sensor-noise stddev (exported into shard files).
  [[nodiscard]] float temporal_noise(std::size_t sample) const {
    return temporal_noise_.at(sample);
  }

  [[nodiscard]] std::size_t size() const override { return labels_.size(); }
  [[nodiscard]] std::size_t num_classes() const override { return num_classes_; }
  [[nodiscard]] snn::Shape frame_shape() const override { return frame_shape_; }
  [[nodiscard]] int label(std::size_t sample) const override { return labels_.at(sample); }
  [[nodiscard]] double difficulty(std::size_t sample) const override {
    return difficulty_.at(sample);
  }
  [[nodiscard]] std::size_t native_frames() const override { return frames_per_sample_; }
  void write_frame(std::size_t sample, std::size_t t, std::span<float> dst) const override;

  /// Direct read access to a stored frame (raw, pre-noise; for visualization
  /// and shard export).
  [[nodiscard]] std::span<const float> frame_data(std::size_t sample, std::size_t t) const;

 private:
  snn::Shape frame_shape_;
  std::size_t frame_numel_;
  std::size_t frames_per_sample_;
  std::size_t num_classes_;
  std::uint64_t noise_seed_ = 0x5e15e15e1ull;
  std::vector<float> data_;
  std::vector<int> labels_;
  std::vector<double> difficulty_;
  std::vector<float> temporal_noise_;
};

/// Encode samples `indices` into a time-major batch [T*B, C, H, W]. Prefetches
/// the indices first, so storage-backed datasets page each chunk in once.
/// Throws std::invalid_argument for empty `indices` or timesteps == 0 (a
/// zero-sized encoded tensor is never meaningful downstream).
snn::EncodedBatch materialize_batch(const Dataset& dataset,
                                    std::span<const std::size_t> indices,
                                    std::size_t timesteps);

class ShardPrefetcher;

/// Streaming chunked iteration over dataset samples: encodes at most
/// `chunk_samples` samples at a time, so consumers hold one chunk of encoded
/// frames instead of the whole split (O(chunk), not O(dataset)) and
/// storage-backed datasets page shards through their cache chunk by chunk.
///
///   BatchCursor cursor(dataset, n, timesteps, 256);
///   while (cursor.next()) {
///     use(cursor.batch());             // [T*b, C, H, W] for this chunk
///     scatter_at(cursor.start());      // chunk offset within the sequence
///   }
///
/// Iterates either samples [0, count) or an explicit index list (borrowed —
/// it must outlive the cursor).
///
/// The cursor runs a background ShardPrefetcher for the cursor's lifetime:
/// before encoding chunk k it hints chunks (k, k + depth], so a
/// storage-backed dataset overlaps the next shard loads with this chunk's
/// encode + inference. `prefetch_depth` = nullopt defers to the
/// DTSNN_PREFETCH_DEPTH environment variable (0 disables; default
/// ShardPrefetcher::kDefaultDepth); fully-resident datasets spawn no thread.
/// Encoded chunks are bitwise identical with prefetch on or off.
class BatchCursor {
 public:
  BatchCursor(const Dataset& dataset, std::span<const std::size_t> indices,
              std::size_t timesteps, std::size_t chunk_samples,
              std::optional<std::size_t> prefetch_depth = std::nullopt);
  /// Range form over samples [0, count).
  BatchCursor(const Dataset& dataset, std::size_t count, std::size_t timesteps,
              std::size_t chunk_samples,
              std::optional<std::size_t> prefetch_depth = std::nullopt);
  ~BatchCursor();  // out-of-line: ShardPrefetcher is incomplete here
  BatchCursor(const BatchCursor&) = delete;
  BatchCursor& operator=(const BatchCursor&) = delete;

  /// Encode the next chunk; false once the sequence is exhausted.
  bool next();

  /// The current chunk's encoded batch (valid after next() returned true).
  [[nodiscard]] const snn::EncodedBatch& batch() const { return batch_; }
  /// Global dataset indices of the current chunk.
  [[nodiscard]] std::span<const std::size_t> indices() const;
  /// Offset of the current chunk within the iterated sequence.
  [[nodiscard]] std::size_t start() const { return chunk_start_; }
  [[nodiscard]] std::size_t chunk_size() const { return chunk_size_; }
  /// Total samples the cursor will yield across all chunks.
  [[nodiscard]] std::size_t total() const { return total_; }

 private:
  /// Hint upcoming chunks (up to depth chunks past the current one) to the
  /// background prefetcher. No-op when the prefetcher is inactive.
  void schedule_lookahead();

  const Dataset& dataset_;
  std::span<const std::size_t> index_list_;  ///< empty in range form
  bool use_range_;
  std::vector<std::size_t> range_indices_;   ///< scratch for range chunks
  std::size_t total_;
  std::size_t timesteps_;
  std::size_t chunk_samples_;
  std::size_t next_start_ = 0;
  std::size_t chunk_start_ = 0;
  std::size_t chunk_size_ = 0;
  std::size_t prefetch_next_ = 0;  ///< first sequence position not yet hinted
  std::unique_ptr<ShardPrefetcher> prefetcher_;
  snn::EncodedBatch batch_;
};

/// BatchSource over a Dataset with per-epoch reshuffling. The final batch may
/// be ragged (smaller than batch_size): every epoch covers every sample
/// exactly once.
class ShuffledBatchSource final : public snn::BatchSource {
 public:
  ShuffledBatchSource(const Dataset& dataset, std::size_t batch_size, std::uint64_t seed);

  [[nodiscard]] std::size_t num_batches() const override;
  [[nodiscard]] snn::EncodedBatch batch(std::size_t index,
                                        std::size_t timesteps) const override;
  void reshuffle(std::size_t epoch) override;

 private:
  const Dataset& dataset_;
  std::size_t batch_size_;
  std::uint64_t seed_;
  std::vector<std::size_t> order_;
};

}  // namespace dtsnn::data
