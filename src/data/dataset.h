// Dataset abstractions.
//
// A Dataset yields per-sample frames. Static image datasets expose a single
// frame which the encoder repeats at every timestep (the paper's direct
// encoding, where the first conv+LIF block g_1 learns the spike code); event
// (DVS-like) datasets expose a distinct frame per timestep.
//
// Every synthetic sample also carries a scalar difficulty in [0,1] used by
// the Fig. 8 visualization and by dataset-quality tests — it is *not*
// visible to the models.

#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "snn/tensor.h"
#include "snn/trainer.h"
#include "util/rng.h"

namespace dtsnn::data {

class Dataset {
 public:
  virtual ~Dataset() = default;

  [[nodiscard]] virtual std::size_t size() const = 0;
  [[nodiscard]] virtual std::size_t num_classes() const = 0;
  /// Per-frame shape [C, H, W].
  [[nodiscard]] virtual snn::Shape frame_shape() const = 0;
  [[nodiscard]] virtual int label(std::size_t sample) const = 0;
  [[nodiscard]] virtual double difficulty(std::size_t sample) const = 0;
  /// Number of native frames (1 for static images, T for event streams).
  [[nodiscard]] virtual std::size_t native_frames() const = 0;

  /// Write frame `t` of `sample` into `dst` (size = numel of frame_shape).
  /// Static datasets ignore `t`; event datasets clamp t to native_frames-1.
  virtual void write_frame(std::size_t sample, std::size_t t,
                           std::span<float> dst) const = 0;
};

/// Concrete in-memory dataset; produced by the synthetic generators.
class ArrayDataset final : public Dataset {
 public:
  ArrayDataset(snn::Shape frame_shape, std::size_t frames_per_sample,
               std::size_t num_classes);

  /// Append one sample (frames laid out frame-major). Returns its index.
  /// `temporal_noise` adds i.i.d. Gaussian sensor noise of that stddev to
  /// every (timestep, pixel) when frames are read back — deterministic per
  /// (sample, timestep), so repeated reads and different engines see the
  /// same encoded input. This models per-timestep analog encoding noise:
  /// temporal integration over more timesteps averages it away, which is
  /// what makes extra timesteps informative for direct-encoded images.
  std::size_t add_sample(std::vector<float> frames, int label, double difficulty,
                         double temporal_noise = 0.0);

  /// Seed of the deterministic per-timestep noise stream.
  void set_noise_seed(std::uint64_t seed) { noise_seed_ = seed; }

  [[nodiscard]] std::size_t size() const override { return labels_.size(); }
  [[nodiscard]] std::size_t num_classes() const override { return num_classes_; }
  [[nodiscard]] snn::Shape frame_shape() const override { return frame_shape_; }
  [[nodiscard]] int label(std::size_t sample) const override { return labels_.at(sample); }
  [[nodiscard]] double difficulty(std::size_t sample) const override {
    return difficulty_.at(sample);
  }
  [[nodiscard]] std::size_t native_frames() const override { return frames_per_sample_; }
  void write_frame(std::size_t sample, std::size_t t, std::span<float> dst) const override;

  /// Direct read access to a stored frame (for visualization).
  [[nodiscard]] std::span<const float> frame_data(std::size_t sample, std::size_t t) const;

 private:
  snn::Shape frame_shape_;
  std::size_t frame_numel_;
  std::size_t frames_per_sample_;
  std::size_t num_classes_;
  std::uint64_t noise_seed_ = 0x5e15e15e1ull;
  std::vector<float> data_;
  std::vector<int> labels_;
  std::vector<double> difficulty_;
  std::vector<float> temporal_noise_;
};

/// Encode samples `indices` into a time-major batch [T*B, C, H, W].
/// Throws std::invalid_argument for empty `indices` or timesteps == 0 (a
/// zero-sized encoded tensor is never meaningful downstream).
snn::EncodedBatch materialize_batch(const Dataset& dataset,
                                    std::span<const std::size_t> indices,
                                    std::size_t timesteps);

/// Encode the whole dataset (or its first `limit` samples) as one batch.
snn::EncodedBatch materialize_all(const Dataset& dataset, std::size_t timesteps,
                                  std::size_t limit = 0);

/// BatchSource over a Dataset with per-epoch reshuffling.
class ShuffledBatchSource final : public snn::BatchSource {
 public:
  ShuffledBatchSource(const Dataset& dataset, std::size_t batch_size, std::uint64_t seed);

  [[nodiscard]] std::size_t num_batches() const override;
  [[nodiscard]] snn::EncodedBatch batch(std::size_t index,
                                        std::size_t timesteps) const override;
  void reshuffle(std::size_t epoch) override;

 private:
  const Dataset& dataset_;
  std::size_t batch_size_;
  std::uint64_t seed_;
  std::vector<std::size_t> order_;
};

}  // namespace dtsnn::data
