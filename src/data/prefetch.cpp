#include "data/prefetch.h"

#include <exception>

#include "util/env.h"
#include "util/logging.h"

namespace dtsnn::data {

ShardPrefetcher::ShardPrefetcher(const Dataset& dataset, std::optional<std::size_t> depth)
    : dataset_(dataset) {
  if (depth.has_value()) {
    depth_ = *depth;
  } else if (const auto env = util::env_u64("DTSNN_PREFETCH_DEPTH")) {
    depth_ = static_cast<std::size_t>(*env);
  } else {
    depth_ = kDefaultDepth;
  }
  // Fully-resident storage (cache_slots == 0) has nothing to warm; don't
  // spend a thread on it.
  active_ = depth_ > 0 && dataset_.storage_stats().cache_slots > 0;
  if (active_) {
    worker_ = util::Thread([this] { worker_loop(); });
  }
}

ShardPrefetcher::~ShardPrefetcher() {
  {
    util::MutexLock lk(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  // worker_'s destructor joins; queued hints are abandoned (they are hints).
}

void ShardPrefetcher::enqueue(std::span<const std::size_t> samples) {
  if (!active_ || samples.empty()) return;
  {
    util::MutexLock lk(mu_);
    if (stopping_) return;
    if (queue_.size() == depth_) {
      // The consumer has outrun this hint; the newest request wins.
      queue_.pop_front();
      ++stats_.dropped;
    }
    queue_.emplace_back(samples.begin(), samples.end());
    ++stats_.enqueued;
  }
  cv_.notify_all();
}

void ShardPrefetcher::wait_idle() {
  if (!active_) return;
  util::MutexLock lk(mu_);
  while (!stopping_ && (busy_ || !queue_.empty())) cv_.wait(lk);
}

ShardPrefetcher::Stats ShardPrefetcher::stats() const {
  util::MutexLock lk(mu_);
  return stats_;
}

void ShardPrefetcher::worker_loop() {
  for (;;) {
    std::vector<std::size_t> hint;
    {
      util::MutexLock lk(mu_);
      while (!stopping_ && queue_.empty()) cv_.wait(lk);
      if (stopping_) return;
      hint = std::move(queue_.front());
      queue_.pop_front();
      busy_ = true;
    }
    try {
      dataset_.prefetch(hint);
    } catch (const std::exception& e) {
      // Advisory by contract: the consumer's own read will surface a real
      // storage failure loudly; a failed warm only loses the overlap.
      DTSNN_LOG_WARN("ShardPrefetcher: background prefetch failed: %s", e.what());
    }
    {
      util::MutexLock lk(mu_);
      busy_ = false;
      ++stats_.completed;
      cv_.notify_all();  // wait_idle barrier
    }
  }
}

}  // namespace dtsnn::data
