// Synthetic event-stream (DVS-like) dataset.
//
// Substitute for CIFAR10-DVS (see DESIGN.md §4): each sample is a sequence of
// T sparse binary event frames with ON/OFF polarity channels. Events are
// drawn where a drifting class prototype has strong positive (ON) or
// negative (OFF) local change, mimicking how a dynamic vision sensor converts
// a moving stimulus into polarity events. Per-sample difficulty controls the
// event rate of the signal versus background noise events.

#pragma once

#include "data/dataset.h"
#include "data/synthetic.h"

namespace dtsnn::data {

struct DvsSpec {
  std::string name = "syndvs";
  std::size_t classes = 10;
  std::size_t height = 16;
  std::size_t width = 16;
  std::size_t timesteps = 10;  ///< native event frames per sample (paper: T=10)
  std::size_t train_samples = 3072;
  std::size_t test_samples = 768;
  std::size_t prototype_cells = 4;
  /// Peak per-pixel event probability of the signal at difficulty 0.
  double signal_rate = 0.65;
  /// Signal rate multiplier at difficulty 1 (harder = fewer signal events).
  double signal_drop = 0.75;
  /// Background noise event probability at difficulty 1.
  double noise_rate = 0.15;
  double difficulty_skew = 2.0;
  std::uint64_t seed = 23;
};

/// Generate train+test event-stream splits sharing class prototypes.
/// Frames have 2 channels (ON / OFF polarity).
SyntheticBundle make_synthetic_dvs(const DvsSpec& spec);

/// Preset matching the paper's CIFAR10-DVS role; `size_scale` scales counts.
DvsSpec dvs_preset(double size_scale = 1.0);

}  // namespace dtsnn::data
