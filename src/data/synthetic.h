// Synthetic class-prototype vision datasets.
//
// Substitute for CIFAR-10 / CIFAR-100 / TinyImageNet (none of which are
// available offline — see DESIGN.md §4). Each class has a smooth random
// prototype; a sample blends its class prototype with clutter from other
// classes and pixel noise, with the blend controlled by a per-sample
// *difficulty* drawn from a right-skewed distribution (most samples easy,
// a tail of hard ones). This reproduces the property DT-SNN exploits: the
// bulk of inputs are classifiable after one timestep while a minority need
// deeper temporal integration.

#pragma once

#include <string>

#include "data/dataset.h"

namespace dtsnn::data {

struct SyntheticSpec {
  std::string name = "sync10";
  std::size_t classes = 10;
  std::size_t channels = 3;
  std::size_t height = 16;
  std::size_t width = 16;
  std::size_t train_samples = 4096;
  std::size_t test_samples = 1024;
  /// Coarse grid size of the prototype's low-frequency pattern.
  std::size_t prototype_cells = 4;
  /// Strength of cross-class clutter at difficulty 1.
  double clutter = 0.9;
  /// Static (per-sample) pixel noise stddev at difficulty 1.
  double noise = 0.5;
  /// Per-timestep i.i.d. sensor-noise stddev (difficulty-scaled; small —
  /// it is spatially white, so spatial pooling already removes most of it).
  double temporal_noise = 0.4;
  /// Per-timestep *structured* clutter: each encoded frame adds a random
  /// other-class prototype with this amplitude (difficulty-scaled). Being
  /// spatially low-frequency, it survives spatial pooling and can only be
  /// averaged away over timesteps — the mechanism that makes hard inputs
  /// need more timesteps and powers the input-dependence of DT-SNN.
  double temporal_clutter = 0.9;
  /// Number of distinct encoded frames generated per sample (timesteps
  /// beyond this reuse the last frame).
  std::size_t frames = 8;
  /// Signal contrast range: contrast = 1 - contrast_drop * difficulty.
  double contrast_drop = 0.6;
  /// Difficulty ~ Beta-like skew: pow(U, difficulty_skew); >1 favors easy.
  double difficulty_skew = 2.2;
  std::uint64_t seed = 7;
};

struct SyntheticBundle {
  std::string name;
  std::unique_ptr<ArrayDataset> train;
  std::unique_ptr<ArrayDataset> test;
};

/// Generate train+test splits sharing the same class prototypes.
SyntheticBundle make_synthetic_vision(const SyntheticSpec& spec);

/// Named presets mirroring the paper's static-image benchmarks:
///   "sync10"  — 10 classes, 3x16x16   (stands in for CIFAR-10)
///   "sync100" — 20 classes, 3x16x16, more clutter (stands in for CIFAR-100;
///               class count reduced for CPU-scale training, see DESIGN.md)
///   "syntin"  — 20 classes, 3x20x20, hardest (stands in for TinyImageNet)
/// `size_scale` scales train/test sample counts (benches use <1 for speed).
SyntheticSpec synthetic_preset(const std::string& name, double size_scale = 1.0);

}  // namespace dtsnn::data
