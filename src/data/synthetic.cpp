#include "data/synthetic.h"

#include <cmath>
#include <stdexcept>

namespace dtsnn::data {

namespace {

/// Smooth low-frequency pattern: random values on a coarse grid, bilinearly
/// upsampled to HxW, one pattern per channel.
std::vector<float> make_prototype(const SyntheticSpec& spec, util::Rng& rng) {
  const std::size_t cells = spec.prototype_cells;
  std::vector<float> coarse(spec.channels * cells * cells);
  for (auto& v : coarse) v = static_cast<float>(rng.gaussian());

  std::vector<float> proto(spec.channels * spec.height * spec.width);
  for (std::size_t c = 0; c < spec.channels; ++c) {
    const float* grid = coarse.data() + c * cells * cells;
    float* out = proto.data() + c * spec.height * spec.width;
    for (std::size_t y = 0; y < spec.height; ++y) {
      // Map pixel center into coarse-grid coordinates.
      const double gy = (static_cast<double>(y) + 0.5) / static_cast<double>(spec.height) *
                            static_cast<double>(cells) -
                        0.5;
      const auto y0 = static_cast<std::ptrdiff_t>(std::floor(gy));
      const double fy = gy - static_cast<double>(y0);
      for (std::size_t x = 0; x < spec.width; ++x) {
        const double gx = (static_cast<double>(x) + 0.5) / static_cast<double>(spec.width) *
                              static_cast<double>(cells) -
                          0.5;
        const auto x0 = static_cast<std::ptrdiff_t>(std::floor(gx));
        const double fx = gx - static_cast<double>(x0);
        auto sample_grid = [&](std::ptrdiff_t yy, std::ptrdiff_t xx) -> double {
          yy = std::clamp<std::ptrdiff_t>(yy, 0, static_cast<std::ptrdiff_t>(cells) - 1);
          xx = std::clamp<std::ptrdiff_t>(xx, 0, static_cast<std::ptrdiff_t>(cells) - 1);
          return grid[yy * static_cast<std::ptrdiff_t>(cells) + xx];
        };
        const double v = (1 - fy) * ((1 - fx) * sample_grid(y0, x0) +
                                     fx * sample_grid(y0, x0 + 1)) +
                         fy * ((1 - fx) * sample_grid(y0 + 1, x0) +
                               fx * sample_grid(y0 + 1, x0 + 1));
        out[y * spec.width + x] = static_cast<float>(v);
      }
    }
  }
  return proto;
}

void fill_split(ArrayDataset& dataset, const SyntheticSpec& spec,
                const std::vector<std::vector<float>>& prototypes, util::Rng& rng,
                std::size_t count) {
  const std::size_t numel = spec.channels * spec.height * spec.width;
  std::vector<float> base(numel);
  std::vector<float> frames(spec.frames * numel);

  auto random_other = [&](std::size_t label) {
    std::size_t other = rng.uniform_int(spec.classes);
    while (spec.classes > 1 && other == label) other = rng.uniform_int(spec.classes);
    return other;
  };

  for (std::size_t i = 0; i < count; ++i) {
    const auto label = static_cast<int>(rng.uniform_int(spec.classes));
    // Right-skewed difficulty: most samples near 0 (easy).
    const double difficulty = std::pow(rng.uniform(), spec.difficulty_skew);
    const double contrast = 1.0 - spec.contrast_drop * difficulty;
    const double clutter_gain = spec.clutter * difficulty;
    const double noise_gain = spec.noise * difficulty;
    // Structured per-timestep clutter needs a floor so that easy samples
    // still benefit mildly from integration, plus a difficulty slope that
    // creates the band of inputs that fail at T=1 but succeed by T=3-4.
    const double flicker_gain = spec.temporal_clutter * (0.35 + 0.65 * difficulty);

    const auto& proto = prototypes[static_cast<std::size_t>(label)];
    const auto& mix = prototypes[random_other(static_cast<std::size_t>(label))];
    for (std::size_t p = 0; p < numel; ++p) {
      base[p] = static_cast<float>(contrast * proto[p] + clutter_gain * mix[p] +
                                   noise_gain * rng.gaussian());
    }
    // Encoded frames: base scene plus a *different* distractor prototype
    // flickering at every timestep. Temporal integration averages the
    // distractors toward their (common) mean; a single timestep cannot.
    for (std::size_t f = 0; f < spec.frames; ++f) {
      const auto& flicker =
          prototypes[random_other(static_cast<std::size_t>(label))];
      float* dst = frames.data() + f * numel;
      for (std::size_t p = 0; p < numel; ++p) {
        dst[p] = base[p] + static_cast<float>(flicker_gain) * flicker[p];
      }
    }
    const double temporal = spec.temporal_noise * (0.5 + 0.5 * difficulty);
    dataset.add_sample(frames, label, difficulty, temporal);
  }
}

}  // namespace

SyntheticBundle make_synthetic_vision(const SyntheticSpec& spec) {
  if (spec.classes < 2) throw std::invalid_argument("make_synthetic_vision: need >= 2 classes");
  util::Rng proto_rng(spec.seed);
  std::vector<std::vector<float>> prototypes;
  prototypes.reserve(spec.classes);
  for (std::size_t k = 0; k < spec.classes; ++k) {
    prototypes.push_back(make_prototype(spec, proto_rng));
  }

  SyntheticBundle bundle;
  bundle.name = spec.name;
  const snn::Shape frame{spec.channels, spec.height, spec.width};
  bundle.train = std::make_unique<ArrayDataset>(frame, spec.frames, spec.classes);
  bundle.test = std::make_unique<ArrayDataset>(frame, spec.frames, spec.classes);

  util::Rng train_rng = proto_rng.fork(1);
  util::Rng test_rng = proto_rng.fork(2);
  fill_split(*bundle.train, spec, prototypes, train_rng, spec.train_samples);
  fill_split(*bundle.test, spec, prototypes, test_rng, spec.test_samples);
  return bundle;
}

SyntheticSpec synthetic_preset(const std::string& name, double size_scale) {
  SyntheticSpec spec;
  spec.name = name;
  if (name == "sync10") {
    // Defaults above.
  } else if (name == "sync100") {
    spec.classes = 20;
    spec.clutter = 0.9;
    spec.noise = 0.6;
    spec.temporal_clutter = 1.0;
    spec.contrast_drop = 0.7;
    spec.difficulty_skew = 1.8;
    spec.seed = 11;
  } else if (name == "syntin") {
    spec.classes = 20;
    spec.height = 24;
    spec.width = 24;
    spec.clutter = 1.0;
    spec.noise = 0.7;
    spec.temporal_clutter = 1.1;
    spec.contrast_drop = 0.75;
    spec.difficulty_skew = 1.5;
    spec.seed = 13;
  } else {
    throw std::invalid_argument("synthetic_preset: unknown preset '" + name + "'");
  }
  spec.train_samples = static_cast<std::size_t>(
      std::max(64.0, static_cast<double>(spec.train_samples) * size_scale));
  spec.test_samples = static_cast<std::size_t>(
      std::max(64.0, static_cast<double>(spec.test_samples) * size_scale));
  return spec;
}

}  // namespace dtsnn::data
