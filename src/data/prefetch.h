// Background shard prefetcher — the async layer of the data plane.
//
// A ShardPrefetcher owns one worker thread (util::Thread on the annotated
// util::Mutex/CondVar primitives) that services *hints*: batches of sample
// indices the consumer will read soon. The worker calls
// Dataset::prefetch(hint) off the consumer's thread, so shard loads overlap
// the consumer's compute instead of serializing in front of it — the
// synchronous prefetch inside materialize_batch then finds the shards
// already resident (or mid-load, which it skips and the eventual pin
// coalesces onto).
//
// The hint queue is depth-bounded: when full, the *oldest* hint is dropped
// (the consumer has moved past it; prefetching it would evict useful
// shards). Hints are advisory end to end — enqueue never blocks, a dropped
// or failed hint only costs the overlap, and correctness always comes from
// the consumer's own pinned read.
//
// Consumers: data::BatchCursor (evaluation / collect_outputs) runs one
// cursor-lifetime prefetcher ahead of its chunks; serve::InferenceServer
// hints each admission cycle's samples; core::BatchedSequentialEngine hints
// the waiting tail of its request pool.

#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "data/dataset.h"
#include "util/sync.h"
#include "util/thread.h"
#include "util/thread_annotations.h"

namespace dtsnn::data {

class ShardPrefetcher {
 public:
  /// Queue depth used when neither the caller nor DTSNN_PREFETCH_DEPTH says
  /// otherwise.
  static constexpr std::size_t kDefaultDepth = 2;

  /// `depth` bounds the hint queue. nullopt = auto: the DTSNN_PREFETCH_DEPTH
  /// environment variable when set (0 disables prefetching), else
  /// kDefaultDepth. The prefetcher deactivates itself — active() == false,
  /// enqueue() a no-op, no thread spawned — when depth resolves to 0 or the
  /// dataset has nothing to prefetch (fully-resident storage reports
  /// cache_slots == 0). `dataset` must outlive the prefetcher.
  explicit ShardPrefetcher(const Dataset& dataset,
                           std::optional<std::size_t> depth = std::nullopt);
  ~ShardPrefetcher();
  ShardPrefetcher(const ShardPrefetcher&) = delete;
  ShardPrefetcher& operator=(const ShardPrefetcher&) = delete;

  /// Hint that `samples` will be read soon. Copies the indices and returns
  /// immediately; drops the oldest queued hint when the queue is at depth.
  void enqueue(std::span<const std::size_t> samples) DTSNN_EXCLUDES(mu_);

  /// Block until the queue is drained and the worker is idle (test/bench
  /// barrier — production consumers never wait on the prefetcher).
  void wait_idle() DTSNN_EXCLUDES(mu_);

  [[nodiscard]] bool active() const { return active_; }
  /// Resolved queue depth (meaningful when active()).
  [[nodiscard]] std::size_t depth() const { return depth_; }

  struct Stats {
    std::size_t enqueued = 0;   ///< hints accepted
    std::size_t completed = 0;  ///< hints fully serviced by the worker
    std::size_t dropped = 0;    ///< stale hints displaced by newer ones
  };
  [[nodiscard]] Stats stats() const DTSNN_EXCLUDES(mu_);

 private:
  void worker_loop() DTSNN_EXCLUDES(mu_);

  const Dataset& dataset_;
  std::size_t depth_ = 0;
  bool active_ = false;

  mutable util::Mutex mu_;
  util::CondVar cv_;
  std::deque<std::vector<std::size_t>> queue_ DTSNN_GUARDED_BY(mu_);
  bool stopping_ DTSNN_GUARDED_BY(mu_) = false;
  bool busy_ DTSNN_GUARDED_BY(mu_) = false;
  Stats stats_ DTSNN_GUARDED_BY(mu_);
  util::Thread worker_;  ///< initialized last, joined by destruction
};

}  // namespace dtsnn::data
