// Storage-backed dataset over a directory of shard files.
//
// ShardedDataset decouples the logical sample space from frame storage: the
// tiny per-sample metadata columns (labels, difficulty, noise stddev) are
// resident for the dataset's lifetime, while frame blocks are paged in shard
// at a time through a bounded LRU cache — the working set is O(cache_slots *
// shard_bytes), not O(dataset). Reads are bitwise identical to the
// ArrayDataset the shards were exported from: the deterministic sensor-noise
// stream is keyed by (noise_seed, global sample index, timestep), so cache
// evictions, shard boundaries, I/O mode, and re-reads never change a single
// bit of an encoded frame.
//
// Concurrency model (the "pinned cache" layer of the data plane): the shard
// table itself (paths, sample ranges, metadata columns) is immutable after
// construction, so locate() and metadata reads take no lock at all. Only the
// per-shard cache slots are guarded. A reader *pins* its shard under the
// mutex (refcount bump + hit/LRU bookkeeping, O(1)), then copies the frame
// *outside* the lock — N readers hitting resident shards no longer convoy on
// one global mutex around their memcpys, and a miss's disk I/O happens with
// the lock released (the slot is claimed in a kLoading state; other readers
// of the same shard coalesce onto that load instead of issuing their own).
// Eviction only ever selects an unpinned resident shard, so a frame copy can
// never race a munmap/free of the block it is reading. Deadlock-free by
// construction: a thread holds at most one pin and never blocks while
// holding it.
//
// Frame blocks are zero-copy by default: a resident shard is a read-only
// mmap of the .dtshard file (ShardReader::map_frames), so a cache fill costs
// no payload copy and N processes over one shard store share page-cache
// pages. DTSNN_SHARD_MMAP=0 (or ShardIo::kBuffered) falls back to the
// portable buffered read with identical semantics and byte accounting.
//
// write_frame/prefetch are internally synchronized, so the dataset can be
// shared by OpenMP evaluation workers, the serving worker thread, and a
// background ShardPrefetcher (the Dataset contract treats const access as
// thread-safe).

#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <vector>

#include "data/dataset.h"
#include "data/shard.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace dtsnn::data {

struct ShardCacheConfig {
  /// Bound on shards resident at once. 0 = auto: the DTSNN_SHARD_CACHE_SLOTS
  /// environment variable when set (must parse to >= 1, loud error
  /// otherwise), else kDefaultCacheSlots.
  std::size_t cache_slots = 0;

  /// How frame blocks are materialized. kAuto honors DTSNN_SHARD_MMAP=0
  /// (forces buffered) and otherwise maps when the platform supports it.
  ShardIo io = ShardIo::kAuto;

  static constexpr std::size_t kDefaultCacheSlots = 4;
};

class ShardedDataset final : public Dataset {
 public:
  /// Opens every `*.dtshard` file under `dir` (sorted by filename), validates
  /// the headers against each other (ShardError::Kind::kShapeMismatch when
  /// siblings disagree on geometry, class count, frames per sample, or noise
  /// seed), and loads the metadata columns. Frame blocks stay on disk until
  /// first touched. Throws ShardError(kIo) when `dir` holds no shards.
  explicit ShardedDataset(const std::filesystem::path& dir, ShardCacheConfig config = {});

  [[nodiscard]] std::size_t size() const override { return labels_.size(); }
  [[nodiscard]] std::size_t num_classes() const override { return num_classes_; }
  [[nodiscard]] snn::Shape frame_shape() const override { return frame_shape_; }
  [[nodiscard]] int label(std::size_t sample) const override { return labels_.at(sample); }
  [[nodiscard]] double difficulty(std::size_t sample) const override {
    return difficulty_.at(sample);
  }
  [[nodiscard]] std::size_t native_frames() const override { return frames_per_sample_; }
  void write_frame(std::size_t sample, std::size_t t,
                   std::span<float> dst) const override DTSNN_EXCLUDES(mu_);

  /// Warm the cache for the shards holding `samples` (deduplicated, first
  /// cache_slots() distinct shards — prefetching more would only evict what
  /// was just fetched). Best-effort and wait-free with respect to readers:
  /// shards already loading are skipped, and nothing is evicted-for or
  /// waited-on when every slot is pinned/claimed — a prefetch is a hint, so
  /// it must never stall or sabotage the consumers it serves. The serving
  /// layer and ShardPrefetcher call this ahead of reads, and
  /// materialize_batch calls it for every chunk.
  void prefetch(std::span<const std::size_t> samples) const override
      DTSNN_EXCLUDES(mu_);

  [[nodiscard]] DatasetStorageStats storage_stats() const override
      DTSNN_EXCLUDES(mu_);

  [[nodiscard]] std::size_t num_shards() const { return info_.size(); }
  [[nodiscard]] std::size_t cache_slots() const { return cache_slots_; }
  /// Resolved I/O mode (never kAuto): kMapped when blocks alias mmaps.
  [[nodiscard]] ShardIo io_mode() const { return io_; }
  [[nodiscard]] std::uint64_t noise_seed() const { return noise_seed_; }
  /// Frame-block bytes across all shards (the evictable payload).
  [[nodiscard]] std::size_t frame_bytes_total() const { return frame_bytes_total_; }
  /// Frame-block bytes of the largest shard: cache_slots() * this bounds the
  /// cache's resident frame bytes.
  [[nodiscard]] std::size_t max_shard_frame_bytes() const {
    return max_shard_frame_bytes_;
  }

 private:
  /// Immutable per-shard identity, fixed at construction — readable without
  /// the lock.
  struct ShardInfo {
    std::filesystem::path path;
    std::size_t first_sample = 0;  ///< global index of this shard's sample 0
    std::size_t samples = 0;
  };

  enum class SlotState {
    kEvicted,   ///< no block; a reader must claim a slot and load
    kLoading,   ///< a thread is filling the block with mu_ released
    kResident,  ///< block readable; evictable only while pins == 0
  };

  /// Mutable cache state of one shard, guarded by mu_. The block's *contents*
  /// are immutable once kResident; pins make eviction wait, so readers copy
  /// from the block outside the lock.
  struct Slot {
    SlotState state = SlotState::kEvicted;
    ShardFrames block;
    std::size_t pins = 0;         ///< readers currently copying from block
    std::uint64_t last_used = 0;  ///< LRU tick of the most recent touch
  };

  /// Shard index owning `sample` (samples are contiguous across shards).
  [[nodiscard]] std::size_t locate(std::size_t sample) const;
  /// Read the shard's frame block from disk (no lock held).
  [[nodiscard]] ShardFrames load_block(std::size_t shard) const;

  /// Pin `shard` resident and return its frame block. Hits are O(1) under
  /// the lock; misses claim a slot (kLoading), load with the lock released,
  /// and publish with the pin already held. Waits (on cv_) only when the
  /// shard is mid-load by another thread or every slot is pinned/claimed.
  [[nodiscard]] std::span<const float> pin_shard(std::size_t shard) const
      DTSNN_EXCLUDES(mu_);
  void unpin_shard(std::size_t shard) const DTSNN_EXCLUDES(mu_);
  /// Best-effort load for prefetch: never waits, leaves the shard unpinned.
  void warm_shard(std::size_t shard) const DTSNN_EXCLUDES(mu_);

  /// Claim capacity for one load: free slot if available, else evict the
  /// least-recently-used *unpinned* resident shard. False when every slot is
  /// pinned or claimed by an in-flight load.
  [[nodiscard]] bool reserve_slot() const DTSNN_REQUIRES(mu_);
  void publish_loaded(std::size_t shard, ShardFrames&& block,
                      std::size_t pins) const DTSNN_REQUIRES(mu_);
  void abort_load(std::size_t shard) const DTSNN_EXCLUDES(mu_);

  snn::Shape frame_shape_;
  std::size_t frame_numel_ = 0;
  std::size_t frames_per_sample_ = 0;
  std::size_t num_classes_ = 0;
  std::uint64_t noise_seed_ = 0;
  std::size_t cache_slots_ = 0;
  ShardIo io_ = ShardIo::kBuffered;
  std::size_t frame_bytes_total_ = 0;
  std::size_t max_shard_frame_bytes_ = 0;
  std::size_t metadata_bytes_ = 0;

  std::vector<ShardInfo> info_;  ///< immutable after construction
  std::vector<int> labels_;
  std::vector<double> difficulty_;
  std::vector<float> temporal_noise_;

  mutable util::Mutex mu_;
  /// Signaled on publish, load abort, and last-unpin — the three events that
  /// can unblock a waiter in pin_shard.
  mutable util::CondVar cv_;
  mutable std::vector<Slot> slots_ DTSNN_GUARDED_BY(mu_);
  mutable std::uint64_t lru_tick_ DTSNN_GUARDED_BY(mu_) = 0;
  /// Indices of resident shards (size <= cache_slots_): bounds the eviction
  /// victim search by the cache size, not the shard count.
  mutable std::vector<std::size_t> resident_ DTSNN_GUARDED_BY(mu_);
  /// In-flight loads; resident_.size() + loading_ <= cache_slots_ always.
  mutable std::size_t loading_ DTSNN_GUARDED_BY(mu_) = 0;
  mutable std::size_t resident_bytes_ DTSNN_GUARDED_BY(mu_) = 0;
  mutable std::size_t peak_resident_bytes_ DTSNN_GUARDED_BY(mu_) = 0;
  mutable std::size_t cache_hits_ DTSNN_GUARDED_BY(mu_) = 0;
  mutable std::size_t cache_misses_ DTSNN_GUARDED_BY(mu_) = 0;
  mutable std::size_t cache_evictions_ DTSNN_GUARDED_BY(mu_) = 0;
};

}  // namespace dtsnn::data
