// Storage-backed dataset over a directory of shard files.
//
// ShardedDataset decouples the logical sample space from frame storage: the
// tiny per-sample metadata columns (labels, difficulty, noise stddev) are
// resident for the dataset's lifetime, while frame blocks are paged in shard
// at a time through a bounded LRU cache — the working set is O(cache_slots *
// shard_bytes), not O(dataset). Reads are bitwise identical to the
// ArrayDataset the shards were exported from: the deterministic sensor-noise
// stream is keyed by (noise_seed, global sample index, timestep), so cache
// evictions, shard boundaries, and re-reads never change a single bit of an
// encoded frame.
//
// write_frame/prefetch are internally synchronized, so the dataset can be
// shared by OpenMP evaluation workers and the serving worker thread (the
// Dataset contract treats const access as thread-safe).

#pragma once

#include <cstdint>
#include <filesystem>
#include <vector>

#include "data/dataset.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace dtsnn::data {

struct ShardCacheConfig {
  /// Bound on shards resident at once. 0 = auto: the DTSNN_SHARD_CACHE_SLOTS
  /// environment variable when set (must parse to >= 1, loud error
  /// otherwise), else kDefaultCacheSlots.
  std::size_t cache_slots = 0;

  static constexpr std::size_t kDefaultCacheSlots = 4;
};

class ShardedDataset final : public Dataset {
 public:
  /// Opens every `*.dtshard` file under `dir` (sorted by filename), validates
  /// the headers against each other (ShardError::Kind::kShapeMismatch when
  /// siblings disagree on geometry, class count, frames per sample, or noise
  /// seed), and loads the metadata columns. Frame blocks stay on disk until
  /// first touched. Throws ShardError(kIo) when `dir` holds no shards.
  explicit ShardedDataset(const std::filesystem::path& dir, ShardCacheConfig config = {});

  [[nodiscard]] std::size_t size() const override { return labels_.size(); }
  [[nodiscard]] std::size_t num_classes() const override { return num_classes_; }
  [[nodiscard]] snn::Shape frame_shape() const override { return frame_shape_; }
  [[nodiscard]] int label(std::size_t sample) const override { return labels_.at(sample); }
  [[nodiscard]] double difficulty(std::size_t sample) const override {
    return difficulty_.at(sample);
  }
  [[nodiscard]] std::size_t native_frames() const override { return frames_per_sample_; }
  void write_frame(std::size_t sample, std::size_t t,
                   std::span<float> dst) const override DTSNN_EXCLUDES(mu_);

  /// Warm the cache for the shards holding `samples` (deduplicated, first
  /// cache_slots() distinct shards — prefetching more would only evict what
  /// was just fetched). The serving layer calls this at admission, and
  /// materialize_batch calls it for every chunk.
  void prefetch(std::span<const std::size_t> samples) const override
      DTSNN_EXCLUDES(mu_);

  [[nodiscard]] DatasetStorageStats storage_stats() const override
      DTSNN_EXCLUDES(mu_);

  [[nodiscard]] std::size_t num_shards() const DTSNN_EXCLUDES(mu_) {
    util::MutexLock lk(mu_);
    return shards_.size();
  }
  [[nodiscard]] std::size_t cache_slots() const { return cache_slots_; }
  [[nodiscard]] std::uint64_t noise_seed() const { return noise_seed_; }
  /// Frame-block bytes across all shards (the evictable payload).
  [[nodiscard]] std::size_t frame_bytes_total() const { return frame_bytes_total_; }
  /// Frame-block bytes of the largest shard: cache_slots() * this bounds the
  /// cache's resident frame bytes.
  [[nodiscard]] std::size_t max_shard_frame_bytes() const {
    return max_shard_frame_bytes_;
  }

 private:
  struct Shard {
    std::filesystem::path path;
    std::size_t first_sample = 0;  ///< global index of this shard's sample 0
    std::size_t samples = 0;
    std::vector<float> frames;     ///< resident frame block, empty when evicted
    bool resident = false;
    std::uint64_t last_used = 0;   ///< LRU tick of the most recent touch
  };

  /// Shard index owning `sample` (samples are contiguous across shards).
  [[nodiscard]] std::size_t locate(std::size_t sample) const DTSNN_REQUIRES(mu_);
  /// Touch a shard under mu_: load (evicting LRU when full) or mark a hit.
  const std::vector<float>& touch_shard(std::size_t shard) const DTSNN_REQUIRES(mu_);

  snn::Shape frame_shape_;
  std::size_t frame_numel_ = 0;
  std::size_t frames_per_sample_ = 0;
  std::size_t num_classes_ = 0;
  std::uint64_t noise_seed_ = 0;
  std::size_t cache_slots_ = 0;
  std::size_t frame_bytes_total_ = 0;
  std::size_t max_shard_frame_bytes_ = 0;
  std::size_t metadata_bytes_ = 0;

  std::vector<int> labels_;
  std::vector<double> difficulty_;
  std::vector<float> temporal_noise_;

  mutable util::Mutex mu_;
  /// Shard table: the vector's *structure* (paths, sample ranges) is fixed at
  /// construction, but the cached frame blocks and LRU bookkeeping inside
  /// each entry mutate on every touch, so the whole table lives under mu_.
  mutable std::vector<Shard> shards_ DTSNN_GUARDED_BY(mu_);
  mutable std::uint64_t lru_tick_ DTSNN_GUARDED_BY(mu_) = 0;
  /// Indices of resident shards (size <= cache_slots_): bounds the eviction
  /// victim search by the cache size, not the shard count.
  mutable std::vector<std::size_t> resident_ DTSNN_GUARDED_BY(mu_);
  mutable std::size_t resident_bytes_ DTSNN_GUARDED_BY(mu_) = 0;
  mutable std::size_t peak_resident_bytes_ DTSNN_GUARDED_BY(mu_) = 0;
  mutable std::size_t cache_hits_ DTSNN_GUARDED_BY(mu_) = 0;
  mutable std::size_t cache_misses_ DTSNN_GUARDED_BY(mu_) = 0;
  mutable std::size_t cache_evictions_ DTSNN_GUARDED_BY(mu_) = 0;
};

}  // namespace dtsnn::data
