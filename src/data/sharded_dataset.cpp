#include "data/sharded_dataset.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "util/env.h"
#include "util/mapped_file.h"

namespace dtsnn::data {

namespace {

std::size_t resolve_cache_slots(std::size_t configured) {
  if (configured != 0) return configured;
  // Construction-time read; datasets are built before worker threads start.
  // env_u64 rejects junk, "-1" (no sign accepted), overflow, and — via
  // min_value — zero, so a bad value can never void the bounded-working-set
  // guarantee quietly.
  if (const auto env = util::env_u64("DTSNN_SHARD_CACHE_SLOTS", /*min_value=*/1)) {
    return static_cast<std::size_t>(*env);
  }
  return ShardCacheConfig::kDefaultCacheSlots;
}

ShardIo resolve_io(ShardIo configured) {
  if (configured == ShardIo::kBuffered) return configured;
  if (configured == ShardIo::kMapped) {
    if (!util::MappedFile::mmap_supported()) {
      throw std::invalid_argument(
          "ShardCacheConfig: ShardIo::kMapped requested but mmap is unsupported on "
          "this platform");
    }
    return configured;
  }
  // kAuto: DTSNN_SHARD_MMAP=0 forces the portable buffered path (useful for
  // A/B-ing the zero-copy plane); otherwise map whenever the platform can.
  const auto flag = util::env_flag("DTSNN_SHARD_MMAP");
  if (flag.has_value() && !*flag) return ShardIo::kBuffered;
  return util::MappedFile::mmap_supported() ? ShardIo::kMapped : ShardIo::kBuffered;
}

void check_sibling(const ShardHeader& first, const std::filesystem::path& first_path,
                   const ShardHeader& header, const std::filesystem::path& path) {
  const bool mismatch = header.frame_shape != first.frame_shape ||
                        header.frames_per_sample != first.frames_per_sample ||
                        header.num_classes != first.num_classes ||
                        header.noise_seed != first.noise_seed ||
                        header.shard_count != first.shard_count;
  if (mismatch) {
    throw ShardError(ShardError::Kind::kShapeMismatch,
                     "shard " + path.string() +
                         ": header disagrees with sibling shard " + first_path.string() +
                         " (frame shape / frames per sample / classes / noise seed / "
                         "shard count must match across a dataset's shards)");
  }
}

}  // namespace

ShardedDataset::ShardedDataset(const std::filesystem::path& dir, ShardCacheConfig config)
    : cache_slots_(resolve_cache_slots(config.cache_slots)), io_(resolve_io(config.io)) {
  std::error_code ec;
  std::vector<std::filesystem::path> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == kShardExtension) paths.push_back(entry.path());
  }
  if (ec) {
    throw ShardError(ShardError::Kind::kIo,
                     "ShardedDataset: cannot read " + dir.string() + ": " + ec.message());
  }
  if (paths.empty()) {
    throw ShardError(ShardError::Kind::kIo, "ShardedDataset: no " +
                                                std::string(kShardExtension) +
                                                " files in " + dir.string());
  }
  std::sort(paths.begin(), paths.end());

  ShardHeader first;
  std::vector<int> labels;
  std::vector<double> difficulty;
  std::vector<float> temporal_noise;
  for (const auto& path : paths) {
    const ShardReader reader(path);
    const ShardHeader& header = reader.header();
    if (info_.empty()) {
      first = header;
      frame_shape_ = header.frame_shape;
      frame_numel_ = header.frame_numel();
      frames_per_sample_ = header.frames_per_sample;
      num_classes_ = header.num_classes;
      noise_seed_ = header.noise_seed;
    } else {
      check_sibling(first, info_.front().path, header, path);
    }
    // Ordinal i must sit at sorted position i: the noise stream and labels
    // are addressed by global sample index, so a missing or duplicated
    // middle shard would silently shift every later sample's identity.
    if (header.shard_index != info_.size()) {
      throw ShardError(ShardError::Kind::kIncompleteSet,
                       "shard " + path.string() + ": holds ordinal " +
                           std::to_string(header.shard_index) +
                           " but is shard file #" + std::to_string(info_.size()) +
                           " of " + dir.string() +
                           " — the directory is missing or duplicating shards");
    }
    ShardInfo info;
    info.path = path;
    info.first_sample = labels_.size();
    info.samples = header.num_samples;
    reader.read_metadata(labels, difficulty, temporal_noise);
    labels_.insert(labels_.end(), labels.begin(), labels.end());
    difficulty_.insert(difficulty_.end(), difficulty.begin(), difficulty.end());
    temporal_noise_.insert(temporal_noise_.end(), temporal_noise.begin(),
                           temporal_noise.end());
    frame_bytes_total_ += header.frames_floats() * sizeof(float);
    max_shard_frame_bytes_ =
        std::max(max_shard_frame_bytes_, header.frames_floats() * sizeof(float));
    info_.push_back(std::move(info));
  }
  if (info_.size() != first.shard_count) {
    throw ShardError(ShardError::Kind::kIncompleteSet,
                     "ShardedDataset: " + dir.string() + " holds " +
                         std::to_string(info_.size()) + " shard files but the set "
                         "declares " + std::to_string(first.shard_count) +
                         " — trailing shards are missing");
  }
  metadata_bytes_ = labels_.size() * (sizeof(int) + sizeof(double) + sizeof(float));
  {
    util::MutexLock lk(mu_);
    slots_.resize(info_.size());
  }
}

std::size_t ShardedDataset::locate(std::size_t sample) const {
  // First shard whose range starts past `sample`, minus one. info_ is
  // immutable after construction, so no lock.
  const auto it = std::upper_bound(
      info_.begin(), info_.end(), sample,
      [](std::size_t s, const ShardInfo& info) { return s < info.first_sample; });
  return static_cast<std::size_t>(it - info_.begin()) - 1;
}

ShardFrames ShardedDataset::load_block(std::size_t shard) const {
  return ShardReader(info_[shard].path).map_frames(io_);
}

bool ShardedDataset::reserve_slot() const {
  if (resident_.size() + loading_ < cache_slots_) {
    ++loading_;
    return true;
  }
  // Evict the least-recently-used *unpinned* resident shard. Pinned shards
  // have a reader copying from their block right now; in-flight loads are
  // not in resident_ and are never victims.
  std::size_t victim_pos = resident_.size();
  for (std::size_t i = 0; i < resident_.size(); ++i) {
    const Slot& cand = slots_[resident_[i]];
    if (cand.pins != 0) continue;
    if (victim_pos == resident_.size() ||
        cand.last_used < slots_[resident_[victim_pos]].last_used) {
      victim_pos = i;
    }
  }
  if (victim_pos == resident_.size()) return false;  // every slot pinned/claimed
  Slot& victim = slots_[resident_[victim_pos]];
  resident_bytes_ -= victim.block.bytes();
  victim.block = ShardFrames();
  victim.state = SlotState::kEvicted;
  resident_.erase(resident_.begin() + static_cast<std::ptrdiff_t>(victim_pos));
  ++cache_evictions_;
  ++loading_;
  return true;
}

void ShardedDataset::publish_loaded(std::size_t shard, ShardFrames&& block,
                                    std::size_t pins) const {
  Slot& slot = slots_[shard];
  slot.block = std::move(block);
  slot.state = SlotState::kResident;
  slot.pins = pins;
  --loading_;
  resident_.push_back(shard);
  resident_bytes_ += slot.block.bytes();
  peak_resident_bytes_ = std::max(peak_resident_bytes_, resident_bytes_);
  cv_.notify_all();
}

void ShardedDataset::abort_load(std::size_t shard) const {
  util::MutexLock lk(mu_);
  slots_[shard].state = SlotState::kEvicted;
  --loading_;
  cv_.notify_all();
}

std::span<const float> ShardedDataset::pin_shard(std::size_t shard) const {
  {
    util::MutexLock lk(mu_);
    for (;;) {
      Slot& slot = slots_[shard];
      if (slot.state == SlotState::kResident) {
        slot.last_used = ++lru_tick_;
        ++slot.pins;
        ++cache_hits_;
        return slot.block.frames();
      }
      if (slot.state == SlotState::kLoading) {
        // Another thread is filling this very shard — coalesce onto its load
        // instead of issuing a duplicate read (counts as a hit once it
        // lands: this thread caused no I/O).
        cv_.wait(lk);
        continue;
      }
      // kEvicted: claim capacity, or wait for an unpin/publish to free some.
      if (!reserve_slot()) {
        cv_.wait(lk);
        continue;
      }
      slot.state = SlotState::kLoading;
      slot.last_used = ++lru_tick_;
      ++cache_misses_;
      break;
    }
  }
  // Disk I/O with mu_ released: concurrent readers keep hitting other
  // resident shards while this load is in flight.
  ShardFrames block;
  try {
    block = load_block(shard);
  } catch (...) {
    abort_load(shard);
    throw;
  }
  util::MutexLock lk(mu_);
  publish_loaded(shard, std::move(block), /*pins=*/1);
  return slots_[shard].block.frames();
}

void ShardedDataset::unpin_shard(std::size_t shard) const {
  util::MutexLock lk(mu_);
  Slot& slot = slots_[shard];
  if (--slot.pins == 0) {
    // The shard just became evictable — wake reserve_slot waiters.
    cv_.notify_all();
  }
}

void ShardedDataset::warm_shard(std::size_t shard) const {
  {
    util::MutexLock lk(mu_);
    Slot& slot = slots_[shard];
    if (slot.state == SlotState::kResident) {
      slot.last_used = ++lru_tick_;
      ++cache_hits_;
      return;
    }
    if (slot.state == SlotState::kLoading) return;  // load already in flight
    if (!reserve_slot()) return;  // prefetch is a hint: never wait, never harm
    slot.state = SlotState::kLoading;
    slot.last_used = ++lru_tick_;
    ++cache_misses_;
  }
  ShardFrames block;
  try {
    block = load_block(shard);
  } catch (...) {
    abort_load(shard);
    throw;
  }
  util::MutexLock lk(mu_);
  // pins = 0: prefetch warms, the consumer pins later.
  publish_loaded(shard, std::move(block), /*pins=*/0);
}

void ShardedDataset::write_frame(std::size_t sample, std::size_t t,
                                 std::span<float> dst) const {
  if (sample >= labels_.size()) {
    throw std::out_of_range("ShardedDataset::write_frame: sample " +
                            std::to_string(sample) + " out of range (size " +
                            std::to_string(labels_.size()) + ")");
  }
  const std::size_t frame = std::min(t, frames_per_sample_ - 1);
  const std::size_t shard = locate(sample);
  const std::size_t local = sample - info_[shard].first_sample;

  const std::span<const float> frames = pin_shard(shard);
  // Only the (noexcept) copy sits between pin and unpin, so no unwind guard
  // is needed; the pin keeps eviction away from the block while we read it.
  const float* src = frames.data() + (local * frames_per_sample_ + frame) * frame_numel_;
  std::memcpy(dst.data(), src, frame_numel_ * sizeof(float));
  unpin_shard(shard);

  // Same stream, keyed by the *global* sample index, as every other storage
  // backend — bitwise identity does not depend on shard layout.
  detail::apply_temporal_noise(dst, temporal_noise_[sample], noise_seed_, sample, t);
}

void ShardedDataset::prefetch(std::span<const std::size_t> samples) const {
  // Dedup to shards lock-free (locate reads the immutable table), then warm
  // each best-effort.
  std::vector<std::size_t> wanted;
  for (const std::size_t sample : samples) {
    if (sample >= labels_.size()) continue;  // materialize_batch validates later
    const std::size_t shard = locate(sample);
    if (std::find(wanted.begin(), wanted.end(), shard) == wanted.end()) {
      wanted.push_back(shard);
      if (wanted.size() == cache_slots_) break;
    }
  }
  for (const std::size_t shard : wanted) warm_shard(shard);
}

DatasetStorageStats ShardedDataset::storage_stats() const {
  util::MutexLock lk(mu_);
  DatasetStorageStats stats;
  stats.logical_bytes = frame_bytes_total_ + metadata_bytes_;
  stats.resident_bytes = resident_bytes_ + metadata_bytes_;
  stats.peak_resident_bytes = peak_resident_bytes_ + metadata_bytes_;
  stats.shard_count = info_.size();
  stats.cache_slots = cache_slots_;
  stats.cache_hits = cache_hits_;
  stats.cache_misses = cache_misses_;
  stats.cache_evictions = cache_evictions_;
  return stats;
}

}  // namespace dtsnn::data
