#include "data/sharded_dataset.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "data/shard.h"

namespace dtsnn::data {

namespace {

std::size_t resolve_cache_slots(std::size_t configured) {
  if (configured != 0) return configured;
  // Construction-time read; datasets are built before worker threads start.
  if (const char* env = std::getenv("DTSNN_SHARD_CACHE_SLOTS")) {  // NOLINT(concurrency-mt-unsafe)
    // Digits only (strtoull would silently wrap "-1" to a huge slot count)
    // and overflow-checked (errno=ERANGE clamps to ULLONG_MAX, same silent
    // unbounding), so a bad value can never void the bounded-working-set
    // guarantee quietly.
    const std::string value(env);
    const bool digits = !value.empty() && value.find_first_not_of("0123456789") ==
                                              std::string::npos;
    errno = 0;
    const unsigned long long parsed = digits ? std::strtoull(env, nullptr, 10) : 0;
    if (!digits || parsed == 0 || errno == ERANGE) {
      throw std::invalid_argument(
          std::string("DTSNN_SHARD_CACHE_SLOTS must be a positive integer, got '") +
          env + "'");
    }
    return static_cast<std::size_t>(parsed);
  }
  return ShardCacheConfig::kDefaultCacheSlots;
}

void check_sibling(const ShardHeader& first, const std::filesystem::path& first_path,
                   const ShardHeader& header, const std::filesystem::path& path) {
  const bool mismatch = header.frame_shape != first.frame_shape ||
                        header.frames_per_sample != first.frames_per_sample ||
                        header.num_classes != first.num_classes ||
                        header.noise_seed != first.noise_seed ||
                        header.shard_count != first.shard_count;
  if (mismatch) {
    throw ShardError(ShardError::Kind::kShapeMismatch,
                     "shard " + path.string() +
                         ": header disagrees with sibling shard " + first_path.string() +
                         " (frame shape / frames per sample / classes / noise seed / "
                         "shard count must match across a dataset's shards)");
  }
}

}  // namespace

ShardedDataset::ShardedDataset(const std::filesystem::path& dir, ShardCacheConfig config)
    : cache_slots_(resolve_cache_slots(config.cache_slots)) {
  std::error_code ec;
  std::vector<std::filesystem::path> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == kShardExtension) paths.push_back(entry.path());
  }
  if (ec) {
    throw ShardError(ShardError::Kind::kIo,
                     "ShardedDataset: cannot read " + dir.string() + ": " + ec.message());
  }
  if (paths.empty()) {
    throw ShardError(ShardError::Kind::kIo, "ShardedDataset: no " +
                                                std::string(kShardExtension) +
                                                " files in " + dir.string());
  }
  std::sort(paths.begin(), paths.end());

  ShardHeader first;
  std::vector<int> labels;
  std::vector<double> difficulty;
  std::vector<float> temporal_noise;
  for (const auto& path : paths) {
    const ShardReader reader(path);
    const ShardHeader& header = reader.header();
    if (shards_.empty()) {
      first = header;
      frame_shape_ = header.frame_shape;
      frame_numel_ = header.frame_numel();
      frames_per_sample_ = header.frames_per_sample;
      num_classes_ = header.num_classes;
      noise_seed_ = header.noise_seed;
    } else {
      check_sibling(first, shards_.front().path, header, path);
    }
    // Ordinal i must sit at sorted position i: the noise stream and labels
    // are addressed by global sample index, so a missing or duplicated
    // middle shard would silently shift every later sample's identity.
    if (header.shard_index != shards_.size()) {
      throw ShardError(ShardError::Kind::kIncompleteSet,
                       "shard " + path.string() + ": holds ordinal " +
                           std::to_string(header.shard_index) +
                           " but is shard file #" + std::to_string(shards_.size()) +
                           " of " + dir.string() +
                           " — the directory is missing or duplicating shards");
    }
    Shard shard;
    shard.path = path;
    shard.first_sample = labels_.size();
    shard.samples = header.num_samples;
    reader.read_metadata(labels, difficulty, temporal_noise);
    labels_.insert(labels_.end(), labels.begin(), labels.end());
    difficulty_.insert(difficulty_.end(), difficulty.begin(), difficulty.end());
    temporal_noise_.insert(temporal_noise_.end(), temporal_noise.begin(),
                           temporal_noise.end());
    frame_bytes_total_ += header.frames_floats() * sizeof(float);
    max_shard_frame_bytes_ =
        std::max(max_shard_frame_bytes_, header.frames_floats() * sizeof(float));
    shards_.push_back(std::move(shard));
  }
  if (shards_.size() != first.shard_count) {
    throw ShardError(ShardError::Kind::kIncompleteSet,
                     "ShardedDataset: " + dir.string() + " holds " +
                         std::to_string(shards_.size()) + " shard files but the set "
                         "declares " + std::to_string(first.shard_count) +
                         " — trailing shards are missing");
  }
  metadata_bytes_ = labels_.size() * (sizeof(int) + sizeof(double) + sizeof(float));
}

std::size_t ShardedDataset::locate(std::size_t sample) const {
  // First shard whose range starts past `sample`, minus one.
  const auto it = std::upper_bound(
      shards_.begin(), shards_.end(), sample,
      [](std::size_t s, const Shard& shard) { return s < shard.first_sample; });
  return static_cast<std::size_t>(it - shards_.begin()) - 1;
}

const std::vector<float>& ShardedDataset::touch_shard(std::size_t shard_index) const {
  Shard& shard = shards_[shard_index];
  shard.last_used = ++lru_tick_;
  if (shard.resident) {
    ++cache_hits_;
    return shard.frames;
  }
  ++cache_misses_;
  if (resident_.size() >= cache_slots_) {
    // Evict the least-recently-used resident shard (resident_ is bounded by
    // cache_slots_, so the victim search never scans the full shard table).
    std::size_t victim_pos = 0;
    for (std::size_t i = 1; i < resident_.size(); ++i) {
      if (shards_[resident_[i]].last_used < shards_[resident_[victim_pos]].last_used) {
        victim_pos = i;
      }
    }
    Shard& evicted = shards_[resident_[victim_pos]];
    resident_bytes_ -= evicted.frames.size() * sizeof(float);
    evicted.frames = {};
    evicted.resident = false;
    resident_.erase(resident_.begin() + static_cast<std::ptrdiff_t>(victim_pos));
    ++cache_evictions_;
  }
  shard.frames = ShardReader(shard.path).read_frames();
  shard.resident = true;
  resident_.push_back(shard_index);
  resident_bytes_ += shard.frames.size() * sizeof(float);
  peak_resident_bytes_ = std::max(peak_resident_bytes_, resident_bytes_);
  return shard.frames;
}

void ShardedDataset::write_frame(std::size_t sample, std::size_t t,
                                 std::span<float> dst) const {
  if (sample >= labels_.size()) {
    throw std::out_of_range("ShardedDataset::write_frame: sample " +
                            std::to_string(sample) + " out of range (size " +
                            std::to_string(labels_.size()) + ")");
  }
  const std::size_t frame = std::min(t, frames_per_sample_ - 1);
  {
    util::MutexLock lk(mu_);
    const std::size_t shard_index = locate(sample);
    const Shard& shard = shards_[shard_index];
    const std::vector<float>& frames = touch_shard(shard_index);
    const std::size_t local = sample - shard.first_sample;
    const float* src = frames.data() + (local * frames_per_sample_ + frame) * frame_numel_;
    std::memcpy(dst.data(), src, frame_numel_ * sizeof(float));
  }
  // Same stream, keyed by the *global* sample index, as every other storage
  // backend — bitwise identity does not depend on shard layout.
  detail::apply_temporal_noise(dst, temporal_noise_[sample], noise_seed_, sample, t);
}

void ShardedDataset::prefetch(std::span<const std::size_t> samples) const {
  util::MutexLock lk(mu_);
  std::vector<std::size_t> wanted;
  for (const std::size_t sample : samples) {
    if (sample >= labels_.size()) continue;  // materialize_batch validates later
    const std::size_t shard = locate(sample);
    if (std::find(wanted.begin(), wanted.end(), shard) == wanted.end()) {
      wanted.push_back(shard);
      if (wanted.size() == cache_slots_) break;
    }
  }
  for (const std::size_t shard : wanted) touch_shard(shard);
}

DatasetStorageStats ShardedDataset::storage_stats() const {
  util::MutexLock lk(mu_);
  DatasetStorageStats stats;
  stats.logical_bytes = frame_bytes_total_ + metadata_bytes_;
  stats.resident_bytes = resident_bytes_ + metadata_bytes_;
  stats.peak_resident_bytes = peak_resident_bytes_ + metadata_bytes_;
  stats.shard_count = shards_.size();
  stats.cache_slots = cache_slots_;
  stats.cache_hits = cache_hits_;
  stats.cache_misses = cache_misses_;
  stats.cache_evictions = cache_evictions_;
  return stats;
}

}  // namespace dtsnn::data
