// On-disk shard format for out-of-core datasets.
//
// A shard file holds a contiguous run of samples from one dataset split:
// a fixed header describing the geometry shared by every sibling shard,
// followed by columnar payload blocks (all frames, then all labels, then all
// difficulties, then all per-sample temporal-noise stddevs). Columnar layout
// lets ShardedDataset bulk-load the frame block — the only part worth
// evicting — while the tiny metadata columns stay resident for the lifetime
// of the dataset.
//
// Format v1 (little-endian, host float/double layout):
//
//   offset  size  field
//   0       8     magic "DTSNSHRD"
//   8       4     u32 version (= 1)
//   12      12    u32 C, u32 H, u32 W          per-frame shape
//   24      4     u32 frames_per_sample
//   28      4     u32 num_classes
//   32      8     u64 noise_seed               per-(sample, t) noise stream key
//   40      8     u64 num_samples
//   48      4     u32 shard_index              ordinal within the dataset
//   52      4     u32 shard_count              total shards in the dataset
//   56      -     f32 frames  [num_samples * frames_per_sample * C*H*W]
//           -     i32 labels  [num_samples]
//           -     f64 difficulty [num_samples]
//           -     f32 temporal_noise [num_samples]
//
// The frame block starting at byte 56 (a multiple of alignof(float)) is what
// makes the zero-copy plane possible: ShardReader::map_frames can hand out a
// span aliasing a read-only mmap of the file with no payload copy.
//
// The (shard_index, shard_count) pair makes an incomplete set loud: the
// noise stream and the labels are addressed by *global* sample index, so a
// silently missing middle shard would shift every later sample onto the
// wrong identity. ShardedDataset refuses to open a directory that does not
// hold exactly ordinals 0..shard_count-1.
//
// The deterministic sensor-noise stream is keyed by (noise_seed, *global*
// sample index, timestep) — see data::detail::apply_temporal_noise — so a
// sample reads back bitwise identical regardless of which shard, cache slot,
// I/O mode, or storage backend serves it.

#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "snn/tensor.h"
#include "util/mapped_file.h"

namespace dtsnn::data {

class ArrayDataset;

/// File extension every shard of a dataset directory carries.
inline constexpr const char* kShardExtension = ".dtshard";

/// Loud, typed shard-file error: every way a shard can be unusable gets its
/// own kind so callers (and tests) can distinguish corruption classes, and
/// every message names the offending file plus the byte offset / field that
/// failed validation.
class ShardError : public std::runtime_error {
 public:
  enum class Kind {
    kIo,             ///< cannot open/read/write the file or directory
    kBadMagic,       ///< not a DT-SNN shard file
    kBadVersion,     ///< unsupported format version
    kCorruptHeader,  ///< degenerate geometry (zero dims/classes/samples)
    kTruncated,      ///< file size disagrees with the header's payload size
    kShapeMismatch,  ///< sibling shards disagree on geometry/classes/seed
    kIncompleteSet,  ///< missing/duplicate shard ordinals in a directory
  };

  ShardError(Kind kind, const std::string& message)
      : std::runtime_error(message), kind_(kind) {}

  [[nodiscard]] Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

/// Fixed per-file metadata; identical across sibling shards except for
/// num_samples (the final shard of a split may be ragged) and shard_index.
struct ShardHeader {
  snn::Shape frame_shape;  ///< [C, H, W]
  std::size_t frames_per_sample = 0;
  std::size_t num_classes = 0;
  std::uint64_t noise_seed = 0;
  std::size_t num_samples = 0;
  std::size_t shard_index = 0;  ///< ordinal of this shard within the dataset
  std::size_t shard_count = 1;  ///< total shards in the dataset

  [[nodiscard]] std::size_t frame_numel() const { return snn::shape_numel(frame_shape); }
  [[nodiscard]] std::size_t frames_floats() const {
    return num_samples * frames_per_sample * frame_numel();
  }
  /// Payload bytes the header promises after the 56-byte fixed prefix.
  [[nodiscard]] std::size_t payload_bytes() const;
};

/// How frame payloads are materialized into memory.
enum class ShardIo {
  kAuto,      ///< mapped when the platform supports it, else buffered
              ///< (ShardedDataset additionally honors DTSNN_SHARD_MMAP=0)
  kMapped,    ///< zero-copy mmap of the shard file (throws if unsupported)
  kBuffered,  ///< portable buffered read into a private copy
};

/// A shard's resident frame block: either a read-only mapping of the shard
/// file (zero-copy — the span aliases the shared page cache) or a private
/// buffered copy, with an identical read surface. Move-only; a moved-from
/// block is only good for destruction or reassignment.
class ShardFrames {
 public:
  ShardFrames() = default;
  ShardFrames(ShardFrames&&) noexcept = default;
  ShardFrames& operator=(ShardFrames&&) noexcept = default;
  ShardFrames(const ShardFrames&) = delete;
  ShardFrames& operator=(const ShardFrames&) = delete;

  /// [num_samples * frames_per_sample * frame_numel] raw (pre-noise) floats.
  [[nodiscard]] std::span<const float> frames() const { return frames_; }
  /// Frame-payload bytes this block accounts for (identical for both modes,
  /// so resident/peak byte stats do not depend on the I/O mode).
  [[nodiscard]] std::size_t bytes() const { return frames_.size() * sizeof(float); }
  /// True when the block aliases an mmap rather than owning a copy.
  [[nodiscard]] bool zero_copy() const { return file_.mapped(); }

 private:
  friend class ShardReader;
  util::MappedFile file_;      // live when zero_copy()
  std::vector<float> buffer_;  // live for the buffered fallback
  std::span<const float> frames_;
};

/// Streams samples into one shard file; the file is written by an explicit
/// finish() call only (columnar layout needs the full sample set, and a
/// writer abandoned by an exception must not leave a truncated shard on
/// disk — the destructor writes nothing). Throws ShardError(kIo) when the
/// file cannot be written.
class ShardWriter {
 public:
  /// `header.num_samples` is ignored; the writer counts add_sample calls.
  ShardWriter(std::filesystem::path path, ShardHeader header);
  ~ShardWriter();
  ShardWriter(const ShardWriter&) = delete;
  ShardWriter& operator=(const ShardWriter&) = delete;

  /// `frames` must hold frames_per_sample * frame_numel floats (frame-major,
  /// raw — the noise stream is applied at read time, never stored).
  void add_sample(std::span<const float> frames, int label, double difficulty,
                  float temporal_noise);

  [[nodiscard]] std::size_t samples() const { return labels_.size(); }

  /// Write the file crash-safely: the bytes go to a `<path>.tmp` sibling
  /// first and are renamed onto `path` only after a clean close, so an
  /// interrupted export can never leave a truncated file that still passes
  /// the magic check — the final path either holds a complete shard or
  /// nothing. Idempotent. Throws ShardError(kCorruptHeader) when no samples
  /// were added: a zero-sample shard is rejected by ShardReader, so it is
  /// never written.
  void finish();

 private:
  std::filesystem::path path_;
  ShardHeader header_;
  std::vector<float> frames_;
  std::vector<int> labels_;
  std::vector<double> difficulty_;
  std::vector<float> temporal_noise_;
  bool finished_ = false;
};

/// Validates a shard file's header and size eagerly; payload reads are
/// separate so a dataset can index every shard without loading any frames.
class ShardReader {
 public:
  explicit ShardReader(std::filesystem::path path);

  [[nodiscard]] const ShardHeader& header() const { return header_; }
  [[nodiscard]] const std::filesystem::path& path() const { return path_; }

  /// Bulk-read the per-sample metadata columns (resized to num_samples).
  void read_metadata(std::vector<int>& labels, std::vector<double>& difficulty,
                     std::vector<float>& temporal_noise) const;

  /// Bulk-read the shard's whole frame block
  /// [num_samples * frames_per_sample * frame_numel].
  [[nodiscard]] std::vector<float> read_frames() const;

  /// Materialize the frame block per `io`: kMapped aliases a read-only mmap
  /// of the file (zero payload copy; re-validates the on-disk size against
  /// the header first) and kicks off asynchronous readahead; kBuffered is
  /// read_frames() behind the same interface. kAuto maps when supported
  /// (env knobs are resolved by ShardedDataset, not here).
  [[nodiscard]] ShardFrames map_frames(ShardIo io = ShardIo::kAuto) const;

 private:
  std::filesystem::path path_;
  ShardHeader header_;
};

/// Export an in-memory dataset into `dir` as shard files of at most
/// `samples_per_shard` samples each (`shard_00000.dtshard`, ...; the last
/// shard may be ragged). Existing shard files — and stale `.tmp` leftovers
/// from an interrupted earlier export — in `dir` are replaced. Returns
/// the number of shards written. The noise seed travels in every header, so
/// ShardedDataset reproduces the source's frames bitwise.
std::size_t export_shards(const ArrayDataset& dataset, const std::filesystem::path& dir,
                          std::size_t samples_per_shard);

}  // namespace dtsnn::data
