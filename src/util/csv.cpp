#include "util/csv.h"

#include <cstdio>
#include <stdexcept>

namespace dtsnn::util {

CsvWriter::CsvWriter(const std::string& path) : out_(path, std::ios::trunc) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

void CsvWriter::write_header(std::initializer_list<std::string_view> names) {
  std::vector<std::string> row;
  row.reserve(names.size());
  for (const auto n : names) row.emplace_back(n);
  write_row(row);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  ++rows_;
}

std::string CsvWriter::stringify(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string CsvWriter::escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string quoted = "\"";
  for (const char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace dtsnn::util
