#include "util/env.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <stdexcept>

namespace dtsnn::util {
namespace {

[[noreturn]] void fail(const char* name, const std::string& value, const char* expected) {
  throw std::invalid_argument(std::string(name) + "='" + value + "' is invalid: expected " +
                              expected);
}

std::string lowered(const std::string& text) {
  std::string out = text;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace

std::optional<std::string> env_string(const char* name) {
  // The process environment is only mutated by single-threaded test/bench
  // mains, never by library code, so the read itself is benign.
  const char* raw = std::getenv(name);  // NOLINT(concurrency-mt-unsafe)
  if (raw == nullptr) return std::nullopt;
  return std::string(raw);
}

std::optional<std::uint64_t> env_u64(const char* name, std::uint64_t min_value) {
  const std::optional<std::string> raw = env_string(name);
  if (!raw) return std::nullopt;
  const std::string& value = *raw;

  bool all_digits = !value.empty();
  for (const char c : value) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) {
      all_digits = false;
      break;
    }
  }
  if (!all_digits) fail(name, value, "an unsigned decimal integer");

  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (errno == ERANGE || end != value.c_str() + value.size()) {
    fail(name, value, "an unsigned decimal integer within uint64 range");
  }
  if (parsed < min_value) {
    fail(name, value,
         ("an integer >= " + std::to_string(min_value)).c_str());
  }
  return static_cast<std::uint64_t>(parsed);
}

std::optional<bool> env_flag(const char* name) {
  const std::optional<std::string> raw = env_string(name);
  if (!raw) return std::nullopt;
  const std::string value = lowered(*raw);
  if (value == "1" || value == "true" || value == "on" || value == "yes") return true;
  if (value == "0" || value == "false" || value == "off" || value == "no") return false;
  fail(name, *raw, "a boolean (0/1/true/false/on/off/yes/no)");
}

}  // namespace dtsnn::util
