// Clang Thread Safety Analysis annotations (no-ops on other compilers).
//
// These macros attach the locking discipline to the code itself so clang's
// -Wthread-safety checks it at compile time: every field guarded by a mutex
// is declared DTSNN_GUARDED_BY(mu), every helper that assumes a held lock is
// declared DTSNN_REQUIRES(mu), and a violation is a build error in the
// thread-safety CI job instead of a race TSan may or may not schedule.
//
// Usage pattern (see util/sync.h for the annotated Mutex/MutexLock types):
//
//   class Cache {
//     void evict_one() DTSNN_REQUIRES(mu_);   // caller must hold mu_
//     mutable util::Mutex mu_;
//     std::vector<Entry> entries_ DTSNN_GUARDED_BY(mu_);
//   };
//
// On GCC (and any compiler without the capability attributes) every macro
// expands to nothing, so annotated code compiles unchanged; the analysis
// runs in the pinned-clang CI job.

#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define DTSNN_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef DTSNN_THREAD_ANNOTATION
#define DTSNN_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Marks a type as a lockable capability ("mutex" names it in diagnostics).
#define DTSNN_CAPABILITY(x) DTSNN_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define DTSNN_SCOPED_CAPABILITY DTSNN_THREAD_ANNOTATION(scoped_lockable)

/// Field/variable may only be accessed while holding `x`.
#define DTSNN_GUARDED_BY(x) DTSNN_THREAD_ANNOTATION(guarded_by(x))

/// Pointed-to data may only be accessed while holding `x`.
#define DTSNN_PT_GUARDED_BY(x) DTSNN_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the listed capabilities to be held on entry (and does
/// not release them).
#define DTSNN_REQUIRES(...) \
  DTSNN_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function must NOT be called with the listed capabilities held (it will
/// acquire them itself — calling with them held would deadlock).
#define DTSNN_EXCLUDES(...) DTSNN_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define DTSNN_ACQUIRE(...) \
  DTSNN_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define DTSNN_RELEASE(...) \
  DTSNN_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function attempts the acquisition; holds it when returning `result`.
#define DTSNN_TRY_ACQUIRE(result, ...) \
  DTSNN_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))

/// Function returns a reference to the capability guarding its result.
#define DTSNN_RETURN_CAPABILITY(x) DTSNN_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for code the analysis cannot model; every use must carry a
/// comment justifying why it is safe.
#define DTSNN_NO_THREAD_SAFETY_ANALYSIS \
  DTSNN_THREAD_ANNOTATION(no_thread_safety_analysis)
