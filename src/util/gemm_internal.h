// Internal glue between the GEMM registry (gemm.cpp) and the ISA-specific
// backend translation units. Not part of the public util/gemm.h API.

#pragma once

#include <cstddef>

namespace dtsnn::util {

class GemmBackend;

/// The AVX2 backend instance, or nullptr when the toolchain could not build
/// it (gemm_avx2.cpp compiles its kernels only under DTSNN_HAVE_AVX2, which
/// CMake defines when -mavx2 is supported). Runtime CPUID gating happens
/// separately through GemmBackend::available().
const GemmBackend* avx2_backend_or_null();

/// The quantized-tier backend singletons (gemm_quant.cpp). Always compiled
/// in and available — their kernels are portable scalar/omp-simd code; what
/// gates their use is calibrated weights, enforced at dispatch time.
const GemmBackend* int8_spike_backend();
const GemmBackend* int4_spike_backend();

namespace internal {

/// Column-block width of the packed B^T scheme shared by the blocked and
/// AVX2 gemm_bt kernels. These helpers encode the bitwise accumulation
/// contract exactly once: eight independent per-column accumulators advance
/// sequentially in ascending-k order, and leftover columns run sequential
/// scalar dots — so all backends built on them agree bit-for-bit.
inline constexpr std::size_t kBtLanes = 8;

/// Pack B^T rows [j0, j0 + kBtLanes) of B[n,k] k-major into
/// packed[k * kBtLanes] so the dot loops run contiguous loads.
void pack_bt_columns(const float* b, std::size_t k, std::size_t j0, float* packed);

/// C[:, j0..n) += A * B^T for the remainder columns: sequential scalar dot
/// per output element (one local accumulator, one add into C).
void gemm_bt_scalar_tail(const float* a, const float* b, float* c, std::size_t m,
                         std::size_t k, std::size_t n, std::size_t j0);

}  // namespace internal

}  // namespace dtsnn::util
