// Internal glue between the GEMM registry (gemm.cpp) and the ISA-specific
// backend translation units. Not part of the public util/gemm.h API.

#pragma once

#include <cstddef>
#include <cstdint>

namespace dtsnn::util {

class GemmBackend;
class QuantizedMatrix;

/// The AVX2 backend instance, or nullptr when the toolchain could not build
/// it (gemm_avx2.cpp compiles its kernels only under DTSNN_HAVE_AVX2, which
/// CMake defines when -mavx2 is supported). Runtime CPUID gating happens
/// separately through GemmBackend::available().
const GemmBackend* avx2_backend_or_null();

/// The AVX-512 backend instance, or nullptr when gemm_avx512.cpp compiled to
/// its stub (toolchain lacks -mavx512f, or -DDTSNN_DISABLE_AVX512=ON forced
/// the fallback build). Same compile-time/runtime split as avx2.
const GemmBackend* avx512_backend_or_null();

/// The quantized-tier backend singletons (gemm_quant.cpp, gemm_lut.cpp).
/// Always compiled in and available — their kernels are portable
/// scalar/omp-simd code (the LUT accumulate upgrades itself to AVX2 at
/// runtime); what gates their use is calibrated weights, enforced at
/// dispatch time.
const GemmBackend* int8_spike_backend();
const GemmBackend* int4_spike_backend();
const GemmBackend* int8_lut_backend();
const GemmBackend* int4_lut_backend();

namespace internal {

/// Column-block width of the packed B^T scheme shared by the blocked and
/// AVX2 gemm_bt kernels. These helpers encode the bitwise accumulation
/// contract exactly once: eight independent per-column accumulators advance
/// sequentially in ascending-k order, and leftover columns run sequential
/// scalar dots — so all backends built on them agree bit-for-bit. (The
/// AVX-512 kernel widens the column block to 16 lanes; per-column sums stay
/// independent, so the contract is unchanged.)
inline constexpr std::size_t kBtLanes = 8;

/// Pack B^T rows [j0, j0 + kBtLanes) of B[n,k] k-major into
/// packed[k * kBtLanes] so the dot loops run contiguous loads.
void pack_bt_columns(const float* b, std::size_t k, std::size_t j0, float* packed);

/// C[:, j0..n) += A * B^T for the remainder columns: sequential scalar dot
/// per output element (one local accumulator, one add into C).
void gemm_bt_scalar_tail(const float* a, const float* b, float* c, std::size_t m,
                         std::size_t k, std::size_t n, std::size_t j0);

/// Flags returned by LutMaskBuildFn.
inline constexpr unsigned kLutHasBinary = 1u;
inline constexpr unsigned kLutHasGraded = 2u;

/// Build one scale group's chunk masks from `len` consecutive A-row values:
/// bin[t] gets the 4-bit "spiked with value exactly 1.0" mask of chunk t,
/// graded[t] the "spiked with any other value" mask (t over ceil(len / 4)
/// chunks; the last chunk may be narrower and its high bits stay 0). Returns
/// kLutHasBinary / kLutHasGraded ORed for whichever masks are non-zero
/// anywhere — 0 means the group is spike-free. The AVX2 variant classifies 8
/// values per compare+movemask instead of element-by-element, which is where
/// a sparse row's time goes once the accumulate is table-driven.
using LutMaskBuildFn = unsigned (*)(const float* a, std::size_t len,
                                    std::uint8_t* bin, std::uint8_t* graded);

/// int32 accumulate of one scale group's worth of int16 LUT rows:
/// acc[j] += sum over s < count of table[entries[s] * n + j], where each
/// entry is chunk_in_group * kLutMaskCount + mask, pre-compressed to active
/// chunks only so the inner loop is branch-free. `table` points at the
/// group's first chunk block. Batching the whole group into one call lets
/// the AVX2 variant keep the accumulator tile in registers across chunks
/// (one acc read-modify-write per column tile per group instead of per
/// chunk); the integer adds are exact, so every variant and association
/// order is bit-identical.
using LutGroupAccumFn = void (*)(const std::int16_t* table,
                                 const std::uint32_t* entries, std::size_t count,
                                 std::int32_t* acc, std::size_t n);

/// Portable scalar variants (gemm_lut.cpp).
unsigned lut_mask_build_scalar(const float* a, std::size_t len, std::uint8_t* bin,
                               std::uint8_t* graded);
void lut_group_accum_scalar(const std::int16_t* table, const std::uint32_t* entries,
                            std::size_t count, std::int32_t* acc, std::size_t n);

/// The variants the LUT kernels should use: AVX2 when compiled in and the
/// CPU supports it, else the scalar fallbacks (gemm_lut_avx2.cpp).
LutMaskBuildFn lut_mask_build_fn();
LutGroupAccumFn lut_group_accum_fn();

/// The spike-path quantized kernel (gemm_quant.cpp), shared by the LUT
/// backends' small-batch fallback. bits must be 8 or 4; the caller has
/// already validated shapes and zeroed/kept C (always accumulates).
void qgemm_spike_kernel(int bits, const float* a, const QuantizedMatrix& q,
                        float* c, std::size_t m, std::size_t k, std::size_t n);

}  // namespace internal

}  // namespace dtsnn::util
