// Quantized-tier GEMM backends: int8_spike and int4_spike.
//
// Both consume util::QuantizedMatrix weights (k-major packed codes,
// group-wise symmetric scales; see util/quant.h) against spike activations
// in A. The kernel shape follows sparse_spike: each A row is branchlessly
// compressed to (index, value) pairs, then processed group-by-group along k.
// Inside a scale group, binary spikes (exactly 1.0f) add the selected
// quantized weight row into an int32 accumulator — no multiplies, and the
// bytes streamed per spike are 1/4 (INT8) or 1/8 (INT4) of the float
// backends' traffic. Graded spikes fall back to float accumulation of
// decoded codes. Each group is dequantized once per output column at its
// boundary: crow[j] += (int_sum + graded_sum) * scale[g][j].
//
// Accumulation order is fixed (ascending k within a group, ascending groups,
// rows independent), so outputs are deterministic and batch-composition
// invariant — but quantization error makes them tolerance-gated, not
// bitwise, versus the float tier (GemmIdentityTier::kToleranceGated). The
// plain float ops delegate to the blocked kernels and stay on the bitwise
// contract.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/gemm.h"
#include "util/gemm_internal.h"
#include "util/quant.h"

namespace dtsnn::util {

namespace {

const GemmBackend& blocked_backend() {
  static const GemmBackend& backend = *find_gemm_backend("blocked_omp");
  return backend;
}

/// Decode one INT4 code from its offset-binary nibble (low = even column).
inline int decode_nibble(std::uint8_t byte, bool high) {
  return (high ? (byte >> 4) : (byte & 0x0F)) - 8;
}

template <int kBits>
void qgemm_kernel(const float* a, const QuantizedMatrix& q, float* c, std::size_t m,
                  std::size_t k, std::size_t n) {
  const std::size_t gs = q.group_size();
  const std::size_t stride = q.row_stride();
  const std::uint8_t* data = q.packed().data();
  const float* scales = q.scales().data();
#pragma omp parallel
  {
    std::vector<std::uint32_t> idx(k);
    std::vector<float> val(k);
    std::vector<std::int32_t> iacc(n);
    std::vector<float> facc(n);
#pragma omp for schedule(static) nowait
    for (std::size_t i = 0; i < m; ++i) {
      const float* arow = a + i * k;
      // Branchless CSR compress of the spike row (as in sparse_spike).
      std::size_t nnz = 0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        idx[nnz] = static_cast<std::uint32_t>(kk);
        val[nnz] = arow[kk];
        nnz += arow[kk] != 0.0f;
      }
      float* crow = c + i * n;
      std::size_t s = 0;
      while (s < nnz) {
        // Jump straight to the scale group of the next spike; spike-free
        // groups cost nothing.
        const std::size_t g = idx[s] / gs;
        const std::size_t k_end = std::min((g + 1) * gs, k);
        std::fill(iacc.begin(), iacc.end(), 0);
        bool graded = false;
        for (; s < nnz && idx[s] < k_end; ++s) {
          const std::size_t kk = idx[s];
          const float v = val[s];
          const std::uint8_t* qrow = data + kk * stride;
          if (v == 1.0f) {
            if constexpr (kBits == 8) {
              const auto* row = reinterpret_cast<const std::int8_t*>(qrow);
#pragma omp simd
              for (std::size_t j = 0; j < n; ++j) iacc[j] += row[j];
            } else {
#pragma omp simd
              for (std::size_t p = 0; p < n / 2; ++p) {
                const std::uint8_t byte = qrow[p];
                iacc[2 * p] += decode_nibble(byte, false);
                iacc[2 * p + 1] += decode_nibble(byte, true);
              }
              if (n % 2 != 0) iacc[n - 1] += decode_nibble(qrow[n / 2], false);
            }
          } else {
            if (!graded) {
              std::fill(facc.begin(), facc.end(), 0.0f);
              graded = true;
            }
            if constexpr (kBits == 8) {
              const auto* row = reinterpret_cast<const std::int8_t*>(qrow);
#pragma omp simd
              for (std::size_t j = 0; j < n; ++j) {
                facc[j] += v * static_cast<float>(row[j]);
              }
            } else {
#pragma omp simd
              for (std::size_t p = 0; p < n / 2; ++p) {
                const std::uint8_t byte = qrow[p];
                facc[2 * p] += v * static_cast<float>(decode_nibble(byte, false));
                facc[2 * p + 1] += v * static_cast<float>(decode_nibble(byte, true));
              }
              if (n % 2 != 0) {
                facc[n - 1] += v * static_cast<float>(decode_nibble(qrow[n / 2], false));
              }
            }
          }
        }
        // Dequantize the whole group once per output column.
        const float* srow = scales + g * n;
        if (graded) {
#pragma omp simd
          for (std::size_t j = 0; j < n; ++j) {
            crow[j] += (static_cast<float>(iacc[j]) + facc[j]) * srow[j];
          }
        } else {
#pragma omp simd
          for (std::size_t j = 0; j < n; ++j) {
            crow[j] += static_cast<float>(iacc[j]) * srow[j];
          }
        }
      }
    }
  }
}

template <int kBits>
class QuantSpikeBackend final : public QuantizedGemmBackend {
 public:
  [[nodiscard]] std::string_view name() const override {
    return kBits == 8 ? "int8_spike" : "int4_spike";
  }
  [[nodiscard]] int weight_bits() const override { return kBits; }

 protected:
  void do_qgemm(const float* a, const QuantizedMatrix& q, float* c, std::size_t m,
                std::size_t k, std::size_t n) const override {
    qgemm_kernel<kBits>(a, q, c, m, k, n);
  }

  // Float ops (training, non-weight GEMMs) have nothing to quantize;
  // delegate to the blocked kernels, which keep the bitwise contract.
  void do_gemm(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
               std::size_t n) const override {
    blocked_backend().gemm(a, b, c, m, k, n, /*accumulate=*/true);
  }
  void do_gemm_at(const float* a, const float* b, float* c, std::size_t m,
                  std::size_t k, std::size_t n) const override {
    blocked_backend().gemm_at(a, b, c, m, k, n, /*accumulate=*/true);
  }
  void do_gemm_bt(const float* a, const float* b, float* c, std::size_t m,
                  std::size_t k, std::size_t n) const override {
    blocked_backend().gemm_bt(a, b, c, m, k, n, /*accumulate=*/true);
  }
};

}  // namespace

const GemmBackend* int8_spike_backend() {
  static const QuantSpikeBackend<8> backend;
  return &backend;
}

const GemmBackend* int4_spike_backend() {
  static const QuantSpikeBackend<4> backend;
  return &backend;
}

namespace internal {

void qgemm_spike_kernel(int bits, const float* a, const QuantizedMatrix& q, float* c,
                        std::size_t m, std::size_t k, std::size_t n) {
  if (bits == 8) {
    qgemm_kernel<8>(a, q, c, m, k, n);
  } else {
    qgemm_kernel<4>(a, q, c, m, k, n);
  }
}

}  // namespace internal

}  // namespace dtsnn::util
