// Minimal CSV writer used by the benchmark harness to emit the data series
// behind each reproduced table/figure alongside the pretty-printed output.

#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace dtsnn::util {

/// Writes rows of mixed string/number cells to a CSV file. Quoting follows
/// RFC 4180 (fields containing comma, quote or newline are quoted).
class CsvWriter {
 public:
  /// Opens `path` for writing (truncates). Throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  void write_header(std::initializer_list<std::string_view> names);
  void write_row(const std::vector<std::string>& cells);

  /// Variadic row of stringifiable cells.
  template <typename... Cells>
  void row(const Cells&... cells) {
    std::vector<std::string> r;
    r.reserve(sizeof...(cells));
    (r.push_back(stringify(cells)), ...);
    write_row(r);
  }

  [[nodiscard]] std::size_t rows_written() const { return rows_; }

 private:
  static std::string stringify(const std::string& s) { return s; }
  static std::string stringify(const char* s) { return s; }
  static std::string stringify(std::string_view s) { return std::string(s); }
  static std::string stringify(double v);
  static std::string stringify(float v) { return stringify(static_cast<double>(v)); }
  static std::string stringify(int v) { return std::to_string(v); }
  static std::string stringify(long v) { return std::to_string(v); }
  static std::string stringify(unsigned v) { return std::to_string(v); }
  static std::string stringify(std::size_t v) { return std::to_string(v); }

  static std::string escape(const std::string& field);

  std::ofstream out_;
  std::size_t rows_ = 0;
};

}  // namespace dtsnn::util
