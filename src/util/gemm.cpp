#include "util/gemm.h"

#include <algorithm>
#include <cstring>
#include <vector>

namespace dtsnn::util {

namespace {
// Block sizes tuned for L1/L2-resident panels of float32.
constexpr std::size_t kBlockM = 64;
constexpr std::size_t kBlockK = 256;
constexpr std::size_t kBlockN = 256;
}  // namespace

void gemm(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
          std::size_t n, bool accumulate) {
  if (!accumulate) std::memset(c, 0, m * n * sizeof(float));
#pragma omp parallel for schedule(static)
  for (std::size_t i0 = 0; i0 < m; i0 += kBlockM) {
    const std::size_t i1 = std::min(i0 + kBlockM, m);
    for (std::size_t k0 = 0; k0 < k; k0 += kBlockK) {
      const std::size_t k1 = std::min(k0 + kBlockK, k);
      for (std::size_t j0 = 0; j0 < n; j0 += kBlockN) {
        const std::size_t j1 = std::min(j0 + kBlockN, n);
        for (std::size_t i = i0; i < i1; ++i) {
          float* crow = c + i * n;
          for (std::size_t kk = k0; kk < k1; ++kk) {
            const float aval = a[i * k + kk];
            if (aval == 0.0f) continue;  // spikes are sparse; skip zero rows
            const float* brow = b + kk * n;
#pragma omp simd
            for (std::size_t j = j0; j < j1; ++j) crow[j] += aval * brow[j];
          }
        }
      }
    }
  }
}

void gemm_at(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
             std::size_t n, bool accumulate) {
  if (!accumulate) std::memset(c, 0, m * n * sizeof(float));
  // A^T row i is column i of A[k,m]; iterate k-major for streaming access.
#pragma omp parallel for schedule(static)
  for (std::size_t i0 = 0; i0 < m; i0 += kBlockM) {
    const std::size_t i1 = std::min(i0 + kBlockM, m);
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float* arow = a + kk * m;
      const float* brow = b + kk * n;
      for (std::size_t i = i0; i < i1; ++i) {
        const float aval = arow[i];
        if (aval == 0.0f) continue;
        float* crow = c + i * n;
#pragma omp simd
        for (std::size_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
      }
    }
  }
}

void gemm_bt(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
             std::size_t n, bool accumulate) {
  if (!accumulate) std::memset(c, 0, m * n * sizeof(float));
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
#pragma omp simd reduction(+ : acc)
      for (std::size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      crow[j] += acc;
    }
  }
}

}  // namespace dtsnn::util
