#include "util/gemm.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/env.h"
#include "util/gemm_internal.h"
#include "util/logging.h"
#include "util/quant.h"

namespace dtsnn::util {

// ------------------------------------------------------- base-class guards

namespace {

/// Shared degenerate-shape handling: zero C when overwriting, and report
/// whether the kernel has any work to do. k == 0 with accumulate == true is
/// a deterministic no-op; with accumulate == false it deterministically
/// zeroes C instead of relying on kernel loop fall-through.
bool prepare_output(float* c, std::size_t m, std::size_t k, std::size_t n,
                    bool accumulate) {
  if (!accumulate && m != 0 && n != 0) std::memset(c, 0, m * n * sizeof(float));
  return m != 0 && k != 0 && n != 0;
}

}  // namespace

const GemmBackend& GemmBackend::route(GemmOp /*op*/, double /*a_density*/,
                                      std::size_t /*m*/, std::size_t /*k*/,
                                      std::size_t /*n*/) const {
  return *this;
}

void GemmBackend::gemm(const float* a, const float* b, float* c, std::size_t m,
                       std::size_t k, std::size_t n, bool accumulate) const {
  if (prepare_output(c, m, k, n, accumulate)) do_gemm(a, b, c, m, k, n);
}

void GemmBackend::gemm_at(const float* a, const float* b, float* c, std::size_t m,
                          std::size_t k, std::size_t n, bool accumulate) const {
  if (prepare_output(c, m, k, n, accumulate)) do_gemm_at(a, b, c, m, k, n);
}

void GemmBackend::gemm_bt(const float* a, const float* b, float* c, std::size_t m,
                          std::size_t k, std::size_t n, bool accumulate) const {
  if (prepare_output(c, m, k, n, accumulate)) do_gemm_bt(a, b, c, m, k, n);
}

void QuantizedGemmBackend::qgemm(const float* a, const QuantizedMatrix& q, float* c,
                                 std::size_t m, std::size_t k, std::size_t n,
                                 bool accumulate) const {
  if (q.bits() != weight_bits() && !(q.empty() && k == 0 && n == 0)) {
    throw QuantizationError(
        QuantizationError::Kind::kBitsMismatch,
        format("GEMM backend '%.*s' consumes %d-bit weights but was given a "
               "%d-bit QuantizedMatrix",
               static_cast<int>(name().size()), name().data(), weight_bits(),
               q.bits()));
  }
  if (q.out() != n || q.in() != k) {
    throw QuantizationError(
        QuantizationError::Kind::kShapeMismatch,
        format("qgemm shape mismatch: op expects Q[%zu x %zu] but the "
               "QuantizedMatrix is [%zu x %zu]",
               n, k, q.out(), q.in()));
  }
  if (prepare_output(c, m, k, n, accumulate)) do_qgemm(a, q, c, m, k, n);
}

const QuantizedGemmBackend* as_quantized_backend(const GemmBackend* backend) {
  return dynamic_cast<const QuantizedGemmBackend*>(backend);
}

// ------------------------------------------------------------------ kernels

namespace {

// ---- scalar reference: the plain loops that define the bitwise contract.

void scalar_gemm(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
                 std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aval = arow[kk];
      if (aval == 0.0f) continue;  // spikes are sparse; zero rows contribute nothing
      const float* brow = b + kk * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
    }
  }
}

void scalar_gemm_at(const float* a, const float* b, float* c, std::size_t m,
                    std::size_t k, std::size_t n) {
  // A^T row i is column i of A[k,m]; k-major iteration streams A and B while
  // every output element still accumulates in ascending-k order.
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* arow = a + kk * m;
    const float* brow = b + kk * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float aval = arow[i];
      if (aval == 0.0f) continue;
      float* crow = c + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
    }
  }
}

void scalar_gemm_bt(const float* a, const float* b, float* c, std::size_t m,
                    std::size_t k, std::size_t n) {
  // Sequential per-output dot product: one local accumulator per element,
  // added into C once. No reassociation — this order is the contract the
  // vectorized backends reproduce lane-per-column.
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      crow[j] += acc;
    }
  }
}

// ---- blocked + OpenMP: the historical cache-blocked kernels. The omp simd
// pragmas sit on loops over *independent* output columns, so vector lanes
// never share an accumulator and the scalar_ref order is preserved.

constexpr std::size_t kBlockM = 64;
constexpr std::size_t kBlockK = 256;
constexpr std::size_t kBlockN = 256;

void blocked_gemm(const float* a, const float* b, float* c, std::size_t m,
                  std::size_t k, std::size_t n) {
#pragma omp parallel for schedule(static)
  for (std::size_t i0 = 0; i0 < m; i0 += kBlockM) {
    const std::size_t i1 = std::min(i0 + kBlockM, m);
    for (std::size_t k0 = 0; k0 < k; k0 += kBlockK) {
      const std::size_t k1 = std::min(k0 + kBlockK, k);
      for (std::size_t j0 = 0; j0 < n; j0 += kBlockN) {
        const std::size_t j1 = std::min(j0 + kBlockN, n);
        for (std::size_t i = i0; i < i1; ++i) {
          float* crow = c + i * n;
          for (std::size_t kk = k0; kk < k1; ++kk) {
            const float aval = a[i * k + kk];
            if (aval == 0.0f) continue;
            const float* brow = b + kk * n;
#pragma omp simd
            for (std::size_t j = j0; j < j1; ++j) crow[j] += aval * brow[j];
          }
        }
      }
    }
  }
}

void blocked_gemm_at(const float* a, const float* b, float* c, std::size_t m,
                     std::size_t k, std::size_t n) {
#pragma omp parallel for schedule(static)
  for (std::size_t i0 = 0; i0 < m; i0 += kBlockM) {
    const std::size_t i1 = std::min(i0 + kBlockM, m);
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float* arow = a + kk * m;
      const float* brow = b + kk * n;
      for (std::size_t i = i0; i < i1; ++i) {
        const float aval = arow[i];
        if (aval == 0.0f) continue;
        float* crow = c + i * n;
#pragma omp simd
        for (std::size_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
      }
    }
  }
}

void blocked_gemm_bt(const float* a, const float* b, float* c, std::size_t m,
                     std::size_t k, std::size_t n) {
  // A simd reduction over k would reassociate the dot product and break the
  // bitwise contract. Instead vectorize across independent output columns:
  // eight B^T rows are packed k-major and eight per-column accumulators
  // advance together through k — each output still sums sequentially in
  // ascending-k order with one add into C, exactly like scalar_ref, but the
  // lane updates auto-vectorize portably.
  constexpr std::size_t kLanes = internal::kBtLanes;
  std::vector<float> packed(k * kLanes);
  std::size_t j0 = 0;
  for (; j0 + kLanes <= n; j0 += kLanes) {
    internal::pack_bt_columns(b, k, j0, packed.data());
    const float* pk = packed.data();
#pragma omp parallel for schedule(static)
    for (std::size_t i = 0; i < m; ++i) {
      const float* arow = a + i * k;
      float acc[kLanes] = {};
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float aval = arow[kk];
        const float* prow = pk + kk * kLanes;
#pragma omp simd
        for (std::size_t l = 0; l < kLanes; ++l) acc[l] += aval * prow[l];
      }
      float* cj = c + i * n + j0;
      for (std::size_t l = 0; l < kLanes; ++l) cj[l] += acc[l];
    }
  }
  internal::gemm_bt_scalar_tail(a, b, c, m, k, n, j0);
}

// ---- sparse_spike: CSR-style row compression of A. Each row of A is first
// compressed (branchlessly) into (index, value) pairs, then only the
// touched B rows are streamed. Binary spikes (value exactly 1.0f) take a
// multiply-free accumulation — 1.0f * x == x bitwise, so the fast path does
// not disturb the contract. Visit order stays ascending-k per output with
// the same zero-skip rule, hence bitwise identity with scalar_ref.

void sparse_gemm(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
                 std::size_t n) {
#pragma omp parallel
  {
    std::vector<std::uint32_t> idx(k);
    std::vector<float> val(k);
#pragma omp for schedule(static) nowait
    for (std::size_t i = 0; i < m; ++i) {
      const float* arow = a + i * k;
      std::size_t nnz = 0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        idx[nnz] = static_cast<std::uint32_t>(kk);
        val[nnz] = arow[kk];
        nnz += arow[kk] != 0.0f;  // branchless compress: predictable pipeline
      }
      float* crow = c + i * n;
      for (std::size_t s = 0; s < nnz; ++s) {
        const float* brow = b + static_cast<std::size_t>(idx[s]) * n;
        const float v = val[s];
        if (v == 1.0f) {
#pragma omp simd
          for (std::size_t j = 0; j < n; ++j) crow[j] += brow[j];
        } else {
#pragma omp simd
          for (std::size_t j = 0; j < n; ++j) crow[j] += v * brow[j];
        }
      }
    }
  }
}

// ------------------------------------------------------------- backend defs

class ScalarRefBackend final : public GemmBackend {
 public:
  [[nodiscard]] std::string_view name() const override { return "scalar_ref"; }

 protected:
  void do_gemm(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
               std::size_t n) const override {
    scalar_gemm(a, b, c, m, k, n);
  }
  void do_gemm_at(const float* a, const float* b, float* c, std::size_t m,
                  std::size_t k, std::size_t n) const override {
    scalar_gemm_at(a, b, c, m, k, n);
  }
  void do_gemm_bt(const float* a, const float* b, float* c, std::size_t m,
                  std::size_t k, std::size_t n) const override {
    scalar_gemm_bt(a, b, c, m, k, n);
  }
};

class BlockedOmpBackend final : public GemmBackend {
 public:
  [[nodiscard]] std::string_view name() const override { return "blocked_omp"; }

 protected:
  void do_gemm(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
               std::size_t n) const override {
    blocked_gemm(a, b, c, m, k, n);
  }
  void do_gemm_at(const float* a, const float* b, float* c, std::size_t m,
                  std::size_t k, std::size_t n) const override {
    blocked_gemm_at(a, b, c, m, k, n);
  }
  void do_gemm_bt(const float* a, const float* b, float* c, std::size_t m,
                  std::size_t k, std::size_t n) const override {
    blocked_gemm_bt(a, b, c, m, k, n);
  }
};

class SparseSpikeBackend final : public GemmBackend {
 public:
  [[nodiscard]] std::string_view name() const override { return "sparse_spike"; }

 protected:
  void do_gemm(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
               std::size_t n) const override {
    sparse_gemm(a, b, c, m, k, n);
  }
  // The A^T (dense gradients) and B^T (dense dot products) ops have no spike
  // structure to exploit; delegate to the blocked kernels, which follow the
  // same bitwise contract.
  void do_gemm_at(const float* a, const float* b, float* c, std::size_t m,
                  std::size_t k, std::size_t n) const override {
    blocked_gemm_at(a, b, c, m, k, n);
  }
  void do_gemm_bt(const float* a, const float* b, float* c, std::size_t m,
                  std::size_t k, std::size_t n) const override {
    blocked_gemm_bt(a, b, c, m, k, n);
  }
};

std::size_t count_nonzeros(const float* a, std::size_t count) {
  std::size_t zeros = 0;
  // Integer reduction: addition over size_t is associative, so the lanes'
  // reassociation cannot change the count — the float-accumulation
  // reassociation hazard the invariant linter bans does not apply here.
  // lint:allow(omp-simd-reduction): integer count, no float accumulation.
#pragma omp simd reduction(+ : zeros)
  for (std::size_t i = 0; i < count; ++i) zeros += a[i] == 0.0f;
  return count - zeros;
}

// ---- adaptive: density-routing pseudo-backend. Holds no kernels of its
// own; every call executes on either sparse_spike or the best dense backend,
// chosen per call-site shape from the observed A-density with hysteresis.
// Both routes are bitwise-tier, so any routing history yields bit-identical
// outputs — the hysteresis only stabilizes *performance* across timesteps
// whose density hovers near the threshold. Decisions are pure functions of
// the data (density), never of timing.

/// Enter the sparse route at or below this A-density (matches the layers'
/// historical sparse-kernel threshold) ...
constexpr double kAdaptiveSparseEnter = 0.35;
/// ... and leave it again only at or above this density.
constexpr double kAdaptiveSparseExit = 0.50;

class AdaptiveBackend final : public GemmBackend {
 public:
  [[nodiscard]] std::string_view name() const override { return "adaptive"; }
  [[nodiscard]] bool routes_by_density() const override { return true; }

  [[nodiscard]] const GemmBackend& route(GemmOp op, double a_density, std::size_t m,
                                         std::size_t k,
                                         std::size_t n) const override {
    // Only the NN op carries spike activations in A; gradients and B^T dot
    // products are dense by construction.
    if (op != GemmOp::kNN) return dense();
    MutexLock lock(mutex_);
    State& st = states_[Key{m, k, n}];
    if (st.calls == 0) {
      st.sparse = a_density <= kAdaptiveSparseEnter;
    } else if (st.sparse && a_density >= kAdaptiveSparseExit) {
      st.sparse = false;
      ++st.switches;
    } else if (!st.sparse && a_density <= kAdaptiveSparseEnter) {
      st.sparse = true;
      ++st.switches;
    }
    ++st.calls;
    st.last_density = a_density;
    return st.sparse ? sparse() : dense();
  }

  [[nodiscard]] std::vector<AdaptiveGemmDecision> decisions() const
      DTSNN_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    std::vector<AdaptiveGemmDecision> out;
    out.reserve(states_.size());
    for (const auto& [key, st] : states_) {
      out.push_back({key.m, key.k, key.n, st.sparse, st.last_density, st.calls,
                     st.switches});
    }
    return out;
  }

  void reset() DTSNN_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    states_.clear();
  }

 protected:
  // Direct (context-free) calls measure the density themselves so routing
  // still works; delegates run through their public wrappers in accumulate
  // mode — C was already prepared by this backend's own wrapper.
  void do_gemm(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
               std::size_t n) const override {
    const double density =
        static_cast<double>(count_nonzeros(a, m * k)) / static_cast<double>(m * k);
    route(GemmOp::kNN, density, m, k, n).gemm(a, b, c, m, k, n, /*accumulate=*/true);
  }
  void do_gemm_at(const float* a, const float* b, float* c, std::size_t m,
                  std::size_t k, std::size_t n) const override {
    dense().gemm_at(a, b, c, m, k, n, /*accumulate=*/true);
  }
  void do_gemm_bt(const float* a, const float* b, float* c, std::size_t m,
                  std::size_t k, std::size_t n) const override {
    dense().gemm_bt(a, b, c, m, k, n, /*accumulate=*/true);
  }

 private:
  struct Key {
    std::size_t m, k, n;
    [[nodiscard]] bool operator<(const Key& o) const {
      if (m != o.m) return m < o.m;
      if (k != o.k) return k < o.k;
      return n < o.n;
    }
  };
  struct State {
    bool sparse = false;
    double last_density = 0.0;
    std::size_t calls = 0;
    std::size_t switches = 0;
  };

  // Delegates resolve lazily (first routed call): the adaptive backend is
  // constructed while the registry vector is still being built, so looking
  // them up in the constructor would recurse into gemm_backends().
  [[nodiscard]] static const GemmBackend& dense() {
    static const GemmBackend& backend = preferred_dense_gemm_backend();
    return backend;
  }
  [[nodiscard]] static const GemmBackend& sparse() {
    static const GemmBackend& backend = *find_gemm_backend("sparse_spike");
    return backend;
  }

  mutable Mutex mutex_;
  mutable std::map<Key, State> states_ DTSNN_GUARDED_BY(mutex_);
};

AdaptiveBackend& adaptive_backend_singleton() {
  static AdaptiveBackend backend;
  return backend;
}

}  // namespace

std::vector<AdaptiveGemmDecision> adaptive_gemm_decisions() {
  return adaptive_backend_singleton().decisions();
}

void reset_adaptive_gemm_state() { adaptive_backend_singleton().reset(); }

// ------------------------------------------------- shared gemm_bt helpers

namespace internal {

void pack_bt_columns(const float* b, std::size_t k, std::size_t j0, float* packed) {
  for (std::size_t l = 0; l < kBtLanes; ++l) {
    const float* brow = b + (j0 + l) * k;
    for (std::size_t kk = 0; kk < k; ++kk) packed[kk * kBtLanes + l] = brow[kk];
  }
}

void gemm_bt_scalar_tail(const float* a, const float* b, float* c, std::size_t m,
                         std::size_t k, std::size_t n, std::size_t j0) {
  if (j0 >= n) return;
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::size_t j = j0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      crow[j] += acc;
    }
  }
}

}  // namespace internal

// ----------------------------------------------------------------- registry

bool cpu_supports_avx2() {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

bool cpu_supports_avx512() {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx512f");
#else
  return false;
#endif
}

std::span<const GemmBackend* const> gemm_backends() {
  static const std::vector<const GemmBackend*> backends = [] {
    static const ScalarRefBackend scalar_ref;
    static const BlockedOmpBackend blocked_omp;
    static const SparseSpikeBackend sparse_spike;
    std::vector<const GemmBackend*> v{&scalar_ref, &blocked_omp};
    if (const GemmBackend* avx2 = avx2_backend_or_null()) v.push_back(avx2);
    if (const GemmBackend* avx512 = avx512_backend_or_null()) v.push_back(avx512);
    v.push_back(&sparse_spike);
    v.push_back(&adaptive_backend_singleton());
    // Quantized tier: listed and forceable by name, but never auto-selected
    // (resolve_gemm_backend's automatic path considers bitwise backends only,
    // since the quantized tier additionally requires calibrated weights).
    v.push_back(int8_spike_backend());
    v.push_back(int4_spike_backend());
    v.push_back(int8_lut_backend());
    v.push_back(int4_lut_backend());
    return v;
  }();
  return backends;
}

const GemmBackend* find_gemm_backend(std::string_view name) {
  for (const GemmBackend* backend : gemm_backends()) {
    if (backend->name() == name) return backend;
  }
  return nullptr;
}

namespace {

/// "name, name (unavailable on this machine), ..." across the registry —
/// appended to every resolution failure so a typo'd or impossible
/// DTSNN_GEMM_BACKEND is self-diagnosing.
std::string describe_registered_backends() {
  std::string out;
  for (const GemmBackend* backend : gemm_backends()) {
    out += out.empty() ? "" : ", ";
    out += backend->name();
    if (!backend->available()) out += " (unavailable on this machine)";
  }
  return out;
}

}  // namespace

const GemmBackend& preferred_dense_gemm_backend() {
  for (const char* name : {"avx512", "avx2"}) {
    if (const GemmBackend* backend = find_gemm_backend(name);
        backend != nullptr && backend->available()) {
      return *backend;
    }
  }
  return *find_gemm_backend("blocked_omp");
}

const GemmBackend& resolve_gemm_backend(const char* override_name) {
  if (override_name != nullptr && *override_name != '\0') {
    const GemmBackend* forced = find_gemm_backend(override_name);
    if (forced == nullptr) {
      throw std::invalid_argument("unknown GEMM backend '" + std::string(override_name) +
                                  "' (registered: " + describe_registered_backends() +
                                  ")");
    }
    if (!forced->available()) {
      throw std::runtime_error("GEMM backend '" + std::string(override_name) +
                               "' is not available on this machine (registered: " +
                               describe_registered_backends() + ")");
    }
    return *forced;
  }
  if (env_flag("DTSNN_GEMM_ADAPTIVE").value_or(false)) {
    return *find_gemm_backend("adaptive");
  }
  return preferred_dense_gemm_backend();
}

const GemmBackend& default_gemm_backend() {
  // Read exactly once (static init is itself serialized), never after
  // threads that might setenv exist.
  static const GemmBackend& selected = [] {
    const auto env = env_string("DTSNN_GEMM_BACKEND");
    return std::cref(resolve_gemm_backend(env ? env->c_str() : nullptr));
  }();
  return selected;
}

// ------------------------------------------------------------------ context

GemmContext::GemmContext() : backend_(&default_gemm_backend()) {}

GemmContext& GemmContext::global() {
  static GemmContext context;
  return context;
}

const GemmBackend& GemmContext::route_and_record(GemmOpStats GemmOpBreakdown::* op,
                                                 GemmOp kind, const float* a,
                                                 std::size_t m, std::size_t k,
                                                 std::size_t n) {
  const bool routes = backend_->routes_by_density();
  if (!stats_enabled_ && !routes) return *backend_;
  const double elements = static_cast<double>(m) * static_cast<double>(k);
  const std::size_t nnz = m && k ? count_nonzeros(a, m * k) : 0;
  const double density = elements > 0.0 ? static_cast<double>(nnz) / elements : 0.0;
  const GemmBackend& executed =
      routes ? backend_->route(kind, density, m, k, n) : *backend_;
  if (stats_enabled_) {
    const double flops = 2.0 * elements * static_cast<double>(n);
    MutexLock lock(mutex_);
    for (GemmOpStats* s : {&(stats_.*op),
                           &(stats_.by_backend[std::string(executed.name())].*op)}) {
      ++s->calls;
      s->flops += flops;
      s->a_elements += elements;
      s->a_nonzeros += static_cast<double>(nnz);
    }
  }
  return executed;
}

void GemmContext::gemm(const float* a, const float* b, float* c, std::size_t m,
                       std::size_t k, std::size_t n, bool accumulate) {
  route_and_record(&GemmOpBreakdown::nn, GemmOp::kNN, a, m, k, n)
      .gemm(a, b, c, m, k, n, accumulate);
}

void GemmContext::gemm_at(const float* a, const float* b, float* c, std::size_t m,
                          std::size_t k, std::size_t n, bool accumulate) {
  // A is stored [k, m]; element count is the same either way.
  route_and_record(&GemmOpBreakdown::at, GemmOp::kAT, a, m, k, n)
      .gemm_at(a, b, c, m, k, n, accumulate);
}

void GemmContext::gemm_bt(const float* a, const float* b, float* c, std::size_t m,
                          std::size_t k, std::size_t n, bool accumulate) {
  route_and_record(&GemmOpBreakdown::bt, GemmOp::kBT, a, m, k, n)
      .gemm_bt(a, b, c, m, k, n, accumulate);
}

void GemmContext::qgemm(const float* a, const QuantizedMatrix& q, float* c,
                        std::size_t m, std::size_t k, std::size_t n,
                        bool accumulate) {
  const QuantizedGemmBackend* qb = as_quantized_backend(backend_);
  if (qb == nullptr) {
    throw QuantizationError(
        QuantizationError::Kind::kNotQuantized,
        format("qgemm dispatched to non-quantized GEMM backend '%.*s'",
               static_cast<int>(backend_->name().size()), backend_->name().data()));
  }
  route_and_record(&GemmOpBreakdown::quant, GemmOp::kQuant, a, m, k, n);
  qb->qgemm(a, q, c, m, k, n, accumulate);
}

GemmStats GemmContext::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

void GemmContext::reset_stats() {
  MutexLock lock(mutex_);
  stats_ = GemmStats{};
}

}  // namespace dtsnn::util
