// Post-training weight quantization: packed INT8/INT4 storage with
// group-wise symmetric scales.
//
// A QuantizedMatrix holds one layer's weight matrix W[out, in] quantized to
// b-bit signed integers. Scales are group-wise over the reduction (k)
// dimension: each output channel j owns one float scale per group of
// `group_size` consecutive k positions, so
//
//   W[j, kk] ~= q(j, kk) * scale(j, kk / group_size)
//
// with q in [-127, 127] (INT8) or [-7, 7] (INT4) and
// scale = maxabs(group) / qmax (symmetric, zero-point-free — spike GEMM adds
// selected weight rows, and a zero point would break the multiply-free path).
//
// Packed storage is k-major so the quantized spike kernels stream one
// contiguous quantized "row" per spiking k position:
//   INT8: data[kk * out + j] holds q(j, kk) as one signed byte.
//   INT4: data[kk * ceil(out/2) + j/2] holds two nibbles — low nibble is
//         column j even, high nibble j odd — in offset-binary form
//         (stored = q + 8, q in [-7, 7]) so unpacking is shift/mask/subtract
//         with no implementation-defined signed shifts.
//
// Quantization is deterministic: std::lround (half away from zero), clamped
// to [-qmax, qmax]; an all-zero group gets scale 0 and all-zero codes.
//
// Derived data: a QuantizedMatrix can additionally carry a spike-mask lookup
// table (QuantLut) consumed by the int8_lut/int4_lut GEMM backends. The k
// dimension is cut into chunks of kLutChunkWidth consecutive positions that
// never cross a scale-group boundary; for every chunk and every 4-bit mask of
// "these positions spiked", the table stores the per-output-column sum of the
// selected integer codes. The LUT is pure derived data — rebuilt on demand
// via ensure_lut(), never serialized, dropped by from_raw/quantize.

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace dtsnn::util {

// -------------------------------------------------------------------- errors

/// Typed failure for the quantized tier: forcing a quantized backend on an
/// uncalibrated network, feeding a backend weights quantized at different
/// bit-width, malformed specs, and corrupt checkpoints all throw this with a
/// machine-checkable Kind.
class QuantizationError : public std::runtime_error {
 public:
  enum class Kind {
    kUncalibrated,   ///< quantized backend selected but no calibrated scales
    kBitsMismatch,   ///< weights quantized at a different bit-width
    kShapeMismatch,  ///< quantized dims disagree with the op / float weights
    kBadSpec,        ///< unsupported bits / group size
    kBadCheckpoint,  ///< quantized checkpoint section fails validation
    kNotQuantized,   ///< qgemm dispatched to a non-quantized backend
  };

  QuantizationError(Kind kind, const std::string& message)
      : std::runtime_error(message), kind_(kind) {}

  [[nodiscard]] Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

// ---------------------------------------------------------------------- spec

/// Quantizer configuration. bits must be 8 or 4. group_size 0 means
/// automatic: 64 for INT8, 32 for INT4 (tighter groups bound INT4's larger
/// per-code error), overridable process-wide via DTSNN_QUANT_GROUP_SIZE.
struct QuantSpec {
  int bits = 8;
  std::size_t group_size = 0;

  /// The effective group size after defaults and the environment override.
  /// Throws QuantizationError(kBadSpec) for unsupported bits.
  [[nodiscard]] std::size_t resolved_group_size() const;

  /// Throws QuantizationError(kBadSpec) unless bits is 8 or 4.
  void validate() const;
};

// ------------------------------------------------------------------- spike LUT

/// k positions per LUT chunk (and bits per spike mask). Chunks are clipped at
/// scale-group boundaries, so a group of width w contributes ceil(w / 4)
/// chunks.
inline constexpr std::size_t kLutChunkWidth = 4;
/// Mask entries per chunk: 1 << kLutChunkWidth.
inline constexpr std::size_t kLutMaskCount = 16;

/// Precomputed per-chunk spike-mask sums for one QuantizedMatrix:
/// table[(chunk * kLutMaskCount + mask) * out + j] is the sum of the integer
/// codes q(j, kc + b) over the bits b set in mask, where kc is the chunk's
/// first k position. int16 holds the worst case exactly (4 * 127 = 508).
/// Entries for mask bits beyond a clipped chunk's width select nothing.
struct QuantLut {
  std::size_t chunks = 0;  ///< total chunks across all scale groups
  std::size_t out = 0;     ///< output columns per entry
  std::vector<std::int16_t> table;

  [[nodiscard]] bool empty() const { return table.empty(); }
  [[nodiscard]] std::size_t bytes() const {
    return table.size() * sizeof(std::int16_t);
  }
};

// -------------------------------------------------------------- packed matrix

class QuantizedMatrix {
 public:
  /// Default-constructed state means "not calibrated".
  QuantizedMatrix() = default;

  /// Quantize row-major W[out, in]. Resolves spec.group_size as documented
  /// on QuantSpec.
  static QuantizedMatrix quantize(const float* w, std::size_t out, std::size_t in,
                                  const QuantSpec& spec);

  /// Rebuild from serialized pieces, validating sizes against the declared
  /// dims (throws QuantizationError(kBadCheckpoint) on any mismatch).
  static QuantizedMatrix from_raw(std::size_t out, std::size_t in, int bits,
                                  std::size_t group_size,
                                  std::vector<std::uint8_t> packed,
                                  std::vector<float> scales);

  [[nodiscard]] bool empty() const { return out_ == 0 && in_ == 0; }
  [[nodiscard]] std::size_t out() const { return out_; }
  [[nodiscard]] std::size_t in() const { return in_; }
  [[nodiscard]] int bits() const { return bits_; }
  [[nodiscard]] std::size_t group_size() const { return group_size_; }
  [[nodiscard]] std::size_t num_groups() const { return groups_; }
  [[nodiscard]] int qmax() const { return bits_ == 4 ? 7 : 127; }

  /// Bytes per packed k-row (out for INT8, ceil(out/2) for INT4).
  [[nodiscard]] std::size_t row_stride() const { return row_stride_; }

  /// Decoded integer code for logical element W[j, kk].
  [[nodiscard]] int q(std::size_t j, std::size_t kk) const;
  /// Scale for output channel j, k-group g (g-major storage: scales()[g*out + j]).
  [[nodiscard]] float scale(std::size_t j, std::size_t g) const {
    return scales_[g * out_ + j];
  }
  /// q(j, kk) * scale(j, kk / group_size): the value the quantized kernels
  /// effectively multiply against.
  [[nodiscard]] float dequantized(std::size_t j, std::size_t kk) const {
    return static_cast<float>(q(j, kk)) * scale(j, kk / group_size_);
  }

  /// Raw packed codes (k-major; see file comment for the INT4 nibble order).
  [[nodiscard]] std::span<const std::uint8_t> packed() const { return data_; }
  /// Raw scales, g-major: scales()[g * out + j].
  [[nodiscard]] std::span<const float> scales() const { return scales_; }

  /// Size of the packed integer codes alone — the bytes actually streamed
  /// per spike in the quantized kernels.
  [[nodiscard]] std::size_t packed_bytes() const { return data_.size(); }
  /// Size of the group scales.
  [[nodiscard]] std::size_t scale_bytes() const {
    return scales_.size() * sizeof(float);
  }
  /// Total resident footprint (codes + scales).
  [[nodiscard]] std::size_t footprint_bytes() const {
    return packed_bytes() + scale_bytes();
  }
  /// Footprint of the float weights this matrix replaces.
  [[nodiscard]] std::size_t float_bytes() const {
    return out_ * in_ * sizeof(float);
  }

  /// Build the spike-mask LUT if not already built (no-op on an empty or
  /// already-LUT'd matrix). Not synchronized: call from single-threaded layer
  /// dispatch, like the layers' cached weight transposes. The LUT is derived
  /// data — copies carry it, serialization does not.
  void ensure_lut();
  [[nodiscard]] bool has_lut() const { return !lut_.empty(); }
  /// The spike-mask LUT; empty() unless ensure_lut() ran.
  [[nodiscard]] const QuantLut& lut() const { return lut_; }

 private:
  std::size_t out_ = 0;
  std::size_t in_ = 0;
  int bits_ = 0;
  std::size_t group_size_ = 0;
  std::size_t groups_ = 0;
  std::size_t row_stride_ = 0;
  std::vector<std::uint8_t> data_;
  std::vector<float> scales_;
  QuantLut lut_;
};

/// Build a QuantLut for `q` without caching it on the matrix — the LUT
/// backends use this for per-call tables when no cached LUT is present.
[[nodiscard]] QuantLut build_spike_lut(const QuantizedMatrix& q);

}  // namespace dtsnn::util
