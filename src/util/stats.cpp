#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace dtsnn::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void Histogram::add(std::size_t bin) {
  ++counts_.at(bin);
  ++total_;
}

double Histogram::fraction(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(bin)) / static_cast<double>(total_);
}

double Histogram::mean() const {
  if (total_ == 0) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    acc += static_cast<double>(i) * static_cast<double>(counts_[i]);
  }
  return acc / static_cast<double>(total_);
}

std::string Histogram::to_string() const {
  std::string out;
  char buf[32];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%s%.1f%%", i ? " " : "", 100.0 * fraction(i));
    out += buf;
  }
  return out;
}

double pearson(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size());
  const std::size_t n = x.size();
  if (n < 2) return 0.0;
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

namespace {

double sorted_quantile(std::span<const double> sorted, double p) {
  const double pos = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

double quantile(std::span<const double> sample, double p) {
  assert(!sample.empty() && p >= 0.0 && p <= 1.0);
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  return sorted_quantile(sorted, p);
}

PercentileSummary summarize_percentiles(std::span<const double> sample) {
  PercentileSummary s;
  if (sample.empty()) return s;
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  s.count = sorted.size();
  double acc = 0.0;
  for (const double x : sorted) acc += x;
  s.mean = acc / static_cast<double>(sorted.size());
  s.min = sorted.front();
  s.p50 = sorted_quantile(sorted, 0.50);
  s.p90 = sorted_quantile(sorted, 0.90);
  s.p95 = sorted_quantile(sorted, 0.95);
  s.p99 = sorted_quantile(sorted, 0.99);
  s.p999 = sorted_quantile(sorted, 0.999);
  s.max = sorted.back();
  return s;
}

BoundedSampleWindow::BoundedSampleWindow(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) throw std::invalid_argument("BoundedSampleWindow: capacity == 0");
}

void BoundedSampleWindow::add(double x) {
  if (data_.size() < capacity_) {
    data_.push_back(x);
  } else {
    data_[next_] = x;
    next_ = (next_ + 1) % capacity_;
  }
  ++total_;
}

}  // namespace dtsnn::util
