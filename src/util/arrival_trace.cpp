#include "util/arrival_trace.h"

#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace dtsnn::util {

std::vector<Arrival> make_arrival_trace(const ArrivalTraceSpec& spec) {
  if (spec.arrivals == 0) {
    throw std::invalid_argument("make_arrival_trace: arrivals == 0");
  }
  if (spec.burst == 0) throw std::invalid_argument("make_arrival_trace: burst == 0");
  if (spec.sample_limit == 0) {
    throw std::invalid_argument("make_arrival_trace: sample_limit == 0");
  }
  if (!(spec.mean_gap_us >= 0.0) || !std::isfinite(spec.mean_gap_us)) {
    throw std::invalid_argument("make_arrival_trace: mean_gap_us must be finite >= 0");
  }

  Rng rng(spec.seed);
  std::vector<Arrival> trace;
  trace.reserve(spec.arrivals);
  double now_us = 0.0;
  while (trace.size() < spec.arrivals) {
    if (spec.mean_gap_us > 0.0 && !trace.empty()) {
      // Exponential inter-burst gap: -mean * ln(1 - U), U in [0, 1).
      now_us += -spec.mean_gap_us * std::log(1.0 - rng.uniform());
    }
    const auto stamp = static_cast<std::uint64_t>(now_us);
    for (std::size_t i = 0; i < spec.burst && trace.size() < spec.arrivals; ++i) {
      Arrival a;
      a.offset_us = stamp;
      a.sample = static_cast<std::size_t>(rng.uniform_int(spec.sample_limit));
      trace.push_back(a);
    }
  }
  return trace;
}

}  // namespace dtsnn::util
