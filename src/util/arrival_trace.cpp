#include "util/arrival_trace.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "util/rng.h"

namespace dtsnn::util {

std::vector<Arrival> make_arrival_trace(const ArrivalTraceSpec& spec) {
  if (spec.arrivals == 0) {
    throw std::invalid_argument("make_arrival_trace: arrivals == 0");
  }
  if (spec.burst == 0) throw std::invalid_argument("make_arrival_trace: burst == 0");
  if (spec.sample_limit == 0) {
    throw std::invalid_argument("make_arrival_trace: sample_limit == 0");
  }
  if (!(spec.mean_gap_us >= 0.0) || !std::isfinite(spec.mean_gap_us)) {
    throw std::invalid_argument("make_arrival_trace: mean_gap_us must be finite >= 0");
  }

  Rng rng(spec.seed);
  std::vector<Arrival> trace;
  trace.reserve(spec.arrivals);
  double now_us = 0.0;
  while (trace.size() < spec.arrivals) {
    if (spec.mean_gap_us > 0.0 && !trace.empty()) {
      // Exponential inter-burst gap: -mean * ln(1 - U), U in [0, 1).
      now_us += -spec.mean_gap_us * std::log(1.0 - rng.uniform());
    }
    const auto stamp = static_cast<std::uint64_t>(now_us);
    for (std::size_t i = 0; i < spec.burst && trace.size() < spec.arrivals; ++i) {
      Arrival a;
      a.offset_us = stamp;
      a.sample = static_cast<std::size_t>(rng.uniform_int(spec.sample_limit));
      trace.push_back(a);
    }
  }
  return trace;
}

std::vector<ClassedArrival> make_arrival_trace(const MultiClassTraceSpec& spec) {
  if (spec.classes.empty()) {
    throw std::invalid_argument("make_arrival_trace: empty class list");
  }
  if (spec.sample_limit == 0) {
    throw std::invalid_argument("make_arrival_trace: sample_limit == 0");
  }
  std::vector<ClassedArrival> trace;
  for (std::size_t c = 0; c < spec.classes.size(); ++c) {
    const ArrivalClassSpec& cls = spec.classes[c];
    const std::string who =
        "make_arrival_trace: class " + std::to_string(c) +
        (cls.name.empty() ? std::string() : " ('" + cls.name + "')");
    if (cls.arrivals == 0) throw std::invalid_argument(who + ": arrivals == 0");
    if (cls.burst == 0) throw std::invalid_argument(who + ": burst == 0");
    if (!(cls.mean_gap_us >= 0.0) || !std::isfinite(cls.mean_gap_us)) {
      throw std::invalid_argument(who + ": mean_gap_us must be finite >= 0");
    }
    // Independent substream per class: equal class specs at different
    // indices still draw distinct streams, and adding a class never
    // perturbs the others' arrivals.
    ArrivalTraceSpec sub;
    sub.arrivals = cls.arrivals;
    sub.mean_gap_us = cls.mean_gap_us;
    sub.burst = cls.burst;
    sub.sample_limit = spec.sample_limit;
    sub.seed = spec.seed + 0x9e3779b97f4a7c15ull * (c + 1);
    for (const Arrival& a : make_arrival_trace(sub)) {
      ClassedArrival out;
      out.offset_us = a.offset_us;
      out.sample = a.sample;
      out.tenant_class = c;
      out.deadline_us = cls.deadline_us;
      trace.push_back(out);
    }
  }
  // Merge on the shared timeline. stable_sort on offset alone keeps the
  // (class, intra-class position) order for equal timestamps, so the merge
  // is a pure function of the spec.
  std::stable_sort(trace.begin(), trace.end(),
                   [](const ClassedArrival& a, const ClassedArrival& b) {
                     return a.offset_us < b.offset_us;
                   });
  return trace;
}

}  // namespace dtsnn::util
