// Annotated synchronization primitives.
//
// The only place in the repo allowed to name std::mutex /
// std::condition_variable (scripts/check_invariants.py enforces this):
// everything else locks through util::Mutex + util::MutexLock, whose
// capability annotations (util/thread_annotations.h) let clang's
// -Wthread-safety prove at compile time that every DTSNN_GUARDED_BY field is
// only touched under its mutex and every DTSNN_REQUIRES helper is only
// called with the lock held.
//
// Deliberately thin: the wrappers add no behavior over std::mutex /
// std::unique_lock / std::condition_variable, only the static-analysis
// surface. Predicate waits are written as explicit while-loops at the call
// site (`while (!ready_) cv.wait(lock);`) rather than predicate lambdas:
// the analysis treats a lambda body as a separate unannotated function, so
// guarded reads inside a wait-predicate lambda would defeat the checking
// that is the point of these types.

#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace dtsnn::util {

class CondVar;

/// Annotated exclusive mutex. Lock through MutexLock; the raw lock()/unlock()
/// exist for completeness and for adapters, not for call sites.
class DTSNN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DTSNN_ACQUIRE() { mu_.lock(); }
  void unlock() DTSNN_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() DTSNN_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// RAII lock over a Mutex (the std::lock_guard / std::unique_lock of this
/// codebase). Supports CondVar waits — the lock is released while blocked
/// and re-held on return, which matches the analysis' view that the
/// capability is held for the whole scope.
class DTSNN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DTSNN_ACQUIRE(mu) : lock_(mu.mu_) {}
  // Empty body rather than `= default`: clang rejects a GNU attribute
  // (the RELEASE annotation) on a defaulted special member.
  ~MutexLock() DTSNN_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Annotated condition variable. Callers loop on their guarded predicate
/// explicitly:
///
///   MutexLock lock(mu_);
///   while (!draining_ && queue_.empty()) cv_.wait(lock);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release `lock`'s mutex and block; the mutex is re-held when
  /// wait returns (spurious wakeups possible — always re-check the
  /// predicate).
  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  /// wait() with a deadline; std::cv_status::timeout once `deadline` passes.
  template <class Clock, class Duration>
  std::cv_status wait_until(MutexLock& lock,
                            const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.lock_, deadline);
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace dtsnn::util
