// AVX2 GEMM backend. Compiled with -mavx2 (and only then — CMake defines
// DTSNN_HAVE_AVX2 when the flag is supported); runtime dispatch is
// additionally gated by CPUID in available().
//
// Bitwise contract (see util/gemm.h): vectorization is strictly over
// independent output columns — each output element owns one vector lane
// whose contributions arrive in ascending-k order, exactly like scalar_ref.
// Multiplies and adds stay separate instructions; -mfma is never enabled
// for this translation unit, so no FMA contraction can change the rounding.

#include "util/gemm_internal.h"

#ifdef DTSNN_HAVE_AVX2

#include <immintrin.h>

#include <cstddef>
#include <vector>

#include "util/gemm.h"

namespace dtsnn::util {
namespace {

/// crow[j..j+n) += aval * brow[j..j+n) with 8-wide lanes; per-column sums
/// stay independent, so the scalar order is preserved.
inline void axpy_row(float aval, const float* brow, float* crow, std::size_t n) {
  const __m256 av = _mm256_set1_ps(aval);
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 prod = _mm256_mul_ps(av, _mm256_loadu_ps(brow + j));
    _mm256_storeu_ps(crow + j, _mm256_add_ps(_mm256_loadu_ps(crow + j), prod));
  }
  for (; j < n; ++j) crow[j] += aval * brow[j];
}

class Avx2Backend final : public GemmBackend {
 public:
  [[nodiscard]] std::string_view name() const override { return "avx2"; }
  [[nodiscard]] bool available() const override { return cpu_supports_avx2(); }

 protected:
  void do_gemm(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
               std::size_t n) const override {
#pragma omp parallel for schedule(static)
    for (std::size_t i = 0; i < m; ++i) {
      const float* arow = a + i * k;
      float* crow = c + i * n;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float aval = arow[kk];
        if (aval == 0.0f) continue;  // same zero-skip rule as scalar_ref
        axpy_row(aval, b + kk * n, crow, n);
      }
    }
  }

  void do_gemm_at(const float* a, const float* b, float* c, std::size_t m,
                  std::size_t k, std::size_t n) const override {
#pragma omp parallel for schedule(static)
    for (std::size_t i = 0; i < m; ++i) {
      float* crow = c + i * n;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float aval = a[kk * m + i];
        if (aval == 0.0f) continue;
        axpy_row(aval, b + kk * n, crow, n);
      }
    }
  }

  void do_gemm_bt(const float* a, const float* b, float* c, std::size_t m,
                  std::size_t k, std::size_t n) const override {
    // Shared packed-column scheme (gemm_internal.h): eight B^T rows packed
    // k-major, eight accumulator lanes each summing its own dot product
    // sequentially in k with one add into C — here the lane update is a
    // single AVX2 mul+add instead of the blocked kernel's simd loop.
    static_assert(internal::kBtLanes == 8, "AVX2 gemm_bt assumes 8-float lanes");
    std::vector<float> packed(k * internal::kBtLanes);
    std::size_t j0 = 0;
    for (; j0 + internal::kBtLanes <= n; j0 += internal::kBtLanes) {
      internal::pack_bt_columns(b, k, j0, packed.data());
      const float* pk = packed.data();
#pragma omp parallel for schedule(static)
      for (std::size_t i = 0; i < m; ++i) {
        const float* arow = a + i * k;
        __m256 acc = _mm256_setzero_ps();
        for (std::size_t kk = 0; kk < k; ++kk) {
          const __m256 av = _mm256_set1_ps(arow[kk]);
          acc = _mm256_add_ps(acc, _mm256_mul_ps(av, _mm256_loadu_ps(pk + kk * 8)));
        }
        float* cj = c + i * n + j0;
        _mm256_storeu_ps(cj, _mm256_add_ps(_mm256_loadu_ps(cj), acc));
      }
    }
    internal::gemm_bt_scalar_tail(a, b, c, m, k, n, j0);
  }
};

}  // namespace

const GemmBackend* avx2_backend_or_null() {
  static const Avx2Backend backend;
  return &backend;
}

}  // namespace dtsnn::util

#else  // !DTSNN_HAVE_AVX2

namespace dtsnn::util {

const GemmBackend* avx2_backend_or_null() { return nullptr; }

}  // namespace dtsnn::util

#endif  // DTSNN_HAVE_AVX2
