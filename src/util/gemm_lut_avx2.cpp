// AVX2 helpers for the LUT GEMM backends (gemm_lut.cpp): spike-mask
// classification (8 A values per compare+movemask) and the group accumulate
// that sums the selected int16 LUT rows into an int32 tile, 16 columns at a
// time. The whole group is batched into one accumulate call so the tile is
// loaded and stored once per 16 columns — inside the entry loop only the
// selected table rows stream through registers (widen int16 -> int32, add).
// Compiled with -mavx2 only when the toolchain supports it (CMake defines
// DTSNN_HAVE_AVX2, as for gemm_avx2.cpp); runtime CPUID picks between these
// and the scalar fallbacks. Integer adds are exact and the mask bits are a
// pure function of the A values, so both variants produce identical bits —
// vectorization here is purely a speed choice, unlike the float kernels
// where lane layout is contract-relevant.

#include "util/gemm_internal.h"

#ifdef DTSNN_HAVE_AVX2

#include <immintrin.h>

#include <algorithm>

#include "util/gemm.h"

namespace dtsnn::util::internal {

namespace {

constexpr std::size_t kChunkWidth = 4;  // == kLutChunkWidth (quant.h)

unsigned lut_mask_build_avx2(const float* a, std::size_t len, std::uint8_t* bin,
                             std::uint8_t* graded) {
  unsigned any_bin = 0, any_graded = 0;
  std::size_t kc = 0, t = 0;
  const __m256 zero = _mm256_setzero_ps();
  const __m256 one = _mm256_set1_ps(1.0f);
  // 8 values = 2 chunks per iteration. NEQ_UQ / EQ_OQ match the scalar
  // `v != 0.0f` / `v == 1.0f` semantics exactly (including for NaN).
  for (; kc + 8 <= len; kc += 8, t += 2) {
    const __m256 v = _mm256_loadu_ps(a + kc);
    const unsigned nz = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_cmp_ps(v, zero, _CMP_NEQ_UQ)));
    const unsigned is_one = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_cmp_ps(v, one, _CMP_EQ_OQ)));
    const unsigned b = nz & is_one;
    const unsigned g = nz & ~is_one;
    bin[t] = static_cast<std::uint8_t>(b & 0xFu);
    bin[t + 1] = static_cast<std::uint8_t>(b >> 4);
    graded[t] = static_cast<std::uint8_t>(g & 0xFu);
    graded[t + 1] = static_cast<std::uint8_t>((g >> 4) & 0xFu);
    any_bin |= b;
    any_graded |= g;
  }
  for (; kc < len; kc += kChunkWidth, ++t) {
    const std::size_t w = std::min(kChunkWidth, len - kc);
    unsigned b = 0, g = 0;
    for (std::size_t i = 0; i < w; ++i) {
      const float v = a[kc + i];
      const unsigned nz = v != 0.0f ? 1u : 0u;
      const unsigned is_one = v == 1.0f ? 1u : 0u;
      b |= (nz & is_one) << i;
      g |= (nz & (1u - is_one)) << i;
    }
    bin[t] = static_cast<std::uint8_t>(b);
    graded[t] = static_cast<std::uint8_t>(g);
    any_bin |= b;
    any_graded |= g;
  }
  return (any_bin != 0 ? kLutHasBinary : 0u) |
         (any_graded != 0 ? kLutHasGraded : 0u);
}

void lut_group_accum_avx2(const std::int16_t* table, const std::uint32_t* entries,
                          std::size_t count, std::int32_t* acc, std::size_t n) {
  std::size_t j = 0;
  for (; j + 16 <= n; j += 16) {
    auto* acc_lo = reinterpret_cast<__m256i*>(acc + j);
    auto* acc_hi = reinterpret_cast<__m256i*>(acc + j + 8);
    __m256i sum_lo = _mm256_loadu_si256(acc_lo);
    __m256i sum_hi = _mm256_loadu_si256(acc_hi);
    for (std::size_t s = 0; s < count; ++s) {
      const std::int16_t* row = table + entries[s] * n + j;
      const __m256i r =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row));
      sum_lo = _mm256_add_epi32(sum_lo,
                                _mm256_cvtepi16_epi32(_mm256_castsi256_si128(r)));
      sum_hi = _mm256_add_epi32(
          sum_hi, _mm256_cvtepi16_epi32(_mm256_extracti128_si256(r, 1)));
    }
    _mm256_storeu_si256(acc_lo, sum_lo);
    _mm256_storeu_si256(acc_hi, sum_hi);
  }
  for (; j < n; ++j) {
    std::int32_t sum = acc[j];
    for (std::size_t s = 0; s < count; ++s) sum += table[entries[s] * n + j];
    acc[j] = sum;
  }
}

}  // namespace

LutMaskBuildFn lut_mask_build_fn() {
  static const LutMaskBuildFn fn =
      cpu_supports_avx2() ? &lut_mask_build_avx2 : &lut_mask_build_scalar;
  return fn;
}

LutGroupAccumFn lut_group_accum_fn() {
  static const LutGroupAccumFn fn =
      cpu_supports_avx2() ? &lut_group_accum_avx2 : &lut_group_accum_scalar;
  return fn;
}

}  // namespace dtsnn::util::internal

#else  // !DTSNN_HAVE_AVX2

namespace dtsnn::util::internal {

LutMaskBuildFn lut_mask_build_fn() { return &lut_mask_build_scalar; }

LutGroupAccumFn lut_group_accum_fn() { return &lut_group_accum_scalar; }

}  // namespace dtsnn::util::internal

#endif  // DTSNN_HAVE_AVX2
