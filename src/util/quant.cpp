#include "util/quant.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/env.h"
#include "util/logging.h"

namespace dtsnn::util {

namespace {

std::size_t default_group_size(int bits) { return bits == 4 ? 32 : 64; }

}  // namespace

void QuantSpec::validate() const {
  if (bits != 8 && bits != 4) {
    throw QuantizationError(
        QuantizationError::Kind::kBadSpec,
        format("QuantSpec.bits must be 8 or 4, got %d", bits));
  }
}

std::size_t QuantSpec::resolved_group_size() const {
  validate();
  if (group_size != 0) return group_size;
  if (const auto env = env_u64("DTSNN_QUANT_GROUP_SIZE", 1)) {
    return static_cast<std::size_t>(*env);
  }
  return default_group_size(bits);
}

QuantizedMatrix QuantizedMatrix::quantize(const float* w, std::size_t out,
                                          std::size_t in, const QuantSpec& spec) {
  const std::size_t gs = spec.resolved_group_size();

  QuantizedMatrix q;
  q.out_ = out;
  q.in_ = in;
  q.bits_ = spec.bits;
  q.group_size_ = gs;
  q.groups_ = in == 0 ? 0 : (in + gs - 1) / gs;
  q.row_stride_ = spec.bits == 4 ? (out + 1) / 2 : out;
  q.data_.assign(q.row_stride_ * in, 0);
  q.scales_.assign(q.groups_ * out, 0.0f);

  const int qmax = q.qmax();
  for (std::size_t j = 0; j < out; ++j) {
    const float* wrow = w + j * in;
    for (std::size_t g = 0; g < q.groups_; ++g) {
      const std::size_t k0 = g * gs;
      const std::size_t k1 = std::min(k0 + gs, in);
      float maxabs = 0.0f;
      for (std::size_t kk = k0; kk < k1; ++kk) {
        maxabs = std::max(maxabs, std::fabs(wrow[kk]));
      }
      const float scale = maxabs > 0.0f ? maxabs / static_cast<float>(qmax) : 0.0f;
      q.scales_[g * out + j] = scale;
      const float inv = scale > 0.0f ? 1.0f / scale : 0.0f;
      for (std::size_t kk = k0; kk < k1; ++kk) {
        const long code = std::lround(static_cast<double>(wrow[kk]) *
                                      static_cast<double>(inv));
        const int v = static_cast<int>(
            std::clamp(code, static_cast<long>(-qmax), static_cast<long>(qmax)));
        if (q.bits_ == 4) {
          // Offset-binary nibble (q + 8 in [1, 15]); low nibble = even j.
          std::uint8_t& byte = q.data_[kk * q.row_stride_ + j / 2];
          const auto nibble = static_cast<std::uint8_t>(v + 8);
          if (j % 2 == 0) {
            byte = static_cast<std::uint8_t>((byte & 0xF0u) | nibble);
          } else {
            byte = static_cast<std::uint8_t>((byte & 0x0Fu) |
                                             static_cast<std::uint8_t>(nibble << 4));
          }
        } else {
          q.data_[kk * q.row_stride_ + j] =
              static_cast<std::uint8_t>(static_cast<std::int8_t>(v));
        }
      }
    }
  }
  return q;
}

QuantizedMatrix QuantizedMatrix::from_raw(std::size_t out, std::size_t in, int bits,
                                          std::size_t group_size,
                                          std::vector<std::uint8_t> packed,
                                          std::vector<float> scales) {
  if (bits != 8 && bits != 4) {
    throw QuantizationError(
        QuantizationError::Kind::kBadCheckpoint,
        format("quantized checkpoint entry has unsupported bit-width %d", bits));
  }
  if (group_size == 0 && in != 0) {
    throw QuantizationError(QuantizationError::Kind::kBadCheckpoint,
                            "quantized checkpoint entry has group_size 0");
  }
  QuantizedMatrix q;
  q.out_ = out;
  q.in_ = in;
  q.bits_ = bits;
  q.group_size_ = group_size;
  q.groups_ = in == 0 ? 0 : (in + group_size - 1) / group_size;
  q.row_stride_ = bits == 4 ? (out + 1) / 2 : out;
  if (packed.size() != q.row_stride_ * in || scales.size() != q.groups_ * out) {
    throw QuantizationError(
        QuantizationError::Kind::kBadCheckpoint,
        format("quantized checkpoint entry [%zu x %zu, %d-bit] has %zu packed "
               "bytes / %zu scales, expected %zu / %zu",
               out, in, bits, packed.size(), scales.size(), q.row_stride_ * in,
               q.groups_ * out));
  }
  q.data_ = std::move(packed);
  q.scales_ = std::move(scales);
  return q;
}

QuantLut build_spike_lut(const QuantizedMatrix& q) {
  QuantLut lut;
  if (q.empty()) return lut;
  const std::size_t out = q.out();
  const std::size_t in = q.in();
  const std::size_t gs = q.group_size();
  std::size_t chunks = 0;
  for (std::size_t g = 0; g < q.num_groups(); ++g) {
    const std::size_t k0 = g * gs;
    const std::size_t k1 = std::min(k0 + gs, in);
    chunks += (k1 - k0 + kLutChunkWidth - 1) / kLutChunkWidth;
  }
  lut.chunks = chunks;
  lut.out = out;
  lut.table.assign(chunks * kLutMaskCount * out, 0);

  // Per chunk: decode its (at most kLutChunkWidth) code rows once, then fill
  // the 16 mask entries incrementally — entry[mask] = entry[mask minus its
  // lowest bit] + codes[lowest bit] — so the build costs one add per table
  // element instead of popcount(mask) adds.
  std::vector<std::int16_t> codes(kLutChunkWidth * out);
  std::size_t chunk = 0;
  for (std::size_t g = 0; g < q.num_groups(); ++g) {
    const std::size_t k0 = g * gs;
    const std::size_t k1 = std::min(k0 + gs, in);
    for (std::size_t kc = k0; kc < k1; kc += kLutChunkWidth, ++chunk) {
      const std::size_t w = std::min(kLutChunkWidth, k1 - kc);
      for (std::size_t b = 0; b < w; ++b) {
        std::int16_t* crow = codes.data() + b * out;
        for (std::size_t j = 0; j < out; ++j) {
          crow[j] = static_cast<std::int16_t>(q.q(j, kc + b));
        }
      }
      std::int16_t* base = lut.table.data() + chunk * kLutMaskCount * out;
      for (std::size_t mask = 1; mask < kLutMaskCount; ++mask) {
        const std::size_t low = mask & (~mask + 1);
        const std::size_t bit = std::countr_zero(low);
        const std::int16_t* prev = base + (mask ^ low) * out;
        std::int16_t* dst = base + mask * out;
        if (bit >= w) {
          // Mask bit past a clipped chunk's width selects nothing; the
          // kernels never form such masks, but keep the table total anyway.
          std::copy(prev, prev + out, dst);
          continue;
        }
        const std::int16_t* crow = codes.data() + bit * out;
        for (std::size_t j = 0; j < out; ++j) {
          dst[j] = static_cast<std::int16_t>(prev[j] + crow[j]);
        }
      }
    }
  }
  return lut;
}

void QuantizedMatrix::ensure_lut() {
  if (!lut_.empty() || empty()) return;
  lut_ = build_spike_lut(*this);
}

int QuantizedMatrix::q(std::size_t j, std::size_t kk) const {
  if (bits_ == 4) {
    const std::uint8_t byte = data_[kk * row_stride_ + j / 2];
    const int nibble = j % 2 == 0 ? (byte & 0x0F) : (byte >> 4);
    return nibble - 8;
  }
  return static_cast<std::int8_t>(data_[kk * row_stride_ + j]);
}

}  // namespace dtsnn::util
