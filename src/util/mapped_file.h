// Read-only memory-mapped file with a portable buffered fallback.
//
// The zero-copy layer of the shard data plane: a resident shard block is a
// MappedFile over the .dtshard file, so a cache fill costs an mmap (no frame
// payload copy) and the page cache is shared across every process mapping
// the same shard store. On platforms without mmap — or when forced via
// Mode::kBuffered / DTSNN_SHARD_MMAP=0 — the same object owns a plain
// buffered copy of the file instead, with an identical read surface.
//
// This is the only file in the repo allowed to call mmap/munmap directly
// (scripts/check_invariants.py pins that, like util/sync.h for std::mutex).

#pragma once

#include <cstddef>
#include <filesystem>
#include <span>
#include <vector>

namespace dtsnn::util {

class MappedFile {
 public:
  enum class Mode {
    kAuto,      ///< map when the platform supports it, else buffered read
    kMapped,    ///< mmap or throw std::runtime_error
    kBuffered,  ///< portable buffered read (owns a private copy)
  };

  MappedFile() = default;  ///< empty handle: data() == nullptr, size() == 0
  explicit MappedFile(const std::filesystem::path& path, Mode mode = Mode::kAuto);
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  [[nodiscard]] const std::byte* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::span<const std::byte> bytes() const { return {data_, size_}; }

  /// True when backed by a live mapping (false for the buffered fallback and
  /// for an empty handle).
  [[nodiscard]] bool mapped() const { return mapped_; }

  /// Ask the OS to start reading the whole range into the page cache
  /// asynchronously. mmap alone faults pages lazily, so a prefetcher that
  /// maps without advising would defer all disk I/O to the consumer's first
  /// touch — this call is what makes mapped prefetch actually overlap I/O
  /// with compute. No-op for buffered/empty handles (the read already
  /// happened).
  void advise_willneed() const;

  /// Whether this build/platform can service Mode::kMapped.
  [[nodiscard]] static bool mmap_supported();

 private:
  void release() noexcept;

  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  std::vector<std::byte> buffer_;  // storage for the buffered fallback
};

}  // namespace dtsnn::util
