// Streaming statistics and histogram utilities used by the evaluator and
// the hardware model to aggregate per-sample measurements.

#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace dtsnn::util {

/// Welford streaming mean/variance accumulator.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance (divide by n).
  [[nodiscard]] double variance() const { return n_ ? m2_ / static_cast<double>(n_) : 0.0; }
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bin counting histogram over integer categories [0, num_bins).
class Histogram {
 public:
  explicit Histogram(std::size_t num_bins) : counts_(num_bins, 0) {}

  void add(std::size_t bin);
  [[nodiscard]] std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] std::size_t num_bins() const { return counts_.size(); }
  /// Fraction of mass in `bin`; 0 if the histogram is empty.
  [[nodiscard]] double fraction(std::size_t bin) const;
  /// Mean of the bin indices weighted by counts.
  [[nodiscard]] double mean() const;
  /// "12.3% 45.6% ..." rendering for reports.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Pearson correlation of two equal-length samples; 0 if degenerate.
double pearson(std::span<const double> x, std::span<const double> y);

/// p-quantile (linear interpolation) of a sample; input copied and sorted.
double quantile(std::span<const double> sample, double p);

/// Latency-style percentile digest of a sample. The fixed percentile set is
/// what the serving layer and its benches report (p50/p95/p99 plus the
/// p99.9 extreme tail the fleet bench grades scheduler policies on); an
/// empty sample yields all zeros. Quantiles use linear interpolation between
/// order statistics (the same rule as quantile()): for N samples the
/// p-quantile sits at fractional rank p*(N-1), so small windows interpolate
/// exactly rather than snapping to the nearest sample.
struct PercentileSummary {
  std::size_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
  double max = 0.0;
};

/// One sort, all percentiles: the shared helper behind server latency stats
/// and BENCH_serving.json.
PercentileSummary summarize_percentiles(std::span<const double> sample);

/// Sliding window over the most recent `capacity` samples, O(1) per add
/// with bounded memory — what a long-running server keeps for its latency
/// digests instead of an ever-growing history. snapshot() returns the
/// window's contents (unordered) for summarize_percentiles.
class BoundedSampleWindow {
 public:
  /// Throws std::invalid_argument when capacity == 0.
  explicit BoundedSampleWindow(std::size_t capacity);

  void add(double x);
  /// Samples currently in the window (<= capacity), in no defined order.
  [[nodiscard]] std::vector<double> snapshot() const { return data_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Total adds ever, including samples that have slid out.
  [[nodiscard]] std::size_t total_added() const { return total_; }

 private:
  std::size_t capacity_;
  std::vector<double> data_;
  std::size_t next_ = 0;  ///< overwrite cursor once full
  std::size_t total_ = 0;
};

}  // namespace dtsnn::util
