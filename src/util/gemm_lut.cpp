// LUT-accelerated quantized GEMM backends: int8_lut and int4_lut.
//
// Same consumed data as the spike backends (util::QuantizedMatrix, k-major
// packed codes, group-wise symmetric scales), but the inner loop is driven by
// a precomputed spike-mask lookup table (util::QuantLut): the k dimension is
// cut into chunks of kLutChunkWidth positions (clipped at scale-group
// boundaries), each A row's chunk becomes a 4-bit mask of "spiked here", and
// the table directly yields the per-output-column sum of the selected
// integer codes. One table gather + one exact int16->int32 accumulate
// (AVX2-vectorized in gemm_lut_avx2.cpp) replaces up to four per-spike
// unpack-and-add passes — and, for INT4, all nibble decoding.
//
// Bitwise identity with the corresponding *_spike backend holds by
// construction: group sums of integer codes are exact whichever way they are
// associated, graded (non-binary) spikes accumulate v * code into the float
// side in the same ascending-k order, spike-free groups are skipped (never
// flushed), and the per-group dequantize flush is the identical expression.
// Hence the same tolerance-gated identity tier and batch-composition
// invariance as the spike backends.
//
// Table sourcing per call: a LUT cached on the matrix (ensure_lut, built
// once by the layers) is used directly; otherwise a per-call table is built
// when the batch is large enough to amortize it, and tiny batches fall back
// to the shared spike kernel. All three paths produce identical bits.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/gemm.h"
#include "util/gemm_internal.h"
#include "util/quant.h"

namespace dtsnn::util {

namespace internal {

unsigned lut_mask_build_scalar(const float* a, std::size_t len, std::uint8_t* bin,
                               std::uint8_t* graded) {
  unsigned any_bin = 0, any_graded = 0;
  std::size_t t = 0;
  for (std::size_t kc = 0; kc < len; kc += kLutChunkWidth, ++t) {
    const std::size_t w = std::min(kLutChunkWidth, len - kc);
    unsigned b = 0, g = 0;
    for (std::size_t i = 0; i < w; ++i) {
      const float v = a[kc + i];
      const unsigned nz = v != 0.0f ? 1u : 0u;
      const unsigned is_one = v == 1.0f ? 1u : 0u;
      b |= (nz & is_one) << i;
      g |= (nz & (1u - is_one)) << i;
    }
    bin[t] = static_cast<std::uint8_t>(b);
    graded[t] = static_cast<std::uint8_t>(g);
    any_bin |= b;
    any_graded |= g;
  }
  return (any_bin != 0 ? kLutHasBinary : 0u) |
         (any_graded != 0 ? kLutHasGraded : 0u);
}

void lut_group_accum_scalar(const std::int16_t* table, const std::uint32_t* entries,
                            std::size_t count, std::int32_t* acc, std::size_t n) {
  for (std::size_t s = 0; s < count; ++s) {
    const std::int16_t* row = table + entries[s] * n;
#pragma omp simd
    for (std::size_t j = 0; j < n; ++j) acc[j] += row[j];
  }
}

}  // namespace internal

namespace {

const GemmBackend& blocked_backend() {
  static const GemmBackend& backend = *find_gemm_backend("blocked_omp");
  return backend;
}

/// Below this many A rows a per-call table build costs more than it saves;
/// the spike kernel runs instead (bit-identical either way).
constexpr std::size_t kLutLocalBuildMinRows = 8;

void qgemm_lut_kernel(const float* a, const QuantizedMatrix& q, const QuantLut& lut,
                      float* c, std::size_t m, std::size_t k, std::size_t n) {
  const std::size_t gs = q.group_size();
  const float* scales = q.scales().data();
  const std::int16_t* table = lut.table.data();
  const internal::LutMaskBuildFn mask_build = internal::lut_mask_build_fn();
  const internal::LutGroupAccumFn group_accum = internal::lut_group_accum_fn();
  // Chunks per group (the last group may be shorter; its mask slots are
  // simply left zero).
  const std::size_t group_span = std::min(gs, k);
  const std::size_t chunks_per_group =
      (group_span + kLutChunkWidth - 1) / kLutChunkWidth;
#pragma omp parallel
  {
    std::vector<std::int32_t> iacc(n);
    std::vector<float> facc(n);
    // Per-group chunk masks: binary spikes (served by one table gather per
    // chunk) and graded spikes (float fallback), plus the compressed list
    // of active binary entries handed to the accumulate.
    std::vector<std::uint8_t> bin_masks(chunks_per_group);
    std::vector<std::uint8_t> graded_masks(chunks_per_group);
    std::vector<std::uint32_t> entries(chunks_per_group);
#pragma omp for schedule(static) nowait
    for (std::size_t i = 0; i < m; ++i) {
      const float* arow = a + i * k;
      float* crow = c + i * n;
      // Chunk enumeration mirrors build_spike_lut exactly: ascending groups,
      // ascending chunks within a group, chunks clipped at group edges.
      std::size_t chunk = 0;
      for (std::size_t g = 0; g * gs < k; ++g) {
        const std::size_t k0 = g * gs;
        const std::size_t k1 = std::min(k0 + gs, k);
        const std::size_t group_chunks =
            (k1 - k0 + kLutChunkWidth - 1) / kLutChunkWidth;
        // Pass 1: vectorized spike classification into per-chunk masks.
        const unsigned have =
            mask_build(arow + k0, k1 - k0, bin_masks.data(), graded_masks.data());
        if (have == 0) {
          // Spike-free group: never flushed, exactly like the spike kernel.
          chunk += group_chunks;
          continue;
        }
        const std::int16_t* base = table + chunk * kLutMaskCount * n;
        chunk += group_chunks;
        // Pass 2: integer accumulate — compress to active chunks, then one
        // call per group, so the vectorized accumulator tile stays in
        // registers across chunks. Integer sums are exact in any
        // association order.
        std::fill(iacc.begin(), iacc.end(), 0);
        if ((have & internal::kLutHasBinary) != 0) {
          std::size_t count = 0;
          for (std::size_t t = 0; t < group_chunks; ++t) {
            entries[count] =
                static_cast<std::uint32_t>(t * kLutMaskCount + bin_masks[t]);
            count += bin_masks[t] != 0 ? 1 : 0;
          }
          group_accum(base, entries.data(), count, iacc.data(), n);
        }
        // Pass 3 (rare): graded spikes accumulate v * code into the float
        // side in ascending-k order — the spike kernel's order. Single-bit
        // table rows are exactly the decoded code rows.
        const bool any_graded = (have & internal::kLutHasGraded) != 0;
        if (any_graded) {
          std::fill(facc.begin(), facc.end(), 0.0f);
          for (std::size_t tc = 0; tc < group_chunks; ++tc) {
            const unsigned gmask = graded_masks[tc];
            if (gmask == 0) continue;
            for (std::size_t b = 0; b < kLutChunkWidth; ++b) {
              if ((gmask & (1u << b)) == 0) continue;
              const float v = arow[k0 + tc * kLutChunkWidth + b];
              const std::int16_t* row =
                  base + (tc * kLutMaskCount + (std::size_t{1} << b)) * n;
#pragma omp simd
              for (std::size_t j = 0; j < n; ++j) {
                facc[j] += v * static_cast<float>(row[j]);
              }
            }
          }
        }
        const float* srow = scales + g * n;
        if (any_graded) {
#pragma omp simd
          for (std::size_t j = 0; j < n; ++j) {
            crow[j] += (static_cast<float>(iacc[j]) + facc[j]) * srow[j];
          }
        } else {
#pragma omp simd
          for (std::size_t j = 0; j < n; ++j) {
            crow[j] += static_cast<float>(iacc[j]) * srow[j];
          }
        }
      }
    }
  }
}

template <int kBits>
class QuantLutBackend final : public QuantizedGemmBackend {
 public:
  [[nodiscard]] std::string_view name() const override {
    return kBits == 8 ? "int8_lut" : "int4_lut";
  }
  [[nodiscard]] int weight_bits() const override { return kBits; }
  [[nodiscard]] bool prefers_lut() const override { return true; }

 protected:
  void do_qgemm(const float* a, const QuantizedMatrix& q, float* c, std::size_t m,
                std::size_t k, std::size_t n) const override {
    if (q.has_lut()) {
      qgemm_lut_kernel(a, q, q.lut(), c, m, k, n);
    } else if (m >= kLutLocalBuildMinRows) {
      const QuantLut local = build_spike_lut(q);
      qgemm_lut_kernel(a, q, local, c, m, k, n);
    } else {
      internal::qgemm_spike_kernel(kBits, a, q, c, m, k, n);
    }
  }

  // Float ops (training, non-weight GEMMs) have nothing to quantize;
  // delegate to the blocked kernels, which keep the bitwise contract.
  void do_gemm(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
               std::size_t n) const override {
    blocked_backend().gemm(a, b, c, m, k, n, /*accumulate=*/true);
  }
  void do_gemm_at(const float* a, const float* b, float* c, std::size_t m,
                  std::size_t k, std::size_t n) const override {
    blocked_backend().gemm_at(a, b, c, m, k, n, /*accumulate=*/true);
  }
  void do_gemm_bt(const float* a, const float* b, float* c, std::size_t m,
                  std::size_t k, std::size_t n) const override {
    blocked_backend().gemm_bt(a, b, c, m, k, n, /*accumulate=*/true);
  }
};

}  // namespace

const GemmBackend* int8_lut_backend() {
  static const QuantLutBackend<8> backend;
  return &backend;
}

const GemmBackend* int4_lut_backend() {
  static const QuantLutBackend<4> backend;
  return &backend;
}

}  // namespace dtsnn::util
