// Typed environment-variable knobs.
//
// Every DTSNN_* tunable (shard cache slots, GEMM backend selection, prefetch
// depth, mmap toggle) is read through these helpers instead of ad-hoc
// std::getenv + strtoull at each call site. The contract is deliberately
// loud: an unset variable is std::nullopt (callers fall back to their
// default), but a *malformed* value throws std::invalid_argument naming the
// variable, the offending text, and the accepted form — a typo'd knob must
// never be silently ignored into a default.

#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace dtsnn::util {

/// Raw lookup: the value of `name`, or nullopt when unset. The implementation
/// is the repo's single std::getenv call site.
[[nodiscard]] std::optional<std::string> env_string(const char* name);

/// Unsigned-integer knob. Accepts decimal digits only (no sign, no spaces,
/// no suffix); rejects empty values, junk, overflow past uint64, and values
/// below `min_value`. Returns nullopt when unset, throws
/// std::invalid_argument otherwise.
[[nodiscard]] std::optional<std::uint64_t> env_u64(const char* name,
                                                   std::uint64_t min_value = 0);

/// Boolean knob. Accepts 0/1/true/false/on/off/yes/no (case-insensitive).
/// Returns nullopt when unset, throws std::invalid_argument otherwise.
[[nodiscard]] std::optional<bool> env_flag(const char* name);

}  // namespace dtsnn::util
