// Deterministic random number generation utilities.
//
// Every stochastic component in the library (weight init, dataset synthesis,
// device-variation injection) takes an explicit seed so that experiments are
// exactly reproducible. Rng wraps a SplitMix64-seeded xoshiro256++ generator,
// which is fast, has a 2^256-1 period, and passes BigCrush.

#pragma once

#include <cstdint>
#include <cmath>
#include <numbers>
#include <vector>

namespace dtsnn::util {

/// Counter-based seed mixer (SplitMix64). Used to expand one user seed into
/// independent stream seeds, e.g. one per layer or per dataset shard.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// xoshiro256++ generator with Gaussian and common integer/real helpers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
    has_cached_gauss_ = false;
  }

  /// Derive an independent generator; `stream` distinguishes children.
  [[nodiscard]] Rng fork(std::uint64_t stream) const {
    std::uint64_t sm = state_[0] ^ (0xa076'1d64'78bd'642full * (stream + 1));
    std::uint64_t derived = sm;
    return Rng(splitmix64(derived));
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t uniform_int(std::uint64_t n) {
    // Lemire's unbiased bounded generation.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Box–Muller (cached pair).
  double gaussian() {
    if (has_cached_gauss_) {
      has_cached_gauss_ = false;
      return cached_gauss_;
    }
    double u1 = 0.0;
    do {
      u1 = uniform();
    } while (u1 <= 1e-300);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    cached_gauss_ = r * std::sin(theta);
    has_cached_gauss_ = true;
    return r * std::cos(theta);
  }

  double gaussian(double mean, double stddev) { return mean + stddev * gaussian(); }

  bool bernoulli(double p) { return uniform() < p; }

  /// Fisher–Yates shuffle of an index vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_int(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  double cached_gauss_ = 0.0;
  bool has_cached_gauss_ = false;
};

}  // namespace dtsnn::util
