#include "util/mapped_file.h"

#include <cstring>
#include <fstream>
#include <stdexcept>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define DTSNN_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define DTSNN_HAVE_MMAP 0
#endif

namespace dtsnn::util {
namespace {

[[noreturn]] void fail(const std::filesystem::path& path, const char* what) {
  throw std::runtime_error("MappedFile: " + path.string() + ": " + what);
}

}  // namespace

bool MappedFile::mmap_supported() { return DTSNN_HAVE_MMAP != 0; }

MappedFile::MappedFile(const std::filesystem::path& path, Mode mode) {
  const bool want_map = mode == Mode::kMapped || (mode == Mode::kAuto && mmap_supported());
  if (mode == Mode::kMapped && !mmap_supported()) {
    fail(path, "mmap requested but unsupported on this platform");
  }

#if DTSNN_HAVE_MMAP
  if (want_map) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) fail(path, "cannot open for mapping");
    struct stat st{};
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
      ::close(fd);
      fail(path, "cannot stat");
    }
    size_ = static_cast<std::size_t>(st.st_size);
    if (size_ == 0) {
      // mmap of length 0 is invalid; an empty file maps to an empty handle.
      ::close(fd);
      return;
    }
    // MAP_SHARED + PROT_READ: the mapping is a read-only window onto the
    // shared page cache, so N processes over one shard store share physical
    // pages. The fd can be closed immediately — the mapping keeps the file
    // alive.
    void* addr = ::mmap(nullptr, size_, PROT_READ, MAP_SHARED, fd, 0);
    ::close(fd);
    if (addr == MAP_FAILED) fail(path, "mmap failed");
    data_ = static_cast<const std::byte*>(addr);
    mapped_ = true;
    return;
  }
#else
  (void)want_map;
#endif

  // Buffered fallback: one read into private memory, identical read surface.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) fail(path, "cannot open for reading");
  const std::streamoff end = in.tellg();
  if (end < 0) fail(path, "cannot determine size");
  buffer_.resize(static_cast<std::size_t>(end));
  in.seekg(0, std::ios::beg);
  if (!buffer_.empty() &&
      !in.read(reinterpret_cast<char*>(buffer_.data()),
               static_cast<std::streamsize>(buffer_.size()))) {
    fail(path, "short read");
  }
  data_ = buffer_.data();
  size_ = buffer_.size();
}

void MappedFile::release() noexcept {
#if DTSNN_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    // const_cast: munmap takes void* but the mapping was handed out
    // read-only; nothing is written through it here.
    ::munmap(const_cast<std::byte*>(data_), size_);
  }
#endif
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  buffer_.clear();
}

MappedFile::~MappedFile() { release(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      mapped_(other.mapped_),
      buffer_(std::move(other.buffer_)) {
  if (!mapped_ && !buffer_.empty()) data_ = buffer_.data();
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
  other.buffer_.clear();
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    release();
    data_ = other.data_;
    size_ = other.size_;
    mapped_ = other.mapped_;
    buffer_ = std::move(other.buffer_);
    if (!mapped_ && !buffer_.empty()) data_ = buffer_.data();
    other.data_ = nullptr;
    other.size_ = 0;
    other.mapped_ = false;
    other.buffer_.clear();
  }
  return *this;
}

void MappedFile::advise_willneed() const {
#if DTSNN_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    // Best effort: a failed advise only loses the readahead overlap.
    ::posix_madvise(const_cast<std::byte*>(data_), size_, POSIX_MADV_WILLNEED);
  }
#endif
}

}  // namespace dtsnn::util
