// Join-on-destruction thread handle — the only way this repo spawns threads.
//
// scripts/check_invariants.py bans naming std::thread outside src/util/ so
// every worker in the tree goes through this wrapper: a Thread that leaves
// scope is joined, never detached and never std::terminate'd for being
// forgotten. Deliberately thin (no interrupt tokens, no pooling): the
// serving worker, the shard prefetcher, and test client threads all want
// exactly "run this callable, join before the captures die".

#pragma once

#include <thread>
#include <utility>

namespace dtsnn::util {

class Thread {
 public:
  Thread() = default;

  template <typename Fn, typename... Args>
  explicit Thread(Fn&& fn, Args&&... args)
      : thread_(std::forward<Fn>(fn), std::forward<Args>(args)...) {}

  ~Thread() {
    if (thread_.joinable()) thread_.join();
  }

  Thread(Thread&&) noexcept = default;
  Thread& operator=(Thread&& other) noexcept {
    if (this != &other) {
      if (thread_.joinable()) thread_.join();
      thread_ = std::move(other.thread_);
    }
    return *this;
  }
  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;

  [[nodiscard]] bool joinable() const { return thread_.joinable(); }
  void join() { thread_.join(); }

 private:
  std::thread thread_;
};

}  // namespace dtsnn::util
