// Multi-backend single-precision GEMM dispatch layer.
//
// Every convolution and linear layer funnels through one of three row-major
// GEMM ops (NN, A^T-stationary, B^T). They are served by runtime-selected
// backends behind the GemmBackend interface:
//
//   scalar_ref    plain triple loops; the oracle that *defines* the bitwise
//                 accumulation contract (see below).
//   blocked_omp   cache-blocked, OpenMP-parallel kernels (the historical
//                 default).
//   avx2          AVX2 kernels vectorized over independent output columns —
//                 each output element keeps its own sequential k-order
//                 accumulator lane, and mul/add stay separate instructions
//                 (no FMA contraction) — so results are bitwise identical to
//                 scalar_ref. Compiled only when the toolchain supports
//                 -mavx2; dispatch additionally gated by runtime CPUID.
//   sparse_spike  CSR-style row compression of A exploiting spike sparsity
//                 (zeros skipped, binary spikes take a multiply-free path);
//                 generalizes the eval-time zero-skip A-stationary kernel so
//                 training-time convolutions benefit too.
//   avx512        like avx2 but with 16-lane AVX-512F kernels; own TU
//                 compiled with -mavx512f -ffp-contract=off (AVX-512F
//                 implies FMA, and contraction would break the bitwise
//                 contract). Auto-selected above avx2 when the CPU has it.
//   adaptive      density-adaptive dispatcher (pseudo-backend): routes each
//                 NN call between the best dense backend and sparse_spike
//                 from the observed nonzero density of A, with per-call-site
//                 hysteresis. Decisions are a pure function of the data —
//                 never timing — and both routes are bitwise-tier, so
//                 results are bitwise identical to scalar_ref regardless of
//                 the route taken. Opt in via DTSNN_GEMM_ADAPTIVE=1 or by
//                 name.
//   int8_spike    quantized inference tier: weights pre-quantized to INT8
//   int4_spike    (or packed INT4) with group-wise symmetric scales
//                 (util::QuantizedMatrix); binary {0,1} spike activations
//                 take a multiply-free path (integer adds of selected
//                 quantized weight rows, one dequantize per group per
//                 output) with a graded-spike float fallback. Selected only
//                 by explicit name, never by auto-selection, and usable only
//                 on networks with calibrated scales (see snn/quantize.h).
//   int8_lut      LUT-accelerated variants of the spike backends: per scale
//   int4_lut      group, 4-position spike masks index precomputed code-sum
//                 tables (util::QuantLut), replacing per-spike unpack+add
//                 with one table gather + integer add per chunk. Bitwise
//                 identical to the corresponding *_spike backend (the
//                 integer group sums are exact and the graded/flush float
//                 order is unchanged), hence the same tolerance-gated tier.
//
// Identity contract tiers:
//
//   kBitwise (scalar_ref, blocked_omp, avx2, avx512, sparse_spike,
//   adaptive): for every op, each output element accumulates its
//   contributions in ascending-k order with exact-zero A values skipped
//   (NN / A^T ops), and the B^T op sums each dot product sequentially into
//   a local accumulator before a single add into C. These backends follow
//   the contract exactly, so DT-SNN logits — and therefore early-exit
//   decisions — are bitwise identical no matter which backend runs, and the
//   per-backend identity suite enforces it against scalar_ref.
//
//   kToleranceGated (int8_spike, int4_spike, int8_lut, int4_lut): quantized
//   weights cannot reproduce float logits bitwise. These backends instead
//   honor a tolerance gate versus the scalar_ref oracle: per dataset
//   preset, the early-exit decision flip rate and accuracy delta are
//   measured (core::calibrate_quantized / core::compare_decisions) and must
//   stay within configured bounds. Their plain float ops (gemm / gemm_at /
//   gemm_bt, used by training and non-weight GEMMs) delegate to the
//   blocked kernels and so remain bitwise-tier.
//
// Selection: the DTSNN_GEMM_BACKEND environment variable forces a backend by
// name (unknown or unavailable names throw, listing the registry with
// availability); otherwise DTSNN_GEMM_ADAPTIVE=1 selects adaptive, else the
// best available dense backend: avx512 > avx2 > blocked_omp.
//
// Call sites do not invoke backends directly: they go through a GemmContext
// (selected backend + per-op call/FLOP/density accounting, attributed to the
// backend that actually executed each call under adaptive routing). Layers
// default to the process-wide GemmContext::global() and can be re-pointed
// per network (snn::SpikingNetwork::set_gemm_context).

#pragma once

#include <cstddef>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/sync.h"
#include "util/thread_annotations.h"

namespace dtsnn::util {

class QuantizedMatrix;  // util/quant.h

// ------------------------------------------------------------------ backend

/// Which identity contract a backend honors (see file comment).
enum class GemmIdentityTier {
  kBitwise,         ///< bitwise identical to scalar_ref, always
  kToleranceGated,  ///< quantized: accuracy-delta / decision-flip-rate gate
};

/// The op kinds a GemmContext dispatches. Passed to GemmBackend::route so a
/// routing backend can treat the spike-carrying NN op differently from the
/// dense A^T / B^T / quantized ops.
enum class GemmOp { kNN, kAT, kBT, kQuant };

class GemmBackend {
 public:
  virtual ~GemmBackend() = default;

  /// Stable identifier used by DTSNN_GEMM_BACKEND and reports.
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Identity contract tier. Bitwise unless overridden.
  [[nodiscard]] virtual GemmIdentityTier identity_tier() const {
    return GemmIdentityTier::kBitwise;
  }

  /// Whether this backend can run on the current machine (runtime CPUID for
  /// ISA-specific backends). Unavailable backends stay listed but are never
  /// selected.
  [[nodiscard]] virtual bool available() const { return true; }

  /// Whether dispatch should measure A's nonzero density and consult route()
  /// before executing (the adaptive pseudo-backend). Plain backends execute
  /// themselves and dispatch skips the extra pass when stats are off.
  [[nodiscard]] virtual bool routes_by_density() const { return false; }

  /// The backend that should actually execute this call; *this by default.
  /// `a_density` is the observed nonzero density of the A operand. The
  /// decision must be a pure function of the arguments plus per-call-site
  /// state derived from them (never timing or wall-clock), and every
  /// returned backend must honor this backend's identity tier, so routing
  /// can never change results beyond the tier's contract.
  [[nodiscard]] virtual const GemmBackend& route(GemmOp op, double a_density,
                                                 std::size_t m, std::size_t k,
                                                 std::size_t n) const;

  /// C[m,n] (+)= A[m,k] * B[k,n]   (all row-major). With accumulate == false
  /// C is overwritten. Degenerate shapes (m, k, or n == 0) are handled
  /// deterministically here: C is zeroed when not accumulating and the
  /// kernel is never entered.
  void gemm(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
            std::size_t n, bool accumulate = false) const;

  /// C[m,n] (+)= A^T * B where A is stored row-major as [k,m].
  void gemm_at(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
               std::size_t n, bool accumulate = false) const;

  /// C[m,n] (+)= A * B^T where B is stored row-major as [n,k].
  void gemm_bt(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
               std::size_t n, bool accumulate = false) const;

 protected:
  /// Kernels always accumulate into C (the public wrappers zero C first when
  /// not accumulating) and are only entered with m, k, n all nonzero.
  virtual void do_gemm(const float* a, const float* b, float* c, std::size_t m,
                       std::size_t k, std::size_t n) const = 0;
  virtual void do_gemm_at(const float* a, const float* b, float* c, std::size_t m,
                          std::size_t k, std::size_t n) const = 0;
  virtual void do_gemm_bt(const float* a, const float* b, float* c, std::size_t m,
                          std::size_t k, std::size_t n) const = 0;
};

// ------------------------------------------------------------ quantized tier

/// Base of the tolerance-gated quantized backends (int8_spike, int4_spike).
/// Adds the quantized-weight op: C[m,n] (+)= A[m,k] * Q^T where Q is a
/// QuantizedMatrix of shape [n, k] (output-channel major, like the layers'
/// float weights). A carries spike activations; exact-zero entries are
/// skipped, exact-1.0 entries take the multiply-free integer path, anything
/// else falls back to graded float accumulation. Accumulation is ascending-k
/// within each scale group and row-independent, so results are deterministic
/// and batch-composition invariant — but NOT bitwise comparable to the float
/// backends (identity_tier() == kToleranceGated).
class QuantizedGemmBackend : public GemmBackend {
 public:
  [[nodiscard]] GemmIdentityTier identity_tier() const final {
    return GemmIdentityTier::kToleranceGated;
  }

  /// Weight bit-width this backend consumes (8 or 4). Feeding it a
  /// QuantizedMatrix of any other width throws
  /// QuantizationError(kBitsMismatch).
  [[nodiscard]] virtual int weight_bits() const = 0;

  /// Whether this backend runs fastest against a cached spike-mask LUT
  /// (QuantizedMatrix::ensure_lut). Layers build the LUT once per quantized
  /// weight matrix when true; backends still work without one (per-call
  /// table for large batches, spike-path fallback for small ones).
  [[nodiscard]] virtual bool prefers_lut() const { return false; }

  /// C[m,n] (+)= A[m,k] * Q^T, Q quantized [n, k]. Degenerate shapes
  /// (m, k, or n == 0) are handled like the float ops: C is zeroed when not
  /// accumulating and the kernel is never entered. Throws QuantizationError
  /// for bit-width (kBitsMismatch) or dimension (kShapeMismatch) disagreements.
  void qgemm(const float* a, const QuantizedMatrix& q, float* c, std::size_t m,
             std::size_t k, std::size_t n, bool accumulate = false) const;

 protected:
  /// Same always-accumulate / nonzero-shapes contract as the float kernels.
  virtual void do_qgemm(const float* a, const QuantizedMatrix& q, float* c,
                        std::size_t m, std::size_t k, std::size_t n) const = 0;
};

/// Downcast helper: the backend as a quantized backend, or nullptr when it
/// is a plain float (bitwise-tier) backend.
const QuantizedGemmBackend* as_quantized_backend(const GemmBackend* backend);

// ----------------------------------------------------------------- registry

/// All compiled-in backends in registration order: scalar_ref, blocked_omp,
/// avx2 (when the toolchain supported -mavx2), avx512 (when the toolchain
/// supported -mavx512f and the build did not disable it), sparse_spike,
/// adaptive, int8_spike, int4_spike, int8_lut, int4_lut.
std::span<const GemmBackend* const> gemm_backends();

/// Lookup by name; nullptr when no such backend is compiled in.
const GemmBackend* find_gemm_backend(std::string_view name);

/// Resolve an explicit override (nullptr or empty = automatic selection:
/// the adaptive dispatcher when DTSNN_GEMM_ADAPTIVE is set truthy, else
/// preferred_dense_gemm_backend()). Throws std::invalid_argument for unknown
/// names and std::runtime_error for known backends this machine cannot run —
/// both list every registered backend and its availability — so a typo'd or
/// impossible DTSNN_GEMM_BACKEND fails loudly instead of silently falling
/// back.
const GemmBackend& resolve_gemm_backend(const char* override_name);

/// The process default: resolve_gemm_backend(getenv("DTSNN_GEMM_BACKEND")),
/// evaluated once and cached.
const GemmBackend& default_gemm_backend();

/// The best dense bitwise backend this machine can run: avx512 > avx2 >
/// blocked_omp. Automatic selection and the adaptive dispatcher's dense
/// route both use this.
const GemmBackend& preferred_dense_gemm_backend();

/// Runtime CPUID check used to gate the avx2 backend.
bool cpu_supports_avx2();

/// Runtime CPUID check (AVX-512 Foundation) used to gate the avx512 backend.
bool cpu_supports_avx512();

// ------------------------------------------------------- adaptive dispatch

/// Snapshot of one adaptive call-site: the (m, k, n) NN shape it keys on and
/// the current hysteresis state. For introspection in tests and benches.
struct AdaptiveGemmDecision {
  std::size_t m = 0, k = 0, n = 0;
  bool sparse = false;        ///< current route: sparse_spike vs dense
  double last_density = 0.0;  ///< A-density observed by the latest call
  std::size_t calls = 0;      ///< routed calls for this shape
  std::size_t switches = 0;   ///< route flips after the initial decision
};

/// All call-site states of the process-wide adaptive backend, in
/// deterministic (m, k, n) key order.
std::vector<AdaptiveGemmDecision> adaptive_gemm_decisions();

/// Drop all adaptive call-site state (tests/benches isolating runs).
void reset_adaptive_gemm_state();

// -------------------------------------------------------------------- stats

/// Accounting for one GEMM op kind.
struct GemmOpStats {
  std::size_t calls = 0;
  double flops = 0.0;       ///< dense FLOP count, 2*m*k*n per call
  double a_elements = 0.0;  ///< total elements of A seen
  double a_nonzeros = 0.0;  ///< nonzero elements of A seen
  /// Element-weighted nonzero density of A across all calls (spike density
  /// when A carries spike activations).
  [[nodiscard]] double density() const {
    return a_elements > 0.0 ? a_nonzeros / a_elements : 0.0;
  }
};

/// Per-op accounting for one attribution bucket (the context total, or one
/// executed backend's slice under GemmStats::by_backend).
struct GemmOpBreakdown {
  GemmOpStats nn;     ///< gemm
  GemmOpStats at;     ///< gemm_at
  GemmOpStats bt;     ///< gemm_bt
  GemmOpStats quant;  ///< qgemm (quantized-weight op; flops = dense equivalent)
  [[nodiscard]] std::size_t calls() const {
    return nn.calls + at.calls + bt.calls + quant.calls;
  }
  [[nodiscard]] double flops() const {
    return nn.flops + at.flops + bt.flops + quant.flops;
  }
  [[nodiscard]] double elements() const {
    return nn.a_elements + at.a_elements + bt.a_elements + quant.a_elements;
  }
  [[nodiscard]] double nonzeros() const {
    return nn.a_nonzeros + at.a_nonzeros + bt.a_nonzeros + quant.a_nonzeros;
  }
  [[nodiscard]] double density() const {
    const double e = elements();
    return e > 0.0 ? nonzeros() / e : 0.0;
  }
};

struct GemmStats : GemmOpBreakdown {
  /// The same accounting attributed to the backend that actually *executed*
  /// each call, keyed by backend name. Under adaptive routing this differs
  /// from the context's selected backend; for plain backends there is one
  /// entry matching the totals. Conservation holds exactly: summing any
  /// counter across by_backend reproduces the aggregate above.
  std::map<std::string, GemmOpBreakdown, std::less<>> by_backend;
};

// ------------------------------------------------------------------ context

/// A backend selection plus per-op accounting, threaded through every GEMM
/// call site. Thread-safe for concurrent GEMM calls (parallel evaluation
/// replicas share the global context); set_backend is not synchronized
/// against in-flight calls and must happen between them.
class GemmContext {
 public:
  /// Uses default_gemm_backend().
  GemmContext();
  explicit GemmContext(const GemmBackend& backend) : backend_(&backend) {}

  /// Process-wide default context used by layers with no explicit context.
  static GemmContext& global();

  [[nodiscard]] const GemmBackend& backend() const { return *backend_; }
  void set_backend(const GemmBackend& backend) { backend_ = &backend; }

  /// Accounting costs one pass over A per call (the nonzero count) plus a
  /// mutex acquisition — cheap next to the GEMM itself, but measurable on
  /// very sparse or tiny ops. Latency-critical callers can turn it off;
  /// disabled calls record nothing at all.
  void set_stats_enabled(bool enabled) { stats_enabled_ = enabled; }
  [[nodiscard]] bool stats_enabled() const { return stats_enabled_; }

  void gemm(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
            std::size_t n, bool accumulate = false);
  void gemm_at(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
               std::size_t n, bool accumulate = false);
  void gemm_bt(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
               std::size_t n, bool accumulate = false);

  /// Quantized-weight op; valid only when the selected backend is a
  /// QuantizedGemmBackend (throws QuantizationError(kNotQuantized)
  /// otherwise — layers check as_quantized_backend before dispatching here).
  void qgemm(const float* a, const QuantizedMatrix& q, float* c, std::size_t m,
             std::size_t k, std::size_t n, bool accumulate = false);

  [[nodiscard]] GemmStats stats() const DTSNN_EXCLUDES(mutex_);
  void reset_stats() DTSNN_EXCLUDES(mutex_);

 private:
  /// Shared dispatch step: measure A's density when needed (stats on, or the
  /// backend routes by density), consult route(), and record the call under
  /// both the aggregate stats and the executed backend's attribution slice.
  /// Returns the backend that must execute the call.
  const GemmBackend& route_and_record(GemmOpStats GemmOpBreakdown::* op, GemmOp kind,
                                      const float* a, std::size_t m, std::size_t k,
                                      std::size_t n) DTSNN_EXCLUDES(mutex_);

  const GemmBackend* backend_;
  bool stats_enabled_ = true;
  mutable Mutex mutex_;
  GemmStats stats_ DTSNN_GUARDED_BY(mutex_);
};

}  // namespace dtsnn::util
