// Single-precision GEMM kernels backing the convolution and linear layers.
//
// These are cache-blocked, OpenMP-parallel reference kernels — fast enough to
// train the scaled-down spiking networks used throughout the benches on CPU,
// while remaining dependency-free and easy to audit.

#pragma once

#include <cstddef>

namespace dtsnn::util {

/// C[m,n] += A[m,k] * B[k,n]   (row-major, C must be pre-initialized).
/// If `accumulate` is false, C is overwritten instead.
void gemm(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
          std::size_t n, bool accumulate = false);

/// C[m,n] (+)= A^T[m,k] * B[k,n] where A is stored row-major as [k,m].
void gemm_at(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
             std::size_t n, bool accumulate = false);

/// C[m,n] (+)= A[m,k] * B^T[k,n] where B is stored row-major as [n,k].
void gemm_bt(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
             std::size_t n, bool accumulate = false);

}  // namespace dtsnn::util
