#include "util/logging.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <vector>

namespace dtsnn::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

std::string vformat(const char* fmt, va_list args) {
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  if (needed <= 0) return {};
  std::vector<char> buf(static_cast<std::size_t>(needed) + 1);
  std::vsnprintf(buf.data(), buf.size(), fmt, args);
  return std::string(buf.data(), static_cast<std::size_t>(needed));
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void logf(LogLevel level, const char* fmt, ...) {
  if (level < g_level.load()) return;
  va_list args;
  va_start(args, fmt);
  const std::string msg = vformat(fmt, args);
  va_end(args);
  std::string line = "[";
  line += level_tag(level);
  line += "] ";
  line += msg;
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::string s = vformat(fmt, args);
  va_end(args);
  return s;
}

}  // namespace dtsnn::util
