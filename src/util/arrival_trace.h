// Seeded deterministic request-arrival traces.
//
// The serving bench and the server tests need an asynchronous workload
// shape — when each request arrives and which dataset sample it asks for —
// that is exactly reproducible across runs and hosts. This generator draws
// the whole trace up front from an explicit seed (util::Rng), so workload
// shape never depends on wall-clock randomness; only the *replay* of a
// trace touches the clock, and a replayer is free to ignore the offsets and
// submit as fast as it can (the decision outputs are identical either way).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dtsnn::util {

struct ArrivalTraceSpec {
  /// Total number of arrivals (one single-sample request each).
  std::size_t arrivals = 64;
  /// Mean gap between bursts in microseconds; gaps are exponential, so the
  /// trace is a Poisson process (the standard open-loop serving workload).
  /// 0 means every arrival is immediate (a closed burst).
  double mean_gap_us = 500.0;
  /// Arrivals per burst: each burst shares one timestamp, modelling
  /// simultaneous submissions from independent clients.
  std::size_t burst = 1;
  /// Sample indices are drawn uniformly from [0, sample_limit).
  std::size_t sample_limit = 1;
  std::uint64_t seed = 0x7ace7aceull;
};

struct Arrival {
  std::uint64_t offset_us = 0;  ///< nondecreasing offset from trace start
  std::size_t sample = 0;       ///< dataset sample index
};

/// Generate the trace for `spec`. Deterministic: equal specs yield equal
/// traces. Throws std::invalid_argument for arrivals == 0, burst == 0,
/// sample_limit == 0, or negative / non-finite mean_gap_us.
std::vector<Arrival> make_arrival_trace(const ArrivalTraceSpec& spec);

// ---------------------------------------------------------------- multi-class
//
// Production traffic is not one Poisson stream: it is several tenant
// classes, each with its own rate, burstiness, and latency expectation
// (an interactive class with a deadline, a bulk class submitting in
// bursts, ...). A multi-class trace draws one independent seeded stream
// per class and merges them on the shared timeline, tagging every arrival
// with its class index so the serving fleet can route it to the right
// tenant. Equal specs yield equal traces, bit for bit.

/// One tenant class of a multi-class trace.
struct ArrivalClassSpec {
  /// Human-readable class name, carried into reports ("interactive", ...).
  std::string name;
  /// Arrivals this class contributes to the trace.
  std::size_t arrivals = 16;
  /// Mean inter-burst gap in microseconds (exponential, i.e. Poisson
  /// bursts); 0 means the whole class arrives at t=0.
  double mean_gap_us = 500.0;
  /// Arrivals per burst (all sharing one timestamp).
  std::size_t burst = 1;
  /// Relative serving deadline in microseconds stamped on each arrival;
  /// 0 means the class is not deadline-bound.
  std::uint64_t deadline_us = 0;
};

struct MultiClassTraceSpec {
  std::vector<ArrivalClassSpec> classes;
  /// Sample indices are drawn uniformly from [0, sample_limit) for every
  /// class (they share one dataset).
  std::size_t sample_limit = 1;
  std::uint64_t seed = 0x7ace7aceull;
};

/// One arrival of a multi-class trace.
struct ClassedArrival {
  std::uint64_t offset_us = 0;    ///< nondecreasing offset from trace start
  std::size_t sample = 0;         ///< dataset sample index
  std::size_t tenant_class = 0;   ///< index into MultiClassTraceSpec::classes
  std::uint64_t deadline_us = 0;  ///< relative deadline; 0 = none
};

/// Generate a merged multi-class trace: each class draws its own
/// deterministic substream (derived from spec.seed and the class index),
/// then the streams are merged sorted by (offset, class, intra-class
/// position) — fully deterministic, never touching the wall clock. Throws
/// std::invalid_argument for an empty class list, sample_limit == 0, or any
/// class with arrivals == 0, burst == 0, or negative / non-finite
/// mean_gap_us.
std::vector<ClassedArrival> make_arrival_trace(const MultiClassTraceSpec& spec);

}  // namespace dtsnn::util
