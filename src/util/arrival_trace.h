// Seeded deterministic request-arrival traces.
//
// The serving bench and the server tests need an asynchronous workload
// shape — when each request arrives and which dataset sample it asks for —
// that is exactly reproducible across runs and hosts. This generator draws
// the whole trace up front from an explicit seed (util::Rng), so workload
// shape never depends on wall-clock randomness; only the *replay* of a
// trace touches the clock, and a replayer is free to ignore the offsets and
// submit as fast as it can (the decision outputs are identical either way).

#pragma once

#include <cstdint>
#include <vector>

namespace dtsnn::util {

struct ArrivalTraceSpec {
  /// Total number of arrivals (one single-sample request each).
  std::size_t arrivals = 64;
  /// Mean gap between bursts in microseconds; gaps are exponential, so the
  /// trace is a Poisson process (the standard open-loop serving workload).
  /// 0 means every arrival is immediate (a closed burst).
  double mean_gap_us = 500.0;
  /// Arrivals per burst: each burst shares one timestamp, modelling
  /// simultaneous submissions from independent clients.
  std::size_t burst = 1;
  /// Sample indices are drawn uniformly from [0, sample_limit).
  std::size_t sample_limit = 1;
  std::uint64_t seed = 0x7ace7aceull;
};

struct Arrival {
  std::uint64_t offset_us = 0;  ///< nondecreasing offset from trace start
  std::size_t sample = 0;       ///< dataset sample index
};

/// Generate the trace for `spec`. Deterministic: equal specs yield equal
/// traces. Throws std::invalid_argument for arrivals == 0, burst == 0,
/// sample_limit == 0, or negative / non-finite mean_gap_us.
std::vector<Arrival> make_arrival_trace(const ArrivalTraceSpec& spec);

}  // namespace dtsnn::util
