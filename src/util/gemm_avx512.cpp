// AVX-512 GEMM backend. Compiled with -mavx512f -ffp-contract=off and only
// when the toolchain supports the flag (CMake defines DTSNN_HAVE_AVX512;
// -DDTSNN_DISABLE_AVX512=ON forces the stub build so the registry-fallback
// path stays testable on capable hosts). Runtime dispatch is additionally
// gated by CPUID in available().
//
// Bitwise contract (see util/gemm.h): identical scheme to the AVX2 backend,
// widened to 16 lanes — vectorization strictly over independent output
// columns, each output element's contributions arriving in ascending-k
// order, mul and add as separate instructions. -mavx512f implies FMA
// support, so unlike the AVX2 TU the compiler *could* contract a*b+c here;
// -ffp-contract=off forbids that for the whole TU, keeping scalar tails and
// intrinsics alike on the scalar_ref rounding.
//
// This is the only translation unit allowed to use AVX-512 intrinsics
// (enforced by scripts/check_invariants.py, rule avx512-isolation).

#include "util/gemm_internal.h"

#ifdef DTSNN_HAVE_AVX512

#include <immintrin.h>

#include <cstddef>
#include <vector>

#include "util/gemm.h"

namespace dtsnn::util {
namespace {

/// Column-block width of the AVX-512 gemm_bt kernel: one __m512 of
/// independent per-column accumulators.
constexpr std::size_t kLanes = 16;

/// crow[j..j+n) += aval * brow[j..j+n) with 16-wide lanes; per-column sums
/// stay independent, so the scalar order is preserved.
inline void axpy_row(float aval, const float* brow, float* crow, std::size_t n) {
  const __m512 av = _mm512_set1_ps(aval);
  std::size_t j = 0;
  for (; j + kLanes <= n; j += kLanes) {
    const __m512 prod = _mm512_mul_ps(av, _mm512_loadu_ps(brow + j));
    _mm512_storeu_ps(crow + j, _mm512_add_ps(_mm512_loadu_ps(crow + j), prod));
  }
  for (; j < n; ++j) crow[j] += aval * brow[j];
}

/// Pack B^T rows [j0, j0 + kLanes) of B[n,k] k-major with stride kLanes (the
/// 16-lane analogue of internal::pack_bt_columns).
void pack_bt_columns_512(const float* b, std::size_t k, std::size_t j0,
                         float* packed) {
  for (std::size_t l = 0; l < kLanes; ++l) {
    const float* brow = b + (j0 + l) * k;
    for (std::size_t kk = 0; kk < k; ++kk) packed[kk * kLanes + l] = brow[kk];
  }
}

class Avx512Backend final : public GemmBackend {
 public:
  [[nodiscard]] std::string_view name() const override { return "avx512"; }
  [[nodiscard]] bool available() const override { return cpu_supports_avx512(); }

 protected:
  void do_gemm(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
               std::size_t n) const override {
#pragma omp parallel for schedule(static)
    for (std::size_t i = 0; i < m; ++i) {
      const float* arow = a + i * k;
      float* crow = c + i * n;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float aval = arow[kk];
        if (aval == 0.0f) continue;  // same zero-skip rule as scalar_ref
        axpy_row(aval, b + kk * n, crow, n);
      }
    }
  }

  void do_gemm_at(const float* a, const float* b, float* c, std::size_t m,
                  std::size_t k, std::size_t n) const override {
#pragma omp parallel for schedule(static)
    for (std::size_t i = 0; i < m; ++i) {
      float* crow = c + i * n;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float aval = a[kk * m + i];
        if (aval == 0.0f) continue;
        axpy_row(aval, b + kk * n, crow, n);
      }
    }
  }

  void do_gemm_bt(const float* a, const float* b, float* c, std::size_t m,
                  std::size_t k, std::size_t n) const override {
    // Packed-column scheme as in the AVX2 backend, with 16 B^T rows per
    // block: 16 accumulator lanes each summing their own dot product
    // sequentially in k with one add into C. Column-block width does not
    // affect the bitwise result — every column's sum is its own lane either
    // way — so sharing the scalar tail with the 8-lane backends is sound.
    std::vector<float> packed(k * kLanes);
    std::size_t j0 = 0;
    for (; j0 + kLanes <= n; j0 += kLanes) {
      pack_bt_columns_512(b, k, j0, packed.data());
      const float* pk = packed.data();
#pragma omp parallel for schedule(static)
      for (std::size_t i = 0; i < m; ++i) {
        const float* arow = a + i * k;
        __m512 acc = _mm512_setzero_ps();
        for (std::size_t kk = 0; kk < k; ++kk) {
          const __m512 av = _mm512_set1_ps(arow[kk]);
          acc = _mm512_add_ps(acc,
                              _mm512_mul_ps(av, _mm512_loadu_ps(pk + kk * kLanes)));
        }
        float* cj = c + i * n + j0;
        _mm512_storeu_ps(cj, _mm512_add_ps(_mm512_loadu_ps(cj), acc));
      }
    }
    internal::gemm_bt_scalar_tail(a, b, c, m, k, n, j0);
  }
};

}  // namespace

const GemmBackend* avx512_backend_or_null() {
  static const Avx512Backend backend;
  return &backend;
}

}  // namespace dtsnn::util

#else  // !DTSNN_HAVE_AVX512

namespace dtsnn::util {

const GemmBackend* avx512_backend_or_null() { return nullptr; }

}  // namespace dtsnn::util

#endif  // DTSNN_HAVE_AVX512
