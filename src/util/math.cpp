#include "util/math.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace dtsnn::util {

void softmax(std::span<const float> logits, std::span<float> probs) {
  assert(!logits.empty() && logits.size() == probs.size());
  const float maxv = *std::max_element(logits.begin(), logits.end());
  double sum = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    const double e = std::exp(static_cast<double>(logits[i] - maxv));
    probs[i] = static_cast<float>(e);
    sum += e;
  }
  const float inv = static_cast<float>(1.0 / sum);
  for (auto& p : probs) p *= inv;
}

std::vector<float> softmax(std::span<const float> logits) {
  std::vector<float> probs(logits.size());
  softmax(logits, probs);
  return probs;
}

double log_sum_exp(std::span<const float> logits) {
  assert(!logits.empty());
  const float maxv = *std::max_element(logits.begin(), logits.end());
  double sum = 0.0;
  for (const float v : logits) sum += std::exp(static_cast<double>(v - maxv));
  return static_cast<double>(maxv) + std::log(sum);
}

std::size_t argmax(std::span<const float> values) {
  assert(!values.empty());
  return static_cast<std::size_t>(
      std::distance(values.begin(), std::max_element(values.begin(), values.end())));
}

bool almost_equal(double a, double b, double rtol, double atol) {
  return std::abs(a - b) <= atol + rtol * std::abs(b);
}

}  // namespace dtsnn::util
