// Lightweight leveled logging to stderr. The library itself logs sparingly
// (training progress, calibration summaries); benches raise the level.

#pragma once

#include <string>

namespace dtsnn::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are dropped. Default: kInfo.
void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style logging. Thread-safe (single write per message).
void logf(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

/// printf-style string formatting helper (returns the formatted string).
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

#define DTSNN_LOG_DEBUG(...) ::dtsnn::util::logf(::dtsnn::util::LogLevel::kDebug, __VA_ARGS__)
#define DTSNN_LOG_INFO(...) ::dtsnn::util::logf(::dtsnn::util::LogLevel::kInfo, __VA_ARGS__)
#define DTSNN_LOG_WARN(...) ::dtsnn::util::logf(::dtsnn::util::LogLevel::kWarn, __VA_ARGS__)
#define DTSNN_LOG_ERROR(...) ::dtsnn::util::logf(::dtsnn::util::LogLevel::kError, __VA_ARGS__)

}  // namespace dtsnn::util
