// Small numeric helpers shared across the library: stable softmax,
// log-sum-exp, clamping and index utilities.

#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dtsnn::util {

/// Numerically stable softmax over `logits`, written into `probs`
/// (which must have the same length). Safe for any finite input.
void softmax(std::span<const float> logits, std::span<float> probs);

/// Convenience overload returning a fresh vector.
std::vector<float> softmax(std::span<const float> logits);

/// Numerically stable log(sum(exp(x))).
double log_sum_exp(std::span<const float> logits);

/// Index of the maximum element (first one on ties). Requires non-empty input.
std::size_t argmax(std::span<const float> values);

/// x clamped to [lo, hi].
inline float clampf(float x, float lo, float hi) {
  return x < lo ? lo : (x > hi ? hi : x);
}

/// Ceiling division for non-negative integers.
inline std::size_t ceil_div(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

/// True if |a - b| <= atol + rtol * |b|.
bool almost_equal(double a, double b, double rtol = 1e-5, double atol = 1e-8);

}  // namespace dtsnn::util
