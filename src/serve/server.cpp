#include "serve/server.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "snn/layer.h"
#include "snn/loss.h"
#include "snn/quantize.h"
#include "util/quant.h"

namespace dtsnn::serve {

namespace {

double elapsed_us(ServeClock::time_point from, ServeClock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

}  // namespace

InferenceServer::InferenceServer(snn::SpikingNetwork& net, const data::Dataset& dataset,
                                 const core::ExitPolicy& default_policy,
                                 std::size_t max_timesteps, ServerConfig config)
    : net_(net),
      dataset_(dataset),
      default_policy_(default_policy),
      max_timesteps_(max_timesteps),
      config_(config),
      exit_hist_(std::max<std::size_t>(max_timesteps, 1)),
      queue_waits_us_(std::max<std::size_t>(config.latency_window, 1)),
      latencies_us_(std::max<std::size_t>(config.latency_window, 1)),
      prefetcher_(dataset) {
  if (max_timesteps_ == 0) {
    throw std::invalid_argument("InferenceServer: max_timesteps == 0");
  }
  if (config_.max_pool == 0) throw std::invalid_argument("InferenceServer: max_pool == 0");
  if (config_.max_queue == 0) {
    throw std::invalid_argument("InferenceServer: max_queue == 0");
  }
  if (config_.latency_window == 0) {
    throw std::invalid_argument("InferenceServer: latency_window == 0");
  }
  if (!config_.gemm_backend.empty()) {
    // Per-model backend selection. Resolve loudly (unknown / unavailable
    // names throw) and, for the quantized tier, verify calibrated weights at
    // the right bit-width up front — a misconfigured model must fail at
    // construction, not on the worker thread mid-request.
    const util::GemmBackend& backend =
        util::resolve_gemm_backend(config_.gemm_backend.c_str());
    if (const util::QuantizedGemmBackend* qb = util::as_quantized_backend(&backend)) {
      const int bits = snn::network_quantized_bits(net_);
      if (bits != qb->weight_bits()) {
        throw util::QuantizationError(
            util::QuantizationError::Kind::kUncalibrated,
            "InferenceServer: ServerConfig.gemm_backend '" + config_.gemm_backend +
                "' needs weights calibrated at " +
                std::to_string(qb->weight_bits()) + " bits, but the network " +
                (bits == 0   ? std::string("has no calibrated quantized weights")
                 : bits == -1 ? std::string("is in a partial/mixed quantized state")
                              : "is calibrated at " + std::to_string(bits) + " bits") +
                "; run core::calibrate_quantized first");
      }
    }
    owned_gemm_context_.emplace(backend);
    net_.set_gemm_context(&*owned_gemm_context_);
  }
  worker_ = util::Thread([this] { worker_loop(); });
}

InferenceServer::~InferenceServer() { drain(); }

void InferenceServer::drain() {
  {
    util::MutexLock lk(mu_);
    draining_ = true;
  }
  cv_worker_.notify_all();
  // Serialize concurrent drainers: joinable()/join() on one thread handle
  // from two threads is a race. mu_ cannot guard the join (the worker
  // takes it), hence the dedicated mutex.
  util::MutexLock lk(drain_mu_);
  if (worker_.joinable()) worker_.join();
  // The worker no longer steps the network; release it back to the process
  // default context ("after drain() the network is free for other users").
  if (owned_gemm_context_.has_value()) net_.set_gemm_context(nullptr);
}

std::string InferenceServer::gemm_backend() const {
  return std::string(net_.gemm_context().backend().name());
}

std::future<std::vector<core::InferenceResult>> InferenceServer::submit(ServeRequest req) {
  core::InferenceRequest& r = req.request;
  if (r.samples.empty()) {
    r.samples.resize(dataset_.size());
    std::iota(r.samples.begin(), r.samples.end(), 0);
  }
  // Clear errors at the submission site (instead of deep in the worker):
  // bounds and duplicates per the shared core validator, and the budget
  // override capped by the server budget so the exit histogram's bin count
  // is an invariant of the server, not of its traffic.
  const std::size_t n_samples = core::validate_request_samples(
      r.samples, dataset_.size(), "InferenceServer::submit",
      /*allow_duplicates=*/false);
  const std::size_t budget = r.max_timesteps ? r.max_timesteps : max_timesteps_;
  if (budget > max_timesteps_) {
    throw std::invalid_argument("InferenceServer::submit: per-request max_timesteps " +
                                std::to_string(budget) + " exceeds server budget " +
                                std::to_string(max_timesteps_));
  }

  auto pending = std::make_shared<Pending>();
  pending->policy = r.policy ? r.policy : &default_policy_;
  pending->budget = budget;
  pending->record_logits = r.record_logits;
  pending->deadline = req.deadline;
  pending->on_result = std::move(req.on_result);
  pending->submit_time = ServeClock::now();
  pending->results.resize(n_samples);
  pending->remaining = n_samples;
  std::future<std::vector<core::InferenceResult>> fut = pending->promise.get_future();

  {
    util::MutexLock lk(mu_);
    if (draining_) {
      throw std::runtime_error("InferenceServer::submit: server is draining");
    }
    if (n_samples == 0) {
      // Nothing to run (an empty dataset expands to an empty request):
      // resolve now — the worker only resolves promises as samples finish,
      // and there are none.
      pending->promise.set_value({});
      return fut;
    }
    if (queue_.size() + n_samples > config_.max_queue) {
      throw std::runtime_error("InferenceServer::submit: admission queue full (" +
                               std::to_string(queue_.size()) + " waiting, capacity " +
                               std::to_string(config_.max_queue) + ")");
    }
    for (std::size_t i = 0; i < n_samples; ++i) {
      queue_.push_back(Unit{pending, i, r.samples[i]});
    }
    ++submitted_requests_;
    submitted_samples_ += n_samples;
  }
  cv_worker_.notify_all();
  return fut;
}

ServerStats InferenceServer::stats() const {
  ServerStats s;
  std::vector<double> queue_window;
  std::vector<double> latency_window;
  {
    util::MutexLock lk(mu_);
    snapshot_counters(s, queue_window, latency_window);
  }
  // The sorts run outside the lock so a stats() poll never stalls
  // admission or the worker's completion publishing.
  s.queue_us = util::summarize_percentiles(queue_window);
  s.latency_us = util::summarize_percentiles(latency_window);
  return s;
}

void InferenceServer::snapshot_counters(ServerStats& s,
                                        std::vector<double>& queue_window,
                                        std::vector<double>& latency_window) const {
  s.submitted_requests = submitted_requests_;
  s.submitted_samples = submitted_samples_;
  s.completed_samples = completed_samples_;
  s.failed_samples = failed_samples_;
  s.deadline_forced_exits = deadline_forced_;
  s.queue_depth = queue_.size();
  s.live_samples = live_samples_;
  s.peak_pool = peak_pool_;
  s.exit_timesteps = exit_hist_;
  s.mean_exit_timestep = completed_samples_ ? exit_hist_.mean() + 1.0 : 0.0;
  queue_window = queue_waits_us_.snapshot();
  latency_window = latencies_us_.snapshot();
}

bool InferenceServer::wait_for_work(util::MutexLock& lk) {
  while (!draining_ && queue_.empty()) cv_worker_.wait(lk);
  if (queue_.empty()) return false;  // draining and fully drained
  if (config_.admission_window.count() > 0 && queue_.size() < config_.max_pool) {
    // Dynamic batching: an idle server holds the first arrivals until the
    // pool would launch full or the window expires.
    const ServeClock::time_point deadline = ServeClock::now() + config_.admission_window;
    while (!draining_ && queue_.size() < config_.max_pool) {
      if (cv_worker_.wait_until(lk, deadline) == std::cv_status::timeout) break;
    }
  }
  return true;
}

void InferenceServer::purge_failed_slots(std::vector<Slot>& pool,
                                         std::vector<std::size_t>& keep) {
  if (pool.empty()) return;
  std::size_t w = 0;
  for (std::size_t j = 0; j < pool.size(); ++j) {
    if (pool[j].owner->failed) {
      ++failed_samples_;
      continue;
    }
    if (w != j) {
      pool[w] = std::move(pool[j]);
      keep[w] = keep[j];
    }
    ++w;
  }
  if (w != pool.size()) {
    pool.resize(w);
    keep.resize(w);
    live_samples_ = w;
  }
}

std::size_t InferenceServer::admit_waiting(std::vector<Slot>& pool,
                                           std::vector<std::size_t>& admitted_samples,
                                           std::size_t classes) {
  const ServeClock::time_point now = ServeClock::now();
  std::size_t admitted = 0;
  while (pool.size() < config_.max_pool && !queue_.empty()) {
    Unit u = std::move(queue_.front());
    queue_.pop_front();
    if (u.owner->failed) {
      // The request was already failed by a worker-side error; its
      // promise holds the exception, so its stragglers are discarded.
      ++failed_samples_;
      continue;
    }
    Slot s;
    s.owner = std::move(u.owner);
    s.request_index = u.request_index;
    s.sample = u.sample;
    s.acc.assign(classes, 0.0);
    s.admitted_at = now;
    admitted_samples.push_back(s.sample);
    pool.push_back(std::move(s));
    ++admitted;
  }
  live_samples_ = pool.size();
  peak_pool_ = std::max(peak_pool_, pool.size());
  return admitted;
}

void InferenceServer::worker_loop() {
  const std::size_t k = net_.num_classes();
  const snn::Shape fs = dataset_.frame_shape();
  const std::size_t frame_numel = snn::shape_numel(fs);

  std::vector<Slot> pool;
  bool active = false;           // the net holds single-step state for `stepped_rows`
  std::size_t stepped_rows = 0;  // rows in the net's current inference state
  std::vector<std::size_t> keep; // surviving row indices into that state
  std::vector<float> cum(k);

  struct Finished {
    core::InferenceResult result;
    std::shared_ptr<Pending> owner;
    std::size_t exit_timestep = 0;  ///< copy that survives moving `result` out
    double queue_wait_us = 0.0;
    double latency_us = 0.0;
    bool deadline_forced = false;
    bool delivered = false;
  };
  std::vector<Finished> done;

  while (true) {
    // ---- Admission. Waiting samples fill free slots at every timestep
    // boundary; an idle worker first blocks for work (and optionally holds
    // the admission window so the initial batch launches fuller).
    std::size_t admitted = 0;
    std::vector<std::size_t> admitted_samples;
    {
      util::MutexLock lk(mu_);
      // Purge slots whose request failed during last cycle's delivery (a
      // throwing result callback): their results would be discarded anyway,
      // so stop spending timesteps on them and free the slots.
      purge_failed_slots(pool, keep);
      if (pool.empty() && !wait_for_work(lk)) break;
      admitted = admit_waiting(pool, admitted_samples, k);
    }
    if (pool.empty()) continue;
    // Warm storage-backed datasets for the newly admitted samples outside the
    // admission lock: requests may target samples in not-yet-resident shards,
    // and prefetching turns the pool's per-timestep frame reads into cache
    // hits instead of worker-blocking shard loads mid-step. With the
    // background prefetcher active the warm overlaps this cycle's pool step;
    // otherwise (fully-resident dataset or DTSNN_PREFETCH_DEPTH=0) fall back
    // to the synchronous warm.
    if (!admitted_samples.empty()) {
      if (prefetcher_.active()) {
        prefetcher_.enqueue(admitted_samples);
      } else {
        dataset_.prefetch(admitted_samples);
      }
    }

    done.clear();
    try {
      // ---- Reconcile LIF state with the pool: survivors keep their rows
      // (in order), admissions become fresh zero-state rows. Mid-flight
      // admission is a pure gather — resident rows are copied untouched — so
      // residents' trajectories are unaffected (the bitwise identity
      // contract).
      if (!active) {
        net_.begin_inference(pool.size());
        active = true;
      } else if (admitted > 0 || keep.size() != stepped_rows) {
        keep.resize(keep.size() + admitted, snn::Layer::kFreshRow);
        net_.compact_inference_state(keep);
      }
      stepped_rows = pool.size();

      // ---- One timestep for the whole pool, each sample at its own t.
      snn::Tensor x({pool.size(), fs[0], fs[1], fs[2]});
      for (std::size_t j = 0; j < pool.size(); ++j) {
        dataset_.write_frame(pool[j].sample, pool[j].t,
                             {x.data() + j * frame_numel, frame_numel});
      }
      snn::Tensor y = net_.step(x);  // [pool, K]

      // ---- Exit decisions: same arithmetic and decision order as the
      // offline engines (cumulative_mean_step, then Eq. 8 / forced exit —
      // one shared core::make_exit_result), plus the serving-only deadline,
      // which forces the same quantities a budget exhaustion would report
      // at this timestep.
      const ServeClock::time_point decided_at = ServeClock::now();
      keep.clear();
      std::size_t w = 0;
      for (std::size_t j = 0; j < pool.size(); ++j) {
        Slot& s = pool[j];
        const Pending& p = *s.owner;
        snn::cumulative_mean_step(y.data() + j * k, s.acc.data(), cum.data(), k, s.t);
        if (p.record_logits) s.history.insert(s.history.end(), cum.begin(), cum.end());
        // Same short-circuit order as the offline engines (budget first,
        // policy only when not exhausted), so a policy is consulted for
        // exactly the same cum rows as on the batch-1 oracle; the deadline
        // is consulted last and only breaks ties neither of them claimed.
        const bool exhausted = s.t + 1 == p.budget;
        const bool policy_exit = !exhausted && p.policy->should_exit(cum);
        const bool past_deadline =
            !exhausted && !policy_exit && p.deadline && decided_at >= *p.deadline;
        if (exhausted || policy_exit || past_deadline) {
          Finished f;
          f.result = core::make_exit_result(cum, s.t, p.record_logits, s.history);
          f.result.request_index = s.request_index;
          f.result.sample = s.sample;
          f.owner = std::move(s.owner);
          f.exit_timestep = f.result.exit_timestep;
          f.queue_wait_us = elapsed_us(f.owner->submit_time, s.admitted_at);
          f.latency_us = elapsed_us(f.owner->submit_time, decided_at);
          f.deadline_forced = past_deadline;
          done.push_back(std::move(f));
        } else {
          s.t += 1;
          keep.push_back(j);
          if (w != j) pool[w] = std::move(pool[j]);
          ++w;
        }
      }
      pool.resize(w);
    } catch (...) {
      // A throw on the worker thread (user exit policy, encoding, OOM, ...)
      // must not leak out of the thread — that would std::terminate the
      // process and abandon every client. The network state is indeterminate
      // mid-step, so every in-flight sample's trajectory is unrecoverable:
      // fail their requests via the promises and keep serving the queue
      // with a fresh pool. (Moved-from slots belong to `done` entries,
      // which carry the owner; both sets are failed exactly once.)
      const std::exception_ptr error = std::current_exception();
      std::size_t failed = 0;
      const auto fail_owner = [&](const std::shared_ptr<Pending>& owner) {
        if (!owner) return;
        ++failed;
        if (!owner->failed) {
          owner->failed = true;
          owner->promise.set_exception(error);
        }
      };
      for (const Finished& f : done) fail_owner(f.owner);
      for (const Slot& s : pool) fail_owner(s.owner);
      pool.clear();
      done.clear();
      active = false;
      stepped_rows = 0;
      keep.clear();
      util::MutexLock lk(mu_);
      failed_samples_ += failed;
      live_samples_ = 0;
      continue;
    }
    if (pool.empty()) {
      // Fully drained pool: drop the stale state; the next admission begins
      // a fresh inference sequence (matches the offline batched engine).
      active = false;
      stepped_rows = 0;
      keep.clear();
    }

    if (done.empty()) continue;
    // Deliver outside the lock: callbacks first (streaming), then the
    // request future once its last sample has exited. A throwing callback
    // fails its own request only; samples of an already-failed request are
    // discarded, not delivered.
    std::size_t discarded = 0;
    for (Finished& f : done) {
      Pending& p = *f.owner;
      if (p.failed) {
        ++discarded;
        continue;
      }
      try {
        if (p.on_result) p.on_result(f.result);
        p.results[f.result.request_index] = std::move(f.result);
        if (--p.remaining == 0) p.promise.set_value(std::move(p.results));
        f.delivered = true;
      } catch (...) {
        p.failed = true;
        p.promise.set_exception(std::current_exception());
        ++discarded;
      }
    }
    // Only delivered results enter the stats: completed + failed samples
    // partition the submitted ones, and discarded work never skews the
    // latency digests or the exit histogram.
    {
      util::MutexLock lk(mu_);
      for (const Finished& f : done) {
        if (!f.delivered) continue;
        ++completed_samples_;
        if (f.deadline_forced) ++deadline_forced_;
        exit_hist_.add(f.exit_timestep - 1);
        queue_waits_us_.add(f.queue_wait_us);
        latencies_us_.add(f.latency_us);
      }
      failed_samples_ += discarded;
      live_samples_ = pool.size();
    }
  }
}

}  // namespace dtsnn::serve
