#include "serve/server.h"

#include <utility>

namespace dtsnn::serve {

namespace {

FleetModel single_model(snn::SpikingNetwork& net, const data::Dataset& dataset,
                        const core::ExitPolicy& default_policy,
                        std::size_t max_timesteps, const ServerConfig& config) {
  if (max_timesteps == 0) {
    throw std::invalid_argument("InferenceServer: max_timesteps == 0");
  }
  if (config.max_pool == 0) throw std::invalid_argument("InferenceServer: max_pool == 0");
  if (config.max_queue == 0) {
    throw std::invalid_argument("InferenceServer: max_queue == 0");
  }
  if (config.latency_window == 0) {
    throw std::invalid_argument("InferenceServer: latency_window == 0");
  }
  FleetModel m;
  m.name = "default";
  m.network = &net;
  m.dataset = &dataset;
  m.default_policy = &default_policy;
  m.max_timesteps = max_timesteps;
  m.workers = 1;
  m.max_pool = config.max_pool;
  m.gemm_backend = config.gemm_backend;
  return m;
}

FleetConfig fleet_config(const ServerConfig& config) {
  FleetConfig fc;
  fc.max_queue = config.max_queue;
  fc.admission_window = config.admission_window;
  fc.latency_window = config.latency_window;
  fc.scheduler = config.scheduler;
  fc.tenants = config.tenants;
  return fc;
}

}  // namespace

InferenceServer::InferenceServer(snn::SpikingNetwork& net, const data::Dataset& dataset,
                                 const core::ExitPolicy& default_policy,
                                 std::size_t max_timesteps, ServerConfig config)
    : config_(std::move(config)),
      fleet_({single_model(net, dataset, default_policy, max_timesteps, config_)},
             fleet_config(config_)) {}

InferenceServer::~InferenceServer() = default;

void InferenceServer::drain() { fleet_.drain(); }

std::future<std::vector<core::InferenceResult>> InferenceServer::submit(ServeRequest req) {
  return submit_with_handle(std::move(req)).results;
}

Submission InferenceServer::submit_with_handle(ServeRequest req) {
  FleetRequest fr;
  fr.request = std::move(req.request);
  fr.deadline = req.deadline;
  fr.on_result = std::move(req.on_result);
  fr.tenant = req.tenant;
  return fleet_.submit(std::move(fr));
}

bool InferenceServer::cancel(RequestHandle handle) { return fleet_.cancel(handle); }

ServerStats InferenceServer::stats() const {
  const FleetStats fs = fleet_.stats();
  ServerStats s;
  s.submitted_requests = fs.submitted_requests;
  s.submitted_samples = fs.submitted_samples;
  s.completed_samples = fs.completed_samples;
  s.failed_samples = fs.failed_samples;
  s.cancelled_queued_samples = fs.cancelled_queued_samples;
  s.cancelled_live_samples = fs.cancelled_live_samples;
  s.cancelled_requests = fs.cancelled_requests;
  s.deadline_forced_exits = fs.deadline_forced_exits;
  s.rejected_requests = fs.rejected_requests;
  s.queue_depth = fs.queue_depth;
  s.live_samples = fs.live_samples;
  s.peak_pool = fs.peak_pool;
  s.exit_timesteps = fs.exit_timesteps;
  s.mean_exit_timestep = fs.mean_exit_timestep;
  s.queue_us = fs.queue_us;
  s.latency_us = fs.latency_us;
  s.tenants = fs.tenants;
  return s;
}

}  // namespace dtsnn::serve
