// Tenant classes and per-tenant quotas for the serving fleet.
//
// A tenant class is a traffic contract: a human-readable name, a
// weighted-fair share, and admission quotas. Quotas are the backpressure
// surface of multi-tenant serving — one tenant flooding the queue gets its
// *own* submissions rejected (loudly, with a typed error) instead of
// crowding out everyone else's latency:
//
//   max_queued     cap on the tenant's samples waiting for admission;
//                  submissions that would exceed it throw TenantQuotaError.
//   max_in_flight  cap on the tenant's samples resident in worker pools at
//                  once; excess queued samples simply wait (schedulers skip
//                  them), so a bulk tenant can never occupy every pool slot.
//
// The registry is immutable once handed to a server/fleet: tenant ids are
// dense indices assigned at registration, and tenant 0 always exists (the
// default class every untagged request lands in). Counters live with the
// fleet, not here — the registry is pure configuration.

#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace dtsnn::serve {

/// Dense tenant-class index into the owning registry.
using TenantId = std::uint32_t;

/// Tenant 0: the implicit class for untagged requests; unlimited quotas,
/// weight 1 — a single-tenant deployment never notices the tenant layer.
inline constexpr TenantId kDefaultTenant = 0;

struct TenantSpec {
  std::string name = "default";
  /// Weighted-fair share (weighted_fair scheduler): a weight-3 tenant is
  /// admitted 3 samples for every 1 of a weight-1 tenant while both are
  /// backlogged. Must be finite and > 0.
  double weight = 1.0;
  /// Max samples of this tenant resident in worker pools at once; 0 = no cap.
  std::size_t max_in_flight = 0;
  /// Max samples of this tenant waiting for admission; 0 = no cap.
  std::size_t max_queued = 0;
};

/// Thrown when a submission would exceed its tenant's max_queued quota —
/// deliberately distinct from the queue-full std::runtime_error so clients
/// can tell "the server is overloaded" from "you are over your contract".
class TenantQuotaError : public std::runtime_error {
 public:
  TenantQuotaError(TenantId tenant, std::string message)
      : std::runtime_error(std::move(message)), tenant_(tenant) {}
  [[nodiscard]] TenantId tenant() const { return tenant_; }

 private:
  TenantId tenant_;
};

class TenantRegistry {
 public:
  /// Starts with tenant 0 (the default class).
  TenantRegistry();

  /// Register a tenant class; returns its id (dense, in registration
  /// order). Throws std::invalid_argument for a non-finite or non-positive
  /// weight; an empty name becomes "tenant<id>".
  TenantId register_tenant(TenantSpec spec);

  /// Spec lookup; throws std::out_of_range naming the bad id.
  [[nodiscard]] const TenantSpec& spec(TenantId id) const;
  [[nodiscard]] bool contains(TenantId id) const { return id < specs_.size(); }
  [[nodiscard]] std::size_t size() const { return specs_.size(); }

 private:
  std::vector<TenantSpec> specs_;
};

}  // namespace dtsnn::serve
