// Online inference serving: continuous batching under asynchronous arrivals.
//
// The offline engines (core/engine.h) run a fixed request list to
// completion. InferenceServer turns BatchedSequentialEngine's live-pool
// execution into a long-running service:
//
//   client threads ──submit()──▶ admission queue ──▶ scheduler ──▶ live pool
//                                                      │  (worker thread,
//                                                      │   one net.step()
//                                                      │   per timestep)
//   futures/callbacks ◀──────── streaming results ◀────┘
//
// One worker thread owns the network. Each scheduling cycle it admits
// waiting samples into free pool slots (snn::Layer::compact_state with
// kFreshRow rows, so admission between timesteps never perturbs residents),
// steps the whole pool one timestep, evaluates every sample's exit rule
// (per-request policy / budget / deadline), emits finished samples the
// moment they exit, and compacts their slots out. Because each sample's
// trajectory depends only on its own frames and per-row LIF state, served
// results are bitwise identical — prediction, exit timestep, exit entropy,
// recorded logits — to the offline batch-1 SequentialEngine oracle,
// regardless of arrival order, pool composition, or client thread count.
//
// Scheduling knobs (ServerConfig): max_pool bounds the live batch;
// admission_window lets an idle server hold the first arrivals briefly so
// the initial batch launches fuller (dynamic batching). While the pool is
// busy, admission is free: every timestep boundary takes waiting samples.

#pragma once

#include <chrono>
#include <cstddef>
#include <deque>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/exit_policy.h"
#include "core/inference.h"
#include "data/dataset.h"
#include "data/prefetch.h"
#include "snn/network.h"
#include "util/stats.h"
#include "util/sync.h"
#include "util/thread.h"
#include "util/thread_annotations.h"

namespace dtsnn::serve {

using ServeClock = std::chrono::steady_clock;

struct ServerConfig {
  /// Live-pool capacity: the maximum number of samples stepped together.
  std::size_t max_pool = 8;
  /// Admission-queue capacity in samples; submit() throws when a request
  /// would overflow it (backpressure instead of unbounded memory).
  std::size_t max_queue = 4096;
  /// How long an *idle* worker holds the first arrivals hoping to fill the
  /// pool before launching the batch. 0 starts immediately.
  std::chrono::microseconds admission_window{0};
  /// Latency digests cover the most recent this-many completed samples
  /// (bounded memory for a long-running server; total counts keep growing).
  std::size_t latency_window = 8192;
  /// GEMM backend for this server's network, by registry name ("" = leave
  /// the network on its current context). This is the per-model tier
  /// selector: a multi-model deployment serves one model quantized
  /// ("int8_spike" / "int4_spike") and another at full precision without
  /// touching the process-wide default. Unknown names throw
  /// std::invalid_argument, unavailable ones std::runtime_error, and a
  /// quantized backend on a network without matching calibrated weights
  /// throws util::QuantizationError — all at construction, never mid-serve.
  std::string gemm_backend;
};

/// One client submission: which samples to run and how, plus serving-only
/// controls. Exit-policy / timestep-budget / record_logits overrides ride on
/// the embedded core::InferenceRequest exactly as they do for the offline
/// engines. A policy override must outlive the request's completion.
struct ServeRequest {
  core::InferenceRequest request;
  /// Optional deadline: at the first timestep boundary at or past it, the
  /// sample force-exits with the same quantities a budget exhaustion would
  /// report at that timestep. Samples always complete at least one timestep.
  std::optional<ServeClock::time_point> deadline;
  /// Optional streaming callback, invoked on the worker thread the moment
  /// each sample exits (before the request future resolves). Must not call
  /// drain() on the serving server (self-join); submit() is fine.
  core::ResultSink on_result;
};

/// Snapshot of server counters (stats()). Latency digests are computed via
/// util::summarize_percentiles over the most recent
/// ServerConfig::latency_window completed samples.
struct ServerStats {
  std::size_t submitted_requests = 0;
  std::size_t submitted_samples = 0;
  std::size_t completed_samples = 0;
  std::size_t failed_samples = 0;  ///< samples of requests failed by a worker error
  std::size_t deadline_forced_exits = 0;
  std::size_t queue_depth = 0;   ///< samples waiting for admission now
  std::size_t live_samples = 0;  ///< samples in the pool now
  std::size_t peak_pool = 0;     ///< largest pool occupancy seen
  /// Bin t-1 = completed samples that exited at timestep t.
  util::Histogram exit_timesteps{1};
  double mean_exit_timestep = 0.0;  ///< 1-based; 0 when nothing completed
  /// submit() -> admission into the pool, microseconds.
  util::PercentileSummary queue_us;
  /// submit() -> exit decision, microseconds (end-to-end latency).
  util::PercentileSummary latency_us;
};

class InferenceServer {
 public:
  /// The server takes exclusive use of `net` between construction and
  /// drain()/destruction (the worker thread steps it); `dataset`,
  /// `default_policy`, and any per-request policy overrides must outlive
  /// the server. `dataset` may be in-memory (ArrayDataset) or storage-backed
  /// (ShardedDataset): requests whose samples live in not-yet-resident
  /// shards are admitted freely, and the worker prefetches their shards into
  /// the dataset's cache at admission so pool steps read warm frames.
  /// Throws std::invalid_argument for max_timesteps == 0, max_pool == 0, or
  /// max_queue == 0.
  InferenceServer(snn::SpikingNetwork& net, const data::Dataset& dataset,
                  const core::ExitPolicy& default_policy, std::size_t max_timesteps,
                  ServerConfig config = {});

  /// Drains gracefully: all accepted work completes before destruction.
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Thread-safe submission. Validates the request up front (clear errors at
  /// the call site): empty samples expand to the whole dataset; out-of-range
  /// indices throw std::out_of_range; duplicate indices and budget overrides
  /// above max_timesteps() throw std::invalid_argument; submission after
  /// drain() or onto a full queue throws std::runtime_error. The future
  /// resolves with the request's results ordered by request position once
  /// its last sample exits — or with the exception that failed the request:
  /// a throw on the worker thread (e.g. from a user ExitPolicy or result
  /// callback) fails the affected in-flight requests via their futures and
  /// the server keeps serving; it never takes the process down.
  std::future<std::vector<core::InferenceResult>> submit(ServeRequest req)
      DTSNN_EXCLUDES(mu_);

  /// Graceful shutdown: stop accepting, run everything already accepted to
  /// completion, then stop the worker. Idempotent; also called by the
  /// destructor. After drain() the network is free for other users.
  void drain() DTSNN_EXCLUDES(mu_, drain_mu_);

  [[nodiscard]] ServerStats stats() const DTSNN_EXCLUDES(mu_);
  [[nodiscard]] std::size_t max_timesteps() const { return max_timesteps_; }
  [[nodiscard]] const ServerConfig& config() const { return config_; }
  /// GEMM backend the pool's network math dispatches through.
  [[nodiscard]] std::string gemm_backend() const;

 private:
  /// One ServeRequest in flight; shared by its queued/live samples.
  struct Pending {
    const core::ExitPolicy* policy = nullptr;
    std::size_t budget = 0;
    bool record_logits = false;
    std::optional<ServeClock::time_point> deadline;
    core::ResultSink on_result;
    ServeClock::time_point submit_time;
    std::vector<core::InferenceResult> results;  ///< by request position
    std::size_t remaining = 0;  ///< worker-thread only after submission
    /// Promise already satisfied with an exception; discard the request's
    /// other samples. Worker-thread only.
    bool failed = false;
    std::promise<std::vector<core::InferenceResult>> promise;
  };

  /// One sample waiting for admission.
  struct Unit {
    std::shared_ptr<Pending> owner;
    std::size_t request_index = 0;
    std::size_t sample = 0;
  };

  /// One live pool row (worker-thread only).
  struct Slot {
    std::shared_ptr<Pending> owner;
    std::size_t request_index = 0;
    std::size_t sample = 0;
    std::size_t t = 0;            ///< this sample's current 0-based timestep
    std::vector<double> acc;      ///< [K] logit accumulators (oracle arithmetic)
    std::vector<float> history;   ///< cum-logit trajectory when recording
    ServeClock::time_point admitted_at;
  };

  void worker_loop() DTSNN_EXCLUDES(mu_);

  // ---- mu_-protected internals. Each helper is a single critical-section
  // step of the worker/stats paths, annotated DTSNN_REQUIRES(mu_) so clang
  // verifies it is only ever entered with the admission lock held.

  /// Block until there is work (or drain); false when draining and fully
  /// drained. Holds the admission window on an idle start so the first batch
  /// launches fuller. `lk` is the caller's held lock on mu_ (CondVar waits
  /// release/reacquire it).
  bool wait_for_work(util::MutexLock& lk) DTSNN_REQUIRES(mu_);

  /// Drop pool slots whose request failed during the last delivery phase
  /// (their results would be discarded anyway). pool[j] pairs with keep[j]:
  /// both index last-stepped network rows.
  void purge_failed_slots(std::vector<Slot>& pool, std::vector<std::size_t>& keep)
      DTSNN_REQUIRES(mu_);

  /// Move waiting samples into free pool slots (`classes`-wide logit
  /// accumulators); returns how many were admitted and appends their sample
  /// indices to `admitted_samples` for post-lock prefetching.
  std::size_t admit_waiting(std::vector<Slot>& pool,
                            std::vector<std::size_t>& admitted_samples,
                            std::size_t classes) DTSNN_REQUIRES(mu_);

  /// Copy the counters and latency windows out under the lock; the caller
  /// runs the percentile sorts on the copies after releasing it.
  void snapshot_counters(ServerStats& s, std::vector<double>& queue_window,
                         std::vector<double>& latency_window) const
      DTSNN_REQUIRES(mu_);

  snn::SpikingNetwork& net_;
  const data::Dataset& dataset_;
  const core::ExitPolicy& default_policy_;
  std::size_t max_timesteps_;
  ServerConfig config_;

  /// Owned context when config.gemm_backend forces a backend: the network is
  /// pointed at it for the serve lifetime (the server has exclusive use of
  /// the net) and reverted to the process default at drain().
  std::optional<util::GemmContext> owned_gemm_context_;

  mutable util::Mutex mu_;
  util::Mutex drain_mu_;  ///< serializes drain() callers around the join
  util::CondVar cv_worker_;
  std::deque<Unit> queue_ DTSNN_GUARDED_BY(mu_);
  bool draining_ DTSNN_GUARDED_BY(mu_) = false;

  std::size_t submitted_requests_ DTSNN_GUARDED_BY(mu_) = 0;
  std::size_t submitted_samples_ DTSNN_GUARDED_BY(mu_) = 0;
  std::size_t completed_samples_ DTSNN_GUARDED_BY(mu_) = 0;
  std::size_t failed_samples_ DTSNN_GUARDED_BY(mu_) = 0;
  std::size_t deadline_forced_ DTSNN_GUARDED_BY(mu_) = 0;
  std::size_t live_samples_ DTSNN_GUARDED_BY(mu_) = 0;
  std::size_t peak_pool_ DTSNN_GUARDED_BY(mu_) = 0;
  util::Histogram exit_hist_ DTSNN_GUARDED_BY(mu_);
  util::BoundedSampleWindow queue_waits_us_ DTSNN_GUARDED_BY(mu_);
  util::BoundedSampleWindow latencies_us_ DTSNN_GUARDED_BY(mu_);

  /// Warms storage-backed datasets for each admission cycle's samples off
  /// the worker thread, so shard loads overlap the pool's timestep compute.
  /// Inactive (and the admission prefetch falls back to synchronous) for
  /// fully-resident datasets or DTSNN_PREFETCH_DEPTH=0. Declared before
  /// worker_ so it outlives the thread that enqueues into it.
  data::ShardPrefetcher prefetcher_;

  /// Started last in the constructor (single-threaded), joined under
  /// drain_mu_: joinable()/join() on one thread handle from two drainers is
  /// itself a race.
  util::Thread worker_ DTSNN_GUARDED_BY(drain_mu_);
};

}  // namespace dtsnn::serve
