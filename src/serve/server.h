// Online inference serving: continuous batching under asynchronous arrivals.
//
// The offline engines (core/engine.h) run a fixed request list to
// completion. InferenceServer turns BatchedSequentialEngine's live-pool
// execution into a long-running service:
//
//   client threads ──submit()──▶ tenant quotas ──▶ scheduler ──▶ live pool
//        │                       (fifo / edf /       │  (worker thread,
//        └─cancel(handle)──▶     weighted_fair)      │   one net.step()
//                                                    │   per timestep)
//   futures/callbacks ◀──────── streaming results ◀──┘
//
// One worker thread owns the network. Each scheduling cycle it admits
// waiting samples into free pool slots (snn::Layer::compact_state with
// kFreshRow rows, so admission between timesteps never perturbs residents),
// steps the whole pool one timestep, evaluates every sample's exit rule
// (per-request policy / budget / deadline), emits finished samples the
// moment they exit, and compacts their slots out. Because each sample's
// trajectory depends only on its own frames and per-row LIF state, served
// results are bitwise identical — prediction, exit timestep, exit entropy,
// recorded logits — to the offline batch-1 SequentialEngine oracle,
// regardless of arrival order, pool composition, scheduler policy, or
// client thread count.
//
// InferenceServer is the single-model, single-worker view of the general
// machine: it is a thin facade over serve::ServingFleet (fleet.h), which
// adds multi-model routing and multi-worker pools on the same core loop.
// Everything here — admission order, quotas, cancellation, stats — is the
// fleet's behavior specialized to one model and one worker.

#pragma once

#include <chrono>
#include <cstddef>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/exit_policy.h"
#include "core/inference.h"
#include "data/dataset.h"
#include "serve/fleet.h"
#include "serve/scheduler.h"
#include "serve/tenant.h"
#include "snn/network.h"
#include "util/stats.h"

namespace dtsnn::serve {

struct ServerConfig {
  /// Live-pool capacity: the maximum number of samples stepped together.
  std::size_t max_pool = 8;
  /// Admission-queue capacity in samples; submit() throws when a request
  /// would overflow it (backpressure instead of unbounded memory).
  std::size_t max_queue = 4096;
  /// How long an *idle* worker holds the first arrivals hoping to fill the
  /// pool before launching the batch. 0 starts immediately.
  std::chrono::microseconds admission_window{0};
  /// Latency digests cover the most recent this-many completed samples
  /// (bounded memory for a long-running server; total counts keep growing).
  std::size_t latency_window = 8192;
  /// GEMM backend for this server's network, by registry name ("" = leave
  /// the network on its current context). This is the per-model tier
  /// selector: a multi-model deployment serves one model quantized
  /// ("int8_spike" / "int4_spike") and another at full precision without
  /// touching the process-wide default. Unknown names throw
  /// std::invalid_argument, unavailable ones std::runtime_error, and a
  /// quantized backend on a network without matching calibrated weights
  /// throws util::QuantizationError — all at construction, never mid-serve.
  std::string gemm_backend;
  /// Admission-scheduling policy name ("fifo", "edf", "weighted_fair"); ""
  /// defers to the DTSNN_SERVE_SCHEDULER environment knob, then fifo.
  /// Unknown names throw std::invalid_argument at construction. Policies
  /// reorder admission only — per-sample results are identical under all.
  std::string scheduler;
  /// Tenant classes beyond the implicit default tenant 0 (ids assigned in
  /// order starting at 1): per-class quotas and fair-share weights.
  std::vector<TenantSpec> tenants;
};

/// One client submission: which samples to run and how, plus serving-only
/// controls. Exit-policy / timestep-budget / record_logits overrides ride on
/// the embedded core::InferenceRequest exactly as they do for the offline
/// engines. A policy override must outlive the request's completion.
struct ServeRequest {
  core::InferenceRequest request;
  /// Optional deadline: at the first timestep boundary at or past it, the
  /// sample force-exits with the same quantities a budget exhaustion would
  /// report at that timestep. Samples always complete at least one timestep.
  std::optional<ServeClock::time_point> deadline;
  /// Optional streaming callback, invoked on the worker thread the moment
  /// each sample exits (before the request future resolves). Must not call
  /// drain() on the serving server (self-join); submit() is fine.
  core::ResultSink on_result;
  /// Tenant class for quotas and fair-share weight; must exist in
  /// ServerConfig::tenants (0 = the default class).
  TenantId tenant = kDefaultTenant;
};

/// Snapshot of server counters (stats()). Latency digests are computed via
/// util::summarize_percentiles over the most recent
/// ServerConfig::latency_window completed samples.
struct ServerStats {
  std::size_t submitted_requests = 0;
  std::size_t submitted_samples = 0;
  std::size_t completed_samples = 0;
  std::size_t failed_samples = 0;  ///< samples of requests failed by a worker error
  /// Cancellation is reported distinctly from completion and failure:
  /// queued samples a cancel() removed before they ever entered the pool,
  /// vs resident samples it force-exited at a timestep boundary.
  std::size_t cancelled_queued_samples = 0;
  std::size_t cancelled_live_samples = 0;
  std::size_t cancelled_requests = 0;
  std::size_t deadline_forced_exits = 0;
  /// Submissions bounced by a tenant's max_queued quota.
  std::size_t rejected_requests = 0;
  std::size_t queue_depth = 0;   ///< samples waiting for admission now
  std::size_t live_samples = 0;  ///< samples in the pool now
  std::size_t peak_pool = 0;     ///< largest pool occupancy seen
  /// Bin t-1 = completed samples that exited at timestep t.
  util::Histogram exit_timesteps{1};
  double mean_exit_timestep = 0.0;  ///< 1-based; 0 when nothing completed
  /// submit() -> admission into the pool, microseconds.
  util::PercentileSummary queue_us;
  /// submit() -> exit decision, microseconds (end-to-end latency).
  util::PercentileSummary latency_us;
  /// Per-tenant-class slices of the same events (index = tenant id).
  std::vector<TenantStats> tenants;
};

class InferenceServer {
 public:
  /// The server takes exclusive use of `net` between construction and
  /// drain()/destruction (the worker thread steps it); `dataset`,
  /// `default_policy`, and any per-request policy overrides must outlive
  /// the server. `dataset` may be in-memory (ArrayDataset) or storage-backed
  /// (ShardedDataset): requests whose samples live in not-yet-resident
  /// shards are admitted freely, and the worker prefetches their shards into
  /// the dataset's cache at admission so pool steps read warm frames.
  /// Throws std::invalid_argument for max_timesteps == 0, max_pool == 0, or
  /// max_queue == 0.
  InferenceServer(snn::SpikingNetwork& net, const data::Dataset& dataset,
                  const core::ExitPolicy& default_policy, std::size_t max_timesteps,
                  ServerConfig config = {});

  /// Drains gracefully: all accepted work completes before destruction.
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Thread-safe submission. Validates the request up front (clear errors at
  /// the call site): empty samples expand to the whole dataset; out-of-range
  /// indices throw std::out_of_range; duplicate indices and budget overrides
  /// above max_timesteps() throw std::invalid_argument; submission after
  /// drain() or onto a full queue throws std::runtime_error; a submission
  /// over its tenant's max_queued quota throws TenantQuotaError. The future
  /// resolves with the request's results ordered by request position once
  /// its last sample exits — or with the exception that failed the request:
  /// a throw on the worker thread (e.g. from a user ExitPolicy or result
  /// callback) fails the affected in-flight requests via their futures and
  /// the server keeps serving; it never takes the process down.
  std::future<std::vector<core::InferenceResult>> submit(ServeRequest req);

  /// submit() that also returns a cancellation handle (see cancel()).
  Submission submit_with_handle(ServeRequest req);

  /// Cancel a submitted request: queued samples are removed immediately,
  /// resident ones force-exit at the next timestep boundary, and the
  /// request future fails with CancelledError. Returns true when the
  /// request was still live, false when already settled or unknown.
  bool cancel(RequestHandle handle);

  /// Graceful shutdown: stop accepting, run everything already accepted to
  /// completion, then stop the worker. Idempotent; also called by the
  /// destructor. After drain() the network is free for other users.
  void drain();

  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] std::size_t max_timesteps() const { return fleet_.model_max_timesteps(0); }
  [[nodiscard]] const ServerConfig& config() const { return config_; }
  /// Admission-scheduling policy in effect (after env resolution).
  [[nodiscard]] SchedulerKind scheduler_kind() const { return fleet_.scheduler_kind(); }
  /// GEMM backend the pool's network math dispatches through.
  [[nodiscard]] std::string gemm_backend() const { return fleet_.model_gemm_backend(0); }

 private:
  ServerConfig config_;
  ServingFleet fleet_;
};

}  // namespace dtsnn::serve
