// Multi-tenant, SLO-aware serving fleet.
//
// ServingFleet generalizes the single-network InferenceServer into the
// paper-scale serving shape: several models resident at once, several
// worker pools per model, one admission queue ordered by a pluggable
// scheduler, per-tenant quotas, and request cancellation.
//
//   client threads ──submit()──▶ tenant quotas ──▶ scheduler (fifo / edf /
//        │                                         weighted_fair)
//        └─cancel(handle)──▶ purge queued / flag residents
//                                  │
//            ┌─────────────────────┴──────────────────────┐
//   worker 0 (model A, replica 0)  ...  worker N (model B, replica k)
//            └──────── futures / streaming callbacks ◀────┘
//
// Each worker owns one network (worker 0 of a model borrows the model's
// base network; extra workers run copy_network_state replicas) and runs the
// exact continuous-batching loop of the single server: admit into free pool
// slots at timestep boundaries (snn::Layer::compact_state, kFreshRow rows),
// step the pool, apply the shared exit rule (budget → policy → deadline),
// emit finished samples immediately. Because every sample's trajectory
// depends only on its own frames and per-row LIF state, fleet results are
// bitwise identical — prediction, exit timestep, exit entropy, logits — to
// the batch-1 SequentialEngine oracle for that sample's model, regardless
// of scheduler policy, worker count, tenant mix, or arrival order.
// Schedulers and quotas change *when* a sample runs, never *what* it
// computes.
//
// Cancellation: cancel(handle) removes the request's queued samples
// immediately and flags the request; resident samples force-exit at the
// next timestep boundary (their slots are reclaimed before the next step),
// and the request's future fails with CancelledError. Cancelled work is
// reported distinctly from completions and failures.
//
// All shared state lives behind the annotated util::Mutex admission lock;
// Pending completion state crossed by multiple workers is atomic
// (remaining / settled / failed / cancelled), so delivery never takes a
// lock while running user callbacks.

#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/exit_policy.h"
#include "core/inference.h"
#include "data/dataset.h"
#include "data/prefetch.h"
#include "serve/scheduler.h"
#include "serve/tenant.h"
#include "snn/network.h"
#include "util/gemm.h"
#include "util/stats.h"
#include "util/sync.h"
#include "util/thread.h"
#include "util/thread_annotations.h"

namespace dtsnn::serve {

using ServeClock = std::chrono::steady_clock;

/// One resident model: a trained network, its dataset, default exit policy,
/// and serving shape. The fleet takes exclusive use of `network` between
/// construction and drain(); `dataset`, `default_policy`, and any
/// per-request policy overrides must outlive the fleet.
struct FleetModel {
  /// Routing key clients put in FleetRequest::model; "" becomes "model<i>".
  std::string name;
  snn::SpikingNetwork* network = nullptr;
  const data::Dataset* dataset = nullptr;
  const core::ExitPolicy* default_policy = nullptr;
  /// Server-side timestep budget (per-request overrides may lower it).
  std::size_t max_timesteps = 0;
  /// Worker pools stepping this model concurrently. Workers beyond the
  /// first run on fresh replicas from `make_replica` (trained state stamped
  /// in with snn::copy_network_state), so requiring it only when > 1.
  std::size_t workers = 1;
  core::NetworkFactory make_replica;
  /// Live-pool capacity per worker.
  std::size_t max_pool = 8;
  /// GEMM backend for this model's networks, by registry name ("" = leave
  /// them on their current context). Per-model: one model can serve the
  /// quantized tier while another stays full-precision. Unknown names throw
  /// std::invalid_argument, unavailable ones std::runtime_error, and a
  /// quantized backend without matching calibrated weights
  /// util::QuantizationError — all at construction.
  std::string gemm_backend;
};

struct FleetConfig {
  /// Admission-queue capacity in samples across all models and tenants.
  std::size_t max_queue = 4096;
  /// How long an *idle* worker holds its first arrivals hoping to fill its
  /// pool before launching the batch. 0 starts immediately.
  std::chrono::microseconds admission_window{0};
  /// Latency digests cover the most recent this-many completed samples
  /// (per tenant class and globally).
  std::size_t latency_window = 8192;
  /// Scheduler policy name; "" defers to DTSNN_SERVE_SCHEDULER, then fifo.
  std::string scheduler;
  /// Tenant classes. Tenant 0 (default) always exists; ids are assigned in
  /// order starting at 1.
  std::vector<TenantSpec> tenants;
};

/// One client submission.
struct FleetRequest {
  core::InferenceRequest request;
  /// Optional deadline: at the first timestep boundary at or past it, the
  /// sample force-exits with the same quantities a budget exhaustion would
  /// report at that timestep. Samples always complete at least one timestep.
  std::optional<ServeClock::time_point> deadline;
  /// Optional streaming callback, invoked the moment each sample exits.
  /// With multiple workers per model it may run concurrently from several
  /// worker threads; it must be thread-safe and must not drain() the fleet.
  core::ResultSink on_result;
  /// Tenant class (quotas, fair-share weight); must exist in the registry.
  TenantId tenant = kDefaultTenant;
  /// Routing key; "" routes to the first model.
  std::string model;
};

/// Cancellation token for a submitted request.
struct RequestHandle {
  std::uint64_t id = 0;
};

/// submit()'s return: the results future plus the cancellation handle.
struct Submission {
  std::future<std::vector<core::InferenceResult>> results;
  RequestHandle handle;
};

/// The exception a cancelled request's future fails with.
class CancelledError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Per-tenant-class slice of the fleet counters.
struct TenantStats {
  std::string name;
  std::size_t submitted_samples = 0;
  std::size_t completed_samples = 0;
  std::size_t failed_samples = 0;
  /// Queued samples removed by cancel() before ever entering a pool.
  std::size_t cancelled_queued_samples = 0;
  /// Resident samples force-exited at a timestep boundary by cancel().
  std::size_t cancelled_live_samples = 0;
  std::size_t deadline_forced_exits = 0;
  /// Completed samples whose exit decision landed past their deadline
  /// (deadline-forced or not) — the SLO-miss count schedulers are graded on.
  std::size_t deadline_missed = 0;
  /// Requests bounced by this tenant's max_queued quota.
  std::size_t rejected_requests = 0;
  std::size_t queue_depth = 0;   ///< samples waiting now
  std::size_t in_flight = 0;     ///< samples resident in pools now
  util::PercentileSummary queue_us;
  util::PercentileSummary latency_us;
};

/// Snapshot of fleet counters (stats()). The global section mirrors
/// ServerStats; `tenants` slices the same events per tenant class.
struct FleetStats {
  std::size_t submitted_requests = 0;
  std::size_t submitted_samples = 0;
  std::size_t completed_samples = 0;
  std::size_t failed_samples = 0;
  std::size_t cancelled_queued_samples = 0;
  std::size_t cancelled_live_samples = 0;
  std::size_t cancelled_requests = 0;  ///< cancel() calls that took effect
  std::size_t deadline_forced_exits = 0;
  std::size_t deadline_missed = 0;
  std::size_t rejected_requests = 0;
  std::size_t queue_depth = 0;
  std::size_t live_samples = 0;  ///< resident across all pools now
  std::size_t peak_pool = 0;     ///< largest single-pool occupancy seen
  /// Bin t-1 = completed samples that exited at timestep t (bins span the
  /// largest model budget).
  util::Histogram exit_timesteps{1};
  double mean_exit_timestep = 0.0;  ///< 1-based; 0 when nothing completed
  util::PercentileSummary queue_us;
  util::PercentileSummary latency_us;
  std::vector<TenantStats> tenants;
};

class ServingFleet {
 public:
  /// Validates models (non-null network/dataset/policy, max_timesteps > 0,
  /// max_pool > 0, workers > 0, replica factory when workers > 1, unique
  /// names), the config (max_queue > 0, latency_window > 0, scheduler name,
  /// tenant weights), resolves per-model GEMM backends, stamps worker
  /// replicas, and starts every worker thread.
  ServingFleet(std::vector<FleetModel> models, FleetConfig config = {});

  /// Drains gracefully: all accepted work completes before destruction.
  ~ServingFleet();

  ServingFleet(const ServingFleet&) = delete;
  ServingFleet& operator=(const ServingFleet&) = delete;

  /// Thread-safe submission. Validation mirrors InferenceServer::submit
  /// (empty sample list expands to the whole dataset of the routed model;
  /// out-of-range indices throw std::out_of_range; duplicates and
  /// over-budget overrides std::invalid_argument; draining or a full queue
  /// std::runtime_error) plus: an unknown model name or tenant id throws
  /// std::invalid_argument, and a submission over the tenant's max_queued
  /// quota throws TenantQuotaError.
  Submission submit(FleetRequest req) DTSNN_EXCLUDES(mu_);

  /// Cancel a submitted request. Queued samples are removed immediately;
  /// resident ones force-exit at their worker's next timestep boundary; the
  /// request future fails with CancelledError. Returns true when the
  /// request was still live (some of its samples had not finished), false
  /// when it was already fully settled or the handle is unknown. Idempotent.
  bool cancel(RequestHandle handle) DTSNN_EXCLUDES(mu_);

  /// Graceful shutdown: stop accepting, run everything already accepted to
  /// completion, then stop the workers. Idempotent; also called by the
  /// destructor. After drain() the base networks are free for other users
  /// (their GEMM contexts are restored to the process default).
  void drain() DTSNN_EXCLUDES(mu_, drain_mu_);

  [[nodiscard]] FleetStats stats() const DTSNN_EXCLUDES(mu_);
  [[nodiscard]] const FleetConfig& config() const { return config_; }
  [[nodiscard]] SchedulerKind scheduler_kind() const { return scheduler_kind_; }
  [[nodiscard]] const TenantRegistry& tenants() const { return tenants_; }
  [[nodiscard]] std::size_t num_models() const { return models_.size(); }
  /// Model metadata by index (registration order).
  [[nodiscard]] const std::string& model_name(std::size_t model) const;
  [[nodiscard]] std::size_t model_max_timesteps(std::size_t model) const;
  /// GEMM backend the model's pool math dispatches through.
  [[nodiscard]] std::string model_gemm_backend(std::size_t model) const;
  /// Routing lookup; throws std::invalid_argument for unknown names.
  [[nodiscard]] std::size_t model_index(const std::string& name) const;

 private:
  /// One FleetRequest in flight; shared by its queued/live samples across
  /// every worker of its model. Fields written before submission are
  /// immutable afterwards; cross-worker completion state is atomic.
  struct Pending {
    std::uint64_t id = 0;
    std::size_t model = 0;
    TenantId tenant = kDefaultTenant;
    const core::ExitPolicy* policy = nullptr;
    std::size_t budget = 0;
    bool record_logits = false;
    std::optional<ServeClock::time_point> deadline;
    core::ResultSink on_result;
    ServeClock::time_point submit_time;
    std::vector<core::InferenceResult> results;  ///< by request position
    /// Samples not yet delivered; the worker whose fetch_sub hits 0
    /// resolves the future.
    std::atomic<std::size_t> remaining{0};
    /// Exactly-once gate on the promise (value, exception, or cancel).
    std::atomic<bool> settled{false};
    /// Failed by a worker error: stragglers are discarded, not delivered.
    std::atomic<bool> failed{false};
    /// cancel() flag: queued samples purge, residents force-exit.
    std::atomic<bool> cancelled{false};
    std::promise<std::vector<core::InferenceResult>> promise;
  };

  struct Worker;  // defined in fleet.cpp: pool slots + the loop's state

  /// Per-model runtime: resolved config, owned replicas, GEMM context.
  struct Model {
    FleetModel spec;
    /// Owned replica networks for workers 1..N-1 (worker 0 borrows
    /// spec.network).
    std::vector<std::unique_ptr<snn::SpikingNetwork>> replicas;
    /// Owned context when spec.gemm_backend forces a backend; every worker
    /// network of the model points at it for the fleet lifetime
    /// (GemmContext is thread-safe for concurrent GEMM calls, and
    /// heap-owned because its accounting atomics make it immovable).
    std::unique_ptr<util::GemmContext> gemm_context;
    std::unique_ptr<data::ShardPrefetcher> prefetcher;
  };

  /// Mutable per-tenant accounting (registry itself is immutable config).
  struct TenantCounters {
    std::size_t queued = 0;
    std::size_t in_flight = 0;
    std::size_t submitted_samples = 0;
    std::size_t completed_samples = 0;
    std::size_t failed_samples = 0;
    std::size_t cancelled_queued = 0;
    std::size_t cancelled_live = 0;
    std::size_t deadline_forced = 0;
    std::size_t deadline_missed = 0;
    std::size_t rejected_requests = 0;
    std::unique_ptr<util::BoundedSampleWindow> queue_us;
    std::unique_ptr<util::BoundedSampleWindow> latency_us;
  };

  void worker_loop(std::size_t model, std::size_t worker_index,
                   snn::SpikingNetwork& net) DTSNN_EXCLUDES(mu_);

  /// Block until this worker can admit something (or drain). False only
  /// when draining and no sample for this model remains queued.
  bool wait_for_work(util::MutexLock& lk, std::size_t model) DTSNN_REQUIRES(mu_);

  /// Drop pool slots whose request failed or was cancelled; cancelled ones
  /// are the "force-exit at the next timestep boundary" path.
  void purge_dead_slots(Worker& w) DTSNN_REQUIRES(mu_);

  /// Admit via the scheduler into free pool slots; appends admitted sample
  /// indices for post-lock prefetching.
  std::size_t admit_waiting(Worker& w, std::vector<std::size_t>& admitted_samples,
                            std::size_t classes) DTSNN_REQUIRES(mu_);

  /// True when the scheduler holds a sample this worker may take right now.
  [[nodiscard]] bool has_admissible(std::size_t model) const DTSNN_REQUIRES(mu_);

  void snapshot_counters(FleetStats& s, std::vector<double>& queue_window,
                         std::vector<double>& latency_window,
                         std::vector<std::vector<double>>& tenant_queue_windows,
                         std::vector<std::vector<double>>& tenant_latency_windows) const
      DTSNN_REQUIRES(mu_);

  std::vector<Model> models_;
  FleetConfig config_;
  TenantRegistry tenants_;
  SchedulerKind scheduler_kind_;
  ServeClock::time_point epoch_;  ///< deadline offsets are relative to this

  mutable util::Mutex mu_;
  util::Mutex drain_mu_;  ///< serializes drain() callers around the joins
  util::CondVar cv_workers_;
  std::unique_ptr<Scheduler> scheduler_ DTSNN_GUARDED_BY(mu_);
  bool draining_ DTSNN_GUARDED_BY(mu_) = false;
  std::uint64_t next_request_id_ DTSNN_GUARDED_BY(mu_) = 1;
  std::uint64_t next_seq_ DTSNN_GUARDED_BY(mu_) = 0;
  /// Live requests by id, for cancel(); erased when fully accounted.
  std::vector<std::shared_ptr<Pending>> live_requests_ DTSNN_GUARDED_BY(mu_);

  std::size_t submitted_requests_ DTSNN_GUARDED_BY(mu_) = 0;
  std::size_t submitted_samples_ DTSNN_GUARDED_BY(mu_) = 0;
  std::size_t completed_samples_ DTSNN_GUARDED_BY(mu_) = 0;
  std::size_t failed_samples_ DTSNN_GUARDED_BY(mu_) = 0;
  std::size_t cancelled_queued_ DTSNN_GUARDED_BY(mu_) = 0;
  std::size_t cancelled_live_ DTSNN_GUARDED_BY(mu_) = 0;
  std::size_t cancelled_requests_ DTSNN_GUARDED_BY(mu_) = 0;
  std::size_t deadline_forced_ DTSNN_GUARDED_BY(mu_) = 0;
  std::size_t deadline_missed_ DTSNN_GUARDED_BY(mu_) = 0;
  std::size_t rejected_requests_ DTSNN_GUARDED_BY(mu_) = 0;
  std::size_t live_samples_ DTSNN_GUARDED_BY(mu_) = 0;
  std::size_t peak_pool_ DTSNN_GUARDED_BY(mu_) = 0;
  /// Sized for real in the constructor once the models are validated.
  util::Histogram exit_hist_ DTSNN_GUARDED_BY(mu_){1};
  util::BoundedSampleWindow queue_waits_us_ DTSNN_GUARDED_BY(mu_){1};
  util::BoundedSampleWindow latencies_us_ DTSNN_GUARDED_BY(mu_){1};
  std::vector<TenantCounters> tenant_counters_ DTSNN_GUARDED_BY(mu_);

  /// Started last in the constructor (single-threaded), joined under
  /// drain_mu_.
  std::vector<util::Thread> workers_ DTSNN_GUARDED_BY(drain_mu_);
};

}  // namespace dtsnn::serve
