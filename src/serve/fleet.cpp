#include "serve/fleet.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "snn/layer.h"
#include "snn/loss.h"
#include "snn/quantize.h"
#include "snn/serialize.h"
#include "util/quant.h"

namespace dtsnn::serve {

namespace {

double elapsed_us(ServeClock::time_point from, ServeClock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

}  // namespace

/// Per-worker loop state: the live pool plus the row-reconciliation
/// bookkeeping for this worker's network. Touched only by its own thread
/// (the admission helpers mutate it while holding mu_, but always on
/// behalf of — and called from — the owning worker).
struct ServingFleet::Worker {
  /// One live pool row.
  struct Slot {
    std::shared_ptr<Pending> owner;
    std::size_t request_index = 0;
    std::size_t sample = 0;
    std::size_t t = 0;           ///< this sample's current 0-based timestep
    std::vector<double> acc;     ///< [K] logit accumulators (oracle arithmetic)
    std::vector<float> history;  ///< cum-logit trajectory when recording
    TenantId tenant = kDefaultTenant;
    ServeClock::time_point admitted_at;
  };

  std::size_t model = 0;
  std::size_t max_pool = 0;
  std::vector<Slot> pool;
  bool active = false;            ///< the net holds single-step state for stepped_rows
  std::size_t stepped_rows = 0;   ///< rows in the net's current inference state
  std::vector<std::size_t> keep;  ///< surviving row indices into that state
};

ServingFleet::ServingFleet(std::vector<FleetModel> models, FleetConfig config)
    : config_(std::move(config)),
      scheduler_kind_(resolve_scheduler_kind(config_.scheduler)),
      epoch_(ServeClock::now()) {
  if (models.empty()) throw std::invalid_argument("ServingFleet: no models");
  if (config_.max_queue == 0) throw std::invalid_argument("ServingFleet: max_queue == 0");
  if (config_.latency_window == 0) {
    throw std::invalid_argument("ServingFleet: latency_window == 0");
  }
  for (TenantSpec& spec : config_.tenants) tenants_.register_tenant(spec);
  scheduler_ = make_scheduler(scheduler_kind_, &tenants_);

  std::size_t max_budget = 1;
  for (std::size_t i = 0; i < models.size(); ++i) {
    FleetModel& m = models[i];
    if (m.name.empty()) m.name = "model" + std::to_string(i);
    const std::string who = "ServingFleet: model '" + m.name + "'";
    if (m.network == nullptr) throw std::invalid_argument(who + ": null network");
    if (m.dataset == nullptr) throw std::invalid_argument(who + ": null dataset");
    if (m.default_policy == nullptr) {
      throw std::invalid_argument(who + ": null default_policy");
    }
    if (m.max_timesteps == 0) throw std::invalid_argument(who + ": max_timesteps == 0");
    if (m.max_pool == 0) throw std::invalid_argument(who + ": max_pool == 0");
    if (m.workers == 0) throw std::invalid_argument(who + ": workers == 0");
    if (m.workers > 1 && !m.make_replica) {
      throw std::invalid_argument(who + ": workers > 1 needs a replica factory");
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (models[j].name == m.name) {
        throw std::invalid_argument("ServingFleet: duplicate model name '" + m.name + "'");
      }
    }
    max_budget = std::max(max_budget, m.max_timesteps);
  }

  models_.reserve(models.size());
  for (FleetModel& spec : models) {
    Model m;
    m.spec = std::move(spec);
    if (!m.spec.gemm_backend.empty()) {
      // Per-model tier selection, resolved loudly at construction: unknown /
      // unavailable backends throw here, and a quantized backend demands
      // weights calibrated at its bit-width — a misconfigured model must
      // never fail on a worker thread mid-request.
      const util::GemmBackend& backend =
          util::resolve_gemm_backend(m.spec.gemm_backend.c_str());
      if (const util::QuantizedGemmBackend* qb = util::as_quantized_backend(&backend)) {
        const int bits = snn::network_quantized_bits(*m.spec.network);
        if (bits != qb->weight_bits()) {
          throw util::QuantizationError(
              util::QuantizationError::Kind::kUncalibrated,
              "ServingFleet: model '" + m.spec.name + "' gemm_backend '" +
                  m.spec.gemm_backend + "' needs weights calibrated at " +
                  std::to_string(qb->weight_bits()) + " bits, but the network " +
                  (bits == 0   ? std::string("has no calibrated quantized weights")
                   : bits == -1 ? std::string("is in a partial/mixed quantized state")
                                : "is calibrated at " + std::to_string(bits) + " bits") +
                  "; run core::calibrate_quantized first");
        }
      }
      m.gemm_context = std::make_unique<util::GemmContext>(backend);
      m.spec.network->set_gemm_context(m.gemm_context.get());
    }
    // Extra workers run on replicas with the trained (and, for quantized
    // tiers, calibrated) state stamped in; all of a model's networks share
    // its context (GemmContext is thread-safe for concurrent GEMM calls).
    for (std::size_t w = 1; w < m.spec.workers; ++w) {
      auto replica = std::make_unique<snn::SpikingNetwork>(m.spec.make_replica());
      snn::copy_network_state(*m.spec.network, *replica);
      if (m.gemm_context) replica->set_gemm_context(m.gemm_context.get());
      m.replicas.push_back(std::move(replica));
    }
    m.prefetcher = std::make_unique<data::ShardPrefetcher>(*m.spec.dataset);
    models_.push_back(std::move(m));
  }

  exit_hist_ = util::Histogram(max_budget);
  queue_waits_us_ = util::BoundedSampleWindow(config_.latency_window);
  latencies_us_ = util::BoundedSampleWindow(config_.latency_window);
  tenant_counters_.resize(tenants_.size());
  for (TenantCounters& tc : tenant_counters_) {
    tc.queue_us = std::make_unique<util::BoundedSampleWindow>(config_.latency_window);
    tc.latency_us = std::make_unique<util::BoundedSampleWindow>(config_.latency_window);
  }

  // Threads start last: everything above is immutable (or mu_-guarded) by
  // the time any worker can observe it.
  for (std::size_t mi = 0; mi < models_.size(); ++mi) {
    for (std::size_t w = 0; w < models_[mi].spec.workers; ++w) {
      snn::SpikingNetwork* net =
          w == 0 ? models_[mi].spec.network : models_[mi].replicas[w - 1].get();
      workers_.push_back(util::Thread([this, mi, w, net] { worker_loop(mi, w, *net); }));
    }
  }
}

ServingFleet::~ServingFleet() { drain(); }

void ServingFleet::drain() {
  {
    util::MutexLock lk(mu_);
    draining_ = true;
  }
  cv_workers_.notify_all();
  // Serialize concurrent drainers: joinable()/join() on one thread handle
  // from two threads is a race. mu_ cannot guard the joins (the workers
  // take it), hence the dedicated mutex.
  util::MutexLock lk(drain_mu_);
  for (util::Thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  // No worker steps the networks anymore; release the base networks back to
  // the process default context ("after drain() the networks are free").
  for (Model& m : models_) {
    if (m.gemm_context) m.spec.network->set_gemm_context(nullptr);
  }
}

const std::string& ServingFleet::model_name(std::size_t model) const {
  if (model >= models_.size()) {
    throw std::out_of_range("ServingFleet::model_name: model " + std::to_string(model));
  }
  return models_[model].spec.name;
}

std::size_t ServingFleet::model_max_timesteps(std::size_t model) const {
  if (model >= models_.size()) {
    throw std::out_of_range("ServingFleet::model_max_timesteps: model " +
                            std::to_string(model));
  }
  return models_[model].spec.max_timesteps;
}

std::string ServingFleet::model_gemm_backend(std::size_t model) const {
  if (model >= models_.size()) {
    throw std::out_of_range("ServingFleet::model_gemm_backend: model " +
                            std::to_string(model));
  }
  return std::string(models_[model].spec.network->gemm_context().backend().name());
}

std::size_t ServingFleet::model_index(const std::string& name) const {
  for (std::size_t i = 0; i < models_.size(); ++i) {
    if (models_[i].spec.name == name) return i;
  }
  std::string known;
  for (const Model& m : models_) {
    known += known.empty() ? "'" + m.spec.name + "'" : ", '" + m.spec.name + "'";
  }
  throw std::invalid_argument("ServingFleet: unknown model '" + name +
                              "' (resident: " + known + ")");
}

Submission ServingFleet::submit(FleetRequest req) {
  const std::size_t model = req.model.empty() ? 0 : model_index(req.model);
  const Model& m = models_[model];
  if (!tenants_.contains(req.tenant)) {
    throw std::invalid_argument("ServingFleet::submit: unknown tenant id " +
                                std::to_string(req.tenant) + " (registered: " +
                                std::to_string(tenants_.size()) + ")");
  }
  core::InferenceRequest& r = req.request;
  if (r.samples.empty()) {
    r.samples.resize(m.spec.dataset->size());
    std::iota(r.samples.begin(), r.samples.end(), 0);
  }
  // Clear errors at the submission site: bounds and duplicates per the
  // shared core validator, and the budget override capped by the model's
  // budget so the exit histogram's bin count stays a fleet invariant.
  const std::size_t n_samples = core::validate_request_samples(
      r.samples, m.spec.dataset->size(), "ServingFleet::submit",
      /*allow_duplicates=*/false);
  const std::size_t budget = r.max_timesteps ? r.max_timesteps : m.spec.max_timesteps;
  if (budget > m.spec.max_timesteps) {
    throw std::invalid_argument("ServingFleet::submit: per-request max_timesteps " +
                                std::to_string(budget) + " exceeds model '" +
                                m.spec.name + "' budget " +
                                std::to_string(m.spec.max_timesteps));
  }

  auto pending = std::make_shared<Pending>();
  pending->model = model;
  pending->tenant = req.tenant;
  pending->policy = r.policy ? r.policy : m.spec.default_policy;
  pending->budget = budget;
  pending->record_logits = r.record_logits;
  pending->deadline = req.deadline;
  pending->on_result = std::move(req.on_result);
  pending->submit_time = ServeClock::now();
  pending->results.resize(n_samples);
  pending->remaining.store(n_samples, std::memory_order_relaxed);
  Submission out;
  out.results = pending->promise.get_future();

  // Scheduler key: the deadline as a microsecond offset from the fleet
  // epoch (EDF orders on it); already-elapsed deadlines clamp to 0.
  std::optional<std::uint64_t> deadline_us;
  if (req.deadline.has_value()) {
    const double us = elapsed_us(epoch_, *req.deadline);
    deadline_us = us > 0.0 ? static_cast<std::uint64_t>(us) : 0;
  }

  {
    util::MutexLock lk(mu_);
    if (draining_) {
      throw std::runtime_error("ServingFleet::submit: fleet is draining");
    }
    if (n_samples == 0) {
      // Nothing to run (an empty dataset expands to an empty request):
      // resolve now — workers only resolve promises as samples finish.
      pending->settled.store(true, std::memory_order_release);
      pending->promise.set_value({});
      out.handle.id = next_request_id_++;
      return out;
    }
    if (scheduler_->size() + n_samples > config_.max_queue) {
      throw std::runtime_error("ServingFleet::submit: admission queue full (" +
                               std::to_string(scheduler_->size()) +
                               " waiting, capacity " +
                               std::to_string(config_.max_queue) + ")");
    }
    const TenantSpec& ts = tenants_.spec(req.tenant);
    TenantCounters& tc = tenant_counters_[req.tenant];
    if (ts.max_queued > 0 && tc.queued + n_samples > ts.max_queued) {
      ++tc.rejected_requests;
      ++rejected_requests_;
      throw TenantQuotaError(
          req.tenant, "ServingFleet::submit: tenant '" + ts.name + "' over max_queued (" +
                          std::to_string(tc.queued) + " waiting + " +
                          std::to_string(n_samples) + " submitted > quota " +
                          std::to_string(ts.max_queued) + ")");
    }
    pending->id = next_request_id_++;
    out.handle.id = pending->id;
    for (std::size_t i = 0; i < n_samples; ++i) {
      QueuedSample unit;
      unit.owner = pending;
      unit.request_index = i;
      unit.sample = r.samples[i];
      unit.model = model;
      unit.tenant = req.tenant;
      unit.seq = next_seq_++;
      unit.deadline_us = deadline_us;
      scheduler_->push(std::move(unit));
    }
    ++submitted_requests_;
    submitted_samples_ += n_samples;
    tc.submitted_samples += n_samples;
    tc.queued += n_samples;
    live_requests_.push_back(std::move(pending));
  }
  cv_workers_.notify_all();
  return out;
}

bool ServingFleet::cancel(RequestHandle handle) {
  if (handle.id == 0) return false;
  std::shared_ptr<Pending> target;
  {
    util::MutexLock lk(mu_);
    for (const std::shared_ptr<Pending>& p : live_requests_) {
      if (p->id == handle.id) {
        target = p;
        break;
      }
    }
    if (!target) return false;
    if (target->settled.load(std::memory_order_acquire)) return false;
    target->cancelled.store(true, std::memory_order_release);
    ++cancelled_requests_;
    // Queued samples leave right now; residents force-exit at their
    // worker's next timestep boundary (purge_dead_slots), reported as
    // cancelled_live there.
    auto& counters = tenant_counters_;
    auto& cancelled_queued = cancelled_queued_;
    scheduler_->purge(
        [&](const QueuedSample& u) { return u.owner.get() == target.get(); },
        [&](QueuedSample& u) {
          TenantCounters& tc = counters[u.tenant];
          --tc.queued;
          ++tc.cancelled_queued;
          ++cancelled_queued;
        });
  }
  // Settle the future outside the lock (promise machinery can run
  // continuations); the exchange keeps it exactly-once against a racing
  // final delivery.
  if (!target->settled.exchange(true, std::memory_order_acq_rel)) {
    target->promise.set_exception(std::make_exception_ptr(
        CancelledError("ServingFleet: request " + std::to_string(handle.id) + " cancelled")));
  }
  cv_workers_.notify_all();
  return true;
}

FleetStats ServingFleet::stats() const {
  FleetStats s;
  std::vector<double> queue_window;
  std::vector<double> latency_window;
  std::vector<std::vector<double>> tenant_queue_windows;
  std::vector<std::vector<double>> tenant_latency_windows;
  {
    util::MutexLock lk(mu_);
    snapshot_counters(s, queue_window, latency_window, tenant_queue_windows,
                      tenant_latency_windows);
  }
  // Percentile sorts run outside the lock so a stats() poll never stalls
  // admission or completion publishing.
  s.queue_us = util::summarize_percentiles(queue_window);
  s.latency_us = util::summarize_percentiles(latency_window);
  for (std::size_t i = 0; i < s.tenants.size(); ++i) {
    s.tenants[i].queue_us = util::summarize_percentiles(tenant_queue_windows[i]);
    s.tenants[i].latency_us = util::summarize_percentiles(tenant_latency_windows[i]);
  }
  return s;
}

void ServingFleet::snapshot_counters(
    FleetStats& s, std::vector<double>& queue_window, std::vector<double>& latency_window,
    std::vector<std::vector<double>>& tenant_queue_windows,
    std::vector<std::vector<double>>& tenant_latency_windows) const {
  s.submitted_requests = submitted_requests_;
  s.submitted_samples = submitted_samples_;
  s.completed_samples = completed_samples_;
  s.failed_samples = failed_samples_;
  s.cancelled_queued_samples = cancelled_queued_;
  s.cancelled_live_samples = cancelled_live_;
  s.cancelled_requests = cancelled_requests_;
  s.deadline_forced_exits = deadline_forced_;
  s.deadline_missed = deadline_missed_;
  s.rejected_requests = rejected_requests_;
  s.queue_depth = scheduler_->size();
  s.live_samples = live_samples_;
  s.peak_pool = peak_pool_;
  s.exit_timesteps = exit_hist_;
  s.mean_exit_timestep = completed_samples_ ? exit_hist_.mean() + 1.0 : 0.0;
  queue_window = queue_waits_us_.snapshot();
  latency_window = latencies_us_.snapshot();
  s.tenants.resize(tenant_counters_.size());
  tenant_queue_windows.resize(tenant_counters_.size());
  tenant_latency_windows.resize(tenant_counters_.size());
  for (std::size_t i = 0; i < tenant_counters_.size(); ++i) {
    const TenantCounters& tc = tenant_counters_[i];
    TenantStats& ts = s.tenants[i];
    ts.name = tenants_.spec(static_cast<TenantId>(i)).name;
    ts.submitted_samples = tc.submitted_samples;
    ts.completed_samples = tc.completed_samples;
    ts.failed_samples = tc.failed_samples;
    ts.cancelled_queued_samples = tc.cancelled_queued;
    ts.cancelled_live_samples = tc.cancelled_live;
    ts.deadline_forced_exits = tc.deadline_forced;
    ts.deadline_missed = tc.deadline_missed;
    ts.rejected_requests = tc.rejected_requests;
    ts.queue_depth = tc.queued;
    ts.in_flight = tc.in_flight;
    tenant_queue_windows[i] = tc.queue_us->snapshot();
    tenant_latency_windows[i] = tc.latency_us->snapshot();
  }
}

bool ServingFleet::has_admissible(std::size_t model) const {
  const auto& counters = tenant_counters_;
  const TenantRegistry& tenants = tenants_;
  return scheduler_->any([&counters, &tenants, model](const QueuedSample& u) {
    if (u.model != model) return false;
    const TenantSpec& ts = tenants.spec(u.tenant);
    return ts.max_in_flight == 0 || counters[u.tenant].in_flight < ts.max_in_flight;
  });
}

bool ServingFleet::wait_for_work(util::MutexLock& lk, std::size_t model) {
  while (true) {
    if (has_admissible(model)) break;
    if (draining_) {
      // Drained for this worker only when nothing for its model remains
      // queued at all. Quota-blocked units don't end the loop: the pools
      // holding their tenant's in-flight samples will finish, decrement,
      // and notify.
      const bool any_for_model = scheduler_->any(
          [model](const QueuedSample& u) { return u.model == model; });
      if (!any_for_model) return false;
    }
    cv_workers_.wait(lk);
  }
  const std::size_t max_pool = models_[model].spec.max_pool;
  if (config_.admission_window.count() > 0 && scheduler_->size() < max_pool) {
    // Dynamic batching: an idle worker holds the first arrivals until its
    // pool would launch full or the window expires.
    const ServeClock::time_point deadline = ServeClock::now() + config_.admission_window;
    while (!draining_ && scheduler_->size() < max_pool) {
      if (cv_workers_.wait_until(lk, deadline) == std::cv_status::timeout) break;
    }
  }
  return true;
}

void ServingFleet::purge_dead_slots(Worker& w) {
  if (w.pool.empty()) return;
  std::size_t dropped = 0;
  std::size_t dst = 0;
  for (std::size_t j = 0; j < w.pool.size(); ++j) {
    Worker::Slot& slot = w.pool[j];
    const bool failed = slot.owner->failed.load(std::memory_order_acquire);
    const bool cancelled =
        !failed && slot.owner->cancelled.load(std::memory_order_acquire);
    if (failed || cancelled) {
      // This is the resident half of cancellation: the slot force-exits at
      // this timestep boundary, its row never steps again. (Failed slots'
      // results would be discarded anyway — same reclamation.)
      TenantCounters& tc = tenant_counters_[slot.tenant];
      --tc.in_flight;
      if (failed) {
        ++failed_samples_;
        ++tc.failed_samples;
      } else {
        ++cancelled_live_;
        ++tc.cancelled_live;
      }
      ++dropped;
      continue;
    }
    if (dst != j) {
      w.pool[dst] = std::move(w.pool[j]);
      w.keep[dst] = w.keep[j];
    }
    ++dst;
  }
  if (dropped > 0) {
    w.pool.resize(dst);
    w.keep.resize(dst);
    live_samples_ -= dropped;
  }
}

std::size_t ServingFleet::admit_waiting(Worker& w,
                                        std::vector<std::size_t>& admitted_samples,
                                        std::size_t classes) {
  const ServeClock::time_point now = ServeClock::now();
  const std::size_t model = w.model;
  auto& counters = tenant_counters_;
  const TenantRegistry& tenants = tenants_;
  const AdmissionFilter admissible = [&counters, &tenants, model](const QueuedSample& u) {
    if (u.model != model) return false;
    const TenantSpec& ts = tenants.spec(u.tenant);
    return ts.max_in_flight == 0 || counters[u.tenant].in_flight < ts.max_in_flight;
  };
  std::size_t admitted = 0;
  while (w.pool.size() < w.max_pool) {
    std::optional<QueuedSample> unit = scheduler_->pop(admissible);
    if (!unit.has_value()) break;
    auto owner = std::static_pointer_cast<Pending>(unit->owner);
    TenantCounters& tc = tenant_counters_[unit->tenant];
    --tc.queued;
    if (owner->failed.load(std::memory_order_acquire)) {
      // The request was already failed by a worker-side error; its promise
      // holds the exception, so its stragglers are discarded.
      ++failed_samples_;
      ++tc.failed_samples;
      continue;
    }
    if (owner->cancelled.load(std::memory_order_acquire)) {
      // cancel() purges queued units under mu_, so this only covers a unit
      // pushed-and-cancelled between our pop attempts; it never ran.
      ++cancelled_queued_;
      ++tc.cancelled_queued;
      continue;
    }
    Worker::Slot slot;
    slot.owner = std::move(owner);
    slot.request_index = unit->request_index;
    slot.sample = unit->sample;
    slot.tenant = unit->tenant;
    slot.acc.assign(classes, 0.0);
    slot.admitted_at = now;
    ++tc.in_flight;
    admitted_samples.push_back(slot.sample);
    w.pool.push_back(std::move(slot));
    ++admitted;
  }
  live_samples_ += admitted;
  peak_pool_ = std::max(peak_pool_, w.pool.size());
  return admitted;
}

void ServingFleet::worker_loop(std::size_t model, std::size_t worker_index,
                               snn::SpikingNetwork& net) {
  (void)worker_index;
  const Model& m = models_[model];
  const data::Dataset& dataset = *m.spec.dataset;
  const std::size_t k = net.num_classes();
  const snn::Shape fs = dataset.frame_shape();
  const std::size_t frame_numel = snn::shape_numel(fs);

  Worker w;
  w.model = model;
  w.max_pool = m.spec.max_pool;
  std::vector<float> cum(k);

  struct Finished {
    core::InferenceResult result;
    std::shared_ptr<Pending> owner;
    std::size_t exit_timestep = 0;  ///< copy that survives moving `result` out
    TenantId tenant = kDefaultTenant;
    double queue_wait_us = 0.0;
    double latency_us = 0.0;
    bool deadline_forced = false;
    bool deadline_missed = false;
    bool delivered = false;
    enum class Discard { kNone, kFailed, kCancelled };
    Discard discard = Discard::kNone;  ///< classified at delivery time
  };
  std::vector<Finished> done;

  while (true) {
    // ---- Admission. Waiting samples fill free slots at every timestep
    // boundary, in scheduler-policy order; an idle worker first blocks for
    // work (and optionally holds the admission window).
    std::size_t admitted = 0;
    std::vector<std::size_t> admitted_samples;
    bool purged = false;
    {
      util::MutexLock lk(mu_);
      // Reclaim slots whose request failed or was cancelled since the last
      // boundary — the force-exit point of cancellation.
      const std::size_t before = w.pool.size();
      purge_dead_slots(w);
      purged = w.pool.size() != before;
      if (w.pool.empty() && !wait_for_work(lk, model)) break;
      admitted = admit_waiting(w, admitted_samples, k);
    }
    // Purged slots released tenant in-flight quota: wake quota-blocked
    // siblings.
    if (purged) cv_workers_.notify_all();
    if (w.pool.empty()) continue;
    // Warm storage-backed datasets for the newly admitted samples outside
    // the admission lock, overlapping this cycle's pool step when the
    // background prefetcher is active.
    if (!admitted_samples.empty()) {
      if (m.prefetcher->active()) {
        m.prefetcher->enqueue(admitted_samples);
      } else {
        dataset.prefetch(admitted_samples);
      }
    }

    done.clear();
    try {
      // ---- Reconcile LIF state with the pool: survivors keep their rows
      // (in order), admissions become fresh zero-state rows — mid-flight
      // admission is a pure gather, so residents' trajectories are
      // unaffected (the bitwise identity contract).
      if (!w.active) {
        net.begin_inference(w.pool.size());
        w.active = true;
      } else if (admitted > 0 || w.keep.size() != w.stepped_rows) {
        w.keep.resize(w.keep.size() + admitted, snn::Layer::kFreshRow);
        net.compact_inference_state(w.keep);
      }
      w.stepped_rows = w.pool.size();

      // ---- One timestep for the whole pool, each sample at its own t.
      snn::Tensor x({w.pool.size(), fs[0], fs[1], fs[2]});
      for (std::size_t j = 0; j < w.pool.size(); ++j) {
        dataset.write_frame(w.pool[j].sample, w.pool[j].t,
                            {x.data() + j * frame_numel, frame_numel});
      }
      snn::Tensor y = net.step(x);  // [pool, K]

      // ---- Exit decisions: same arithmetic and decision order as the
      // offline engines (cumulative_mean_step, then budget → policy →
      // deadline via one shared core::make_exit_result).
      const ServeClock::time_point decided_at = ServeClock::now();
      w.keep.clear();
      std::size_t dst = 0;
      for (std::size_t j = 0; j < w.pool.size(); ++j) {
        Worker::Slot& s = w.pool[j];
        const Pending& p = *s.owner;
        snn::cumulative_mean_step(y.data() + j * k, s.acc.data(), cum.data(), k, s.t);
        if (p.record_logits) s.history.insert(s.history.end(), cum.begin(), cum.end());
        // Same short-circuit order as the offline engines (budget first,
        // policy only when not exhausted), so a policy is consulted for
        // exactly the same cum rows as on the batch-1 oracle; the deadline
        // is consulted last and only breaks ties neither of them claimed.
        const bool exhausted = s.t + 1 == p.budget;
        const bool policy_exit = !exhausted && p.policy->should_exit(cum);
        const bool past_deadline =
            !exhausted && !policy_exit && p.deadline && decided_at >= *p.deadline;
        if (exhausted || policy_exit || past_deadline) {
          Finished f;
          f.result = core::make_exit_result(cum, s.t, p.record_logits, s.history);
          f.result.request_index = s.request_index;
          f.result.sample = s.sample;
          f.owner = std::move(s.owner);
          f.exit_timestep = f.result.exit_timestep;
          f.tenant = s.tenant;
          f.queue_wait_us = elapsed_us(f.owner->submit_time, s.admitted_at);
          f.latency_us = elapsed_us(f.owner->submit_time, decided_at);
          f.deadline_forced = past_deadline;
          f.deadline_missed = p.deadline && decided_at >= *p.deadline;
          done.push_back(std::move(f));
        } else {
          s.t += 1;
          w.keep.push_back(j);
          if (dst != j) w.pool[dst] = std::move(w.pool[j]);
          ++dst;
        }
      }
      w.pool.resize(dst);
    } catch (...) {
      // A throw on a worker thread (user exit policy, encoding, OOM, ...)
      // must never take the process down. This network's state is
      // indeterminate mid-step, so every in-flight sample's trajectory on
      // THIS worker is unrecoverable: fail their requests and keep serving
      // with a fresh pool. Other workers' pools are untouched — they purge
      // the failed requests' slots at their own next boundary.
      const std::exception_ptr error = std::current_exception();
      std::size_t failed = 0;
      std::vector<TenantId> failed_tenants;
      const auto fail_owner = [&](const std::shared_ptr<Pending>& owner, TenantId tenant) {
        if (!owner) return;
        ++failed;
        failed_tenants.push_back(tenant);
        owner->failed.store(true, std::memory_order_release);
        if (!owner->settled.exchange(true, std::memory_order_acq_rel)) {
          owner->promise.set_exception(error);
        }
      };
      // Each live sample on this worker is exactly one non-null owner ref
      // across pool ∪ done (the decision loop's moves leave nulls behind),
      // so `failed` is also the live-sample count to release.
      for (const Finished& f : done) fail_owner(f.owner, f.tenant);
      for (const Worker::Slot& s : w.pool) fail_owner(s.owner, s.tenant);
      w.pool.clear();
      done.clear();
      w.active = false;
      w.stepped_rows = 0;
      w.keep.clear();
      {
        util::MutexLock lk(mu_);
        failed_samples_ += failed;
        live_samples_ -= failed;
        for (const TenantId t : failed_tenants) {
          TenantCounters& tc = tenant_counters_[t];
          ++tc.failed_samples;
          --tc.in_flight;
        }
      }
      cv_workers_.notify_all();
      continue;
    }
    if (w.pool.empty()) {
      // Fully drained pool: drop the stale state; the next admission begins
      // a fresh inference sequence (matches the offline batched engine).
      w.active = false;
      w.stepped_rows = 0;
      w.keep.clear();
    }

    if (done.empty()) continue;
    // Deliver outside the lock: callbacks first (streaming), then the
    // request future once its last sample has exited anywhere in the fleet
    // (remaining is the cross-worker rendezvous; each worker decrements
    // only after writing its disjoint results slots, so the finisher's
    // acquire sees them all). Samples of a failed or cancelled request are
    // discarded, not delivered.
    std::size_t discarded_failed = 0;
    std::size_t discarded_cancelled = 0;
    for (Finished& f : done) {
      Pending& p = *f.owner;
      if (p.failed.load(std::memory_order_acquire)) {
        f.discard = Finished::Discard::kFailed;
        ++discarded_failed;
        continue;
      }
      if (p.cancelled.load(std::memory_order_acquire)) {
        f.discard = Finished::Discard::kCancelled;
        ++discarded_cancelled;
        continue;
      }
      try {
        if (p.on_result) p.on_result(f.result);
        p.results[f.result.request_index] = std::move(f.result);
        if (p.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          if (!p.settled.exchange(true, std::memory_order_acq_rel)) {
            p.promise.set_value(std::move(p.results));
          }
        }
        f.delivered = true;
      } catch (...) {
        // A throwing result callback fails its own request only.
        p.failed.store(true, std::memory_order_release);
        if (!p.settled.exchange(true, std::memory_order_acq_rel)) {
          p.promise.set_exception(std::current_exception());
        }
        f.discard = Finished::Discard::kFailed;
        ++discarded_failed;
      }
    }
    // Only delivered results enter the stats: completed, failed, and
    // cancelled samples partition the submitted ones, and discarded work
    // never skews the latency digests or the exit histogram.
    {
      util::MutexLock lk(mu_);
      for (const Finished& f : done) {
        TenantCounters& tc = tenant_counters_[f.tenant];
        --tc.in_flight;
        if (!f.delivered) {
          if (f.discard == Finished::Discard::kCancelled) {
            ++tc.cancelled_live;
          } else {
            ++tc.failed_samples;
          }
          continue;
        }
        ++completed_samples_;
        ++tc.completed_samples;
        if (f.deadline_forced) {
          ++deadline_forced_;
          ++tc.deadline_forced;
        }
        if (f.deadline_missed) {
          ++deadline_missed_;
          ++tc.deadline_missed;
        }
        exit_hist_.add(f.exit_timestep - 1);
        queue_waits_us_.add(f.queue_wait_us);
        latencies_us_.add(f.latency_us);
        tc.queue_us->add(f.queue_wait_us);
        tc.latency_us->add(f.latency_us);
      }
      failed_samples_ += discarded_failed;
      cancelled_live_ += discarded_cancelled;
      live_samples_ -= done.size();
      // Fully settled requests with no remaining references anywhere in the
      // fleet can leave the cancellation index.
      live_requests_.erase(
          std::remove_if(live_requests_.begin(), live_requests_.end(),
                         [](const std::shared_ptr<Pending>& p) {
                           return p->settled.load(std::memory_order_acquire) &&
                                  p.use_count() == 1;
                         }),
          live_requests_.end());
    }
    // Completions freed pool slots and tenant quota: wake waiting workers.
    cv_workers_.notify_all();
  }
}

}  // namespace dtsnn::serve
