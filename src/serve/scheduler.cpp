#include "serve/scheduler.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <map>
#include <stdexcept>
#include <utility>
#include <vector>

#include "util/env.h"

namespace dtsnn::serve {

std::string_view scheduler_kind_name(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kFifo: return "fifo";
    case SchedulerKind::kEdf: return "edf";
    case SchedulerKind::kWeightedFair: return "weighted_fair";
  }
  throw std::invalid_argument("scheduler_kind_name: corrupt SchedulerKind");
}

SchedulerKind scheduler_kind_from_name(std::string_view name) {
  if (name == "fifo") return SchedulerKind::kFifo;
  if (name == "edf") return SchedulerKind::kEdf;
  if (name == "weighted_fair") return SchedulerKind::kWeightedFair;
  throw std::invalid_argument("scheduler_kind_from_name: unknown scheduler '" +
                              std::string(name) +
                              "' (expected fifo, edf, or weighted_fair)");
}

SchedulerKind resolve_scheduler_kind(const std::string& configured) {
  if (!configured.empty()) return scheduler_kind_from_name(configured);
  if (const auto env = util::env_string("DTSNN_SERVE_SCHEDULER")) {
    try {
      return scheduler_kind_from_name(*env);
    } catch (const std::invalid_argument&) {
      throw std::invalid_argument(
          "DTSNN_SERVE_SCHEDULER='" + *env +
          "': unknown scheduler (expected fifo, edf, or weighted_fair)");
    }
  }
  return SchedulerKind::kFifo;
}

namespace {

/// Strict arrival order; pop() takes the first admissible waiter so a
/// quota-blocked or other-model head never wedges the queue.
class FifoScheduler final : public Scheduler {
 public:
  void push(QueuedSample unit) override { queue_.push_back(std::move(unit)); }

  std::optional<QueuedSample> pop(const AdmissionFilter& admissible) override {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (!admissible(*it)) continue;
      QueuedSample unit = std::move(*it);
      queue_.erase(it);
      return unit;
    }
    return std::nullopt;
  }

  std::size_t purge(const std::function<bool(const QueuedSample&)>& victim,
                    const std::function<void(QueuedSample&)>& on_removed) override {
    std::size_t removed = 0;
    for (auto it = queue_.begin(); it != queue_.end();) {
      if (victim(*it)) {
        if (on_removed) on_removed(*it);
        it = queue_.erase(it);
        ++removed;
      } else {
        ++it;
      }
    }
    return removed;
  }

  [[nodiscard]] bool any(const AdmissionFilter& admissible) const override {
    return std::any_of(queue_.begin(), queue_.end(), admissible);
  }

  [[nodiscard]] std::size_t size() const override { return queue_.size(); }
  [[nodiscard]] SchedulerKind kind() const override { return SchedulerKind::kFifo; }

 private:
  std::deque<QueuedSample> queue_;
};

/// Earliest-deadline-first. Keyed by (absolute deadline, arrival seq):
/// deadline-free samples sort as deadline = +inf, i.e. after every
/// deadline-bound one, in arrival order among themselves.
class EdfScheduler final : public Scheduler {
 public:
  void push(QueuedSample unit) override {
    const std::uint64_t key =
        unit.deadline_us ? *unit.deadline_us : std::numeric_limits<std::uint64_t>::max();
    queue_.emplace(std::make_pair(key, unit.seq), std::move(unit));
  }

  std::optional<QueuedSample> pop(const AdmissionFilter& admissible) override {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (!admissible(it->second)) continue;
      QueuedSample unit = std::move(it->second);
      queue_.erase(it);
      return unit;
    }
    return std::nullopt;
  }

  std::size_t purge(const std::function<bool(const QueuedSample&)>& victim,
                    const std::function<void(QueuedSample&)>& on_removed) override {
    std::size_t removed = 0;
    for (auto it = queue_.begin(); it != queue_.end();) {
      if (victim(it->second)) {
        if (on_removed) on_removed(it->second);
        it = queue_.erase(it);
        ++removed;
      } else {
        ++it;
      }
    }
    return removed;
  }

  [[nodiscard]] bool any(const AdmissionFilter& admissible) const override {
    return std::any_of(queue_.begin(), queue_.end(),
                       [&](const auto& kv) { return admissible(kv.second); });
  }

  [[nodiscard]] std::size_t size() const override { return queue_.size(); }
  [[nodiscard]] SchedulerKind kind() const override { return SchedulerKind::kEdf; }

 private:
  std::multimap<std::pair<std::uint64_t, std::uint64_t>, QueuedSample> queue_;
};

/// Start-time weighted fair queuing over tenant classes. Every admitted
/// sample charges its tenant 1/weight of virtual time; the backlogged
/// tenant with the least virtual time (ties: lower id) is served next,
/// FIFO within the tenant. A tenant that goes idle and returns has its
/// clock caught up to the backlog's minimum, so it cannot bank credit
/// while idle and then monopolize the pools.
class WeightedFairScheduler final : public Scheduler {
 public:
  explicit WeightedFairScheduler(const TenantRegistry* tenants) : tenants_(tenants) {}

  void push(QueuedSample unit) override {
    Lane& lane = lane_for(unit.tenant);
    if (lane.queue.empty()) {
      // Fresh backlog: catch the lane's clock up to the least-served
      // backlogged lane, so an idle tenant cannot bank virtual time and
      // then lock out the others on return.
      const double mv = min_backlogged_vtime();
      if (mv != std::numeric_limits<double>::infinity()) {
        lane.vtime = std::max(lane.vtime, mv);
      }
    }
    lane.queue.push_back(std::move(unit));
    ++size_;
  }

  std::optional<QueuedSample> pop(const AdmissionFilter& admissible) override {
    // Tenants in (vtime, id) order; within a tenant, arrival order.
    std::vector<std::pair<double, TenantId>> order;
    order.reserve(lanes_.size());
    for (const auto& [id, lane] : lanes_) {
      if (!lane.queue.empty()) order.emplace_back(lane.vtime, id);
    }
    std::sort(order.begin(), order.end());
    for (const auto& [vtime, id] : order) {
      Lane& lane = lanes_.at(id);
      for (auto it = lane.queue.begin(); it != lane.queue.end(); ++it) {
        if (!admissible(*it)) continue;
        QueuedSample unit = std::move(*it);
        lane.queue.erase(it);
        --size_;
        lane.vtime += 1.0 / weight(id);
        return unit;
      }
    }
    return std::nullopt;
  }

  std::size_t purge(const std::function<bool(const QueuedSample&)>& victim,
                    const std::function<void(QueuedSample&)>& on_removed) override {
    std::size_t removed = 0;
    for (auto& [id, lane] : lanes_) {
      for (auto it = lane.queue.begin(); it != lane.queue.end();) {
        if (victim(*it)) {
          if (on_removed) on_removed(*it);
          it = lane.queue.erase(it);
          ++removed;
        } else {
          ++it;
        }
      }
    }
    size_ -= removed;
    return removed;
  }

  [[nodiscard]] bool any(const AdmissionFilter& admissible) const override {
    for (const auto& [id, lane] : lanes_) {
      if (std::any_of(lane.queue.begin(), lane.queue.end(), admissible)) return true;
    }
    return false;
  }

  [[nodiscard]] std::size_t size() const override { return size_; }
  [[nodiscard]] SchedulerKind kind() const override {
    return SchedulerKind::kWeightedFair;
  }

 private:
  struct Lane {
    std::deque<QueuedSample> queue;
    double vtime = 0.0;
  };

  Lane& lane_for(TenantId id) { return lanes_[id]; }

  [[nodiscard]] double weight(TenantId id) const {
    if (tenants_ != nullptr && tenants_->contains(id)) return tenants_->spec(id).weight;
    return 1.0;
  }

  [[nodiscard]] double min_backlogged_vtime() const {
    double mv = std::numeric_limits<double>::infinity();
    for (const auto& [id, lane] : lanes_) {
      if (!lane.queue.empty()) mv = std::min(mv, lane.vtime);
    }
    return mv;
  }

  const TenantRegistry* tenants_;
  std::map<TenantId, Lane> lanes_;  ///< ordered: deterministic id tie-break
  std::size_t size_ = 0;
};

}  // namespace

std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind,
                                          const TenantRegistry* tenants) {
  switch (kind) {
    case SchedulerKind::kFifo: return std::make_unique<FifoScheduler>();
    case SchedulerKind::kEdf: return std::make_unique<EdfScheduler>();
    case SchedulerKind::kWeightedFair:
      return std::make_unique<WeightedFairScheduler>(tenants);
  }
  throw std::invalid_argument("make_scheduler: corrupt SchedulerKind");
}

}  // namespace dtsnn::serve
