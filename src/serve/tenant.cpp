#include "serve/tenant.h"

#include <cmath>

namespace dtsnn::serve {

TenantRegistry::TenantRegistry() { specs_.push_back(TenantSpec{}); }

TenantId TenantRegistry::register_tenant(TenantSpec spec) {
  if (!std::isfinite(spec.weight) || spec.weight <= 0.0) {
    throw std::invalid_argument("TenantRegistry::register_tenant: weight must be finite > 0 (tenant '" +
                                spec.name + "')");
  }
  const auto id = static_cast<TenantId>(specs_.size());
  if (spec.name.empty()) spec.name = "tenant" + std::to_string(id);
  specs_.push_back(std::move(spec));
  return id;
}

const TenantSpec& TenantRegistry::spec(TenantId id) const {
  if (!contains(id)) {
    throw std::out_of_range("TenantRegistry::spec: unknown tenant id " + std::to_string(id) +
                            " (registered: " + std::to_string(specs_.size()) + ")");
  }
  return specs_[id];
}

}  // namespace dtsnn::serve
