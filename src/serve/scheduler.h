// Admission scheduling policies for the serving layer.
//
// The serving fleet keeps every waiting sample in one admission structure;
// whenever a worker has a free pool slot it asks the scheduler which sample
// to admit next. The policy decides *order only* — per-sample decisions
// (prediction, exit timestep, entropy, logits) are bitwise identical to the
// batch-1 oracle regardless of admission order, so schedulers trade tail
// latency and fairness, never correctness.
//
// Three shipped policies:
//
//   fifo           Strict arrival order (the pre-fleet single-server
//                  behavior). Head-of-line: one slow class delays everyone.
//   edf            Earliest-deadline-first: deadline-bound requests are
//                  admitted by absolute deadline; requests without a
//                  deadline run after every deadline-bound one, in arrival
//                  order. The policy for SLO traffic.
//   weighted_fair  Start-time weighted fair queuing across tenant classes:
//                  each tenant accrues virtual time 1/weight per admitted
//                  sample, and the backlogged tenant with the least virtual
//                  time goes next (FIFO within a tenant). A bulk tenant can
//                  saturate its own share but never starve the others.
//
// Selection: ServerConfig/FleetConfig carry a policy name; an empty name
// defers to the DTSNN_SERVE_SCHEDULER environment knob (util::env_string),
// and an unset knob means fifo. Unknown names throw, loudly, at
// construction.
//
// Schedulers are NOT thread-safe: the owning server/fleet calls them only
// under its admission mutex.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "serve/tenant.h"

namespace dtsnn::serve {

enum class SchedulerKind { kFifo, kEdf, kWeightedFair };

/// Canonical policy name ("fifo", "edf", "weighted_fair").
std::string_view scheduler_kind_name(SchedulerKind kind);

/// Parse a policy name; throws std::invalid_argument naming the accepted
/// forms on anything else.
SchedulerKind scheduler_kind_from_name(std::string_view name);

/// Resolve the effective policy: a non-empty `configured` name wins, else
/// the DTSNN_SERVE_SCHEDULER environment variable, else fifo. Malformed
/// values throw std::invalid_argument naming their origin.
SchedulerKind resolve_scheduler_kind(const std::string& configured);

/// One queued sample, carrying exactly the metadata scheduling policies
/// order by. `owner` is the opaque per-request state of the owning
/// server/fleet (type-erased so the scheduler layer depends on neither).
struct QueuedSample {
  std::shared_ptr<void> owner;
  std::size_t request_index = 0;  ///< position within the owning request
  std::size_t sample = 0;         ///< dataset sample index
  std::size_t model = 0;          ///< fleet model index (0 for one model)
  TenantId tenant = kDefaultTenant;
  std::uint64_t seq = 0;          ///< global admission sequence (FIFO ties)
  /// Absolute deadline in microseconds since the owning server's epoch;
  /// nullopt = not deadline-bound. (A plain integer rather than a
  /// time_point so scheduling order is a pure function of the queue.)
  std::optional<std::uint64_t> deadline_us;
};

/// Predicate a worker passes to pop(): which queued samples it can admit
/// right now (its own model, tenant in-flight quota not exhausted, ...).
using AdmissionFilter = std::function<bool(const QueuedSample&)>;

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual void push(QueuedSample unit) = 0;

  /// Remove and return the policy's next admissible sample — the first one,
  /// in policy order, for which `admissible` is true — or nullopt when no
  /// queued sample passes the filter.
  virtual std::optional<QueuedSample> pop(const AdmissionFilter& admissible) = 0;

  /// Remove every queued sample matching `victim` (request cancellation,
  /// failed-request purge); returns how many were removed. Removal order is
  /// unspecified; the removed units are handed back for accounting.
  virtual std::size_t purge(const std::function<bool(const QueuedSample&)>& victim,
                            const std::function<void(QueuedSample&)>& on_removed) = 0;

  /// True when any queued sample passes the filter (a worker's wait
  /// predicate).
  [[nodiscard]] virtual bool any(const AdmissionFilter& admissible) const = 0;

  [[nodiscard]] virtual std::size_t size() const = 0;
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] virtual SchedulerKind kind() const = 0;
  [[nodiscard]] std::string_view name() const { return scheduler_kind_name(kind()); }
};

/// Build a scheduler. `tenants` supplies weighted_fair's weights (borrowed;
/// must outlive the scheduler); fifo/edf ignore it, and weighted_fair with
/// a null registry treats every tenant as weight 1.
std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind,
                                          const TenantRegistry* tenants = nullptr);

}  // namespace dtsnn::serve
