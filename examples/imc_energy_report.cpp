// IMC energy report: map a network onto the in-memory-computing chip model
// and print the per-layer placement plus the component energy breakdown —
// the workflow an architect would use to size a deployment.
//
// Usage: imc_energy_report [vgg16|resnet19] [timesteps] [activity]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "imc/energy_model.h"

using namespace dtsnn;

int main(int argc, char** argv) {
  const std::string which = argc > 1 ? argv[1] : "vgg16";
  const double timesteps = argc > 2 ? std::atof(argv[2]) : 4.0;
  const double activity = argc > 3 ? std::atof(argv[3]) : 0.15;

  imc::NetworkSpec spec =
      which == "resnet19" ? imc::resnet19_spec() : imc::vgg16_spec();
  imc::set_uniform_activity(spec, activity, /*first_layer_activity=*/1.0);
  const imc::ImcConfig cfg;
  const imc::EnergyModel model(imc::map_network(spec, cfg));
  const auto& mapping = model.mapping();

  std::printf("Network: %s  (T=%.2f, hidden spike activity %.2f)\n",
              spec.name.c_str(), timesteps, activity);
  std::printf("Architecture: %zux%zu %zu-bit RRAM crossbars, %zu per tile\n\n",
              cfg.crossbar_size, cfg.crossbar_size, cfg.device_bits,
              cfg.crossbars_per_tile);

  std::printf("%-14s %9s %9s %8s %7s %12s\n", "layer", "rows", "cols(dev)", "xbars",
              "tiles", "latency(us)");
  for (const auto& l : mapping.layers) {
    std::printf("%-14s %9zu %9zu %8zu %7zu %12.2f\n", l.spec.label.c_str(),
                l.spec.rows_needed(), l.device_columns, l.crossbars, l.tiles,
                l.latency_ns / 1e3);
  }
  std::printf("%-14s %9s %9s %8zu %7zu %12.2f\n\n", "TOTAL", "", "",
              mapping.total_crossbars(), mapping.total_tiles(),
              mapping.total_latency_ns() / 1e3);

  const auto shares = model.component_shares(timesteps);
  const double total_uj = model.energy_pj(timesteps) / 1e6;
  std::printf("Energy at T=%.2f: %.2f uJ/inference\n", timesteps, total_uj);
  std::printf("  digital peripherals  %5.1f%%\n", 100 * shares.digital_peripherals);
  std::printf("  crossbar + ADC       %5.1f%%\n", 100 * shares.crossbar_adc);
  std::printf("  H-Tree               %5.1f%%\n", 100 * shares.htree);
  std::printf("  NoC                  %5.1f%%\n", 100 * shares.noc);
  std::printf("  LIF module           %5.1f%%\n", 100 * shares.lif);
  std::printf("Latency: %.2f us/inference  EDP: %.3e pJ*ns\n",
              model.latency_ns(timesteps) / 1e3, model.edp(timesteps));
  std::printf("sigma-E overhead per timestep: %.2e of one-timestep energy\n",
              model.breakdown().sigma_e_per_timestep_pj /
                  model.breakdown().per_timestep.total());
  return 0;
}
