// train_cli: command-line training / evaluation / checkpointing front end
// for the library — the "user-facing tool" of the repository.
//
// Usage:
//   train_cli train --model vgg_mini --dataset sync10 --epochs 12
//             --timesteps 4 --loss eq10 --out model.ckpt
//   train_cli eval  --model vgg_mini --dataset sync10 --timesteps 4
//             --ckpt model.ckpt [--theta 0.25] [--noise]
//
// `eval` reports static per-timestep accuracy; with --theta it additionally
// runs DT-SNN at that threshold; with --noise it first projects the weights
// through the 20% conductance-variation device pipeline.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/calibration.h"
#include "core/evaluator.h"
#include "imc/xbar_functional.h"
#include "snn/serialize.h"
#include "util/gemm.h"

using namespace dtsnn;

namespace {

struct CliArgs {
  std::string command;
  std::string model = "vgg_mini";
  std::string dataset = "sync10";
  std::size_t epochs = 12;
  std::size_t timesteps = 4;
  std::string loss = "eq10";
  std::string surrogate = "triangle";
  std::string checkpoint;
  double theta = -1.0;
  double scale = 1.0;
  std::uint64_t seed = 1;
  bool noise = false;
  std::string gemm_backend;  ///< empty = env/auto selection

  static void usage(const char* argv0) {
    std::printf(
        "usage:\n"
        "  %s train --model M --dataset D [--epochs N] [--timesteps T]\n"
        "           [--loss eq9|eq10] [--surrogate triangle|dspike|rectangle|atan]\n"
        "           [--scale F] [--seed S] --out FILE\n"
        "  %s eval  --model M --dataset D [--timesteps T] --ckpt FILE\n"
        "           [--theta TH] [--noise] [--scale F]\n"
        "common: --gemm-backend scalar_ref|blocked_omp|avx2|sparse_spike\n"
        "                       |int8_spike|int4_spike (need calibrated scales)\n"
        "        (default: DTSNN_GEMM_BACKEND env, else avx2 when supported)\n"
        "models: vgg_mini vgg_micro resnet_mini resnet_micro\n"
        "datasets: sync10 sync100 syntin syndvs\n",
        argv0, argv0);
  }
};

CliArgs parse(int argc, char** argv) {
  CliArgs args;
  if (argc < 2) {
    CliArgs::usage(argv[0]);
    std::exit(2);  // NOLINT(concurrency-mt-unsafe) pre-thread flag parsing
  }
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);  // NOLINT(concurrency-mt-unsafe) pre-thread flag parsing
      }
      return argv[++i];
    };
    if (flag == "--model") args.model = next();
    else if (flag == "--dataset") args.dataset = next();
    else if (flag == "--epochs") args.epochs = std::strtoull(next().c_str(), nullptr, 10);
    else if (flag == "--timesteps") args.timesteps = std::strtoull(next().c_str(), nullptr, 10);
    else if (flag == "--loss") args.loss = next();
    else if (flag == "--surrogate") args.surrogate = next();
    else if (flag == "--out" || flag == "--ckpt") args.checkpoint = next();
    else if (flag == "--theta") args.theta = std::atof(next().c_str());
    else if (flag == "--scale") args.scale = std::atof(next().c_str());
    else if (flag == "--seed") args.seed = std::strtoull(next().c_str(), nullptr, 10);
    else if (flag == "--noise") args.noise = true;
    else if (flag == "--gemm-backend") args.gemm_backend = next();
    else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      CliArgs::usage(argv[0]);
      std::exit(2);  // NOLINT(concurrency-mt-unsafe) pre-thread flag parsing
    }
  }
  return args;
}

core::ExperimentSpec to_spec(const CliArgs& args) {
  core::ExperimentSpec spec;
  spec.model = args.model;
  spec.dataset = args.dataset;
  spec.epochs = args.epochs;
  spec.timesteps = args.timesteps;
  spec.loss = args.loss == "eq9" ? core::LossKind::kMeanLogit
                                 : core::LossKind::kPerTimestep;
  spec.surrogate = snn::surrogate_from_string(args.surrogate);
  spec.data_scale = args.scale;
  spec.seed = args.seed;
  return spec;
}

int cmd_train(const CliArgs& args) {
  if (args.checkpoint.empty()) {
    std::fprintf(stderr, "train: --out FILE is required\n");
    return 2;
  }
  core::Experiment e = core::run_experiment(to_spec(args));
  snn::save_checkpoint(e.net, args.checkpoint);
  std::printf("final train accuracy: %.2f%%\n", 100.0 * e.train_stats.final_accuracy());
  std::printf("GEMM work: %.2f GFLOP via %s (input density %.3f)\n",
              e.train_stats.gemm_gflops, e.train_stats.gemm_backend.c_str(),
              e.train_stats.gemm_input_density);
  std::printf("checkpoint written to %s\n", args.checkpoint.c_str());
  return 0;
}

int cmd_eval(const CliArgs& args) {
  if (args.checkpoint.empty()) {
    std::fprintf(stderr, "eval: --ckpt FILE is required\n");
    return 2;
  }
  data::SyntheticBundle bundle = core::make_bundle(args.dataset, args.scale);
  snn::ModelConfig mc;
  mc.num_classes = bundle.train->num_classes();
  mc.input_shape = bundle.train->frame_shape();
  mc.seed = args.seed;
  mc.lif.surrogate.kind = snn::surrogate_from_string(args.surrogate);
  snn::SpikingNetwork net = snn::make_model(args.model, mc);
  snn::load_checkpoint(net, args.checkpoint);

  if (args.noise) {
    const imc::ImcConfig cfg;
    const std::size_t n = imc::apply_device_variation(net, cfg, args.seed ^ 0xd0123);
    std::printf("applied %.0f%% conductance variation to %zu weights\n",
                100.0 * cfg.device_sigma_over_mu, n);
  }

  auto outputs = core::collect_outputs(net, *bundle.test, args.timesteps);
  std::printf("static accuracy per timestep:\n");
  const auto acc = core::accuracy_per_timestep(outputs);
  for (std::size_t t = 1; t <= acc.size(); ++t) {
    std::printf("  T=%zu: %.2f%%\n", t, 100.0 * acc[t - 1]);
  }
  if (args.theta >= 0.0) {
    const core::EntropyExitPolicy policy(args.theta);
    const auto r = core::evaluate_recorded(outputs, policy, *bundle.test);
    std::printf("DT-SNN @ theta=%.3f: %.2f%% accuracy, %.2f avg timesteps [%s]\n",
                args.theta, 100.0 * r.accuracy, r.avg_timesteps,
                r.timestep_histogram.to_string().c_str());
  } else {
    const auto calib = core::calibrate_theta(outputs, acc.back(), 0.005);
    std::printf("calibrated theta=%.3f: %.2f%% accuracy, %.2f avg timesteps\n",
                calib.theta, 100.0 * calib.result.accuracy,
                calib.result.avg_timesteps);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args = parse(argc, argv);
  // Backends are bitwise identical (util/gemm.h), so this only changes
  // speed; resolve_gemm_backend rejects unknown/unavailable names loudly.
  // Without the flag the global context keeps its DTSNN_GEMM_BACKEND /
  // CPUID-derived default — which also resolves (and can throw) here, so a
  // typo'd env var gets the same clean exit-2 as a bad flag.
  try {
    if (!args.gemm_backend.empty()) {
      util::GemmContext::global().set_backend(
          util::resolve_gemm_backend(args.gemm_backend.c_str()));
    }
    std::printf("GEMM backend: %s\n",
                std::string(util::GemmContext::global().backend().name()).c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "GEMM backend selection failed (--gemm-backend / "
                 "DTSNN_GEMM_BACKEND): %s\n", e.what());
    return 2;
  }
  if (args.command == "train") return cmd_train(args);
  if (args.command == "eval") return cmd_eval(args);
  CliArgs::usage(argv[0]);
  return 2;
}
