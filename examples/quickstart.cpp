// Quickstart: the full DT-SNN pipeline in ~60 lines.
//
//  1. Generate a synthetic 10-class vision dataset.
//  2. Train a small spiking VGG with the per-timestep loss (Eq. 10).
//  3. Record per-timestep outputs on the test set.
//  4. Calibrate the entropy threshold to the static 4-timestep accuracy.
//  5. Run true early-termination inference at the calibrated threshold
//     through the unified engine API (batched, with live-batch compaction).
//  6. Report accuracy, average timesteps, and IMC energy/EDP savings.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>

#include "core/calibration.h"
#include "core/evaluator.h"
#include "imc/energy_model.h"

using namespace dtsnn;

int main() {
  // 1-2. Dataset + model + training, bundled by the experiment harness.
  core::ExperimentSpec spec;
  spec.model = "vgg_mini";       // 5-conv spiking VGG
  spec.dataset = "sync10";       // synthetic CIFAR-10 stand-in
  spec.timesteps = 4;            // paper's static budget
  spec.epochs = 10;
  spec.loss = core::LossKind::kPerTimestep;  // Eq. 10
  spec.data_scale = 0.5;         // half-size dataset for a fast demo

  std::printf("Training %s on %s (T=%zu)...\n", spec.model.c_str(),
              spec.dataset.c_str(), spec.timesteps);
  core::Experiment experiment = core::run_experiment(spec);
  std::printf("GEMM backend: %s (%.2f GFLOP trained, override with "
              "DTSNN_GEMM_BACKEND)\n",
              experiment.train_stats.gemm_backend.c_str(),
              experiment.train_stats.gemm_gflops);

  // 3. Per-timestep cumulative outputs on the test set.
  core::TimestepOutputs outputs = core::test_outputs(experiment);
  std::printf("\nStatic accuracy per timestep:\n");
  const auto acc = core::accuracy_per_timestep(outputs);
  for (std::size_t t = 1; t <= acc.size(); ++t) {
    std::printf("  T=%zu: %.2f%%\n", t, 100.0 * acc[t - 1]);
  }

  // 4. Calibrate theta for iso-accuracy dynamic inference (Eq. 8).
  const double target = acc.back();
  const auto calib = core::calibrate_theta(outputs, target, /*tolerance=*/0.005);
  std::printf("\nDT-SNN @ theta=%.3f: accuracy %.2f%% with %.2f average timesteps\n",
              calib.theta, 100.0 * calib.result.accuracy, calib.result.avg_timesteps);
  std::printf("Exit distribution (T-hat = 1..%zu): %s\n", spec.timesteps,
              calib.result.timestep_histogram.to_string().c_str());

  // 5. True early termination at the calibrated threshold: the batched
  // sequential engine makes the same exit decisions as the post-hoc replay,
  // but actually stops computing (and compacts the batch) as samples exit.
  const core::EntropyExitPolicy policy(calib.theta);
  core::BatchedSequentialEngine engine(experiment.net, policy, spec.timesteps);
  const core::InferenceRequest request =
      core::InferenceRequest::first_n(std::min<std::size_t>(outputs.samples, 256));
  const core::DtsnnResult live = core::evaluate_engine(engine, *experiment.bundle.test,
                                                       request);
  std::printf("Sequential check (%s, %zu samples): %.2f%% accuracy, %.2f avg timesteps\n",
              engine.name().c_str(), request.samples.size(), 100.0 * live.accuracy,
              live.avg_timesteps);

  // 6. Hardware impact on the paper-scale IMC chip (VGG-16 mapping).
  imc::NetworkSpec hw_spec = imc::vgg16_spec();
  const imc::EnergyModel hw(imc::map_network(hw_spec, imc::ImcConfig{}));
  const double e_static = hw.energy_pj(4);
  const double e_dt = hw.mean_energy_pj(calib.result.exit_timestep);
  const double edp_static = hw.edp(4);
  const double edp_dt = hw.mean_edp(calib.result.exit_timestep);
  std::printf("\nIMC hardware (64x64 4-bit RRAM, VGG-16 scale):\n");
  std::printf("  energy: %.2fx of static   EDP: %.1f%% of static\n",
              e_dt / e_static, 100.0 * edp_dt / edp_static);
  std::printf("\nDone. See bench/ for the full per-figure reproductions.\n");
  return 0;
}
