// Serving demo: a two-tenant DT-SNN inference service under live traffic.
//
// Trains a small model, starts a serve::InferenceServer with the EDF
// scheduler and two tenant classes — a deadline-bound "interactive" tenant
// and a quota-limited "bulk" tenant — then drives both from concurrent
// client threads. The demo shows the scheduler subsystem end to end:
// earliest-deadline-first admission pulls interactive work past queued bulk
// batches, the bulk tenant's max_queued quota bounces over-eager
// submissions with a typed TenantQuotaError (the client backs off and
// retries), one bulk request is cancelled mid-flight through its
// RequestHandle, and the run closes with per-tenant latency/quota/exit
// statistics.

#include <chrono>
#include <cstdio>
#include <future>
#include <thread>  // std::this_thread::sleep_for (arrival pacing only)
#include <vector>

#include "core/evaluator.h"
#include "serve/server.h"
#include "util/sync.h"
#include "util/thread.h"

using namespace dtsnn;

int main() {
  core::ExperimentSpec spec;
  spec.model = "vgg_mini";
  spec.dataset = "sync10";
  spec.timesteps = 4;
  spec.epochs = 10;
  spec.loss = core::LossKind::kPerTimestep;
  spec.data_scale = 0.4;

  std::printf("Training %s on %s...\n\n", spec.model.c_str(), spec.dataset.c_str());
  core::Experiment e = core::run_experiment(spec);
  const auto& ds = *e.bundle.test;

  const core::EntropyExitPolicy default_policy(0.3);
  serve::ServerConfig config;
  config.max_pool = 4;  // small pool: admission order is visible in the output
  config.scheduler = "edf";
  config.tenants.push_back({.name = "interactive", .weight = 4.0});
  config.tenants.push_back({.name = "bulk", .weight = 1.0, .max_queued = 8});
  const serve::TenantId interactive = 1;
  const serve::TenantId bulk = 2;
  serve::InferenceServer server(e.net, ds, default_policy, spec.timesteps, config);

  const std::string kind{serve::scheduler_kind_name(server.scheduler_kind())};
  std::printf("Serving with theta=0.30, scheduler=%s, pool=%zu, budget T=%zu.\n"
              "Tenants: interactive (deadline-bound), bulk (max_queued=8).\n\n",
              kind.c_str(), config.max_pool, server.max_timesteps());

  util::Mutex print_mu;
  const auto t0 = serve::ServeClock::now();
  auto say = [&](const char* format, auto... args) {
    const double ms =
        std::chrono::duration<double, std::milli>(serve::ServeClock::now() - t0)
            .count();
    util::MutexLock lk(print_mu);
    std::printf("  [%7.2f ms] ", ms);
    std::printf(format, args...);
  };
  auto streamer = [&](const char* client) {
    return [&, client](const core::InferenceResult& r) {
      say("%s: sample %3zu -> class %zu, exited t=%zu (entropy %.3f)\n", client,
          r.sample, r.predicted_class, r.exit_timestep, r.final_entropy);
    };
  };

  // Interactive tenant: small paced requests, each with a 40ms deadline.
  // Under EDF these overtake any bulk batch still waiting for admission.
  util::Thread client_a([&] {
    std::vector<std::future<std::vector<core::InferenceResult>>> futs;
    for (std::size_t i = 0; i < 8; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      serve::ServeRequest req;
      req.request.samples.push_back(3 * i);
      req.tenant = interactive;
      req.deadline = serve::ServeClock::now() + std::chrono::milliseconds(40);
      req.on_result = streamer("interactive");
      futs.push_back(server.submit(std::move(req)));
    }
    for (auto& f : futs) f.wait();
  });

  // Bulk tenant: fires batches as fast as it can. The 8-sample max_queued
  // quota bounces the excess with a typed error; the client backs off and
  // retries — backpressure lands on the greedy tenant, not the fleet.
  util::Thread client_b([&] {
    std::vector<std::future<std::vector<core::InferenceResult>>> futs;
    std::size_t rejections = 0;
    for (std::size_t batch = 0; batch < 4; ++batch) {
      while (true) {
        // Rebuilt per attempt: submit() consumes the request even when the
        // quota bounces it.
        serve::ServeRequest req;
        for (std::size_t s = 0; s < 6; ++s) {
          req.request.samples.push_back(100 + 6 * batch + s);
        }
        req.tenant = bulk;
        req.on_result = streamer("bulk       ");
        try {
          futs.push_back(server.submit(std::move(req)));
          break;
        } catch (const serve::TenantQuotaError& err) {
          if (++rejections == 1) say("bulk        quota rejection: %s\n", err.what());
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
      }
    }
    say("bulk        saw %zu quota rejection(s) while submitting\n", rejections);
    for (auto& f : futs) f.wait();
  });

  // Cancellation: submit one more bulk batch through a handle, then revoke
  // it — queued samples are purged, resident ones force-exit at the next
  // timestep boundary, and the future fails with CancelledError.
  client_a.join();
  client_b.join();
  serve::ServeRequest doomed;
  for (std::size_t s = 140; s < 146; ++s) doomed.request.samples.push_back(s);
  doomed.tenant = bulk;
  serve::Submission sub = server.submit_with_handle(std::move(doomed));
  const bool cancelled = server.cancel(sub.handle);
  say("bulk        cancelled request #%llu: %s\n",
      static_cast<unsigned long long>(sub.handle.id), cancelled ? "yes" : "no");
  try {
    sub.results.get();
  } catch (const serve::CancelledError& err) {
    say("bulk        future failed as expected: %s\n", err.what());
  }
  server.drain();

  const serve::ServerStats stats = server.stats();
  std::printf("\nServer stats (gemm backend: %s):\n", server.gemm_backend().c_str());
  std::printf("  requests %zu, samples %zu served, %zu deadline-forced exits\n",
              stats.submitted_requests, stats.completed_samples,
              stats.deadline_forced_exits);
  std::printf("  cancelled: %zu requests (%zu queued + %zu live samples), "
              "rejected: %zu requests\n",
              stats.cancelled_requests, stats.cancelled_queued_samples,
              stats.cancelled_live_samples, stats.rejected_requests);
  std::printf("  exit timesteps: %s (mean %.2f)\n",
              stats.exit_timesteps.to_string().c_str(), stats.mean_exit_timestep);
  std::printf("  latency  p50 %.2f ms, p95 %.2f ms, p99 %.2f ms, p99.9 %.2f ms\n",
              stats.latency_us.p50 / 1000.0, stats.latency_us.p95 / 1000.0,
              stats.latency_us.p99 / 1000.0, stats.latency_us.p999 / 1000.0);
  std::printf("  peak pool occupancy %zu / %zu\n", stats.peak_pool, config.max_pool);
  for (const serve::TenantStats& t : stats.tenants) {
    if (t.submitted_samples == 0 && t.rejected_requests == 0) continue;
    std::printf("  tenant %-12s %4zu served, %2zu deadline-missed, %2zu "
                "rejected, p99 %.2f ms\n",
                t.name.c_str(), t.completed_samples, t.deadline_missed,
                t.rejected_requests, t.latency_us.p99 / 1000.0);
  }
  return 0;
}
