// Serving demo: an online DT-SNN inference service under live traffic.
//
// Trains a small model, starts a serve::InferenceServer (continuous
// batching over the live pool), and fires a seeded burst of asynchronous
// requests at it from two client threads — one latency-sensitive client
// with a tight deadline and a loose entropy threshold, one accuracy-first
// client running the full budget. Results stream the moment each sample
// exits; the run closes with the server's latency/exit statistics.

#include <chrono>
#include <cstdio>
#include <future>
#include <thread>  // std::this_thread::sleep_until (arrival pacing only)
#include <vector>

#include "core/evaluator.h"
#include "serve/server.h"
#include "util/arrival_trace.h"
#include "util/sync.h"
#include "util/thread.h"

using namespace dtsnn;

int main() {
  core::ExperimentSpec spec;
  spec.model = "vgg_mini";
  spec.dataset = "sync10";
  spec.timesteps = 4;
  spec.epochs = 10;
  spec.loss = core::LossKind::kPerTimestep;
  spec.data_scale = 0.4;

  std::printf("Training %s on %s...\n\n", spec.model.c_str(), spec.dataset.c_str());
  core::Experiment e = core::run_experiment(spec);
  const auto& ds = *e.bundle.test;

  const core::EntropyExitPolicy default_policy(0.3);
  serve::ServerConfig config;
  config.max_pool = 8;
  config.admission_window = std::chrono::microseconds(500);
  serve::InferenceServer server(e.net, ds, default_policy, spec.timesteps, config);

  std::printf("Serving with theta=0.30, pool=%zu, budget T=%zu. Two clients:\n\n",
              config.max_pool, server.max_timesteps());

  util::Mutex print_mu;
  const auto t0 = serve::ServeClock::now();
  auto streamer = [&](const char* client) {
    return [&, client](const core::InferenceResult& r) {
      const double ms = std::chrono::duration<double, std::milli>(
                            serve::ServeClock::now() - t0)
                            .count();
      util::MutexLock lk(print_mu);
      std::printf("  [%7.2f ms] %s: sample %3zu -> class %zu, exited t=%zu "
                  "(entropy %.3f)\n",
                  ms, client, r.sample, r.predicted_class, r.exit_timestep,
                  r.final_entropy);
    };
  };

  // Client A: latency-sensitive — loose threshold plus a 40ms deadline.
  const core::EntropyExitPolicy loose(0.6);
  util::Thread client_a([&] {
    util::ArrivalTraceSpec ts;
    ts.arrivals = 8;
    ts.mean_gap_us = 2000.0;
    ts.sample_limit = ds.size();
    ts.seed = 11;
    std::vector<std::future<std::vector<core::InferenceResult>>> futs;
    for (const util::Arrival& a : util::make_arrival_trace(ts)) {
      std::this_thread::sleep_until(t0 + std::chrono::microseconds(a.offset_us));
      serve::ServeRequest req;
      req.request.samples.push_back(a.sample);
      req.request.policy = &loose;
      req.deadline = serve::ServeClock::now() + std::chrono::milliseconds(40);
      req.on_result = streamer("fast client");
      futs.push_back(server.submit(std::move(req)));
    }
    for (auto& f : futs) f.wait();
  });

  // Client B: accuracy-first — one batched request, full budget.
  util::Thread client_b([&] {
    serve::ServeRequest req;
    for (std::size_t s = 100; s < 112; ++s) req.request.samples.push_back(s);
    req.on_result = streamer("bulk client");
    server.submit(std::move(req)).wait();
  });

  client_a.join();
  client_b.join();
  server.drain();

  const serve::ServerStats stats = server.stats();
  std::printf("\nServer stats (gemm backend: %s):\n", server.gemm_backend().c_str());
  std::printf("  requests %zu, samples %zu served, %zu deadline-forced exits\n",
              stats.submitted_requests, stats.completed_samples,
              stats.deadline_forced_exits);
  std::printf("  exit timesteps: %s (mean %.2f)\n",
              stats.exit_timesteps.to_string().c_str(), stats.mean_exit_timestep);
  std::printf("  latency  p50 %.2f ms, p95 %.2f ms, p99 %.2f ms\n",
              stats.latency_us.p50 / 1000.0, stats.latency_us.p95 / 1000.0,
              stats.latency_us.p99 / 1000.0);
  std::printf("  queue    p50 %.2f ms, p95 %.2f ms\n", stats.queue_us.p50 / 1000.0,
              stats.queue_us.p95 / 1000.0);
  std::printf("  peak pool occupancy %zu / %zu\n", stats.peak_pool, config.max_pool);
  return 0;
}
