// Dynamic-inference demo: watch DT-SNN decide, sample by sample.
//
// Trains a small model, then steps individual test samples through the
// sequential engine printing the entropy trajectory and exit decision for
// each timestep — including the fixed-point sigma-E module's view of the
// same decision, as the chip would compute it.

#include <cstdio>

#include "core/engine.h"
#include "core/entropy.h"
#include "core/evaluator.h"
#include "imc/sigma_e.h"
#include "util/math.h"

using namespace dtsnn;

int main() {
  core::ExperimentSpec spec;
  spec.model = "vgg_mini";
  spec.dataset = "sync10";
  spec.timesteps = 4;
  spec.epochs = 10;
  spec.loss = core::LossKind::kPerTimestep;
  spec.data_scale = 0.4;

  std::printf("Training %s on %s...\n\n", spec.model.c_str(), spec.dataset.c_str());
  core::Experiment e = core::run_experiment(spec);

  const double theta = 0.25;
  imc::SigmaEModule sigma_e;
  const auto& ds = *e.bundle.test;
  const std::size_t frame_numel = snn::shape_numel(ds.frame_shape());

  std::printf("Entropy threshold theta = %.2f. Stepping 8 test samples:\n\n", theta);
  for (std::size_t sample = 0; sample < 8; ++sample) {
    // Manual sequential loop to expose the per-timestep internals.
    e.net.begin_inference(1);
    std::vector<double> acc(e.net.num_classes(), 0.0);
    std::vector<float> cum(e.net.num_classes());
    std::printf("sample %zu (label %d, hidden difficulty n/a to the model):\n", sample,
                ds.label(sample));
    for (std::size_t t = 0; t < spec.timesteps; ++t) {
      snn::Tensor frame({1, ds.frame_shape()[0], ds.frame_shape()[1],
                         ds.frame_shape()[2]});
      ds.write_frame(sample, t, {frame.data(), frame_numel});
      snn::Tensor y = e.net.step(frame);
      for (std::size_t c = 0; c < cum.size(); ++c) {
        acc[c] += y[c];
        cum[c] = static_cast<float>(acc[c] / static_cast<double>(t + 1));
      }
      const double h_float = core::entropy_of_logits(cum);
      const double h_fixed = sigma_e.compute_entropy(cum);
      const bool exit_now = h_float < theta;
      std::printf("  t=%zu  entropy=%.3f (sigma-E fixed-point: %.3f)  argmax=%zu  %s\n",
                  t + 1, h_float, h_fixed, util::argmax(cum),
                  exit_now          ? "-> EXIT"
                  : t + 1 == spec.timesteps ? "-> out of timesteps, EXIT"
                                            : "continue");
      if (exit_now) break;
    }
    const auto pred = util::argmax(cum);
    std::printf("  prediction: %zu (%s)\n\n", pred,
                pred == static_cast<std::size_t>(ds.label(sample)) ? "correct"
                                                                    : "WRONG");
  }

  // Aggregate view via the engine API.
  const core::EntropyExitPolicy policy(theta);
  core::SequentialEngine engine(e.net, policy, spec.timesteps);
  std::size_t correct = 0;
  double total_t = 0.0;
  const std::size_t n = std::min<std::size_t>(256, ds.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto pred = engine.infer(ds, i);
    correct += pred.predicted_class == static_cast<std::size_t>(ds.label(i));
    total_t += static_cast<double>(pred.timesteps_used);
  }
  std::printf("Over %zu samples: %.2f%% accuracy at %.2f average timesteps.\n", n,
              100.0 * static_cast<double>(correct) / static_cast<double>(n),
              total_t / static_cast<double>(n));
  return 0;
}
