// Dynamic-inference demo: watch DT-SNN decide, sample by sample.
//
// Trains a small model, then steps individual test samples through the
// sequential engine printing the entropy trajectory and exit decision for
// each timestep — including the fixed-point sigma-E module's view of the
// same decision, as the chip would compute it.

#include <cstdio>

#include "core/engine.h"
#include "core/entropy.h"
#include "core/evaluator.h"
#include "imc/sigma_e.h"
#include "util/math.h"

using namespace dtsnn;

int main() {
  core::ExperimentSpec spec;
  spec.model = "vgg_mini";
  spec.dataset = "sync10";
  spec.timesteps = 4;
  spec.epochs = 10;
  spec.loss = core::LossKind::kPerTimestep;
  spec.data_scale = 0.4;

  std::printf("Training %s on %s...\n\n", spec.model.c_str(), spec.dataset.c_str());
  core::Experiment e = core::run_experiment(spec);

  const double theta = 0.25;
  imc::SigmaEModule sigma_e;
  const auto& ds = *e.bundle.test;
  const std::size_t frame_numel = snn::shape_numel(ds.frame_shape());

  std::printf("Entropy threshold theta = %.2f. Stepping 8 test samples:\n\n", theta);
  for (std::size_t sample = 0; sample < 8; ++sample) {
    // Manual sequential loop to expose the per-timestep internals.
    e.net.begin_inference(1);
    std::vector<double> acc(e.net.num_classes(), 0.0);
    std::vector<float> cum(e.net.num_classes());
    std::printf("sample %zu (label %d, hidden difficulty n/a to the model):\n", sample,
                ds.label(sample));
    for (std::size_t t = 0; t < spec.timesteps; ++t) {
      snn::Tensor frame({1, ds.frame_shape()[0], ds.frame_shape()[1],
                         ds.frame_shape()[2]});
      ds.write_frame(sample, t, {frame.data(), frame_numel});
      snn::Tensor y = e.net.step(frame);
      for (std::size_t c = 0; c < cum.size(); ++c) {
        acc[c] += y[c];
        cum[c] = static_cast<float>(acc[c] / static_cast<double>(t + 1));
      }
      const double h_float = core::entropy_of_logits(cum);
      const double h_fixed = sigma_e.compute_entropy(cum);
      const bool exit_now = h_float < theta;
      std::printf("  t=%zu  entropy=%.3f (sigma-E fixed-point: %.3f)  argmax=%zu  %s\n",
                  t + 1, h_float, h_fixed, util::argmax(cum),
                  exit_now          ? "-> EXIT"
                  : t + 1 == spec.timesteps ? "-> out of timesteps, EXIT"
                                            : "continue");
      if (exit_now) break;
    }
    const auto pred = util::argmax(cum);
    std::printf("  prediction: %zu (%s)\n\n", pred,
                pred == static_cast<std::size_t>(ds.label(sample)) ? "correct"
                                                                    : "WRONG");
  }

  // Aggregate view via the unified inference API: the batched engine steps
  // 32 samples together, re-evaluating Eq. 8 per sample each timestep and
  // compacting the live batch as samples exit — same decisions as the
  // batch-1 loop above, at batch throughput.
  const core::EntropyExitPolicy policy(theta);
  core::BatchedSequentialEngine engine(e.net, policy, spec.timesteps, /*batch_size=*/32);
  const core::InferenceRequest request =
      core::InferenceRequest::first_n(std::min<std::size_t>(256, ds.size()));
  const core::DtsnnResult r = core::evaluate_engine(engine, ds, request);
  std::printf("Over %zu samples (%s): %.2f%% accuracy at %.2f average timesteps.\n",
              request.samples.size(), engine.name().c_str(), 100.0 * r.accuracy,
              r.avg_timesteps);
  return 0;
}
