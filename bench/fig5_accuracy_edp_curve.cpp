// Fig. 5 reproduction: accuracy vs EDP trade-off curves. Static SNNs trace
// the curve by varying T in {1..4}; DT-SNN by varying the entropy threshold
// theta (three operating points, as in the paper). The per-threshold exit
// distribution ("pie charts") is printed alongside.
//
// Expected shape: the DT-SNN curve sits up-and-left of the static curve —
// equal or better accuracy at a fraction of the EDP — with T-hat mass
// concentrated at t=1.

#include <cstdio>

#include "bench_common.h"

using namespace dtsnn;

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_options(argc, argv);

  bench::banner("Fig. 5: accuracy vs EDP (normalized to 1-timestep static SNN)");
  bench::BenchReport report("fig5_accuracy_edp_curve", options);
  util::CsvWriter csv(options.csv_dir + "/fig5_accuracy_edp.csv");
  csv.write_header({"model", "dataset", "method", "theta", "avg_timesteps", "accuracy",
                    "edp_norm", "pie_t1", "pie_t2", "pie_t3", "pie_t4"});

  for (const std::string model : {"vgg_mini", "resnet_mini"}) {
    for (const std::string dataset : {"sync10", "sync100", "syntin"}) {
      const std::size_t timesteps = 4;
      core::ExperimentSpec spec;
      spec.model = model;
      spec.dataset = dataset;
      spec.timesteps = timesteps;
      spec.epochs = 14;
      spec.loss = core::LossKind::kPerTimestep;
      core::Experiment e = bench::run(spec, options);
      const auto outputs = core::test_outputs(e);

      const double activity = bench::mean_hidden_activity(e);
      const imc::EnergyModel hw = bench::paper_scale_energy_model(model, activity);
      const double edp1 = hw.edp(1.0);  // normalization: 1-timestep static

      std::printf("%s on %s:\n", model.c_str(), dataset.c_str());
      bench::TablePrinter table(
          {"Method", "theta", "avgT", "Acc.", "EDP", "That distribution"},
          {10, 8, 7, 9, 8, 28});

      for (std::size_t t = 1; t <= timesteps; ++t) {
        const double acc = core::static_accuracy(outputs, t);
        const double edp = hw.edp(static_cast<double>(t)) / edp1;
        table.row({"SNN", "-", bench::fmt("%zu", t), bench::fmt("%.2f%%", 100 * acc),
                   bench::fmt("%.2f", edp), "-"});
        csv.row(model, dataset, "SNN", 0.0, t, 100 * acc, edp, 0.0, 0.0, 0.0, 0.0);
      }

      // Three operating points spanning aggressive -> conservative exits.
      for (const double theta : {0.5, 0.2, 0.05}) {
        const core::EntropyExitPolicy policy(theta);
        const auto r = core::evaluate_recorded(outputs, policy, *e.bundle.test);
        std::vector<double> exits_edp;
        const double edp =
            hw.mean_edp(r.exit_timestep) / edp1;
        table.row({"DT-SNN", bench::fmt("%.2f", theta),
                   bench::fmt("%.2f", r.avg_timesteps),
                   bench::fmt("%.2f%%", 100 * r.accuracy), bench::fmt("%.2f", edp),
                   r.timestep_histogram.to_string()});
        csv.row(model, dataset, "DT-SNN", theta, r.avg_timesteps, 100 * r.accuracy, edp,
                r.timestep_histogram.fraction(0), r.timestep_histogram.fraction(1),
                r.timestep_histogram.fraction(2), r.timestep_histogram.fraction(3));
        report.set(model + "_" + dataset + bench::fmt("_theta%.2f", theta) + "_accuracy",
                   r.accuracy);
        report.set(model + "_" + dataset + bench::fmt("_theta%.2f", theta) + "_edp",
                   edp);
      }
      if (model == "vgg_mini") report.set_dataset(*e.bundle.test, dataset + "_");
      std::printf("\n");
    }
  }
  std::printf("Shape check: DT-SNN rows should dominate the static rows (higher\n"
              "accuracy at lower EDP), with most mass exiting at T-hat = 1.\n");
  return 0;
}
