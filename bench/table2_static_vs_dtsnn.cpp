// Table II reproduction: static SNN vs DT-SNN in timesteps, accuracy, and
// normalized energy over 2 architectures x 4 datasets.
//
// Protocol mirrors the paper: both models trained identically except the
// loss (static: Eq. 9; DT-SNN: Eq. 10); the entropy threshold is calibrated
// on the test outputs to match the static full-T accuracy; hardware energy
// uses the paper-scale VGG-16 / ResNet-19 IMC mapping with measured spike
// activity, averaging per-sample energies over the exit distribution.
//
// Paper reference (VGG-16/CIFAR-10): DT-SNN T=1.46, energy 0.46x.

#include <cstdio>

#include "bench_common.h"

using namespace dtsnn;

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_options(argc, argv);

  bench::banner("Table II: static SNN vs DT-SNN (T / accuracy / normalized energy)");
  bench::BenchReport report("table2_static_vs_dtsnn", options);
  util::CsvWriter csv(options.csv_dir + "/table2_static_vs_dtsnn.csv");
  csv.write_header({"model", "dataset", "method", "timesteps", "accuracy",
                    "energy_norm", "theta"});

  bench::TablePrinter table({"Model", "Dataset", "Method", "T", "Acc.", "Energy"},
                            {14, 10, 9, 7, 9, 9});

  for (const std::string model : {"vgg_mini", "resnet_mini"}) {
    for (const std::string dataset : {"sync10", "sync100", "syntin", "syndvs"}) {
      const std::size_t timesteps = core::preset_timesteps(dataset);

      core::ExperimentSpec static_spec;
      static_spec.model = model;
      static_spec.dataset = dataset;
      static_spec.timesteps = timesteps;
      static_spec.epochs = 14;
      static_spec.loss = core::LossKind::kMeanLogit;

      core::ExperimentSpec dt_spec = static_spec;
      dt_spec.loss = core::LossKind::kPerTimestep;

      core::Experiment static_e = bench::run(static_spec, options);
      core::Experiment dt_e = bench::run(dt_spec, options);

      const auto static_out = core::test_outputs(static_e);
      const auto dt_out = core::test_outputs(dt_e);
      const double static_acc = core::static_accuracy(static_out, timesteps);
      const auto calib = core::calibrate_theta(dt_out, static_acc, /*tolerance=*/0.005);

      // Hardware: paper-scale network of the same family, measured activity.
      const double activity = bench::mean_hidden_activity(dt_e);
      const imc::EnergyModel hw = bench::paper_scale_energy_model(model, activity);
      const double static_energy = hw.energy_pj(static_cast<double>(timesteps));
      const double dt_energy = hw.mean_energy_pj(calib.result.exit_timestep);

      table.row({model, dataset, "SNN", bench::fmt("%zu", timesteps),
                 bench::fmt("%.2f%%", 100 * static_acc), "1.00x"});
      table.row({model, dataset, "DT-SNN",
                 bench::fmt("%.2f", calib.result.avg_timesteps),
                 bench::fmt("%.2f%%", 100 * calib.result.accuracy),
                 bench::fmt("%.2fx", dt_energy / static_energy)});
      csv.row(model, dataset, "SNN", timesteps, 100 * static_acc, 1.0, 0.0);
      csv.row(model, dataset, "DT-SNN", calib.result.avg_timesteps,
              100 * calib.result.accuracy, dt_energy / static_energy, calib.theta);
      const std::string key = model + "_" + dataset;
      report.set(key + "_accuracy", calib.result.accuracy);
      report.set(key + "_avg_timesteps", calib.result.avg_timesteps);
      report.set(key + "_energy_norm", dt_energy / static_energy);
      if (model == "vgg_mini") report.set_dataset(*dt_e.bundle.test, dataset + "_");
    }
  }
  std::printf("\nShape check (paper Table II): DT-SNN should match static accuracy with\n"
              "~1.3-2.2 avg timesteps (5.0-5.3 on DVS, T=10) and 0.41-0.60x energy.\n");
  return 0;
}
