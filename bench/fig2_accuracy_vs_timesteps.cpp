// Fig. 2 reproduction: accuracy versus the number of inference timesteps for
// a spiking VGG on the three static-image benchmarks (synthetic substitutes
// for CIFAR-10 / CIFAR-100 / TinyImageNet; see DESIGN.md §4).
//
// Expected shape (paper, VGG-16): accuracy climbs steeply from T=1 and
// saturates by T=4, e.g. CIFAR-10 76.3 -> 93.17. With Eq. 9 training the
// T=1 point is much weaker than T=4, which is what motivates DT-SNN.

#include <cstdio>

#include "bench_common.h"

using namespace dtsnn;

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_options(argc, argv);

  bench::banner("Fig. 2: accuracy vs #timesteps (spiking VGG, Eq. 9 training)");
  bench::BenchReport report("fig2_accuracy_vs_timesteps", options);
  util::CsvWriter csv(options.csv_dir + "/fig2_accuracy_vs_timesteps.csv");
  csv.write_header({"dataset", "timesteps", "accuracy"});

  for (const std::string dataset : {"sync10", "sync100", "syntin"}) {
    core::ExperimentSpec spec;
    spec.model = "vgg_mini";
    spec.dataset = dataset;
    spec.timesteps = 4;
    spec.epochs = 14;
    // Paper Fig. 2 uses the conventional loss (the low T=1 accuracy it shows
    // predates the Eq. 10 fix studied in Fig. 7).
    spec.loss = core::LossKind::kMeanLogit;
    core::Experiment e = bench::run(spec, options);
    const auto outputs = core::test_outputs(e);
    const auto acc = core::accuracy_per_timestep(outputs);

    std::printf("%s:\n", dataset.c_str());
    bench::TablePrinter table({"T", "Accuracy"});
    for (std::size_t t = 1; t <= acc.size(); ++t) {
      table.row({bench::fmt("%zu", t), bench::fmt("%.2f%%", 100.0 * acc[t - 1])});
      csv.row(dataset, t, 100.0 * acc[t - 1]);
    }
    report.set(dataset + "_t1_accuracy", acc.front());
    report.set(dataset + "_full_t_accuracy", acc.back());
    report.set_dataset(*e.bundle.test, dataset + "_");
    std::printf("\n");
  }
  std::printf("Shape check: accuracy should increase with T and saturate near T=4,\n"
              "mirroring paper Fig. 2 (CIFAR10 76.3->93.2, CIFAR100 61.4->72.3,\n"
              "TinyImageNet 48.5->58.5).\n");
  return 0;
}
