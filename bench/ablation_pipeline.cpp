// Design-choice ablation (paper Section III-B.2): sequential vs pipelined
// timestep processing, plus the chip area report.
//
// The paper's architecture deliberately processes timesteps sequentially so
// that the sigma-E exit decision gates the next timestep; this bench
// quantifies the alternative. Expected: pipelining helps a *static* SNN's
// latency, but for DT-SNN (most samples exiting at t=1) it wastes the
// speculative in-flight timesteps' energy, and the sequential discipline
// wins on energy at the operating points that matter.

#include <cstdio>

#include "bench_common.h"
#include "imc/area_model.h"
#include "imc/pipeline_model.h"

using namespace dtsnn;

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_options(argc, argv);
  bench::BenchReport report("ablation_pipeline", options);

  core::ExperimentSpec spec;
  spec.model = "vgg_mini";
  spec.dataset = "sync10";
  spec.timesteps = 4;
  spec.epochs = 14;
  spec.loss = core::LossKind::kPerTimestep;
  core::Experiment e = bench::run(spec, options);
  const auto outputs = core::test_outputs(e);
  const double target = core::static_accuracy(outputs, 4);
  const auto calib = core::calibrate_theta(outputs, target, 0.005);

  const double activity = bench::mean_hidden_activity(e);
  const imc::EnergyModel hw = bench::paper_scale_energy_model("vgg16", activity);
  const auto analysis =
      imc::analyze_pipeline(hw, 4, calib.result.exit_timestep);

  bench::banner("Timestep execution discipline (VGG-16 mapping, T=4)");
  util::CsvWriter csv(options.csv_dir + "/ablation_pipeline.csv");
  csv.write_header({"mode", "workload", "latency_norm", "energy_norm", "edp_norm"});

  const double lat0 = analysis.sequential_latency_ns;
  const double e0 = analysis.sequential_energy_pj;
  bench::TablePrinter table({"Workload", "Discipline", "Latency", "Energy", "EDP"},
                            {18, 12, 9, 9, 9});
  auto add = [&](const char* workload, const char* mode, double lat, double energy) {
    table.row({workload, mode, bench::fmt("%.2fx", lat / lat0),
               bench::fmt("%.2fx", energy / e0),
               bench::fmt("%.2fx", lat * energy / (lat0 * e0))});
    csv.row(mode, workload, lat / lat0, energy / e0, lat * energy / (lat0 * e0));
  };
  add("static SNN", "sequential", analysis.sequential_latency_ns,
      analysis.sequential_energy_pj);
  add("static SNN", "pipelined", analysis.pipelined_latency_ns,
      analysis.pipelined_energy_pj);
  add("DT-SNN", "sequential", analysis.dt_sequential_latency_ns,
      analysis.dt_sequential_energy_pj);
  add("DT-SNN", "pipelined", analysis.dt_pipelined_latency_ns,
      analysis.dt_pipelined_energy_pj);

  std::printf("\nDT-SNN exit distribution used: %s (avg T = %.2f)\n",
              calib.result.timestep_histogram.to_string().c_str(),
              calib.result.avg_timesteps);

  bench::banner("Chip area (VGG-16 mapping, 32nm estimates)");
  const auto area = imc::estimate_area(hw.mapping());
  bench::TablePrinter at({"Component", "Area (mm^2)", "Share"});
  auto arow = [&](const char* name, double mm2) {
    at.row({name, bench::fmt("%.2f", mm2),
            bench::fmt("%.1f%%", 100.0 * mm2 / area.total_mm2())});
  };
  arow("RRAM crossbars", area.crossbars_mm2);
  arow("ADCs", area.adcs_mm2);
  arow("Digital periphery", area.digital_periphery_mm2);
  arow("Buffers (SRAM)", area.buffers_mm2);
  arow("Interconnect", area.interconnect_mm2);
  arow("LIF modules", area.lif_mm2);
  arow("sigma-E module", area.sigma_e_mm2);
  std::printf("total: %.2f mm^2 (sigma-E share: %.4f%%)\n", area.total_mm2(),
              100.0 * area.sigma_e_fraction());
  report.set_result(calib.result.accuracy, calib.result.avg_timesteps);
  report.set("dt_pipelined_energy_norm", analysis.dt_pipelined_energy_pj / e0);
  report.set("dt_sequential_energy_norm", analysis.dt_sequential_energy_pj / e0);
  report.set("chip_area_mm2", area.total_mm2());
  report.set_dataset(*e.bundle.test);
  std::printf("\nExpected: pipelining wins latency for static inference but loses\n"
              "energy for DT-SNN (speculative flush); sigma-E area is negligible.\n");
  return 0;
}
