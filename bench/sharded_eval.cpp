// Out-of-core evaluation bench: evaluate sync10 entirely from disk shards
// under shrinking cache caps and report throughput, shard-cache hit rate,
// and peak resident bytes per configuration — with a bitwise identity gate
// against the in-memory ArrayDataset (decisions, exit timesteps and
// accuracy must not depend on where the frames live).
//
// The shard partitioning is chosen so the total shard bytes exceed every
// capped cache configuration: the capped runs genuinely stream from disk.
//
// Two async-data-plane sweeps ride along: the background prefetcher on vs
// off through the streaming engine (overlap must not change a bit, and the
// miss path must not get slower), and 1/2/4/8 concurrent readers streaming
// frames through a capped cache (the pinned-refcount read plane must scale
// and stay bitwise exact under contention).
//
// Flags: the common set (bench_common.h) plus
//   --samples-per-shard <n>  shard granularity (default 64)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>

#include "bench_common.h"
#include "core/engine.h"
#include "core/inference.h"
#include "data/prefetch.h"
#include "data/shard.h"
#include "data/sharded_dataset.h"
#include "util/thread.h"

using namespace dtsnn;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

bool identical_decisions(const core::DtsnnResult& a, const core::DtsnnResult& b) {
  return a.exit_timestep == b.exit_timestep && a.correct == b.correct;
}

}  // namespace

int main(int argc, char** argv) {
  // Peel off the bench-specific flag before the common parser (which rejects
  // unknown flags).
  std::size_t samples_per_shard = 64;
  std::vector<char*> args(argv, argv + argc);
  for (std::size_t i = 1; i + 1 < args.size(); ++i) {
    if (std::strcmp(args[i], "--samples-per-shard") == 0) {
      char* end = nullptr;
      const long parsed = std::strtol(args[i + 1], &end, 10);
      if (end == args[i + 1] || *end != '\0' || parsed <= 0) {
        std::fprintf(stderr, "--samples-per-shard must be a positive integer, got %s\n",
                     args[i + 1]);
        return 2;
      }
      samples_per_shard = static_cast<std::size_t>(parsed);
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
      break;
    }
  }
  const bench::BenchOptions options =
      bench::parse_options(static_cast<int>(args.size()), args.data());

  bench::banner("Sharded out-of-core evaluation: sync10 from disk, bounded cache");
  bench::BenchReport report("sharded_eval", options);
  report.set("samples_per_shard", static_cast<double>(samples_per_shard));

  core::ExperimentSpec spec;
  spec.model = "vgg_mini";
  spec.dataset = "sync10";
  spec.timesteps = 4;
  spec.epochs = 12;
  spec.loss = core::LossKind::kPerTimestep;
  core::Experiment e = bench::run(spec, options);
  const data::ArrayDataset& array = *e.bundle.test;

  const std::filesystem::path shard_dir =
      std::filesystem::path(options.cache_dir) /
      bench::fmt("shards_sync10_s%g", options.scale);
  const std::size_t num_shards = data::export_shards(array, shard_dir, samples_per_shard);
  std::printf("exported %zu samples into %zu shards under %s\n\n", array.size(),
              num_shards, shard_dir.c_str());
  report.set("num_shards", static_cast<double>(num_shards));

  const core::EntropyExitPolicy policy(0.3);
  const core::InferenceRequest request;  // empty = every sample

  // In-memory baseline: the identity oracle and the throughput reference.
  core::BatchedSequentialEngine engine(e.net, policy, spec.timesteps,
                                       /*batch_size=*/32);
  auto start = std::chrono::steady_clock::now();
  const core::DtsnnResult baseline = core::evaluate_engine(engine, array);
  const double baseline_s = seconds_since(start);
  const double baseline_sps = static_cast<double>(array.size()) / baseline_s;
  report.set_result(baseline.accuracy, baseline.avg_timesteps);
  report.set("in_memory_samples_per_sec", baseline_sps);
  report.set_dataset(array, "in_memory_");

  bench::TablePrinter table({"Cache", "Cap bytes", "Peak resident", "Hit rate",
                             "Samples/s", "vs in-mem", "Identical"},
                            {10, 12, 14, 10, 12, 11, 10});

  bool all_identical = true;
  bool capped_exceeded = false;
  double worst_case_sps = 0.0;
  double worst_case_hit_rate = 1.0;
  std::size_t shard_bytes_total = 0;

  // Sweep cache caps from pathological (1 slot: constant eviction) to
  // everything-resident; the last configuration is the upper bound.
  std::vector<std::size_t> slot_sweep{1, 2, 4};
  slot_sweep.push_back(num_shards);
  std::vector<std::size_t> seen_slots;
  for (const std::size_t slots : slot_sweep) {
    if (slots > num_shards) continue;
    if (std::find(seen_slots.begin(), seen_slots.end(), slots) != seen_slots.end()) {
      continue;
    }
    seen_slots.push_back(slots);
    data::ShardCacheConfig config;
    config.cache_slots = slots;
    const data::ShardedDataset sharded(shard_dir, config);

    start = std::chrono::steady_clock::now();
    const core::DtsnnResult result = core::evaluate_engine(engine, sharded);
    const double elapsed = seconds_since(start);
    const double sps = static_cast<double>(sharded.size()) / elapsed;

    const data::DatasetStorageStats stats = sharded.storage_stats();
    shard_bytes_total = sharded.frame_bytes_total();
    // True cache cap: at most `slots` shards resident, each at most the
    // largest shard's frame block.
    const std::size_t cap_bytes = slots * sharded.max_shard_frame_bytes();
    const bool identical = identical_decisions(baseline, result) &&
                           result.accuracy == baseline.accuracy;
    all_identical = all_identical && identical;
    // The out-of-core claim, measured: total shard bytes exceed this
    // configuration's cap AND the cache never actually held the whole frame
    // payload at once.
    if (sharded.frame_bytes_total() > cap_bytes &&
        stats.peak_resident_bytes < stats.logical_bytes) {
      capped_exceeded = true;
    }
    if (slots == 1) {
      worst_case_sps = sps;
      worst_case_hit_rate = stats.hit_rate();
    }

    const std::string prefix = bench::fmt("cache%zu_", slots);
    report.set(prefix + "samples_per_sec", sps);
    report.set(prefix + "hit_rate", stats.hit_rate());
    report.set(prefix + "peak_resident_bytes",
               static_cast<double>(stats.peak_resident_bytes));
    report.set(prefix + "evictions", static_cast<double>(stats.cache_evictions));
    if (slots == num_shards) report.set_dataset(sharded, "sharded_");

    table.row({bench::fmt("%zu/%zu", slots, num_shards), bench::fmt("%zu", cap_bytes),
               bench::fmt("%zu", stats.peak_resident_bytes),
               bench::fmt("%.1f%%", 100.0 * stats.hit_rate()), bench::fmt("%.1f", sps),
               bench::fmt("%.2fx", sps / baseline_sps),
               identical ? "yes" : "NO"});
  }

  report.set("shard_bytes_total", static_cast<double>(shard_bytes_total));
  report.set("worst_case_samples_per_sec", worst_case_sps);
  report.set("worst_case_hit_rate", worst_case_hit_rate);
  report.set("shard_bytes_exceed_cache_cap", capped_exceeded ? 1.0 : 0.0);

  // ---------------------------------------------- prefetch on/off sweep
  // Same capped cache, background prefetcher off (depth 0) vs the auto
  // default: the overlap is steered through DTSNN_PREFETCH_DEPTH because
  // that is exactly how a deployment toggles it. Identity with the
  // in-memory oracle stays a hard gate in both modes; a slower miss path
  // with prefetch ON is reported as a warning (it means the hints evict
  // ahead of use instead of overlapping I/O).
  // NOLINTBEGIN(concurrency-mt-unsafe): deliberate env mutation; the bench
  // is single-threaded between the timed regions.
  const std::size_t capped_slots = std::min<std::size_t>(2, num_shards);
  const char* ambient_depth = std::getenv("DTSNN_PREFETCH_DEPTH");
  const std::string saved_depth = ambient_depth ? ambient_depth : "";
  double prefetch_sps[2] = {0.0, 0.0};
  for (const bool prefetch_on : {false, true}) {
    if (prefetch_on) {
      unsetenv("DTSNN_PREFETCH_DEPTH");  // auto: ShardPrefetcher::kDefaultDepth
    } else {
      setenv("DTSNN_PREFETCH_DEPTH", "0", 1);
    }
    data::ShardCacheConfig config;
    config.cache_slots = capped_slots;
    const data::ShardedDataset sharded(shard_dir, config);
    start = std::chrono::steady_clock::now();
    const core::DtsnnResult result = core::evaluate_engine(engine, sharded);
    const double sps = static_cast<double>(sharded.size()) / seconds_since(start);
    prefetch_sps[prefetch_on] = sps;
    const data::DatasetStorageStats stats = sharded.storage_stats();
    const bool identical = identical_decisions(baseline, result) &&
                           result.accuracy == baseline.accuracy;
    all_identical = all_identical && identical;
    const std::string prefix = prefetch_on ? "prefetch_on_" : "prefetch_off_";
    report.set(prefix + "samples_per_sec", sps);
    report.set(prefix + "hit_rate", stats.hit_rate());
    report.set(prefix + "peak_resident_bytes",
               static_cast<double>(stats.peak_resident_bytes));
    std::printf("prefetch %-3s (cache %zu/%zu): %8.1f samples/s, hit rate %.1f%%, "
                "identical %s\n",
                prefetch_on ? "on" : "off", capped_slots, num_shards, sps,
                100.0 * stats.hit_rate(), identical ? "yes" : "NO");
  }
  if (ambient_depth) {
    setenv("DTSNN_PREFETCH_DEPTH", saved_depth.c_str(), 1);
  } else {
    unsetenv("DTSNN_PREFETCH_DEPTH");
  }
  // NOLINTEND(concurrency-mt-unsafe)
  const double prefetch_speedup =
      prefetch_sps[0] > 0.0 ? prefetch_sps[1] / prefetch_sps[0] : 0.0;
  report.set("prefetch_speedup", prefetch_speedup);
  if (prefetch_speedup < 1.0) {
    std::printf("WARN: prefetch ON ran %.2fx the OFF throughput — lookahead is "
                "not overlapping I/O on this machine.\n",
                prefetch_speedup);
  }

  // ------------------------------------------- concurrent-reader sweep
  // 1/2/4/8 threads partition the sample space and stream every frame
  // through one shared capped cache, each read checked bitwise against the
  // in-memory array (whose const reads are the thread-safe oracle).
  bench::TablePrinter readers_table(
      {"Readers", "Frames/s", "Hit rate", "Peak resident", "Identical"},
      {8, 12, 10, 14, 10});
  const std::size_t timesteps = spec.timesteps;
  const std::size_t numel = snn::shape_numel(array.frame_shape());
  bool readers_identical = true;
  const std::vector<std::size_t> reader_sweep{1, 2, 4, 8};
  for (const std::size_t readers : reader_sweep) {
    data::ShardCacheConfig config;
    config.cache_slots = capped_slots;
    const data::ShardedDataset sharded(shard_dir, config);
    std::atomic<std::size_t> mismatches{0};
    start = std::chrono::steady_clock::now();
    {
      std::vector<util::Thread> threads;
      threads.reserve(readers);
      for (std::size_t w = 0; w < readers; ++w) {
        threads.emplace_back([&, w] {
          std::vector<float> got(numel);
          std::vector<float> want(numel);
          for (std::size_t s = w; s < sharded.size(); s += readers) {
            for (std::size_t t = 0; t < timesteps; ++t) {
              sharded.write_frame(s, t, got);
              array.write_frame(s, t, want);
              if (got != want) mismatches.fetch_add(1, std::memory_order_relaxed);
            }
          }
        });
      }
    }  // scope join
    const double elapsed = seconds_since(start);
    const double fps = static_cast<double>(array.size() * timesteps) / elapsed;
    const data::DatasetStorageStats stats = sharded.storage_stats();
    readers_identical = readers_identical && mismatches.load() == 0;
    const std::string prefix = bench::fmt("readers%zu_", readers);
    report.set(prefix + "frames_per_sec", fps);
    report.set(prefix + "hit_rate", stats.hit_rate());
    report.set(prefix + "peak_resident_bytes",
               static_cast<double>(stats.peak_resident_bytes));
    readers_table.row({bench::fmt("%zu", readers), bench::fmt("%.1f", fps),
                       bench::fmt("%.1f%%", 100.0 * stats.hit_rate()),
                       bench::fmt("%zu", stats.peak_resident_bytes),
                       mismatches.load() == 0 ? "yes" : "NO"});
  }
  report.set("concurrent_reads_identical", readers_identical ? "yes" : "NO");
  report.set("decisions_identical", all_identical ? "yes" : "NO");

  std::printf(
      "\nShape check: every row must be decision-identical to the in-memory\n"
      "run; capped rows stream a dataset whose shard bytes exceed the cache\n"
      "cap, trading throughput for an O(cache) working set.\n");
  if (!capped_exceeded) {
    std::printf("FAIL: no capped configuration exceeded its cache cap — shrink\n"
                "--samples-per-shard or raise --scale.\n");
    return 1;
  }
  if (!all_identical) {
    std::printf("FAIL: sharded decisions diverged from the in-memory oracle.\n");
    return 1;
  }
  if (!readers_identical) {
    std::printf("FAIL: a concurrent reader observed frames differing from the\n"
                "in-memory oracle.\n");
    return 1;
  }
  return 0;
}
