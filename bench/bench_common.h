// Shared infrastructure for the figure/table benches: experiment caching,
// measured-activity hardware models, table rendering, and CSV output paths.
//
// Every bench accepts:
//   --scale <f>   dataset size multiplier (default 1.0; smoke tests use 0.1)
//   --epochs <n>  override training epochs
//   --no-cache    retrain instead of loading cached checkpoints

#pragma once

#include <chrono>
#include <string>
#include <utility>
#include <vector>

#include "core/evaluator.h"
#include "imc/energy_model.h"
#include "util/csv.h"

namespace dtsnn::bench {

struct BenchOptions {
  double scale = 1.0;
  std::size_t epochs_override = 0;  ///< 0 = per-bench default
  bool use_cache = true;
  std::string cache_dir = ".dtsnn_cache";
  std::string csv_dir = ".";
};

/// Parse the common flags; unknown flags abort with a usage message.
BenchOptions parse_options(int argc, char** argv);

/// Train (or load) the experiment per the options.
core::Experiment run(core::ExperimentSpec spec, const BenchOptions& options);

/// Hardware energy model for a trained network with *measured* spike
/// activities: runs a probe batch, reads per-LIF spike rates, and maps the
/// extracted spec. The input layer gets activity 1 (analog direct encoding).
imc::EnergyModel measured_energy_model(core::Experiment& experiment,
                                       const imc::ImcConfig& config = {});

/// Paper-scale hardware model (full VGG-16 / ResNet-19 geometry) with the
/// measured activity statistics transplanted from a mini experiment. Used by
/// the experiments that report absolute hardware numbers (Fig. 1, Table II
/// energy columns, Fig. 4/5).
imc::EnergyModel paper_scale_energy_model(const std::string& model_preset,
                                          double activity,
                                          const imc::ImcConfig& config = {});

/// Mean spike activity over the hidden LIF layers of a trained net.
double mean_hidden_activity(core::Experiment& experiment);

// ---------------------------------------------------------------- reporting

/// Machine-readable bench result. Accumulates metrics and writes
/// `<csv_dir>/BENCH_<name>.json` containing the bench name, wall-clock
/// seconds since construction, and every metric set — so the perf/accuracy
/// trajectory of each bench can be tracked across PRs. Writes at destruction
/// unless write() was already called.
class BenchReport {
 public:
  BenchReport(std::string name, const BenchOptions& options);
  ~BenchReport();
  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  void set(const std::string& key, double value);
  void set(const std::string& key, const std::string& value);

  /// Convenience for the conventional metrics every bench should report.
  void set_result(double accuracy, double avg_timesteps);

  /// Record the evaluated dataset's storage footprint and shard-cache
  /// counters (dataset_bytes, dataset_resident_bytes, dataset_peak_resident_
  /// bytes, shard_count, shard_cache_slots/hits/misses/evictions/hit_rate) —
  /// every bench reports where its data lived and how the cache behaved.
  /// `prefix` namespaces the keys for benches evaluating several datasets.
  void set_dataset(const data::Dataset& dataset, const std::string& prefix = "");

  void write();

 private:
  std::string name_;
  std::string dir_;
  std::chrono::steady_clock::time_point start_;
  std::vector<std::pair<std::string, std::string>> fields_;  ///< key -> JSON value
  bool written_ = false;
};

// ---------------------------------------------------------------- printing

/// Fixed-width table printer for the bench stdout reports.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers,
                        std::vector<int> widths = {});
  void row(const std::vector<std::string>& cells);
  void rule() const;

 private:
  std::vector<std::string> headers_;
  std::vector<int> widths_;
};

std::string fmt(const char* format, ...) __attribute__((format(printf, 1, 2)));

/// Section banner ("==== Fig. 1 ... ====").
void banner(const std::string& title);

}  // namespace dtsnn::bench
