// Fig. 6 reproduction.
// (A) Comparison with prior training methods at T = 1..6 on the ResNet
//     architecture: our static SNN (Eq. 10), DT-SNN, a tdBN-style baseline
//     (rectangle surrogate + threshold-scaled BN, Eq. 9 loss) and a
//     Dspike-style baseline (temperature-tanh surrogate, Eq. 9 loss).
// (B) The same static-vs-DT comparison under 20% device conductance
//     variation (weights projected through the quantize/program/perturb
//     pipeline post-training).
//
// Expected shape: (A) our Eq. 10-trained models dominate at low T; DT-SNN
// reaches the static curve's accuracy with fewer average timesteps.
// (B) all curves drop a little under noise; DT-SNN (NI) stays above
// static (NI) at matched average timesteps.

#include <cstdio>

#include "bench_common.h"
#include "imc/xbar_functional.h"

using namespace dtsnn;

namespace {

struct Curve {
  std::string name;
  std::vector<double> static_acc;       // per T
  double dt_avg_t = 0.0;                // DT-SNN operating point
  double dt_acc = 0.0;
};

Curve eval_curve(const std::string& name, core::Experiment& e, std::size_t max_t,
                 bool with_dt) {
  Curve c;
  c.name = name;
  auto outputs = core::test_outputs(e, max_t);
  for (std::size_t t = 1; t <= max_t; ++t) {
    c.static_acc.push_back(core::static_accuracy(outputs, t));
  }
  if (with_dt) {
    const auto calib =
        core::calibrate_theta(outputs, c.static_acc.back(), /*tolerance=*/0.005);
    c.dt_avg_t = calib.result.avg_timesteps;
    c.dt_acc = calib.result.accuracy;
  }
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_options(argc, argv);
  bench::BenchReport report("fig6_prior_and_noise", options);
  const std::size_t max_t = 6;

  core::ExperimentSpec ours;
  ours.model = "resnet_mini";
  ours.dataset = "sync10";
  ours.timesteps = max_t;
  ours.epochs = 14;
  ours.loss = core::LossKind::kPerTimestep;  // "Static SNN (Ours)" per Fig. 6

  core::ExperimentSpec tdbn = ours;
  tdbn.loss = core::LossKind::kMeanLogit;
  tdbn.surrogate = snn::SurrogateKind::kRectangle;
  tdbn.bn_vth_scale = 1.0f;  // alpha * Vth with Vth = 1

  core::ExperimentSpec dspike = ours;
  dspike.loss = core::LossKind::kMeanLogit;
  dspike.surrogate = snn::SurrogateKind::kDspike;

  core::Experiment e_ours = bench::run(ours, options);
  core::Experiment e_tdbn = bench::run(tdbn, options);
  core::Experiment e_dspike = bench::run(dspike, options);

  Curve ours_curve = eval_curve("Static SNN (Ours)", e_ours, max_t, /*with_dt=*/true);
  Curve tdbn_curve = eval_curve("tdBN-style", e_tdbn, max_t, false);
  Curve dspike_curve = eval_curve("Dspike-style", e_dspike, max_t, false);

  bench::banner("Fig. 6(A): accuracy vs timesteps, prior-method comparison (ResNet)");
  util::CsvWriter csv(options.csv_dir + "/fig6a_prior_comparison.csv");
  csv.write_header({"method", "timesteps", "accuracy"});
  bench::TablePrinter table({"T", "Ours (Eq.10)", "tdBN-style", "Dspike-style"});
  for (std::size_t t = 1; t <= max_t; ++t) {
    table.row({bench::fmt("%zu", t),
               bench::fmt("%.2f%%", 100 * ours_curve.static_acc[t - 1]),
               bench::fmt("%.2f%%", 100 * tdbn_curve.static_acc[t - 1]),
               bench::fmt("%.2f%%", 100 * dspike_curve.static_acc[t - 1])});
    csv.row("ours", t, 100 * ours_curve.static_acc[t - 1]);
    csv.row("tdbn", t, 100 * tdbn_curve.static_acc[t - 1]);
    csv.row("dspike", t, 100 * dspike_curve.static_acc[t - 1]);
  }
  std::printf("DT-SNN (ours): %.2f%% accuracy at %.2f average timesteps\n",
              100 * ours_curve.dt_acc, ours_curve.dt_avg_t);
  csv.row("dtsnn", ours_curve.dt_avg_t, 100 * ours_curve.dt_acc);

  bench::banner("Fig. 6(B): accuracy under 20% device conductance variation");
  // Re-train deterministically, then perturb weights through the device
  // pipeline (sigma/mu = 20%, Table I).
  core::Experiment e_noisy = bench::run(ours, options);
  imc::ImcConfig ni_cfg;
  imc::apply_device_variation(e_noisy.net, ni_cfg, /*seed=*/2023);
  Curve ni_curve = eval_curve("Static SNN (NI)", e_noisy, max_t, /*with_dt=*/true);

  util::CsvWriter csv_b(options.csv_dir + "/fig6b_nonideal.csv");
  csv_b.write_header({"method", "timesteps", "accuracy"});
  bench::TablePrinter table_b({"T", "Static", "Static (NI)"});
  for (std::size_t t = 1; t <= max_t; ++t) {
    table_b.row({bench::fmt("%zu", t),
                 bench::fmt("%.2f%%", 100 * ours_curve.static_acc[t - 1]),
                 bench::fmt("%.2f%%", 100 * ni_curve.static_acc[t - 1])});
    csv_b.row("static", t, 100 * ours_curve.static_acc[t - 1]);
    csv_b.row("static_ni", t, 100 * ni_curve.static_acc[t - 1]);
  }
  std::printf("DT-SNN:      %.2f%% at %.2f avg timesteps (ideal)\n",
              100 * ours_curve.dt_acc, ours_curve.dt_avg_t);
  std::printf("DT-SNN (NI): %.2f%% at %.2f avg timesteps (20%% variation)\n",
              100 * ni_curve.dt_acc, ni_curve.dt_avg_t);
  csv_b.row("dtsnn", ours_curve.dt_avg_t, 100 * ours_curve.dt_acc);
  csv_b.row("dtsnn_ni", ni_curve.dt_avg_t, 100 * ni_curve.dt_acc);

  report.set_result(ours_curve.dt_acc, ours_curve.dt_avg_t);
  report.set("tdbn_t1_accuracy", tdbn_curve.static_acc[0]);
  report.set("dspike_t1_accuracy", dspike_curve.static_acc[0]);
  report.set("ni_dtsnn_accuracy", ni_curve.dt_acc);
  report.set("ni_dtsnn_avg_timesteps", ni_curve.dt_avg_t);
  report.set_dataset(*e_ours.bundle.test);
  std::printf("\nShape check: NI curves sit slightly below ideal ones; DT-SNN keeps\n"
              "its accuracy advantage at reduced average timesteps (paper Fig. 6B).\n");
  return 0;
}
