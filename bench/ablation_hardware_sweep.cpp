// Extension ablation (beyond the paper): hardware design-space sweeps on the
// IMC macro-model — crossbar size, ADC precision, device precision, and
// sigma-E LUT precision — reported as energy/latency/decision-quality
// sensitivities around the paper's Table I operating point.

#include <cstdio>

#include "bench_common.h"
#include "core/entropy.h"
#include "imc/sigma_e.h"
#include "util/rng.h"

using namespace dtsnn;

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_options(argc, argv);
  bench::BenchReport report("ablation_hardware_sweep", options);

  bench::banner("Hardware sweep: crossbar size (VGG-16 mapping, T=4)");
  util::CsvWriter csv(options.csv_dir + "/ablation_hardware_sweep.csv");
  csv.write_header({"sweep", "value", "energy_norm", "latency_norm", "crossbars"});

  const imc::EnergyModel baseline = bench::paper_scale_energy_model("vgg16", 0.15);
  const double e_base = baseline.energy_pj(4);
  const double l_base = baseline.latency_ns(4);

  bench::TablePrinter xbar_table({"Crossbar", "Energy", "Latency", "Crossbars"});
  for (const std::size_t size : {32u, 64u, 128u, 256u}) {
    imc::ImcConfig cfg;
    cfg.crossbar_size = size;
    const imc::EnergyModel m = bench::paper_scale_energy_model("vgg16", 0.15, cfg);
    xbar_table.row({bench::fmt("%zux%zu", size, size),
                    bench::fmt("%.2fx", m.energy_pj(4) / e_base),
                    bench::fmt("%.2fx", m.latency_ns(4) / l_base),
                    bench::fmt("%zu", m.mapping().total_crossbars())});
    csv.row("crossbar_size", size, m.energy_pj(4) / e_base, m.latency_ns(4) / l_base,
            m.mapping().total_crossbars());
  }

  bench::banner("Hardware sweep: ADC mux ratio (latency/energy trade)");
  bench::TablePrinter mux_table({"Mux ratio", "Energy", "Latency"});
  for (const std::size_t mux : {1u, 4u, 8u, 16u}) {
    imc::ImcConfig cfg;
    cfg.adc_mux_ratio = mux;
    const imc::EnergyModel m = bench::paper_scale_energy_model("vgg16", 0.15, cfg);
    mux_table.row({bench::fmt("%zu", mux), bench::fmt("%.2fx", m.energy_pj(4) / e_base),
                   bench::fmt("%.2fx", m.latency_ns(4) / l_base)});
    csv.row("adc_mux_ratio", mux, m.energy_pj(4) / e_base, m.latency_ns(4) / l_base, 0);
  }

  bench::banner("Hardware sweep: device precision (cells per 8-bit weight)");
  bench::TablePrinter dev_table({"Device bits", "Cols/weight", "Crossbars", "Energy"});
  for (const std::size_t bits : {2u, 4u, 8u}) {
    imc::ImcConfig cfg;
    cfg.device_bits = bits;
    const imc::EnergyModel m = bench::paper_scale_energy_model("vgg16", 0.15, cfg);
    dev_table.row({bench::fmt("%zu", bits), bench::fmt("%zu", cfg.columns_per_weight()),
                   bench::fmt("%zu", m.mapping().total_crossbars()),
                   bench::fmt("%.2fx", m.energy_pj(4) / e_base)});
    csv.row("device_bits", bits, m.energy_pj(4) / e_base, 0.0,
            m.mapping().total_crossbars());
  }

  bench::banner("sigma-E LUT precision vs exit-decision agreement");
  // Decision agreement against the float reference at theta = 0.25 over
  // random logits (10 classes).
  bench::TablePrinter lut_table({"LUT entries", "Mean |dH|", "Agreement"});
  for (const std::size_t entries : {32u, 64u, 128u, 256u, 1024u}) {
    imc::SigmaEConfig cfg;
    cfg.exp_lut_entries = entries;
    cfg.log_lut_entries = entries;
    imc::SigmaEModule mod(cfg);
    util::Rng rng(99);
    const double theta = 0.25;
    double err = 0.0;
    int agree = 0;
    const int trials = 3000;
    for (int i = 0; i < trials; ++i) {
      std::vector<float> logits(10);
      for (auto& v : logits) v = static_cast<float>(rng.gaussian(0.0, 3.0));
      const double h_hw = mod.compute_entropy(logits);
      const double h_sw = core::entropy_of_logits(logits);
      err += std::abs(h_hw - h_sw);
      agree += (h_hw < theta) == (h_sw < theta);
    }
    lut_table.row({bench::fmt("%zu", entries), bench::fmt("%.4f", err / trials),
                   bench::fmt("%.2f%%", 100.0 * agree / trials)});
    csv.row("sigma_e_lut", entries, err / trials, 100.0 * agree / trials, 0);
    if (entries == 256u) {
      report.set("lut256_mean_abs_entropy_err", err / trials);
      report.set("lut256_decision_agreement", static_cast<double>(agree) / trials);
    }
  }
  std::printf("\nExpected: Table I's 256-entry (3KB) LUTs already give >99%% decision\n"
              "agreement; smaller crossbars cost interconnect energy, larger ADC mux\n"
              "ratios trade latency for area.\n");
  return 0;
}
