// Extension bench: DT-SNN composed with layer-wise early exit (the paper's
// Section III-A(c) claim that the two techniques are "fully complementary").
//
// A multi-exit spiking VGG (auxiliary head after every pooling stage) is
// trained with the weighted per-exit Eq. 10 loss, then evaluated under four
// policies at each threshold: static (full depth, full T), depth-only early
// exit, time-only (DT-SNN), and the joint spatio-temporal policy. Cost is in
// full-timestep equivalents.
//
// Expected: time-only removes more cost than depth-only (matching the
// paper's argument that the first timestep can already classify most inputs
// while the first ANN exit only catches marginal ones), and the joint policy
// dominates both.

#include <cstdio>

#include "bench_common.h"
#include "core/spatiotemporal.h"

using namespace dtsnn;

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_options(argc, argv);
  bench::BenchReport report("ablation_early_exit", options);

  auto bundle = core::make_bundle("sync10", options.scale);
  snn::ModelConfig mc;
  mc.num_classes = bundle.train->num_classes();
  mc.input_shape = bundle.train->frame_shape();
  mc.seed = 5;
  auto net = snn::make_multi_exit_vgg({32, 32, -1, 64, 64, -1, 128, -1}, mc);

  data::ShuffledBatchSource source(*bundle.train, 64, 77);
  snn::TrainOptions topt;
  topt.epochs = options.epochs_override ? options.epochs_override : 14;
  topt.timesteps = 4;
  std::printf("training multi-exit VGG (3 exits) on sync10...\n");
  auto stats = snn::train_multi_exit(net, source, topt);
  std::printf("final train accuracy (deep exit): %.2f%%\n\n",
              100.0 * stats.final_accuracy());

  auto outputs = core::collect_multi_exit_outputs(net, *bundle.test, 4);

  bench::banner("DT-SNN x early exit: policy comparison (cost in timestep units)");
  util::CsvWriter csv(options.csv_dir + "/ablation_early_exit.csv");
  csv.write_header({"policy", "theta", "accuracy", "avg_cost", "avg_exit_time",
                    "avg_exit_depth"});

  const auto static_r = core::evaluate_spatiotemporal(
      outputs, {.theta = 0.0, .use_time = false, .use_depth = false});
  std::printf("static reference: %.2f%% accuracy at cost %.2f\n\n",
              100 * static_r.accuracy, static_r.avg_cost);
  csv.row("static", 0.0, 100 * static_r.accuracy, static_r.avg_cost, 4.0,
          outputs.exits - 1);

  bench::TablePrinter table(
      {"Policy", "theta", "Acc.", "Cost", "avg t", "avg depth"}, {14, 8, 9, 8, 8, 10});
  for (const double theta : {0.4, 0.2, 0.1}) {
    const struct {
      const char* name;
      core::SpatioTemporalPolicy policy;
    } rows[] = {
        {"depth-only", {theta, false, true}},
        {"time-only", {theta, true, false}},
        {"joint", {theta, true, true}},
    };
    for (const auto& row : rows) {
      const auto r = core::evaluate_spatiotemporal(outputs, row.policy);
      table.row({row.name, bench::fmt("%.2f", theta),
                 bench::fmt("%.2f%%", 100 * r.accuracy), bench::fmt("%.2f", r.avg_cost),
                 bench::fmt("%.2f", r.avg_exit_time),
                 bench::fmt("%.2f", r.avg_exit_depth)});
      csv.row(row.name, theta, 100 * r.accuracy, r.avg_cost, r.avg_exit_time,
              r.avg_exit_depth);
      report.set(bench::fmt("%s_theta%.2f_accuracy", row.name, theta), r.accuracy);
      report.set(bench::fmt("%s_theta%.2f_cost", row.name, theta), r.avg_cost);
    }
  }
  report.set("static_accuracy", static_r.accuracy);
  report.set_dataset(*bundle.test);
  std::printf("\nExpected: time-only > depth-only in cost saved at iso-accuracy;\n"
              "joint <= min(time-only, depth-only) in cost (complementarity).\n");
  return 0;
}
