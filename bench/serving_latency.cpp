// Serving-latency bench: the online serving layer under a deterministic
// asynchronous arrival trace.
//
// A serve::InferenceServer (continuous batching over the live pool) is
// driven by a seeded Poisson arrival trace (util::make_arrival_trace — the
// workload *shape* never touches wall-clock randomness, so every run replays
// the identical request sequence). For each entropy threshold the bench
// replays the trace open-loop, then reports end-to-end latency percentiles
// (p50/p95/p99 via the shared util percentile helper), throughput, and mean
// exit timestep — the serving-side view of the paper's accuracy/latency
// trade: lower theta = more timesteps = higher latency per request.
//
// A decision-identity gate re-runs every served sample through the offline
// batch-1 SequentialEngine oracle and fails the bench on any mismatch in
// prediction, exit timestep, or exit entropy — asynchronous arrivals and
// pool churn must not change a single decision.
//
// BENCH_serving.json carries per-theta blocks plus headline
// p50/p95/p99_latency_ms and throughput_sps fields (from the middle theta).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <map>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "serve/server.h"
#include "util/arrival_trace.h"
#include "util/gemm.h"

using namespace dtsnn;

namespace {

struct ServingRun {
  serve::ServerStats stats;
  std::vector<core::InferenceResult> results;  ///< one per arrival, trace order
  double wall_seconds = 0.0;
  double throughput_sps = 0.0;
  double accuracy = 0.0;
};

/// Replay `trace` against a fresh server and gather per-arrival results.
ServingRun replay_trace(snn::SpikingNetwork& net, const data::Dataset& ds,
                        const core::ExitPolicy& policy, std::size_t timesteps,
                        const std::vector<util::Arrival>& trace) {
  serve::ServerConfig config;
  config.max_pool = 8;
  ServingRun run;
  std::vector<std::future<std::vector<core::InferenceResult>>> futures;
  futures.reserve(trace.size());

  const auto t0 = serve::ServeClock::now();
  {
    serve::InferenceServer server(net, ds, policy, timesteps, config);
    for (const util::Arrival& a : trace) {
      std::this_thread::sleep_until(t0 + std::chrono::microseconds(a.offset_us));
      serve::ServeRequest req;
      req.request.samples.push_back(a.sample);
      futures.push_back(server.submit(std::move(req)));
    }
    server.drain();
    run.wall_seconds =
        std::chrono::duration<double>(serve::ServeClock::now() - t0).count();
    run.stats = server.stats();
  }

  std::size_t correct = 0;
  for (auto& f : futures) {
    std::vector<core::InferenceResult> r = f.get();
    correct += r.at(0).predicted_class ==
               static_cast<std::size_t>(ds.label(r.at(0).sample));
    run.results.push_back(std::move(r.at(0)));
  }
  run.throughput_sps = static_cast<double>(run.results.size()) / run.wall_seconds;
  run.accuracy = static_cast<double>(correct) / static_cast<double>(run.results.size());
  return run;
}

/// Served decisions must equal the offline batch-1 oracle's, per sample.
bool identical_to_oracle(const ServingRun& run, snn::SpikingNetwork& net,
                         const data::Dataset& ds, const core::ExitPolicy& policy,
                         std::size_t timesteps) {
  std::map<std::size_t, core::InferenceResult> oracle;
  core::SequentialEngine batch1(net, policy, timesteps);
  core::InferenceRequest unique;
  for (const auto& r : run.results) {
    if (oracle.emplace(r.sample, core::InferenceResult{}).second) {
      unique.samples.push_back(r.sample);
    }
  }
  for (auto& r : batch1.run(ds, unique)) oracle[r.sample] = std::move(r);
  for (const auto& served : run.results) {
    const core::InferenceResult& want = oracle.at(served.sample);
    if (served.predicted_class != want.predicted_class ||
        served.exit_timestep != want.exit_timestep ||
        served.final_entropy != want.final_entropy) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_options(argc, argv);

  bench::banner("Serving latency: continuous batching under a Poisson arrival trace");
  bench::BenchReport report("serving", options);

  core::ExperimentSpec spec;
  spec.model = "vgg_mini";
  spec.dataset = "sync10";
  spec.timesteps = 4;
  spec.epochs = 14;
  spec.loss = core::LossKind::kPerTimestep;
  core::Experiment e = bench::run(spec, options);
  const auto& ds = *e.bundle.test;

  util::ArrivalTraceSpec trace_spec;
  trace_spec.arrivals = static_cast<std::size_t>(192 * options.scale) + 64;
  // ~2ms per sample offered load (bursts of 2 every ~4ms): near the 1-core
  // service rate, so latency reflects service + moderate queueing instead of
  // pure saturation drain.
  trace_spec.mean_gap_us = 4000.0;
  trace_spec.burst = 2;  // pairs of simultaneous clients
  trace_spec.sample_limit = ds.size();
  trace_spec.seed = 0x5e51;
  const std::vector<util::Arrival> trace = util::make_arrival_trace(trace_spec);
  report.set("arrivals", static_cast<double>(trace.size()));
  report.set("mean_gap_us", trace_spec.mean_gap_us);
  report.set("max_pool", 8.0);
  report.set("trace_seed", static_cast<double>(trace_spec.seed));
  report.set("gemm_backend", std::string(util::default_gemm_backend().name()));

  bench::TablePrinter table({"theta", "avgT", "Acc.", "p50 ms", "p95 ms", "p99 ms",
                             "p99.9 ms", "queue p95 ms", "req/s"},
                            {7, 7, 9, 9, 9, 9, 9, 13, 9});
  util::CsvWriter csv(options.csv_dir + "/serving_latency.csv");
  csv.write_header({"theta", "mean_exit_timestep", "accuracy", "p50_latency_ms",
                    "p95_latency_ms", "p99_latency_ms", "p999_latency_ms",
                    "p95_queue_ms", "throughput_sps"});

  // theta = 0 never exits early (the static-T4 serving baseline); the
  // middle threshold is the headline operating point.
  const std::vector<double> thetas{0.0, 0.1, 0.3, 0.6};
  const double headline_theta = 0.3;
  bool all_identical = true;

  for (const double theta : thetas) {
    const core::EntropyExitPolicy policy(theta);
    const ServingRun run = replay_trace(e.net, ds, policy, spec.timesteps, trace);
    all_identical =
        all_identical && identical_to_oracle(run, e.net, ds, policy, spec.timesteps);

    const util::PercentileSummary& lat = run.stats.latency_us;
    const util::PercentileSummary& queue = run.stats.queue_us;
    table.row({bench::fmt("%.2f", theta),
               bench::fmt("%.2f", run.stats.mean_exit_timestep),
               bench::fmt("%.2f%%", 100 * run.accuracy),
               bench::fmt("%.2f", lat.p50 / 1000.0), bench::fmt("%.2f", lat.p95 / 1000.0),
               bench::fmt("%.2f", lat.p99 / 1000.0),
               bench::fmt("%.2f", lat.p999 / 1000.0),
               bench::fmt("%.2f", queue.p95 / 1000.0),
               bench::fmt("%.1f", run.throughput_sps)});
    csv.row(theta, run.stats.mean_exit_timestep, 100 * run.accuracy, lat.p50 / 1000.0,
            lat.p95 / 1000.0, lat.p99 / 1000.0, lat.p999 / 1000.0,
            queue.p95 / 1000.0, run.throughput_sps);

    const std::string prefix = bench::fmt("theta_%.2f_", theta);
    report.set(prefix + "mean_exit_timestep", run.stats.mean_exit_timestep);
    report.set(prefix + "accuracy", run.accuracy);
    report.set(prefix + "p50_latency_ms", lat.p50 / 1000.0);
    report.set(prefix + "p95_latency_ms", lat.p95 / 1000.0);
    report.set(prefix + "p99_latency_ms", lat.p99 / 1000.0);
    report.set(prefix + "p999_latency_ms", lat.p999 / 1000.0);
    report.set(prefix + "throughput_sps", run.throughput_sps);
    if (theta == headline_theta) {
      report.set("headline_theta", theta);
      report.set("p50_latency_ms", lat.p50 / 1000.0);
      report.set("p95_latency_ms", lat.p95 / 1000.0);
      report.set("p99_latency_ms", lat.p99 / 1000.0);
      report.set("p999_latency_ms", lat.p999 / 1000.0);
      report.set("throughput_sps", run.throughput_sps);
      report.set("mean_exit_timestep", run.stats.mean_exit_timestep);
    }
  }

  report.set("served_vs_oracle_identical", all_identical ? 1.0 : 0.0);
  report.set_dataset(ds);
  if (!all_identical) {
    std::printf("\nFAIL: served decisions diverged from the batch-1 oracle\n");
    return 1;
  }
  std::printf("\nAll served decisions bitwise-identical to the batch-1 oracle.\n");
  return 0;
}
