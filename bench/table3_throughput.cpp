// Table III reproduction: inference throughput (images/second, batch 1) of
// static SNNs at T = 1..4 versus DT-SNN at three thresholds.
//
// The paper measures an RTX 2080Ti through PyTorch; this environment has no
// GPU, so the measurement substrate is this library's sequential engine on
// CPU (DESIGN.md §4.2). The reproduced claim is relative: throughput falls
// roughly linearly with T, and DT-SNN recovers most of the 1-timestep
// throughput while holding the 4-timestep accuracy.

#include <chrono>
#include <cstdio>

#include "bench_common.h"

using namespace dtsnn;

namespace {

/// Never-exit policy for timing static SNNs through the same code path.
class NeverExit final : public core::ExitPolicy {
 public:
  [[nodiscard]] bool should_exit(std::span<const float>) const override { return false; }
  [[nodiscard]] std::string name() const override { return "never"; }
};

struct Throughput {
  double images_per_sec = 0.0;
  double accuracy = 0.0;
  double avg_timesteps = 0.0;
};

Throughput measure(core::Experiment& e, const core::ExitPolicy& policy,
                   std::size_t max_t, std::size_t samples) {
  core::SequentialEngine engine(e.net, policy, max_t);
  const auto& ds = *e.bundle.test;
  const std::size_t n = std::min(samples, ds.size());
  std::size_t correct = 0;
  double total_t = 0.0;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < n; ++i) {
    const auto pred = engine.infer(ds, i);
    correct += pred.predicted_class == static_cast<std::size_t>(ds.label(i));
    total_t += static_cast<double>(pred.timesteps_used);
  }
  const auto stop = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(stop - start).count();
  return {static_cast<double>(n) / secs,
          static_cast<double>(correct) / static_cast<double>(n),
          total_t / static_cast<double>(n)};
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_options(argc, argv);
  const std::size_t samples = static_cast<std::size_t>(512 * options.scale) + 64;

  bench::banner("Table III: batch-1 throughput, static SNN vs DT-SNN (CPU substrate)");
  bench::BenchReport report("table3_throughput", options);
  util::CsvWriter csv(options.csv_dir + "/table3_throughput.csv");
  csv.write_header({"model", "method", "setting", "avg_timesteps", "accuracy",
                    "images_per_sec"});

  for (const std::string model : {"vgg_mini", "resnet_mini"}) {
    core::ExperimentSpec spec;
    spec.model = model;
    spec.dataset = "sync10";
    spec.timesteps = 4;
    spec.epochs = 14;
    spec.loss = core::LossKind::kPerTimestep;
    core::Experiment e = bench::run(spec, options);

    std::printf("%s on sync10:\n", model.c_str());
    bench::TablePrinter table({"Method", "Setting", "avgT", "Acc.", "img/s"},
                              {9, 13, 7, 9, 10});
    const NeverExit never;
    for (std::size_t t = 1; t <= 4; ++t) {
      const auto r = measure(e, never, t, samples);
      table.row({"SNN", bench::fmt("T=%zu", t), bench::fmt("%.2f", r.avg_timesteps),
                 bench::fmt("%.2f%%", 100 * r.accuracy),
                 bench::fmt("%.1f", r.images_per_sec)});
      csv.row(model, "SNN", bench::fmt("T=%zu", t), r.avg_timesteps, 100 * r.accuracy,
              r.images_per_sec);
    }
    for (const double theta : {0.6, 0.3, 0.1}) {
      const core::EntropyExitPolicy policy(theta);
      const auto r = measure(e, policy, 4, samples);
      table.row({"DT-SNN", bench::fmt("theta=%.2f", theta),
                 bench::fmt("%.2f", r.avg_timesteps),
                 bench::fmt("%.2f%%", 100 * r.accuracy),
                 bench::fmt("%.1f", r.images_per_sec)});
      csv.row(model, "DT-SNN", bench::fmt("theta=%.2f", theta), r.avg_timesteps,
              100 * r.accuracy, r.images_per_sec);
      report.set(model + bench::fmt("_theta%.2f_images_per_sec", theta),
                 r.images_per_sec);
      report.set(model + bench::fmt("_theta%.2f_accuracy", theta), r.accuracy);
      report.set(model + bench::fmt("_theta%.2f_avg_timesteps", theta),
                 r.avg_timesteps);
    }
    std::printf("\n");
  }
  std::printf("Shape check (paper Table III): static throughput drops ~3x from T=1 to\n"
              "T=4; DT-SNN at low average T approaches the T=1 throughput while\n"
              "keeping the T=4 accuracy.\n");
  return 0;
}
