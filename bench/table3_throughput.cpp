// Table III reproduction: inference throughput (images/second) of static
// SNNs at T = 1..4 versus DT-SNN at three thresholds, measured through the
// unified core::InferenceEngine API.
//
// The paper measures an RTX 2080Ti through PyTorch; this environment has no
// GPU, so the measurement substrate is this library's sequential engines on
// CPU (DESIGN.md §4.2). The reproduced claims are relative:
//   * throughput falls roughly linearly with T, and DT-SNN recovers most of
//     the 1-timestep throughput while holding the 4-timestep accuracy;
//   * batching the early-exit control flow (BatchedSequentialEngine, batch
//     32 with live-batch compaction) beats batch-1 sequential execution
//     while making bitwise-identical decisions on every sample.
//
// BENCH_table3_throughput.json reports two speedup families:
//   * <model>_theta*_batch32_same_policy_speedup — batched vs batch-1 with
//     the *same* exit policy (the pure batching win);
//   * batch32_speedup — the Table III headline: batched DT-SNN throughput
//     at the iso-accuracy operating point over the batch-1 sequential
//     static-SNN baseline at the full T=4 budget (batching + early exit
//     together, at matched accuracy; worst case across models). The
//     operating point is theta calibrated against the measured sample set
//     (core::calibrate_theta, the paper's methodology), with a 1pp
//     tolerance — below the ~1.3pp binomial std of a ~600-sample accuracy
//     measurement. Grid thetas within the tolerance also qualify. The JSON
//     carries batch32_speedup_definition so the number is unambiguous.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/calibration.h"
#include "core/quantize.h"
#include "snn/quantize.h"
#include "util/gemm.h"

using namespace dtsnn;

namespace {

struct Throughput {
  double images_per_sec = 0.0;
  double accuracy = 0.0;
  double avg_timesteps = 0.0;
  std::vector<core::InferenceResult> results;
};

Throughput measure(core::InferenceEngine& engine, const data::Dataset& ds,
                   std::size_t samples) {
  const core::InferenceRequest request =
      core::InferenceRequest::first_n(std::min(samples, ds.size()));

  // Best-of-3: throughput on a shared host is noisy (±15% interference);
  // the fastest repetition is the least-perturbed estimate. Decisions are
  // deterministic, so every repetition returns identical results.
  constexpr int kReps = 3;
  std::vector<core::InferenceResult> results;
  double secs = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    std::vector<core::InferenceResult> run = engine.run(ds, request);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    if (rep == 0 || elapsed < secs) {
      secs = elapsed;
      results = std::move(run);
    }
  }

  Throughput r;
  std::size_t correct = 0;
  double total_t = 0.0;
  for (const auto& res : results) {
    correct += res.predicted_class == static_cast<std::size_t>(ds.label(res.sample));
    total_t += static_cast<double>(res.exit_timestep);
  }
  const double n = static_cast<double>(results.size());
  r.images_per_sec = n / secs;
  r.accuracy = static_cast<double>(correct) / n;
  r.avg_timesteps = total_t / n;
  r.results = std::move(results);
  return r;
}

/// Bitwise decision identity between two engines' result sets.
bool identical_decisions(const Throughput& a, const Throughput& b) {
  if (a.results.size() != b.results.size()) return false;
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    if (a.results[i].predicted_class != b.results[i].predicted_class ||
        a.results[i].exit_timestep != b.results[i].exit_timestep ||
        a.results[i].final_entropy != b.results[i].final_entropy) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_options(argc, argv);
  const std::size_t samples = static_cast<std::size_t>(512 * options.scale) + 64;
  const std::size_t kBatch = 32;

  bench::banner("Table III: throughput, static SNN vs DT-SNN, batch-1 vs batched "
                "(CPU substrate)");
  bench::BenchReport report("table3_throughput", options);
  report.set("threads", static_cast<double>(core::evaluation_threads()));
  report.set("batch_size", static_cast<double>(kBatch));
  // GEMM-form math below (linear layers, dense-ish convs) runs through this
  // backend (util/gemm.h dispatch); very sparse eval convs take the direct
  // scatter kernel instead, which follows the same bitwise contract but is
  // not backend-dispatched. Backends are bitwise identical, so only speed
  // depends on this.
  report.set("gemm_backend", std::string(util::default_gemm_backend().name()));
  const double kIsoTolerance = 0.01;  // 1pp, below ~600-sample binomial noise
  report.set("batch32_speedup_definition",
             "batched DT-SNN (batch 32) img/s at the iso-accuracy operating "
             "point (theta calibrated to the static T=4 accuracy on the "
             "measured samples, 1pp tolerance; qualifying grid thetas also "
             "considered) over batch-1 sequential static SNN at T=4 img/s, for "
             "the primary model vgg_mini; per-model values are the "
             "*_batch32_iso_accuracy_speedup_vs_static_t4 keys and the worst "
             "case is batch32_speedup_min_across_models. The "
             "*_same_policy_speedup keys isolate the pure batching win at an "
             "identical exit policy");

  bool all_identical = true;
  double primary_headline_speedup = 0.0;  // vgg_mini's iso-accuracy headline
  double min_headline_speedup = -1.0;     // -1 = no model measured yet
  double min_same_policy_speedup = -1.0;

  for (const std::string model : {"vgg_mini", "resnet_mini"}) {
    core::ExperimentSpec spec;
    spec.model = model;
    spec.dataset = "sync10";
    spec.timesteps = 4;
    spec.epochs = 14;
    spec.loss = core::LossKind::kPerTimestep;
    core::Experiment e = bench::run(spec, options);

    std::printf("%s on sync10:\n", model.c_str());
    bench::TablePrinter table(
        {"Method", "Setting", "avgT", "Acc.", "img/s b1", "img/s b32", "speedup"},
        {9, 13, 7, 9, 10, 10, 9});
    util::CsvWriter csv(options.csv_dir + "/table3_throughput_" + model + ".csv");
    csv.write_header({"method", "setting", "avg_timesteps", "accuracy",
                      "images_per_sec_batch1", "images_per_sec_batch32",
                      "same_policy_speedup"});

    const core::NeverExitPolicy never;
    double static_t4_batch1 = 0.0;
    double static_t4_accuracy = 0.0;
    for (std::size_t t = 1; t <= 4; ++t) {
      core::SequentialEngine seq(e.net, never, t);
      core::BatchedSequentialEngine batched(e.net, never, t, kBatch);
      const auto r1 = measure(seq, *e.bundle.test, samples);
      const auto rb = measure(batched, *e.bundle.test, samples);
      all_identical = all_identical && identical_decisions(r1, rb);
      if (t == 4) {
        static_t4_batch1 = r1.images_per_sec;
        static_t4_accuracy = r1.accuracy;
      }
      const double speedup = rb.images_per_sec / r1.images_per_sec;
      table.row({"SNN", bench::fmt("T=%zu", t), bench::fmt("%.2f", r1.avg_timesteps),
                 bench::fmt("%.2f%%", 100 * r1.accuracy),
                 bench::fmt("%.1f", r1.images_per_sec),
                 bench::fmt("%.1f", rb.images_per_sec), bench::fmt("%.2fx", speedup)});
      csv.row("SNN", bench::fmt("T=%zu", t), r1.avg_timesteps, 100 * r1.accuracy,
              r1.images_per_sec, rb.images_per_sec, speedup);
    }
    report.set(model + "_static_t4_images_per_sec", static_t4_batch1);

    // Calibrated operating point (the paper's methodology): largest theta
    // whose replayed accuracy over the measured samples holds the static
    // T=4 accuracy within the tolerance. Replay decisions equal the
    // engines' decisions (bitwise-identical logits), so calibrating on the
    // recording is calibrating the engines.
    const auto outputs = core::collect_outputs(e.net, *e.bundle.test, 4,
                                               /*batch_size=*/256, samples);
    const auto calib =
        core::calibrate_theta(outputs, core::static_accuracy(outputs, 4),
                              kIsoTolerance);

    // Measure the calibrated theta only when it isn't already a grid row
    // (at reporting precision): BenchReport keys must stay unique.
    std::vector<double> thetas{0.6, 0.3, 0.1};
    const auto key_of = [](double th) { return bench::fmt("%.2f", th); };
    bool calib_is_new = true;
    for (const double th : thetas) {
      if (key_of(th) == key_of(calib.theta)) calib_is_new = false;
    }
    if (calib_is_new) thetas.push_back(calib.theta);

    double best_iso_batched = 0.0;  // best batched img/s at iso-accuracy
    double float_b32_theta030 = 0.0;  // quantized-tier comparison baseline
    for (const double theta : thetas) {
      const core::EntropyExitPolicy policy(theta);
      core::SequentialEngine seq(e.net, policy, 4);
      core::BatchedSequentialEngine batched(e.net, policy, 4, kBatch);
      const auto r1 = measure(seq, *e.bundle.test, samples);
      const auto rb = measure(batched, *e.bundle.test, samples);
      all_identical = all_identical && identical_decisions(r1, rb);

      const double same_policy = rb.images_per_sec / r1.images_per_sec;
      if (key_of(theta) == "0.30") float_b32_theta030 = rb.images_per_sec;
      if (min_same_policy_speedup < 0.0 || same_policy < min_same_policy_speedup) {
        min_same_policy_speedup = same_policy;
      }
      // Iso-accuracy operating point: holds the T=4 accuracy within the
      // tolerance.
      if (rb.accuracy >= static_t4_accuracy - kIsoTolerance &&
          rb.images_per_sec > best_iso_batched) {
        best_iso_batched = rb.images_per_sec;
      }

      table.row({"DT-SNN", bench::fmt("theta=%.2f", theta),
                 bench::fmt("%.2f", r1.avg_timesteps),
                 bench::fmt("%.2f%%", 100 * r1.accuracy),
                 bench::fmt("%.1f", r1.images_per_sec),
                 bench::fmt("%.1f", rb.images_per_sec),
                 bench::fmt("%.2fx", same_policy)});
      csv.row("DT-SNN", bench::fmt("theta=%.2f", theta), r1.avg_timesteps,
              100 * r1.accuracy, r1.images_per_sec, rb.images_per_sec, same_policy);

      report.set(model + bench::fmt("_theta%.2f_images_per_sec", theta),
                 r1.images_per_sec);
      report.set(model + bench::fmt("_theta%.2f_batch32_images_per_sec", theta),
                 rb.images_per_sec);
      report.set(model + bench::fmt("_theta%.2f_batch32_same_policy_speedup", theta),
                 same_policy);
      report.set(model + bench::fmt("_theta%.2f_batch32_speedup_vs_static_t4", theta),
                 rb.images_per_sec / static_t4_batch1);
      report.set(model + bench::fmt("_theta%.2f_accuracy", theta), r1.accuracy);
      report.set(model + bench::fmt("_theta%.2f_avg_timesteps", theta), r1.avg_timesteps);
    }

    // Density-adaptive dispatch (util/gemm.h `adaptive` router): rerun the
    // batched theta=0.30 operating point with per-call-site sparse/dense
    // routing. Decisions must stay bitwise identical to the default float
    // backend (both delegates are bitwise-tier); the row records what the
    // routing is worth end-to-end.
    {
      util::reset_adaptive_gemm_state();
      util::GemmContext adaptive_ctx(*util::find_gemm_backend("adaptive"));
      e.net.set_gemm_context(&adaptive_ctx);
      const core::EntropyExitPolicy policy030(0.3);
      core::BatchedSequentialEngine batched(e.net, policy030, 4, kBatch);
      const auto ra = measure(batched, *e.bundle.test, samples);
      e.net.set_gemm_context(nullptr);
      core::BatchedSequentialEngine batched_float(e.net, policy030, 4, kBatch);
      const auto rf = measure(batched_float, *e.bundle.test, samples);
      all_identical = all_identical && identical_decisions(ra, rf);
      std::size_t sparse_sites = 0;
      const auto decisions = util::adaptive_gemm_decisions();
      for (const auto& d : decisions) sparse_sites += d.sparse ? 1 : 0;
      util::reset_adaptive_gemm_state();
      report.set(model + "_adaptive_theta0.30_batch32_images_per_sec",
                 ra.images_per_sec);
      report.set(model + "_adaptive_theta0.30_batch32_vs_float_speedup",
                 rf.images_per_sec > 0.0 ? ra.images_per_sec / rf.images_per_sec
                                         : 0.0);
      report.set(model + "_adaptive_call_sites",
                 static_cast<double>(decisions.size()));
      report.set(model + "_adaptive_sparse_routed_sites",
                 static_cast<double>(sparse_sites));
      std::printf(
          "  adaptive @ theta=0.30 batch32: %.1f img/s (%.2fx of float), "
          "%zu/%zu call sites sparse-routed\n",
          ra.images_per_sec,
          rf.images_per_sec > 0.0 ? ra.images_per_sec / rf.images_per_sec : 0.0,
          sparse_sites, decisions.size());
    }

    // Quantized GEMM tier (util/gemm.h, tolerance-gated identity): calibrate
    // INT8/INT4 weights against the float oracle on the measured samples,
    // then rerun the batched DT-SNN operating point theta=0.30 under the
    // quantized backend. Reported, not gated — the hard per-preset flip gate
    // lives in bench/gemm_microbench.
    for (const int bits : {8, 4}) {
      core::QuantCalibrationConfig config;
      config.spec.bits = bits;
      config.max_samples = samples;
      const core::EntropyExitPolicy policy030(0.3);
      const core::QuantCalibrationReport qr = core::calibrate_quantized(
          e.net, *e.bundle.test, policy030, 4, config);
      // One calibration serves both kernel shapes: the LUT twin consumes the
      // same codes/scales (bit-identical outputs), so its row differs only
      // in throughput.
      const char* spike_name = bits == 8 ? "int8_spike" : "int4_spike";
      const char* lut_name = bits == 8 ? "int8_lut" : "int4_lut";
      for (const char* backend_name : {spike_name, lut_name}) {
        util::GemmContext quant_ctx(
            *util::as_quantized_backend(util::find_gemm_backend(backend_name)));
        e.net.set_gemm_context(&quant_ctx);
        core::BatchedSequentialEngine batched(e.net, policy030, 4, kBatch);
        const auto rq = measure(batched, *e.bundle.test, samples);
        e.net.set_gemm_context(nullptr);

        const std::string prefix = model + "_" + backend_name;
        report.set(prefix + "_theta0.30_batch32_images_per_sec", rq.images_per_sec);
        report.set(prefix + "_theta0.30_batch32_vs_float_speedup",
                   float_b32_theta030 > 0.0 ? rq.images_per_sec / float_b32_theta030
                                            : 0.0);
        report.set(prefix + "_prediction_flip_rate", qr.diff.prediction_flip_rate);
        report.set(prefix + "_exit_flip_rate", qr.diff.exit_flip_rate);
        report.set(prefix + "_accuracy_delta", qr.accuracy_delta);
        report.set(prefix + "_weight_footprint_ratio", qr.footprint_ratio);
        std::printf(
            "  %s @ theta=0.30 batch32: %.1f img/s (%.2fx of float), flips %.2f%%, "
            "accuracy %+.2fpp, weights %.1fx smaller\n",
            backend_name, rq.images_per_sec,
            float_b32_theta030 > 0.0 ? rq.images_per_sec / float_b32_theta030 : 0.0,
            100 * qr.diff.prediction_flip_rate, 100 * qr.accuracy_delta,
            qr.footprint_ratio);
      }
    }
    snn::clear_network_quantized_weights(e.net);

    // A model with no iso-accuracy operating point contributes 0, which the
    // min must keep (it means the headline claim failed for that model).
    const double iso_headline = best_iso_batched / static_t4_batch1;
    report.set(model + "_batch32_iso_accuracy_speedup_vs_static_t4", iso_headline);
    std::printf("  iso-accuracy batched DT-SNN vs batch-1 static T=4: %.2fx\n\n",
                iso_headline);
    if (min_headline_speedup < 0.0 || iso_headline < min_headline_speedup) {
      min_headline_speedup = iso_headline;
    }
    if (model == "vgg_mini") primary_headline_speedup = iso_headline;
    // Both models run the same sync10 split; record its footprint once.
    if (model == "vgg_mini") report.set_dataset(*e.bundle.test);
  }

  report.set("batch32_speedup", primary_headline_speedup);
  report.set("batch32_speedup_min_across_models", std::max(min_headline_speedup, 0.0));
  report.set("batch32_same_policy_speedup_min", std::max(min_same_policy_speedup, 0.0));
  report.set("decisions_identical", all_identical ? "yes" : "NO");

  std::printf(
      "Decision identity (batched vs batch-1, every sample): %s\n"
      "Shape check (paper Table III): static throughput drops ~3x from T=1 to\n"
      "T=4; DT-SNN at low average T approaches the T=1 throughput while\n"
      "keeping the T=4 accuracy. Batching the early-exit control flow adds a\n"
      "further same-policy speedup on top (per-step overheads amortize across\n"
      "the live batch; on multi-core hosts the batch also parallelizes).\n"
      "Headline: batched DT-SNN over batch-1 static T=4 at iso-accuracy is\n"
      "%.2fx on vgg_mini (batch32_speedup in the JSON) and %.2fx worst-case\n"
      "across models; definition fields included. Grows with training\n"
      "quality and core count.\n",
      all_identical ? "identical" : "MISMATCH", primary_headline_speedup,
      std::max(min_headline_speedup, 0.0));
  return all_identical ? 0 : 1;
}
