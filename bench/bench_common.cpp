#include "bench_common.h"

#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "data/dataset.h"
#include "util/logging.h"

namespace dtsnn::bench {

BenchOptions parse_options(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        // Flag parsing runs before any thread is spawned; exiting here
        // cannot race a destructor.
        std::exit(2);  // NOLINT(concurrency-mt-unsafe)
      }
      return argv[++i];
    };
    if (arg == "--scale") {
      options.scale = std::atof(next("--scale"));
    } else if (arg == "--epochs") {
      options.epochs_override = static_cast<std::size_t>(std::atoi(next("--epochs")));
    } else if (arg == "--no-cache") {
      options.use_cache = false;
    } else if (arg == "--cache-dir") {
      options.cache_dir = next("--cache-dir");
    } else if (arg == "--csv-dir") {
      options.csv_dir = next("--csv-dir");
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s [--scale F] [--epochs N] [--no-cache] [--cache-dir D] "
          "[--csv-dir D]\n",
          argv[0]);
      std::exit(0);  // NOLINT(concurrency-mt-unsafe) pre-thread flag parsing
    } else {
      std::fprintf(stderr, "unknown flag: %s (see --help)\n", arg.c_str());
      std::exit(2);  // NOLINT(concurrency-mt-unsafe) pre-thread flag parsing
    }
  }
  return options;
}

core::Experiment run(core::ExperimentSpec spec, const BenchOptions& options) {
  spec.data_scale *= options.scale;
  if (options.epochs_override) spec.epochs = options.epochs_override;
  return core::train_or_load(spec, options.use_cache ? options.cache_dir : "");
}

double mean_hidden_activity(core::Experiment& experiment) {
  // Probe with a test batch at the experiment's timestep budget.
  const std::size_t probe = std::min<std::size_t>(64, experiment.bundle.test->size());
  std::vector<std::size_t> indices(probe);
  for (std::size_t i = 0; i < probe; ++i) indices[i] = i;
  auto batch = data::materialize_batch(*experiment.bundle.test, indices,
                                       experiment.spec.timesteps);
  experiment.net.forward(batch.x, experiment.spec.timesteps, /*train=*/false);
  const auto rates = experiment.net.lif_spike_rates();
  if (rates.empty()) return 0.15;
  double acc = 0.0;
  for (const double r : rates) acc += r;
  return acc / static_cast<double>(rates.size());
}

imc::EnergyModel measured_energy_model(core::Experiment& experiment,
                                       const imc::ImcConfig& config) {
  const double activity = mean_hidden_activity(experiment);
  auto spec = imc::spec_from_network(experiment.net, experiment.spec.model);
  imc::set_uniform_activity(spec, activity, /*first_layer_activity=*/1.0);
  return imc::EnergyModel(imc::map_network(spec, config));
}

imc::EnergyModel paper_scale_energy_model(const std::string& model_preset,
                                          double activity,
                                          const imc::ImcConfig& config) {
  imc::NetworkSpec spec = model_preset.find("resnet") != std::string::npos
                              ? imc::resnet19_spec()
                              : imc::vgg16_spec();
  imc::set_uniform_activity(spec, activity, /*first_layer_activity=*/1.0);
  return imc::EnergyModel(imc::map_network(spec, config));
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

BenchReport::BenchReport(std::string name, const BenchOptions& options)
    : name_(std::move(name)),
      dir_(options.csv_dir),
      start_(std::chrono::steady_clock::now()) {
  set("scale", options.scale);
}

BenchReport::~BenchReport() {
  try {
    write();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "BenchReport: %s\n", e.what());
  }
}

void BenchReport::set(const std::string& key, double value) {
  // NaN/inf are not valid JSON numbers; serialize them as strings.
  std::string encoded;
  if (std::isfinite(value)) {
    encoded = fmt("%.6g", value);
  } else {
    encoded = '"';
    encoded += fmt("%g", value);
    encoded += '"';
  }
  fields_.emplace_back(key, std::move(encoded));
}

void BenchReport::set(const std::string& key, const std::string& value) {
  std::string encoded;
  encoded = '"';
  encoded += json_escape(value);
  encoded += '"';
  fields_.emplace_back(key, std::move(encoded));
}

void BenchReport::set_result(double accuracy, double avg_timesteps) {
  set("accuracy", accuracy);
  set("avg_timesteps", avg_timesteps);
}

void BenchReport::set_dataset(const data::Dataset& dataset, const std::string& prefix) {
  const data::DatasetStorageStats stats = dataset.storage_stats();
  set(prefix + "dataset_samples", static_cast<double>(dataset.size()));
  set(prefix + "dataset_bytes", static_cast<double>(stats.logical_bytes));
  set(prefix + "dataset_resident_bytes", static_cast<double>(stats.resident_bytes));
  set(prefix + "dataset_peak_resident_bytes",
      static_cast<double>(stats.peak_resident_bytes));
  set(prefix + "shard_count", static_cast<double>(stats.shard_count));
  set(prefix + "shard_cache_slots", static_cast<double>(stats.cache_slots));
  set(prefix + "shard_cache_hits", static_cast<double>(stats.cache_hits));
  set(prefix + "shard_cache_misses", static_cast<double>(stats.cache_misses));
  set(prefix + "shard_cache_evictions", static_cast<double>(stats.cache_evictions));
  set(prefix + "shard_cache_hit_rate", stats.hit_rate());
}

void BenchReport::write() {
  if (written_) return;
  written_ = true;
  const double wall = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                    start_)
                          .count();
  const std::string path = dir_ + "/BENCH_" + name_ + ".json";
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("BenchReport: cannot open " + path);
  out << "{\n  \"name\": \"" << json_escape(name_) << "\",\n";
  out << "  \"wall_seconds\": " << fmt("%.3f", wall);
  for (const auto& [key, value] : fields_) {
    out << ",\n  \"" << json_escape(key) << "\": " << value;
  }
  out << "\n}\n";
  if (!out) throw std::runtime_error("BenchReport: write failed for " + path);
  std::printf("[bench] wrote %s\n", path.c_str());
}

TablePrinter::TablePrinter(std::vector<std::string> headers, std::vector<int> widths)
    : headers_(std::move(headers)), widths_(std::move(widths)) {
  if (widths_.empty()) {
    widths_.reserve(headers_.size());
    for (const auto& h : headers_) {
      widths_.push_back(std::max<int>(12, static_cast<int>(h.size()) + 2));
    }
  }
  row(headers_);
  rule();
}

void TablePrinter::row(const std::vector<std::string>& cells) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const int w = i < widths_.size() ? widths_[i] : 12;
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%-*s", w, cells[i].c_str());
    line += buf;
  }
  std::printf("%s\n", line.c_str());
}

void TablePrinter::rule() const {
  int total = 0;
  for (const int w : widths_) total += w;
  std::printf("%s\n", std::string(static_cast<std::size_t>(total), '-').c_str());
}

std::string fmt(const char* format, ...) {
  va_list args;
  va_start(args, format);
  char buf[256];
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  return buf;
}

void banner(const std::string& title) {
  std::printf("\n==== %s ====\n\n", title.c_str());
}

}  // namespace dtsnn::bench
