// Fig. 1 reproduction: (A) component-wise energy ratio of the CIFAR10-scale
// VGG-16 mapped onto the 64x64 4-bit RRAM IMC architecture; (B) normalized
// energy and latency versus the number of timesteps (1..8).
// Also prints the Table I hardware parameters the model was evaluated with.
//
// Paper reference values: (A) digital peripherals 45%, crossbar+ADC 25%,
// H-Tree 17%, NoC 9%, LIF 1%; (B) energy 1.0 -> 4.9x, latency 1 -> 8x.

#include <cstdio>

#include "bench_common.h"

using namespace dtsnn;

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_options(argc, argv);

  bench::BenchReport report("fig1_energy_breakdown", options);
  const imc::ImcConfig cfg;
  bench::banner("Table I: hardware implementation parameters");
  std::printf("  Technology                 32nm CMOS (calibrated macro-model)\n");
  std::printf("  Crossbar size & per tile   %zu & %zu\n", cfg.crossbar_size,
              cfg.crossbars_per_tile);
  std::printf("  Device & weight precision  %zu-bit RRAM (sigma/mu=%.0f%%) & %zu-bit\n",
              cfg.device_bits, 100.0 * cfg.device_sigma_over_mu, cfg.weight_bits);
  std::printf("  Roff/Ron                   %.0f at Ron=%.0fkOhm\n", cfg.roff_over_ron,
              cfg.r_on_ohm / 1000.0);
  std::printf("  GB, tile & PE buffers      %zuKB, %zuKB & %zuKB\n", cfg.global_buffer_kb,
              cfg.tile_buffer_kb, cfg.pe_buffer_kb);
  std::printf("  VDD & Vread                %.1fV & %.1fV\n", cfg.vdd, cfg.vread);
  std::printf("  sigma & E LUT size         %zuKB & %zuKB\n", cfg.sigma_lut_kb,
              cfg.entropy_lut_kb);

  const imc::EnergyModel model = bench::paper_scale_energy_model("vgg16", 0.15, cfg);
  const auto& mapping = model.mapping();
  std::printf("\n  VGG-16 mapping: %zu crossbars across %zu tiles, %.1fM MACs/timestep\n",
              mapping.total_crossbars(), mapping.total_tiles(),
              mapping.network.total_macs_per_timestep() / 1e6);

  bench::banner("Fig. 1(A): energy cost ratio (VGG-16, CIFAR-10 scale, T=4)");
  const auto shares = model.component_shares(4);
  bench::TablePrinter pie({"Component", "This work", "Paper"});
  pie.row({"Digital peripherals", bench::fmt("%5.1f%%", 100 * shares.digital_peripherals),
           "45%"});
  pie.row({"Crossbar+DIFF (ADC)", bench::fmt("%5.1f%%", 100 * shares.crossbar_adc), "25%"});
  pie.row({"H-Tree", bench::fmt("%5.1f%%", 100 * shares.htree), "17%"});
  pie.row({"NoC", bench::fmt("%5.1f%%", 100 * shares.noc), "9%"});
  pie.row({"LIF module", bench::fmt("%5.1f%%", 100 * shares.lif), "1%"});

  bench::banner("Fig. 1(B): normalized energy / latency vs timesteps");
  static const double kPaperEnergy[8] = {1.0, 1.4, 2.0, 2.6, 3.2, 3.8, 4.4, 4.9};
  bench::TablePrinter table(
      {"T", "Energy (ours)", "Energy (paper)", "Latency (ours)", "Latency (paper)"});
  util::CsvWriter csv(options.csv_dir + "/fig1_energy_vs_timesteps.csv");
  csv.write_header({"timesteps", "energy_norm", "latency_norm", "paper_energy_norm",
                    "paper_latency_norm"});
  const double e1 = model.energy_pj(1);
  const double l1 = model.latency_ns(1);
  for (int t = 1; t <= 8; ++t) {
    const double e = model.energy_pj(t) / e1;
    const double l = model.latency_ns(t) / l1;
    table.row({bench::fmt("%d", t), bench::fmt("%.2f", e),
               bench::fmt("%.1f", kPaperEnergy[t - 1]), bench::fmt("%.1f", l),
               bench::fmt("%d", t)});
    csv.row(t, e, l, kPaperEnergy[t - 1], t);
  }
  std::printf("\nsigma-E module energy per timestep: %.2e x one-timestep chip energy "
              "(paper: ~2e-5)\n",
              model.breakdown().sigma_e_per_timestep_pj /
                  model.breakdown().per_timestep.total());
  report.set("digital_peripherals_share", shares.digital_peripherals);
  report.set("crossbar_adc_share", shares.crossbar_adc);
  report.set("energy_norm_t8", model.energy_pj(8) / e1);
  report.set("sigma_e_overhead",
             model.breakdown().sigma_e_per_timestep_pj /
                 model.breakdown().per_timestep.total());
  return 0;
}
