// Fig. 4 reproduction: energy-delay-product of DT-SNN normalized to the
// static SNN, per architecture and dataset.
//
// Paper reference: VGG-16 19.1 / 33.2 / 38.8 / 35.7 % and ResNet-19
// 15.5 / 31.1 / 33.2 / 34.6 % for CIFAR-10 / CIFAR-100 / TinyImageNet /
// CIFAR10-DVS — i.e. DT-SNN removes 61-85% of the EDP.

#include <cstdio>

#include "bench_common.h"

using namespace dtsnn;

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_options(argc, argv);

  bench::banner("Fig. 4: normalized EDP, DT-SNN vs static SNN");
  bench::BenchReport report("fig4_edp", options);
  util::CsvWriter csv(options.csv_dir + "/fig4_edp.csv");
  csv.write_header({"model", "dataset", "edp_percent", "paper_percent"});

  const double paper_vgg[4] = {19.1, 33.2, 38.8, 35.7};
  const double paper_resnet[4] = {15.5, 31.1, 33.2, 34.6};

  bench::TablePrinter table({"Model", "Dataset", "EDP (ours)", "EDP (paper)"},
                            {14, 10, 12, 12});
  int di = 0;
  for (const std::string model : {"vgg_mini", "resnet_mini"}) {
    di = 0;
    for (const std::string dataset : {"sync10", "sync100", "syntin", "syndvs"}) {
      const std::size_t timesteps = core::preset_timesteps(dataset);

      core::ExperimentSpec static_spec;
      static_spec.model = model;
      static_spec.dataset = dataset;
      static_spec.timesteps = timesteps;
      static_spec.epochs = 14;
      static_spec.loss = core::LossKind::kMeanLogit;
      core::ExperimentSpec dt_spec = static_spec;
      dt_spec.loss = core::LossKind::kPerTimestep;

      core::Experiment static_e = bench::run(static_spec, options);
      core::Experiment dt_e = bench::run(dt_spec, options);
      const auto static_out = core::test_outputs(static_e);
      const auto dt_out = core::test_outputs(dt_e);
      const double target = core::static_accuracy(static_out, timesteps);
      const auto calib = core::calibrate_theta(dt_out, target, 0.005);

      const double activity = bench::mean_hidden_activity(dt_e);
      const imc::EnergyModel hw = bench::paper_scale_energy_model(model, activity);
      const double static_edp = hw.edp(static_cast<double>(timesteps));
      const double dt_edp = hw.mean_edp(calib.result.exit_timestep);
      const double percent = 100.0 * dt_edp / static_edp;
      const double paper =
          (model == "vgg_mini" ? paper_vgg : paper_resnet)[di];

      table.row({model, dataset, bench::fmt("%.1f%%", percent),
                 bench::fmt("%.1f%%", paper)});
      csv.row(model, dataset, percent, paper);
      report.set(model + "_" + dataset + "_edp_percent", percent);
      report.set(model + "_" + dataset + "_accuracy", calib.result.accuracy);
      report.set(model + "_" + dataset + "_avg_timesteps", calib.result.avg_timesteps);
      // The dataset is model-independent; record its footprint once.
      if (model == "vgg_mini") report.set_dataset(*dt_e.bundle.test, dataset + "_");
      ++di;
    }
  }
  std::printf("\nShape check: DT-SNN EDP should land well below 50%% of static\n"
              "(paper band: 15.5-38.8%%).\n");
  return 0;
}
