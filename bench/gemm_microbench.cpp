// GEMM backend microbenchmark: GFLOP/s of every registered backend on the
// GEMM shapes the models actually run (im2col convolution products and the
// classifier matmul of vgg_mini/resnet_mini at batch 32 on 16x16 frames),
// with dense activations and with binary spike activations at 70% / 90%
// sparsity — the operating regime of the hidden LIF layers.
//
// Two tiers, two contracts (util/gemm.h):
//   * float backends are checked bitwise against scalar_ref; any mismatch
//     fails the run;
//   * the quantized backends (int8_spike / int4_spike) run their weights
//     through util::QuantizedMatrix and are checked against the scalar
//     float product of the DEQUANTIZED weights within a relative bound
//     (their kernel is exact integer accumulation + one flush per scale
//     group, so only float summation order separates the two), plus the
//     end-to-end decision gate below.
//
// Emits BENCH_gemm.json via bench::BenchReport: per-(shape, density,
// backend) GFLOP/s, the per-shape observed A-operand density histogram,
// per-density backend totals, weight-footprint bytes per backend (the LUT
// tier additionally reports its derived table bytes) with the headline
// footprint_ratio, the headline sparse_spike / quantized-tier vs blocked_omp
// speedups, the LUT-vs-spike speedups, the per-preset adaptive routing
// summary, and — at full scale — the per-preset decision-flip-rate of the
// quantized tier versus the scalar_ref oracle on trained models
// (core::calibrate_quantized).
//
// In-bench acceptance gates (nonzero exit on failure):
//   * every float backend bitwise-identical to scalar_ref — including
//     avx512 when this machine has it (a loud skip plus a report field
//     otherwise, so CI's fallback leg is visibly not silently green);
//   * quantized kernels within tolerance of their dequantized product, and
//     the LUT backends bitwise-identical to their spike counterparts;
//   * int8_spike >= 1.5x blocked_omp wall-clock at >= 70% spike sparsity;
//   * int4_lut >= 1.3x int4_spike wall-clock at >= 70% spike sparsity;
//   * adaptive dispatch: engine decisions identical to scalar_ref on every
//     dataset preset (the dispatcher may only ever change speed);
//   * weight-footprint reduction >= 4x (INT8) and >= 8x (INT4);
//   * at full scale: INT8 prediction-flip-rate <= 1% and |accuracy delta|
//     <= 2pp versus scalar_ref on every dataset preset (INT4 is reported
//     and held to a documented looser 5% — a 16-level weight grid on
//     sub-percent decision margins is the paper's accuracy/footprint
//     trade-off, not a kernel defect).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/evaluator.h"
#include "core/exit_policy.h"
#include "core/quantize.h"
#include "util/gemm.h"
#include "util/quant.h"
#include "util/rng.h"

using namespace dtsnn;

namespace {

/// One A-stationary (NN) GEMM shape from the model zoo; m counts im2col
/// rows (batch * output pixels) for convs and batch rows for the linear.
struct GemmShape {
  const char* tag;
  std::size_t m, k, n;
};

// vgg_mini plan (32,32,M,64,64,M,128,M) and resnet_mini stage tail on
// 3x16x16 inputs, batch 32; the classifier is the batch-32 linear.
constexpr GemmShape kShapes[] = {
    {"vgg_conv1", 32 * 16 * 16, 3 * 9, 32},    // 3->32 @ 16x16
    {"vgg_conv2", 32 * 16 * 16, 32 * 9, 32},   // 32->32 @ 16x16
    {"vgg_conv3", 32 * 8 * 8, 32 * 9, 64},     // 32->64 @ 8x8
    {"vgg_conv4", 32 * 8 * 8, 64 * 9, 64},     // 64->64 @ 8x8
    {"vgg_conv5", 32 * 4 * 4, 64 * 9, 128},    // 64->128 @ 4x4
    {"resnet_stage3", 32 * 4 * 4, 32 * 9, 64}, // stage-2->3 projection @ 4x4
    {"classifier", 32, 128 * 2 * 2, 10},       // vgg_mini linear head
};

constexpr double kDensities[] = {1.0, 0.30, 0.10};  // dense, 70%, 90% sparse

// Gate thresholds (see file comment).
constexpr double kInt8SpeedupGate = 1.5;
constexpr double kInt4LutSpeedupGate = 1.3;
constexpr double kInt8FootprintGate = 4.0;
constexpr double kInt4FootprintGate = 8.0;
constexpr double kInt8FlipGate = 0.01;
constexpr double kInt4FlipGate = 0.08;
constexpr double kAccuracyDeltaGate = 0.02;
constexpr double kQuantRelTolerance = 1e-3;

std::string density_tag(double density) {
  return "d" + std::to_string(static_cast<int>(std::lround(density * 100)));
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// Best-of-3 timing of `calls` back-to-back invocations of `fn` (the host is
/// shared; the fastest repetition is the least-perturbed estimate).
template <typename Fn>
double time_kernel(Fn&& fn, std::size_t calls) {
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t it = 0; it < calls; ++it) fn();
    const double elapsed = seconds_since(start) / static_cast<double>(calls);
    if (rep == 0 || elapsed < best) best = elapsed;
  }
  return best;
}

/// Calibrate the timed-call count so one measurement covers ~target_secs.
template <typename Fn>
double measure_secs(Fn&& fn, double target_secs) {
  const double once = time_kernel(fn, 1);
  const std::size_t calls = std::clamp<std::size_t>(
      static_cast<std::size_t>(target_secs / std::max(once, 1e-7)), 1, 2000);
  return calls > 1 ? time_kernel(fn, calls) : once;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_options(argc, argv);
  bench::banner("GEMM backends: GFLOP/s on the model's conv/linear shapes, "
                "dense vs spike-sparse, float and quantized tiers");
  bench::BenchReport report("gemm", options);
  report.set("default_backend",
             std::string(util::default_gemm_backend().name()));
  report.set("avx2_cpu", util::cpu_supports_avx2() ? "yes" : "no");
  report.set("avx512_cpu", util::cpu_supports_avx512() ? "yes" : "no");
  const util::GemmBackend* avx512 = util::find_gemm_backend("avx512");
  const bool avx512_measured = avx512 != nullptr && avx512->available();
  report.set("avx512_backend", avx512_measured ? "measured"
                                               : "SKIPPED (unavailable here)");
  if (!avx512_measured) {
    std::printf("NOTE: avx512 backend unavailable on this machine (%s) — its "
                "bitwise identity gate is SKIPPED, not passed.\n",
                avx512 == nullptr ? "not compiled in" : "no AVX-512F CPUID");
  }

  const util::GemmBackend& scalar_ref = *util::find_gemm_backend("scalar_ref");
  // ~50ms per measurement, scaled down for smoke runs.
  const double target_secs = 0.05 * std::min(1.0, options.scale);

  bool all_identical = true;        // float tier, bitwise
  bool quant_within_tolerance = true;  // quantized tier, relative bound
  bool lut_bitwise_matches_spike = true;  // LUT tier vs its spike twin
  // wall-clock totals per (density, backend) across all shapes
  std::map<std::string, double> total_secs;
  // resident weight bytes per backend across all shapes (what each tier
  // keeps in memory for the same model weights)
  std::map<std::string, double> weight_bytes;

  bench::TablePrinter table({"Shape", "m*k*n", "Density", "Backend", "GFLOP/s", "vs blocked"},
                            {14, 16, 8, 13, 9, 11});
  util::CsvWriter csv(options.csv_dir + "/gemm_microbench.csv");
  csv.write_header({"shape", "m", "k", "n", "density", "backend", "gflops", "seconds"});

  for (const GemmShape& s : kShapes) {
    const double flops = 2.0 * static_cast<double>(s.m) * static_cast<double>(s.k) *
                         static_cast<double>(s.n);
    // Quantized copies of this shape's weights, built once per shape from
    // the dense density pass (weights do not depend on activation density).
    util::QuantizedMatrix q8, q4;
    // Observed A-operand density histogram for this shape (10 bins of 0.1
    // width) across all measured passes — what density regime this shape's
    // activations actually put the backends in.
    std::size_t density_hist[10] = {};

    for (const double density : kDensities) {
      util::Rng rng(42);
      std::vector<float> a(s.m * s.k, 0.0f), b(s.k * s.n), c(s.m * s.n);
      for (auto& v : b) v = static_cast<float>(rng.gaussian());
      if (density >= 1.0) {
        for (auto& v : a) v = static_cast<float>(rng.gaussian());
      } else {
        // Binary spikes, like the LIF activations the eval path sees.
        for (auto& v : a) v = rng.bernoulli(density) ? 1.0f : 0.0f;
      }
      std::size_t a_nonzeros = 0;
      for (const float v : a) a_nonzeros += v != 0.0f ? 1 : 0;
      const double observed =
          static_cast<double>(a_nonzeros) / static_cast<double>(a.size());
      report.set(std::string(s.tag) + "_" + density_tag(density) + "_a_density_observed",
                 observed);
      density_hist[std::min<std::size_t>(static_cast<std::size_t>(observed * 10.0), 9)]++;
      std::vector<float> expected(s.m * s.n);
      scalar_ref.gemm(a.data(), b.data(), expected.data(), s.m, s.k, s.n);

      double blocked_gflops = 0.0;
      for (const util::GemmBackend* backend : util::gemm_backends()) {
        if (!backend->available()) continue;
        // Quantized backends run their own section below: timing their
        // float ops here would measure the blocked delegation, not them.
        if (util::as_quantized_backend(backend) != nullptr) continue;
        // Identity gate: the measured kernel must match scalar_ref bitwise.
        backend->gemm(a.data(), b.data(), c.data(), s.m, s.k, s.n);
        if (c != expected) {
          all_identical = false;
          std::printf("IDENTITY MISMATCH: %s on %s %s\n", std::string(backend->name()).c_str(),
                      s.tag, density_tag(density).c_str());
        }

        const double secs = measure_secs(
            [&] { backend->gemm(a.data(), b.data(), c.data(), s.m, s.k, s.n); },
            target_secs);
        const double gflops = flops / secs / 1e9;
        if (backend->name() == "blocked_omp") blocked_gflops = gflops;

        const std::string key = std::string(s.tag) + "_" + density_tag(density) + "_" +
                                std::string(backend->name());
        report.set(key + "_gflops", gflops);
        total_secs[density_tag(density) + "_" + std::string(backend->name())] += secs;
        csv.row(s.tag, static_cast<double>(s.m), static_cast<double>(s.k),
                static_cast<double>(s.n), density, std::string(backend->name()), gflops,
                secs);
        table.row({s.tag,
                   bench::fmt("%zux%zux%zu", s.m, s.k, s.n),
                   bench::fmt("%.2f", density), std::string(backend->name()),
                   bench::fmt("%.2f", gflops),
                   blocked_gflops > 0.0 ? bench::fmt("%.2fx", gflops / blocked_gflops)
                                        : std::string("-")});
      }

      // ---- quantized tier: same activations, packed integer weights.
      // The op is C = A * Q^T with Q[n, k], so quantize the transpose of
      // this shape's B[k, n].
      if (q8.empty()) {
        std::vector<float> w_nk(s.n * s.k);
        for (std::size_t kk = 0; kk < s.k; ++kk) {
          for (std::size_t j = 0; j < s.n; ++j) w_nk[j * s.k + kk] = b[kk * s.n + j];
        }
        q8 = util::QuantizedMatrix::quantize(w_nk.data(), s.n, s.k, {.bits = 8});
        q4 = util::QuantizedMatrix::quantize(w_nk.data(), s.n, s.k, {.bits = 4});
        // LUT tables are derived weight data, built once per matrix outside
        // every timed region — exactly how the layers use them.
        q8.ensure_lut();
        q4.ensure_lut();
      }
      for (util::QuantizedMatrix* q : {&q8, &q4}) {
        // Tolerance gate: the scalar float product of the dequantized
        // weights is what the integer kernels compute up to summation order.
        std::vector<float> deq_b(s.k * s.n);
        for (std::size_t kk = 0; kk < s.k; ++kk) {
          for (std::size_t j = 0; j < s.n; ++j) {
            deq_b[kk * s.n + j] = q->dequantized(j, kk);
          }
        }
        std::vector<float> deq_expected(s.m * s.n);
        scalar_ref.gemm(a.data(), deq_b.data(), deq_expected.data(), s.m, s.k, s.n);
        // The spike backend's output doubles as the bitwise reference for
        // the LUT backend: same integer group sums, same float ordering.
        std::vector<float> spike_c;
        for (const char* variant : {"spike", "lut"}) {
          const std::string qname =
              std::string(q->bits() == 8 ? "int8_" : "int4_") + variant;
          const util::QuantizedGemmBackend* qb =
              util::as_quantized_backend(util::find_gemm_backend(qname));
          qb->qgemm(a.data(), *q, c.data(), s.m, s.k, s.n);
          for (std::size_t i = 0; i < c.size(); ++i) {
            const double bound = kQuantRelTolerance *
                                 (1.0 + std::abs(static_cast<double>(deq_expected[i])));
            if (std::abs(static_cast<double>(c[i]) -
                         static_cast<double>(deq_expected[i])) > bound) {
              quant_within_tolerance = false;
              std::printf("QUANT TOLERANCE MISS: %s on %s %s elem %zu (%g vs %g)\n",
                          qname.c_str(), s.tag, density_tag(density).c_str(), i,
                          static_cast<double>(c[i]),
                          static_cast<double>(deq_expected[i]));
              break;
            }
          }
          if (variant[0] == 's') {
            spike_c = c;
          } else if (c != spike_c) {
            lut_bitwise_matches_spike = false;
            std::printf("LUT/SPIKE MISMATCH: %s on %s %s\n", qname.c_str(), s.tag,
                        density_tag(density).c_str());
          }

          const double secs = measure_secs(
              [&] { qb->qgemm(a.data(), *q, c.data(), s.m, s.k, s.n); }, target_secs);
          const double gflops = flops / secs / 1e9;  // dense-equivalent FLOPs
          const std::string key =
              std::string(s.tag) + "_" + density_tag(density) + "_" + qname;
          report.set(key + "_gflops", gflops);
          total_secs[density_tag(density) + "_" + qname] += secs;
          csv.row(s.tag, static_cast<double>(s.m), static_cast<double>(s.k),
                  static_cast<double>(s.n), density, qname, gflops, secs);
          table.row({s.tag, bench::fmt("%zux%zux%zu", s.m, s.k, s.n),
                     bench::fmt("%.2f", density), qname, bench::fmt("%.2f", gflops),
                     blocked_gflops > 0.0 ? bench::fmt("%.2fx", gflops / blocked_gflops)
                                          : std::string("-")});
        }
      }
    }
    {
      // Per-shape histogram of observed A densities, bins [0,0.1)..[0.9,1].
      std::string hist;
      for (const std::size_t count : density_hist) {
        hist += hist.empty() ? "" : ",";
        hist += std::to_string(count);
      }
      report.set(std::string(s.tag) + "_a_density_hist", hist);
    }

    // Weight footprint of this shape's weights per tier. Float backends all
    // hold the same float matrix; the quantized tiers hold packed codes
    // (the bytes streamed per spike) plus group scales (touched once per
    // group per output row, reported separately).
    const double float_bytes = static_cast<double>(s.k * s.n * sizeof(float));
    for (const util::GemmBackend* backend : util::gemm_backends()) {
      if (util::as_quantized_backend(backend) != nullptr) continue;
      weight_bytes[std::string(backend->name())] += float_bytes;
    }
    weight_bytes["int8_spike"] += static_cast<double>(q8.packed_bytes());
    weight_bytes["int4_spike"] += static_cast<double>(q4.packed_bytes());
    weight_bytes["int8_spike_scales"] += static_cast<double>(q8.scale_bytes());
    weight_bytes["int4_spike_scales"] += static_cast<double>(q4.scale_bytes());
    // The LUT tier holds the same packed codes + scales plus its derived
    // per-chunk mask tables (the speed-for-memory trade, reported so the
    // footprint headline stays honest).
    weight_bytes["int8_lut"] += static_cast<double>(q8.packed_bytes());
    weight_bytes["int4_lut"] += static_cast<double>(q4.packed_bytes());
    weight_bytes["int8_lut_tables"] += static_cast<double>(q8.lut().bytes());
    weight_bytes["int4_lut_tables"] += static_cast<double>(q4.lut().bytes());
  }

  // Per-backend weight-footprint bytes across all model shapes, and the
  // headline reduction ratios for the quantized tiers.
  for (const auto& [backend, bytes] : weight_bytes) {
    report.set("weight_bytes_" + backend, bytes);
  }
  const double float_weight_bytes = weight_bytes["blocked_omp"];
  const double footprint_ratio_int8 = float_weight_bytes / weight_bytes["int8_spike"];
  const double footprint_ratio_int4 = float_weight_bytes / weight_bytes["int4_spike"];
  report.set("footprint_ratio", footprint_ratio_int8);  // headline (INT8 tier)
  report.set("int4_footprint_ratio", footprint_ratio_int4);

  // Headlines: wall-clock over all model shapes vs blocked_omp, per
  // sparsity level (the acceptance gate is the >=70%-sparse regime).
  const auto ratio = [&](const std::string& d, const std::string& name) {
    const auto blocked = total_secs.find(d + "_blocked_omp");
    const auto fast = total_secs.find(d + "_" + name);
    return blocked != total_secs.end() && fast != total_secs.end() && fast->second > 0.0
               ? blocked->second / fast->second
               : 0.0;
  };
  const double sparse70 = ratio("d30", "sparse_spike");
  const double sparse90 = ratio("d10", "sparse_spike");
  report.set("sparse_spike_vs_blocked_omp_speedup_70pct_sparse", sparse70);
  report.set("sparse_spike_vs_blocked_omp_speedup_90pct_sparse", sparse90);
  const double int8_70 = ratio("d30", "int8_spike");
  const double int8_90 = ratio("d10", "int8_spike");
  const double int4_70 = ratio("d30", "int4_spike");
  const double int4_90 = ratio("d10", "int4_spike");
  report.set("int8_spike_vs_blocked_omp_speedup_70pct_sparse", int8_70);
  report.set("int8_spike_vs_blocked_omp_speedup_90pct_sparse", int8_90);
  report.set("int4_spike_vs_blocked_omp_speedup_70pct_sparse", int4_70);
  report.set("int4_spike_vs_blocked_omp_speedup_90pct_sparse", int4_90);
  // LUT tier vs its spike twin: wall-clock across all model shapes. The
  // acceptance gate is INT4 (2 codes/byte makes per-spike unpacking dearest,
  // so the table gather buys the most) in the >= 70%-sparse regime.
  const auto lut_ratio = [&](const std::string& d, const std::string& bits) {
    const auto spike = total_secs.find(d + "_" + bits + "_spike");
    const auto lut = total_secs.find(d + "_" + bits + "_lut");
    return spike != total_secs.end() && lut != total_secs.end() && lut->second > 0.0
               ? spike->second / lut->second
               : 0.0;
  };
  const double lut8_70 = lut_ratio("d30", "int8");
  const double lut4_70 = lut_ratio("d30", "int4");
  const double lut4_90 = lut_ratio("d10", "int4");
  report.set("int8_lut_vs_int8_spike_speedup_70pct_sparse", lut8_70);
  report.set("int4_lut_vs_int4_spike_speedup_70pct_sparse", lut4_70);
  report.set("int4_lut_vs_int4_spike_speedup_90pct_sparse", lut4_90);
  report.set("int8_lut_vs_blocked_omp_speedup_70pct_sparse", ratio("d30", "int8_lut"));
  report.set("int4_lut_vs_blocked_omp_speedup_70pct_sparse", ratio("d30", "int4_lut"));
  report.set("bitwise_identical_to_scalar_ref", all_identical ? "yes" : "NO");
  report.set("quant_within_tolerance", quant_within_tolerance ? "yes" : "NO");
  report.set("lut_bitwise_matches_spike", lut_bitwise_matches_spike ? "yes" : "NO");

  // ---- end-to-end decision gate: quantized tier vs the scalar_ref oracle
  // on trained models, per dataset preset (the tolerance-gated identity
  // contract measured where it matters — exit decisions). Models are
  // trained at the bench's data scale; the flip gate is enforced only at
  // full scale, where margins are real (a smoke-scale model is near chance
  // and its flips measure training, not quantization).
  bool flips_within_gate = true;
  bool adaptive_identical = true;  // armed at every scale: routing is pure speed
  const bool gate_flips = options.scale >= 1.0;
  // Per-preset operating points, DT-SNN style (the paper tunes the exit
  // threshold per dataset): epochs is the training budget that saturates
  // vgg_micro on the preset, theta the entropy threshold of its
  // high-accuracy operating point. Decision margins — not quantizer
  // precision — dominate the flip rate (group-size sweeps 64..2 leave it
  // flat), so the gate is only meaningful where the float model's own
  // decisions have converged.
  struct FlipStage {
    const char* preset;
    std::size_t epochs;
    double theta;
  };
  constexpr FlipStage kFlipStages[] = {
      {"sync10", 60, 0.03},
      {"sync100", 30, 0.15},
      {"syntin", 30, 0.08},
      {"syndvs", 30, 0.35},
  };
  for (const FlipStage& stage : kFlipStages) {
    const std::string preset = stage.preset;
    core::ExperimentSpec spec;
    spec.model = "vgg_micro";
    spec.dataset = preset;
    spec.timesteps = core::preset_timesteps(preset);
    spec.epochs = stage.epochs;
    spec.loss = core::LossKind::kPerTimestep;
    core::Experiment e = bench::run(spec, options);
    const core::EntropyExitPolicy policy(stage.theta);

    // ---- adaptive dispatch decision gate: on this trained model, engine
    // outputs under the density-adaptive dispatcher must be identical to
    // scalar_ref — predictions, exit timesteps, and entropies (the routing
    // may only ever change speed). Armed at every bench scale.
    {
      util::reset_adaptive_gemm_state();
      const core::InferenceRequest request = core::InferenceRequest::first_n(
          std::min<std::size_t>(64, e.bundle.test->size()));
      core::BatchedSequentialEngine engine(e.net, policy, spec.timesteps,
                                           /*batch_size=*/8);
      util::GemmContext ref_ctx(*util::find_gemm_backend("scalar_ref"));
      e.net.set_gemm_context(&ref_ctx);
      const auto ref_results = engine.run(*e.bundle.test, request);
      util::GemmContext ada_ctx(*util::find_gemm_backend("adaptive"));
      e.net.set_gemm_context(&ada_ctx);
      const auto ada_results = engine.run(*e.bundle.test, request);
      e.net.set_gemm_context(nullptr);
      bool identical = ada_results.size() == ref_results.size();
      for (std::size_t i = 0; identical && i < ada_results.size(); ++i) {
        identical = ada_results[i].predicted_class == ref_results[i].predicted_class &&
                    ada_results[i].exit_timestep == ref_results[i].exit_timestep &&
                    ada_results[i].final_entropy == ref_results[i].final_entropy;
      }
      if (!identical) {
        adaptive_identical = false;
        std::printf("ADAPTIVE DECISION MISMATCH on %s\n", preset.c_str());
      }
      std::size_t sites = 0, sparse_sites = 0, switches = 0, routed_calls = 0;
      for (const util::AdaptiveGemmDecision& d : util::adaptive_gemm_decisions()) {
        ++sites;
        sparse_sites += d.sparse ? 1 : 0;
        switches += d.switches;
        routed_calls += d.calls;
      }
      report.set("adaptive_" + preset + "_decisions_identical", identical ? "yes" : "NO");
      report.set("adaptive_" + preset + "_call_sites", static_cast<double>(sites));
      report.set("adaptive_" + preset + "_sparse_routed_sites",
                 static_cast<double>(sparse_sites));
      report.set("adaptive_" + preset + "_route_switches", static_cast<double>(switches));
      report.set("adaptive_" + preset + "_routed_calls", static_cast<double>(routed_calls));
      std::printf("\n%s: adaptive dispatch identical to scalar_ref: %s "
                  "(%zu call sites, %zu sparse-routed, %zu switches, %zu NN calls)\n",
                  preset.c_str(), identical ? "yes" : "NO", sites, sparse_sites,
                  switches, routed_calls);
      util::reset_adaptive_gemm_state();
    }

    std::printf("\n%s: quantized-tier decision gate (%zu-timestep budget, "
                "theta=%.2f)\n",
                preset.c_str(), spec.timesteps, stage.theta);
    for (const int bits : {8, 4}) {
      core::QuantCalibrationConfig config;
      config.spec.bits = bits;
      config.max_samples = 256;
      config.flip_rate_tolerance = bits == 8 ? kInt8FlipGate : kInt4FlipGate;
      config.accuracy_delta_tolerance = kAccuracyDeltaGate;
      const core::QuantCalibrationReport r = core::calibrate_quantized(
          e.net, *e.bundle.test, policy, spec.timesteps, config);
      const std::string prefix = "quant_" + preset + "_int" + std::to_string(bits);
      report.set(prefix + "_prediction_flip_rate", r.diff.prediction_flip_rate);
      report.set(prefix + "_exit_flip_rate", r.diff.exit_flip_rate);
      report.set(prefix + "_accuracy_delta", r.accuracy_delta);
      report.set(prefix + "_accuracy_float", r.accuracy_float);
      report.set(prefix + "_samples", static_cast<double>(r.samples));
      std::printf(
          "  int%d: flips %.2f%% (exit %.2f%%), accuracy %+.2fpp (float %.2f%%), "
          "footprint %.1fx over %zu samples%s\n",
          bits, 100 * r.diff.prediction_flip_rate, 100 * r.diff.exit_flip_rate,
          100 * r.accuracy_delta, 100 * r.accuracy_float, r.footprint_ratio, r.samples,
          gate_flips ? (r.within_tolerance ? "  [gate: ok]" : "  [gate: FAIL]") : "");
      if (gate_flips && !r.within_tolerance) flips_within_gate = false;
    }
  }
  report.set("quant_flip_gate_enforced", gate_flips ? "yes" : "no (smoke scale)");
  report.set("quant_flips_within_gate", flips_within_gate ? "yes" : "NO");

  // ---- acceptance gates -------------------------------------------------
  const bool speed_ok = int8_70 >= kInt8SpeedupGate;
  const bool lut_speed_ok = lut4_70 >= kInt4LutSpeedupGate;
  const bool footprint_ok = footprint_ratio_int8 >= kInt8FootprintGate &&
                            footprint_ratio_int4 >= kInt4FootprintGate;
  report.set("adaptive_decisions_identical", adaptive_identical ? "yes" : "NO");
  std::printf(
      "\nFloat backends bitwise identical to scalar_ref on every measured shape: %s "
      "(avx512: %s)\n"
      "Quantized kernels within %.0e of their dequantized product: %s\n"
      "LUT backends bitwise identical to their spike counterparts: %s\n"
      "sparse_spike vs blocked_omp wall-clock: %.2fx at 70%% sparsity, %.2fx at 90%%\n"
      "int8_spike   vs blocked_omp wall-clock: %.2fx at 70%% sparsity, %.2fx at 90%% "
      "[gate >= %.1fx: %s]\n"
      "int4_spike   vs blocked_omp wall-clock: %.2fx at 70%% sparsity, %.2fx at 90%%\n"
      "int4_lut     vs int4_spike  wall-clock: %.2fx at 70%% sparsity, %.2fx at 90%% "
      "[gate >= %.1fx: %s]  (int8_lut: %.2fx at 70%%)\n"
      "adaptive dispatch decisions identical on every preset: %s\n"
      "weight footprint: %.2fx (INT8) / %.2fx (INT4) smaller than float "
      "[gates >= %.0fx / >= %.0fx: %s]\n"
      "quantized decision gate: %s\n",
      all_identical ? "yes" : "NO",
      avx512_measured ? "measured" : "SKIPPED, unavailable here",
      kQuantRelTolerance, quant_within_tolerance ? "yes" : "NO",
      lut_bitwise_matches_spike ? "yes" : "NO", sparse70, sparse90, int8_70, int8_90,
      kInt8SpeedupGate, speed_ok ? "ok" : "FAIL", int4_70, int4_90, lut4_70, lut4_90,
      kInt4LutSpeedupGate, lut_speed_ok ? "ok" : "FAIL", lut8_70,
      adaptive_identical ? "ok" : "FAIL", footprint_ratio_int8, footprint_ratio_int4,
      kInt8FootprintGate, kInt4FootprintGate, footprint_ok ? "ok" : "FAIL",
      flips_within_gate ? "ok" : "FAIL");
  return all_identical && quant_within_tolerance && lut_bitwise_matches_spike &&
                 speed_ok && lut_speed_ok && footprint_ok && adaptive_identical &&
                 flips_within_gate
             ? 0
             : 1;
}
