// GEMM backend microbenchmark: GFLOP/s of every registered backend on the
// GEMM shapes the models actually run (im2col convolution products and the
// classifier matmul of vgg_mini/resnet_mini at batch 32 on 16x16 frames),
// with dense activations and with binary spike activations at 70% / 90%
// sparsity — the operating regime of the hidden LIF layers.
//
// Two tiers, two contracts (util/gemm.h):
//   * float backends are checked bitwise against scalar_ref; any mismatch
//     fails the run;
//   * the quantized backends (int8_spike / int4_spike) run their weights
//     through util::QuantizedMatrix and are checked against the scalar
//     float product of the DEQUANTIZED weights within a relative bound
//     (their kernel is exact integer accumulation + one flush per scale
//     group, so only float summation order separates the two), plus the
//     end-to-end decision gate below.
//
// Emits BENCH_gemm.json via bench::BenchReport: per-(shape, density,
// backend) GFLOP/s, per-density backend totals, weight-footprint bytes per
// backend with the headline footprint_ratio, the headline
// sparse_spike/int8_spike/int4_spike-vs-blocked_omp speedups, and — at full
// scale — the per-preset decision-flip-rate of the quantized tier versus
// the scalar_ref oracle on trained models (core::calibrate_quantized).
//
// In-bench acceptance gates (nonzero exit on failure):
//   * every float backend bitwise-identical to scalar_ref;
//   * quantized kernels within tolerance of their dequantized product;
//   * int8_spike >= 1.5x blocked_omp wall-clock at >= 70% spike sparsity;
//   * weight-footprint reduction >= 4x (INT8) and >= 8x (INT4);
//   * at full scale: INT8 prediction-flip-rate <= 1% and |accuracy delta|
//     <= 2pp versus scalar_ref on every dataset preset (INT4 is reported
//     and held to a documented looser 5% — a 16-level weight grid on
//     sub-percent decision margins is the paper's accuracy/footprint
//     trade-off, not a kernel defect).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/evaluator.h"
#include "core/exit_policy.h"
#include "core/quantize.h"
#include "util/gemm.h"
#include "util/quant.h"
#include "util/rng.h"

using namespace dtsnn;

namespace {

/// One A-stationary (NN) GEMM shape from the model zoo; m counts im2col
/// rows (batch * output pixels) for convs and batch rows for the linear.
struct GemmShape {
  const char* tag;
  std::size_t m, k, n;
};

// vgg_mini plan (32,32,M,64,64,M,128,M) and resnet_mini stage tail on
// 3x16x16 inputs, batch 32; the classifier is the batch-32 linear.
constexpr GemmShape kShapes[] = {
    {"vgg_conv1", 32 * 16 * 16, 3 * 9, 32},    // 3->32 @ 16x16
    {"vgg_conv2", 32 * 16 * 16, 32 * 9, 32},   // 32->32 @ 16x16
    {"vgg_conv3", 32 * 8 * 8, 32 * 9, 64},     // 32->64 @ 8x8
    {"vgg_conv4", 32 * 8 * 8, 64 * 9, 64},     // 64->64 @ 8x8
    {"vgg_conv5", 32 * 4 * 4, 64 * 9, 128},    // 64->128 @ 4x4
    {"resnet_stage3", 32 * 4 * 4, 32 * 9, 64}, // stage-2->3 projection @ 4x4
    {"classifier", 32, 128 * 2 * 2, 10},       // vgg_mini linear head
};

constexpr double kDensities[] = {1.0, 0.30, 0.10};  // dense, 70%, 90% sparse

// Gate thresholds (see file comment).
constexpr double kInt8SpeedupGate = 1.5;
constexpr double kInt8FootprintGate = 4.0;
constexpr double kInt4FootprintGate = 8.0;
constexpr double kInt8FlipGate = 0.01;
constexpr double kInt4FlipGate = 0.08;
constexpr double kAccuracyDeltaGate = 0.02;
constexpr double kQuantRelTolerance = 1e-3;

std::string density_tag(double density) {
  return "d" + std::to_string(static_cast<int>(std::lround(density * 100)));
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// Best-of-3 timing of `calls` back-to-back invocations of `fn` (the host is
/// shared; the fastest repetition is the least-perturbed estimate).
template <typename Fn>
double time_kernel(Fn&& fn, std::size_t calls) {
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t it = 0; it < calls; ++it) fn();
    const double elapsed = seconds_since(start) / static_cast<double>(calls);
    if (rep == 0 || elapsed < best) best = elapsed;
  }
  return best;
}

/// Calibrate the timed-call count so one measurement covers ~target_secs.
template <typename Fn>
double measure_secs(Fn&& fn, double target_secs) {
  const double once = time_kernel(fn, 1);
  const std::size_t calls = std::clamp<std::size_t>(
      static_cast<std::size_t>(target_secs / std::max(once, 1e-7)), 1, 2000);
  return calls > 1 ? time_kernel(fn, calls) : once;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_options(argc, argv);
  bench::banner("GEMM backends: GFLOP/s on the model's conv/linear shapes, "
                "dense vs spike-sparse, float and quantized tiers");
  bench::BenchReport report("gemm", options);
  report.set("default_backend",
             std::string(util::default_gemm_backend().name()));
  report.set("avx2_cpu", util::cpu_supports_avx2() ? "yes" : "no");

  const util::GemmBackend& scalar_ref = *util::find_gemm_backend("scalar_ref");
  // ~50ms per measurement, scaled down for smoke runs.
  const double target_secs = 0.05 * std::min(1.0, options.scale);

  bool all_identical = true;        // float tier, bitwise
  bool quant_within_tolerance = true;  // quantized tier, relative bound
  // wall-clock totals per (density, backend) across all shapes
  std::map<std::string, double> total_secs;
  // resident weight bytes per backend across all shapes (what each tier
  // keeps in memory for the same model weights)
  std::map<std::string, double> weight_bytes;

  bench::TablePrinter table({"Shape", "m*k*n", "Density", "Backend", "GFLOP/s", "vs blocked"},
                            {14, 16, 8, 13, 9, 11});
  util::CsvWriter csv(options.csv_dir + "/gemm_microbench.csv");
  csv.write_header({"shape", "m", "k", "n", "density", "backend", "gflops", "seconds"});

  for (const GemmShape& s : kShapes) {
    const double flops = 2.0 * static_cast<double>(s.m) * static_cast<double>(s.k) *
                         static_cast<double>(s.n);
    // Quantized copies of this shape's weights, built once per shape from
    // the dense density pass (weights do not depend on activation density).
    util::QuantizedMatrix q8, q4;

    for (const double density : kDensities) {
      util::Rng rng(42);
      std::vector<float> a(s.m * s.k, 0.0f), b(s.k * s.n), c(s.m * s.n);
      for (auto& v : b) v = static_cast<float>(rng.gaussian());
      if (density >= 1.0) {
        for (auto& v : a) v = static_cast<float>(rng.gaussian());
      } else {
        // Binary spikes, like the LIF activations the eval path sees.
        for (auto& v : a) v = rng.bernoulli(density) ? 1.0f : 0.0f;
      }
      std::vector<float> expected(s.m * s.n);
      scalar_ref.gemm(a.data(), b.data(), expected.data(), s.m, s.k, s.n);

      double blocked_gflops = 0.0;
      for (const util::GemmBackend* backend : util::gemm_backends()) {
        if (!backend->available()) continue;
        // Quantized backends run their own section below: timing their
        // float ops here would measure the blocked delegation, not them.
        if (util::as_quantized_backend(backend) != nullptr) continue;
        // Identity gate: the measured kernel must match scalar_ref bitwise.
        backend->gemm(a.data(), b.data(), c.data(), s.m, s.k, s.n);
        if (c != expected) {
          all_identical = false;
          std::printf("IDENTITY MISMATCH: %s on %s %s\n", std::string(backend->name()).c_str(),
                      s.tag, density_tag(density).c_str());
        }

        const double secs = measure_secs(
            [&] { backend->gemm(a.data(), b.data(), c.data(), s.m, s.k, s.n); },
            target_secs);
        const double gflops = flops / secs / 1e9;
        if (backend->name() == "blocked_omp") blocked_gflops = gflops;

        const std::string key = std::string(s.tag) + "_" + density_tag(density) + "_" +
                                std::string(backend->name());
        report.set(key + "_gflops", gflops);
        total_secs[density_tag(density) + "_" + std::string(backend->name())] += secs;
        csv.row(s.tag, static_cast<double>(s.m), static_cast<double>(s.k),
                static_cast<double>(s.n), density, std::string(backend->name()), gflops,
                secs);
        table.row({s.tag,
                   bench::fmt("%zux%zux%zu", s.m, s.k, s.n),
                   bench::fmt("%.2f", density), std::string(backend->name()),
                   bench::fmt("%.2f", gflops),
                   blocked_gflops > 0.0 ? bench::fmt("%.2fx", gflops / blocked_gflops)
                                        : std::string("-")});
      }

      // ---- quantized tier: same activations, packed integer weights.
      // The op is C = A * Q^T with Q[n, k], so quantize the transpose of
      // this shape's B[k, n].
      if (q8.empty()) {
        std::vector<float> w_nk(s.n * s.k);
        for (std::size_t kk = 0; kk < s.k; ++kk) {
          for (std::size_t j = 0; j < s.n; ++j) w_nk[j * s.k + kk] = b[kk * s.n + j];
        }
        q8 = util::QuantizedMatrix::quantize(w_nk.data(), s.n, s.k, {.bits = 8});
        q4 = util::QuantizedMatrix::quantize(w_nk.data(), s.n, s.k, {.bits = 4});
      }
      for (const util::QuantizedMatrix* q : {&q8, &q4}) {
        const util::QuantizedGemmBackend* qb = util::as_quantized_backend(
            util::find_gemm_backend(q->bits() == 8 ? "int8_spike" : "int4_spike"));
        // Tolerance gate: the scalar float product of the dequantized
        // weights is what the integer kernel computes up to summation order.
        std::vector<float> deq_b(s.k * s.n);
        for (std::size_t kk = 0; kk < s.k; ++kk) {
          for (std::size_t j = 0; j < s.n; ++j) {
            deq_b[kk * s.n + j] = q->dequantized(j, kk);
          }
        }
        std::vector<float> deq_expected(s.m * s.n);
        scalar_ref.gemm(a.data(), deq_b.data(), deq_expected.data(), s.m, s.k, s.n);
        qb->qgemm(a.data(), *q, c.data(), s.m, s.k, s.n);
        for (std::size_t i = 0; i < c.size(); ++i) {
          const double bound =
              kQuantRelTolerance * (1.0 + std::abs(static_cast<double>(deq_expected[i])));
          if (std::abs(static_cast<double>(c[i]) -
                       static_cast<double>(deq_expected[i])) > bound) {
            quant_within_tolerance = false;
            std::printf("QUANT TOLERANCE MISS: %s on %s %s elem %zu (%g vs %g)\n",
                        std::string(qb->name()).c_str(), s.tag,
                        density_tag(density).c_str(), i, static_cast<double>(c[i]),
                        static_cast<double>(deq_expected[i]));
            break;
          }
        }

        const double secs = measure_secs(
            [&] { qb->qgemm(a.data(), *q, c.data(), s.m, s.k, s.n); }, target_secs);
        const double gflops = flops / secs / 1e9;  // dense-equivalent FLOPs
        const std::string key = std::string(s.tag) + "_" + density_tag(density) + "_" +
                                std::string(qb->name());
        report.set(key + "_gflops", gflops);
        total_secs[density_tag(density) + "_" + std::string(qb->name())] += secs;
        csv.row(s.tag, static_cast<double>(s.m), static_cast<double>(s.k),
                static_cast<double>(s.n), density, std::string(qb->name()), gflops, secs);
        table.row({s.tag, bench::fmt("%zux%zux%zu", s.m, s.k, s.n),
                   bench::fmt("%.2f", density), std::string(qb->name()),
                   bench::fmt("%.2f", gflops),
                   blocked_gflops > 0.0 ? bench::fmt("%.2fx", gflops / blocked_gflops)
                                        : std::string("-")});
      }
    }

    // Weight footprint of this shape's weights per tier. Float backends all
    // hold the same float matrix; the quantized tiers hold packed codes
    // (the bytes streamed per spike) plus group scales (touched once per
    // group per output row, reported separately).
    const double float_bytes = static_cast<double>(s.k * s.n * sizeof(float));
    for (const util::GemmBackend* backend : util::gemm_backends()) {
      if (util::as_quantized_backend(backend) != nullptr) continue;
      weight_bytes[std::string(backend->name())] += float_bytes;
    }
    weight_bytes["int8_spike"] += static_cast<double>(q8.packed_bytes());
    weight_bytes["int4_spike"] += static_cast<double>(q4.packed_bytes());
    weight_bytes["int8_spike_scales"] += static_cast<double>(q8.scale_bytes());
    weight_bytes["int4_spike_scales"] += static_cast<double>(q4.scale_bytes());
  }

  // Per-backend weight-footprint bytes across all model shapes, and the
  // headline reduction ratios for the quantized tiers.
  for (const auto& [backend, bytes] : weight_bytes) {
    report.set("weight_bytes_" + backend, bytes);
  }
  const double float_weight_bytes = weight_bytes["blocked_omp"];
  const double footprint_ratio_int8 = float_weight_bytes / weight_bytes["int8_spike"];
  const double footprint_ratio_int4 = float_weight_bytes / weight_bytes["int4_spike"];
  report.set("footprint_ratio", footprint_ratio_int8);  // headline (INT8 tier)
  report.set("int4_footprint_ratio", footprint_ratio_int4);

  // Headlines: wall-clock over all model shapes vs blocked_omp, per
  // sparsity level (the acceptance gate is the >=70%-sparse regime).
  const auto ratio = [&](const std::string& d, const std::string& name) {
    const auto blocked = total_secs.find(d + "_blocked_omp");
    const auto fast = total_secs.find(d + "_" + name);
    return blocked != total_secs.end() && fast != total_secs.end() && fast->second > 0.0
               ? blocked->second / fast->second
               : 0.0;
  };
  const double sparse70 = ratio("d30", "sparse_spike");
  const double sparse90 = ratio("d10", "sparse_spike");
  report.set("sparse_spike_vs_blocked_omp_speedup_70pct_sparse", sparse70);
  report.set("sparse_spike_vs_blocked_omp_speedup_90pct_sparse", sparse90);
  const double int8_70 = ratio("d30", "int8_spike");
  const double int8_90 = ratio("d10", "int8_spike");
  const double int4_70 = ratio("d30", "int4_spike");
  const double int4_90 = ratio("d10", "int4_spike");
  report.set("int8_spike_vs_blocked_omp_speedup_70pct_sparse", int8_70);
  report.set("int8_spike_vs_blocked_omp_speedup_90pct_sparse", int8_90);
  report.set("int4_spike_vs_blocked_omp_speedup_70pct_sparse", int4_70);
  report.set("int4_spike_vs_blocked_omp_speedup_90pct_sparse", int4_90);
  report.set("bitwise_identical_to_scalar_ref", all_identical ? "yes" : "NO");
  report.set("quant_within_tolerance", quant_within_tolerance ? "yes" : "NO");

  // ---- end-to-end decision gate: quantized tier vs the scalar_ref oracle
  // on trained models, per dataset preset (the tolerance-gated identity
  // contract measured where it matters — exit decisions). Models are
  // trained at the bench's data scale; the flip gate is enforced only at
  // full scale, where margins are real (a smoke-scale model is near chance
  // and its flips measure training, not quantization).
  bool flips_within_gate = true;
  const bool gate_flips = options.scale >= 1.0;
  // Per-preset operating points, DT-SNN style (the paper tunes the exit
  // threshold per dataset): epochs is the training budget that saturates
  // vgg_micro on the preset, theta the entropy threshold of its
  // high-accuracy operating point. Decision margins — not quantizer
  // precision — dominate the flip rate (group-size sweeps 64..2 leave it
  // flat), so the gate is only meaningful where the float model's own
  // decisions have converged.
  struct FlipStage {
    const char* preset;
    std::size_t epochs;
    double theta;
  };
  constexpr FlipStage kFlipStages[] = {
      {"sync10", 60, 0.03},
      {"sync100", 30, 0.15},
      {"syntin", 30, 0.08},
      {"syndvs", 30, 0.35},
  };
  for (const FlipStage& stage : kFlipStages) {
    const std::string preset = stage.preset;
    core::ExperimentSpec spec;
    spec.model = "vgg_micro";
    spec.dataset = preset;
    spec.timesteps = core::preset_timesteps(preset);
    spec.epochs = stage.epochs;
    spec.loss = core::LossKind::kPerTimestep;
    core::Experiment e = bench::run(spec, options);
    const core::EntropyExitPolicy policy(stage.theta);

    std::printf("\n%s: quantized-tier decision gate (%zu-timestep budget, "
                "theta=%.2f)\n",
                preset.c_str(), spec.timesteps, stage.theta);
    for (const int bits : {8, 4}) {
      core::QuantCalibrationConfig config;
      config.spec.bits = bits;
      config.max_samples = 256;
      config.flip_rate_tolerance = bits == 8 ? kInt8FlipGate : kInt4FlipGate;
      config.accuracy_delta_tolerance = kAccuracyDeltaGate;
      const core::QuantCalibrationReport r = core::calibrate_quantized(
          e.net, *e.bundle.test, policy, spec.timesteps, config);
      const std::string prefix = "quant_" + preset + "_int" + std::to_string(bits);
      report.set(prefix + "_prediction_flip_rate", r.diff.prediction_flip_rate);
      report.set(prefix + "_exit_flip_rate", r.diff.exit_flip_rate);
      report.set(prefix + "_accuracy_delta", r.accuracy_delta);
      report.set(prefix + "_accuracy_float", r.accuracy_float);
      report.set(prefix + "_samples", static_cast<double>(r.samples));
      std::printf(
          "  int%d: flips %.2f%% (exit %.2f%%), accuracy %+.2fpp (float %.2f%%), "
          "footprint %.1fx over %zu samples%s\n",
          bits, 100 * r.diff.prediction_flip_rate, 100 * r.diff.exit_flip_rate,
          100 * r.accuracy_delta, 100 * r.accuracy_float, r.footprint_ratio, r.samples,
          gate_flips ? (r.within_tolerance ? "  [gate: ok]" : "  [gate: FAIL]") : "");
      if (gate_flips && !r.within_tolerance) flips_within_gate = false;
    }
  }
  report.set("quant_flip_gate_enforced", gate_flips ? "yes" : "no (smoke scale)");
  report.set("quant_flips_within_gate", flips_within_gate ? "yes" : "NO");

  // ---- acceptance gates -------------------------------------------------
  const bool speed_ok = int8_70 >= kInt8SpeedupGate;
  const bool footprint_ok = footprint_ratio_int8 >= kInt8FootprintGate &&
                            footprint_ratio_int4 >= kInt4FootprintGate;
  std::printf(
      "\nFloat backends bitwise identical to scalar_ref on every measured shape: %s\n"
      "Quantized kernels within %.0e of their dequantized product: %s\n"
      "sparse_spike vs blocked_omp wall-clock: %.2fx at 70%% sparsity, %.2fx at 90%%\n"
      "int8_spike   vs blocked_omp wall-clock: %.2fx at 70%% sparsity, %.2fx at 90%% "
      "[gate >= %.1fx: %s]\n"
      "int4_spike   vs blocked_omp wall-clock: %.2fx at 70%% sparsity, %.2fx at 90%%\n"
      "weight footprint: %.2fx (INT8) / %.2fx (INT4) smaller than float "
      "[gates >= %.0fx / >= %.0fx: %s]\n"
      "quantized decision gate: %s\n",
      all_identical ? "yes" : "NO", kQuantRelTolerance,
      quant_within_tolerance ? "yes" : "NO", sparse70, sparse90, int8_70, int8_90,
      kInt8SpeedupGate, speed_ok ? "ok" : "FAIL", int4_70, int4_90,
      footprint_ratio_int8, footprint_ratio_int4, kInt8FootprintGate,
      kInt4FootprintGate, footprint_ok ? "ok" : "FAIL",
      flips_within_gate ? "ok" : "FAIL");
  return all_identical && quant_within_tolerance && speed_ok && footprint_ok &&
                 flips_within_gate
             ? 0
             : 1;
}
