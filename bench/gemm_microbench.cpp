// GEMM backend microbenchmark: GFLOP/s of every registered backend on the
// GEMM shapes the models actually run (im2col convolution products and the
// classifier matmul of vgg_mini/resnet_mini at batch 32 on 16x16 frames),
// with dense activations and with binary spike activations at 70% / 90%
// sparsity — the operating regime of the hidden LIF layers.
//
// Emits BENCH_gemm.json via bench::BenchReport: per-(shape, density,
// backend) GFLOP/s, per-density backend totals, and the headline
// sparse_spike-vs-blocked_omp speedups at 70% and 90% sparsity. Every
// measured output is also checked bitwise against scalar_ref (the identity
// contract of util/gemm.h); the process exits nonzero on any mismatch.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "util/gemm.h"
#include "util/rng.h"

using namespace dtsnn;

namespace {

/// One A-stationary (NN) GEMM shape from the model zoo; m counts im2col
/// rows (batch * output pixels) for convs and batch rows for the linear.
struct GemmShape {
  const char* tag;
  std::size_t m, k, n;
};

// vgg_mini plan (32,32,M,64,64,M,128,M) and resnet_mini stage tail on
// 3x16x16 inputs, batch 32; the classifier is the batch-32 linear.
constexpr GemmShape kShapes[] = {
    {"vgg_conv1", 32 * 16 * 16, 3 * 9, 32},    // 3->32 @ 16x16
    {"vgg_conv2", 32 * 16 * 16, 32 * 9, 32},   // 32->32 @ 16x16
    {"vgg_conv3", 32 * 8 * 8, 32 * 9, 64},     // 32->64 @ 8x8
    {"vgg_conv4", 32 * 8 * 8, 64 * 9, 64},     // 64->64 @ 8x8
    {"vgg_conv5", 32 * 4 * 4, 64 * 9, 128},    // 64->128 @ 4x4
    {"resnet_stage3", 32 * 4 * 4, 32 * 9, 64}, // stage-2->3 projection @ 4x4
    {"classifier", 32, 128 * 2 * 2, 10},       // vgg_mini linear head
};

constexpr double kDensities[] = {1.0, 0.30, 0.10};  // dense, 70%, 90% sparse

std::string density_tag(double density) {
  return "d" + std::to_string(static_cast<int>(std::lround(density * 100)));
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// Best-of-3 timing of `calls` back-to-back kernel invocations (the host is
/// shared; the fastest repetition is the least-perturbed estimate).
double time_gemm(const util::GemmBackend& backend, const float* a, const float* b,
                 float* c, const GemmShape& s, std::size_t calls) {
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t it = 0; it < calls; ++it) {
      backend.gemm(a, b, c, s.m, s.k, s.n);
    }
    const double elapsed = seconds_since(start) / static_cast<double>(calls);
    if (rep == 0 || elapsed < best) best = elapsed;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_options(argc, argv);
  bench::banner("GEMM backends: GFLOP/s on the model's conv/linear shapes, "
                "dense vs spike-sparse");
  bench::BenchReport report("gemm", options);
  report.set("default_backend",
             std::string(util::default_gemm_backend().name()));
  report.set("avx2_cpu", util::cpu_supports_avx2() ? "yes" : "no");

  const util::GemmBackend& scalar_ref = *util::find_gemm_backend("scalar_ref");
  // ~50ms per measurement, scaled down for smoke runs.
  const double target_secs = 0.05 * std::min(1.0, options.scale);

  bool all_identical = true;
  // wall-clock totals per (density, backend) across all shapes
  std::map<std::string, double> total_secs;

  bench::TablePrinter table({"Shape", "m*k*n", "Density", "Backend", "GFLOP/s", "vs blocked"},
                            {14, 16, 8, 13, 9, 11});
  util::CsvWriter csv(options.csv_dir + "/gemm_microbench.csv");
  csv.write_header({"shape", "m", "k", "n", "density", "backend", "gflops", "seconds"});

  for (const GemmShape& s : kShapes) {
    const double flops = 2.0 * static_cast<double>(s.m) * static_cast<double>(s.k) *
                         static_cast<double>(s.n);
    for (const double density : kDensities) {
      util::Rng rng(42);
      std::vector<float> a(s.m * s.k, 0.0f), b(s.k * s.n), c(s.m * s.n);
      for (auto& v : b) v = static_cast<float>(rng.gaussian());
      if (density >= 1.0) {
        for (auto& v : a) v = static_cast<float>(rng.gaussian());
      } else {
        // Binary spikes, like the LIF activations the eval path sees.
        for (auto& v : a) v = rng.bernoulli(density) ? 1.0f : 0.0f;
      }
      std::vector<float> expected(s.m * s.n);
      scalar_ref.gemm(a.data(), b.data(), expected.data(), s.m, s.k, s.n);

      double blocked_gflops = 0.0;
      for (const util::GemmBackend* backend : util::gemm_backends()) {
        if (!backend->available()) continue;
        // Identity gate: the measured kernel must match scalar_ref bitwise.
        backend->gemm(a.data(), b.data(), c.data(), s.m, s.k, s.n);
        if (c != expected) {
          all_identical = false;
          std::printf("IDENTITY MISMATCH: %s on %s %s\n", std::string(backend->name()).c_str(),
                      s.tag, density_tag(density).c_str());
        }

        const double once =
            time_gemm(*backend, a.data(), b.data(), c.data(), s, /*calls=*/1);
        const std::size_t calls = std::clamp<std::size_t>(
            static_cast<std::size_t>(target_secs / std::max(once, 1e-7)), 1, 2000);
        const double secs =
            calls > 1 ? time_gemm(*backend, a.data(), b.data(), c.data(), s, calls)
                      : once;
        const double gflops = flops / secs / 1e9;
        if (backend->name() == "blocked_omp") blocked_gflops = gflops;

        const std::string key = std::string(s.tag) + "_" + density_tag(density) + "_" +
                                std::string(backend->name());
        report.set(key + "_gflops", gflops);
        total_secs[density_tag(density) + "_" + std::string(backend->name())] += secs;
        csv.row(s.tag, static_cast<double>(s.m), static_cast<double>(s.k),
                static_cast<double>(s.n), density, std::string(backend->name()), gflops,
                secs);
        table.row({s.tag,
                   bench::fmt("%zux%zux%zu", s.m, s.k, s.n),
                   bench::fmt("%.2f", density), std::string(backend->name()),
                   bench::fmt("%.2f", gflops),
                   blocked_gflops > 0.0 ? bench::fmt("%.2fx", gflops / blocked_gflops)
                                        : std::string("-")});
      }
    }
  }

  // Headline: sparse_spike vs blocked_omp wall-clock over all model shapes,
  // per sparsity level (the acceptance gate is the >=70%-sparse regime).
  double speedup70 = 0.0, speedup90 = 0.0;
  if (util::find_gemm_backend("sparse_spike") != nullptr) {
    const auto ratio = [&](const std::string& d) {
      const auto blocked = total_secs.find(d + "_blocked_omp");
      const auto sparse = total_secs.find(d + "_sparse_spike");
      return blocked != total_secs.end() && sparse != total_secs.end() &&
                     sparse->second > 0.0
                 ? blocked->second / sparse->second
                 : 0.0;
    };
    speedup70 = ratio("d30");
    speedup90 = ratio("d10");
    report.set("sparse_spike_vs_blocked_omp_speedup_70pct_sparse", speedup70);
    report.set("sparse_spike_vs_blocked_omp_speedup_90pct_sparse", speedup90);
  }
  report.set("bitwise_identical_to_scalar_ref", all_identical ? "yes" : "NO");

  std::printf(
      "\nAll backends bitwise identical to scalar_ref on every measured shape: %s\n"
      "sparse_spike vs blocked_omp wall-clock: %.2fx at 70%% sparsity, %.2fx at 90%%\n"
      "(binary spike operands; the CSR compress pass plus the multiply-free\n"
      "unit-spike path is what the dense blocked kernel's per-element zero\n"
      "test cannot amortize).\n",
      all_identical ? "yes" : "NO", speedup70, speedup90);
  return all_identical ? 0 : 1;
}
