// Serving-fleet bench: scheduler policies under a multi-tenant arrival trace.
//
// A serve::ServingFleet (two worker pools over copy_network_state replicas,
// one admission queue) replays a seeded two-class trace — a deadline-bound
// "interactive" Poisson stream and a bursty no-deadline "bulk" stream
// (util::make_arrival_trace multi-class overload; the workload shape never
// touches wall-clock randomness). The same trace is replayed once per
// scheduler policy (fifo / edf / weighted_fair) and the bench reports, per
// class and per policy, end-to-end latency p50/p99/p99.9 and the
// deadline-miss rate — the SLO view the scheduler subsystem is graded on:
// EDF should cut the interactive class's miss rate relative to FIFO by
// admitting urgent work ahead of queued bulk bursts.
//
// A decision-identity hard gate re-runs every served sample through the
// offline batch-1 SequentialEngine oracle. Samples that exited at the
// oracle's timestep must match it bitwise (prediction, exit timestep, exit
// entropy). A deadline-forced sample legitimately exits *earlier*; it is
// compared against the oracle truncated to the observed exit timestep,
// which must reproduce the decision exactly (the forced exit reports the
// same quantities a budget exhaustion would at that boundary). Any other
// divergence fails the bench: scheduler policy, tenant mix, worker count,
// and arrival order must never change a decision.
//
// BENCH_serving_fleet.json carries per-policy-per-class percentile and
// miss-rate blocks plus the identity gate and the edf-vs-fifo headline.

#include <chrono>
#include <cstdio>
#include <future>
#include <map>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "serve/fleet.h"
#include "util/arrival_trace.h"
#include "util/gemm.h"

using namespace dtsnn;

namespace {

constexpr std::size_t kInteractive = 0;  ///< trace class / report row
constexpr std::size_t kBulk = 1;
const char* const kClassName[2] = {"interactive", "bulk"};

struct FleetRun {
  serve::FleetStats stats;
  std::vector<core::InferenceResult> results;  ///< one per arrival, trace order
  double wall_seconds = 0.0;
  double throughput_sps = 0.0;
};

/// Replay `trace` against a fresh two-worker fleet under `policy_name`.
FleetRun replay_trace(core::Experiment& e, const data::Dataset& ds,
                      const core::ExitPolicy& policy, std::size_t timesteps,
                      const std::vector<util::ClassedArrival>& trace,
                      const std::string& policy_name) {
  serve::FleetModel model;
  model.name = "primary";
  model.network = &e.net;
  model.dataset = &ds;
  model.default_policy = &policy;
  model.max_timesteps = timesteps;
  model.workers = 2;
  model.make_replica = core::replica_factory(e);
  model.max_pool = 4;

  serve::FleetConfig config;
  config.scheduler = policy_name;
  config.max_queue = trace.size() + 16;          // saturation must not reject
  config.latency_window = trace.size() + 16;     // digest the whole replay
  config.tenants.push_back({.name = "interactive", .weight = 4.0});
  config.tenants.push_back({.name = "bulk", .weight = 1.0});

  FleetRun run;
  std::vector<std::future<std::vector<core::InferenceResult>>> futures;
  futures.reserve(trace.size());

  const auto t0 = serve::ServeClock::now();
  {
    serve::ServingFleet fleet({std::move(model)}, config);
    for (const util::ClassedArrival& a : trace) {
      std::this_thread::sleep_until(t0 + std::chrono::microseconds(a.offset_us));
      serve::FleetRequest req;
      req.request.samples.push_back(a.sample);
      req.tenant = static_cast<serve::TenantId>(a.tenant_class + 1);
      if (a.deadline_us > 0) {
        req.deadline = t0 + std::chrono::microseconds(a.offset_us + a.deadline_us);
      }
      futures.push_back(fleet.submit(std::move(req)).results);
    }
    fleet.drain();
    run.wall_seconds =
        std::chrono::duration<double>(serve::ServeClock::now() - t0).count();
    run.stats = fleet.stats();
  }

  for (auto& f : futures) run.results.push_back(std::move(f.get().at(0)));
  run.throughput_sps = static_cast<double>(run.results.size()) / run.wall_seconds;
  return run;
}

/// Decision-identity hard gate: every served decision must equal the batch-1
/// oracle's — at full budget for samples that ran to their natural exit, or
/// at the truncated budget for deadline-forced early exits.
bool identical_to_oracle(const FleetRun& run,
                         const std::vector<util::ClassedArrival>& trace,
                         snn::SpikingNetwork& net, const data::Dataset& ds,
                         const core::ExitPolicy& policy, std::size_t timesteps) {
  std::map<std::size_t, core::InferenceResult> oracle;
  {
    core::SequentialEngine batch1(net, policy, timesteps);
    core::InferenceRequest unique;
    for (const auto& r : run.results) {
      if (oracle.emplace(r.sample, core::InferenceResult{}).second) {
        unique.samples.push_back(r.sample);
      }
    }
    for (auto& r : batch1.run(ds, unique)) oracle[r.sample] = std::move(r);
  }

  // Truncated oracles are memoised per (sample, budget): under saturation
  // many deadline-forced arrivals share the same early boundary.
  std::map<std::pair<std::size_t, std::size_t>, core::InferenceResult> truncated;
  std::size_t mismatches = 0;
  std::size_t forced_checked = 0;
  for (std::size_t i = 0; i < run.results.size(); ++i) {
    const core::InferenceResult& served = run.results[i];
    const core::InferenceResult& want = oracle.at(served.sample);
    const core::InferenceResult* expect = &want;
    if (served.exit_timestep != want.exit_timestep) {
      // Only a deadline can legally shorten a run — never lengthen it, and
      // never touch a request that carried no deadline.
      if (trace[i].deadline_us == 0 || served.exit_timestep >= want.exit_timestep) {
        ++mismatches;
        continue;
      }
      const auto key = std::make_pair(served.sample, served.exit_timestep);
      auto [it, fresh] = truncated.try_emplace(key);
      if (fresh) {
        core::SequentialEngine cut(net, policy, served.exit_timestep);
        core::InferenceRequest one;
        one.samples.push_back(served.sample);
        it->second = std::move(cut.run(ds, one).at(0));
      }
      expect = &it->second;
      ++forced_checked;
    }
    if (served.predicted_class != expect->predicted_class ||
        served.exit_timestep != expect->exit_timestep ||
        served.final_entropy != expect->final_entropy) {
      ++mismatches;
    }
  }
  if (mismatches > 0) {
    std::printf("  identity gate: %zu mismatching decisions\n", mismatches);
  } else if (forced_checked > 0) {
    std::printf("  identity gate: clean (%zu deadline-forced exits matched the"
                " truncated oracle)\n", forced_checked);
  }
  return mismatches == 0;
}

double miss_rate(const serve::TenantStats& t) {
  return t.completed_samples == 0
             ? 0.0
             : static_cast<double>(t.deadline_missed) /
                   static_cast<double>(t.completed_samples);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_options(argc, argv);

  bench::banner("Serving fleet: scheduler policies under a two-tenant trace");
  bench::BenchReport report("serving_fleet", options);

  core::ExperimentSpec spec;
  spec.model = "vgg_micro";
  spec.dataset = "sync10";
  spec.timesteps = 4;
  spec.epochs = 6;
  spec.loss = core::LossKind::kPerTimestep;
  core::Experiment e = bench::run(spec, options);
  const auto& ds = *e.bundle.test;
  const core::EntropyExitPolicy policy(0.3);

  // Two-class workload at 10^5 arrivals full scale: an interactive Poisson
  // stream with a 10 ms SLO and a bursty bulk stream with none. Offered load
  // (~8k samples/s) sits above this host's single-core service rate, so the
  // admission queue is contended and the scheduler's ordering is what
  // decides who meets the SLO.
  const auto total =
      std::max<std::size_t>(static_cast<std::size_t>(100000 * options.scale), 600);
  util::MultiClassTraceSpec trace_spec;
  trace_spec.classes.push_back({.name = "interactive",
                                .arrivals = (total * 3) / 5,
                                .mean_gap_us = 250.0,
                                .burst = 1,
                                .deadline_us = 10000});
  trace_spec.classes.push_back({.name = "bulk",
                                .arrivals = total - (total * 3) / 5,
                                .mean_gap_us = 1500.0,
                                .burst = 6,
                                .deadline_us = 0});
  trace_spec.sample_limit = ds.size();
  trace_spec.seed = 0xf1ee7;
  const std::vector<util::ClassedArrival> trace = util::make_arrival_trace(trace_spec);
  report.set("arrivals", static_cast<double>(trace.size()));
  report.set("interactive_deadline_ms", 10.0);
  report.set("trace_seed", static_cast<double>(trace_spec.seed));
  report.set("workers", 2.0);
  report.set("gemm_backend", std::string(util::default_gemm_backend().name()));

  bench::TablePrinter table({"policy", "class", "p50 ms", "p99 ms", "p99.9 ms",
                             "miss %", "req/s"},
                            {15, 13, 9, 9, 9, 9, 9});
  util::CsvWriter csv(options.csv_dir + "/serving_fleet.csv");
  csv.write_header({"policy", "class", "p50_latency_ms", "p99_latency_ms",
                    "p999_latency_ms", "deadline_miss_rate", "throughput_sps"});

  const std::vector<std::string> policies{"fifo", "edf", "weighted_fair"};
  bool all_identical = true;
  double fifo_interactive_miss = 0.0;
  double edf_interactive_miss = 0.0;

  for (const std::string& policy_name : policies) {
    const FleetRun run = replay_trace(e, ds, policy, spec.timesteps, trace, policy_name);
    all_identical = identical_to_oracle(run, trace, e.net, ds, policy,
                                        spec.timesteps) &&
                    all_identical;

    for (std::size_t c : {kInteractive, kBulk}) {
      const serve::TenantStats& t = run.stats.tenants.at(c + 1);
      const util::PercentileSummary& lat = t.latency_us;
      const double miss = miss_rate(t);
      table.row({policy_name, kClassName[c], bench::fmt("%.2f", lat.p50 / 1000.0),
                 bench::fmt("%.2f", lat.p99 / 1000.0),
                 bench::fmt("%.2f", lat.p999 / 1000.0),
                 bench::fmt("%.2f%%", 100.0 * miss),
                 bench::fmt("%.1f", run.throughput_sps)});
      csv.row(policy_name, kClassName[c], lat.p50 / 1000.0, lat.p99 / 1000.0,
              lat.p999 / 1000.0, miss, run.throughput_sps);

      const std::string prefix = policy_name + "_" + kClassName[c] + "_";
      report.set(prefix + "p50_latency_ms", lat.p50 / 1000.0);
      report.set(prefix + "p99_latency_ms", lat.p99 / 1000.0);
      report.set(prefix + "p999_latency_ms", lat.p999 / 1000.0);
      report.set(prefix + "deadline_miss_rate", miss);
      report.set(prefix + "deadline_forced_exits",
                 static_cast<double>(t.deadline_forced_exits));
    }
    report.set(policy_name + "_throughput_sps", run.throughput_sps);

    const double interactive_miss = miss_rate(run.stats.tenants.at(kInteractive + 1));
    if (policy_name == "fifo") fifo_interactive_miss = interactive_miss;
    if (policy_name == "edf") edf_interactive_miss = interactive_miss;
  }

  const bool edf_beats_fifo = edf_interactive_miss < fifo_interactive_miss;
  report.set("fifo_interactive_miss_rate", fifo_interactive_miss);
  report.set("edf_interactive_miss_rate", edf_interactive_miss);
  report.set("edf_beats_fifo_interactive_miss", edf_beats_fifo ? 1.0 : 0.0);
  report.set("served_vs_oracle_identical", all_identical ? 1.0 : 0.0);
  report.set_dataset(ds);

  std::printf("\ninteractive deadline-miss rate: fifo %.2f%%, edf %.2f%% (%s)\n",
              100.0 * fifo_interactive_miss, 100.0 * edf_interactive_miss,
              edf_beats_fifo ? "edf lower" : "edf not lower");
  if (!all_identical) {
    std::printf("FAIL: served decisions diverged from the batch-1 oracle\n");
    return 1;
  }
  std::printf("All served decisions bitwise-identical to the batch-1 oracle.\n");
  return 0;
}
