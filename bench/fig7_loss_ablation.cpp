// Fig. 7 reproduction: ablation of the training loss. A spiking VGG is
// trained once with the conventional Eq. 9 loss and once with the
// per-timestep Eq. 10 loss; we report accuracy at every timestep plus the
// DT-SNN operating point and its exit distribution under each.
//
// Paper reference: Eq. 10 lifts VGG-16 CIFAR-10 T=1 accuracy from 76.3% to
// 91.5% and improves the full-T point by ~0.6pp, which in turn shifts the
// DT-SNN exit distribution toward t=1 and cuts EDP.

#include <cstdio>

#include "bench_common.h"

using namespace dtsnn;

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_options(argc, argv);

  bench::banner("Fig. 7: Eq. 9 vs Eq. 10 training loss (spiking VGG, sync10)");
  bench::BenchReport report("fig7_loss_ablation", options);
  util::CsvWriter csv(options.csv_dir + "/fig7_loss_ablation.csv");
  csv.write_header({"loss", "timesteps", "accuracy"});

  core::ExperimentSpec base;
  base.model = "vgg_mini";
  base.dataset = "sync10";
  base.timesteps = 4;
  base.epochs = 14;

  core::ExperimentSpec eq9 = base;
  eq9.loss = core::LossKind::kMeanLogit;
  core::ExperimentSpec eq10 = base;
  eq10.loss = core::LossKind::kPerTimestep;

  core::Experiment e9 = bench::run(eq9, options);
  core::Experiment e10 = bench::run(eq10, options);
  auto out9 = core::test_outputs(e9);
  auto out10 = core::test_outputs(e10);
  const auto acc9 = core::accuracy_per_timestep(out9);
  const auto acc10 = core::accuracy_per_timestep(out10);

  bench::TablePrinter table({"T", "Eq. (9)", "Eq. (10)", "Delta"});
  for (std::size_t t = 1; t <= 4; ++t) {
    table.row({bench::fmt("%zu", t), bench::fmt("%.2f%%", 100 * acc9[t - 1]),
               bench::fmt("%.2f%%", 100 * acc10[t - 1]),
               bench::fmt("%+.2fpp", 100 * (acc10[t - 1] - acc9[t - 1]))});
    csv.row("eq9", t, 100 * acc9[t - 1]);
    csv.row("eq10", t, 100 * acc10[t - 1]);
  }

  // DT-SNN operating point under each loss (threshold calibrated to the
  // model's own full-T accuracy).
  std::printf("\nDT-SNN operating points (iso-accuracy thresholds):\n");
  bench::TablePrinter dt({"Loss", "theta", "avgT", "Acc.", "That distribution"},
                         {10, 8, 7, 9, 28});
  for (auto* pair : {&out9, &out10}) {
    const bool is_eq10 = pair == &out10;
    const double target = core::static_accuracy(*pair, 4);
    const auto calib = core::calibrate_theta(*pair, target, 0.005);
    dt.row({is_eq10 ? "Eq. (10)" : "Eq. (9)", bench::fmt("%.3f", calib.theta),
            bench::fmt("%.2f", calib.result.avg_timesteps),
            bench::fmt("%.2f%%", 100 * calib.result.accuracy),
            calib.result.timestep_histogram.to_string()});
    csv.row(is_eq10 ? "eq10_dtsnn" : "eq9_dtsnn", calib.result.avg_timesteps,
            100 * calib.result.accuracy);
    const std::string key = is_eq10 ? "eq10" : "eq9";
    report.set(key + "_t1_accuracy", is_eq10 ? acc10[0] : acc9[0]);
    report.set(key + "_dtsnn_accuracy", calib.result.accuracy);
    report.set(key + "_dtsnn_avg_timesteps", calib.result.avg_timesteps);
  }
  report.set_dataset(*e10.bundle.test);
  std::printf("\nShape check: Eq. 10 must lift T=1 accuracy sharply (paper: +15pp),\n"
              "shifting DT-SNN exits toward t=1 and reducing average timesteps.\n");
  return 0;
}
