// Parallel/batched evaluation runtime: single-thread versus OpenMP path,
// and batch-1 versus batched sequential execution.
//
// Measures the stages behind every threshold sweep and calibration:
//   1. collect_outputs        (record cumulative-mean logits over the test set)
//   2. theta_sweep            (replay Eq. 8 on the default theta grid)
//   3. calibrate_theta        (pick theta matching the static-T accuracy)
//   4. sequential engines     (true early termination: batch-1 vs batched
//                              with live-batch compaction, unified API)
// checks that parallel recording is bitwise identical to serial, that sweep
// decisions match, and that the batched engine's decisions are identical to
// batch-1. Emits BENCH_parallel_eval.json with the speedups so the scaling
// trajectory is tracked across PRs.

#include <chrono>
#include <cstdio>
#include <cstring>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "bench_common.h"
#include "core/calibration.h"

using namespace dtsnn;

namespace {

double seconds_since(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

template <typename Fn>
double timed(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return seconds_since(start);
}

void set_omp_threads(std::size_t n) {
#ifdef _OPENMP
  omp_set_num_threads(static_cast<int>(n));
#else
  (void)n;
#endif
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_options(argc, argv);
  const std::size_t threads = core::evaluation_threads();

  bench::banner(bench::fmt("Parallel post-hoc evaluation (1 vs %zu threads)", threads));
  bench::BenchReport report("parallel_eval", options);
  report.set("threads", static_cast<double>(threads));

  core::ExperimentSpec spec;
  spec.model = "vgg_mini";
  spec.dataset = "sync10";
  spec.timesteps = 4;
  spec.epochs = 12;
  spec.loss = core::LossKind::kPerTimestep;
  core::Experiment e = bench::run(spec, options);

  // --- stage 1: output recording, serial vs worker-replica parallel path.
  core::TimestepOutputs serial_out, parallel_out;
  const double collect_serial_s =
      timed([&] { serial_out = core::test_outputs(e, 0, 0, /*num_threads=*/1); });
  const double collect_parallel_s =
      timed([&] { parallel_out = core::test_outputs(e, 0, 0, /*num_threads=*/0); });
  const bool collect_identical =
      serial_out.samples == parallel_out.samples &&
      std::memcmp(serial_out.cum_logits.data(), parallel_out.cum_logits.data(),
                  serial_out.cum_logits.numel() * sizeof(float)) == 0 &&
      serial_out.labels == parallel_out.labels;

  // --- stages 2+3: threshold sweep and calibration replay.
  const auto grid = core::default_theta_grid();
  const double target = core::static_accuracy(serial_out, serial_out.timesteps);
  std::vector<core::SweepPoint> sweep_1t, sweep_nt;
  core::CalibrationResult calib;

  set_omp_threads(1);
  const double sweep_serial_s =
      timed([&] { sweep_1t = core::theta_sweep(serial_out, grid); });
  set_omp_threads(threads);
  const double sweep_parallel_s =
      timed([&] { sweep_nt = core::theta_sweep(serial_out, grid); });
  const double calibrate_s =
      timed([&] { calib = core::calibrate_theta(serial_out, target); });

  bool sweep_identical = sweep_1t.size() == sweep_nt.size();
  for (std::size_t i = 0; sweep_identical && i < sweep_1t.size(); ++i) {
    sweep_identical = sweep_1t[i].result.exit_timestep == sweep_nt[i].result.exit_timestep;
  }

  // --- stage 4: true early-termination engines through the unified API,
  // batch-1 SequentialEngine vs BatchedSequentialEngine (batch 32).
  const core::EntropyExitPolicy engine_policy(0.3);
  core::SequentialEngine batch1_engine(e.net, engine_policy, serial_out.timesteps);
  core::BatchedSequentialEngine batched_engine(e.net, engine_policy,
                                               serial_out.timesteps, /*batch_size=*/32);
  const core::InferenceRequest engine_request =
      core::InferenceRequest::first_n(std::min<std::size_t>(serial_out.samples, 256));
  std::vector<core::InferenceResult> batch1_results, batched_results;
  const double batch1_s = timed(
      [&] { batch1_results = batch1_engine.run(*e.bundle.test, engine_request); });
  const double batched_s = timed(
      [&] { batched_results = batched_engine.run(*e.bundle.test, engine_request); });
  bool engines_identical = batch1_results.size() == batched_results.size();
  for (std::size_t i = 0; engines_identical && i < batch1_results.size(); ++i) {
    engines_identical =
        batch1_results[i].predicted_class == batched_results[i].predicted_class &&
        batch1_results[i].exit_timestep == batched_results[i].exit_timestep &&
        batch1_results[i].final_entropy == batched_results[i].final_entropy;
  }

  bench::TablePrinter table({"Stage", "1 thread (s)", "parallel (s)", "speedup"},
                            {18, 14, 14, 10});
  const auto emit = [&](const char* stage, double serial_s, double parallel_s) {
    table.row({stage, bench::fmt("%.4f", serial_s), bench::fmt("%.4f", parallel_s),
               bench::fmt("%.2fx", parallel_s > 0 ? serial_s / parallel_s : 0.0)});
  };
  emit("collect_outputs", collect_serial_s, collect_parallel_s);
  emit("theta_sweep", sweep_serial_s, sweep_parallel_s);
  std::printf("\ncalibrate_theta: %.4f s -> theta=%.3f (acc %.2f%%, avgT %.2f)\n",
              calibrate_s, calib.theta, 100.0 * calib.result.accuracy,
              calib.result.avg_timesteps);
  std::printf("sequential engines (%zu samples, theta=0.3): batch-1 %.4f s, "
              "batched(32) %.4f s -> %.2fx\n",
              engine_request.samples.size(), batch1_s, batched_s,
              batched_s > 0 ? batch1_s / batched_s : 0.0);
  std::printf("consistency: collect %s, sweep %s, batched-engine %s\n",
              collect_identical ? "identical" : "MISMATCH",
              sweep_identical ? "identical" : "MISMATCH",
              engines_identical ? "identical" : "MISMATCH");

  report.set("samples", static_cast<double>(serial_out.samples));
  report.set("collect_serial_s", collect_serial_s);
  report.set("collect_parallel_s", collect_parallel_s);
  report.set("collect_speedup",
             collect_parallel_s > 0 ? collect_serial_s / collect_parallel_s : 0.0);
  report.set("sweep_serial_s", sweep_serial_s);
  report.set("sweep_parallel_s", sweep_parallel_s);
  report.set("sweep_speedup",
             sweep_parallel_s > 0 ? sweep_serial_s / sweep_parallel_s : 0.0);
  report.set("calibrate_s", calibrate_s);
  report.set("sequential_batch1_s", batch1_s);
  report.set("sequential_batch32_s", batched_s);
  report.set("sequential_batch32_speedup", batched_s > 0 ? batch1_s / batched_s : 0.0);
  const bool consistent = collect_identical && sweep_identical && engines_identical;
  report.set("consistent", consistent ? "yes" : "NO");
  report.set_result(calib.result.accuracy, calib.result.avg_timesteps);
  report.set_dataset(*e.bundle.test);
  return consistent ? 0 : 1;
}
