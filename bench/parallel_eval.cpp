// Parallel post-hoc evaluation runtime: single-thread versus OpenMP path.
//
// Measures the three stages behind every threshold sweep and calibration:
//   1. collect_outputs        (record cumulative-mean logits over the test set)
//   2. theta_sweep            (replay Eq. 8 on the default theta grid)
//   3. calibrate_theta        (pick theta matching the static-T accuracy)
// each once forced to one thread and once on all available cores, and checks
// that both paths produce bitwise-identical recorded logits and identical
// sweep decisions. Emits BENCH_parallel_eval.json with the speedups so the
// scaling trajectory is tracked across PRs.

#include <chrono>
#include <cstdio>
#include <cstring>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "bench_common.h"
#include "core/calibration.h"

using namespace dtsnn;

namespace {

double seconds_since(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

template <typename Fn>
double timed(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return seconds_since(start);
}

void set_omp_threads(std::size_t n) {
#ifdef _OPENMP
  omp_set_num_threads(static_cast<int>(n));
#else
  (void)n;
#endif
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_options(argc, argv);
  const std::size_t threads = core::evaluation_threads();

  bench::banner(bench::fmt("Parallel post-hoc evaluation (1 vs %zu threads)", threads));
  bench::BenchReport report("parallel_eval", options);
  report.set("threads", static_cast<double>(threads));

  core::ExperimentSpec spec;
  spec.model = "vgg_mini";
  spec.dataset = "sync10";
  spec.timesteps = 4;
  spec.epochs = 12;
  spec.loss = core::LossKind::kPerTimestep;
  core::Experiment e = bench::run(spec, options);

  // --- stage 1: output recording, serial vs worker-replica parallel path.
  core::TimestepOutputs serial_out, parallel_out;
  const double collect_serial_s =
      timed([&] { serial_out = core::test_outputs(e, 0, 0, /*num_threads=*/1); });
  const double collect_parallel_s =
      timed([&] { parallel_out = core::test_outputs(e, 0, 0, /*num_threads=*/0); });
  const bool collect_identical =
      serial_out.samples == parallel_out.samples &&
      std::memcmp(serial_out.cum_logits.data(), parallel_out.cum_logits.data(),
                  serial_out.cum_logits.numel() * sizeof(float)) == 0 &&
      serial_out.labels == parallel_out.labels;

  // --- stages 2+3: threshold sweep and calibration replay.
  const auto grid = core::default_theta_grid();
  const double target = core::static_accuracy(serial_out, serial_out.timesteps);
  std::vector<core::SweepPoint> sweep_1t, sweep_nt;
  core::CalibrationResult calib;

  set_omp_threads(1);
  const double sweep_serial_s =
      timed([&] { sweep_1t = core::theta_sweep(serial_out, grid); });
  set_omp_threads(threads);
  const double sweep_parallel_s =
      timed([&] { sweep_nt = core::theta_sweep(serial_out, grid); });
  const double calibrate_s =
      timed([&] { calib = core::calibrate_theta(serial_out, target); });

  bool sweep_identical = sweep_1t.size() == sweep_nt.size();
  for (std::size_t i = 0; sweep_identical && i < sweep_1t.size(); ++i) {
    sweep_identical = sweep_1t[i].result.exit_timestep == sweep_nt[i].result.exit_timestep;
  }

  bench::TablePrinter table({"Stage", "1 thread (s)", "parallel (s)", "speedup"},
                            {18, 14, 14, 10});
  const auto emit = [&](const char* stage, double serial_s, double parallel_s) {
    table.row({stage, bench::fmt("%.4f", serial_s), bench::fmt("%.4f", parallel_s),
               bench::fmt("%.2fx", parallel_s > 0 ? serial_s / parallel_s : 0.0)});
  };
  emit("collect_outputs", collect_serial_s, collect_parallel_s);
  emit("theta_sweep", sweep_serial_s, sweep_parallel_s);
  std::printf("\ncalibrate_theta: %.4f s -> theta=%.3f (acc %.2f%%, avgT %.2f)\n",
              calibrate_s, calib.theta, 100.0 * calib.result.accuracy,
              calib.result.avg_timesteps);
  std::printf("consistency: collect %s, sweep %s\n",
              collect_identical ? "identical" : "MISMATCH",
              sweep_identical ? "identical" : "MISMATCH");

  report.set("samples", static_cast<double>(serial_out.samples));
  report.set("collect_serial_s", collect_serial_s);
  report.set("collect_parallel_s", collect_parallel_s);
  report.set("collect_speedup",
             collect_parallel_s > 0 ? collect_serial_s / collect_parallel_s : 0.0);
  report.set("sweep_serial_s", sweep_serial_s);
  report.set("sweep_parallel_s", sweep_parallel_s);
  report.set("sweep_speedup",
             sweep_parallel_s > 0 ? sweep_serial_s / sweep_parallel_s : 0.0);
  report.set("calibrate_s", calibrate_s);
  report.set("consistent", collect_identical && sweep_identical ? "yes" : "NO");
  report.set_result(calib.result.accuracy, calib.result.avg_timesteps);
  return collect_identical && sweep_identical ? 0 : 1;
}
