// google-benchmark microbenchmarks of the library's hot kernels: GEMM,
// im2col, conv forward/backward, LIF dynamics, entropy, the sigma-E
// fixed-point pipeline, and the functional crossbar MVM.
//
// lint:allow(bench-report): google-benchmark owns main() and flag parsing
// here; machine-readable output comes from --benchmark_format=json instead
// of bench::BenchReport.

#include <benchmark/benchmark.h>

#include "core/entropy.h"
#include "imc/sigma_e.h"
#include "imc/xbar_functional.h"
#include "snn/conv.h"
#include "snn/lif.h"
#include "snn/loss.h"
#include "util/gemm.h"
#include "util/rng.h"

using namespace dtsnn;

namespace {

void BM_Gemm(benchmark::State& state) {
  // Arg 0 selects the backend (registry order), arg 1 the square size.
  const auto backends = util::gemm_backends();
  const auto index = static_cast<std::size_t>(state.range(0));
  if (index >= backends.size()) {
    state.SkipWithError("backend not compiled into this build");
    return;
  }
  const util::GemmBackend& backend = *backends[index];
  if (!backend.available()) state.SkipWithError("backend unavailable on this CPU");
  const auto n = static_cast<std::size_t>(state.range(1));
  util::Rng rng(1);
  std::vector<float> a(n * n), b(n * n), c(n * n);
  for (auto& v : a) v = static_cast<float>(rng.gaussian());
  for (auto& v : b) v = static_cast<float>(rng.gaussian());
  for (auto _ : state) {
    backend.gemm(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetLabel(std::string(backend.name()));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n * n * n);
}
BENCHMARK(BM_Gemm)
    ->ArgsProduct({{0, 1, 2, 3}, {64, 128, 256}});

void BM_GemmSparseSpikes(benchmark::State& state) {
  // Binary spike activations at 15% density — the IMC operating regime.
  const auto backends = util::gemm_backends();
  const auto index = static_cast<std::size_t>(state.range(0));
  if (index >= backends.size()) {
    state.SkipWithError("backend not compiled into this build");
    return;
  }
  const util::GemmBackend& backend = *backends[index];
  if (!backend.available()) state.SkipWithError("backend unavailable on this CPU");
  const std::size_t n = 256;
  util::Rng rng(2);
  std::vector<float> a(n * n, 0.0f), b(n * n), c(n * n);
  for (auto& v : b) v = static_cast<float>(rng.gaussian());
  for (auto& v : a) v = rng.bernoulli(0.15) ? 1.0f : 0.0f;
  for (auto _ : state) {
    backend.gemm(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetLabel(std::string(backend.name()));
}
BENCHMARK(BM_GemmSparseSpikes)->DenseRange(0, 3);

void BM_ConvForward(benchmark::State& state) {
  util::Rng rng(3);
  snn::Conv2d conv(32, 64, 3, 1, 1, false, rng);
  snn::Tensor x = snn::Tensor::randn({8, 32, 16, 16}, rng);
  conv.set_time(1, 8);
  for (auto _ : state) {
    snn::Tensor y = conv.forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_ConvForward);

void BM_ConvBackward(benchmark::State& state) {
  util::Rng rng(4);
  snn::Conv2d conv(32, 64, 3, 1, 1, false, rng);
  snn::Tensor x = snn::Tensor::randn({8, 32, 16, 16}, rng);
  conv.set_time(1, 8);
  snn::Tensor y = conv.forward(x, true);
  snn::Tensor g = snn::Tensor::randn(y.shape(), rng);
  for (auto _ : state) {
    snn::Tensor dx = conv.backward(g);
    benchmark::DoNotOptimize(dx.data());
  }
}
BENCHMARK(BM_ConvBackward);

void BM_LifMultistep(benchmark::State& state) {
  util::Rng rng(5);
  snn::Lif lif{snn::LifConfig{}};
  const std::size_t timesteps = 4;
  lif.set_time(timesteps, 8);
  snn::Tensor x = snn::Tensor::randn({timesteps * 8, 64, 16, 16}, rng, 0.5f, 1.0f);
  for (auto _ : state) {
    snn::Tensor s = lif.forward(x, false);
    benchmark::DoNotOptimize(s.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(x.numel()));
}
BENCHMARK(BM_LifMultistep);

void BM_CumulativeMeanLogits(benchmark::State& state) {
  util::Rng rng(6);
  snn::Tensor logits = snn::Tensor::randn({4 * 256, 10}, rng);
  for (auto _ : state) {
    snn::Tensor cum = snn::cumulative_mean_logits(logits, 4);
    benchmark::DoNotOptimize(cum.data());
  }
}
BENCHMARK(BM_CumulativeMeanLogits);

void BM_EntropyFloat(benchmark::State& state) {
  util::Rng rng(7);
  std::vector<float> logits(10);
  for (auto& v : logits) v = static_cast<float>(rng.gaussian(0.0, 2.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::entropy_of_logits(logits));
  }
}
BENCHMARK(BM_EntropyFloat);

void BM_SigmaEFixedPoint(benchmark::State& state) {
  imc::SigmaEModule mod;
  util::Rng rng(8);
  std::vector<float> logits(10);
  for (auto& v : logits) v = static_cast<float>(rng.gaussian(0.0, 2.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mod.compute_entropy(logits));
  }
}
BENCHMARK(BM_SigmaEFixedPoint);

void BM_CrossbarAnalogMvm(benchmark::State& state) {
  imc::ImcConfig cfg;
  imc::FunctionalCrossbar xbar(cfg, 64, 16, 9);
  util::Rng rng(9);
  std::vector<float> w(64 * 16);
  for (auto& v : w) v = static_cast<float>(rng.gaussian(0.0, 0.05));
  xbar.program(w);
  std::vector<float> spikes(64);
  for (auto& v : spikes) v = rng.bernoulli(0.2) ? 1.0f : 0.0f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(xbar.mvm_analog(spikes));
  }
}
BENCHMARK(BM_CrossbarAnalogMvm);

void BM_DeviceWeightReadback(benchmark::State& state) {
  imc::ImcConfig cfg;
  util::Rng rng(10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(imc::program_and_read_weight(97, 0.01f, cfg, rng));
  }
}
BENCHMARK(BM_DeviceWeightReadback);

}  // namespace

BENCHMARK_MAIN();
