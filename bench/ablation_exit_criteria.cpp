// Extension ablation (beyond the paper): exit-criterion comparison.
// Entropy thresholding (Eq. 8) vs max-softmax-probability vs top-2 margin,
// each swept over its own threshold range and reported as accuracy /
// average-timesteps frontiers. Also ablates hard vs soft LIF reset.

#include <cstdio>

#include "bench_common.h"

using namespace dtsnn;

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_options(argc, argv);
  bench::BenchReport report("ablation_exit_criteria", options);

  core::ExperimentSpec spec;
  spec.model = "vgg_mini";
  spec.dataset = "sync10";
  spec.timesteps = 4;
  spec.epochs = 14;
  spec.loss = core::LossKind::kPerTimestep;
  core::Experiment e = bench::run(spec, options);
  const auto outputs = core::test_outputs(e);
  const double full_acc = core::static_accuracy(outputs, 4);

  bench::banner("Ablation: exit criterion frontiers (accuracy vs avg timesteps)");
  util::CsvWriter csv(options.csv_dir + "/ablation_exit_criteria.csv");
  csv.write_header({"criterion", "threshold", "avg_timesteps", "accuracy"});

  bench::TablePrinter table({"Criterion", "Threshold", "avgT", "Acc."}, {12, 11, 8, 9});

  for (const double theta : {0.9, 0.6, 0.3, 0.1, 0.03}) {
    const core::EntropyExitPolicy policy(theta);
    const auto r = core::evaluate_recorded(outputs, policy, *e.bundle.test);
    table.row({"entropy", bench::fmt("%.2f", theta), bench::fmt("%.2f", r.avg_timesteps),
               bench::fmt("%.2f%%", 100 * r.accuracy)});
    csv.row("entropy", theta, r.avg_timesteps, 100 * r.accuracy);
  }
  for (const double p : {0.5, 0.7, 0.9, 0.97, 0.995}) {
    const core::MaxProbExitPolicy policy(p);
    const auto r = core::evaluate_recorded(outputs, policy, *e.bundle.test);
    table.row({"maxprob", bench::fmt("%.3f", p), bench::fmt("%.2f", r.avg_timesteps),
               bench::fmt("%.2f%%", 100 * r.accuracy)});
    csv.row("maxprob", p, r.avg_timesteps, 100 * r.accuracy);
  }
  for (const double m : {0.3, 0.5, 0.8, 0.95, 0.99}) {
    const core::MarginExitPolicy policy(m);
    const auto r = core::evaluate_recorded(outputs, policy, *e.bundle.test);
    table.row({"margin", bench::fmt("%.3f", m), bench::fmt("%.2f", r.avg_timesteps),
               bench::fmt("%.2f%%", 100 * r.accuracy)});
    csv.row("margin", m, r.avg_timesteps, 100 * r.accuracy);
  }
  std::printf("static T=4 reference accuracy: %.2f%%\n", 100 * full_acc);
  report.set("static_t4_accuracy", full_acc);
  {
    const auto r =
        core::evaluate_recorded(outputs, core::EntropyExitPolicy(0.3), *e.bundle.test);
    report.set_result(r.accuracy, r.avg_timesteps);
  }

  bench::banner("Ablation: hard (paper) vs soft (subtractive) LIF reset");
  bench::TablePrinter reset_table({"Reset", "T=1", "T=2", "T=3", "T=4"});
  for (const bool hard : {true, false}) {
    core::ExperimentSpec rs = spec;
    rs.seed = 31;  // distinct cache entry per reset mode
    // Reset mode flows through the LIF config of the model builder.
    core::Experiment exp = [&] {
      data::SyntheticBundle bundle = core::make_bundle(rs.dataset, rs.data_scale *
                                                                       options.scale);
      snn::ModelConfig mc;
      mc.num_classes = bundle.train->num_classes();
      mc.input_shape = bundle.train->frame_shape();
      mc.seed = rs.seed;
      mc.lif.hard_reset = hard;
      snn::SpikingNetwork net = snn::make_model(rs.model, mc);
      snn::PerTimestepCrossEntropy loss;
      data::ShuffledBatchSource source(*bundle.train, rs.batch_size, rs.seed);
      snn::TrainOptions topt;
      topt.epochs = options.epochs_override ? options.epochs_override : rs.epochs;
      topt.timesteps = rs.timesteps;
      auto stats = snn::train(net, loss, source, topt);
      return core::Experiment{rs, std::move(bundle), std::move(net), std::move(stats),
                              false};
    }();
    const auto out = core::test_outputs(exp);
    const auto acc = core::accuracy_per_timestep(out);
    std::vector<std::string> row{hard ? "hard" : "soft"};
    for (const double a : acc) row.push_back(bench::fmt("%.2f%%", 100 * a));
    reset_table.row(row);
    for (std::size_t t = 1; t <= acc.size(); ++t) {
      csv.row(hard ? "reset_hard" : "reset_soft", t, t, 100 * acc[t - 1]);
    }
  }
  report.set_dataset(*e.bundle.test);
  std::printf("\nExpected: entropy and maxprob frontiers are close (both proper\n"
              "confidence scores); margin is slightly worse at matched avg T.\n");
  return 0;
}
