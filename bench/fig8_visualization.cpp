// Fig. 8 reproduction: visualization of inputs DT-SNN classifies at T-hat=1
// (easy) versus T-hat=T (hard). The paper shows photographs; here the
// synthetic samples are rendered as ASCII intensity maps, together with the
// generator's hidden difficulty statistics — verifying that the entropy
// criterion separates easy from hard inputs without ever seeing difficulty.

#include <cstdio>

#include "bench_common.h"

using namespace dtsnn;

namespace {

/// ASCII render of a CxHxW frame (channel-mean intensity).
void render(const data::ArrayDataset& ds, std::size_t sample) {
  const auto fs = ds.frame_shape();
  const std::size_t c = fs[0], h = fs[1], w = fs[2];
  const auto frame = ds.frame_data(sample, 0);
  static const char* ramp = " .:-=+*#%@";
  float lo = 1e9f, hi = -1e9f;
  for (const float v : frame) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const float range = std::max(1e-6f, hi - lo);
  for (std::size_t y = 0; y < h; ++y) {
    std::string line = "    ";
    for (std::size_t x = 0; x < w; ++x) {
      float mean = 0.0f;
      for (std::size_t ch = 0; ch < c; ++ch) mean += frame[ch * h * w + y * w + x];
      mean /= static_cast<float>(c);
      const int level =
          std::min(9, static_cast<int>((mean - lo) / range * 9.99f));
      line += ramp[level];
      line += ramp[level];  // double width for aspect ratio
    }
    std::printf("%s\n", line.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_options(argc, argv);

  bench::BenchReport report("fig8_visualization", options);
  core::ExperimentSpec spec;
  spec.model = "vgg_mini";
  spec.dataset = "sync10";
  spec.timesteps = 4;
  spec.epochs = 14;
  spec.loss = core::LossKind::kPerTimestep;
  core::Experiment e = bench::run(spec, options);
  const auto outputs = core::test_outputs(e);

  // Low threshold maximizes differentiation (paper: "we use a low threshold
  // to filter out the high timesteps").
  const core::EntropyExitPolicy policy(0.08);
  const auto r = core::evaluate_recorded(outputs, policy, *e.bundle.test);

  const auto* ds = dynamic_cast<const data::ArrayDataset*>(e.bundle.test.get());

  bench::banner("Fig. 8: inputs classified at T-hat = 1 (easy) vs T-hat = 4 (hard)");
  util::CsvWriter csv(options.csv_dir + "/fig8_difficulty_by_exit.csv");
  csv.write_header({"exit_timestep", "count", "mean_difficulty"});

  // Difficulty statistics per exit timestep.
  std::vector<double> diff_sum(outputs.timesteps, 0.0);
  std::vector<std::size_t> diff_n(outputs.timesteps, 0);
  for (std::size_t i = 0; i < outputs.samples; ++i) {
    const std::size_t bin = r.exit_timestep[i] - 1;
    diff_sum[bin] += ds->difficulty(i);
    ++diff_n[bin];
  }
  bench::TablePrinter table({"T-hat", "Samples", "Mean difficulty (hidden)"});
  for (std::size_t t = 0; t < outputs.timesteps; ++t) {
    const double mean = diff_n[t] ? diff_sum[t] / static_cast<double>(diff_n[t]) : 0.0;
    table.row({bench::fmt("%zu", t + 1), bench::fmt("%zu", diff_n[t]),
               bench::fmt("%.3f", mean)});
    csv.row(t + 1, diff_n[t], mean);
  }

  // Render the two extremes.
  std::size_t easiest = 0, hardest = 0;
  bool have_easy = false, have_hard = false;
  for (std::size_t i = 0; i < outputs.samples; ++i) {
    if (r.exit_timestep[i] == 1 && !have_easy) {
      easiest = i;
      have_easy = true;
    }
    if (r.exit_timestep[i] == outputs.timesteps) {
      hardest = i;  // keep the last one found; any full-T sample works
      have_hard = true;
    }
  }
  if (have_easy) {
    std::printf("\n  Example exiting at T-hat = 1 (difficulty %.2f, class %d):\n\n",
                ds->difficulty(easiest), ds->label(easiest));
    render(*ds, easiest);
  }
  if (have_hard) {
    std::printf("\n  Example needing T-hat = %zu (difficulty %.2f, class %d):\n\n",
                outputs.timesteps, ds->difficulty(hardest), ds->label(hardest));
    render(*ds, hardest);
  }
  const double first_bin =
      diff_n[0] ? diff_sum[0] / static_cast<double>(diff_n[0]) : 0.0;
  const std::size_t last = outputs.timesteps - 1;
  const double last_bin =
      diff_n[last] ? diff_sum[last] / static_cast<double>(diff_n[last]) : 0.0;
  report.set_result(r.accuracy, r.avg_timesteps);
  report.set("difficulty_at_t1", first_bin);
  report.set("difficulty_at_full_t", last_bin);
  report.set_dataset(*e.bundle.test);
  std::printf("\nShape check: mean hidden difficulty must rise with T-hat — the\n"
              "entropy rule finds hard inputs without access to the generator.\n");
  return 0;
}
