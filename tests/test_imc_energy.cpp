// Tests for the chip energy model: affine energy-in-T, linear latency-in-T,
// component shares matching the paper's Fig. 1(A) calibration, per-sample
// EDP averaging, and the sigma-E overhead bound.

#include <gtest/gtest.h>

#include "imc/energy_model.h"

namespace dtsnn::imc {
namespace {

EnergyModel vgg16_model() { return EnergyModel(map_network(vgg16_spec(), ImcConfig{})); }

TEST(EnergyModel, EnergyAffineInTimesteps) {
  const EnergyModel m = vgg16_model();
  const double e1 = m.energy_pj(1);
  const double e2 = m.energy_pj(2);
  const double e3 = m.energy_pj(3);
  // Affine: equal increments.
  EXPECT_NEAR(e3 - e2, e2 - e1, 1e-6 * e1);
  // Positive fixed offset: E(2) < 2 * E(1).
  EXPECT_LT(e2, 2.0 * e1);
  EXPECT_GT(m.breakdown().fixed_per_inference_pj, 0.0);
}

TEST(EnergyModel, Fig1bEnergyScaling) {
  // Paper: E(8)/E(1) = 4.9 (tolerate the calibration band 4.3-5.5).
  const EnergyModel m = vgg16_model();
  const double ratio = m.energy_pj(8) / m.energy_pj(1);
  EXPECT_GT(ratio, 4.3);
  EXPECT_LT(ratio, 5.5);
}

TEST(EnergyModel, LatencyExactlyLinear) {
  const EnergyModel m = vgg16_model();
  for (int t = 2; t <= 8; ++t) {
    EXPECT_NEAR(m.latency_ns(t) / m.latency_ns(1), static_cast<double>(t), 1e-9);
  }
}

TEST(EnergyModel, EdpIsEnergyTimesLatency) {
  const EnergyModel m = vgg16_model();
  EXPECT_NEAR(m.edp(3), m.energy_pj(3) * m.latency_ns(3), 1e-3);
}

TEST(EnergyModel, Fig1aComponentShares) {
  // Calibration targets (T=4 operating point): digital peripherals ~45%,
  // crossbar+ADC ~25%, H-Tree ~17%, NoC ~9%, LIF ~1% (paper sums to 97%;
  // shares here are normalized, so allow +-4pp).
  const EnergyModel m = vgg16_model();
  const auto s = m.component_shares(4);
  EXPECT_NEAR(s.digital_peripherals, 0.46, 0.04);
  EXPECT_NEAR(s.crossbar_adc, 0.26, 0.04);
  EXPECT_NEAR(s.htree, 0.175, 0.04);
  EXPECT_NEAR(s.noc, 0.093, 0.04);
  EXPECT_NEAR(s.lif, 0.01, 0.008);
  EXPECT_NEAR(s.digital_peripherals + s.crossbar_adc + s.htree + s.noc + s.lif, 1.0,
              1e-9);
}

TEST(EnergyModel, SigmaEOverheadNegligible) {
  const EnergyModel m = vgg16_model();
  const double step = m.breakdown().per_timestep.total();
  EXPECT_NEAR(m.breakdown().sigma_e_per_timestep_pj / step, 2e-5, 1e-6);
  // Dynamic inference at the same T costs at most 0.01% more.
  EXPECT_LT(m.energy_pj(4, true) / m.energy_pj(4, false), 1.0001);
}

TEST(EnergyModel, MeanOverExitDistribution) {
  const EnergyModel m = vgg16_model();
  const std::vector<std::size_t> exits{1, 1, 1, 4};  // avg T = 1.75
  const double mean_e = m.mean_energy_pj(exits, false);
  const double expected = (3.0 * m.energy_pj(1) + m.energy_pj(4)) / 4.0;
  EXPECT_NEAR(mean_e, expected, 1e-6);
  // Energy is affine in T so mean energy == energy at mean T.
  EXPECT_NEAR(mean_e, m.energy_pj(1.75), 1e-6);
}

TEST(EnergyModel, MeanEdpConvexityGap) {
  // EDP is quadratic in T, so E[EDP(T)] > EDP(E[T]) for a spread distribution
  // — the per-sample averaging the paper uses matters.
  const EnergyModel m = vgg16_model();
  const std::vector<std::size_t> exits{1, 4};
  EXPECT_GT(m.mean_edp(exits, false), m.edp(2.5, false));
}

TEST(EnergyModel, DtsnnEdpReductionMatchesPaperBand) {
  // Paper Table II / Fig. 4 (CIFAR-10 VGG-16): avg T 1.46 vs static T=4
  // gives energy ~0.46x and EDP ~19% of static. With our affine calibration
  // the same avg T must land in a comparable band.
  const EnergyModel m = vgg16_model();
  // Representative DT-SNN exit distribution with mean ~1.46.
  std::vector<std::size_t> exits;
  for (int i = 0; i < 70; ++i) exits.push_back(1);
  for (int i = 0; i < 20; ++i) exits.push_back(2);
  for (int i = 0; i < 4; ++i) exits.push_back(3);
  for (int i = 0; i < 6; ++i) exits.push_back(4);
  const double avg_t = 1.46;
  const double energy_ratio = m.mean_energy_pj(exits) / m.energy_pj(4);
  EXPECT_NEAR(energy_ratio, 0.46, 0.06);
  const double edp_ratio = m.mean_edp(exits) / m.edp(4);
  EXPECT_GT(edp_ratio, 0.10);
  EXPECT_LT(edp_ratio, 0.30);
  (void)avg_t;
}

TEST(EnergyModel, SharesIndependentOfScale) {
  // Scaling all atom energies by a constant must not change shares.
  NetworkSpec spec = vgg16_spec();
  ImcConfig cfg;
  const auto base = EnergyModel(map_network(spec, cfg)).component_shares(4);
  cfg.e_xbar_row_read_pj *= 3.0;
  cfg.e_adc_conv_pj *= 3.0;
  cfg.e_switch_matrix_pj *= 3.0;
  cfg.e_mux_pj *= 3.0;
  cfg.e_shift_add_pj *= 3.0;
  cfg.e_accumulate_pj *= 3.0;
  cfg.e_buffer_rw_pj_per_byte *= 3.0;
  cfg.e_htree_pj_per_byte *= 3.0;
  cfg.e_noc_pj_per_byte *= 3.0;
  cfg.e_lif_update_pj *= 3.0;
  cfg.e_offchip_pj_per_byte *= 3.0;
  cfg.e_inference_setup_pj *= 3.0;
  const auto scaled = EnergyModel(map_network(spec, cfg)).component_shares(4);
  EXPECT_NEAR(base.noc, scaled.noc, 1e-9);
  EXPECT_NEAR(base.lif, scaled.lif, 1e-9);
}

TEST(EnergyModel, Resnet19AlsoMaps) {
  const EnergyModel m(map_network(resnet19_spec(), ImcConfig{}));
  EXPECT_GT(m.energy_pj(1), 0.0);
  const double ratio = m.energy_pj(8) / m.energy_pj(1);
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 8.0);
}

}  // namespace
}  // namespace dtsnn::imc
