// Unified inference API tests: the batched early-exit engine must be
// decision- and value-identical to the legacy batch-1 SequentialEngine (the
// reference oracle) on every dataset preset and exit policy, including
// ragged batches, all-exit-at-t=1 batches, per-request overrides, and the
// recorded per-timestep logits.

#include <gtest/gtest.h>

#include <tuple>

#include "core/engine.h"
#include "core/evaluator.h"
#include "core/exit_policy.h"
#include "core/inference.h"

namespace dtsnn::core {
namespace {

Experiment micro_experiment(const std::string& dataset, std::size_t timesteps,
                            std::uint64_t seed = 1) {
  ExperimentSpec spec;
  spec.model = "vgg_micro";
  spec.dataset = dataset;
  spec.epochs = 1;
  spec.timesteps = timesteps;
  spec.data_scale = 0.05;
  spec.seed = seed;
  return run_experiment(spec);
}

InferenceRequest first_n(std::size_t n, bool record_logits = false) {
  InferenceRequest request = InferenceRequest::first_n(n);
  request.record_logits = record_logits;
  return request;
}

/// Bitwise comparison of two engines' results on the same request.
void expect_identical(const std::vector<InferenceResult>& a,
                      const std::vector<InferenceResult>& b,
                      const std::string& context) {
  ASSERT_EQ(a.size(), b.size()) << context;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].sample, b[i].sample) << context << " sample " << i;
    EXPECT_EQ(a[i].predicted_class, b[i].predicted_class) << context << " sample " << i;
    EXPECT_EQ(a[i].exit_timestep, b[i].exit_timestep) << context << " sample " << i;
    EXPECT_EQ(a[i].final_entropy, b[i].final_entropy) << context << " sample " << i;
    ASSERT_EQ(a[i].timestep_logits.shape(), b[i].timestep_logits.shape())
        << context << " sample " << i;
    for (std::size_t j = 0; j < a[i].timestep_logits.numel(); ++j) {
      ASSERT_EQ(a[i].timestep_logits[j], b[i].timestep_logits[j])
          << context << " sample " << i << " logit " << j;
    }
  }
}

/// The core acceptance property: BatchedSequentialEngine is bitwise
/// identical to batch-1 SequentialEngine — predictions, exit timesteps,
/// entropies, and the full cumulative-logit trajectories — on every dataset
/// preset, for both shipped exit-policy families, with a batch size that
/// does not divide the sample count.
TEST(BatchedEngine, BitwiseIdenticalToBatch1AcrossPresets) {
  for (const std::string preset : {"sync10", "sync100", "syntin", "syndvs"}) {
    const std::size_t timesteps = preset == "syndvs" ? 5 : 3;
    Experiment e = micro_experiment(preset, timesteps);
    const auto& ds = *e.bundle.test;
    // 30 samples with batch 7: four full batches plus a ragged tail of 2.
    const auto request = first_n(std::min<std::size_t>(30, ds.size()), true);

    const EntropyExitPolicy entropy(0.35);
    const MaxProbExitPolicy maxprob(0.6);
    for (const ExitPolicy* policy : {static_cast<const ExitPolicy*>(&entropy),
                                     static_cast<const ExitPolicy*>(&maxprob)}) {
      SequentialEngine batch1(e.net, *policy, timesteps);
      BatchedSequentialEngine batched(e.net, *policy, timesteps, /*batch_size=*/7);
      const auto a = batch1.run(ds, request);
      const auto b = batched.run(ds, request);
      expect_identical(a, b, preset + "/" + policy->name());
    }
  }
}

TEST(BatchedEngine, WholeBatchExitsAtFirstTimestep) {
  Experiment e = micro_experiment("sync10", 3);
  const auto& ds = *e.bundle.test;
  // theta > 1 exits every sample at t=1: each step exits the entire live
  // pool and refills it with fresh samples; timesteps beyond t=1 never run.
  const EntropyExitPolicy always(1.01);
  SequentialEngine batch1(e.net, always, 3);
  BatchedSequentialEngine batched(e.net, always, 3, /*batch_size=*/8);
  const auto request = first_n(std::min<std::size_t>(16, ds.size()));
  const auto a = batch1.run(ds, request);
  const auto b = batched.run(ds, request);
  expect_identical(a, b, "all-exit-at-1");
  for (const auto& r : b) EXPECT_EQ(r.exit_timestep, 1u);
}

TEST(BatchedEngine, PerRequestPolicyAndBudgetOverrides) {
  Experiment e = micro_experiment("sync10", 3);
  const auto& ds = *e.bundle.test;
  const EntropyExitPolicy engine_default(1.01);  // would exit everything at t=1
  BatchedSequentialEngine batched(e.net, engine_default, 3, /*batch_size=*/5);

  // Policy override: never exit -> every sample runs the full budget.
  const NeverExitPolicy never;
  InferenceRequest request = first_n(std::min<std::size_t>(11, ds.size()));
  request.policy = &never;
  for (const auto& r : batched.run(ds, request)) EXPECT_EQ(r.exit_timestep, 3u);

  // Budget override on top: forced exit moves to t=2.
  request.max_timesteps = 2;
  for (const auto& r : batched.run(ds, request)) EXPECT_EQ(r.exit_timestep, 2u);

  // The override must match a batch-1 engine built with those settings.
  SequentialEngine batch1(e.net, never, 2);
  expect_identical(batch1.run(ds, first_n(11)), batched.run(ds, request),
                   "override vs dedicated engine");
}

TEST(BatchedEngine, StreamsEachSampleExactlyOnce) {
  Experiment e = micro_experiment("sync10", 3);
  const auto& ds = *e.bundle.test;
  const EntropyExitPolicy policy(0.5);
  BatchedSequentialEngine batched(e.net, policy, 3, /*batch_size=*/4);
  const auto request = first_n(std::min<std::size_t>(10, ds.size()));

  std::vector<std::size_t> seen(request.samples.size(), 0);
  std::size_t emissions = 0;
  batched.run_streaming(ds, request, [&](const InferenceResult& r) {
    ++emissions;
    ASSERT_LT(r.request_index, seen.size());
    ++seen[r.request_index];
    EXPECT_EQ(r.sample, request.samples[r.request_index]);
    EXPECT_GE(r.exit_timestep, 1u);
    EXPECT_LE(r.exit_timestep, 3u);
  });
  EXPECT_EQ(emissions, request.samples.size());
  for (const std::size_t count : seen) EXPECT_EQ(count, 1u);

  // run() reorders into request order, also with duplicate samples.
  InferenceRequest dupes;
  dupes.samples = {3, 1, 3, 0};
  const auto results = batched.run(ds, dupes);
  ASSERT_EQ(results.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(results[i].request_index, i);
    EXPECT_EQ(results[i].sample, dupes.samples[i]);
  }
  EXPECT_EQ(results[0].predicted_class, results[2].predicted_class);
  EXPECT_EQ(results[0].final_entropy, results[2].final_entropy);
}

TEST(BatchedEngine, RecordedLogitsMatchPostHocRows) {
  Experiment e = micro_experiment("sync10", 3);
  const auto& ds = *e.bundle.test;
  const auto outputs = test_outputs(e, 3, /*limit=*/12);
  const EntropyExitPolicy policy(0.4);
  BatchedSequentialEngine batched(e.net, policy, 3, /*batch_size=*/5);
  const auto results = batched.run(ds, first_n(outputs.samples, true));
  for (const auto& r : results) {
    ASSERT_EQ(r.timestep_logits.dim(0), r.exit_timestep);
    ASSERT_EQ(r.timestep_logits.dim(1), outputs.classes);
    // The stepped cumulative-mean logits reproduce the recorded post-hoc
    // rows bitwise (same accumulation, reciprocal-multiply normalization).
    for (std::size_t t = 0; t < r.exit_timestep; ++t) {
      const auto row = outputs.at(t, r.sample);
      for (std::size_t c = 0; c < outputs.classes; ++c) {
        ASSERT_EQ(r.timestep_logits.at(t, c), row[c])
            << "sample " << r.sample << " t " << t;
      }
    }
  }
}

TEST(BatchedEngine, EmptyAndInvalidRequests) {
  Experiment e = micro_experiment("sync10", 3);
  const auto& ds = *e.bundle.test;
  const EntropyExitPolicy policy(0.3);
  BatchedSequentialEngine batched(e.net, policy, 3);

  // Explicitly empty streaming request: nothing to do, no throw.
  std::size_t emissions = 0;
  InferenceRequest empty;
  batched.run_streaming(ds, empty, [&](const InferenceResult&) { ++emissions; });
  EXPECT_EQ(emissions, 0u);

  // Out-of-range sample indices are rejected up front.
  InferenceRequest bad;
  bad.samples = {ds.size()};
  EXPECT_THROW(batched.run(ds, bad), std::out_of_range);

  // An empty request passed to run()/evaluate_engine expands to the whole
  // dataset.
  const DtsnnResult all = evaluate_engine(batched, ds);
  EXPECT_EQ(all.exit_timestep.size(), ds.size());
}

/// Sample indices are validated before any network work: a bad index at the
/// end of the request must fail the whole request up front (no partial
/// emissions), with the offending position in the message, on every engine.
TEST(RequestValidation, EnginesRejectBadIndicesBeforeRunningAnything) {
  Experiment e = micro_experiment("sync10", 3);
  const auto& ds = *e.bundle.test;
  const EntropyExitPolicy policy(0.35);
  const auto outputs = test_outputs(e, 3, /*limit=*/8);

  SequentialEngine batch1(e.net, policy, 3);
  BatchedSequentialEngine batched(e.net, policy, 3, /*batch_size=*/4);
  PostHocEngine replay(outputs, policy);

  InferenceRequest bad;
  bad.samples = {0, 1, ds.size()};  // valid prefix, invalid tail
  for (InferenceEngine* engine : {static_cast<InferenceEngine*>(&batch1),
                                  static_cast<InferenceEngine*>(&batched)}) {
    std::size_t emissions = 0;
    EXPECT_THROW(
        engine->run_streaming(ds, bad, [&](const InferenceResult&) { ++emissions; }),
        std::out_of_range)
        << engine->name();
    EXPECT_EQ(emissions, 0u) << engine->name() << " emitted before validating";
  }
  // Replay engine: the limit is the recording, not the dataset.
  InferenceRequest past_recording;
  past_recording.samples = {0, outputs.samples};
  std::size_t emissions = 0;
  EXPECT_THROW(replay.run_streaming(ds, past_recording,
                                    [&](const InferenceResult&) { ++emissions; }),
               std::out_of_range);
  EXPECT_EQ(emissions, 0u);

  // The error message names the offending value and position.
  try {
    batch1.run(ds, bad);
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find(std::to_string(ds.size())), std::string::npos) << what;
    EXPECT_NE(what.find("position 2"), std::string::npos) << what;
  }

  // validate_request_samples is also the duplicate detector for callers
  // that forbid duplicates (the serving admission path).
  const std::vector<std::size_t> dupes = {4, 2, 4};
  EXPECT_EQ(validate_request_samples(dupes, 10, "test"), 3u);
  EXPECT_THROW(std::ignore = validate_request_samples(dupes, 10, "test",
                                                      /*allow_duplicates=*/false),
               std::invalid_argument);
}

/// evaluate_engine aggregates exactly like the legacy post-hoc evaluator.
TEST(BatchedEngine, EvaluateEngineMatchesPostHocAggregation) {
  Experiment e = micro_experiment("sync10", 3);
  const auto outputs = test_outputs(e, 3);
  const EntropyExitPolicy policy(0.3);
  const DtsnnResult posthoc = evaluate_recorded(outputs, policy, *e.bundle.test);

  BatchedSequentialEngine batched(e.net, policy, 3, /*batch_size=*/9);
  const DtsnnResult live = evaluate_engine(batched, *e.bundle.test);
  EXPECT_EQ(posthoc.exit_timestep, live.exit_timestep);
  EXPECT_EQ(posthoc.correct, live.correct);
  EXPECT_NEAR(posthoc.accuracy, live.accuracy, 1e-12);
  EXPECT_NEAR(posthoc.avg_timesteps, live.avg_timesteps, 1e-12);
  for (std::size_t t = 0; t < 3; ++t) {
    EXPECT_EQ(posthoc.timestep_histogram.count(t), live.timestep_histogram.count(t));
  }
}

}  // namespace
}  // namespace dtsnn::core
