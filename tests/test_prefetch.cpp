// ShardPrefetcher unit tests plus the BatchCursor lookahead contract. The
// prefetcher is strictly advisory, so the properties under test are: the
// activation rules (depth 0 / fully-resident storage spawn no worker), hints
// warming the shard cache asynchronously, the depth bound dropping stale
// hints instead of blocking, clean shutdown with hints still queued, the
// DTSNN_PREFETCH_DEPTH knob — and, for the cursor, that a ragged final chunk
// with prefetch depth 1 yields bitwise-identical batches to a prefetch-off
// cursor and to the in-memory source.

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "data/prefetch.h"
#include "data/shard.h"
#include "data/sharded_dataset.h"

namespace dtsnn::data {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_(fs::temp_directory_path() /
              ("dtsnn_prefetch_test_" + tag + "_" + std::to_string(::getpid()))) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

ArrayDataset make_source(std::size_t samples) {
  ArrayDataset ds({1, 2, 2}, /*frames=*/2, /*classes=*/4);
  ds.set_noise_seed(0xabcdef01);
  const std::size_t numel = 4 * 2;
  for (std::size_t s = 0; s < samples; ++s) {
    std::vector<float> data(numel);
    for (std::size_t i = 0; i < numel; ++i) {
      data[i] = 0.5f * static_cast<float>(s) + 0.125f * static_cast<float>(i);
    }
    ds.add_sample(std::move(data), static_cast<int>(s % 4),
                  static_cast<double>(s) / samples, /*temporal_noise=*/0.02f * (s % 2));
  }
  return ds;
}

// ----------------------------------------------------------- activation

TEST(ShardPrefetcher, DepthZeroAndResidentStorageDeactivate) {
  const ArrayDataset resident = make_source(4);
  // Fully-resident storage has nothing to prefetch: no worker regardless of
  // depth.
  const ShardPrefetcher on_resident(resident, /*depth=*/4);
  EXPECT_FALSE(on_resident.active());

  TempDir dir("deactivate");
  export_shards(resident, dir.path(), 2);
  const ShardedDataset sharded(dir.path());
  ShardPrefetcher depth_zero(sharded, /*depth=*/0);
  EXPECT_FALSE(depth_zero.active());
  // enqueue on an inactive prefetcher is a harmless no-op.
  const std::vector<std::size_t> hint{0, 1};
  depth_zero.enqueue(hint);
  const ShardPrefetcher::Stats stats = depth_zero.stats();
  EXPECT_EQ(stats.enqueued, 0u);

  const ShardPrefetcher active(sharded, /*depth=*/1);
  EXPECT_TRUE(active.active());
  EXPECT_EQ(active.depth(), 1u);
}

TEST(ShardPrefetcher, HintsWarmTheCacheAsynchronously) {
  TempDir dir("warm");
  const ArrayDataset source = make_source(8);
  export_shards(source, dir.path(), 2);  // 4 shards
  ShardCacheConfig config;
  config.cache_slots = 2;
  const ShardedDataset sharded(dir.path(), config);

  ShardPrefetcher prefetcher(sharded, /*depth=*/2);
  ASSERT_TRUE(prefetcher.active());
  const std::vector<std::size_t> hint{0, 3};  // shards 0 and 1
  prefetcher.enqueue(hint);
  prefetcher.wait_idle();

  // The worker's loads count as misses; the consumer's reads then hit.
  const std::size_t misses_after_warm = sharded.storage_stats().cache_misses;
  EXPECT_EQ(misses_after_warm, 2u);
  std::vector<float> frame(snn::shape_numel(sharded.frame_shape()));
  sharded.write_frame(0, 0, frame);
  sharded.write_frame(3, 0, frame);
  const DatasetStorageStats stats = sharded.storage_stats();
  EXPECT_EQ(stats.cache_misses, misses_after_warm);
  EXPECT_EQ(stats.cache_hits, 2u);

  const ShardPrefetcher::Stats pf = prefetcher.stats();
  EXPECT_EQ(pf.enqueued, 1u);
  EXPECT_EQ(pf.completed, 1u);
  EXPECT_EQ(pf.dropped, 0u);
}

TEST(ShardPrefetcher, DepthBoundDropsOldestInsteadOfBlocking) {
  TempDir dir("depth");
  const ArrayDataset source = make_source(8);
  export_shards(source, dir.path(), 2);
  const ShardedDataset sharded(dir.path());

  ShardPrefetcher prefetcher(sharded, /*depth=*/1);
  // Burst-enqueue more hints than the queue can hold; enqueue must never
  // block, and accounting must balance: accepted = serviced + displaced.
  std::vector<std::size_t> hint(1);
  for (std::size_t s = 0; s < 8; ++s) {
    hint[0] = s;
    prefetcher.enqueue(hint);
  }
  prefetcher.wait_idle();
  const ShardPrefetcher::Stats stats = prefetcher.stats();
  EXPECT_EQ(stats.enqueued, 8u);
  EXPECT_EQ(stats.completed + stats.dropped, stats.enqueued);
  EXPECT_GT(stats.completed, 0u);
}

TEST(ShardPrefetcher, DestructionWithQueuedHintsIsClean) {
  TempDir dir("shutdown");
  const ArrayDataset source = make_source(8);
  export_shards(source, dir.path(), 2);
  const ShardedDataset sharded(dir.path());
  {
    ShardPrefetcher prefetcher(sharded, /*depth=*/8);
    std::vector<std::size_t> hint(1);
    for (std::size_t s = 0; s < 8; ++s) {
      hint[0] = s;
      prefetcher.enqueue(hint);
    }
    // Destructor must stop and join the worker without draining the queue.
  }
  SUCCEED();
}

// NOLINTBEGIN(concurrency-mt-unsafe): deliberate env mutation; gtest runs
// tests serially in one thread.
TEST(ShardPrefetcher, EnvVarControlsAutoDepth) {
  TempDir dir("env");
  const ArrayDataset source = make_source(4);
  export_shards(source, dir.path(), 2);
  const ShardedDataset sharded(dir.path());

  const char* ambient = std::getenv("DTSNN_PREFETCH_DEPTH");
  const std::string saved = ambient ? ambient : "";

  ASSERT_EQ(setenv("DTSNN_PREFETCH_DEPTH", "5", 1), 0);
  EXPECT_EQ(ShardPrefetcher(sharded).depth(), 5u);
  ASSERT_EQ(setenv("DTSNN_PREFETCH_DEPTH", "0", 1), 0);
  EXPECT_FALSE(ShardPrefetcher(sharded).active());
  ASSERT_EQ(setenv("DTSNN_PREFETCH_DEPTH", "fast", 1), 0);
  EXPECT_THROW(ShardPrefetcher{sharded}, std::invalid_argument);
  ASSERT_EQ(unsetenv("DTSNN_PREFETCH_DEPTH"), 0);
  EXPECT_EQ(ShardPrefetcher(sharded).depth(), ShardPrefetcher::kDefaultDepth);

  // An explicit depth wins over the environment.
  ASSERT_EQ(setenv("DTSNN_PREFETCH_DEPTH", "7", 1), 0);
  EXPECT_EQ(ShardPrefetcher(sharded, /*depth=*/1).depth(), 1u);

  if (ambient) {
    ASSERT_EQ(setenv("DTSNN_PREFETCH_DEPTH", saved.c_str(), 1), 0);
  } else {
    ASSERT_EQ(unsetenv("DTSNN_PREFETCH_DEPTH"), 0);
  }
}
// NOLINTEND(concurrency-mt-unsafe)

// ------------------------------------------------------ BatchCursor lookahead

// Ragged final chunk + minimum lookahead: 10 samples in chunks of 4 yield
// 4/4/2, and a depth-1 prefetcher hints exactly one chunk ahead, so the
// final (short) chunk arrives via a short hint. Everything must be bitwise
// identical to a prefetch-off cursor and to the in-memory source.
TEST(BatchCursor, RaggedFinalChunkBitwiseIdenticalWithDepthOnePrefetch) {
  TempDir dir("ragged");
  const ArrayDataset source = make_source(10);
  export_shards(source, dir.path(), 3);
  ShardCacheConfig config;
  config.cache_slots = 2;
  const ShardedDataset sharded(dir.path(), config);

  constexpr std::size_t kTimesteps = 3;
  constexpr std::size_t kChunk = 4;
  BatchCursor on(sharded, sharded.size(), kTimesteps, kChunk, /*prefetch_depth=*/1);
  BatchCursor off(sharded, sharded.size(), kTimesteps, kChunk, /*prefetch_depth=*/0);
  BatchCursor oracle(source, source.size(), kTimesteps, kChunk, /*prefetch_depth=*/0);

  const std::vector<std::size_t> expected_sizes{4, 4, 2};
  std::size_t chunk = 0;
  while (oracle.next()) {
    ASSERT_TRUE(on.next());
    ASSERT_TRUE(off.next());
    ASSERT_LT(chunk, expected_sizes.size());
    EXPECT_EQ(oracle.chunk_size(), expected_sizes[chunk]);
    EXPECT_EQ(on.chunk_size(), expected_sizes[chunk]);
    EXPECT_EQ(on.start(), oracle.start());
    ASSERT_EQ(on.batch().x.shape(), oracle.batch().x.shape());
    for (std::size_t i = 0; i < oracle.batch().x.numel(); ++i) {
      ASSERT_EQ(on.batch().x[i], oracle.batch().x[i]) << "chunk " << chunk;
      ASSERT_EQ(off.batch().x[i], oracle.batch().x[i]) << "chunk " << chunk;
    }
    EXPECT_EQ(on.batch().labels, oracle.batch().labels);
    ++chunk;
  }
  EXPECT_FALSE(on.next());
  EXPECT_FALSE(off.next());
  EXPECT_EQ(chunk, expected_sizes.size());
}

// The index-list form with an out-of-order selection exercises the subspan
// hint path; identity must hold there too.
TEST(BatchCursor, IndexListLookaheadBitwiseIdentical) {
  TempDir dir("list");
  const ArrayDataset source = make_source(9);
  export_shards(source, dir.path(), 2);
  ShardCacheConfig config;
  config.cache_slots = 1;  // lookahead warms shards the next chunk evicts into
  const ShardedDataset sharded(dir.path(), config);

  const std::vector<std::size_t> picks{8, 0, 5, 2, 7, 1, 6};
  constexpr std::size_t kTimesteps = 2;
  BatchCursor on(sharded, picks, kTimesteps, /*chunk_samples=*/3, /*prefetch_depth=*/2);
  BatchCursor oracle(source, picks, kTimesteps, /*chunk_samples=*/3,
                     /*prefetch_depth=*/0);
  while (oracle.next()) {
    ASSERT_TRUE(on.next());
    ASSERT_EQ(on.batch().x.shape(), oracle.batch().x.shape());
    for (std::size_t i = 0; i < oracle.batch().x.numel(); ++i) {
      ASSERT_EQ(on.batch().x[i], oracle.batch().x[i]);
    }
    EXPECT_EQ(on.batch().labels, oracle.batch().labels);
  }
  EXPECT_FALSE(on.next());
}

}  // namespace
}  // namespace dtsnn::data
