// Tests for weight quantization, the program-and-read device pipeline, and
// the bit-accurate functional crossbar MVM.

#include <gtest/gtest.h>

#include "imc/xbar_functional.h"
#include "snn/models.h"
#include "util/stats.h"

namespace dtsnn::imc {
namespace {

TEST(Quantize, RoundTripWithinHalfStep) {
  util::Rng rng(71);
  std::vector<float> w(256);
  for (auto& v : w) v = static_cast<float>(rng.gaussian(0.0, 0.1));
  const auto qt = quantize_symmetric(w, 8);
  const auto back = dequantize(qt);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(back[i], w[i], qt.scale * 0.5f + 1e-7f);
  }
}

TEST(Quantize, SymmetricRange) {
  std::vector<float> w{-1.0f, 0.0f, 1.0f};
  const auto qt = quantize_symmetric(w, 8);
  EXPECT_EQ(qt.q[0], -127);
  EXPECT_EQ(qt.q[1], 0);
  EXPECT_EQ(qt.q[2], 127);
}

TEST(Quantize, FewerBitsCoarser) {
  util::Rng rng(72);
  std::vector<float> w(512);
  for (auto& v : w) v = static_cast<float>(rng.gaussian());
  double err8 = 0.0, err4 = 0.0;
  const auto q8 = quantize_symmetric(w, 8);
  const auto q4 = quantize_symmetric(w, 4);
  const auto b8 = dequantize(q8);
  const auto b4 = dequantize(q4);
  for (std::size_t i = 0; i < w.size(); ++i) {
    err8 += std::abs(b8[i] - w[i]);
    err4 += std::abs(b4[i] - w[i]);
  }
  EXPECT_LT(err8, err4);
}

TEST(Quantize, RejectsBadBits) {
  std::vector<float> w{1.0f};
  EXPECT_THROW(quantize_symmetric(w, 1), std::invalid_argument);
  EXPECT_THROW(quantize_symmetric(w, 17), std::invalid_argument);
}

TEST(Quantize, AllZerosStable) {
  std::vector<float> w(16, 0.0f);
  const auto qt = quantize_symmetric(w, 8);
  for (const int q : qt.q) EXPECT_EQ(q, 0);
  EXPECT_GT(qt.scale, 0.0f);
}

// --------------------------------------------------------- program & read

TEST(ProgramRead, NoiselessIsExact) {
  ImcConfig cfg;
  cfg.device_sigma_over_mu = 0.0;
  util::Rng rng(73);
  for (const int q : {-127, -16, -1, 0, 1, 15, 16, 127}) {
    const float w = program_and_read_weight(q, 0.01f, cfg, rng);
    EXPECT_NEAR(w, q * 0.01f, 1e-5f) << q;
  }
}

TEST(ProgramRead, NoiseIsUnbiasedAndScaled) {
  ImcConfig cfg;  // sigma/mu = 20%
  util::Rng rng(74);
  util::RunningStats stats;
  const int q = 100;
  const float scale = 0.01f;
  for (int i = 0; i < 4000; ++i) {
    stats.add(program_and_read_weight(q, scale, cfg, rng));
  }
  EXPECT_NEAR(stats.mean(), q * scale, 0.01);
  EXPECT_GT(stats.stddev(), 0.0);
  // More noise with higher sigma.
  ImcConfig noisy = cfg;
  noisy.device_sigma_over_mu = 0.4;
  util::Rng rng2(74);
  util::RunningStats stats2;
  for (int i = 0; i < 4000; ++i) {
    stats2.add(program_and_read_weight(q, scale, noisy, rng2));
  }
  EXPECT_GT(stats2.stddev(), stats.stddev());
}

TEST(ProgramRead, DeterministicGivenRngState) {
  ImcConfig cfg;
  util::Rng a(75), b(75);
  EXPECT_EQ(program_and_read_weight(42, 0.02f, cfg, a),
            program_and_read_weight(42, 0.02f, cfg, b));
}

TEST(DeviceVariation, PerturbsOnlyWeights) {
  snn::ModelConfig mc;
  mc.num_classes = 4;
  mc.input_shape = {3, 8, 8};
  snn::SpikingNetwork net = snn::make_model("vgg_micro", mc);

  // Snapshot all params.
  std::vector<snn::Tensor> before;
  for (snn::Param* p : net.params()) before.push_back(p->value);

  ImcConfig cfg;
  const std::size_t n = apply_device_variation(net, cfg, 123);
  EXPECT_GT(n, 0u);

  auto params = net.params();
  for (std::size_t i = 0; i < params.size(); ++i) {
    const bool is_weight = params[i]->name.find("weight") != std::string::npos;
    if (is_weight) {
      EXPECT_FALSE(params[i]->value.allclose(before[i])) << params[i]->name;
    } else {
      EXPECT_TRUE(params[i]->value.allclose(before[i])) << params[i]->name;
    }
  }
}

TEST(DeviceVariation, DeterministicBySeed) {
  snn::ModelConfig mc;
  mc.num_classes = 4;
  mc.input_shape = {3, 8, 8};
  snn::SpikingNetwork a = snn::make_model("vgg_micro", mc);
  snn::SpikingNetwork b = snn::make_model("vgg_micro", mc);
  ImcConfig cfg;
  apply_device_variation(a, cfg, 5);
  apply_device_variation(b, cfg, 5);
  auto pa = a.params(), pb = b.params();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(pa[i]->value.allclose(pb[i]->value));
  }
}

TEST(DeviceVariation, ZeroSigmaOnlyQuantizes) {
  snn::ModelConfig mc;
  mc.num_classes = 4;
  mc.input_shape = {3, 8, 8};
  snn::SpikingNetwork net = snn::make_model("vgg_micro", mc);
  snn::Tensor before = net.params()[0]->value;
  ImcConfig cfg;
  cfg.device_sigma_over_mu = 0.0;
  apply_device_variation(net, cfg, 9);
  // With no noise the only change is 8-bit quantization: small and bounded.
  const snn::Tensor& after = net.params()[0]->value;
  float max_dev = 0.0f;
  for (std::size_t i = 0; i < after.numel(); ++i) {
    max_dev = std::max(max_dev, std::abs(after[i] - before[i]));
  }
  EXPECT_LT(max_dev, before.abs_max() / 127.0f + 1e-5f);
}

// ------------------------------------------------------ functional crossbar

TEST(FunctionalCrossbar, FitsCheck) {
  const ImcConfig cfg;  // 64x64, 4 device cols per weight -> max 16 logical
  EXPECT_NO_THROW(FunctionalCrossbar(cfg, 64, 16, 1));
  EXPECT_THROW(FunctionalCrossbar(cfg, 65, 8, 1), std::invalid_argument);
  EXPECT_THROW(FunctionalCrossbar(cfg, 64, 17, 1), std::invalid_argument);
}

TEST(FunctionalCrossbar, IdealMatchesQuantizedDot) {
  ImcConfig cfg;
  FunctionalCrossbar xbar(cfg, 32, 8, 2);
  util::Rng rng(76);
  std::vector<float> w(32 * 8);
  for (auto& v : w) v = static_cast<float>(rng.gaussian(0.0, 0.05));
  xbar.program(w);

  std::vector<float> spikes(32, 0.0f);
  for (std::size_t i = 0; i < 32; i += 2) spikes[i] = 1.0f;
  const auto out = xbar.mvm_ideal(spikes);
  // Reference: quantized weights dot spikes.
  const auto qt = quantize_symmetric(w, cfg.weight_bits);
  for (std::size_t c = 0; c < 8; ++c) {
    float ref = 0.0f;
    for (std::size_t r = 0; r < 32; ++r) {
      ref += static_cast<float>(qt.q[r * 8 + c]) * qt.scale * spikes[r];
    }
    EXPECT_NEAR(out[c], ref, 1e-4f);
  }
}

TEST(FunctionalCrossbar, AnalogTracksIdealWithoutNoise) {
  ImcConfig cfg;
  cfg.device_sigma_over_mu = 0.0;
  cfg.adc_bits = 12;  // fine ADC isolates device path
  FunctionalCrossbar xbar(cfg, 16, 4, 3);
  util::Rng rng(77);
  std::vector<float> w(16 * 4);
  for (auto& v : w) v = static_cast<float>(rng.gaussian(0.0, 0.05));
  xbar.program(w);
  std::vector<float> spikes(16, 1.0f);
  const auto ideal = xbar.mvm_ideal(spikes);
  const auto analog = xbar.mvm_analog(spikes);
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_NEAR(analog[c], ideal[c], std::abs(ideal[c]) * 0.1f + xbar.scale() * 4.0f) << c;
  }
}

TEST(FunctionalCrossbar, CoarseAdcDegradesAccuracy) {
  ImcConfig fine_cfg;
  fine_cfg.device_sigma_over_mu = 0.0;
  fine_cfg.adc_bits = 12;
  ImcConfig coarse_cfg = fine_cfg;
  coarse_cfg.adc_bits = 3;

  util::Rng rng(78);
  std::vector<float> w(32 * 4);
  for (auto& v : w) v = static_cast<float>(rng.gaussian(0.0, 0.05));
  std::vector<float> spikes(32, 0.0f);
  for (std::size_t i = 0; i < 32; i += 3) spikes[i] = 1.0f;

  FunctionalCrossbar fine(fine_cfg, 32, 4, 5);
  FunctionalCrossbar coarse(coarse_cfg, 32, 4, 5);
  fine.program(w);
  coarse.program(w);
  const auto ideal = fine.mvm_ideal(spikes);
  double err_fine = 0.0, err_coarse = 0.0;
  const auto out_fine = fine.mvm_analog(spikes);
  const auto out_coarse = coarse.mvm_analog(spikes);
  for (std::size_t c = 0; c < 4; ++c) {
    err_fine += std::abs(out_fine[c] - ideal[c]);
    err_coarse += std::abs(out_coarse[c] - ideal[c]);
  }
  EXPECT_LE(err_fine, err_coarse);
}

TEST(FunctionalCrossbar, ZeroSpikesGiveZeroOutput) {
  ImcConfig cfg;
  FunctionalCrossbar xbar(cfg, 8, 2, 6);
  std::vector<float> w(16, 0.1f);
  xbar.program(w);
  const std::vector<float> silent(8, 0.0f);
  for (const float v : xbar.mvm_ideal(silent)) EXPECT_FLOAT_EQ(v, 0.0f);
  for (const float v : xbar.mvm_analog(silent)) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(FunctionalCrossbar, ProgramValidatesSize) {
  ImcConfig cfg;
  FunctionalCrossbar xbar(cfg, 8, 2, 7);
  EXPECT_THROW(xbar.program(std::vector<float>(15)), std::invalid_argument);
}

}  // namespace
}  // namespace dtsnn::imc
