// Serving-layer tests. The load-bearing property is the bitwise identity
// contract: every served result — prediction, exit timestep, exit entropy,
// recorded cumulative-logit trajectory — equals the offline batch-1
// SequentialEngine oracle, on every dataset preset and both shipped policy
// families, under concurrent submission from multiple client threads and
// mid-flight admission into a busy pool. Plus the serving-only behaviors:
// deadline-forced exits, drain-on-shutdown, submission-time validation, and
// server stats.

#include <atomic>
#include <chrono>
#include <future>
#include <thread>  // std::this_thread::sleep_for (client pacing only)

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/evaluator.h"
#include "core/exit_policy.h"
#include "serve/server.h"
#include "util/thread.h"

namespace dtsnn::serve {
namespace {

using core::InferenceRequest;
using core::InferenceResult;

core::Experiment micro_experiment(const std::string& dataset, std::size_t timesteps,
                                  std::uint64_t seed = 1) {
  core::ExperimentSpec spec;
  spec.model = "vgg_micro";
  spec.dataset = dataset;
  spec.epochs = 1;
  spec.timesteps = timesteps;
  spec.data_scale = 0.05;
  spec.seed = seed;
  return core::run_experiment(spec);
}

/// Request for an explicit index list. (push_back instead of an
/// initializer-list assignment: GCC 12's -Wnonnull trips on the latter's
/// inlined memmove at -O2.)
ServeRequest request_for(std::initializer_list<std::size_t> samples,
                         bool record_logits = false) {
  ServeRequest req;
  for (const std::size_t s : samples) req.request.samples.push_back(s);
  req.request.record_logits = record_logits;
  return req;
}

/// Bitwise comparison of a served result against the oracle's.
void expect_identical(const InferenceResult& served, const InferenceResult& oracle,
                      const std::string& context) {
  EXPECT_EQ(served.sample, oracle.sample) << context;
  EXPECT_EQ(served.predicted_class, oracle.predicted_class) << context;
  EXPECT_EQ(served.exit_timestep, oracle.exit_timestep) << context;
  EXPECT_EQ(served.final_entropy, oracle.final_entropy) << context;
  ASSERT_EQ(served.timestep_logits.shape(), oracle.timestep_logits.shape()) << context;
  for (std::size_t j = 0; j < served.timestep_logits.numel(); ++j) {
    ASSERT_EQ(served.timestep_logits[j], oracle.timestep_logits[j])
        << context << " logit " << j;
  }
}

/// The headline acceptance property: served results are bitwise identical
/// to the offline batch-1 oracle on all four dataset presets, under both
/// entropy and max-prob policies, with >= 4 client threads submitting
/// concurrently into a pool the threads contend for.
TEST(InferenceServer, ServedBitwiseIdenticalToOfflineOracleAcrossPresets) {
  for (const std::string preset : {"sync10", "sync100", "syntin", "syndvs"}) {
    const std::size_t timesteps = preset == "syndvs" ? 5 : 3;
    core::Experiment e = micro_experiment(preset, timesteps);
    const auto& ds = *e.bundle.test;
    const std::size_t n = std::min<std::size_t>(24, ds.size());

    const core::EntropyExitPolicy entropy(0.35);
    const core::MaxProbExitPolicy maxprob(0.6);
    for (const core::ExitPolicy* policy :
         {static_cast<const core::ExitPolicy*>(&entropy),
          static_cast<const core::ExitPolicy*>(&maxprob)}) {
      const std::string context = preset + "/" + policy->name();

      // Offline oracle first — the network is shared, and the server takes
      // exclusive use of it between construction and drain().
      core::SequentialEngine batch1(e.net, *policy, timesteps);
      InferenceRequest all = InferenceRequest::first_n(n);
      all.record_logits = true;
      const std::vector<InferenceResult> oracle = batch1.run(ds, all);

      ServerConfig config;
      config.max_pool = 5;  // smaller than n: constant admission churn
      std::vector<std::future<std::vector<InferenceResult>>> futures(n);
      {
        InferenceServer server(e.net, ds, *policy, timesteps, config);
        // 4 client threads submit interleaved single-sample requests.
        constexpr std::size_t kClients = 4;
        std::vector<util::Thread> clients;
        for (std::size_t c = 0; c < kClients; ++c) {
          clients.emplace_back([&, c] {
            for (std::size_t s = c; s < n; s += kClients) {
              futures[s] = server.submit(request_for({s}, /*record_logits=*/true));
            }
          });
        }
        for (auto& t : clients) t.join();
        server.drain();
      }
      for (std::size_t s = 0; s < n; ++s) {
        const std::vector<InferenceResult> got = futures[s].get();
        ASSERT_EQ(got.size(), 1u) << context;
        expect_identical(got[0], oracle[s], context + " sample " + std::to_string(s));
      }
    }
  }
}

/// Samples admitted into a half-busy pool mid-flight must neither perturb
/// residents nor be perturbed themselves: everyone matches the oracle.
TEST(InferenceServer, MidFlightAdmissionPreservesIdentity) {
  core::Experiment e = micro_experiment("sync10", 4);
  const auto& ds = *e.bundle.test;
  const std::size_t n = std::min<std::size_t>(12, ds.size());

  // Residents run the full budget (never exit), so late arrivals are
  // admitted into free slots while residents hold theirs across timesteps.
  const core::NeverExitPolicy never;
  core::SequentialEngine batch1(e.net, never, 4);
  InferenceRequest all = InferenceRequest::first_n(n);
  all.record_logits = true;
  const std::vector<InferenceResult> oracle = batch1.run(ds, all);

  ServerConfig config;
  config.max_pool = 8;  // residents occupy 3 slots; arrivals join the rest
  InferenceServer server(e.net, ds, never, 4, config);

  auto resident_future = server.submit(request_for({0, 1, 2}, /*record_logits=*/true));

  // Trickle in the rest from another thread while the pool is running.
  std::vector<std::future<std::vector<InferenceResult>>> later;
  for (std::size_t s = 3; s < n; ++s) {
    later.push_back(server.submit(request_for({s}, /*record_logits=*/true)));
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  server.drain();

  const std::vector<InferenceResult> resident_results = resident_future.get();
  ASSERT_EQ(resident_results.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    expect_identical(resident_results[i], oracle[i], "resident " + std::to_string(i));
    EXPECT_EQ(resident_results[i].exit_timestep, 4u);
  }
  for (std::size_t i = 0; i < later.size(); ++i) {
    const auto got = later[i].get();
    ASSERT_EQ(got.size(), 1u);
    expect_identical(got[0], oracle[3 + i], "arrival " + std::to_string(3 + i));
  }

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted_samples, n);
  EXPECT_EQ(stats.completed_samples, n);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.live_samples, 0u);
  EXPECT_GE(stats.peak_pool, 3u);
  EXPECT_LE(stats.peak_pool, config.max_pool);
  EXPECT_EQ(stats.exit_timesteps.total(), n);
  EXPECT_EQ(stats.exit_timesteps.count(3), n);  // everyone exits at t=4
  EXPECT_DOUBLE_EQ(stats.mean_exit_timestep, 4.0);
  EXPECT_EQ(stats.latency_us.count, n);
  EXPECT_GE(stats.latency_us.p99, stats.latency_us.p50);
}

/// An expired deadline forces exit at the first timestep boundary, with the
/// same quantities a budget-1 oracle reports — not a dropped request.
TEST(InferenceServer, DeadlineForcedExitMatchesBudget1Oracle) {
  core::Experiment e = micro_experiment("sync10", 4);
  const auto& ds = *e.bundle.test;
  const std::size_t n = std::min<std::size_t>(6, ds.size());

  const core::NeverExitPolicy never;  // only the deadline can end these early
  core::SequentialEngine batch1(e.net, never, 4);
  InferenceRequest all = InferenceRequest::first_n(n);
  all.record_logits = true;
  all.max_timesteps = 1;  // the oracle for a deadline hit at t=1
  const std::vector<InferenceResult> oracle = batch1.run(ds, all);

  InferenceServer server(e.net, ds, never, 4);
  ServeRequest req;
  req.request = InferenceRequest::first_n(n);
  req.request.record_logits = true;
  req.deadline = ServeClock::now() - std::chrono::seconds(1);  // already past
  auto future = server.submit(std::move(req));
  server.drain();

  const std::vector<InferenceResult> got = future.get();
  ASSERT_EQ(got.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(got[i].exit_timestep, 1u);
    expect_identical(got[i], oracle[i], "deadline sample " + std::to_string(i));
  }
  EXPECT_EQ(server.stats().deadline_forced_exits, n);
}

TEST(InferenceServer, DrainCompletesAcceptedWorkAndRejectsNew) {
  core::Experiment e = micro_experiment("sync10", 3);
  const auto& ds = *e.bundle.test;
  const core::EntropyExitPolicy policy(0.35);

  InferenceServer server(e.net, ds, policy, 3, ServerConfig{.max_pool = 4});
  std::vector<std::future<std::vector<InferenceResult>>> futures;
  const std::size_t n = std::min<std::size_t>(10, ds.size());
  for (std::size_t s = 0; s < n; ++s) {
    futures.push_back(server.submit(request_for({s})));
  }
  server.drain();

  // Every accepted sample completed; its future is ready, not abandoned.
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    EXPECT_EQ(f.get().size(), 1u);
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed_samples, n);
  EXPECT_EQ(stats.queue_depth, 0u);

  EXPECT_THROW(server.submit(request_for({0})), std::runtime_error);
  server.drain();  // idempotent
}

TEST(InferenceServer, SubmitValidatesUpFront) {
  core::Experiment e = micro_experiment("sync10", 3);
  const auto& ds = *e.bundle.test;
  const core::EntropyExitPolicy policy(0.35);
  InferenceServer server(e.net, ds, policy, 3);

  ServeRequest out_of_range = request_for({0});
  out_of_range.request.samples.push_back(ds.size());
  EXPECT_THROW(server.submit(std::move(out_of_range)), std::out_of_range);

  EXPECT_THROW(server.submit(request_for({1, 2, 1})), std::invalid_argument);

  ServeRequest over_budget = request_for({0});
  over_budget.request.max_timesteps = 4;  // server budget is 3
  EXPECT_THROW(server.submit(std::move(over_budget)), std::invalid_argument);

  // Nothing was accepted by the rejected submissions.
  EXPECT_EQ(server.stats().submitted_samples, 0u);

  // An empty request expands to the whole dataset, like the offline run().
  ServeRequest everything;
  auto future = server.submit(std::move(everything));
  EXPECT_EQ(future.get().size(), ds.size());

  // Over an *empty* dataset the expansion stays empty: the future resolves
  // immediately with no results instead of hanging forever.
  data::ArrayDataset empty_ds(ds.frame_shape(), 1, ds.num_classes());
  InferenceServer empty_server(e.net, empty_ds, policy, 3);
  EXPECT_EQ(empty_server.submit(ServeRequest{}).get().size(), 0u);

  EXPECT_THROW(InferenceServer(e.net, ds, policy, 0), std::invalid_argument);
  EXPECT_THROW(InferenceServer(e.net, ds, policy, 3, ServerConfig{.max_pool = 0}),
               std::invalid_argument);
}

/// Per-request policy and budget overrides behave exactly as they do on the
/// offline engines, and streaming callbacks fire once per sample with the
/// right request mapping, before the future resolves.
TEST(InferenceServer, OverridesAndStreamingCallbacks) {
  core::Experiment e = micro_experiment("sync10", 3);
  const auto& ds = *e.bundle.test;
  const std::size_t n = std::min<std::size_t>(9, ds.size());

  const core::NeverExitPolicy never;  // server default: run the full budget
  InferenceServer server(e.net, ds, never, 3, ServerConfig{.max_pool = 4});

  // Policy override: exit everything at t=1.
  const core::EntropyExitPolicy immediate(1.01);
  std::atomic<std::size_t> streamed{0};
  ServeRequest req;
  req.request = InferenceRequest::first_n(n);
  req.request.policy = &immediate;
  req.on_result = [&](const InferenceResult& r) {
    ++streamed;
    EXPECT_LT(r.request_index, n);
    EXPECT_EQ(r.sample, r.request_index);  // first_n maps position == sample
    EXPECT_EQ(r.exit_timestep, 1u);
  };
  const auto results = server.submit(std::move(req)).get();
  EXPECT_EQ(streamed.load(), n);
  ASSERT_EQ(results.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(results[i].request_index, i);
    EXPECT_EQ(results[i].exit_timestep, 1u);
  }

  // Budget override below the server budget: forced exit moves to t=2.
  ServeRequest shorter;
  shorter.request = InferenceRequest::first_n(n);
  shorter.request.max_timesteps = 2;
  for (const auto& r : server.submit(std::move(shorter)).get()) {
    EXPECT_EQ(r.exit_timestep, 2u);
  }
}

/// Concurrent multi-sample requests with mixed per-request policies resolve
/// independently and still match their respective oracles.
TEST(InferenceServer, ConcurrentMixedPolicyRequests) {
  core::Experiment e = micro_experiment("sync10", 3);
  const auto& ds = *e.bundle.test;
  const std::size_t n = std::min<std::size_t>(16, ds.size());

  const core::EntropyExitPolicy tight(0.2);
  const core::EntropyExitPolicy loose(0.6);
  core::SequentialEngine batch1_tight(e.net, tight, 3);
  core::SequentialEngine batch1_loose(e.net, loose, 3);
  const auto oracle_tight = batch1_tight.run(ds, InferenceRequest::first_n(n));
  const auto oracle_loose = batch1_loose.run(ds, InferenceRequest::first_n(n));

  InferenceServer server(e.net, ds, tight, 3, ServerConfig{.max_pool = 6});
  std::vector<std::future<std::vector<InferenceResult>>> tight_futs(4), loose_futs(4);
  std::vector<util::Thread> clients;
  for (std::size_t c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      // Each client submits one 4-sample tight request and one loose
      // override request over the same disjoint slice.
      ServeRequest a;
      ServeRequest b;
      for (std::size_t s = c * 4; s < c * 4 + 4 && s < n; ++s) {
        a.request.samples.push_back(s);
        b.request.samples.push_back(s);
      }
      tight_futs[c] = server.submit(std::move(a));
      b.request.policy = &loose;
      loose_futs[c] = server.submit(std::move(b));
    });
  }
  for (auto& t : clients) t.join();
  server.drain();

  for (std::size_t c = 0; c < 4; ++c) {
    const auto ta = tight_futs[c].get();
    const auto tb = loose_futs[c].get();
    for (std::size_t i = 0; i < ta.size(); ++i) {
      expect_identical(ta[i], oracle_tight[ta[i].sample], "tight");
      expect_identical(tb[i], oracle_loose[tb[i].sample], "loose");
    }
  }
}

/// A throwing user exit policy must not take the server down: the affected
/// request's future carries the exception, and the server keeps serving
/// later requests correctly.
TEST(InferenceServer, WorkerExceptionFailsRequestNotServer) {
  struct ThrowingPolicy final : core::ExitPolicy {
    [[nodiscard]] bool should_exit(std::span<const float>) const override {
      throw std::runtime_error("policy bug");
    }
    [[nodiscard]] std::string name() const override { return "throwing"; }
  };

  core::Experiment e = micro_experiment("sync10", 3);
  const auto& ds = *e.bundle.test;
  const core::EntropyExitPolicy good(0.35);
  core::SequentialEngine batch1(e.net, good, 3);
  const auto oracle = batch1.run(ds, InferenceRequest::first_n(4));

  InferenceServer server(e.net, ds, good, 3, ServerConfig{.max_pool = 4});
  const ThrowingPolicy bad;
  ServeRequest poisoned = request_for({0, 1});
  poisoned.request.policy = &bad;
  auto poisoned_future = server.submit(std::move(poisoned));
  EXPECT_THROW(poisoned_future.get(), std::runtime_error);

  // The server survives and subsequent requests still match the oracle.
  for (std::size_t s = 0; s < 4; ++s) {
    const auto got = server.submit(request_for({s})).get();
    ASSERT_EQ(got.size(), 1u);
    expect_identical(got[0], oracle[s], "after worker failure");
  }

  // A throwing result callback fails only its own request the same way.
  ServeRequest bad_callback = request_for({5});
  bad_callback.on_result = [](const InferenceResult&) {
    throw std::runtime_error("callback bug");
  };
  auto cb_future = server.submit(std::move(bad_callback));
  EXPECT_THROW(cb_future.get(), std::runtime_error);
  const auto after = server.submit(request_for({1})).get();
  expect_identical(after.at(0), oracle[1], "after callback failure");

  // At quiescence, completed + failed partition the submitted samples:
  // discarded work of failed requests never counts as completed. (Checked
  // after drain — the worker publishes stats after resolving the futures.)
  server.drain();
  const ServerStats final_stats = server.stats();
  EXPECT_EQ(final_stats.submitted_samples, 8u);
  EXPECT_EQ(final_stats.completed_samples, 5u);
  EXPECT_EQ(final_stats.failed_samples, 3u);  // 2 policy-poisoned + 1 callback
  EXPECT_EQ(final_stats.exit_timesteps.total(), final_stats.completed_samples);
}

/// The exit policy is consulted for exactly the same cum rows as on the
/// batch-1 oracle: never at the budget-exhaustion step (short-circuit
/// parity), so a policy only defined below the budget behaves identically.
TEST(InferenceServer, PolicyConsultedOnlyBelowBudget) {
  struct CountingPolicy final : core::ExitPolicy {
    mutable std::atomic<std::size_t> calls{0};
    [[nodiscard]] bool should_exit(std::span<const float>) const override {
      ++calls;
      return false;
    }
    [[nodiscard]] std::string name() const override { return "counting"; }
  };

  core::Experiment e = micro_experiment("sync10", 3);
  const auto& ds = *e.bundle.test;
  const CountingPolicy counting;
  {
    InferenceServer server(e.net, ds, counting, 3, ServerConfig{.max_pool = 4});
    ServeRequest req;
    req.request = InferenceRequest::first_n(5);
    server.submit(std::move(req)).get();
  }
  // 5 samples x budget 3: consulted at t=1 and t=2, never at the forced
  // exit — exactly what SequentialEngine does.
  EXPECT_EQ(counting.calls.load(), 10u);
}

/// The destructor alone drains gracefully: accepted work completes even if
/// the client never calls drain().
TEST(InferenceServer, DestructorDrains) {
  core::Experiment e = micro_experiment("sync10", 3);
  const auto& ds = *e.bundle.test;
  const core::EntropyExitPolicy policy(0.35);
  std::future<std::vector<InferenceResult>> future;
  {
    InferenceServer server(e.net, ds, policy, 3, ServerConfig{.max_pool = 2});
    ServeRequest req;
    req.request = InferenceRequest::first_n(std::min<std::size_t>(8, ds.size()));
    future = server.submit(std::move(req));
  }
  ASSERT_EQ(future.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(future.get().size(), std::min<std::size_t>(8, ds.size()));
}

/// Regression: a deadline landing exactly on the timestep-budget boundary
/// must report ONE consistent forced-exit reason. The decision order is
/// budget first, deadline only when the budget did not already claim the
/// exit — so an expired deadline on a budget-1 request counts as budget
/// exhaustion (deadline_forced_exits == 0), an expired deadline under a
/// larger budget counts as a deadline force, and in both cases the exit
/// histogram's total equals completed_samples exactly (never double
/// counted).
TEST(InferenceServer, DeadlineOnBudgetBoundaryCountsOnce) {
  core::Experiment e = micro_experiment("sync10", 4);
  const auto& ds = *e.bundle.test;
  const core::NeverExitPolicy never;

  {
    // Both conditions true at the same boundary: budget 1 exhausts at t=1,
    // and the deadline has already passed when the decision is made.
    InferenceServer server(e.net, ds, never, 4);
    ServeRequest req;
    req.request = InferenceRequest::first_n(3);
    req.request.max_timesteps = 1;
    req.deadline = ServeClock::now() - std::chrono::seconds(1);
    auto future = server.submit(std::move(req));
    future.get();
    server.drain();
    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.completed_samples, 3u);
    EXPECT_EQ(stats.deadline_forced_exits, 0u)
        << "budget exhaustion owns the boundary exit";
    EXPECT_EQ(stats.exit_timesteps.total(), stats.completed_samples)
        << "one histogram entry per completion, never two";
    EXPECT_EQ(stats.exit_timesteps.count(0), 3u);
  }
  {
    // Same deadline, room in the budget: now the deadline owns the exit,
    // with the identical once-only histogram accounting.
    InferenceServer server(e.net, ds, never, 4);
    ServeRequest req;
    req.request = InferenceRequest::first_n(3);
    req.deadline = ServeClock::now() - std::chrono::seconds(1);
    auto future = server.submit(std::move(req));
    future.get();
    server.drain();
    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.completed_samples, 3u);
    EXPECT_EQ(stats.deadline_forced_exits, 3u);
    EXPECT_EQ(stats.exit_timesteps.total(), stats.completed_samples);
    EXPECT_EQ(stats.exit_timesteps.count(0), 3u) << "still a t=1 exit";
  }
}

/// The scheduler, tenant, and cancellation surfaces ride through the
/// single-model facade: ServerConfig selects the policy and tenant classes,
/// submit_with_handle()/cancel() work, and ServerStats reports cancelled
/// work distinctly from completions and failures.
TEST(InferenceServer, SchedulerTenantsAndCancellationThroughFacade) {
  core::Experiment e = micro_experiment("sync10", 3);
  const auto& ds = *e.bundle.test;
  const core::EntropyExitPolicy policy(0.35);
  ServerConfig config;
  config.scheduler = "edf";
  config.tenants = {TenantSpec{.name = "interactive", .weight = 2.0, .max_queued = 4}};
  InferenceServer server(e.net, ds, policy, 3, config);
  EXPECT_EQ(server.scheduler_kind(), SchedulerKind::kEdf);

  ServeRequest tagged = {};
  tagged.request.samples = {0, 1};
  tagged.tenant = 1;
  Submission sub = server.submit_with_handle(std::move(tagged));
  EXPECT_NE(sub.handle.id, 0u);
  sub.results.get();
  EXPECT_FALSE(server.cancel(sub.handle)) << "already completed";
  server.drain();

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed_samples, 2u);
  EXPECT_EQ(stats.cancelled_requests, 0u);
  EXPECT_EQ(stats.cancelled_queued_samples, 0u);
  EXPECT_EQ(stats.cancelled_live_samples, 0u);
  ASSERT_EQ(stats.tenants.size(), 2u);
  EXPECT_EQ(stats.tenants[1].name, "interactive");
  EXPECT_EQ(stats.tenants[1].completed_samples, 2u);
}

}  // namespace
}  // namespace dtsnn::serve
