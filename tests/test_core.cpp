// Tests for the DT-SNN core: entropy (Eq. 7), exit rule semantics (Eq. 8),
// post-hoc vs sequential engine agreement, and threshold calibration.

#include <cmath>

#include <gtest/gtest.h>

#include "core/calibration.h"
#include "core/engine.h"
#include "core/entropy.h"
#include "core/evaluator.h"
#include "core/exit_policy.h"
#include "core/inference.h"
#include "util/math.h"

namespace dtsnn::core {
namespace {

// ----------------------------------------------------------------- entropy

TEST(Entropy, UniformIsOne) {
  const std::vector<float> p(8, 0.125f);
  EXPECT_NEAR(normalized_entropy(p), 1.0, 1e-6);
}

TEST(Entropy, OneHotIsZero) {
  std::vector<float> p(5, 0.0f);
  p[2] = 1.0f;
  EXPECT_NEAR(normalized_entropy(p), 0.0, 1e-12);
}

TEST(Entropy, MonotoneInConcentration) {
  // Sharper distributions have lower entropy.
  double prev = 1.1;
  for (const float conf : {0.3f, 0.5f, 0.7f, 0.9f, 0.99f}) {
    std::vector<float> p(4, (1.0f - conf) / 3.0f);
    p[0] = conf;
    const double h = normalized_entropy(p);
    EXPECT_LT(h, prev);
    prev = h;
  }
}

TEST(Entropy, NormalizationIndependentOfK) {
  // Uniform distributions have entropy exactly 1 regardless of class count.
  for (const std::size_t k : {2u, 10u, 100u}) {
    std::vector<float> p(k, 1.0f / static_cast<float>(k));
    EXPECT_NEAR(normalized_entropy(p), 1.0, 1e-6) << k;
  }
}

TEST(Entropy, OfLogitsMatchesManualSoftmax) {
  const std::vector<float> logits{1.0f, 2.0f, 0.5f};
  const auto probs = util::softmax(logits);
  EXPECT_NEAR(entropy_of_logits(logits), normalized_entropy(probs), 1e-12);
}

TEST(Entropy, DegenerateDistributionsAreZero) {
  // k < 2 would divide by log(k) <= 0; the guard must hold in release builds
  // (the old assert compiled out under NDEBUG).
  const std::vector<float> one{1.0f};
  EXPECT_EQ(normalized_entropy(one), 0.0);
  EXPECT_EQ(normalized_entropy({}), 0.0);
  const auto rows = entropies_of_logit_rows(one, 1);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], 0.0);
  EXPECT_TRUE(entropies_of_logit_rows({}, 0).empty());
}

TEST(Entropy, RowsHelper) {
  const std::vector<float> logits{0, 0, 10, 0};  // 2 rows of K=2
  const auto h = entropies_of_logit_rows(logits, 2);
  ASSERT_EQ(h.size(), 2u);
  EXPECT_NEAR(h[0], 1.0, 1e-9);
  EXPECT_LT(h[1], 0.01);
}

// ------------------------------------------------------------ exit policies

TEST(ExitPolicy, EntropyThresholdSemantics) {
  const std::vector<float> confident{10.0f, 0.0f, 0.0f};
  const std::vector<float> uncertain{0.1f, 0.0f, 0.05f};
  EntropyExitPolicy tight(0.05);
  EXPECT_TRUE(tight.should_exit(confident));
  EXPECT_FALSE(tight.should_exit(uncertain));
}

TEST(ExitPolicy, ThetaZeroNeverExits) {
  EntropyExitPolicy never(0.0);
  const std::vector<float> confident{100.0f, 0.0f};
  EXPECT_FALSE(never.should_exit(confident));  // entropy >= 0 is never < 0
}

TEST(ExitPolicy, ThetaAboveOneAlwaysExits) {
  EntropyExitPolicy always(1.01);
  const std::vector<float> uniform{1.0f, 1.0f, 1.0f};
  EXPECT_TRUE(always.should_exit(uniform));
}

TEST(ExitPolicy, MaxProbAndMargin) {
  const std::vector<float> confident{5.0f, 0.0f};
  MaxProbExitPolicy mp(0.9);
  EXPECT_TRUE(mp.should_exit(confident));
  EXPECT_FALSE(MaxProbExitPolicy(0.999).should_exit(confident));
  MarginExitPolicy mg(0.5);
  EXPECT_TRUE(mg.should_exit(confident));
  EXPECT_FALSE(MarginExitPolicy(0.999).should_exit(confident));
}

// --------------------------------------------------- synthetic TimestepOutputs

/// Hand-built outputs: 3 samples, T=3, K=2.
///  s0: confident-correct from t=1.
///  s1: uncertain until t=2, then confident-correct.
///  s2: never confident; correct only at t=3.
TimestepOutputs fake_outputs() {
  TimestepOutputs out;
  out.timesteps = 3;
  out.samples = 3;
  out.classes = 2;
  out.labels = {0, 1, 0};
  out.cum_logits = snn::Tensor({9, 2});
  auto set = [&](std::size_t t, std::size_t i, float a, float b) {
    out.cum_logits.at(t * 3 + i, 0) = a;
    out.cum_logits.at(t * 3 + i, 1) = b;
  };
  set(0, 0, 8, 0);  set(1, 0, 8, 0);  set(2, 0, 8, 0);
  set(0, 1, 0.1f, 0.0f);  set(1, 1, 0, 8);  set(2, 1, 0, 8);
  set(0, 2, 0.0f, 0.1f);  set(1, 2, 0.1f, 0.0f);  set(2, 2, 0.2f, 0.0f);
  return out;
}

/// Dataset whose labels match fake_outputs(); frames are dummies (the
/// replay engine never reads them).
data::ArrayDataset fake_dataset() {
  data::ArrayDataset ds({1, 1, 1}, 1, 2);
  for (const int label : {0, 1, 0}) ds.add_sample({0.0f}, label, 0.0);
  return ds;
}

/// evaluate_recorded = PostHocEngine + evaluate_engine over fake_outputs.
DtsnnResult fake_eval(const TimestepOutputs& out, const ExitPolicy& policy) {
  const data::ArrayDataset ds = fake_dataset();
  return evaluate_recorded(out, policy, ds);
}

TEST(Engine, StaticAccuracyPerTimestep) {
  const auto out = fake_outputs();
  // t=1: s0 correct, s1 predicts 0 (label 1) wrong, s2 predicts 1 wrong -> 1/3.
  EXPECT_NEAR(static_accuracy(out, 1), 1.0 / 3.0, 1e-12);
  // t=2: s0 ok, s1 ok, s2 predicts 0 ok -> 3/3.
  EXPECT_NEAR(static_accuracy(out, 2), 1.0, 1e-12);
  const auto acc = accuracy_per_timestep(out);
  ASSERT_EQ(acc.size(), 3u);
  EXPECT_NEAR(acc[2], 1.0, 1e-12);
  EXPECT_THROW(static_accuracy(out, 0), std::invalid_argument);
  EXPECT_THROW(static_accuracy(out, 4), std::invalid_argument);
}

TEST(Engine, DtsnnExitRuleEq8) {
  const auto out = fake_outputs();
  EntropyExitPolicy policy(0.2);
  const auto r = fake_eval(out, policy);
  // s0 exits at t=1 (entropy tiny), s1 at t=2, s2 falls back to T=3.
  EXPECT_EQ(r.exit_timestep[0], 1u);
  EXPECT_EQ(r.exit_timestep[1], 2u);
  EXPECT_EQ(r.exit_timestep[2], 3u);
  EXPECT_NEAR(r.avg_timesteps, 2.0, 1e-12);
  EXPECT_NEAR(r.accuracy, 1.0, 1e-12);  // all three correct at their exits
  EXPECT_EQ(r.timestep_histogram.count(0), 1u);
  EXPECT_EQ(r.timestep_histogram.count(2), 1u);
}

TEST(Engine, ConservativeThetaUsesFullTimesteps) {
  const auto out = fake_outputs();
  const auto r = fake_eval(out, EntropyExitPolicy(0.0));
  EXPECT_NEAR(r.avg_timesteps, 3.0, 1e-12);
}

TEST(Engine, AggressiveThetaUsesOneTimestep) {
  const auto out = fake_outputs();
  const auto r = fake_eval(out, EntropyExitPolicy(1.01));
  EXPECT_NEAR(r.avg_timesteps, 1.0, 1e-12);
  // Accuracy equals t=1 static accuracy.
  EXPECT_NEAR(r.accuracy, static_accuracy(out, 1), 1e-12);
}

TEST(Engine, AvgTimestepsMonotoneInTheta) {
  const auto out = fake_outputs();
  double prev = 1e9;
  for (const double theta : {0.01, 0.1, 0.3, 0.6, 0.9, 1.0}) {
    const auto r = fake_eval(out, EntropyExitPolicy(theta));
    EXPECT_LE(r.avg_timesteps, prev + 1e-12) << theta;
    prev = r.avg_timesteps;
  }
}

// ------------------------------------------------------------- calibration

TEST(Calibration, PicksLargestAdmissibleTheta) {
  const auto out = fake_outputs();
  // Target: full accuracy (1.0). Both theta=0.2 and theta=0.5 achieve it
  // (the uncertain samples' entropies sit near 1.0, the confident ones near
  // 0); theta=1.01 forces everything to exit at t=1 and loses accuracy. The
  // calibrator must keep the largest admissible threshold, 0.5.
  const auto c = calibrate_theta(out, 1.0, 0.0, {0.05, 0.2, 0.5, 1.01});
  EXPECT_TRUE(c.met_target);
  EXPECT_NEAR(c.theta, 0.5, 1e-12);
  EXPECT_NEAR(c.result.accuracy, 1.0, 1e-12);
}

TEST(Calibration, FallsBackWhenUnreachable) {
  const auto out = fake_outputs();
  const auto c = calibrate_theta(out, 2.0 /* impossible */, 0.0, {0.1, 0.5});
  EXPECT_FALSE(c.met_target);
  EXPECT_NEAR(c.theta, 0.1, 1e-12);
}

TEST(Calibration, SweepAligned) {
  const auto out = fake_outputs();
  const std::vector<double> grid{0.05, 0.2, 1.01};
  const auto sweep = theta_sweep(out, grid);
  ASSERT_EQ(sweep.size(), 3u);
  EXPECT_EQ(sweep[0].theta, 0.05);
  EXPECT_GE(sweep[0].result.avg_timesteps, sweep[2].result.avg_timesteps);
}

TEST(Calibration, DefaultGridCoversUnitInterval) {
  const auto grid = default_theta_grid();
  EXPECT_GT(grid.size(), 10u);
  EXPECT_LT(grid.front(), 0.01);
  EXPECT_GE(grid.back(), 1.0);
  EXPECT_TRUE(std::is_sorted(grid.begin(), grid.end()));
}

TEST(Engine, EntropyTableReplayMatchesPolicy) {
  const auto out = fake_outputs();
  const auto table = entropy_table(out);
  ASSERT_EQ(table.size(), out.timesteps * out.samples);
  for (const double theta : {0.0, 0.05, 0.2, 0.5, 0.9, 1.01}) {
    const auto via_policy = fake_eval(out, EntropyExitPolicy(theta));
    const auto via_table = evaluate_dtsnn_with_table(out, table, theta);
    EXPECT_EQ(via_policy.exit_timestep, via_table.exit_timestep) << theta;
    EXPECT_EQ(via_policy.correct, via_table.correct) << theta;
    EXPECT_NEAR(via_policy.accuracy, via_table.accuracy, 1e-12) << theta;
    EXPECT_NEAR(via_policy.avg_timesteps, via_table.avg_timesteps, 1e-12) << theta;
  }
  EXPECT_THROW(evaluate_dtsnn_with_table(out, std::span<const double>(table).first(2), 0.5),
               std::invalid_argument);
}

// ---------------------------------------------- post-hoc vs sequential engine

TEST(Engine, SequentialMatchesPosthoc) {
  // Train a micro model briefly, then verify the sequential engine's exit
  // decisions and predictions equal the post-hoc replay on every sample.
  ExperimentSpec spec;
  spec.model = "vgg_micro";
  spec.dataset = "sync10";
  spec.epochs = 3;
  spec.timesteps = 3;
  spec.data_scale = 0.06;
  Experiment e = run_experiment(spec);

  const auto outputs = test_outputs(e, 3, /*limit=*/40);
  EntropyExitPolicy policy(0.3);
  const auto posthoc = evaluate_recorded(outputs, policy, *e.bundle.test);

  SequentialEngine engine(e.net, policy, 3);
  for (std::size_t i = 0; i < outputs.samples; ++i) {
    const auto pred = engine.infer(*e.bundle.test, i);
    EXPECT_EQ(pred.timesteps_used, posthoc.exit_timestep[i]) << "sample " << i;
    const auto logits = outputs.at(pred.timesteps_used - 1, i);
    EXPECT_EQ(pred.predicted_class, util::argmax(logits)) << "sample " << i;
  }
}

/// Regression: both engines claim to implement Eq. 8 identically. Post-hoc
/// replay (evaluate_recorded) and SequentialEngine::infer_frames must agree
/// on the exit timestep and the predicted class for every sample of a small
/// synthetic dataset, across thresholds.
TEST(Engine, PosthocAndSequentialAgreeOnEverySample) {
  ExperimentSpec spec;
  spec.model = "vgg_micro";
  spec.dataset = "sync10";
  spec.epochs = 2;
  spec.timesteps = 3;
  spec.data_scale = 0.06;
  Experiment e = run_experiment(spec);

  const auto& ds = *e.bundle.test;
  const auto outputs = test_outputs(e, spec.timesteps);
  ASSERT_EQ(outputs.samples, ds.size());
  const snn::Shape fs = ds.frame_shape();
  const std::size_t frame_numel = snn::shape_numel(fs);

  for (const double theta : {0.15, 0.5}) {
    EntropyExitPolicy policy(theta);
    const auto posthoc = evaluate_recorded(outputs, policy, *e.bundle.test);
    SequentialEngine engine(e.net, policy, spec.timesteps);
    for (std::size_t i = 0; i < ds.size(); ++i) {
      snn::Tensor frames({spec.timesteps, fs[0], fs[1], fs[2]});
      for (std::size_t t = 0; t < spec.timesteps; ++t) {
        ds.write_frame(i, t, {frames.data() + t * frame_numel, frame_numel});
      }
      const auto pred = engine.infer_frames(frames);
      EXPECT_EQ(pred.timesteps_used, posthoc.exit_timestep[i])
          << "theta " << theta << " sample " << i;
      const std::size_t posthoc_class = util::argmax(outputs.at(pred.timesteps_used - 1, i));
      EXPECT_EQ(pred.predicted_class, posthoc_class)
          << "theta " << theta << " sample " << i;
    }
  }
}

TEST(Engine, ParallelCollectMatchesSerial) {
  ExperimentSpec spec;
  spec.model = "vgg_micro";
  spec.dataset = "sync10";
  spec.epochs = 1;
  spec.timesteps = 3;
  spec.data_scale = 0.06;
  Experiment e = run_experiment(spec);

  const auto serial =
      collect_outputs(e.net, *e.bundle.test, spec.timesteps, /*batch_size=*/8);
  // Small batches + forced 2 threads exercise the replica path even on one
  // core; batch boundaries match, so the recording is bitwise identical.
  const auto parallel =
      collect_outputs_parallel(e.net, replica_factory(e), *e.bundle.test,
                               spec.timesteps, /*batch_size=*/8, /*limit=*/0,
                               /*num_threads=*/2);
  ASSERT_EQ(parallel.samples, serial.samples);
  ASSERT_EQ(parallel.labels, serial.labels);
  ASSERT_EQ(parallel.cum_logits.numel(), serial.cum_logits.numel());
  for (std::size_t j = 0; j < serial.cum_logits.numel(); ++j) {
    ASSERT_EQ(parallel.cum_logits.data()[j], serial.cum_logits.data()[j]) << j;
  }

  EXPECT_THROW(collect_outputs(e.net, *e.bundle.test, spec.timesteps, 0),
               std::invalid_argument);
  EXPECT_THROW(collect_outputs_parallel(e.net, replica_factory(e), *e.bundle.test,
                                        spec.timesteps, 0),
               std::invalid_argument);
  EXPECT_THROW(collect_outputs(e.net, *e.bundle.test, /*timesteps=*/0),
               std::invalid_argument);
  EXPECT_THROW(collect_outputs_parallel(e.net, replica_factory(e), *e.bundle.test,
                                        /*timesteps=*/0),
               std::invalid_argument);
}

/// Satellite regression: when the timestep budget runs out without the exit
/// rule firing, the forced-exit prediction must carry the entropy of the
/// cumulative-mean logits at the final timestep — the same value an entropy
/// table lookup at t = T gives — never a stale or zero value.
TEST(Engine, ForcedExitCarriesLastEntropy) {
  ExperimentSpec spec;
  spec.model = "vgg_micro";
  spec.dataset = "sync10";
  spec.epochs = 1;
  spec.timesteps = 3;
  spec.data_scale = 0.06;
  Experiment e = run_experiment(spec);

  const auto outputs = test_outputs(e, spec.timesteps, /*limit=*/12);
  const NeverExitPolicy never;
  SequentialEngine engine(e.net, never, spec.timesteps);
  for (std::size_t i = 0; i < outputs.samples; ++i) {
    const auto pred = engine.infer(*e.bundle.test, i);
    ASSERT_EQ(pred.timesteps_used, spec.timesteps) << "sample " << i;
    const double expected = entropy_of_logits(outputs.at(spec.timesteps - 1, i));
    // The step path and the recording path accumulate identically, so the
    // forced-exit entropy must match the recorded final-timestep entropy
    // exactly (and in particular must not be 0 or left over from t=1).
    EXPECT_EQ(pred.final_entropy, expected) << "sample " << i;
    EXPECT_GT(pred.final_entropy, 0.0) << "sample " << i;
  }
}

TEST(Engine, ZeroTimestepBudgetIsRejected) {
  ExperimentSpec spec;
  spec.model = "vgg_micro";
  spec.dataset = "sync10";
  spec.epochs = 0;
  spec.timesteps = 2;
  spec.data_scale = 0.06;
  Experiment e = run_experiment(spec);
  const EntropyExitPolicy policy(0.3);
  EXPECT_THROW(SequentialEngine(e.net, policy, 0), std::invalid_argument);
  EXPECT_THROW(BatchedSequentialEngine(e.net, policy, 0), std::invalid_argument);
  EXPECT_THROW(BatchedSequentialEngine(e.net, policy, 2, 0), std::invalid_argument);
  EXPECT_THROW(PostHocEngine(e.net, policy, 0), std::invalid_argument);
}

/// PostHocEngine in record-on-demand mode must make the same decisions as
/// replaying a collect_outputs recording of the same samples.
TEST(Engine, PostHocRecordOnDemandMatchesReplay) {
  ExperimentSpec spec;
  spec.model = "vgg_micro";
  spec.dataset = "sync10";
  spec.epochs = 2;
  spec.timesteps = 3;
  spec.data_scale = 0.06;
  Experiment e = run_experiment(spec);

  const auto outputs = test_outputs(e, spec.timesteps, /*limit=*/24);
  const EntropyExitPolicy policy(0.3);
  PostHocEngine replay(outputs, policy);
  PostHocEngine on_demand(e.net, policy, spec.timesteps, /*batch_size=*/7);

  InferenceRequest request = InferenceRequest::first_n(outputs.samples);
  request.record_logits = true;
  const auto a = replay.run(*e.bundle.test, request);
  const auto b = on_demand.run(*e.bundle.test, request);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].predicted_class, b[i].predicted_class) << i;
    EXPECT_EQ(a[i].exit_timestep, b[i].exit_timestep) << i;
    EXPECT_EQ(a[i].final_entropy, b[i].final_entropy) << i;
    ASSERT_EQ(a[i].timestep_logits.shape(), b[i].timestep_logits.shape()) << i;
    for (std::size_t j = 0; j < a[i].timestep_logits.numel(); ++j) {
      ASSERT_EQ(a[i].timestep_logits[j], b[i].timestep_logits[j]) << i;
    }
  }
  // Replay beyond the recorded budget is an error, not an extrapolation.
  InferenceRequest too_deep = request;
  too_deep.max_timesteps = spec.timesteps + 1;
  EXPECT_THROW(replay.run(*e.bundle.test, too_deep), std::invalid_argument);
}

TEST(Evaluator, BundleDispatch) {
  auto dvs = make_bundle("syndvs", 0.05);
  EXPECT_EQ(dvs.train->native_frames(), 10u);
  auto vision = make_bundle("sync10", 0.05);
  // Static vision presets pre-encode 8 distractor-flicker frames per sample
  // (DESIGN.md §4.1).
  EXPECT_EQ(vision.train->native_frames(), 8u);
  EXPECT_EQ(preset_timesteps("syndvs"), 10u);
  EXPECT_EQ(preset_timesteps("sync10"), 4u);
}

TEST(Evaluator, CacheKeyDistinguishesSpecs) {
  ExperimentSpec a, b;
  b.loss = LossKind::kMeanLogit;
  EXPECT_NE(a.cache_key(), b.cache_key());
  ExperimentSpec c;
  c.seed = 2;
  EXPECT_NE(a.cache_key(), c.cache_key());
  EXPECT_EQ(a.cache_key(), ExperimentSpec{}.cache_key());
}

}  // namespace
}  // namespace dtsnn::core
